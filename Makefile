GO ?= go

.PHONY: help check vet build test race race-core bench profile soak crash crash-quick fmt fmt-check lint lint-fixtures incremental-default zero-alloc deep-history serve loadtest serve-contract

help:
	@echo "Targets:"
	@echo "  check               fmt-check + vet + lint + build + race-core + race + invariants"
	@echo "  test                go test ./..."
	@echo "  race                go test -race ./..."
	@echo "  bench               quick experiment suite + perf gates (BENCH_4..9.json)"
	@echo "  deep-history        surrogate tier determinism tests + quick scaling gate (rides in check)"
	@echo "  serve               run the tuning daemon locally (store: ./.autotuned; SIGTERM drains)"
	@echo "  loadtest            full tuning-as-a-service load run against a fresh daemon (BENCH_7 shape)"
	@echo "  serve-contract      service robustness tests: overload shedding, graceful drain, kill -9 recovery"
	@echo "  profile             CPU/heap pprof of the multi-session benchmark (cpu.pprof, mem.pprof)"
	@echo "  soak                long-running race soak of sched + trial"
	@echo "  crash               full fault-injection torture of the study store (every fault point, every byte prefix)"
	@echo "  crash-quick         sampled torture sweep (the slice of crash that rides in check)"
	@echo "  zero-alloc          allocs/op gates: gp.Predict, warm bo.Suggest, space encoders"
	@echo "  race-core           focused -race pass over the lock-discipline-critical packages"
	@echo "  lint                repo-specific static analysis, both tiers (cmd/autolint -typed)"
	@echo "  lint-fixtures       re-goldenize lint fixture outputs (requires UPDATE=1)"
	@echo "  fmt / fmt-check     gofmt the tree / fail if gofmt is needed"

check: fmt-check vet lint build race-core race incremental-default zero-alloc deep-history crash-quick serve-contract

# Quick deep-history arm (PR 9 invariant): the surrogate tier ladder is
# bitwise-deterministic (sparse == dense below the budget, switch points
# reproduce across runs and resume, local suggestions worker-count-free)
# and the quick-mode scaling benchmark still clears a relaxed speedup and
# matched-regret gate.
deep-history:
	$(GO) test ./internal/bo -run 'Test(SparseTier|AutoSwitch|ForestTier|TierSwitch|Local)' -count=1
	$(GO) test ./internal/smac -run TestSMACDeepHistory -count=1
	$(GO) run ./cmd/bench -scalebench -quick -minspeedup 2 -maxregret 2

# Pin the service contract (PR 7 invariant): overload sheds with 429 +
# Retry-After while /readyz flips, drain finishes in-flight work and
# seals the log, and a kill -9'd daemon recovers every ack exactly once.
# The Shard pattern adds the PR 10 surface: hash routing, per-shard
# stores, histories surviving shard-count changes, cross-shard drain.
serve-contract:
	$(GO) test -race -count=1 -run 'Test(Overload|Drain|EndToEnd|CrashRecovery|Shard|ConcurrentCreates)' ./internal/server
	$(GO) test -count=1 -run 'Test(KillDashNine|Sigterm)' ./cmd/autotuned

# Run the daemon locally with a persistent store in ./.autotuned.
# Ctrl-C / SIGTERM drains gracefully: in-flight requests finish and the
# log is sealed, so the next start needs zero repair.
serve:
	$(GO) run ./cmd/autotuned -store .autotuned

# Full-scale service load run (the BENCH_7 shape) without the gate, for
# interactive tuning on this machine.
loadtest:
	$(GO) run ./cmd/bench -serve

# Crash-torture the segmented study store (PR 6 invariant): kill the
# store at every injected fault point and every byte prefix of the log,
# reopen, and assert exactly-once recovery. The TestTorture pattern also
# picks up the group-commit fault sweep (PR 10): concurrent appenders
# killed at every commit point of the shared-fsync path, including
# between the leader's fsync and the followers' acks. `crash` sweeps
# everything; `crash-quick` strides through a sample for CI.
crash:
	$(GO) test -race -count=1 -run 'TestTorture' ./internal/studystore

crash-quick:
	$(GO) test -race -short -count=1 -run 'TestTorture' ./internal/studystore

# Pin the zero-allocation hot paths (PR 5 invariant): gp.Predict and the
# space encoders at exactly zero allocs/op warm, bo.Suggest under its
# documented ceiling.
zero-alloc:
	$(GO) test ./internal/gp -run TestPredictZeroAllocs -count=1
	$(GO) test ./internal/space -run 'Test(EncodeInto|SampleInto)ZeroAllocs' -count=1
	$(GO) test ./internal/bo -run TestSuggestWarmAllocs -count=1

# Assert the incremental surrogate path is enabled by default and agrees
# with full refits (PR 4 invariant).
incremental-default:
	$(GO) test ./internal/bo -run 'TestIncremental(EnabledByDefault|MatchesFullRefit)' -count=1

vet:
	$(GO) vet ./...

# Both analysis tiers: syntactic (name-index heuristics) and typed
# (go/types + per-function CFG dataflow). -typed is the default; spelled
# out here so check provably exercises the typed tier.
lint:
	$(GO) run ./cmd/autolint -typed ./...

# Re-goldenize testdata/*/golden.json from current analyzer output. The
# UPDATE=1 guard makes regeneration a deliberate act — a behavior change
# must never re-goldenize itself in passing.
lint-fixtures:
	@if [ "$(UPDATE)" != "1" ]; then \
		echo "lint-fixtures rewrites internal/lint/testdata/*/golden.json."; \
		echo "Run 'make lint-fixtures UPDATE=1' to confirm."; exit 1; fi
	UPDATE=1 $(GO) test ./internal/lint -run TestGoldenFixtures -count=1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The packages whose lock discipline the lockheld analyzer polices get a
# focused, always-fresh -race pass (the full `race` target may cache).
race-core:
	$(GO) test -race -count=1 ./internal/sched/... ./internal/studystore/...

bench:
	$(GO) run ./cmd/bench -quick
	$(GO) run ./cmd/bench -suggestbench -minspeedup 10 -out BENCH_4.json
	$(GO) run ./cmd/bench -sessions -minspeedup 2 -minallocratio 10 -out BENCH_5.json
	$(GO) run ./cmd/bench -replay -minreplay 100000 -out BENCH_6.json
	$(GO) run ./cmd/bench -serve -minstudies 1000 -minsuggest 50000 -out BENCH_7.json
	$(GO) run ./cmd/bench -scalebench -minspeedup 10 -maxregret 1.5 -out BENCH_8.json
	$(GO) run ./cmd/bench -observebench -minobserveratio 10 -minobserve 1000 -out BENCH_9.json
	$(GO) test -bench 'Benchmark(GPPredict|BOSuggest|SpaceEncode)' -benchmem -run xxx .

profile:
	$(GO) run ./cmd/bench -sessions -quick -cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "inspect with: go tool pprof -top cpu.pprof   (or mem.pprof)"

soak:
	$(GO) test -race -run Soak -count=1 ./internal/sched ./internal/trial

fmt:
	gofmt -l -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
