GO ?= go

.PHONY: check vet build test race bench soak fmt fmt-check lint incremental-default

check: fmt-check vet lint build race incremental-default

# Assert the incremental surrogate path is enabled by default and agrees
# with full refits (PR 4 invariant).
incremental-default:
	$(GO) test ./internal/bo -run 'TestIncremental(EnabledByDefault|MatchesFullRefit)' -count=1

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/autolint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/bench -quick
	$(GO) run ./cmd/bench -suggestbench -minspeedup 10 -out BENCH_4.json

soak:
	$(GO) test -race -run Soak -count=1 ./internal/sched ./internal/trial

fmt:
	gofmt -l -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
