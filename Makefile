GO ?= go

.PHONY: check vet build test race bench fmt

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/bench -quick

fmt:
	gofmt -l -w .
