GO ?= go

.PHONY: check vet build test race bench soak fmt fmt-check lint

check: fmt-check vet lint build race

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/autolint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/bench -quick

soak:
	$(GO) test -race -run Soak -count=1 ./internal/sched ./internal/trial

fmt:
	gofmt -l -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
