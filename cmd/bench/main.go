// Command bench regenerates the tutorial's figures and tables (experiments
// F1-F20, see DESIGN.md and EXPERIMENTS.md) and prints them as Markdown.
//
// Usage:
//
//	bench                      # run everything in full mode
//	bench -experiment F3       # one experiment
//	bench -quick               # CI-scale budgets
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"autotune/internal/experiments"
)

func main() {
	var (
		id    = flag.String("experiment", "all", "experiment id (F1..F20) or 'all'")
		quick = flag.Bool("quick", false, "shrink budgets and seed counts")
		seed  = flag.Int64("seed", 20250706, "random seed")
	)
	flag.Parse()

	ids := experiments.IDs()
	if *id != "all" {
		ids = []string{*id}
	}
	failed := 0
	for _, eid := range ids {
		start := time.Now()
		tab, err := experiments.Run(eid, *quick, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", eid, err)
			failed++
			continue
		}
		printTable(tab, time.Since(start))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func printTable(t experiments.Table, took time.Duration) {
	fmt.Printf("## %s — %s\n\n", t.ID, t.Title)
	fmt.Printf("**Claim:** %s\n\n", t.Claim)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Printf("| %s |\n", strings.Join(parts, " | "))
	}
	printRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	fmt.Printf("\n**Observed:** %s\n\n_(%s)_\n\n", t.Notes, took.Round(time.Millisecond))
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
