// Command bench regenerates the tutorial's figures and tables (experiments
// F1-F20, see DESIGN.md and EXPERIMENTS.md) and prints them as Markdown.
//
// Usage:
//
//	bench                      # run everything in full mode
//	bench -experiment F3       # one experiment
//	bench -quick               # CI-scale budgets
//	bench -suggestbench -out BENCH_4.json -minspeedup 10
//	                           # suggest-path scaling benchmark (PR 4)
//	bench -sessions -out BENCH_5.json -minspeedup 2 -minallocratio 10
//	                           # multi-session throughput benchmark (PR 5)
//	bench -sessions -quick -cpuprofile cpu.pprof -memprofile mem.pprof
//	bench -replay -out BENCH_6.json -minreplay 100000
//	                           # study-store write/replay benchmark (PR 6)
//	bench -scalebench -out BENCH_8.json -minspeedup 10 -maxregret 1.5
//	                           # surrogate tier scaling benchmark (PR 9)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"autotune/internal/experiments"
)

func main() {
	var (
		id        = flag.String("experiment", "all", "experiment id (F1..F20) or 'all'")
		quick     = flag.Bool("quick", false, "shrink budgets and seed counts")
		seed      = flag.Int64("seed", 20250706, "random seed")
		suggest   = flag.Bool("suggestbench", false, "run the suggest-path scaling benchmark instead of the experiment suite")
		sessions  = flag.Bool("sessions", false, "run the multi-session throughput benchmark instead of the experiment suite")
		replay    = flag.Bool("replay", false, "run the study-store write/replay benchmark instead of the experiment suite")
		serve     = flag.Bool("serve", false, "run the tuning-as-a-service load benchmark instead of the experiment suite")
		scale     = flag.Bool("scalebench", false, "run the surrogate tier scaling benchmark (BENCH_8) instead of the experiment suite")
		observeB  = flag.Bool("observebench", false, "run the durable observe throughput benchmark (BENCH_9) instead of the experiment suite")
		out       = flag.String("out", "", "write benchmark results to this JSON file")
		minSpeed  = flag.Float64("minspeedup", 0, "fail unless the benchmark speedup reaches this factor (0 disables)")
		minAlloc  = flag.Float64("minallocratio", 0, "with -sessions: relax -minspeedup to 2x when allocs/session shrink by this factor (0 disables)")
		minReplay = flag.Float64("minreplay", 0, "with -replay: fail unless replay sustains this many records/sec (0 disables)")
		minStudy  = flag.Int("minstudies", 0, "with -serve: fail unless this many concurrent studies are sustained (0 disables)")
		minSugg   = flag.Float64("minsuggest", 0, "with -serve: fail unless this many suggests/sec are sustained (0 disables)")
		srvWork   = flag.Int("serve-workers", 0, "with -serve/-observebench: load worker count override (0 = arm default)")
		obsBatch  = flag.Int("observe-per-batch", 0, "with -serve/-observebench: observations per observe request (0 = arm default)")
		minObs    = flag.Float64("minobserve", 0, "with -observebench: fail unless the group-commit service arm sustains this many durable observes/sec (0 disables)")
		minObsRat = flag.Float64("minobserveratio", 0, "with -observebench: fail unless group-commit beats the per-caller-fsync baseline by this factor at the store (0 disables)")
		maxRegret = flag.Float64("maxregret", 0, "with -scalebench: fail if the tiered/dense regret ratio exceeds this (0 disables)")
		boHistCap = flag.Int("bo-history-cap", 0, "with -serve: observation feed cap per model-guided study; with -scalebench: deep-history study size (0 = default)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProf == "" {
			return
		}
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *scale {
		if err := runScaleBench(*quick, *seed, *out, *minSpeed, *maxRegret, *boHistCap); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *observeB {
		if err := runObserveBench(*quick, *seed, *out, *srvWork, *obsBatch, *minObs, *minObsRat); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *serve {
		if err := runServeBench(*quick, *seed, *out, *minStudy, *minSugg, *boHistCap, *srvWork, *obsBatch); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *replay {
		if err := runReplayBench(*quick, *out, *minReplay); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *sessions {
		if err := runSessionsBench(*quick, *seed, *out, *minSpeed, *minAlloc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *suggest {
		if err := runSuggestBench(*quick, *seed, *out, *minSpeed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	ids := experiments.IDs()
	if *id != "all" {
		ids = []string{*id}
	}
	failed := 0
	for _, eid := range ids {
		start := time.Now()
		tab, err := experiments.Run(eid, *quick, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", eid, err)
			failed++
			continue
		}
		printTable(tab, time.Since(start))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func printTable(t experiments.Table, took time.Duration) {
	fmt.Printf("## %s — %s\n\n", t.ID, t.Title)
	fmt.Printf("**Claim:** %s\n\n", t.Claim)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Printf("| %s |\n", strings.Join(parts, " | "))
	}
	printRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	fmt.Printf("\n**Observed:** %s\n\n_(%s)_\n\n", t.Notes, took.Round(time.Millisecond))
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// runSuggestBench runs the suggest-path scaling benchmark (incremental
// surrogate vs full refit), prints it, optionally writes JSON, and
// optionally enforces a minimum surrogate speedup at the largest history.
func runSuggestBench(quick bool, seed int64, outPath string, minSpeedup float64) error {
	start := time.Now()
	points, err := experiments.SuggestScaling(quick, seed)
	if err != nil {
		return fmt.Errorf("suggestbench: %w", err)
	}
	tab := experiments.Table{
		ID:    "B4",
		Title: "Suggest-path scaling: incremental surrogate vs full refit",
		Claim: "rank-1 Cholesky updates make absorbing an observation O(n²) instead of O(n³)",
		Headers: []string{"n", "surrogate full (ms)", "surrogate incr (ms)", "speedup",
			"suggest full (ms)", "suggest incr (ms)", "speedup"},
		Notes: "surrogate columns isolate maintenance; suggest columns share acquisition-search cost",
	}
	ms := func(ns float64) string { return fmt.Sprintf("%.3f", ns/1e6) }
	for _, p := range points {
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", p.N),
			ms(p.SurrogateFullNs), ms(p.SurrogateIncNs), fmt.Sprintf("%.1fx", p.SurrogateRatio),
			ms(p.SuggestFullNs), ms(p.SuggestIncNs), fmt.Sprintf("%.1fx", p.SuggestRatio),
		})
	}
	printTable(tab, time.Since(start))
	if outPath != "" {
		doc := struct {
			Benchmark string                            `json:"benchmark"`
			Quick     bool                              `json:"quick"`
			Seed      int64                             `json:"seed"`
			Points    []experiments.SuggestScalingPoint `json:"points"`
		}{"suggest-path-scaling", quick, seed, points}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if minSpeedup > 0 {
		last := points[len(points)-1]
		if last.SurrogateRatio < minSpeedup {
			return fmt.Errorf("suggestbench: surrogate speedup at n=%d is %.1fx, want >= %.0fx",
				last.N, last.SurrogateRatio, minSpeedup)
		}
	}
	return nil
}

// runSessionsBench runs the multi-session throughput benchmark (legacy
// allocating loop vs the flat-buffer loop + evaluation cache), prints it,
// optionally writes JSON, and optionally enforces the PR-5 gate: the
// required throughput speedup (default interpretation: minSpeedup), relaxed
// to 2x when allocations per session shrank by at least minAllocRatio.
func runSessionsBench(quick bool, seed int64, outPath string, minSpeedup, minAllocRatio float64) error {
	start := time.Now()
	res, err := experiments.SessionsThroughput(quick, seed)
	if err != nil {
		return fmt.Errorf("sessions: %w", err)
	}
	tab := experiments.Table{
		ID:    "B5",
		Title: "Multi-session throughput: legacy allocating loop vs zero-allocation loop",
		Claim: "workspace pooling, flat-buffer acquisition search, and the eval cache multiply whole-session throughput",
		Headers: []string{"arm", "sessions", "trials/sess", "wall (s)", "sess/s",
			"allocs/sess", "MB/sess", "suggest p50 (ms)", "suggest p99 (ms)", "mean best"},
		Notes: fmt.Sprintf("speedup %.2fx, alloc ratio %.1fx", res.Speedup, res.AllocRatio),
	}
	for _, a := range []experiments.SessionsArm{res.Legacy, res.Optimized} {
		tab.Rows = append(tab.Rows, []string{
			a.Name,
			fmt.Sprintf("%d", a.Sessions),
			fmt.Sprintf("%d", a.TrialsPerSession),
			fmt.Sprintf("%.2f", a.WallSeconds),
			fmt.Sprintf("%.2f", a.SessionsPerSec),
			fmt.Sprintf("%.0f", a.AllocsPerSession),
			fmt.Sprintf("%.1f", a.MBPerSession),
			fmt.Sprintf("%.2f", a.SuggestP50Ms),
			fmt.Sprintf("%.2f", a.SuggestP99Ms),
			fmt.Sprintf("%.4f", a.MeanBest),
		})
	}
	printTable(tab, time.Since(start))
	if outPath != "" {
		doc := struct {
			Benchmark string                     `json:"benchmark"`
			Quick     bool                       `json:"quick"`
			Seed      int64                      `json:"seed"`
			Result    experiments.SessionsResult `json:"result"`
		}{"multi-session-throughput", quick, seed, res}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if minSpeedup > 0 {
		pass := res.Speedup >= 5 ||
			(res.Speedup >= minSpeedup && (minAllocRatio <= 0 || res.AllocRatio >= minAllocRatio))
		if !pass {
			return fmt.Errorf("sessions: speedup %.2fx (alloc ratio %.1fx), want >= 5x or >= %.0fx with allocs/session down %.0fx",
				res.Speedup, res.AllocRatio, minSpeedup, minAllocRatio)
		}
	}
	return nil
}
