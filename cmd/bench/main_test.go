package main

import (
	"testing"

	"autotune/internal/experiments"
)

func TestPad(t *testing.T) {
	if pad("ab", 5) != "ab   " {
		t.Fatalf("pad = %q", pad("ab", 5))
	}
	if pad("abcdef", 3) != "abcdef" {
		t.Fatal("pad should not truncate")
	}
}

func TestPrintTableDoesNotPanic(t *testing.T) {
	printTable(experiments.Table{
		ID:      "T1",
		Title:   "title",
		Claim:   "claim",
		Headers: []string{"a", "long header"},
		Rows:    [][]string{{"1", "2"}, {"333333", "4"}},
		Notes:   "notes",
	}, 0)
}
