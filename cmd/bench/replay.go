package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"autotune/internal/experiments"
	"autotune/internal/space"
	"autotune/internal/studystore"
	"autotune/internal/trial"
)

// ReplayArm is one measured phase of the study-store benchmark.
type ReplayArm struct {
	Name       string  `json:"name"`
	Records    int     `json:"records"`
	WallSecs   float64 `json:"wall_secs"`
	RecsPerSec float64 `json:"recs_per_sec"`
	Segments   int     `json:"segments"`
}

// ReplayResult is the full study-store write/replay benchmark.
type ReplayResult struct {
	Write      ReplayArm `json:"write"`
	LogReplay  ReplayArm `json:"log_replay"`
	SnapReplay ReplayArm `json:"snapshot_replay"`
}

// runReplayBench measures the segmented study store end to end: batched
// fsync'd writes, recovery replay from raw segments (CRC validation +
// JSON decode into TrialRecords), then compaction and replay from the
// snapshot. With minReplay > 0 the run fails unless both replay arms
// sustain that many records per second — the PR-6 gate.
func runReplayBench(quick bool, outPath string, minReplay float64) error {
	start := time.Now()
	n := 200_000
	batch := 1000
	if quick {
		n = 20_000
	}
	dir, err := os.MkdirTemp("", "replaybench-*")
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	defer os.RemoveAll(dir)

	var res ReplayResult

	// Write arm: records stream in through AppendBatch, one fsync barrier
	// per batch — the durability discipline a live tuning loop pays.
	st, err := studystore.Open(dir, studystore.Options{})
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	recs := make([]studystore.Record, 0, batch)
	t0 := time.Now()
	for id := 0; id < n; id++ {
		payload, err := json.Marshal(trial.TrialRecord{
			ID:          id,
			Config:      space.Config{"cache_mb": float64(id % 4096), "workers": float64(id % 64)},
			Value:       float64(id%997) / 997,
			CostSeconds: 1.5,
			Fidelity:    1,
		})
		if err != nil {
			return fmt.Errorf("replay: %w", err)
		}
		recs = append(recs, studystore.Record{Study: "bench", ID: int64(id), Payload: payload})
		if len(recs) == batch {
			if err := st.AppendBatch(recs); err != nil {
				return fmt.Errorf("replay: %w", err)
			}
			recs = recs[:0]
		}
	}
	if err := st.AppendBatch(recs); err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	writeSecs := time.Since(t0).Seconds()
	segs := st.Stats().Segments
	if err := st.Close(); err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	res.Write = arm("write (batched fsync)", n, writeSecs, segs)

	// Log-replay arm: cold recovery from raw segments — CRC-validate every
	// frame, rebuild the index, decode payloads back into TrialRecords.
	t0 = time.Now()
	got, err := trial.ReadStudyJournal(dir, "bench")
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	logSecs := time.Since(t0).Seconds()
	if len(got) != n {
		return fmt.Errorf("replay: log replay recovered %d records, want %d", len(got), n)
	}
	res.LogReplay = arm("log replay (segments)", n, logSecs, segs)

	// Snapshot-replay arm: compact, then recover from the checkpoint.
	st, err = studystore.Open(dir, studystore.Options{})
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	if err := st.Compact(); err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	segsAfter := st.Stats().Segments
	if err := st.Close(); err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	t0 = time.Now()
	got, err = trial.ReadStudyJournal(dir, "bench")
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	snapSecs := time.Since(t0).Seconds()
	if len(got) != n {
		return fmt.Errorf("replay: snapshot replay recovered %d records, want %d", len(got), n)
	}
	res.SnapReplay = arm("snapshot replay (compacted)", n, snapSecs, segsAfter)

	tab := experiments.Table{
		ID:      "B6",
		Title:   "Study-store write and replay throughput",
		Claim:   "segmented CRC-framed storage replays a crash-safe trial history fast enough to make resume free",
		Headers: []string{"arm", "records", "wall (s)", "records/s", "segments"},
		Notes: fmt.Sprintf("log replay %.0f recs/s, snapshot replay %.0f recs/s",
			res.LogReplay.RecsPerSec, res.SnapReplay.RecsPerSec),
	}
	for _, a := range []ReplayArm{res.Write, res.LogReplay, res.SnapReplay} {
		tab.Rows = append(tab.Rows, []string{
			a.Name,
			fmt.Sprintf("%d", a.Records),
			fmt.Sprintf("%.3f", a.WallSecs),
			fmt.Sprintf("%.0f", a.RecsPerSec),
			fmt.Sprintf("%d", a.Segments),
		})
	}
	printTable(tab, time.Since(start))

	if outPath != "" {
		doc := struct {
			Benchmark string       `json:"benchmark"`
			Quick     bool         `json:"quick"`
			Result    ReplayResult `json:"result"`
		}{"study-store-replay", quick, res}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if minReplay > 0 {
		if res.LogReplay.RecsPerSec < minReplay {
			return fmt.Errorf("replay: log replay %.0f records/s, want >= %.0f",
				res.LogReplay.RecsPerSec, minReplay)
		}
		if res.SnapReplay.RecsPerSec < minReplay {
			return fmt.Errorf("replay: snapshot replay %.0f records/s, want >= %.0f",
				res.SnapReplay.RecsPerSec, minReplay)
		}
	}
	return nil
}

func arm(name string, n int, secs float64, segs int) ReplayArm {
	rate := 0.0
	if secs > 0 {
		rate = float64(n) / secs
	}
	return ReplayArm{Name: name, Records: n, WallSecs: secs, RecsPerSec: rate, Segments: segs}
}
