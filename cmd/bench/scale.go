package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"autotune/internal/experiments"
)

// runScaleBench runs the surrogate tier scaling benchmark (BENCH_8): the
// observe+suggest cycle at deep history sizes under the dense policy vs the
// auto tier ladder, the regret guard on the synthetic suite, and the live
// daemon serving one deep-history BO study. It prints the tables,
// optionally writes JSON, and optionally enforces the PR-9 gates: cycle
// speedup at the gate size and the tiered/dense regret ratio ceiling.
func runScaleBench(quick bool, seed int64, outPath string, minSpeedup, maxRegret float64, historyCap int) error {
	start := time.Now()
	res, err := experiments.SurrogateScale(quick, seed, historyCap)
	if err != nil {
		return fmt.Errorf("scalebench: %w", err)
	}

	ms := func(ns float64) string { return fmt.Sprintf("%.2f", ns/1e6) }
	tab := experiments.Table{
		ID:      "B8",
		Title:   "Surrogate tier scaling: dense GP vs automatic dense/sparse/forest ladder",
		Claim:   "tier switching keeps the observe+suggest cycle flat as histories grow into the thousands",
		Headers: []string{"n", "tier", "dense cycle (ms)", "tiered cycle (ms)", "speedup"},
		Notes: fmt.Sprintf("gate: %.1fx at n=%d; max regret ratio %.2f; deep service suggest p50 %.1f ms at history %d",
			res.SpeedupAtGate, res.GateN, res.MaxRegretRatio, res.Deep.SuggestP50Ms, res.Deep.HistoryCap),
	}
	for _, p := range res.Points {
		dense, speed := ms(p.DenseCycleNs), fmt.Sprintf("%.1fx", p.Speedup)
		if p.DenseSkipped {
			dense, speed = "skipped (O(n³) fit)", "-"
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", p.N), p.Tier, dense, ms(p.TieredCycleNs), speed,
		})
	}
	printTable(tab, time.Since(start))

	reg := experiments.Table{
		ID:      "B8r",
		Title:   "Regret guard: best value found, dense policy vs auto tier ladder",
		Claim:   "the tier ladder trades no material regret for its speed",
		Headers: []string{"func", "optimum", "dense best", "tiered best", "regret ratio"},
		Notes:   "ratios floored at 5% of objective scale so near-optimal denominators cannot explode",
	}
	for _, p := range res.Regret {
		reg.Rows = append(reg.Rows, []string{
			p.Func,
			fmt.Sprintf("%.4f", p.Optimum),
			fmt.Sprintf("%.4f", p.DenseBest),
			fmt.Sprintf("%.4f", p.TieredBest),
			fmt.Sprintf("%.2f", p.RegretRatio),
		})
	}
	printTable(reg, time.Since(start))

	if outPath != "" {
		doc := struct {
			Benchmark string                           `json:"benchmark"`
			Quick     bool                             `json:"quick"`
			Seed      int64                            `json:"seed"`
			Result    experiments.SurrogateScaleResult `json:"result"`
		}{"surrogate-tier-scaling", quick, seed, res}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if minSpeedup > 0 && res.SpeedupAtGate < minSpeedup {
		return fmt.Errorf("scalebench: cycle speedup at n=%d is %.1fx, want >= %.0fx",
			res.GateN, res.SpeedupAtGate, minSpeedup)
	}
	if maxRegret > 0 && res.MaxRegretRatio > maxRegret {
		return fmt.Errorf("scalebench: regret ratio %.2f exceeds %.2f", res.MaxRegretRatio, maxRegret)
	}
	return nil
}
