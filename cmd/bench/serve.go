package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"autotune/internal/experiments"
)

// runServeBench runs the tuning-as-a-service load benchmark (BENCH_7):
// the real daemon on loopback HTTP, a fleet of concurrent studies, every
// observation crossing the fsync barrier. It prints the table, optionally
// writes JSON, and optionally enforces the PR-7 gate: at least minStudies
// concurrent studies sustained and a suggest/sec floor.
func runServeBench(quick bool, seed int64, outPath string, minStudies int, minSuggest float64, boHistoryCap, workers, observePerBatch int) error {
	start := time.Now()
	res, err := experiments.ServiceThroughput(quick, seed, boHistoryCap, workers, observePerBatch)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	tab := experiments.Table{
		ID:    "B7",
		Title: "Tuning as a service: concurrent studies over loopback HTTP",
		Claim: "one daemon multiplexes a four-figure study fleet at a six-figure suggest rate with every ack fsynced",
		Headers: []string{"arm", "studies", "workers", "batch", "wall (s)", "suggest/s",
			"observe/s", "shed", "p50 (ms)", "p99 (ms)", "create (s)"},
		Notes: fmt.Sprintf("%d observations durable in the store; creates pay one fsync each", res.StoreRecords),
	}
	tab.Rows = append(tab.Rows, []string{
		res.Arm.Name,
		fmt.Sprintf("%d", res.Arm.Studies),
		fmt.Sprintf("%d", res.Arm.Workers),
		fmt.Sprintf("%d", res.Arm.Batch),
		fmt.Sprintf("%.2f", res.WallSeconds),
		fmt.Sprintf("%.0f", res.SuggestPerSec),
		fmt.Sprintf("%.0f", res.ObservePerSec),
		fmt.Sprintf("%d", res.Shed),
		fmt.Sprintf("%.2f", res.SuggestP50Ms),
		fmt.Sprintf("%.2f", res.SuggestP99Ms),
		fmt.Sprintf("%.2f", res.CreateSeconds),
	})
	printTable(tab, time.Since(start))
	if outPath != "" {
		doc := struct {
			Benchmark string                    `json:"benchmark"`
			Quick     bool                      `json:"quick"`
			Seed      int64                     `json:"seed"`
			Result    experiments.ServiceResult `json:"result"`
		}{"tuning-as-a-service", quick, seed, res}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if minStudies > 0 && res.Arm.Studies < minStudies {
		return fmt.Errorf("serve: %d concurrent studies, want >= %d", res.Arm.Studies, minStudies)
	}
	if minSuggest > 0 && res.SuggestPerSec < minSuggest {
		return fmt.Errorf("serve: %.0f suggest/s, want >= %.0f", res.SuggestPerSec, minSuggest)
	}
	return nil
}
