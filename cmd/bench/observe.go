package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"autotune/internal/experiments"
)

// runObserveBench runs the durable observe throughput benchmark
// (BENCH_9): the per-caller-fsync baseline against group commit, at the
// store boundary (the gated ratio — durability matched, same disk) and
// end to end through the daemon's observe path. It prints the table,
// optionally writes JSON, and optionally enforces the PR-10 gates: a
// store-level amortization ratio floor and an absolute durable
// observe/s floor on the group-commit service arm.
func runObserveBench(quick bool, seed int64, outPath string, workers, observePerBatch int, minObserve, minRatio float64) error {
	start := time.Now()
	res, err := experiments.ObserveThroughput(quick, seed, workers, observePerBatch)
	if err != nil {
		return fmt.Errorf("observebench: %w", err)
	}
	tab := experiments.Table{
		ID:    "B9",
		Title: "Durable observe throughput: per-caller fsync vs group commit",
		Claim: "a leader-drained shared fsync amortizes the durability barrier across every concurrent observer without weakening ack-after-fsync",
		Headers: []string{"arm", "layer", "writers", "obs/req", "wall (s)", "observe/s",
			"fsyncs", "mean group", "max group", "p50 (ms)", "p99 (ms)"},
		Notes: fmt.Sprintf("store ratio %.1fx, service ratio %.1fx; baseline is the same commit path forced to groups of one",
			res.Store.Ratio, res.ServiceRatio),
	}
	st := res.Store
	tab.Rows = append(tab.Rows,
		[]string{"per-caller-fsync", "store", fmt.Sprintf("%d", st.Writers), "1",
			fmt.Sprintf("%.2f", st.Seconds), fmt.Sprintf("%.0f", st.BaselinePerSec),
			fmt.Sprintf("%d", st.BaselineFsyncs), "1.0", "1", "-", "-"},
		[]string{"group-commit", "store", fmt.Sprintf("%d", st.Writers), "1",
			fmt.Sprintf("%.2f", st.Seconds), fmt.Sprintf("%.0f", st.GroupPerSec),
			fmt.Sprintf("%d", st.GroupFsyncs), fmt.Sprintf("%.1f", st.GroupMean),
			fmt.Sprintf("%d", st.GroupMax), "-", "-"},
	)
	for _, a := range []experiments.ObserveArmResult{res.Baseline, res.Group} {
		tab.Rows = append(tab.Rows, []string{
			a.Arm.Name, "service",
			fmt.Sprintf("%d", a.Arm.Workers),
			fmt.Sprintf("%d", a.Arm.ObservePerBatch),
			fmt.Sprintf("%.2f", a.WallSeconds),
			fmt.Sprintf("%.0f", a.ObservePerSec),
			fmt.Sprintf("%d", a.Fsyncs),
			fmt.Sprintf("%.1f", a.MeanGroup),
			fmt.Sprintf("%d", a.MaxGroup),
			fmt.Sprintf("%.2f", a.ObserveP50Ms),
			fmt.Sprintf("%.2f", a.ObserveP99Ms),
		})
	}
	printTable(tab, time.Since(start))
	if outPath != "" {
		doc := struct {
			Benchmark string                    `json:"benchmark"`
			Quick     bool                      `json:"quick"`
			Seed      int64                     `json:"seed"`
			Result    experiments.ObserveResult `json:"result"`
		}{"durable-observe-throughput", quick, seed, res}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if minRatio > 0 && res.Store.Ratio < minRatio {
		return fmt.Errorf("observebench: store group-commit ratio %.1fx, want >= %.0fx", res.Store.Ratio, minRatio)
	}
	if minObserve > 0 && res.Group.ObservePerSec < minObserve {
		return fmt.Errorf("observebench: group arm sustains %.0f observe/s, want >= %.0f", res.Group.ObservePerSec, minObserve)
	}
	return nil
}
