// Command autotune runs an offline tuning session against one of the
// simulated systems and prints (and optionally persists) the result.
//
// Usage:
//
//	autotune -system simdb -workload tpcc -optimizer bo -budget 60
//	autotune -system simredis -workload ycsb-b -metric p95 -optimizer smac
//	autotune -system simdb -optimizer bo -parallel 4 -out report.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"autotune/internal/core"
	"autotune/internal/simsys"
	"autotune/internal/trial"
	"autotune/internal/workload"
)

func main() {
	var (
		system  = flag.String("system", "simdb", "system to tune: simdb | simredis | simspark")
		wlName  = flag.String("workload", "tpcc", "workload: ycsb-a..f | tpcc | tpch-sf1")
		optName = flag.String("optimizer", "bo", fmt.Sprintf("optimizer: %v", core.OptimizerNames()))
		metric  = flag.String("metric", "latency", "objective: latency | p95 | throughput")
		vmSize  = flag.String("vm", "medium", "host size: small | medium | large")
		budget  = flag.Int("budget", 60, "number of trials")
		par     = flag.Int("parallel", 1, "batch-parallel trials")
		abort   = flag.Float64("abort-margin", 0, "early-abort margin (0 disables)")
		fid     = flag.Float64("fidelity", 1, "benchmark fidelity in (0, 1]")
		seed    = flag.Int64("seed", 1, "random seed")
		noise   = flag.Float64("noise", 0, "measurement noise sigma (0 = deterministic)")
		out     = flag.String("out", "", "write the full trial report to this JSON file")
	)
	flag.Parse()

	if err := run(*system, *wlName, *optName, *metric, *vmSize, *budget, *par, *abort, *fid, *seed, *noise, *out); err != nil {
		fmt.Fprintln(os.Stderr, "autotune:", err)
		os.Exit(1)
	}
}

func run(system, wlName, optName, metric, vmSize string, budget, par int, abort, fid float64, seed int64, noise float64, out string) error {
	spec := simsys.VMByName(vmSize)
	var sys simsys.System
	switch system {
	case "simdb":
		d := simsys.NewDBMS(spec)
		if noise > 0 {
			d.NoiseSigma = noise
		}
		sys = d
	case "simredis":
		r := simsys.NewRedis(spec)
		if noise > 0 {
			r.NoiseSigma = noise
		}
		sys = r
	case "simspark":
		s := simsys.NewSpark(spec)
		if noise > 0 {
			s.NoiseSigma = noise
		}
		sys = s
	default:
		return fmt.Errorf("unknown system %q", system)
	}
	wl, err := workload.ByName(wlName)
	if err != nil {
		return err
	}
	objective := func(m simsys.Metrics) float64 { return m.LatencyMS }
	switch metric {
	case "latency":
	case "p95":
		objective = func(m simsys.Metrics) float64 { return m.P95MS }
	case "throughput":
		objective = func(m simsys.Metrics) float64 { return -m.ThroughputOps }
	default:
		return fmt.Errorf("unknown metric %q", metric)
	}

	var rng *rand.Rand
	if noise > 0 {
		rng = rand.New(rand.NewSource(seed + 1))
	}
	env := &trial.SystemEnv{Sys: sys, WL: wl, Objective: objective, Rng: rng}
	opt, err := core.NewOptimizer(optName, sys.Space(), rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	fmt.Printf("tuning %s on %s (%s VM) with %s, %d trials...\n",
		system, wl.Name, vmSize, optName, budget)
	rep, err := trial.Run(opt, env, trial.Options{
		Budget: budget, Parallel: par, AbortMargin: abort, Fidelity: fid,
	})
	if err != nil {
		return err
	}

	defRes, defErr := env.Run(sys.Space().Default(), fid)
	fmt.Printf("\nbest objective: %.6g", rep.BestValue)
	if defErr == nil {
		fmt.Printf("   (default: %.6g, improvement %.1f%%)",
			defRes.Value, 100*(defRes.Value-rep.BestValue)/absf(defRes.Value))
	}
	fmt.Printf("\ntrials: %d   crashes: %d   aborts: %d   cost: %.0fs (wall %.0fs)\n\n",
		len(rep.Trials), rep.Crashes, rep.Aborts, rep.TotalCostSeconds, rep.WallClockSeconds)

	fmt.Println("best configuration:")
	names := make([]string, 0, len(rep.BestConfig))
	for k := range rep.BestConfig {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Printf("  %-24s = %v\n", k, rep.BestConfig[k])
	}
	if out != "" {
		if err := rep.Save(out); err != nil {
			return err
		}
		fmt.Printf("\nreport written to %s\n", out)
	}
	return nil
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	if v == 0 {
		return 1
	}
	return v
}
