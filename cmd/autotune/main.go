// Command autotune runs an offline tuning session against one of the
// simulated systems and prints (and optionally persists) the result.
//
// Usage:
//
//	autotune -system simdb -workload tpcc -optimizer bo -budget 60
//	autotune -system simredis -workload ycsb-b -metric p95 -optimizer smac
//	autotune -system simdb -optimizer bo -parallel 4 -out report.json
//
// Resilient execution (fault injection, retries, deadlines, checkpoints):
//
//	autotune -system simdb -faults 0.25 -retries 4 -trial-timeout 2s
//	autotune -system simdb -budget 200 -checkpoint ckpt.json
//	autotune -system simdb -budget 200 -checkpoint ckpt.json -resume
//
// Asynchronous scheduling (hedged stragglers, write-ahead trial journal):
//
//	autotune -system simdb -parallel 8 -sched -hedge 0.9 -faults 0.2
//	autotune -system simdb -budget 200 -journal trials.wal
//	autotune -system simdb -budget 200 -journal trials.wal -resume
//
// Persistent study store (segmented, crash-safe, multi-study):
//
//	autotune -system simdb -budget 200 -store studies/
//	autotune -system simdb -budget 200 -store studies/ -resume
//	autotune -system simdb -journal trials.wal -store studies/   # migrate v0 journal
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"autotune/internal/bo"
	"autotune/internal/cloud"
	"autotune/internal/core"
	"autotune/internal/resilience"
	"autotune/internal/sched"
	"autotune/internal/simsys"
	"autotune/internal/trial"
	"autotune/internal/workload"
)

// cliOptions collects every flag so tests can drive run() directly.
type cliOptions struct {
	system, wlName, optName, metric, vmSize string
	budget, parallel                        int
	abortMargin, fidelity                   float64
	seed                                    int64
	noise                                   float64
	out                                     string

	// Resilience.
	faults       float64 // transient fault injection rate (0 = off)
	hangs        float64 // hang injection rate (0 = off)
	retries      int
	trialTimeout time.Duration
	checkpoint   string
	resume       bool

	// Asynchronous scheduling.
	sched   bool    // enable the async scheduler even without hedging
	workers int     // worker slots (0 = one per parallel trial)
	hedge   float64 // straggler hedge quantile in (0,1) (0 = off)
	journal string  // write-ahead trial journal path

	// Persistent study store.
	store string // segmented study store directory (supersedes -journal)
	study string // study name inside -store ("" = derived from system/workload)

	// Performance.
	dedup     bool   // deduplicate identical (config, fidelity) evaluations
	gpWorkers int    // surrogate gram/predict goroutines (0 = GOMAXPROCS)
	surrogate string // BO surrogate tier policy ("" = auto)
	denseMax  int    // auto policy's dense-GP history ceiling (0 = default)
}

func main() {
	var o cliOptions
	flag.StringVar(&o.system, "system", "simdb", "system to tune: simdb | simredis | simspark")
	flag.StringVar(&o.wlName, "workload", "tpcc", "workload: ycsb-a..f | tpcc | tpch-sf1")
	flag.StringVar(&o.optName, "optimizer", "bo", fmt.Sprintf("optimizer: %v", core.OptimizerNames()))
	flag.StringVar(&o.metric, "metric", "latency", "objective: latency | p95 | throughput")
	flag.StringVar(&o.vmSize, "vm", "medium", "host size: small | medium | large")
	flag.IntVar(&o.budget, "budget", 60, "number of trials")
	flag.IntVar(&o.parallel, "parallel", 1, "batch-parallel trials")
	flag.Float64Var(&o.abortMargin, "abort-margin", 0, "early-abort margin (0 disables)")
	flag.Float64Var(&o.fidelity, "fidelity", 1, "benchmark fidelity in (0, 1]")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.Float64Var(&o.noise, "noise", 0, "measurement noise sigma (0 = deterministic)")
	flag.StringVar(&o.out, "out", "", "write the full trial report to this JSON file")
	flag.Float64Var(&o.faults, "faults", 0, "inject transient trial failures at this rate (0 = off)")
	flag.Float64Var(&o.hangs, "hangs", 0, "inject hanging trials at this rate (0 = off)")
	flag.IntVar(&o.retries, "retries", 0, "retry transient trial failures this many times (exponential backoff)")
	flag.DurationVar(&o.trialTimeout, "trial-timeout", 0, "per-trial deadline (0 = unbounded)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "checkpoint the run to this file (enables -resume)")
	flag.BoolVar(&o.resume, "resume", false, "resume from -checkpoint/-journal instead of starting over")
	flag.BoolVar(&o.sched, "sched", false, "run trials on the asynchronous scheduler instead of the batch barrier")
	flag.IntVar(&o.workers, "workers", 0, "scheduler worker slots (0 = one per parallel trial)")
	flag.Float64Var(&o.hedge, "hedge", 0, "hedge stragglers past this quantile of recent durations (0 = off, implies -sched)")
	flag.StringVar(&o.journal, "journal", "", "append every completed trial to this fsync'd write-ahead journal")
	flag.StringVar(&o.store, "store", "", "journal trials into the crash-safe segmented study store at this directory (with -journal: migrate the journal in first)")
	flag.StringVar(&o.study, "study", "", "study name inside -store (default: <system>-<workload>)")
	flag.BoolVar(&o.dedup, "dedup", false, "reuse cached results for repeated (config, fidelity) evaluations")
	flag.IntVar(&o.gpWorkers, "gp-workers", 0, "GP surrogate gram/predict goroutines (0 = GOMAXPROCS; results are identical for any value)")
	flag.StringVar(&o.surrogate, "surrogate", "auto", "BO surrogate tier: auto | dense | sparse | local | forest")
	flag.IntVar(&o.denseMax, "dense-max", 0, "history size past which the auto policy leaves the dense GP (0 = default 512)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "autotune:", err)
		os.Exit(1)
	}
}

func run(o cliOptions) error {
	spec := simsys.VMByName(o.vmSize)
	var sys simsys.System
	switch o.system {
	case "simdb":
		d := simsys.NewDBMS(spec)
		if o.noise > 0 {
			d.NoiseSigma = o.noise
		}
		sys = d
	case "simredis":
		r := simsys.NewRedis(spec)
		if o.noise > 0 {
			r.NoiseSigma = o.noise
		}
		sys = r
	case "simspark":
		s := simsys.NewSpark(spec)
		if o.noise > 0 {
			s.NoiseSigma = o.noise
		}
		sys = s
	default:
		return fmt.Errorf("unknown system %q", o.system)
	}
	wl, err := workload.ByName(o.wlName)
	if err != nil {
		return err
	}
	objective := func(m simsys.Metrics) float64 { return m.LatencyMS }
	switch o.metric {
	case "latency":
	case "p95":
		objective = func(m simsys.Metrics) float64 { return m.P95MS }
	case "throughput":
		objective = func(m simsys.Metrics) float64 { return -m.ThroughputOps }
	default:
		return fmt.Errorf("unknown metric %q", o.metric)
	}

	var rng *rand.Rand
	if o.noise > 0 {
		rng = rand.New(rand.NewSource(o.seed + 1))
	}
	var env trial.Environment = &trial.SystemEnv{Sys: sys, WL: wl, Objective: objective, Rng: rng}
	var injector *resilience.Injector
	var hardened *resilience.Env
	var hosts []cloud.HostProfile
	if o.faults > 0 || o.hangs > 0 {
		// A small fleet with TUNA-style flaky machines supplies per-host
		// faults on top of the flat injection rates.
		hosts = cloud.SampleHosts(8, cloud.Options{FlakyProb: 0.2}, rand.New(rand.NewSource(o.seed+2)))
		injector = resilience.NewInjector(env, resilience.InjectorOptions{
			TransientProb: o.faults,
			HangProb:      o.hangs,
			StragglerProb: o.faults / 2,
			Hosts:         hosts,
			Seed:          o.seed + 3,
		})
		env = injector
	}
	if o.retries > 0 || o.trialTimeout > 0 || injector != nil {
		hardened = resilience.Wrap(env, resilience.Options{
			Retries:      o.retries,
			TrialTimeout: o.trialTimeout,
			Breaker:      resilience.NewBreaker(),
			Seed:         o.seed + 4,
		})
		env = hardened
	}
	opt, err := core.NewOptimizer(o.optName, sys.Space(), rand.New(rand.NewSource(o.seed)))
	if err != nil {
		return err
	}
	boOpt, isBO := opt.(*bo.BO)
	if isBO {
		if o.gpWorkers > 0 {
			boOpt.SetGPWorkers(o.gpWorkers)
		}
		pol, ok := bo.ParseSurrogate(o.surrogate)
		if !ok {
			return fmt.Errorf("unknown -surrogate %q (want auto | dense | sparse | local | forest)", o.surrogate)
		}
		boOpt.SetSurrogate(pol)
		if o.denseMax > 0 {
			boOpt.SetDenseMax(o.denseMax)
		}
	} else if o.surrogate != "auto" && o.surrogate != "" {
		return fmt.Errorf("-surrogate applies to the bo optimizer, not %q", o.optName)
	}
	topts := trial.Options{
		Budget: o.budget, Parallel: o.parallel, AbortMargin: o.abortMargin, Fidelity: o.fidelity,
		Checkpoint: o.checkpoint, Journal: o.journal, DedupEvals: o.dedup,
	}
	var storeSink *trial.StudyJournal
	if o.store != "" {
		topts.Store = o.store
		topts.Study = o.study
		if topts.Study == "" {
			topts.Study = o.system + "-" + o.wlName
		}
		if o.journal != "" {
			// Fold the v0 journal into the store so the run (and any
			// resume) sees one durable history, then journal there only.
			n, err := trial.MigrateJournal(o.journal, o.store, topts.Study)
			if err != nil {
				return err
			}
			if n > 0 {
				fmt.Printf("migrated %d journal records from %s into %s\n", n, o.journal, o.store)
			}
			topts.Journal = ""
		}
		// Own the store handle instead of letting the run open its own:
		// the end-of-run stats line then reports the write path this run
		// actually took (fsyncs, group amortization), which a fresh
		// read-only handle could not see. topts.Store stays set so resume
		// still knows where the durable history lives.
		sj, err := trial.OpenStudyJournal(o.store, topts.Study)
		if err != nil {
			return err
		}
		defer sj.Close()
		topts.Sink = sj
		storeSink = sj
	}
	if o.trialTimeout > 0 {
		topts.DegradeAfterTimeouts = 3
	}
	if o.sched || o.hedge > 0 || o.workers > 0 {
		// The scheduler places trials on the same fleet the injector
		// samples from (when faults are on), so hedging sees the real
		// host speed multipliers.
		topts.Scheduler = &sched.Options{Hosts: hosts, Workers: o.workers, HedgeQuantile: o.hedge}
	}
	ctx := context.Background()
	var rep trial.Report
	if o.resume {
		if o.checkpoint == "" && o.journal == "" && o.store == "" {
			return fmt.Errorf("-resume needs -checkpoint, -journal, or -store")
		}
		from := o.checkpoint
		if from == "" {
			from = o.journal
		}
		if from == "" {
			from = o.store
		}
		fmt.Printf("resuming %s on %s from %s...\n", o.system, wl.Name, from)
		rep, err = trial.ResumeContext(ctx, opt, env, topts)
	} else {
		fmt.Printf("tuning %s on %s (%s VM) with %s, %d trials...\n",
			o.system, wl.Name, o.vmSize, o.optName, o.budget)
		rep, err = trial.RunContext(ctx, opt, env, topts)
	}
	if err != nil {
		return err
	}

	defRes, defErr := env.Run(ctx, sys.Space().Default(), o.fidelity)
	fmt.Printf("\nbest objective: %.6g", rep.BestValue)
	if defErr == nil {
		fmt.Printf("   (default: %.6g, improvement %.1f%%)",
			defRes.Value, 100*(defRes.Value-rep.BestValue)/absf(defRes.Value))
	}
	fmt.Printf("\ntrials: %d   crashes: %d   aborts: %d   cost: %.0fs (wall %.0fs)\n",
		len(rep.Trials), rep.Crashes, rep.Aborts, rep.TotalCostSeconds, rep.WallClockSeconds)
	if rep.Resumed > 0 || rep.Timeouts > 0 || rep.Degradations > 0 {
		fmt.Printf("resumed: %d   timeouts: %d   fidelity degradations: %d\n",
			rep.Resumed, rep.Timeouts, rep.Degradations)
	}
	if topts.Scheduler != nil {
		fmt.Printf("scheduler: %d hedges (%d wins)   panics: %d\n",
			rep.Hedges, rep.HedgeWins, rep.Panics)
	}
	if o.dedup {
		fmt.Printf("eval cache: %d hits\n", rep.CacheHits)
	}
	if isBO {
		if s := boOpt.Stats(); s.Tier != "" {
			fmt.Printf("surrogate: tier=%s switches=%d incremental=%d refits=%d\n",
				s.Tier, s.TierSwitches, s.IncrementalUpdates, s.FullRefits)
		}
	}
	if storeSink != nil {
		stats := storeSink.Store().Stats()
		fmt.Printf("store: %d records in %d studies (%d segments, snapshot seq %d, %d quarantined)\n",
			stats.Records, stats.Studies, stats.Segments, stats.SnapshotSeq, stats.Quarantined)
		fmt.Printf("store commit: %d appends, %d bytes, %d fsyncs in %d groups (mean %.1f, max %d)%s\n",
			stats.Appended, stats.AppendedBytes, stats.Fsyncs, stats.Groups,
			stats.MeanGroup(), stats.MaxGroup, poisonedSuffix(stats.Poisoned))
	}
	if hardened != nil {
		s := hardened.Stats()
		fmt.Printf("resilience: %d attempts, %d retries, %d timeouts, %d quarantined\n",
			s.Attempts, s.Retries, s.Timeouts, s.Quarantined)
	}
	if injector != nil {
		s := injector.Stats()
		fmt.Printf("injected: %d transients, %d hangs, %d stragglers, %d host faults\n",
			s.Transients, s.Hangs, s.Stragglers, s.HostFaults)
	}
	fmt.Println()

	fmt.Println("best configuration:")
	names := make([]string, 0, len(rep.BestConfig))
	for k := range rep.BestConfig {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Printf("  %-24s = %v\n", k, rep.BestConfig[k])
	}
	if o.out != "" {
		if err := rep.Save(o.out); err != nil {
			return err
		}
		fmt.Printf("\nreport written to %s\n", o.out)
	}
	return nil
}

// poisonedSuffix flags a store whose write path failed mid-run: every
// record reported above is still durable, but later appends were refused.
func poisonedSuffix(poisoned bool) string {
	if poisoned {
		return "  [POISONED: writes refused after an fsync failure]"
	}
	return ""
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	if v == 0 {
		return 1
	}
	return v
}
