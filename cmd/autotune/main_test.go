package main

import (
	"path/filepath"
	"testing"
	"time"
)

func base() cliOptions {
	return cliOptions{
		system: "simdb", wlName: "tpcc", optName: "random", metric: "latency",
		vmSize: "medium", budget: 5, parallel: 1, fidelity: 1, seed: 1,
	}
}

func TestRunAllSystems(t *testing.T) {
	cases := []struct {
		system, wl, metric string
	}{
		{"simdb", "tpcc", "latency"},
		{"simredis", "ycsb-b", "p95"},
		{"simspark", "tpch-sf1", "latency"},
		{"simdb", "ycsb-a", "throughput"},
	}
	for _, c := range cases {
		o := base()
		o.system, o.wlName, o.metric = c.system, c.wl, c.metric
		if err := run(o); err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
	}
}

func TestRunWritesReport(t *testing.T) {
	o := base()
	o.vmSize = "small"
	o.parallel = 2
	o.abortMargin = 0.25
	o.fidelity = 0.5
	o.seed = 2
	o.noise = 0.02
	o.out = filepath.Join(t.TempDir(), "report.json")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithFaultInjectionAndRetries(t *testing.T) {
	o := base()
	o.budget = 10
	o.faults = 0.3
	o.hangs = 0.05
	o.retries = 5
	o.trialTimeout = 250 * time.Millisecond
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckpointThenResume(t *testing.T) {
	o := base()
	o.budget = 8
	o.checkpoint = filepath.Join(t.TempDir(), "ckpt.json")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	// Resume from the completed checkpoint: nothing left to run, but the
	// report must be reproduced.
	o.resume = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	bad := func(mutate func(*cliOptions)) cliOptions {
		o := base()
		mutate(&o)
		return o
	}
	if err := run(bad(func(o *cliOptions) { o.system = "bogus" })); err == nil {
		t.Fatal("unknown system should error")
	}
	if err := run(bad(func(o *cliOptions) { o.wlName = "bogus" })); err == nil {
		t.Fatal("unknown workload should error")
	}
	if err := run(bad(func(o *cliOptions) { o.optName = "bogus" })); err == nil {
		t.Fatal("unknown optimizer should error")
	}
	if err := run(bad(func(o *cliOptions) { o.metric = "bogus" })); err == nil {
		t.Fatal("unknown metric should error")
	}
	if err := run(bad(func(o *cliOptions) { o.resume = true })); err == nil {
		t.Fatal("resume without checkpoint should error")
	}
}
