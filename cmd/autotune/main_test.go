package main

import (
	"path/filepath"
	"testing"
)

func TestRunAllSystems(t *testing.T) {
	cases := []struct {
		system, wl, metric string
	}{
		{"simdb", "tpcc", "latency"},
		{"simredis", "ycsb-b", "p95"},
		{"simspark", "tpch-sf1", "latency"},
		{"simdb", "ycsb-a", "throughput"},
	}
	for _, c := range cases {
		if err := run(c.system, c.wl, "random", c.metric, "medium", 5, 1, 0, 1, 1, 0, ""); err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
	}
}

func TestRunWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	if err := run("simdb", "tpcc", "random", "latency", "small", 5, 2, 0.25, 0.5, 2, 0.02, out); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("bogus", "tpcc", "random", "latency", "medium", 5, 1, 0, 1, 1, 0, ""); err == nil {
		t.Fatal("unknown system should error")
	}
	if err := run("simdb", "bogus", "random", "latency", "medium", 5, 1, 0, 1, 1, 0, ""); err == nil {
		t.Fatal("unknown workload should error")
	}
	if err := run("simdb", "tpcc", "bogus", "latency", "medium", 5, 1, 0, 1, 1, 0, ""); err == nil {
		t.Fatal("unknown optimizer should error")
	}
	if err := run("simdb", "tpcc", "random", "bogus", "medium", 5, 1, 0, 1, 1, 0, ""); err == nil {
		t.Fatal("unknown metric should error")
	}
}
