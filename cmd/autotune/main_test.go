package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func base() cliOptions {
	return cliOptions{
		system: "simdb", wlName: "tpcc", optName: "random", metric: "latency",
		vmSize: "medium", budget: 5, parallel: 1, fidelity: 1, seed: 1,
	}
}

func TestRunAllSystems(t *testing.T) {
	cases := []struct {
		system, wl, metric string
	}{
		{"simdb", "tpcc", "latency"},
		{"simredis", "ycsb-b", "p95"},
		{"simspark", "tpch-sf1", "latency"},
		{"simdb", "ycsb-a", "throughput"},
	}
	for _, c := range cases {
		o := base()
		o.system, o.wlName, o.metric = c.system, c.wl, c.metric
		if err := run(o); err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
	}
}

func TestRunWritesReport(t *testing.T) {
	o := base()
	o.vmSize = "small"
	o.parallel = 2
	o.abortMargin = 0.25
	o.fidelity = 0.5
	o.seed = 2
	o.noise = 0.02
	o.out = filepath.Join(t.TempDir(), "report.json")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithFaultInjectionAndRetries(t *testing.T) {
	o := base()
	o.budget = 10
	o.faults = 0.3
	o.hangs = 0.05
	o.retries = 5
	o.trialTimeout = 250 * time.Millisecond
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckpointThenResume(t *testing.T) {
	o := base()
	o.budget = 8
	o.checkpoint = filepath.Join(t.TempDir(), "ckpt.json")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	// Resume from the completed checkpoint: nothing left to run, but the
	// report must be reproduced.
	o.resume = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

// captureRun executes run(o) with stdout redirected and returns
// everything it printed.
func captureRun(t *testing.T, o cliOptions) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	runErr := run(o)
	os.Stdout = old
	w.Close()
	out, readErr := io.ReadAll(r)
	r.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}
	return string(out)
}

// TestRunBitwiseDeterministic is the determinism invariant the lint
// suite exists to protect: two runs with the same seed must produce
// byte-identical output, across every optimizer and with measurement
// noise and parallelism turned on. Nothing printed may depend on the
// wall clock, global RNG state, or map iteration order.
func TestRunBitwiseDeterministic(t *testing.T) {
	for _, opt := range []string{"random", "anneal", "genetic", "bo"} {
		o := base()
		o.optName = opt
		o.budget = 8
		o.parallel = 2
		o.noise = 0.05
		o.seed = 42
		first := captureRun(t, o)
		second := captureRun(t, o)
		if first != second {
			t.Fatalf("%s: output differs between identically-seeded runs:\n--- run 1\n%s\n--- run 2\n%s",
				opt, first, second)
		}
		if first == "" {
			t.Fatalf("%s: captured no output", opt)
		}
	}
}

// TestRunParallelGramBitwiseDeterministic pins the parallel-surrogate
// contract: the GP partitions gram rows by index so every matrix element
// has exactly one writer, meaning the worker count must never change a
// single output byte — not merely run-to-run stability, but equality
// across -gp-workers settings.
func TestRunParallelGramBitwiseDeterministic(t *testing.T) {
	outputs := make([]string, 0, 3)
	for _, workers := range []int{1, 2, 4} {
		o := base()
		o.optName = "bo"
		o.budget = 8
		o.parallel = 2
		o.noise = 0.05
		o.seed = 42
		o.gpWorkers = workers
		outputs = append(outputs, captureRun(t, o))
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("output with gp-workers=%d differs from gp-workers=1:\n--- 1 worker\n%s\n--- %d workers\n%s",
				[]int{1, 2, 4}[i], outputs[0], []int{1, 2, 4}[i], outputs[i])
		}
	}
	if outputs[0] == "" {
		t.Fatal("captured no output")
	}
}

// TestRunDedupEvals drives the evaluation cache from the CLI and checks
// the stats line appears and the run stays deterministic.
func TestRunDedupEvals(t *testing.T) {
	o := base()
	o.optName = "random"
	o.budget = 8
	o.dedup = true
	first := captureRun(t, o)
	second := captureRun(t, o)
	if first != second {
		t.Fatalf("dedup output differs between identically-seeded runs:\n--- run 1\n%s\n--- run 2\n%s",
			first, second)
	}
	if !strings.Contains(first, "eval cache:") {
		t.Fatalf("eval cache stats line missing from output:\n%s", first)
	}
}

func TestRunValidation(t *testing.T) {
	bad := func(mutate func(*cliOptions)) cliOptions {
		o := base()
		mutate(&o)
		return o
	}
	if err := run(bad(func(o *cliOptions) { o.system = "bogus" })); err == nil {
		t.Fatal("unknown system should error")
	}
	if err := run(bad(func(o *cliOptions) { o.wlName = "bogus" })); err == nil {
		t.Fatal("unknown workload should error")
	}
	if err := run(bad(func(o *cliOptions) { o.optName = "bogus" })); err == nil {
		t.Fatal("unknown optimizer should error")
	}
	if err := run(bad(func(o *cliOptions) { o.metric = "bogus" })); err == nil {
		t.Fatal("unknown metric should error")
	}
	if err := run(bad(func(o *cliOptions) { o.resume = true })); err == nil {
		t.Fatal("resume without checkpoint should error")
	}
}

// TestRunHedgedBitwiseDeterministic extends the determinism invariant to
// the asynchronous scheduler: hedging, fault injection, parallelism, and
// measurement noise together must still produce byte-identical output
// for identical seeds — the virtual clock evaluates trials in a fixed
// order, so hedge decisions and injector draws are reproducible.
func TestRunHedgedBitwiseDeterministic(t *testing.T) {
	o := base()
	o.optName = "random"
	o.budget = 12
	o.parallel = 4
	o.noise = 0.05
	o.seed = 42
	o.sched = true
	o.hedge = 0.8
	o.faults = 0.2
	first := captureRun(t, o)
	second := captureRun(t, o)
	if first != second {
		t.Fatalf("hedged output differs between identically-seeded runs:\n--- run 1\n%s\n--- run 2\n%s",
			first, second)
	}
	if !strings.Contains(first, "scheduler:") {
		t.Fatalf("scheduler stats line missing from output:\n%s", first)
	}
}

// TestRunJournalThenResume drives the WAL path end to end from the CLI:
// a run journals every trial, and a -resume run replays the journal
// (re-running nothing) even though no checkpoint was ever written.
func TestRunJournalThenResume(t *testing.T) {
	o := base()
	o.budget = 8
	o.journal = filepath.Join(t.TempDir(), "trials.wal")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	o.resume = true
	out := captureRun(t, o)
	if !strings.Contains(out, "resumed: 8") {
		t.Fatalf("resume did not replay the journal:\n%s", out)
	}
}

// TestRunStoreThenResume drives the segmented study store end to end
// from the CLI: a run journals into -store, a -resume run replays it
// (re-running nothing), and the store stats line reports the records.
func TestRunStoreThenResume(t *testing.T) {
	o := base()
	o.budget = 8
	o.store = filepath.Join(t.TempDir(), "studies")
	out := captureRun(t, o)
	if !strings.Contains(out, "store: 8 records in 1 studies") {
		t.Fatalf("store stats line missing or wrong:\n%s", out)
	}
	o.resume = true
	out = captureRun(t, o)
	if !strings.Contains(out, "resumed: 8") {
		t.Fatalf("resume did not replay the store:\n%s", out)
	}
}

// TestRunJournalMigratesIntoStore: giving both -journal and -store folds
// the v0 journal into the store and resumes from the merged history.
func TestRunJournalMigratesIntoStore(t *testing.T) {
	tmp := t.TempDir()
	o := base()
	o.budget = 8
	o.journal = filepath.Join(tmp, "trials.wal")
	if err := run(o); err != nil {
		t.Fatal(err)
	}

	o.store = filepath.Join(tmp, "studies")
	o.resume = true
	out := captureRun(t, o)
	if !strings.Contains(out, "migrated 8 journal records") {
		t.Fatalf("migration line missing:\n%s", out)
	}
	if !strings.Contains(out, "resumed: 8") {
		t.Fatalf("resume did not replay the migrated history:\n%s", out)
	}
	if _, err := os.Stat(o.journal); !os.IsNotExist(err) {
		t.Fatalf("v0 journal still present after migration: %v", err)
	}
}

// TestRunSurrogateTiersBitwiseDeterministic extends the determinism
// invariant to the surrogate tier ladder: every pinned tier, and an auto
// run whose lowered threshold forces a live dense→sparse switch, must
// print byte-identical output across identically-seeded runs, and the
// stats must name the tier that served the run.
func TestRunSurrogateTiersBitwiseDeterministic(t *testing.T) {
	cases := []struct {
		name     string
		surr     string
		denseMax int
		tier     string
	}{
		{"sparse", "sparse", 0, "tier=sparse"},
		{"local", "local", 0, "tier=local"},
		{"forest", "forest", 0, "tier=forest"},
		{"auto-switch", "auto", 6, "tier=sparse"},
	}
	for _, c := range cases {
		o := base()
		o.optName = "bo"
		o.budget = 12
		o.parallel = 2
		o.noise = 0.05
		o.seed = 42
		o.surrogate = c.surr
		o.denseMax = c.denseMax
		first := captureRun(t, o)
		second := captureRun(t, o)
		if first != second {
			t.Fatalf("%s: output differs between identically-seeded runs:\n--- run 1\n%s\n--- run 2\n%s",
				c.name, first, second)
		}
		if !strings.Contains(first, c.tier) {
			t.Fatalf("%s: output does not report %q:\n%s", c.name, c.tier, first)
		}
	}
}

// TestRunSurrogateValidation: unknown tier names and non-BO optimizers
// must fail fast instead of silently tuning with the wrong model.
func TestRunSurrogateValidation(t *testing.T) {
	o := base()
	o.optName = "bo"
	o.surrogate = "kriging"
	if err := run(o); err == nil || !strings.Contains(err.Error(), "surrogate") {
		t.Fatalf("expected unknown-surrogate error, got %v", err)
	}
	o = base()
	o.optName = "random"
	o.surrogate = "forest"
	if err := run(o); err == nil || !strings.Contains(err.Error(), "surrogate") {
		t.Fatalf("expected surrogate/optimizer mismatch error, got %v", err)
	}
}
