// Command autotuned is the tuning-as-a-service daemon: it hosts many
// concurrent studies over JSON HTTP endpoints, persists every
// acknowledged observation through the crash-safe study store before
// responding, and drains gracefully on SIGTERM/SIGINT (stop admitting,
// finish in-flight requests, seal the study log, exit 0).
//
// Usage:
//
//	autotuned -store /var/lib/autotuned [-addr 127.0.0.1:8153]
//
// Endpoints:
//
//	POST /v1/studies                     create a study (idempotent)
//	GET  /v1/studies                     list studies
//	POST /v1/studies/{study}/suggest     propose trial configurations
//	POST /v1/studies/{study}/observe     report results (exactly-once)
//	GET  /v1/studies/{study}/best        incumbent configuration
//	GET  /v1/studies/{study}/pareto      non-dominated front
//	GET  /v1/studies/{study}/trials      durable history
//	GET  /healthz /readyz /metrics       probes and counters
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"autotune/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8153", "listen address (host:port; port 0 picks a free port)")
		store        = flag.String("store", "", "study store directory (required; created if absent)")
		segmentBytes = flag.Int64("segment-bytes", 0, "store segment rotation threshold (0 = store default)")
		admission    = flag.Int("admission", 64, "max concurrent suggest requests before shedding with 429")
		highWater    = flag.Int("ready-high-water", 0, "suggest occupancy at which /readyz fails (0 = 3/4 of -admission)")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "per-request deadline")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "max time to finish in-flight requests on shutdown")
		optimizer    = flag.String("optimizer", "bo", "default strategy for studies that do not name one")
		shards       = flag.Int("shards", 0, "study shard count (0 = GOMAXPROCS); studies on different shards never contend on one lock")
		shardStores  = flag.Bool("shard-stores", false, "give every shard its own store directory under -store (independent commit queues)")
		noGroup      = flag.Bool("no-group-commit", false, "disable group commit: every observe batch pays its own fsync (benchmark baseline)")
		quiet        = flag.Bool("quiet", false, "suppress operational logging")
	)
	flag.Parse()
	if *store == "" {
		fmt.Fprintln(os.Stderr, "autotuned: -store is required")
		flag.Usage()
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "autotuned ", log.LstdFlags)
	if *quiet {
		logger = nil
	}
	srv, err := server.New(server.Options{
		StoreDir:           *store,
		SegmentBytes:       *segmentBytes,
		AdmissionLimit:     *admission,
		ReadyHighWater:     *highWater,
		RequestTimeout:     *reqTimeout,
		DrainTimeout:       *drainTimeout,
		DefaultOptimizer:   *optimizer,
		Shards:             *shards,
		ShardStores:        *shardStores,
		DisableGroupCommit: *noGroup,
		Log:                logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "autotuned: %v\n", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	// The "listening on" line is the readiness handshake for scripts and
	// tests: it is printed to stdout only after the port is bound.
	err = srv.ListenAndServe(ctx, *addr, func(a net.Addr) {
		fmt.Printf("autotuned listening on %s\n", a)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "autotuned: %v\n", err)
		os.Exit(1)
	}
}
