package main

// Subprocess torture tests: these build the real binary, drive it over
// loopback HTTP, and then do to it what production does — kill -9 in the
// middle of a loaded batch, SIGTERM under load — asserting the service
// contract: every acknowledged observation survives exactly once,
// restarted studies suggest deterministically, and a drain exits 0 with
// a sealed log.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"autotune/internal/server"
	"autotune/internal/studystore"
	"autotune/internal/trial"
)

var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "autotuned-bin")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "autotuned")
	if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "build autotuned: %v\n%s", err, out)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// startDaemon launches the binary on a free port and returns once the
// readiness line has been printed.
func startDaemon(t *testing.T, store string, extra ...string) (*exec.Cmd, *server.Client) {
	t.Helper()
	args := append([]string{"-store", store, "-addr", "127.0.0.1:0", "-quiet"}, extra...)
	cmd := exec.Command(binPath, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if addr, ok := strings.CutPrefix(line, "autotuned listening on "); ok {
			return cmd, server.NewClient("http://" + addr)
		}
	}
	t.Fatalf("daemon exited before readiness line: %v", sc.Err())
	return nil, nil
}

func waitDead(t *testing.T, cmd *exec.Cmd) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit within 60s")
		return nil
	}
}

// ackValue is the deterministic objective used by the load workers, so
// recovered records can be checked value-for-value.
func ackValue(study string, id int64) float64 {
	return float64(len(study)) + float64(id)*0.25
}

type ackKey struct {
	study string
	trial int64
}

// hammer runs one worker per study doing suggest/observe batches until
// the daemon stops answering, recording every successful ack.
func hammer(c *server.Client, studies []string, acked *sync.Map, total *atomic.Int64, stopOnErr func(error) bool) *sync.WaitGroup {
	var wg sync.WaitGroup
	for _, study := range studies {
		study := study
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for {
				sugg, err := c.Suggest(ctx, study, 4)
				if err != nil {
					if stopOnErr(err) {
						return
					}
					continue
				}
				obs := make([]server.Observation, len(sugg))
				for i, s := range sugg {
					obs[i] = server.Observation{
						Trial: s.Trial, Config: s.Config, Value: ackValue(study, s.Trial),
						Metrics: map[string]float64{"iter": float64(s.Trial)},
					}
				}
				res, err := c.Observe(ctx, study, obs...)
				if err != nil {
					if stopOnErr(err) {
						return
					}
					continue
				}
				// Only what the daemon acked counts as durable.
				if res.Acked > 0 {
					for _, o := range obs {
						acked.Store(ackKey{study, o.Trial}, o.Value)
					}
					total.Add(int64(res.Acked))
				}
			}
		}()
	}
	return &wg
}

// checkExactlyOnce asserts every recorded ack is present in the trials
// exactly once with the right value, and that no trial ID repeats.
func checkExactlyOnce(t *testing.T, study string, trials []trial.TrialRecord, acked *sync.Map) {
	t.Helper()
	byID := map[int64]trial.TrialRecord{}
	for _, tr := range trials {
		if _, dup := byID[int64(tr.ID)]; dup {
			t.Fatalf("%s: trial %d appears twice in recovered history", study, tr.ID)
		}
		byID[int64(tr.ID)] = tr
	}
	missing := 0
	acked.Range(func(k, v any) bool {
		key := k.(ackKey)
		if key.study != study {
			return true
		}
		tr, ok := byID[key.trial]
		if !ok {
			missing++
			t.Errorf("%s: acked trial %d lost", study, key.trial)
			return missing < 5
		}
		if tr.Value != v.(float64) {
			t.Fatalf("%s: trial %d value %v, want %v", study, key.trial, tr.Value, v)
		}
		return true
	})
	if missing > 0 {
		t.Fatalf("%s: %d acked observations lost", study, missing)
	}
}

func studySpecFor(i int) server.StudySpec {
	opts := []string{"random", "random", "anneal"}
	return server.StudySpec{
		Optimizer: opts[i%len(opts)],
		Seed:      int64(1000 + i),
		Space: []server.ParamSpec{
			{Name: "workers", Kind: "int", Min: 1, Max: 64},
			{Name: "rate", Kind: "float", Min: 0.5, Max: 100, Log: true},
			{Name: "mode", Kind: "categorical", Values: []string{"sync", "async"}},
		},
	}
}

// suggestStreams captures each study's next few suggestions as canonical
// JSON — the determinism fingerprint.
func suggestStreams(t *testing.T, c *server.Client, studies []string) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, study := range studies {
		sugg, err := c.Suggest(context.Background(), study, 3)
		if err != nil {
			t.Fatalf("suggest %s: %v", study, err)
		}
		var cfgs []map[string]any
		for _, s := range sugg {
			cfgs = append(cfgs, s.Config)
		}
		b, err := json.Marshal(cfgs)
		if err != nil {
			t.Fatal(err)
		}
		out[study] = string(b)
	}
	return out
}

func TestKillDashNineRecoversExactlyOnce(t *testing.T) {
	store := t.TempDir()
	cmd, c := startDaemon(t, store)
	ctx := context.Background()

	studies := make([]string, 6)
	for i := range studies {
		studies[i] = fmt.Sprintf("torture-%d", i)
		if _, err := c.CreateStudy(ctx, studies[i], studySpecFor(i)); err != nil {
			t.Fatalf("create %s: %v", studies[i], err)
		}
	}

	var acked sync.Map
	var total atomic.Int64
	wg := hammer(c, studies, &acked, &total, func(error) bool { return true })
	for total.Load() < 120 {
		time.Sleep(5 * time.Millisecond)
	}
	// Mid-batch murder: observes are in flight right now.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	_ = waitDead(t, cmd)

	// Restart 1: every ack recovered exactly once, studies writable again.
	cmd2, c2 := startDaemon(t, store)
	for _, study := range studies {
		trials, err := c2.Trials(ctx, study)
		if err != nil {
			t.Fatalf("trials %s: %v", study, err)
		}
		checkExactlyOnce(t, study, trials, &acked)
	}
	if _, err := c2.CreateStudy(ctx, studies[0], studySpecFor(0)); err != nil {
		t.Fatalf("idempotent re-create after recovery: %v", err)
	}
	stream1 := suggestStreams(t, c2, studies)
	if err := cmd2.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = waitDead(t, cmd2)

	// Restart 2: the durable state is unchanged (suggests are not acks),
	// so the resumed suggest streams must match bit for bit.
	cmd3, c3 := startDaemon(t, store)
	stream2 := suggestStreams(t, c3, studies)
	for _, study := range studies {
		if stream1[study] != stream2[study] {
			t.Fatalf("%s: suggest stream diverged across restarts\n one %s\n two %s",
				study, stream1[study], stream2[study])
		}
	}
	// And the recovered daemon still acks new work durably.
	sugg, err := c3.Suggest(ctx, studies[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c3.Observe(ctx, studies[0], server.Observation{
		Trial: sugg[0].Trial, Config: sugg[0].Config, Value: 1,
	}); err != nil {
		t.Fatalf("observe after recovery: %v", err)
	}
	if err := cmd3.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = waitDead(t, cmd3)
}

func TestSigtermDrainsAndExitsZero(t *testing.T) {
	store := t.TempDir()
	cmd, c := startDaemon(t, store, "-drain-timeout", "45s")
	ctx := context.Background()

	studies := make([]string, 3)
	for i := range studies {
		studies[i] = fmt.Sprintf("drain-%d", i)
		if _, err := c.CreateStudy(ctx, studies[i], studySpecFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	var acked sync.Map
	var total atomic.Int64
	wg := hammer(c, studies, &acked, &total, func(error) bool { return true })
	for total.Load() < 60 {
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := waitDead(t, cmd); err != nil {
		t.Fatalf("drain under load must exit 0, got %v", err)
	}

	// The log was sealed on the way out: reopening needs zero repair and
	// rolls to a fresh segment, and every acked observation is there.
	st, err := studystore.Open(store, studystore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stats := st.Stats()
	if stats.TornTailBytes != 0 || stats.Quarantined != 0 {
		t.Fatalf("reopen after drain: torn=%d quarantined=%d, want sealed clean", stats.TornTailBytes, stats.Quarantined)
	}
	if stats.ActiveSeq < 2 {
		t.Fatalf("reopen after drain: active segment %d, want a successor to the sealed one", stats.ActiveSeq)
	}
	for _, study := range studies {
		var trials []trial.TrialRecord
		for _, rec := range st.Records(study) {
			if rec.ID < 0 {
				continue // study meta
			}
			var tr trial.TrialRecord
			if err := json.Unmarshal(rec.Payload, &tr); err != nil {
				t.Fatalf("%s record %d: %v", study, rec.ID, err)
			}
			trials = append(trials, tr)
		}
		checkExactlyOnce(t, study, trials, &acked)
	}
}
