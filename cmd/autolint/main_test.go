package main

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"

	"autotune/internal/lint"
)

// TestRepoExitsClean is the acceptance gate: autolint over the whole
// module must find nothing.
func TestRepoExitsClean(t *testing.T) {
	code, err := run(io.Discard, false, false, "all", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("autolint ./... exit = %d, want 0", code)
	}
}

func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	code, err := run(&buf, true, false, "all", nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, buf.String())
	}
	if len(diags) != 0 {
		t.Fatalf("want empty array on a clean repo, got %v", diags)
	}
}

func TestSinglePackagePattern(t *testing.T) {
	code, err := run(io.Discard, false, false, "all", []string{"./internal/space"})
	if err != nil || code != 0 {
		t.Fatalf("run(./internal/space) = %d, %v", code, err)
	}
}

func TestUnknownCheckErrors(t *testing.T) {
	code, err := run(io.Discard, false, false, "nosuchcheck", nil)
	if err == nil || code != 2 {
		t.Fatalf("unknown check: code = %d, err = %v; want 2 and error", code, err)
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		dir, pat string
		want     bool
	}{
		{"internal/space", "./...", true},
		{".", "./...", true},
		{"internal/space", "./internal/...", true},
		{"internal", "./internal/...", true},
		{"internals", "./internal/...", false},
		{"internal/space", "./internal/space", true},
		{"internal/space", "internal/space", true},
		{"internal/space", "./internal/trial", false},
		{".", ".", true},
		{"cmd/autotune", ".", false},
	}
	for _, c := range cases {
		if got := matchPattern(c.dir, c.pat); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.dir, c.pat, got, c.want)
		}
	}
}
