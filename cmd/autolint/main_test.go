package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autotune/internal/lint"
)

func runHere(t *testing.T, w io.Writer, opts options, patterns []string) (int, error) {
	t.Helper()
	opts.dir = "."
	return run(w, opts, patterns)
}

// TestRepoExitsClean is the acceptance gate: autolint over the whole
// module — both tiers — must find nothing.
func TestRepoExitsClean(t *testing.T) {
	code, err := runHere(t, io.Discard, options{checks: "all", typed: true}, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("autolint ./... exit = %d, want 0", code)
	}
}

func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	code, err := runHere(t, &buf, options{jsonOut: true, checks: "all", typed: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, buf.String())
	}
	if len(diags) != 0 {
		t.Fatalf("want empty array on a clean repo, got %v", diags)
	}
}

func TestSinglePackagePattern(t *testing.T) {
	code, err := runHere(t, io.Discard, options{checks: "all", typed: true}, []string{"./internal/space"})
	if err != nil || code != 0 {
		t.Fatalf("run(./internal/space) = %d, %v", code, err)
	}
}

func TestUnknownCheckErrors(t *testing.T) {
	code, err := runHere(t, io.Discard, options{checks: "nosuchcheck"}, nil)
	if err == nil || code != 2 {
		t.Fatalf("unknown check: code = %d, err = %v; want 2 and error", code, err)
	}
}

// TestListCoversTypedTier: -list must describe both registries, so the
// typed analyzers are discoverable.
func TestListCoversTypedTier(t *testing.T) {
	var buf bytes.Buffer
	printList(&buf)
	out := buf.String()
	for _, name := range []string{"globalrand", "lockheld", "goleak", "fsyncbarrier", "poolreturn", "typed tier"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
}

// writeModule materializes a temp module from file name -> contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module fixture.example\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestExitCodeMatrix pins the 0/1/2 contract across tier combinations:
// clean trees exit 0, findings from either tier (or both) exit 1, and
// parse or type-check failures exit 2 regardless of findings.
func TestExitCodeMatrix(t *testing.T) {
	const cleanSrc = `package p

func Add(a, b int) int { return a + b }
`
	// globalrand: package-level math/rand use (syntactic tier).
	const synBadSrc = `package p

import "math/rand"

var r = rand.Intn(10)
`
	// lockheld: mutex held across a channel receive (typed tier).
	const typBadSrc = `package q

import "sync"

type T struct {
	mu sync.Mutex
	ch chan int
}

func (t *T) Wait() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return <-t.ch
}
`
	const parseBadSrc = "package p\n\nfunc broken( {\n"
	const typeBadSrc = `package p

func f() int { return undefinedSymbol }
`
	cases := []struct {
		name     string
		files    map[string]string
		checks   string
		typed    bool
		wantCode int
		wantErr  bool
	}{
		{"clean", map[string]string{"a.go": cleanSrc}, "all", true, 0, false},
		{"syntactic finding", map[string]string{"a.go": synBadSrc}, "all", true, 1, false},
		{"typed finding", map[string]string{"q/a.go": typBadSrc}, "all", true, 1, false},
		{"both tiers find", map[string]string{"a.go": synBadSrc, "q/b.go": typBadSrc}, "all", true, 1, false},
		{"typed finding invisible without typed tier", map[string]string{"q/a.go": typBadSrc}, "all", false, 0, false},
		{"typed analyzer by name overrides -typed=false", map[string]string{"q/a.go": typBadSrc}, "lockheld", false, 1, false},
		{"parse error", map[string]string{"a.go": parseBadSrc}, "all", true, 2, true},
		{"type error", map[string]string{"a.go": typeBadSrc}, "all", true, 2, true},
		{"type error ignored without typed tier", map[string]string{"a.go": typeBadSrc}, "all", false, 0, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := writeModule(t, c.files)
			code, err := run(io.Discard, options{checks: c.checks, typed: c.typed, dir: dir}, []string{"./..."})
			if code != c.wantCode {
				t.Fatalf("exit = %d (err %v), want %d", code, err, c.wantCode)
			}
			if c.wantErr != (err != nil) {
				t.Fatalf("err = %v, wantErr %v", err, c.wantErr)
			}
		})
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		dir, pat string
		want     bool
	}{
		{"internal/space", "./...", true},
		{".", "./...", true},
		{"internal/space", "./internal/...", true},
		{"internal", "./internal/...", true},
		{"internals", "./internal/...", false},
		{"internal/space", "./internal/space", true},
		{"internal/space", "internal/space", true},
		{"internal/space", "./internal/trial", false},
		{".", ".", true},
		{"cmd/autotune", ".", false},
	}
	for _, c := range cases {
		if got := matchPattern(c.dir, c.pat); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.dir, c.pat, got, c.want)
		}
	}
}
