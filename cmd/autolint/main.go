// Command autolint runs the repo-specific static analyzers from
// internal/lint over the module and reports violations of its
// determinism, context-propagation, and error-handling invariants.
//
// Usage:
//
//	autolint ./...                 # whole module (the default)
//	autolint ./internal/space      # one package
//	autolint -checks globalrand,wallclock ./...
//	autolint -json ./...           # machine-readable findings
//	autolint -fix ./...            # print suggested edits with each finding
//	autolint -list                 # describe the registered analyzers
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage or
// parse errors. Findings are suppressed in place with
// `//autolint:ignore <check> <reason>` on the offending line or the line
// above it; unused and malformed directives are themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"autotune/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		fix     = flag.Bool("fix", false, "print the suggested edit with each finding")
		checks  = flag.String("checks", "all", "comma-separated analyzer names to run")
		list    = flag.Bool("list", false, "list registered analyzers and exit")
	)
	flag.Parse()
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	code, err := run(os.Stdout, *jsonOut, *fix, *checks, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "autolint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the requested analyzers over the packages matching the
// patterns and writes findings to w. It returns the process exit code.
func run(w io.Writer, jsonOut, fix bool, checks string, patterns []string) (int, error) {
	analyzers, err := lint.ByName(checks)
	if err != nil {
		return 2, err
	}
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		return 2, err
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		return 2, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags := filter(lint.Run(mod, analyzers), patterns)
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			return 2, err
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(w, d)
			if fix && d.Suggestion != "" {
				fmt.Fprintf(w, "\tsuggested: %s\n", d.Suggestion)
			}
		}
		if len(diags) > 0 {
			fmt.Fprintf(w, "autolint: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1, nil
	}
	return 0, nil
}

// filter keeps diagnostics whose file falls under one of the package
// patterns. Supported forms: "./..." (everything), "./dir/..." (subtree),
// and "./dir" or "dir" (exact package directory).
func filter(diags []lint.Diagnostic, patterns []string) []lint.Diagnostic {
	var out []lint.Diagnostic
	for _, d := range diags {
		dir := d.Pos.Filename
		if i := strings.LastIndex(dir, "/"); i >= 0 {
			dir = dir[:i]
		} else {
			dir = "."
		}
		for _, pat := range patterns {
			if matchPattern(dir, pat) {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

func matchPattern(dir, pat string) bool {
	pat = strings.TrimPrefix(pat, "./")
	if pat == "..." {
		return true
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return dir == sub || strings.HasPrefix(dir, sub+"/")
	}
	if pat == "" || pat == "." {
		return dir == "."
	}
	return dir == strings.TrimSuffix(pat, "/")
}
