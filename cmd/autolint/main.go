// Command autolint runs the repo-specific static analyzers from
// internal/lint over the module and reports violations of its
// determinism, context-propagation, error-handling, and concurrency
// invariants.
//
// Two analyzer tiers run by default: the syntactic tier (go/ast +
// name indexes) and the typed tier (go/types + per-function control
// flow: lockheld, goleak, fsyncbarrier, poolreturn). `-typed=false`
// drops the typed tier; naming a typed analyzer in -checks always
// runs it.
//
// Usage:
//
//	autolint ./...                 # whole module (the default)
//	autolint ./internal/space      # one package
//	autolint -checks globalrand,lockheld ./...
//	autolint -typed=false ./...    # syntactic tier only
//	autolint -json ./...           # machine-readable findings
//	autolint -fix ./...            # print suggested edits with each finding
//	autolint -list                 # describe the registered analyzers
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage,
// parse, or type-check errors. Findings are suppressed in place with
// `//autolint:ignore <check> <reason>` on the offending line or the line
// above it; unused and malformed directives are themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"autotune/internal/lint"
)

// options bundles the CLI knobs; run takes them explicitly so tests can
// drive temp modules (dir) without chdir.
type options struct {
	jsonOut bool
	fix     bool
	checks  string
	typed   bool
	dir     string // starting directory for module-root discovery
}

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		fix     = flag.Bool("fix", false, "print the suggested edit with each finding")
		checks  = flag.String("checks", "all", "comma-separated analyzer names to run")
		typed   = flag.Bool("typed", true, "run the typed tier (go/types + CFG analyzers)")
		list    = flag.Bool("list", false, "list registered analyzers and exit")
	)
	flag.Parse()
	if *list {
		printList(os.Stdout)
		return
	}
	opts := options{jsonOut: *jsonOut, fix: *fix, checks: *checks, typed: *typed, dir: "."}
	code, err := run(os.Stdout, opts, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "autolint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// printList describes both analyzer registries.
func printList(w io.Writer) {
	fmt.Fprintln(w, "syntactic tier:")
	for _, a := range lint.All() {
		fmt.Fprintf(w, "  %-13s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintln(w, "typed tier (go/types + CFG):")
	for _, a := range lint.AllTyped() {
		fmt.Fprintf(w, "  %-13s %s\n", a.Name, a.Doc)
	}
}

// run executes the requested analyzers over the packages matching the
// patterns and writes findings to w. It returns the process exit code:
// 0 clean, 1 findings, 2 load/usage errors (the error return is always
// non-nil for code 2).
func run(w io.Writer, opts options, patterns []string) (int, error) {
	analyzers, typed, err := lint.SelectAnalyzers(opts.checks, opts.typed)
	if err != nil {
		return 2, err
	}
	root, err := lint.FindModuleRoot(opts.dir)
	if err != nil {
		return 2, err
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		return 2, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, typeErr := lint.RunAll(mod, analyzers, typed)
	diags = filter(diags, patterns)
	if opts.jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			return 2, err
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(w, d)
			if opts.fix && d.Suggestion != "" {
				fmt.Fprintf(w, "\tsuggested: %s\n", d.Suggestion)
			}
		}
		if len(diags) > 0 {
			fmt.Fprintf(w, "autolint: %d finding(s)\n", len(diags))
		}
	}
	if typeErr != nil {
		// A module that does not type-check is a load failure, like a
		// parse error: findings above may be incomplete.
		return 2, typeErr
	}
	if len(diags) > 0 {
		return 1, nil
	}
	return 0, nil
}

// filter keeps diagnostics whose file falls under one of the package
// patterns. Supported forms: "./..." (everything), "./dir/..." (subtree),
// and "./dir" or "dir" (exact package directory).
func filter(diags []lint.Diagnostic, patterns []string) []lint.Diagnostic {
	var out []lint.Diagnostic
	for _, d := range diags {
		dir := d.Pos.Filename
		if i := strings.LastIndex(dir, "/"); i >= 0 {
			dir = dir[:i]
		} else {
			dir = "."
		}
		for _, pat := range patterns {
			if matchPattern(dir, pat) {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

func matchPattern(dir, pat string) bool {
	pat = strings.TrimPrefix(pat, "./")
	if pat == "..." {
		return true
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return dir == sub || strings.HasPrefix(dir, sub+"/")
	}
	if pat == "" || pat == "." {
		return dir == "."
	}
	return dir == strings.TrimSuffix(pat, "/")
}
