// Command kvbench benchmarks — and optionally tunes — the real in-memory
// KV store in internal/kvstore with live measurements: shard counts change
// actual lock contention, eviction policies change actual hit rates.
//
// Usage:
//
//	kvbench -workload ycsb-b -ops 200000 -workers 4      # one measurement
//	kvbench -tune -optimizer smac -budget 20             # tune for ops/sec
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"autotune/internal/core"
	"autotune/internal/kvstore"
	"autotune/internal/optimizer"
	"autotune/internal/space"
	"autotune/internal/workload"
)

func main() {
	var (
		wlName  = flag.String("workload", "ycsb-b", "workload: ycsb-a..f | tpcc")
		keys    = flag.Uint64("keys", 200_000, "distinct keys preloaded")
		ops     = flag.Int("ops", 200_000, "operations per measurement")
		workers = flag.Int("workers", 4, "concurrent client goroutines")
		seed    = flag.Int64("seed", 1, "random seed")
		tune    = flag.Bool("tune", false, "tune the store instead of one measurement")
		optName = flag.String("optimizer", "smac", "optimizer for -tune")
		budget  = flag.Int("budget", 15, "trials for -tune")
		record  = flag.String("record-trace", "", "record the workload's op trace to this file and exit")
		replay  = flag.String("replay-trace", "", "benchmark by replaying a recorded trace (exact A/B)")
	)
	flag.Parse()

	wl, err := workload.ByName(*wlName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvbench:", err)
		os.Exit(1)
	}
	wl.RecordBytes = 128 // keep memory modest for a CLI demo

	if *record != "" {
		rng := rand.New(rand.NewSource(*seed))
		gen, err := workload.NewGenerator(wl, *keys, rng)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvbench:", err)
			os.Exit(1)
		}
		tr := workload.Record(gen, *ops)
		if err := tr.Save(*record); err != nil {
			fmt.Fprintln(os.Stderr, "kvbench:", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d %s ops to %s\n", tr.Len(), tr.Name, *record)
		return
	}
	if *replay != "" {
		tr, err := workload.LoadTrace(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvbench:", err)
			os.Exit(1)
		}
		st, err := kvstore.Open(kvstore.Space().Default())
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvbench:", err)
			os.Exit(1)
		}
		res, err := kvstore.BenchTrace(st, tr, 128, *ops, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvbench:", err)
			os.Exit(1)
		}
		printResult(fmt.Sprintf("replay of %s (%d ops)", tr.Name, tr.Len()), res)
		return
	}

	if !*tune {
		res, err := kvstore.BenchConfig(kvstore.Space().Default(), wl, *keys, *ops, *workers, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvbench:", err)
			os.Exit(1)
		}
		printResult("default config", res)
		return
	}

	obj := func(cfg space.Config) float64 {
		res, err := kvstore.BenchConfig(cfg, wl, *keys, *ops, *workers, *seed)
		if err != nil {
			return 0
		}
		return -res.OpsPerSec
	}
	opt, err := core.NewOptimizer(*optName, kvstore.Space(), rand.New(rand.NewSource(*seed)))
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvbench:", err)
		os.Exit(1)
	}
	fmt.Printf("tuning kvstore on %s: %d trials x %d ops x %d workers...\n",
		wl.Name, *budget, *ops, *workers)
	best, val, err := optimizer.Run(opt, obj, *budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvbench:", err)
		os.Exit(1)
	}
	fmt.Printf("\nbest throughput: %.0f ops/sec\n\nbest configuration:\n", -val)
	names := make([]string, 0, len(best))
	for k := range best {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Printf("  %-16s = %v\n", k, best[k])
	}
	// Confirm against the default.
	defRes, err := kvstore.BenchConfig(kvstore.Space().Default(), wl, *keys, *ops, *workers, *seed)
	if err == nil {
		fmt.Printf("\ndefault: %.0f ops/sec  ->  tuned: %.0f ops/sec  (%.1fx)\n",
			defRes.OpsPerSec, -val, -val/defRes.OpsPerSec)
	}
}

func printResult(name string, r kvstore.BenchResult) {
	fmt.Printf("%s:\n  ops        %d\n  elapsed    %v\n  throughput %.0f ops/sec\n  p50        %v\n  p95        %v\n  hit rate   %.3f\n",
		name, r.Ops, r.Elapsed.Round(1e6), r.OpsPerSec, r.P50, r.P95, r.HitRate)
}
