// Benchmarks that regenerate every figure/table experiment (F1-F20, quick
// mode — `go run ./cmd/bench` prints the full-scale tables) plus
// micro-benchmarks for the framework's hot paths: space encoding, GP
// fitting/prediction, forest fitting, optimizer suggestion, the simulated
// DBMS, and the real KV store.
package autotune_test

import (
	"fmt"
	"math/rand"
	"testing"

	"autotune"
	"autotune/internal/forest"
	"autotune/internal/gp"
	"autotune/internal/kvstore"
	"autotune/internal/simsys"
	"autotune/internal/space"
	"autotune/internal/workload"
)

const benchSeed = 20250706

// benchExperiment runs one tutorial experiment per iteration (quick mode).
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := autotune.RunExperiment(id, true, benchSeed); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkF1GridVsRandom(b *testing.B)      { benchExperiment(b, "F1") }
func BenchmarkF2BOConvergence(b *testing.B)     { benchExperiment(b, "F2") }
func BenchmarkF3TunedVsDefault(b *testing.B)    { benchExperiment(b, "F3") }
func BenchmarkF4RedisP95(b *testing.B)          { benchExperiment(b, "F4") }
func BenchmarkF5KernelLengthscale(b *testing.B) { benchExperiment(b, "F5") }
func BenchmarkF6Acquisitions(b *testing.B)      { benchExperiment(b, "F6") }
func BenchmarkF7Surrogates(b *testing.B)        { benchExperiment(b, "F7") }
func BenchmarkF8HybridSpace(b *testing.B)       { benchExperiment(b, "F8") }
func BenchmarkF9Parallel(b *testing.B)          { benchExperiment(b, "F9") }
func BenchmarkF10MultiObjective(b *testing.B)   { benchExperiment(b, "F10") }
func BenchmarkF11Constraints(b *testing.B)      { benchExperiment(b, "F11") }
func BenchmarkF12LlamaTune(b *testing.B)        { benchExperiment(b, "F12") }
func BenchmarkF13MultiFidelity(b *testing.B)    { benchExperiment(b, "F13") }
func BenchmarkF14Transfer(b *testing.B)         { benchExperiment(b, "F14") }
func BenchmarkF15Importance(b *testing.B)       { benchExperiment(b, "F15") }
func BenchmarkF16EarlyAbort(b *testing.B)       { benchExperiment(b, "F16") }
func BenchmarkF17NoiseMitigation(b *testing.B)  { benchExperiment(b, "F17") }
func BenchmarkF18OnlineShift(b *testing.B)      { benchExperiment(b, "F18") }
func BenchmarkF19WorkloadID(b *testing.B)       { benchExperiment(b, "F19") }
func BenchmarkF20SyntheticBench(b *testing.B)   { benchExperiment(b, "F20") }

// ---- framework micro-benchmarks ----

func benchDBMSSpace() *space.Space { return simsys.NewDBMS(simsys.MediumVM()).Space() }

func BenchmarkSpaceSample(b *testing.B) {
	sp := benchDBMSSpace()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Sample(rng)
	}
}

func BenchmarkSpaceEncode(b *testing.B) {
	sp := benchDBMSSpace()
	cfg := sp.Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Encode(cfg)
	}
}

func BenchmarkSpaceEncodeOneHot(b *testing.B) {
	sp := benchDBMSSpace()
	cfg := sp.Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.EncodeOneHot(cfg)
	}
}

func gpTrainingData(n, d int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(2))
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = make([]float64, d)
		s := 0.0
		for j := range xs[i] {
			xs[i][j] = rng.Float64()
			s += xs[i][j]
		}
		ys[i] = s + 0.01*rng.NormFloat64()
	}
	return xs, ys
}

func BenchmarkGPFit50(b *testing.B) {
	xs, ys := gpTrainingData(50, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := gp.New(gp.Scale(1, gp.NewMatern(2.5, 0.2)), 1e-6)
		if err := m.Fit(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGPPredict(b *testing.B) {
	xs, ys := gpTrainingData(50, 8)
	m := gp.New(gp.Scale(1, gp.NewMatern(2.5, 0.2)), 1e-6)
	if err := m.Fit(xs, ys); err != nil {
		b.Fatal(err)
	}
	q := xs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Predict(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestFit200(b *testing.B) {
	xs, ys := gpTrainingData(200, 8)
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forest.Fit(xs, ys, forest.Options{Trees: 30}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBOSuggest(b *testing.B) {
	sp := benchDBMSSpace()
	opt, err := autotune.NewOptimizer("bo", sp, 4)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		cfg := sp.Sample(rng)
		if err := opt.Observe(cfg, rng.Float64()); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg, err := opt.Suggest()
		if err != nil {
			b.Fatal(err)
		}
		if err := opt.Observe(cfg, rng.Float64()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSMACSuggest(b *testing.B) {
	sp := benchDBMSSpace()
	opt, err := autotune.NewOptimizer("smac", sp, 6)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		cfg := sp.Sample(rng)
		if err := opt.Observe(cfg, rng.Float64()); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg, err := opt.Suggest()
		if err != nil {
			b.Fatal(err)
		}
		if err := opt.Observe(cfg, rng.Float64()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimDBRun(b *testing.B) {
	d := simsys.NewDBMS(simsys.MediumVM())
	cfg := d.Space().Default()
	wl := workload.TPCC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Run(cfg, wl, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKVStoreGetPut(b *testing.B) {
	cfg := kvstore.Space().Default()
	st, err := kvstore.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 128)
	for k := uint64(0); k < 10000; k++ {
		st.Put(k, val)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i % 10000)
		if i%4 == 0 {
			st.Put(k, val)
		} else {
			st.Get(k)
		}
	}
}

func BenchmarkKVStoreShards(b *testing.B) {
	for _, shards := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := kvstore.Space().Default()
			cfg["shards"] = int64(shards)
			st, err := kvstore.Open(cfg)
			if err != nil {
				b.Fatal(err)
			}
			val := make([]byte, 64)
			for k := uint64(0); k < 10000; k++ {
				st.Put(k, val)
			}
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(8))
				for pb.Next() {
					st.Get(uint64(rng.Intn(10000)))
				}
			})
		})
	}
}

func BenchmarkZipfian(b *testing.B) {
	z := workload.NewZipfian(1_000_000, 0.99, rand.New(rand.NewSource(9)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}

func BenchmarkF21MultiTask(b *testing.B) { benchExperiment(b, "F21") }

func BenchmarkA1LogWarp(b *testing.B)          { benchExperiment(b, "A1") }
func BenchmarkA2StratifiedInit(b *testing.B)   { benchExperiment(b, "A2") }
func BenchmarkA3SMACInterleave(b *testing.B)   { benchExperiment(b, "A3") }
func BenchmarkA4OutlierRejection(b *testing.B) { benchExperiment(b, "A4") }

func BenchmarkF22ManualMining(b *testing.B) { benchExperiment(b, "F22") }
