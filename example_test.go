package autotune_test

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"os"

	"autotune"
)

// ExampleMinimize tunes a 2-knob quadratic with Bayesian optimization.
func ExampleMinimize() {
	sp := autotune.MustSpace(
		autotune.Float("cache_mb", 64, 4096),
		autotune.Int("threads", 1, 32),
	)
	objective := func(c autotune.Config) float64 {
		cache := c.Float("cache_mb")
		threads := float64(c.Int("threads"))
		return math.Pow(math.Log2(cache/1024), 2) + math.Pow((threads-8)/8, 2)
	}
	opt, err := autotune.NewOptimizer("bo", sp, 7)
	if err != nil {
		panic(err)
	}
	_, val, err := autotune.Minimize(opt, objective, 40)
	if err != nil {
		panic(err)
	}
	fmt.Println("found a near-optimal config:", val < 0.05)
	// Output:
	// found a near-optimal config: true
}

// ExampleNewServer runs the tuning service in-process: the daemon is a
// plain http.Handler, so the example mounts it on an httptest server and
// drives it through the typed client exactly as a remote tuner would.
// Every acked observation is fsynced into the study store before the
// response, so a kill -9 here would lose nothing.
func ExampleNewServer() {
	dir, err := os.MkdirTemp("", "autotune-service")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	srv, err := autotune.NewServer(autotune.ServerOptions{StoreDir: dir})
	if err != nil {
		panic(err)
	}
	defer srv.Close() // drains in-flight work and seals the study log
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx := context.Background()
	c := autotune.NewServerClient(ts.URL)
	if _, err := c.CreateStudy(ctx, "cache-latency", autotune.StudySpec{
		Optimizer: "random",
		Seed:      7,
		Space: []autotune.ParamSpec{
			{Name: "cache_mb", Kind: "int", Min: 64, Max: 4096, Log: true},
			{Name: "policy", Kind: "categorical", Values: []string{"lru", "arc", "clock"}},
		},
	}); err != nil {
		panic(err)
	}
	trials, err := c.Suggest(ctx, "cache-latency", 3)
	if err != nil {
		panic(err)
	}
	obs := make([]autotune.ServiceObservation, len(trials))
	for i, tr := range trials {
		// A real tuner benchmarks tr.Config here; this stand-in objective
		// just prefers later trials.
		obs[i] = autotune.ServiceObservation{Trial: tr.Trial, Config: tr.Config, Value: float64(3 - i)}
	}
	if _, err := c.Observe(ctx, "cache-latency", obs...); err != nil {
		panic(err)
	}
	best, err := c.Best(ctx, "cache-latency")
	if err != nil {
		panic(err)
	}
	fmt.Printf("best trial %d of %d observed, value %.0f\n", best.Trial, best.Observed, best.Value)
	// Output:
	// best trial 2 of 3 observed, value 1
}

// ExampleNewOptimizer shows the optimizer registry.
func ExampleNewOptimizer() {
	for _, name := range autotune.OptimizerNames() {
		fmt.Println(name)
	}
	// Output:
	// anneal
	// bo
	// bo-lcb
	// bo-pi
	// cmaes
	// coordinate
	// genetic
	// grid
	// pso
	// random
	// smac
}
