package autotune_test

import (
	"fmt"
	"math"

	"autotune"
)

// ExampleMinimize tunes a 2-knob quadratic with Bayesian optimization.
func ExampleMinimize() {
	sp := autotune.MustSpace(
		autotune.Float("cache_mb", 64, 4096),
		autotune.Int("threads", 1, 32),
	)
	objective := func(c autotune.Config) float64 {
		cache := c.Float("cache_mb")
		threads := float64(c.Int("threads"))
		return math.Pow(math.Log2(cache/1024), 2) + math.Pow((threads-8)/8, 2)
	}
	opt, err := autotune.NewOptimizer("bo", sp, 7)
	if err != nil {
		panic(err)
	}
	_, val, err := autotune.Minimize(opt, objective, 40)
	if err != nil {
		panic(err)
	}
	fmt.Println("found a near-optimal config:", val < 0.05)
	// Output:
	// found a near-optimal config: true
}

// ExampleNewOptimizer shows the optimizer registry.
func ExampleNewOptimizer() {
	for _, name := range autotune.OptimizerNames() {
		fmt.Println(name)
	}
	// Output:
	// anneal
	// bo
	// bo-lcb
	// bo-pi
	// cmaes
	// coordinate
	// genetic
	// grid
	// pso
	// random
	// smac
}
