// Package cloud simulates the noisy fleet the tutorial tunes on (slides
// 70-71): each VM gets a persistent performance multiplier (machine
// lottery), a slowly drifting AR(1) temporal component (noisy neighbours),
// and a chance of being an outlier machine. A Fleet exposes the
// noise.Sampler interface so the mitigation strategies in internal/noise
// (naive averaging, duet, TUNA) can be compared on identical noise.
package cloud

import (
	"math"
	"math/rand"

	"autotune/internal/simsys"
	"autotune/internal/space"
	"autotune/internal/workload"
)

// Options shapes the fleet's noise.
type Options struct {
	// MachineSigma is the lognormal spread of per-VM base multipliers
	// (default 0.08 — machines differ by ~±8%).
	MachineSigma float64
	// OutlierProb is the chance a VM is an outlier (default 0.1);
	// OutlierFactor is its slowdown (default 1.6).
	OutlierProb, OutlierFactor float64
	// DriftPhi is the AR(1) persistence of temporal drift (default 0.95);
	// DriftSigma its innovation scale (default 0.02).
	DriftPhi, DriftSigma float64
	// MeasurementSigma is per-sample lognormal noise (default 0.03).
	MeasurementSigma float64
}

func (o Options) withDefaults() Options {
	if o.MachineSigma <= 0 {
		o.MachineSigma = 0.08
	}
	if o.OutlierProb < 0 {
		o.OutlierProb = 0
	} else if o.OutlierProb == 0 {
		o.OutlierProb = 0.1
	}
	if o.OutlierFactor <= 1 {
		o.OutlierFactor = 1.6
	}
	if o.DriftPhi <= 0 || o.DriftPhi >= 1 {
		o.DriftPhi = 0.95
	}
	if o.DriftSigma <= 0 {
		o.DriftSigma = 0.02
	}
	if o.MeasurementSigma <= 0 {
		o.MeasurementSigma = 0.03
	}
	return o
}

// vm is one simulated machine.
type vm struct {
	mult    float64 // persistent machine factor
	drift   float64 // AR(1) state
	outlier bool
}

// Fleet is a set of noisy VMs running one simulated system under one
// workload. It implements noise.Sampler: Sample(cfg, replica) returns the
// objective measured on that VM, corrupted by the fleet's noise.
type Fleet struct {
	sys  simsys.System
	wl   workload.Descriptor
	opts Options
	vms  []*vm
	rng  *rand.Rand

	// Objective extracts the score from metrics (default: LatencyMS).
	Objective func(simsys.Metrics) float64
	// Fidelity for every run (default 1).
	Fidelity float64
	// CrashValue is returned for configurations that crash (default +Inf).
	CrashValue float64
}

// NewFleet builds a fleet of n VMs with the given noise options.
func NewFleet(sys simsys.System, wl workload.Descriptor, n int, opts Options, rng *rand.Rand) *Fleet {
	opts = opts.withDefaults()
	f := &Fleet{
		sys:  sys,
		wl:   wl,
		opts: opts,
		rng:  rng,
		Objective: func(m simsys.Metrics) float64 {
			return m.LatencyMS
		},
		Fidelity:   1,
		CrashValue: math.Inf(1),
	}
	for i := 0; i < n; i++ {
		v := &vm{mult: math.Exp(rng.NormFloat64() * opts.MachineSigma)}
		if rng.Float64() < opts.OutlierProb {
			v.outlier = true
			v.mult *= opts.OutlierFactor
		}
		f.vms = append(f.vms, v)
	}
	return f
}

// Replicas implements noise.Sampler.
func (f *Fleet) Replicas() int { return len(f.vms) }

// OutlierCount returns how many VMs are outliers (for experiment reports).
func (f *Fleet) OutlierCount() int {
	n := 0
	for _, v := range f.vms {
		if v.outlier {
			n++
		}
	}
	return n
}

// Sample implements noise.Sampler: one measurement of cfg on a VM.
func (f *Fleet) Sample(cfg space.Config, replica int) float64 {
	if len(f.vms) == 0 {
		return f.CrashValue
	}
	v := f.vms[replica%len(f.vms)]
	// Advance this VM's drift (noisy neighbours come and go).
	v.drift = f.opts.DriftPhi*v.drift + f.rng.NormFloat64()*f.opts.DriftSigma
	m, err := f.sys.Run(cfg, f.wl, f.Fidelity, nil)
	if err != nil {
		return f.CrashValue
	}
	noise := math.Exp(f.rng.NormFloat64() * f.opts.MeasurementSigma)
	return f.Objective(m) * v.mult * math.Exp(v.drift) * noise
}

// TrueScore returns the noise-free objective for cfg, for experiment
// ground truth.
func (f *Fleet) TrueScore(cfg space.Config) float64 {
	m, err := f.sys.Run(cfg, f.wl, 1, nil)
	if err != nil {
		return f.CrashValue
	}
	return f.Objective(m)
}
