// Package cloud simulates the noisy fleet the tutorial tunes on (slides
// 70-71): each VM gets a persistent performance multiplier (machine
// lottery), a slowly drifting AR(1) temporal component (noisy neighbours),
// and a chance of being an outlier machine. A Fleet exposes the
// noise.Sampler interface so the mitigation strategies in internal/noise
// (naive averaging, duet, TUNA) can be compared on identical noise.
package cloud

import (
	"math"
	"math/rand"

	"autotune/internal/simsys"
	"autotune/internal/space"
	"autotune/internal/workload"
)

// Options shapes the fleet's noise.
type Options struct {
	// MachineSigma is the lognormal spread of per-VM base multipliers
	// (default 0.08 — machines differ by ~±8%).
	MachineSigma float64
	// OutlierProb is the chance a VM is an outlier (default 0.1);
	// OutlierFactor is its slowdown (default 1.6).
	OutlierProb, OutlierFactor float64
	// DriftPhi is the AR(1) persistence of temporal drift (default 0.95);
	// DriftSigma its innovation scale (default 0.02).
	DriftPhi, DriftSigma float64
	// MeasurementSigma is per-sample lognormal noise (default 0.03).
	MeasurementSigma float64
	// FlakyProb is the chance a VM is flaky — it intermittently fails
	// measurements outright (crashed benchmark, lost agent), the TUNA
	// "unstable machine" failure mode (default 0 = disabled).
	FlakyProb float64
	// FlakyFailRate is the per-sample failure probability on a flaky VM
	// (default 0.3 when FlakyProb > 0).
	FlakyFailRate float64
}

func (o Options) withDefaults() Options {
	if o.MachineSigma <= 0 {
		o.MachineSigma = 0.08
	}
	if o.OutlierProb < 0 {
		o.OutlierProb = 0
	} else if o.OutlierProb == 0 {
		o.OutlierProb = 0.1
	}
	if o.OutlierFactor <= 1 {
		o.OutlierFactor = 1.6
	}
	if o.DriftPhi <= 0 || o.DriftPhi >= 1 {
		o.DriftPhi = 0.95
	}
	if o.DriftSigma <= 0 {
		o.DriftSigma = 0.02
	}
	if o.MeasurementSigma <= 0 {
		o.MeasurementSigma = 0.03
	}
	if o.FlakyProb < 0 {
		o.FlakyProb = 0
	}
	if o.FlakyProb > 0 && o.FlakyFailRate <= 0 {
		o.FlakyFailRate = 0.3
	}
	return o
}

// HostProfile is one VM's persistent behaviour: its machine-lottery
// multiplier, whether it is a systematic outlier, and whether it is flaky
// (intermittently fails measurements). The resilience layer
// (internal/resilience) seeds per-host fault injection from these
// profiles so offline fault injection mirrors the fleet's noise model.
type HostProfile struct {
	// Mult is the persistent performance multiplier (machine lottery).
	Mult float64
	// Outlier marks a systematically slow machine.
	Outlier bool
	// Flaky marks an unstable machine; FailRate is its per-sample
	// failure probability.
	Flaky    bool
	FailRate float64
}

// SampleHosts draws n host profiles from the fleet noise model. The draw
// order is stable: adding flakiness (FlakyProb > 0) does not perturb the
// multiplier/outlier stream of existing seeds.
func SampleHosts(n int, opts Options, rng *rand.Rand) []HostProfile {
	return sampleHosts(n, opts.withDefaults(), rng)
}

// sampleHosts assumes opts already carries defaults (withDefaults is not
// idempotent: its 0-means-default sentinels must be applied exactly once).
func sampleHosts(n int, opts Options, rng *rand.Rand) []HostProfile {
	hosts := make([]HostProfile, n)
	for i := range hosts {
		h := HostProfile{Mult: math.Exp(rng.NormFloat64() * opts.MachineSigma)}
		if rng.Float64() < opts.OutlierProb {
			h.Outlier = true
			h.Mult *= opts.OutlierFactor
		}
		hosts[i] = h
	}
	// Flakiness is drawn in a second pass so enabling it leaves the
	// multiplier/outlier stream of an existing seed untouched.
	if opts.FlakyProb > 0 {
		for i := range hosts {
			if rng.Float64() < opts.FlakyProb {
				hosts[i].Flaky = true
				hosts[i].FailRate = opts.FlakyFailRate
			}
		}
	}
	return hosts
}

// vm is one simulated machine: its persistent profile plus AR(1) drift
// state.
type vm struct {
	HostProfile
	drift float64
}

// Fleet is a set of noisy VMs running one simulated system under one
// workload. It implements noise.Sampler: Sample(cfg, replica) returns the
// objective measured on that VM, corrupted by the fleet's noise.
type Fleet struct {
	sys  simsys.System
	wl   workload.Descriptor
	opts Options
	vms  []*vm
	rng  *rand.Rand

	// Objective extracts the score from metrics (default: LatencyMS).
	Objective func(simsys.Metrics) float64
	// Fidelity for every run (default 1).
	Fidelity float64
	// CrashValue is returned for configurations that crash (default +Inf).
	CrashValue float64
}

// NewFleet builds a fleet of n VMs with the given noise options.
func NewFleet(sys simsys.System, wl workload.Descriptor, n int, opts Options, rng *rand.Rand) *Fleet {
	opts = opts.withDefaults()
	f := &Fleet{
		sys:  sys,
		wl:   wl,
		opts: opts,
		rng:  rng,
		Objective: func(m simsys.Metrics) float64 {
			return m.LatencyMS
		},
		Fidelity:   1,
		CrashValue: math.Inf(1),
	}
	for _, h := range sampleHosts(n, opts, rng) {
		f.vms = append(f.vms, &vm{HostProfile: h})
	}
	return f
}

// Hosts returns the fleet's host profiles (for seeding fault injection).
func (f *Fleet) Hosts() []HostProfile {
	out := make([]HostProfile, len(f.vms))
	for i, v := range f.vms {
		out[i] = v.HostProfile
	}
	return out
}

// Replicas implements noise.Sampler.
func (f *Fleet) Replicas() int { return len(f.vms) }

// OutlierCount returns how many VMs are outliers (for experiment reports).
func (f *Fleet) OutlierCount() int {
	n := 0
	for _, v := range f.vms {
		if v.Outlier {
			n++
		}
	}
	return n
}

// FlakyCount returns how many VMs are flaky.
func (f *Fleet) FlakyCount() int {
	n := 0
	for _, v := range f.vms {
		if v.Flaky {
			n++
		}
	}
	return n
}

// Sample implements noise.Sampler: one measurement of cfg on a VM.
func (f *Fleet) Sample(cfg space.Config, replica int) float64 {
	if len(f.vms) == 0 {
		return f.CrashValue
	}
	v := f.vms[replica%len(f.vms)]
	// Advance this VM's drift (noisy neighbours come and go).
	v.drift = f.opts.DriftPhi*v.drift + f.rng.NormFloat64()*f.opts.DriftSigma
	// Flaky machines lose measurements outright (TUNA's unstable hosts).
	if v.Flaky && f.rng.Float64() < v.FailRate {
		return f.CrashValue
	}
	m, err := f.sys.Run(cfg, f.wl, f.Fidelity, nil)
	if err != nil {
		return f.CrashValue
	}
	noise := math.Exp(f.rng.NormFloat64() * f.opts.MeasurementSigma)
	return f.Objective(m) * v.Mult * math.Exp(v.drift) * noise
}

// TrueScore returns the noise-free objective for cfg, for experiment
// ground truth.
func (f *Fleet) TrueScore(cfg space.Config) float64 {
	m, err := f.sys.Run(cfg, f.wl, 1, nil)
	if err != nil {
		return f.CrashValue
	}
	return f.Objective(m)
}
