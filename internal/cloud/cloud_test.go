package cloud

import (
	"math"
	"math/rand"
	"testing"

	"autotune/internal/noise"
	"autotune/internal/simsys"
	"autotune/internal/stats"
	"autotune/internal/workload"
)

func testFleet(n int, seed int64, opts Options) *Fleet {
	sys := simsys.NewDBMS(simsys.MediumVM())
	sys.NoiseSigma = 0 // fleet supplies all the noise
	return NewFleet(sys, workload.TPCC(), n, opts, rand.New(rand.NewSource(seed)))
}

func TestFleetImplementsSampler(t *testing.T) {
	var _ noise.Sampler = testFleet(3, 1, Options{})
}

func TestFleetSampleNoisyButCentered(t *testing.T) {
	f := testFleet(8, 2, Options{OutlierProb: -1}) // no outliers
	cfg := simsys.NewDBMS(simsys.MediumVM()).Space().Default()
	truth := f.TrueScore(cfg)
	var samples []float64
	for i := 0; i < 200; i++ {
		samples = append(samples, f.Sample(cfg, i%8))
	}
	med := stats.Median(samples)
	if math.Abs(med-truth)/truth > 0.25 {
		t.Fatalf("median %v far from truth %v", med, truth)
	}
	if stats.StdDev(samples) == 0 {
		t.Fatal("samples should be noisy")
	}
}

func TestFleetMachineVarianceExceedsWithinMachine(t *testing.T) {
	f := testFleet(10, 3, Options{MachineSigma: 0.2, MeasurementSigma: 0.01, DriftSigma: 0.001, OutlierProb: -1})
	cfg := simsys.NewDBMS(simsys.MediumVM()).Space().Default()
	perMachine := make([]float64, 10)
	var within []float64
	for m := 0; m < 10; m++ {
		var s []float64
		for i := 0; i < 10; i++ {
			s = append(s, f.Sample(cfg, m))
		}
		perMachine[m] = stats.Mean(s)
		within = append(within, stats.StdDev(s))
	}
	across := stats.StdDev(perMachine)
	if !(across > stats.Mean(within)) {
		t.Fatalf("across-machine spread %v should exceed within-machine %v",
			across, stats.Mean(within))
	}
}

func TestFleetOutliers(t *testing.T) {
	f := testFleet(50, 4, Options{OutlierProb: 0.5})
	if f.OutlierCount() == 0 {
		t.Fatal("expected outliers at p=0.5 with 50 VMs")
	}
	f2 := testFleet(50, 4, Options{OutlierProb: -1})
	if f2.OutlierCount() != 0 {
		t.Fatal("outliers disabled should produce none")
	}
}

func TestFleetCrashValue(t *testing.T) {
	sys := simsys.NewDBMS(simsys.SmallVM())
	f := NewFleet(sys, workload.TPCC(), 3, Options{}, rand.New(rand.NewSource(5)))
	cfg := sys.Space().Default()
	cfg["buffer_pool_mb"] = int64(16384) // OOM on 8 GB
	if !math.IsInf(f.Sample(cfg, 0), 1) {
		t.Fatal("crash should sample as +Inf")
	}
	if !math.IsInf(f.TrueScore(cfg), 1) {
		t.Fatal("crash true score should be +Inf")
	}
}

func TestFleetReplicas(t *testing.T) {
	if testFleet(7, 6, Options{}).Replicas() != 7 {
		t.Fatal("replicas")
	}
}

func TestTUNAOnFleetBeatsNaive(t *testing.T) {
	// End-to-end noise mitigation: given two configs whose true scores
	// differ by ~15%, TUNA should rank them correctly more often than a
	// single naive measurement, across fleets.
	sys := simsys.NewDBMS(simsys.MediumVM())
	sys.NoiseSigma = 0
	good := sys.Space().Default()
	good["buffer_pool_mb"] = int64(1024)
	bad := sys.Space().Default()

	correctTUNA, correctNaive := 0, 0
	rounds := 15
	for i := 0; i < rounds; i++ {
		f := NewFleet(sys, workload.TPCC(), 6,
			Options{MachineSigma: 0.15, OutlierProb: 0.2, MeasurementSigma: 0.05},
			rand.New(rand.NewSource(int64(100+i))))
		tuna := noise.NewTUNA(f, sys.Space().Default())
		gs, _, err := tuna.Score(good)
		if err != nil {
			t.Fatal(err)
		}
		bs, _, err := tuna.Score(bad)
		if err != nil {
			t.Fatal(err)
		}
		if gs < bs {
			correctTUNA++
		}
		// Naive: one sample each on different machines.
		if f.Sample(good, 0) < f.Sample(bad, 1) {
			correctNaive++
		}
	}
	if correctTUNA < correctNaive {
		t.Fatalf("TUNA correct %d/%d vs naive %d/%d", correctTUNA, rounds, correctNaive, rounds)
	}
	if correctTUNA < rounds*2/3 {
		t.Fatalf("TUNA correct only %d/%d", correctTUNA, rounds)
	}
}

func TestSampleHostsFlaky(t *testing.T) {
	hosts := SampleHosts(100, Options{FlakyProb: 0.5}, rand.New(rand.NewSource(7)))
	flaky := 0
	for _, h := range hosts {
		if h.Mult <= 0 {
			t.Fatalf("non-positive multiplier %v", h.Mult)
		}
		if h.Flaky {
			flaky++
			if h.FailRate <= 0 {
				t.Fatal("flaky host without a fail rate")
			}
		} else if h.FailRate != 0 {
			t.Fatal("stable host with a fail rate")
		}
	}
	if flaky < 25 || flaky > 75 {
		t.Fatalf("flaky count %d implausible at p=0.5", flaky)
	}
	// Flakiness is opt-in: default options produce none.
	for _, h := range SampleHosts(50, Options{}, rand.New(rand.NewSource(8))) {
		if h.Flaky {
			t.Fatal("flaky host with FlakyProb unset")
		}
	}
}

func TestSampleHostsStableStream(t *testing.T) {
	// Enabling flakiness must not perturb the multiplier/outlier draws of
	// an existing seed (checkpointed experiments stay reproducible).
	a := SampleHosts(20, Options{}, rand.New(rand.NewSource(9)))
	b := SampleHosts(20, Options{FlakyProb: 0.3}, rand.New(rand.NewSource(9)))
	for i := range a {
		if a[i].Mult != b[i].Mult || a[i].Outlier != b[i].Outlier {
			t.Fatalf("host %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFleetFlakyMachines(t *testing.T) {
	f := testFleet(20, 10, Options{FlakyProb: 0.5, FlakyFailRate: 1})
	if f.FlakyCount() == 0 {
		t.Fatal("expected flaky machines at p=0.5 with 20 VMs")
	}
	if len(f.Hosts()) != 20 {
		t.Fatalf("hosts = %d", len(f.Hosts()))
	}
	cfg := simsys.NewDBMS(simsys.MediumVM()).Space().Default()
	// With FailRate 1 every sample on a flaky VM is lost.
	failures := 0
	for i := 0; i < 20; i++ {
		if math.IsInf(f.Sample(cfg, i), 1) {
			failures++
		}
	}
	if failures != f.FlakyCount() {
		t.Fatalf("failures %d != flaky VMs %d", failures, f.FlakyCount())
	}
}
