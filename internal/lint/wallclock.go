package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// deterministicPkgs names the packages whose non-test code must never read
// the wall clock: the simulated systems, every optimizer, the space
// encoder, the trial loop (including replay), and the serving layer. A
// trial run in these packages is a pure function of (space, seed, budget);
// a time.Now() or time.Sleep() there silently couples results to the host.
// The server belongs in the set because its resume contract is exactly
// that purity: a restarted study replays durable history into a fresh
// strategy and must suggest the same stream, so request handling may use
// duration constants and context deadlines but never sample the clock.
// Wall time stays legitimate in resilience (retry backoff), cloud (host
// simulation scaled from real profiles), kvstore (a real benchmark), and
// cmd/examples (reporting) — none of which appear here.
//
// Matching is by path segment so that e.g. both "internal/simsys" and a
// fixture dir ending in "simsys" qualify.
var deterministicPkgs = map[string]bool{
	"simsys": true, "space": true, "trial": true, "optimizer": true,
	"bo": true, "gp": true, "cmaes": true, "genetic": true, "pso": true,
	"smac": true, "server": true, "forest": true,
}

// wallClockFuncs are the time functions that read or depend on the wall
// clock. Pure constructors/arithmetic (time.Duration, time.Unix, t.Add)
// are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// isDeterministicPkg reports whether a module-relative package path is in
// the deterministic set.
func isDeterministicPkg(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if deterministicPkgs[seg] {
			return true
		}
	}
	return false
}

// WallClock forbids wall-clock reads in deterministic packages.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/Since/Sleep in deterministic (simulated/optimizer) packages",
	Run: func(f *File) []Diagnostic {
		if f.IsTest || !isDeterministicPkg(f.PkgPath) {
			return nil
		}
		timeName := f.ImportName("time")
		if timeName == "" {
			return nil
		}
		var out []Diagnostic
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok || x.Name != timeName || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			out = append(out, f.Diag("wallclock", sel.Pos(),
				fmt.Sprintf("wall-clock call %s.%s in deterministic package %s; model time as simulated cost instead",
					timeName, sel.Sel.Name, f.PkgPath),
				"accumulate simulated seconds (see trial.Report.WallClockSeconds) or move the call behind an injected clock"))
			return true
		})
		return out
	},
}
