package lint

// The typed tier. The syntactic analyzers (lint.go) work from name
// indexes because the module is vendorless and offline — but "offline"
// does not rule out go/types: the compiler's type checker and the
// "source" importer both live in the standard library, and GOROOT/src is
// in the image. This file runs go/types over every package in the
// module, resolving module-internal imports from the already-parsed
// Module ASTs and stdlib imports through a shared source importer, and
// exposes the result to dataflow analyzers (lockheld, goleak,
// fsyncbarrier, poolreturn) through TypedPass.
//
// Test files are excluded from type checking: external _test packages
// would split a directory into two type-checking units, and none of the
// typed invariants (lock discipline, fsync barriers, pool hygiene)
// apply to test-only code paths.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// TypedAnalyzer is one named check that needs type information and
// control flow. Run receives one file's pass and returns raw findings;
// the driver applies suppression filtering afterwards, exactly as for
// syntactic analyzers.
type TypedAnalyzer struct {
	Name string
	Doc  string
	Run  func(p *TypedPass) []Diagnostic
}

// TypedPass is the per-file view handed to a TypedAnalyzer: the parsed
// file, the type-checked package it belongs to, the shared type info,
// and a cache of per-function control-flow graphs.
type TypedPass struct {
	File *File
	Pkg  *types.Package
	Info *types.Info

	typed *TypedModule
	cfgs  map[ast.Node]*CFG
}

// TypedModule is the result of type-checking every package in a Module:
// one shared Info (its maps are keyed by AST node, so packages cannot
// collide), the types.Package per loaded Package, and the first type
// error per failing package.
type TypedModule struct {
	Mod  *Module
	Info *types.Info
	// Pkgs maps each loaded Package to its type-checked form. Packages
	// that failed to type-check still appear (go/types returns a partial
	// package) alongside an entry in Errs.
	Pkgs map[*Package]*types.Package
	Errs []error

	funcDeclOnce sync.Once
	funcDecls    map[*types.Func]*ast.FuncDecl
}

// typeCheckState drives one TypeCheck run; it implements types.Importer
// so module-internal imports recurse into sibling packages while stdlib
// imports delegate to the shared source importer.
type typeCheckState struct {
	mod        *Module
	tm         *TypedModule
	byImport   map[string]*Package // import path -> importable package
	done       map[*Package]*types.Package
	inProgress map[*Package]bool
}

// stdImporter is the process-global stdlib importer. Type-checking the
// standard library from source costs a few hundred milliseconds per
// package tree, so the cache must survive across LoadModule calls (the
// test suite type-checks dozens of fixture modules that all import sync
// and os). srcimporter is not safe for concurrent use; the mutex
// serializes it.
var stdImporter struct {
	mu  sync.Mutex
	imp types.Importer
}

func stdImport(path string) (*types.Package, error) {
	stdImporter.mu.Lock()
	defer stdImporter.mu.Unlock()
	if stdImporter.imp == nil {
		// The fset is private to the importer: stdlib positions are never
		// reported, only module positions are.
		stdImporter.imp = importer.ForCompiler(token.NewFileSet(), "source", nil)
	}
	return stdImporter.imp.Import(path)
}

// TypeCheck runs go/types over every package in the module. It always
// returns a usable TypedModule; per-package failures are collected in
// Errs and the failing packages carry whatever partial information the
// checker produced.
func (m *Module) TypeCheck() *TypedModule {
	tm := &TypedModule{
		Mod: m,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
		Pkgs: map[*Package]*types.Package{},
	}
	st := &typeCheckState{
		mod:        m,
		tm:         tm,
		byImport:   map[string]*Package{},
		done:       map[*Package]*types.Package{},
		inProgress: map[*Package]bool{},
	}
	for _, pkg := range m.Packages {
		if pkg.Name == "main" || strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		path := m.Path
		if pkg.Path != "." {
			path = m.Path + "/" + pkg.Path
		}
		// First importable package in a directory wins; loadDir emits
		// deterministic order, and real layouts have exactly one.
		if _, ok := st.byImport[path]; !ok {
			st.byImport[path] = pkg
		}
	}
	for _, pkg := range m.Packages {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		st.check(pkg)
	}
	return tm
}

// Import implements types.Importer: module-internal paths resolve
// against the Module's parsed packages, "unsafe" is the magic package,
// and everything else is assumed to be stdlib.
func (st *typeCheckState) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := st.moduleRel(path); ok {
		pkg, found := st.byImport[path]
		if !found {
			return nil, fmt.Errorf("lint: import %q: no package at %s in module", path, rel)
		}
		if st.inProgress[pkg] {
			return nil, fmt.Errorf("lint: import cycle through %q", path)
		}
		tpkg := st.check(pkg)
		if tpkg == nil {
			return nil, fmt.Errorf("lint: import %q: package failed to type-check", path)
		}
		return tpkg, nil
	}
	return stdImport(path)
}

// moduleRel splits a module-internal import path into its
// module-relative directory, reporting whether the path is internal.
func (st *typeCheckState) moduleRel(path string) (string, bool) {
	if path == st.mod.Path {
		return ".", true
	}
	if rel, ok := strings.CutPrefix(path, st.mod.Path+"/"); ok {
		return rel, true
	}
	return "", false
}

// check type-checks one package (memoized), recording results and the
// first error into the TypedModule.
func (st *typeCheckState) check(pkg *Package) *types.Package {
	if tpkg, ok := st.done[pkg]; ok {
		return tpkg
	}
	st.inProgress[pkg] = true
	defer delete(st.inProgress, pkg)

	var files []*ast.File
	for _, f := range pkg.Files {
		if !f.IsTest {
			files = append(files, f.AST)
		}
	}
	path := st.mod.Path
	if pkg.Path != "." {
		path = st.mod.Path + "/" + pkg.Path
	}
	var firstErr error
	conf := types.Config{
		Importer: st,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
		FakeImportC: true,
	}
	tpkg, err := conf.Check(path, st.mod.Fset, files, st.tm.Info)
	if firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		st.tm.Errs = append(st.tm.Errs, fmt.Errorf("lint: type-check %s: %w", pkg.Path, firstErr))
		tpkg = nil
	}
	st.done[pkg] = tpkg
	if tpkg != nil {
		st.tm.Pkgs[pkg] = tpkg
	}
	return tpkg
}

// Err returns the combined type-check failure, or nil if every package
// checked cleanly.
func (tm *TypedModule) Err() error {
	if len(tm.Errs) == 0 {
		return nil
	}
	msgs := make([]string, len(tm.Errs))
	for i, e := range tm.Errs {
		msgs[i] = e.Error()
	}
	return fmt.Errorf("%s", strings.Join(msgs, "\n"))
}

// FuncDecl resolves a module function object back to its declaration
// (nil for stdlib functions, methods of external types, and funcs whose
// package failed to check). goleak uses this to analyze `go helper()`
// bodies.
func (tm *TypedModule) FuncDecl(fn *types.Func) *ast.FuncDecl {
	tm.funcDeclOnce.Do(func() {
		tm.funcDecls = map[*types.Func]*ast.FuncDecl{}
		for _, pkg := range tm.Mod.Packages {
			for _, f := range pkg.Files {
				if f.IsTest {
					continue
				}
				for _, decl := range f.AST.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if obj, ok := tm.Info.Defs[fd.Name].(*types.Func); ok {
						tm.funcDecls[obj] = fd
					}
				}
			}
		}
	})
	return tm.funcDecls[fn]
}

// FuncCFG builds (and caches) the control-flow graph for a function
// declaration or literal.
func (p *TypedPass) FuncCFG(fn ast.Node) *CFG {
	if p.cfgs == nil {
		p.cfgs = map[ast.Node]*CFG{}
	}
	if c, ok := p.cfgs[fn]; ok {
		return c
	}
	var body *ast.BlockStmt
	switch n := fn.(type) {
	case *ast.FuncDecl:
		body = n.Body
	case *ast.FuncLit:
		body = n.Body
	}
	c := BuildCFG(body)
	p.cfgs[fn] = c
	return c
}

// Diag builds a Diagnostic anchored at pos.
func (p *TypedPass) Diag(check string, pos token.Pos, msg, suggestion string) Diagnostic {
	return p.File.Diag(check, pos, msg, suggestion)
}

// Callee resolves a call expression to its function object, if any
// (nil for builtins, conversions, and calls of function-typed values).
func (p *TypedPass) Callee(call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[f]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := p.Info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// CalleeName returns the fully qualified callee name of a call —
// "time.Sleep", "(*sync.Mutex).Lock", "(io.Closer).Close" — or "" when
// the callee is not a named function or method.
func (p *TypedPass) CalleeName(call *ast.CallExpr) string {
	if fn := p.Callee(call); fn != nil {
		return fn.FullName()
	}
	return ""
}

// BuiltinName returns the name of the builtin a call invokes ("panic",
// "close", ...), or "".
func (p *TypedPass) BuiltinName(call *ast.CallExpr) string {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			return b.Name()
		}
	}
	return ""
}

// TypeOf returns the type of an expression (nil if unknown).
func (p *TypedPass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// IsContext reports whether an expression has type context.Context.
func (p *TypedPass) IsContext(e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// funcDecls yields every function declaration and literal in the file
// with a body, pairing literals with their enclosing declaration name.
func (p *TypedPass) funcs(visit func(name string, fn ast.Node, body *ast.BlockStmt)) {
	for _, decl := range p.File.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd.Name.Name, fd, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				visit(fd.Name.Name, lit, lit.Body)
			}
			return true
		})
	}
}

// AllTyped returns the typed-tier analyzer registry in a stable order.
func AllTyped() []*TypedAnalyzer {
	return []*TypedAnalyzer{
		LockHeld,
		GoLeak,
		FsyncBarrier,
		PoolReturn,
	}
}

// SelectAnalyzers resolves a comma-separated list of analyzer names
// across both tiers. "" and "all" select every syntactic analyzer plus,
// when withTyped is set, every typed analyzer. Explicit names always
// resolve against both registries regardless of withTyped — asking for
// a typed analyzer by name is an unambiguous opt-in.
func SelectAnalyzers(names string, withTyped bool) ([]*Analyzer, []*TypedAnalyzer, error) {
	if names == "" || names == "all" {
		if withTyped {
			return All(), AllTyped(), nil
		}
		return All(), nil, nil
	}
	syn := map[string]*Analyzer{}
	for _, a := range All() {
		syn[a.Name] = a
	}
	typ := map[string]*TypedAnalyzer{}
	for _, a := range AllTyped() {
		typ[a.Name] = a
	}
	var outS []*Analyzer
	var outT []*TypedAnalyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if a, ok := syn[n]; ok {
			outS = append(outS, a)
			continue
		}
		if a, ok := typ[n]; ok {
			outT = append(outT, a)
			continue
		}
		return nil, nil, fmt.Errorf("lint: unknown analyzer %q", n)
	}
	return outS, outT, nil
}

// RunAll applies both analyzer tiers to the module with one shared
// directive pass, so a //autolint:ignore for a typed check is honored
// (and counted used) even though the tiers run separately. The typed
// tier type-checks the module once; a type-check failure is returned as
// err with the syntactic findings still reported — the caller decides
// whether that is fatal (cmd/autolint exits 2, like a parse failure).
func RunAll(mod *Module, analyzers []*Analyzer, typed []*TypedAnalyzer) ([]Diagnostic, error) {
	var tm *TypedModule
	if len(typed) > 0 {
		tm = mod.TypeCheck()
	}
	ran := map[string]bool{"autolint": true}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, a := range typed {
		ran[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			f.suppressions = nil
			out = append(out, f.initDirectives()...)
			for _, a := range analyzers {
				for _, d := range a.Run(f) {
					if !f.suppressed(a.Name, d.Pos.Line) {
						out = append(out, d)
					}
				}
			}
			if tm != nil && !f.IsTest {
				if tpkg, ok := tm.Pkgs[pkg]; ok {
					pass := &TypedPass{File: f, Pkg: tpkg, Info: tm.Info, typed: tm}
					for _, a := range typed {
						for _, d := range a.Run(pass) {
							if !f.suppressed(a.Name, d.Pos.Line) {
								out = append(out, d)
							}
						}
					}
				}
			}
			out = append(out, f.unusedDirectives(ran)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Check < b.Check
	})
	var err error
	if tm != nil {
		err = tm.Err()
	}
	return out, err
}
