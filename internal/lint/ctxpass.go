package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// CtxPass enforces context propagation: library code must not mint fresh
// root contexts, and a function that already receives a ctx must hand it
// on. Three rules:
//
//  1. context.Background()/context.TODO() are forbidden outside package
//     main and tests — roots belong at the program edge. Public
//     convenience wrappers that deliberately bridge a context-free API
//     carry an annotated //autolint:ignore.
//  2. Inside a function with a `ctx context.Context` parameter, passing
//     context.Background()/TODO() to a callee drops the caller's
//     cancellation for no reason; pass ctx.
//  3. Inside such a function, calling a module function X when a
//     ctx-taking variant XContext exists (e.g. trial.Run vs
//     trial.RunContext) silently re-roots the context; call XContext.
//  4. HTTP handlers — functions with an *http.Request parameter and no
//     ctx of their own — already hold a context at r.Context(), carrying
//     the server's per-request deadline and the client's disconnect.
//     Minting Background/TODO there (or calling X when XContext exists)
//     detaches the work from the request; derive from r.Context().
var CtxPass = &Analyzer{
	Name: "ctxpass",
	Doc:  "propagate context.Context; no fresh Background/TODO roots in library code or HTTP handlers",
	Run: func(f *File) []Diagnostic {
		if f.IsTest {
			return nil
		}
		ctxName := f.ImportName("context")
		httpName := f.ImportName("net/http")
		var out []Diagnostic
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParam := contextParamName(fd)
			reqParam := requestParamName(fd, httpName)
			// ctxExpr is what the function should be threading through:
			// its own ctx parameter, or the request context in a handler.
			ctxExpr := ctxParam
			if ctxExpr == "" && reqParam != "" {
				ctxExpr = reqParam + ".Context()"
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if ctxName != "" && isCtxRoot(call, ctxName) {
					switch {
					case ctxParam != "":
						out = append(out, f.Diag("ctxpass", call.Pos(),
							fmt.Sprintf("fresh %s root inside a function that already has %s in scope", ctxName, ctxParam),
							fmt.Sprintf("pass %s instead", ctxParam)))
					case reqParam != "":
						out = append(out, f.Diag("ctxpass", call.Pos(),
							fmt.Sprintf("fresh %s root inside an HTTP handler detaches work from the request's deadline and disconnect", ctxName),
							fmt.Sprintf("derive from %s instead", ctxExpr)))
					case f.PkgName != "main":
						out = append(out, f.Diag("ctxpass", call.Pos(),
							fmt.Sprintf("%s.%s() in library package %s; accept a context.Context from the caller",
								ctxName, rootFuncName(call), f.PkgPath),
							"add a ctx context.Context parameter (or a *Context variant) and thread it through"))
					}
					return true
				}
				if ctxExpr == "" {
					return true
				}
				// Rule 2: ctx root passed as an argument is caught above
				// (Inspect descends into args). Rules 3/4: base call where
				// a Context variant exists.
				if name, qualified := calleeName(f, call); name != "" {
					variant := name + "Context"
					if f.Mod.CtxFuncs[variant] && !f.Mod.CtxFuncs[name] && !strings.HasSuffix(name, "Context") {
						target := variant
						if qualified != "" {
							target = qualified + "." + variant
						}
						dropped := ctxParam
						if dropped == "" {
							dropped = "the request context"
						}
						out = append(out, f.Diag("ctxpass", call.Pos(),
							fmt.Sprintf("call drops %s: a context-aware variant %s exists", dropped, target),
							fmt.Sprintf("call %s(%s, ...)", target, ctxExpr)))
					}
				}
				return true
			})
		}
		return out
	},
}

// contextParamName returns the name of fd's context.Context parameter
// ("" if none or blank).
func contextParamName(fd *ast.FuncDecl) string {
	if fd.Type.Params == nil {
		return ""
	}
	for _, field := range fd.Type.Params.List {
		if !isContextType(field.Type) {
			continue
		}
		for _, n := range field.Names {
			if n.Name != "_" {
				return n.Name
			}
		}
	}
	return ""
}

// requestParamName returns the name of fd's *http.Request parameter
// ("" if none, blank, or the file does not import net/http). It marks
// the function as an HTTP handler for rule 4.
func requestParamName(fd *ast.FuncDecl, httpName string) string {
	if httpName == "" || fd.Type.Params == nil {
		return ""
	}
	for _, field := range fd.Type.Params.List {
		star, ok := field.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		sel, ok := star.X.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Request" {
			continue
		}
		if x, ok := sel.X.(*ast.Ident); !ok || x.Name != httpName {
			continue
		}
		for _, n := range field.Names {
			if n.Name != "_" {
				return n.Name
			}
		}
	}
	return ""
}

// isCtxRoot matches context.Background() / context.TODO() calls.
func isCtxRoot(call *ast.CallExpr, ctxName string) bool {
	return rootFuncName(call) != "" && calleePkg(call) == ctxName
}

func rootFuncName(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
		return sel.Sel.Name
	}
	return ""
}

func calleePkg(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	return x.Name
}

// calleeName resolves a call to (bare function name, package qualifier).
// Only plain identifiers and import-qualified selectors resolve — method
// calls return "" to keep the XContext rule from matching unrelated
// methods that happen to share a name.
func calleeName(f *File, call *ast.CallExpr) (name, qualifier string) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name, ""
	case *ast.SelectorExpr:
		x, ok := fun.X.(*ast.Ident)
		if !ok {
			return "", ""
		}
		if _, imported := f.imports[x.Name]; imported {
			return fun.Sel.Name, x.Name
		}
	}
	return "", ""
}
