package lint

import (
	"fmt"
	"go/ast"
)

// NakedGo forbids naked goroutines in library packages. A panic on a
// goroutine with no deferred recover kills the whole process — recovery
// installed by the spawner does not help — which in a tuning run means
// losing every in-flight trial. Library goroutines must therefore either
// route work through the sched pool (whose workers run tasks under
// sched.Guard) or install their own recover:
//
//   - `go func() { defer func() { ...recover()... }(); ... }()` is fine,
//     as is deferring a module function that itself recovers;
//   - `go f(...)` where f is a module function whose body installs a
//     top-level deferred recover is fine;
//   - anything else in a non-main, non-test package is a finding,
//     silenced where deliberate with an annotated //autolint:ignore.
var NakedGo = &Analyzer{
	Name: "nakedgo",
	Doc:  "goroutines in library code must defer a recover or go through the sched pool",
	Run: func(f *File) []Diagnostic {
		if f.IsTest || f.PkgName == "main" {
			return nil
		}
		var out []Diagnostic
		ast.Inspect(f.AST, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goRecovers(f, g) {
				return true
			}
			out = append(out, f.Diag("nakedgo", g.Pos(),
				fmt.Sprintf("naked goroutine in library package %s: a panic here kills the process", f.PkgPath),
				"defer a recover at the top of the goroutine (see sched.Guard) or run the work on the sched pool"))
			return true
		})
		return out
	},
}

// goRecovers reports whether the spawned function is panic-safe: a
// literal with a top-level deferred recover, or a module function indexed
// in RecoverFuncs.
func goRecovers(f *File, g *ast.GoStmt) bool {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return litRecovers(f, fun)
	case *ast.Ident:
		return f.Mod.RecoverFuncs[fun.Name]
	case *ast.SelectorExpr:
		return f.Mod.RecoverFuncs[fun.Sel.Name]
	}
	return false
}

// litRecovers reports whether a function literal's top-level statements
// include a defer that recovers.
func litRecovers(f *File, lit *ast.FuncLit) bool {
	for _, stmt := range lit.Body.List {
		ds, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		switch fun := ds.Call.Fun.(type) {
		case *ast.FuncLit:
			if containsRecover(fun.Body) {
				return true
			}
		case *ast.Ident:
			if f.Mod.RecoverHelpers[fun.Name] {
				return true
			}
		case *ast.SelectorExpr:
			if f.Mod.RecoverHelpers[fun.Sel.Name] {
				return true
			}
		}
	}
	return false
}

// containsRecover reports whether a block contains a call to recover().
func containsRecover(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
				found = true
			}
		}
		return !found
	})
	return found
}

// declRecovers is the RecoverFuncs index predicate: the function body
// installs a top-level `defer func() { ...recover()... }()`. Only direct
// literals count — the index is built before cross-function resolution
// is possible.
func declRecovers(body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		ds, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok && containsRecover(lit.Body) {
			return true
		}
	}
	return false
}
