package fixture

import "os"

// saveState returns an error; every declaration of this name in the
// fixture module does, so bare calls are unambiguous.
func saveState(path string) error {
	return os.WriteFile(path, nil, 0o644)
}

type store struct{}

func (s *store) Observe(v float64) error { return nil }

// badBare drops the error by calling saveState as a statement.
func badBare() {
	saveState("x.json") // want droppederr
}

// badMethod drops a method's error the same way.
func badMethod(s *store) {
	s.Observe(1.5) // want droppederr
}

// badBlank discards explicitly but silently — without a reason it is
// still a finding.
func badBlank() {
	_ = saveState("x.json") // want droppederr
}

// badStdlib blanks a well-known stdlib error.
func badStdlib(f *os.File) {
	_ = f.Close() // want droppederr
}
