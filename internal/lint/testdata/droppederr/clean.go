package fixture

import (
	"fmt"
	"os"
)

// Gauge's void Update makes the name ambiguous module-wide, so bare
// calls to any Update stay unflagged — the linter cannot tell which
// declaration a call resolves to without type information.
type Gauge struct{ v float64 }

func (g *Gauge) Update(v float64) { g.v = v }

type checkpointer struct{}

func (c *checkpointer) Update(v float64) error { return nil }

func cleanAmbiguous(g *Gauge) {
	g.Update(2.0)
}

// cleanHandled propagates the error.
func cleanHandled() error {
	if err := saveState("x.json"); err != nil {
		return fmt.Errorf("fixture: %w", err)
	}
	return nil
}

// cleanDefer: deferred Close is exempt by design.
func cleanDefer(f *os.File) error {
	defer f.Close()
	return saveState("y.json")
}

// cleanCapture keeps the error in a variable the caller inspects.
func cleanCapture() error {
	err := saveState("z.json")
	return err
}
