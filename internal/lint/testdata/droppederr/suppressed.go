package fixture

// suppressedDiscard keeps a deliberate best-effort discard, annotated
// with why it is safe.
func suppressedDiscard() {
	//autolint:ignore droppederr checkpoint write is best-effort; next interval retries
	_ = saveState("ckpt.json")
}
