package p

import "fmt"

func SpinForever() {
	go func() { // want goleak
		for {
		}
	}()
}

func PollForever(stop *bool) {
	go func() { // want goleak
		for !*stop {
		}
	}()
}

func ExternalTarget() {
	go fmt.Println("fire and forget") // want goleak
}

func pump(in, out chan int) {
	for {
		out <- <-in
	}
}

func NamedLeak(in, out chan int) {
	go pump(in, out) // want goleak
}
