package p

func Sanctioned() {
	//autolint:ignore goleak metrics flusher runs for the process lifetime by design
	go func() {
		for {
		}
	}()
}
