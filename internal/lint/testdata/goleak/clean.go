package p

import (
	"context"
	"sync"
)

func WaitGroupOwned(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			_ = i
		}
	}()
}

func CtxCancelled(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

func RangeWorker(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

func OneShotSend(ch chan int) {
	go func() {
		ch <- 1
	}()
}

func namedWorker(jobs chan int) {
	for range jobs {
	}
}

func NamedModuleTarget(jobs chan int) {
	go namedWorker(jobs)
}
