package fixture

import (
	"math/rand"

	mrand "math/rand"
)

// badDraw draws from the shared global source: not reproducible from a
// seed, and any other import can perturb the stream.
func badDraw() int {
	return rand.Intn(10) // want globalrand
}

func badFloat() float64 {
	return mrand.Float64() // want globalrand
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want globalrand
}
