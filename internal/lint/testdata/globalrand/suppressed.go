package fixture

import "math/rand"

// suppressedDraw keeps a global draw alive with an annotated directive —
// the escape hatch for code where reproducibility genuinely does not
// matter.
func suppressedDraw() int {
	//autolint:ignore globalrand jitter for a log message, not a tuned result
	return rand.Intn(10)
}

func suppressedTrailing() float64 {
	return rand.Float64() //autolint:ignore globalrand demo of the trailing directive form
}
