package fixture

import "math/rand"

// cleanDraw threads an explicitly seeded *rand.Rand: the sanctioned
// pattern. Constructors (New, NewSource) are not draws and stay legal.
func cleanDraw(rng *rand.Rand) int {
	return rng.Intn(10)
}

func cleanSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
