package p

func OwnershipTransfer() *buf {
	//autolint:ignore poolreturn ownership transfers to the caller, which Puts after use
	b := pool.Get().(*buf)
	return b
}
