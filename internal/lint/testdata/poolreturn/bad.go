package p

import "sync"

var pool = sync.Pool{New: func() any { return new(buf) }}

type buf struct{ b []byte }

func touch(b *buf) {}

func fill(b *buf) error { return nil }

func LeakOnErrorPath() error {
	b := pool.Get().(*buf) // want poolreturn
	if err := fill(b); err != nil {
		return err
	}
	pool.Put(b)
	return nil
}

func NeverReturned() *buf {
	b := pool.Get().(*buf) // want poolreturn
	return b
}

func PanicUnsafePut() {
	b := pool.Get().(*buf) // want poolreturn
	touch(b)
	pool.Put(b)
}
