package p

func DeferredPut() {
	b := pool.Get().(*buf)
	defer pool.Put(b)
	touch(b)
}

func DeferredClosurePut() {
	b := pool.Get().(*buf)
	defer func() {
		b.b = b.b[:0]
		pool.Put(b)
	}()
	touch(b)
}

func StraightLineNoCalls() {
	b := pool.Get().(*buf)
	b.b = b.b[:0]
	pool.Put(b)
}

func PutOnEveryBranch(n int) {
	b := pool.Get().(*buf)
	defer pool.Put(b)
	if n > 0 {
		touch(b)
		return
	}
	touch(b)
}
