package fixture

// coldStart grows its workspace on first use only; the one-time make is
// deliberate and annotated.
//
//autolint:hotpath
func coldStart(buf []float64, n int) []float64 {
	if cap(buf) < n {
		//autolint:ignore hotalloc one-time workspace growth, amortized to zero
		buf = make([]float64, n)
	}
	return buf[:n]
}
