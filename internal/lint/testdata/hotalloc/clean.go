package fixture

// notHot allocates freely: without the annotation the analyzer has
// nothing to say.
func notHot(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// scaleInto reuses caller storage — the shape every hot-path function
// should have.
//
//autolint:hotpath
func scaleInto(xs, out []float64, k float64) {
	for i := range xs {
		out[i] = xs[i] * k
	}
}

// hotDelegates calls an allocating helper; the analyzer is syntactic and
// per-body, so the callee is judged where it is defined, not here.
//
//autolint:hotpath
func hotDelegates(n int) []int {
	return notHot(n)
}
