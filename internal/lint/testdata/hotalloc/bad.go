// Package fixture exercises the hotalloc analyzer: annotated hot-path
// functions must not make or append.
package fixture

// sumInto is annotated hot but allocates a scratch vector on every call
// and grows its output.
//
//autolint:hotpath
func sumInto(xs, out []float64) []float64 {
	tmp := make([]float64, len(xs)) // want hotalloc
	copy(tmp, xs)
	for _, v := range tmp {
		out = append(out, v) // want hotalloc
	}
	return out
}

// hotClosure allocates inside a nested literal — still the annotated
// function's body, still flagged.
//
//autolint:hotpath
func hotClosure(n int) func() []int {
	return func() []int {
		return make([]int, n) // want hotalloc
	}
}
