package fixture

import "context"

// cleanPass threads the caller's ctx through both a helper and the
// Context variant.
func cleanPass(ctx context.Context) error {
	if err := doWork(ctx); err != nil {
		return err
	}
	return RunContext(ctx, 3)
}

// cleanDerive derives from the caller's ctx instead of re-rooting.
func cleanDerive(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return doWork(sub)
}
