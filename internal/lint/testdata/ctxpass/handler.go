package fixture

import (
	"context"
	"net/http"
)

// badHandlerRoot is the handler-shaped violation: no ctx parameter, but
// the request already carries one — minting a root detaches the work
// from the server's deadline and the client's disconnect.
func badHandlerRoot(w http.ResponseWriter, r *http.Request) {
	doWork(context.Background()) // want ctxpass
}

// badHandlerTODO is the same violation via TODO, on a method-shaped
// handler like the real server uses.
type handlerHost struct{}

func (handlerHost) badHandlerTODO(w http.ResponseWriter, r *http.Request) {
	doWork(context.TODO()) // want ctxpass
}

// badHandlerVariant drops the request context by calling the
// context-free wrapper when a Context variant exists.
func badHandlerVariant(w http.ResponseWriter, r *http.Request) {
	_ = Run(3) // want ctxpass
}

// cleanHandler derives everything from r.Context().
func cleanHandler(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	if err := RunContext(ctx, 3); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// cleanMiddleware threads an explicit ctx parameter alongside the
// request; the ctx parameter wins as the thing to propagate.
func cleanMiddleware(ctx context.Context, r *http.Request) error {
	return RunContext(ctx, 3)
}
