package fixture

import "context"

// suppressedBridge bridges a context-free public API, the one sanctioned
// use of a library root — and says so.
func suppressedBridge() error {
	//autolint:ignore ctxpass public context-free convenience wrapper
	return RunContext(context.Background(), 3)
}
