// Package fixture is a library package (not main), so fresh context
// roots are forbidden everywhere in it.
package fixture

import "context"

// RunContext is the ctx-aware variant the XContext rule resolves against.
func RunContext(ctx context.Context, n int) error {
	return ctx.Err()
}

// Run is the context-free variant.
func Run(n int) error {
	//autolint:ignore ctxpass fixture models the trial.Run convenience wrapper
	return RunContext(context.Background(), n)
}

// badRoot mints a root in library code with no ctx anywhere in sight.
func badRoot() error {
	ctx := context.Background() // want ctxpass
	return ctx.Err()
}

// badTODO is the same violation via TODO.
func badTODO() error {
	return doWork(context.TODO()) // want ctxpass
}

// badReroot has a perfectly good ctx and drops it.
func badReroot(ctx context.Context) error {
	return doWork(context.Background()) // want ctxpass
}

// badVariant calls the context-free wrapper from a function that already
// holds a ctx, silently re-rooting the chain.
func badVariant(ctx context.Context) error {
	return Run(3) // want ctxpass
}

func doWork(ctx context.Context) error { return ctx.Err() }
