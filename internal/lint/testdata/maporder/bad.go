package fixture

import (
	"fmt"
	"math/rand"
)

// Config mirrors the real space.Config: a named map type.
type Config map[string]any

type report struct {
	Best Config
}

// badAppend leaks map order into the returned slice.
func badAppend(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want maporder
	}
	return out
}

// badPrint emits lines in a random order per run.
func badPrint(cfg Config) {
	for k, v := range cfg {
		fmt.Printf("%s=%v\n", k, v) // want maporder
	}
}

// badRNG consumes the stream in map order, so every later draw differs
// between identically-seeded runs.
func badRNG(weights map[string]float64, rng *rand.Rand) float64 {
	total := 0.0
	for range weights {
		total += rng.Float64() // want maporder
	}
	return total
}

// badField ranges a map-typed struct field.
func badField(r report) []string {
	var keys []string
	for k := range r.Best {
		keys = append(keys, k) // want maporder
	}
	return keys
}

// badLocal builds the map locally; detection follows the := make form.
func badLocal() []string {
	idx := make(map[string]bool)
	idx["a"] = true
	var out []string
	for k := range idx {
		out = append(out, k) // want maporder
	}
	return out
}
