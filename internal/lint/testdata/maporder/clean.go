package fixture

import (
	"fmt"
	"sort"
)

// cleanSorted is the sanctioned pattern: collect keys, sort, iterate.
// The append inside the range is recognized because the target feeds
// sort.Strings later in the same block.
func cleanSorted(cfg Config) {
	names := make([]string, 0, len(cfg))
	for k := range cfg {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Printf("%s=%v\n", k, cfg[k])
	}
}

// cleanMapToMap copies between maps: no ordering is observable.
func cleanMapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// cleanSlice ranges a slice; nothing to flag.
func cleanSlice(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// cleanReduce accumulates a commutative reduction; tolerated.
func cleanReduce(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
