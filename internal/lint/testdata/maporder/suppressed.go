package fixture

// suppressedAppend documents why order cannot leak: the result feeds a
// set, so its order is irrelevant.
func suppressedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		//autolint:ignore maporder result is deduplicated into a set downstream
		out = append(out, k)
	}
	return out
}
