package studystore

import "os"

func CommitClean(tmp, final string) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(".")
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

type osFS struct{}

// Rename is a delegation wrapper: the durability contract binds the
// call sites that commit data, not the syscall plumbing.
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
