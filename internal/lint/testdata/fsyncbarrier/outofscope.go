package other

import "os"

// MoveScratch lives outside the persistence packages, so the barrier
// contract does not apply.
func MoveScratch(a, b string) error {
	backup := a + ".bak"
	_ = backup
	return os.Rename(a, b)
}
