package studystore

import "os"

func BestEffortSwap(a, b string) error {
	tmp := a + ".tmp"
	_ = tmp
	//autolint:ignore fsyncbarrier scratch-file swap; crash-safety deliberately not required
	return os.Rename(a, b)
}
