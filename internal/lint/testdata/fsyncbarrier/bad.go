package studystore

import "os"

func CommitWithoutFileSync(tmp, final string) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil { // want fsyncbarrier
		return err
	}
	return syncDir(".")
}

func CommitWithoutDirSync(tmp, final string) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final) // want fsyncbarrier
}
