// Package fixture is a library package (not main), so every goroutine
// must be panic-safe.
package fixture

import "sync"

// badNaked spawns a bare literal with no recover anywhere.
func badNaked() {
	go func() { // want nakedgo
		work()
	}()
}

// badWaitGroup is the classic fan-out: the deferred Done is not a
// recover, so a panicking worker still kills the process.
func badWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want nakedgo
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// badNamed spawns a module function that does not recover.
func badNamed() {
	go work() // want nakedgo
}

// badNestedRecover recovers one level too deep: the inner goroutine's
// literal has the defer, the outer one is still naked.
func badNestedRecover() {
	go func() { // want nakedgo
		go safeWorker()
		work()
	}()
}

// safeWorker recovers at its own top level (indexed in RecoverFuncs).
func safeWorker() {
	defer func() {
		_ = recover()
	}()
	work()
}

func work() {}
