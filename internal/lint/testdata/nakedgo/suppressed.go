package fixture

// suppressedWorker models the sched pool's own worker loop: every task
// already runs under a guard, so the loop body cannot panic and the
// suppression says why.
func suppressedWorker(in chan func()) {
	//autolint:ignore nakedgo worker loop runs each task under a guard; the loop itself cannot panic
	go func() {
		for f := range in {
			guarded(f)
		}
	}()
}

func guarded(f func()) {
	defer func() { _ = recover() }()
	f()
}
