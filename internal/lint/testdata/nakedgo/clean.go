package fixture

import "sync"

// cleanLiteralRecover installs the recover at the goroutine's top level.
func cleanLiteralRecover() {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				work()
			}
		}()
		work()
	}()
}

// cleanNamedTarget spawns a module function that recovers itself.
func cleanNamedTarget() {
	go safeWorker()
}

// cleanDeferredRecoverFunc defers a module function that recovers —
// equivalent to inlining the recover literal.
func cleanDeferredRecoverFunc() {
	go func() {
		defer drain()
		work()
	}()
}

// drain is a top-level-recover helper (indexed in RecoverFuncs).
func drain() {
	if r := recover(); r != nil {
		work()
	}
}

// cleanFanOut combines the WaitGroup idiom with a recover.
func cleanFanOut(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { _ = recover() }()
			work()
		}()
	}
	wg.Wait()
}
