package p

import (
	"os"
	"sync"
	"time"
)

type Q struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	f  *os.File
	wg sync.WaitGroup
}

func (q *Q) SendLocked(v int) {
	q.mu.Lock()
	q.ch <- v // want lockheld
	q.mu.Unlock()
}

func (q *Q) RecvDeferred() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch // want lockheld
}

func (q *Q) SleepUnderRLock() {
	q.rw.RLock()
	time.Sleep(time.Millisecond) // want lockheld
	q.rw.RUnlock()
}

func (q *Q) FsyncLocked() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.f.Sync() // want lockheld
}

func (q *Q) SelectLocked() {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // want lockheld
	case v := <-q.ch:
		_ = v
	case q.ch <- 1:
	}
}

func (q *Q) WaitLocked() {
	q.mu.Lock()
	q.wg.Wait() // want lockheld
	q.mu.Unlock()
}

// drainAll is a module function that blocks until its channel closes.
//
//autolint:blocking
func drainAll(ch chan int) {
	for range ch {
	}
}

func (q *Q) DrainLocked() {
	q.mu.Lock()
	drainAll(q.ch) // want lockheld
	q.mu.Unlock()
}

func (q *Q) RangeLocked() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for v := range q.ch { // want lockheld
		_ = v
	}
}
