package p

func (q *Q) AppendWAL(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	//autolint:ignore lockheld the fsync-before-ack barrier is the critical section by design
	q.ch <- v
}
