package p

func (q *Q) UnlockBeforeSend(v int) {
	q.mu.Lock()
	q.mu.Unlock()
	q.ch <- v
}

func (q *Q) NonBlockingSelect() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case v := <-q.ch:
		return v
	default:
		return 0
	}
}

func (q *Q) ShortCriticalSection() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return 1
}

func (q *Q) ReleaseOnBranch(b bool) {
	q.mu.Lock()
	if b {
		q.mu.Unlock()
		q.ch <- 1
		return
	}
	q.mu.Unlock()
}

// Sync implements a durability barrier; calling the inner barrier under
// the lock is the implementation, not a violation.
func (q *Q) Sync() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.f.Sync()
}

func (q *Q) SpawnIsNotBlocking() {
	q.mu.Lock()
	defer q.mu.Unlock()
	go func() {
		<-q.ch
	}()
}
