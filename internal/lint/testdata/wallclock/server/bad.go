// Package server (fixture) joined the deterministic set in PR 7: the
// daemon's resume contract — replaying durable history into a fresh
// strategy reproduces the suggest stream — only holds if request
// handling never samples the clock.
package server

import "time"

func badStamp() time.Time {
	return time.Now() // want wallclock
}

func badLatency(t0 time.Time) time.Duration {
	return time.Since(t0) // want wallclock
}

func badThrottle() {
	time.Sleep(10 * time.Millisecond) // want wallclock
}
