package server

import (
	"context"
	"time"
)

// cleanDeadline shows the sanctioned uses: duration constants and
// context deadlines are pure — only sampling the clock is forbidden.
func cleanDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, 30*time.Second)
}

func cleanBudget(requests int, perRequest time.Duration) time.Duration {
	return time.Duration(requests) * perRequest
}
