package forest

import "time"

// cleanBudget models a fit budget as pure duration arithmetic; constants
// and constructors never read the clock.
func cleanBudget(trees int, perTree time.Duration) time.Duration {
	return time.Duration(trees) * perTree
}
