// Package forest (fixture) joined the deterministic set with the surrogate
// tier ladder: forest fits back BO's deep-history tier, so a clock read
// here would couple suggestion streams to the host.
package forest

import "time"

func badSeedFromClock() int64 {
	return time.Now().UnixNano() // want wallclock
}

func badFitDeadline(t0 time.Time) time.Duration {
	return time.Since(t0) // want wallclock
}
