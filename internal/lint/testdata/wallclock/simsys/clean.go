package simsys

import "time"

// cleanCost models elapsed time as simulated cost: pure duration
// arithmetic and constructors never read the clock.
func cleanCost(ops int, perOp time.Duration) time.Duration {
	return time.Duration(ops) * perOp
}

func cleanParse(s string) (time.Duration, error) {
	return time.ParseDuration(s)
}
