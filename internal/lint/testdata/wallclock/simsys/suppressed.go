package simsys

import "time"

func suppressedNow() time.Time {
	//autolint:ignore wallclock coarse startup stamp, never enters trial results
	return time.Now()
}
