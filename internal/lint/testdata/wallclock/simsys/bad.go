// Package simsys (fixture) sits in the deterministic set: simulated
// systems must be pure functions of (config, workload, seed).
package simsys

import "time"

func badNow() time.Time {
	return time.Now() // want wallclock
}

func badElapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want wallclock
}

func badSleep() {
	time.Sleep(time.Millisecond) // want wallclock
}

func badTimer() *time.Timer {
	return time.NewTimer(time.Second) // want wallclock
}
