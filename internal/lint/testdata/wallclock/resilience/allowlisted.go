// Package resilience (fixture) is outside the deterministic set: retry
// backoff and deadlines are legitimately wall-time concerns, so the
// check stays silent here without any directive.
package resilience

import "time"

func backoff(attempt int) {
	time.Sleep(time.Duration(attempt) * time.Millisecond)
}

func stamp() time.Time {
	return time.Now()
}
