package lint

// lockheld: a sync.Mutex / sync.RWMutex must not be held across a
// blocking operation. Holding a lock across a channel op, a select, a
// WaitGroup.Wait, an fsync, or an annotated-blocking call serializes
// every other acquirer behind an unbounded wait — precisely the failure
// mode that turns a shared study-store or scheduler lock into a
// latency cliff under the concurrent daemon.
//
// The analysis is a forward may-held dataflow over the per-function
// CFG: Lock/RLock adds the receiver (identified by its expression
// text) to the held set, Unlock/RUnlock removes it, and any blocking
// node reached with a non-empty held set is a finding. Deferred
// unlocks intentionally do NOT clear the set — the lock stays held for
// the rest of the body, which is the point.
//
// The blocking-call summary table is:
//   - channel send / receive / select-without-default
//   - time.Sleep, (*sync.WaitGroup).Wait, (*sync.Cond).Wait
//   - any niladic method named Sync or SyncDir (fsync barriers), unless
//     the enclosing function is itself named Sync or SyncDir (an
//     implementation of the barrier is the barrier)
//   - module functions annotated //autolint:blocking (see Module.BlockingFuncs)

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockHeld is the typed analyzer instance.
var LockHeld = &TypedAnalyzer{
	Name: "lockheld",
	Doc:  "mutex held across a blocking operation (channel op, select, Wait, fsync, //autolint:blocking call)",
	Run:  runLockHeld,
}

// lockEvent is one ordered occurrence inside a CFG node.
type lockEvent struct {
	kind lockEventKind
	recv string // lock receiver text for acquire/release
	pos  token.Pos
	desc string // human description for blocking events
}

type lockEventKind int

const (
	evAcquire lockEventKind = iota
	evRelease
	evBlocking
)

func runLockHeld(p *TypedPass) []Diagnostic {
	var out []Diagnostic
	p.funcs(func(name string, fn ast.Node, body *ast.BlockStmt) {
		out = append(out, lockHeldFunc(p, name, fn)...)
	})
	return out
}

func lockHeldFunc(p *TypedPass, funcName string, fn ast.Node) []Diagnostic {
	cfg := p.FuncCFG(fn)
	// Per-block entry states: set of held receivers; meet is union.
	entry := make([]map[string]bool, len(cfg.Blocks))
	entry[0] = map[string]bool{}
	work := []*Block{cfg.Entry()}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		state := copySet(entry[blk.Index])
		for _, nd := range blk.Nodes {
			for _, ev := range p.lockEvents(cfg, funcName, nd) {
				switch ev.kind {
				case evAcquire:
					state[ev.recv] = true
				case evRelease:
					delete(state, ev.recv)
				}
			}
		}
		for _, s := range blk.Succs {
			if mergeInto(&entry[s.Index], state) {
				work = append(work, s)
			}
		}
	}
	// Reporting pass: replay each reachable block, flagging blocking
	// events while held.
	var out []Diagnostic
	seen := map[string]bool{}
	for _, blk := range cfg.Blocks {
		if entry[blk.Index] == nil {
			continue
		}
		state := copySet(entry[blk.Index])
		for _, nd := range blk.Nodes {
			for _, ev := range p.lockEvents(cfg, funcName, nd) {
				switch ev.kind {
				case evAcquire:
					state[ev.recv] = true
				case evRelease:
					delete(state, ev.recv)
				case evBlocking:
					if len(state) == 0 {
						continue
					}
					held := heldNames(state)
					key := fmt.Sprintf("%d-%s", ev.pos, held)
					if seen[key] {
						continue
					}
					seen[key] = true
					out = append(out, p.Diag("lockheld", ev.pos,
						fmt.Sprintf("%s held across blocking %s; shrink the critical section or release before blocking", held, ev.desc),
						""))
				}
			}
		}
	}
	return out
}

// lockEvents extracts the ordered lock/blocking events from one CFG
// node. Defer statements contribute no events: a deferred Unlock keeps
// the lock held for the rest of the body, and a deferred call runs
// outside the region being analyzed.
func (p *TypedPass) lockEvents(cfg *CFG, funcName string, nd ast.Node) []lockEvent {
	var evs []lockEvent
	inspectShallow(nd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			return false
		case *ast.GoStmt:
			// The spawned body is a separate function; the spawn itself
			// does not block. Arguments are still evaluated.
			for _, arg := range n.Call.Args {
				for _, e := range p.lockEvents(cfg, funcName, arg) {
					evs = append(evs, e)
				}
			}
			return false
		case *ast.SendStmt:
			if !cfg.IsCommClause(n) {
				evs = append(evs, lockEvent{kind: evBlocking, pos: n.Arrow, desc: "channel send"})
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !p.insideCommClause(cfg, nd, n) {
				evs = append(evs, lockEvent{kind: evBlocking, pos: n.OpPos, desc: "channel receive"})
			}
			return true
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				evs = append(evs, lockEvent{kind: evBlocking, pos: n.Select, desc: "select"})
			}
			return false
		case *ast.RangeStmt:
			if t := p.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					evs = append(evs, lockEvent{kind: evBlocking, pos: n.For, desc: "range over channel"})
				}
			}
			return true
		case *ast.CallExpr:
			if ev, ok := p.callLockEvent(funcName, n); ok {
				evs = append(evs, ev)
			}
			return true
		}
		return true
	})
	return evs
}

// insideCommClause reports whether a receive expression is the
// communication of a select clause (the node itself is the comm stmt,
// or the comm stmt wraps it directly).
func (p *TypedPass) insideCommClause(cfg *CFG, blockNode ast.Node, recv *ast.UnaryExpr) bool {
	if !cfg.IsCommClause(blockNode) {
		return false
	}
	// The comm stmt is `<-ch`, `x := <-ch`, or `x = <-ch`; in each the
	// receive is the clause's own operation.
	return true
}

func (p *TypedPass) callLockEvent(funcName string, call *ast.CallExpr) (lockEvent, bool) {
	fn := p.Callee(call)
	if fn == nil {
		return lockEvent{}, false
	}
	full := fn.FullName()
	switch full {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
		return lockEvent{kind: evAcquire, recv: recvText(call), pos: call.Pos()}, true
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
		return lockEvent{kind: evRelease, recv: recvText(call), pos: call.Pos()}, true
	case "time.Sleep":
		return lockEvent{kind: evBlocking, pos: call.Pos(), desc: "call time.Sleep"}, true
	case "(*sync.WaitGroup).Wait":
		return lockEvent{kind: evBlocking, pos: call.Pos(), desc: "call WaitGroup.Wait"}, true
	case "(*sync.Cond).Wait":
		return lockEvent{kind: evBlocking, pos: call.Pos(), desc: "call Cond.Wait"}, true
	}
	name := fn.Name()
	// fsync barriers: any niladic Sync/SyncDir method — except inside an
	// implementation of one (errfs implements the FS contract in memory
	// under its own lock; the implementation IS the barrier).
	if (name == "Sync" || name == "SyncDir") && fn.Type().(*types.Signature).Recv() != nil {
		if funcName != "Sync" && funcName != "SyncDir" {
			return lockEvent{kind: evBlocking, pos: call.Pos(), desc: "call " + full + " (fsync barrier)"}, true
		}
		return lockEvent{}, false
	}
	// Module functions annotated //autolint:blocking.
	if pkg := fn.Pkg(); pkg != nil && p.inModule(pkg.Path()) && p.File.Mod.BlockingFuncs[name] {
		return lockEvent{kind: evBlocking, pos: call.Pos(), desc: "call " + full + " (//autolint:blocking)"}, true
	}
	return lockEvent{}, false
}

// inModule reports whether a package path belongs to the module under
// analysis.
func (p *TypedPass) inModule(path string) bool {
	mp := p.File.Mod.Path
	return path == mp || strings.HasPrefix(path, mp+"/")
}

// recvText renders the lock receiver (`s.mu` in `s.mu.Lock()`) for
// identity comparison and messages.
func recvText(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "lock"
	}
	return types.ExprString(sel.X)
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cs := range s.Body.List {
		if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// mergeInto unions src into *dst, reporting whether *dst changed (nil
// *dst means "not yet visited").
func mergeInto(dst *map[string]bool, src map[string]bool) bool {
	if *dst == nil {
		*dst = copySet(src)
		return true
	}
	changed := false
	for k := range src {
		if !(*dst)[k] {
			(*dst)[k] = true
			changed = true
		}
	}
	return changed
}

// heldNames renders a held set deterministically.
func heldNames(s map[string]bool) string {
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}
