package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// HotPathDirective marks a function whose warm-call allocation count is
// pinned by tests: the Into kernels in linalg, gp.PredictWS, the space
// encoders, and the acquisition restart loop. The annotation is a doc
// comment line:
//
//	//autolint:hotpath
//	func (s *Space) EncodeInto(cfg Config, x []float64) { ... }
const HotPathDirective = "//autolint:hotpath"

// HotAlloc forbids direct `make` and `append` calls inside functions
// annotated //autolint:hotpath. Those functions back the zero-allocation
// suggest–evaluate–observe loop; a stray allocation there regresses every
// Suggest call. The check is syntactic and applies only to the annotated
// function's own body (nested literals included) — callees that allocate,
// such as one-time workspace `ensure` growth, are flagged where they are
// defined or not at all. Deliberate cold-start allocations are silenced
// with an annotated //autolint:ignore.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "functions annotated //autolint:hotpath must not make or append",
	Run: func(f *File) []Diagnostic {
		var out []Diagnostic
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotPath(fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				if id.Name == "make" || id.Name == "append" {
					out = append(out, f.Diag("hotalloc", call.Pos(),
						fmt.Sprintf("%s in hot-path function %s allocates on every call", id.Name, fn.Name.Name),
						"reuse a caller-owned or workspace buffer, or drop the //autolint:hotpath annotation"))
				}
				return true
			})
		}
		return out
	},
}

// isHotPath reports whether the function's doc comment carries the
// hotpath directive.
func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == HotPathDirective {
			return true
		}
	}
	return false
}
