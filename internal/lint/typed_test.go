package lint

import (
	"go/ast"
	"path/filepath"
	"testing"
	"time"
)

// runTypedFixture loads testdata/<name> as its own module, runs the
// typed analyzer (type-checking the fixture), and requires findings to
// match the want comments exactly.
func runTypedFixture(t *testing.T, name string, a *TypedAnalyzer) {
	t.Helper()
	mod, err := LoadModule(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAll(mod, nil, []*TypedAnalyzer{a})
	if err != nil {
		t.Fatalf("fixture must type-check: %v", err)
	}
	var got []want
	for _, d := range diags {
		got = append(got, want{file: d.Pos.Filename, line: d.Pos.Line, check: d.Check})
	}
	wants := collectWants(t, mod)
	sortWants(got)
	sortWants(wants)
	if len(got) != len(wants) {
		t.Fatalf("diagnostics mismatch:\n got: %v\nwant: %v", got, wants)
	}
	for i := range got {
		if got[i] != wants[i] {
			t.Errorf("diagnostic %d: got %v, want %v", i, got[i], wants[i])
		}
	}
}

func TestLockHeldFixtures(t *testing.T)     { runTypedFixture(t, "lockheld", LockHeld) }
func TestGoLeakFixtures(t *testing.T)       { runTypedFixture(t, "goleak", GoLeak) }
func TestFsyncBarrierFixtures(t *testing.T) { runTypedFixture(t, "fsyncbarrier", FsyncBarrier) }
func TestPoolReturnFixtures(t *testing.T)   { runTypedFixture(t, "poolreturn", PoolReturn) }

// TestRepoTypeChecks: the whole module must type-check through the
// in-module loader + source importer, and fast enough to ride in make
// check (the acceptance bound is 10s; allow slack for cold stdlib
// type-checking under -race).
func TestRepoTypeChecks(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	tm := mod.TypeCheck()
	elapsed := time.Since(start)
	if err := tm.Err(); err != nil {
		t.Fatalf("module does not type-check: %v", err)
	}
	if len(tm.Pkgs) == 0 {
		t.Fatal("no packages type-checked")
	}
	t.Logf("type-checked %d packages in %v", len(tm.Pkgs), elapsed)
	if elapsed > 30*time.Second {
		t.Fatalf("typed tier took %v; the acceptance bound is 10s warm", elapsed)
	}
}

// TestSelectAnalyzers pins the cross-tier name resolution contract.
func TestSelectAnalyzers(t *testing.T) {
	syn, typ, err := SelectAnalyzers("all", true)
	if err != nil || len(syn) != len(All()) || len(typ) != len(AllTyped()) {
		t.Fatalf("all+typed: %d/%d analyzers, err %v", len(syn), len(typ), err)
	}
	syn, typ, err = SelectAnalyzers("", false)
	if err != nil || len(syn) != len(All()) || len(typ) != 0 {
		t.Fatalf("all-typed: %d/%d analyzers, err %v", len(syn), len(typ), err)
	}
	// Naming a typed analyzer is an opt-in regardless of withTyped.
	syn, typ, err = SelectAnalyzers("globalrand,lockheld", false)
	if err != nil || len(syn) != 1 || len(typ) != 1 || typ[0].Name != "lockheld" {
		t.Fatalf("mixed names: %v/%v, err %v", syn, typ, err)
	}
	if _, _, err := SelectAnalyzers("nosuchcheck", true); err == nil {
		t.Fatal("unknown analyzer must error")
	}
}

// TestTypedSuppressionShared: a directive for a typed check must be
// honored (and counted used) by the shared directive pass, even when
// syntactic analyzers run in the same invocation.
func TestTypedSuppressionShared(t *testing.T) {
	mod := writeFixture(t, `package p

import "sync"

type T struct {
	mu sync.Mutex
	ch chan int
}

func (t *T) Recv() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	//autolint:ignore lockheld handoff protocol requires holding the lock here
	return <-t.ch
}
`)
	diags, err := RunAll(mod, All(), AllTyped())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("suppressed typed finding leaked (or directive reported unused): %v", diags)
	}
}

// TestTypeErrorSurfaced: a module that does not type-check reports the
// failure through RunAll's error (cmd/autolint exits 2 on it).
func TestTypeErrorSurfaced(t *testing.T) {
	mod := writeFixture(t, `package p

func f() int { return undefinedSymbol }
`)
	_, err := RunAll(mod, nil, AllTyped())
	if err == nil {
		t.Fatal("want a type-check error, got nil")
	}
}

// cfgOf builds the CFG of the first function declaration in src.
func cfgOf(t *testing.T, src string) (*CFG, *ast.FuncDecl) {
	t.Helper()
	mod := writeFixture(t, src)
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.AST.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					return BuildCFG(fd.Body), fd
				}
			}
		}
	}
	t.Fatal("no function in fixture")
	return nil, nil
}

// findCall locates the first call expression whose callee text ends in
// name.
func findCall(fd *ast.FuncDecl, name string) *ast.CallExpr {
	var out *ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == name {
				out = c
				return false
			}
		}
		return true
	})
	return out
}

func isCallNamed(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := c.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
}

// TestCFGDominance exercises the dataflow helpers directly on branchy
// shapes, independent of any analyzer.
func TestCFGDominance(t *testing.T) {
	const src = `package p

func a()
func b()
func c()

func f(x bool) {
	a()
	if x {
		b()
		return
	}
	c()
}
`
	cfg, fd := cfgOf(t, src)
	callB := findCall(fd, "b")
	callC := findCall(fd, "c")
	if !cfg.DominatedBy(callB, isCallNamed("a")) {
		t.Error("a() should dominate b()")
	}
	if cfg.DominatedBy(callC, isCallNamed("b")) {
		t.Error("b() must not dominate c(): the else path skips it")
	}
	if cfg.ReachesForward(callB, isCallNamed("b")) {
		t.Error("a node must not reach itself strictly forward")
	}
	if cfg.ReachesForward(callB, isCallNamed("c")) {
		t.Error("b() returns; it must not reach c()")
	}
}

// TestCFGLoops: a call inside a loop does not dominate the loop exit;
// a call before the loop does.
func TestCFGLoops(t *testing.T) {
	const src = `package p

func a()
func b()
func c()

func f(n int) {
	a()
	for i := 0; i < n; i++ {
		b()
	}
	c()
}
`
	cfg, fd := cfgOf(t, src)
	callC := findCall(fd, "c")
	if !cfg.DominatedBy(callC, isCallNamed("a")) {
		t.Error("a() should dominate c()")
	}
	if cfg.DominatedBy(callC, isCallNamed("b")) {
		t.Error("b() runs zero times when n==0; it must not dominate c()")
	}
	callA := findCall(fd, "a")
	if !cfg.ReachesForward(callA, isCallNamed("b")) {
		t.Error("a() should reach b() inside the loop")
	}
	if !cfg.AllReturnsPass(callA, isCallNamed("c")) {
		t.Error("every return path after a() passes c()")
	}
}

// TestCFGPanicPathsExempt: AllReturnsPass ignores paths that end in
// panic.
func TestCFGPanicPathsExempt(t *testing.T) {
	const src = `package p

func a()
func release()

func f(x bool) {
	a()
	if x {
		panic("boom")
	}
	release()
}
`
	cfg, fd := cfgOf(t, src)
	callA := findCall(fd, "a")
	if !cfg.AllReturnsPass(callA, isCallNamed("release")) {
		t.Error("the panic path must be exempt; every normal return passes release()")
	}
}
