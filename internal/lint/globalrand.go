package lint

import (
	"fmt"
	"go/ast"
)

// globalRandFuncs are the top-level math/rand functions that draw from the
// package-global source. Constructors (New, NewSource, NewZipf) are fine:
// they are how seeded RNGs get built.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// GlobalRand forbids the package-global math/rand functions in non-test
// code. Every random draw in this framework must flow through an injected,
// explicitly seeded *rand.Rand so that a run is reproducible from its seed
// alone; the global source is shared mutable state that any import can
// perturb.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid top-level math/rand functions; thread a seeded *rand.Rand instead",
	Run: func(f *File) []Diagnostic {
		if f.IsTest {
			return nil
		}
		randNames := map[string]bool{}
		for _, n := range f.ImportNames("math/rand") {
			randNames[n] = true
		}
		for _, n := range f.ImportNames("math/rand/v2") {
			randNames[n] = true
		}
		if len(randNames) == 0 {
			return nil
		}
		var out []Diagnostic
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok || !randNames[x.Name] || !globalRandFuncs[sel.Sel.Name] {
				return true
			}
			out = append(out, f.Diag("globalrand", call.Pos(),
				fmt.Sprintf("call to global %s.%s; draw from an injected seeded *rand.Rand", x.Name, sel.Sel.Name),
				fmt.Sprintf("replace %s.%s(...) with rng.%s(...) where rng is a seeded *rand.Rand parameter", x.Name, sel.Sel.Name, sel.Sel.Name)))
			return true
		})
		return out
	},
}
