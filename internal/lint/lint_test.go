package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// want is one expected diagnostic, declared in a fixture as a trailing
// `// want <check>` comment on the offending line.
type want struct {
	file  string
	line  int
	check string
}

func (w want) String() string { return fmt.Sprintf("%s:%d [%s]", w.file, w.line, w.check) }

// collectWants scans every fixture file for `// want <check>` comments.
func collectWants(t *testing.T, mod *Module) []want {
	t.Helper()
	var out []want
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					check := strings.TrimSpace(rest)
					if check == "" {
						t.Fatalf("%s: malformed want comment %q", f.Filename, c.Text)
					}
					out = append(out, want{file: f.Filename, line: f.Position(c.Pos()).Line, check: check})
				}
			}
		}
	}
	return out
}

// runFixture loads testdata/<name> as its own module, runs the analyzer,
// and requires findings to match the want comments exactly. Suppressed
// and clean fixtures simply carry no want comments.
func runFixture(t *testing.T, name string, a *Analyzer) {
	t.Helper()
	mod, err := LoadModule(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	var got []want
	for _, d := range Run(mod, []*Analyzer{a}) {
		got = append(got, want{file: d.Pos.Filename, line: d.Pos.Line, check: d.Check})
	}
	wants := collectWants(t, mod)
	sortWants(got)
	sortWants(wants)
	if len(got) != len(wants) {
		t.Fatalf("diagnostics mismatch:\n got: %v\nwant: %v", got, wants)
	}
	for i := range got {
		if got[i] != wants[i] {
			t.Errorf("diagnostic %d: got %v, want %v", i, got[i], wants[i])
		}
	}
}

func sortWants(ws []want) {
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].file != ws[j].file {
			return ws[i].file < ws[j].file
		}
		if ws[i].line != ws[j].line {
			return ws[i].line < ws[j].line
		}
		return ws[i].check < ws[j].check
	})
}

func TestGlobalRandFixtures(t *testing.T) { runFixture(t, "globalrand", GlobalRand) }
func TestWallClockFixtures(t *testing.T)  { runFixture(t, "wallclock", WallClock) }
func TestMapOrderFixtures(t *testing.T)   { runFixture(t, "maporder", MapOrder) }
func TestCtxPassFixtures(t *testing.T)    { runFixture(t, "ctxpass", CtxPass) }
func TestDroppedErrFixtures(t *testing.T) { runFixture(t, "droppederr", DroppedErr) }
func TestNakedGoFixtures(t *testing.T)    { runFixture(t, "nakedgo", NakedGo) }
func TestHotAllocFixtures(t *testing.T)   { runFixture(t, "hotalloc", HotAlloc) }

// TestRepoIsClean runs the full registry — both tiers — over the real
// module: the tree must stay violation-free, with every deliberate
// exception annotated.
func TestRepoIsClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAll(mod, All(), AllTyped())
	if err != nil {
		t.Fatalf("module must type-check: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("repo has %d lint finding(s); fix them or add an annotated //autolint:ignore", len(diags))
	}
}

// writeFixture drops source into a temp module dir and loads it.
func writeFixture(t *testing.T, src string) *Module {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestMalformedDirective(t *testing.T) {
	mod := writeFixture(t, `package p

func f() {
	//autolint:ignore droppederr
	_ = 1
}
`)
	diags := Run(mod, nil)
	if len(diags) != 1 || diags[0].Check != "autolint" ||
		!strings.Contains(diags[0].Message, "malformed") {
		t.Fatalf("want one malformed-directive finding, got %v", diags)
	}
}

func TestUnusedDirective(t *testing.T) {
	mod := writeFixture(t, `package p

func f() int {
	//autolint:ignore globalrand nothing here actually violates it
	return 1
}
`)
	diags := Run(mod, All())
	if len(diags) != 1 || diags[0].Check != "autolint" ||
		!strings.Contains(diags[0].Message, "unused ignore directive") {
		t.Fatalf("want one unused-directive finding, got %v", diags)
	}
}

// TestSuppressionIsPerCheck: a directive for one check must not silence a
// different check on the same line.
func TestSuppressionIsPerCheck(t *testing.T) {
	mod := writeFixture(t, `package p

import "math/rand"

func f() int {
	//autolint:ignore wallclock wrong check name on purpose
	return rand.Intn(3)
}
`)
	diags := Run(mod, All())
	var checks []string
	for _, d := range diags {
		checks = append(checks, d.Check)
	}
	sort.Strings(checks)
	// The globalrand finding survives, and the wallclock directive is
	// reported unused.
	if len(diags) != 2 || checks[0] != "autolint" || checks[1] != "globalrand" {
		t.Fatalf("want [autolint globalrand], got %v: %v", checks, diags)
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("all")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(all) = %v, %v", all, err)
	}
	two, err := ByName("globalrand, wallclock")
	if err != nil || len(two) != 2 || two[0].Name != "globalrand" || two[1].Name != "wallclock" {
		t.Fatalf("ByName subset = %v, %v", two, err)
	}
	if _, err := ByName("nosuchcheck"); err == nil {
		t.Fatal("ByName should reject unknown analyzers")
	}
}

func TestFindModuleRootFails(t *testing.T) {
	if _, err := FindModuleRoot("/"); err == nil {
		t.Fatal("FindModuleRoot(/) should fail")
	}
}
