package lint

import (
	"fmt"
	"go/ast"
)

// stdlibErrFuncs are standard-library call names whose error result must
// not be blanked with `_ =`. The fmt print family is deliberately absent
// (its errors are conventionally ignored), as is strings.Builder's Write*
// set (documented to never fail).
var stdlibErrFuncs = map[string]bool{
	"Close": true, "Flush": true, "Sync": true,
	"Remove": true, "RemoveAll": true, "Mkdir": true, "MkdirAll": true,
	"Rename": true, "Truncate": true, "WriteFile": true,
	"Setenv": true, "Unsetenv": true, "Chdir": true,
}

// DroppedErr flags silently discarded errors in non-test code: bare
// expression statements calling a module function/method that returns an
// error, and all-blank assignments (`_ = f()`, `_, _ = g()`) of such
// calls. A deliberate discard stays, but annotated:
//
//	//autolint:ignore droppederr checkpoint is best-effort; run continues
//	_ = saveCheckpoint(rep, path)
//
// Deferred calls (defer f.Close()) are exempt — the error has nowhere to
// go without a named-result wrapper, and requiring one everywhere is
// noise. Matching is by callee name against the module-wide index of
// error-returning declarations (plus a short stdlib list for the `_ =`
// form), since the linter runs without type information.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "forbid unhandled error returns (bare calls and _ = discards) outside tests",
	Run: func(f *File) []Diagnostic {
		if f.IsTest {
			return nil
		}
		var out []Diagnostic
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := callName(call)
				// Bare statements only flag unambiguous names: if any
				// module declaration of the same name returns no error
				// (e.g. the void Bandit.Update vs Hybrid.Update), the
				// name-based match cannot tell which one this call is.
				if name == "" || !f.Mod.ErrFuncs[name] || f.Mod.NoErrFuncs[name] {
					return true
				}
				out = append(out, f.Diag("droppederr", call.Pos(),
					fmt.Sprintf("result of %s is an error but the call is a bare statement", name),
					fmt.Sprintf("handle it: if err := %s(...); err != nil { ... }", name)))
			case *ast.AssignStmt:
				if !allBlank(s.Lhs) || len(s.Rhs) != 1 {
					return true
				}
				call, ok := s.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name := callName(call)
				if name == "" || (!f.Mod.ErrFuncs[name] && !stdlibErrFuncs[name]) {
					return true
				}
				out = append(out, f.Diag("droppederr", s.Pos(),
					fmt.Sprintf("error from %s discarded with a blank assignment", name),
					"handle the error, or keep the discard with an //autolint:ignore droppederr <reason> explaining why it is safe"))
			}
			return true
		})
		return out
	},
}

// callName extracts the bare callee name from a call: the identifier for
// plain calls, the selector's field for qualified and method calls.
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}
