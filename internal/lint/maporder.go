package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// rngMethods are *rand.Rand methods: consuming draws while ranging a map
// makes the RNG stream depend on iteration order.
var rngMethods = map[string]bool{
	"Intn": true, "Int63": true, "Int63n": true, "Int31": true, "Int31n": true,
	"Float64": true, "Float32": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Uint32": true, "Uint64": true,
}

// outputFuncs are fmt functions that emit in call order.
var outputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// MapOrder flags `for range` over a map whose body leaks iteration order:
// appending to a slice that is not sorted afterwards, printing, or drawing
// from an RNG. Go randomizes map iteration order per run, so any of these
// makes output differ between identically-seeded runs. The sanctioned
// pattern is collect-keys-then-sort:
//
//	names := make([]string, 0, len(m))
//	for k := range m {
//	    names = append(names, k)
//	}
//	sort.Strings(names)
//	for _, k := range names { ... }
//
// Appends whose target is passed to a sort.*/slices.Sort* call later in
// the same block are recognized as this pattern and not flagged.
//
// Map detection is name-based (declared map types, map-typed struct
// fields, local make/literal/var declarations) because the linter runs
// without type information; see Module.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive bodies ranging over maps without sorting keys first",
	Run: func(f *File) []Diagnostic {
		if f.IsTest {
			return nil
		}
		var out []Diagnostic
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			mapIdents := collectMapIdents(f, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var list []ast.Stmt
				switch s := n.(type) {
				case *ast.BlockStmt:
					list = s.List
				case *ast.CaseClause:
					list = s.Body
				case *ast.CommClause:
					list = s.Body
				default:
					return true
				}
				for i, stmt := range list {
					rs, ok := stmt.(*ast.RangeStmt)
					if !ok || !f.isMapRange(rs.X, mapIdents) {
						continue
					}
					out = append(out, f.checkRangeBody(rs, list[i+1:])...)
				}
				return true
			})
		}
		return out
	},
}

// collectMapIdents gathers names of identifiers in fd that are map-typed:
// parameters, explicit var declarations, and assignments from map
// literals or make(map...). Package-level map vars are included too.
func collectMapIdents(f *File, fd *ast.FuncDecl) map[string]bool {
	idents := map[string]bool{}
	for _, decl := range f.AST.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if ok && vs.Type != nil && f.Mod.isMapExpr(vs.Type) {
				for _, n := range vs.Names {
					idents[n.Name] = true
				}
			}
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if f.Mod.isMapExpr(field.Type) {
				for _, n := range field.Names {
					idents[n.Name] = true
				}
			}
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			if f.Mod.isMapExpr(field.Type) {
				for _, n := range field.Names {
					idents[n.Name] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if ok && vs.Type != nil && f.Mod.isMapExpr(vs.Type) {
					for _, name := range vs.Names {
						idents[name.Name] = true
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i >= len(s.Lhs) {
					break
				}
				lhs, ok := s.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if exprMakesMap(f, rhs) {
					idents[lhs.Name] = true
				}
			}
		}
		return true
	})
	return idents
}

// exprMakesMap matches map literals and make(map...) calls, including
// named map types.
func exprMakesMap(f *File, expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.CompositeLit:
		return e.Type != nil && f.Mod.isMapExpr(e.Type)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			return f.Mod.isMapExpr(e.Args[0])
		}
	}
	return false
}

// isMapRange decides whether a range expression is map-typed: a known
// local/package map ident, a known map-typed struct field, an inline
// literal/make, or a named map type conversion.
func (f *File) isMapRange(x ast.Expr, mapIdents map[string]bool) bool {
	switch e := x.(type) {
	case *ast.Ident:
		return mapIdents[e.Name]
	case *ast.SelectorExpr:
		// Field names count only when unambiguously map-typed module-wide
		// (cmaes's pending slice vs optimizer's pending Config otherwise
		// collide).
		return f.Mod.MapFields[e.Sel.Name] && !f.Mod.NonMapFields[e.Sel.Name]
	case *ast.CompositeLit, *ast.CallExpr:
		return exprMakesMap(f, x)
	case *ast.ParenExpr:
		return f.isMapRange(e.X, mapIdents)
	}
	return false
}

// checkRangeBody scans a map-range body for order-sensitive sinks. rest is
// the statement list following the range in the same block, consulted for
// the sort-after-append escape.
func (f *File) checkRangeBody(rs *ast.RangeStmt, rest []ast.Stmt) []Diagnostic {
	var out []Diagnostic
	randName := f.ImportName("math/rand")
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name != "append" || len(call.Args) == 0 {
				return true
			}
			target, ok := call.Args[0].(*ast.Ident)
			if ok && sortedLater(target.Name, rest) {
				return true
			}
			name := "slice"
			if ok {
				name = target.Name
			}
			out = append(out, f.Diag("maporder", call.Pos(),
				fmt.Sprintf("append to %s inside map iteration leaks map order; collect keys, sort, then iterate", name),
				"range over sorted keys: collect them, sort.Strings(keys), then index the map"))
		case *ast.SelectorExpr:
			x, ok := fun.X.(*ast.Ident)
			if !ok {
				return true
			}
			if x.Name == f.ImportName("fmt") && outputFuncs[fun.Sel.Name] {
				out = append(out, f.Diag("maporder", call.Pos(),
					fmt.Sprintf("fmt.%s inside map iteration prints in random order; iterate sorted keys", fun.Sel.Name),
					"range over sorted keys: collect them, sort.Strings(keys), then index the map"))
				return true
			}
			if rngMethods[fun.Sel.Name] && x.Name != randName {
				out = append(out, f.Diag("maporder", call.Pos(),
					fmt.Sprintf("RNG draw %s.%s inside map iteration consumes the stream in random order; iterate sorted keys", x.Name, fun.Sel.Name),
					"range over sorted keys so RNG draws happen in a stable order"))
			}
		}
		return true
	})
	return out
}

// sortedLater reports whether a following statement sorts the named slice
// (sort.Strings/Ints/Float64s/Slice/SliceStable or slices.Sort*).
func sortedLater(name string, rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := arg.(*ast.Ident); ok && id.Name == name {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
