package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one directory of parsed source files.
type Package struct {
	Path  string // module-relative, forward slashes ("." for the root)
	Name  string
	Files []*File
}

// Module is every package under one module root, parsed with comments,
// plus the cross-package name indexes the analyzers consult in place of
// full type information. The indexes are name-based on purpose: they are
// cheap, offline, and good enough for a repo-specific linter whose false
// positives are silenced with an annotated //autolint:ignore.
type Module struct {
	Root string
	// Path is the module path from go.mod ("fixture.local" when the root
	// has no go.mod, as analyzer fixtures do not). The typed tier resolves
	// module-internal imports by matching this prefix.
	Path     string
	Fset     *token.FileSet
	Packages []*Package

	// ErrFuncs holds names of functions, methods, and interface methods
	// declared in this module whose final result is `error`. NoErrFuncs
	// holds names declared with a different (or no) result; a name in
	// both sets is ambiguous, and analyzers that would otherwise produce
	// false positives (droppederr's bare-statement rule) skip it.
	ErrFuncs   map[string]bool
	NoErrFuncs map[string]bool
	// CtxFuncs holds names of module functions whose first parameter is a
	// context.Context.
	CtxFuncs map[string]bool
	// MapTypes holds names of declared map types, both bare ("Config")
	// and package-qualified ("space.Config").
	MapTypes map[string]bool
	// MapFields holds names of struct fields declared in this module
	// whose type is a map (directly or via a named map type);
	// NonMapFields the rest. Only names that are unambiguously map-typed
	// module-wide count as maps during range analysis.
	MapFields    map[string]bool
	NonMapFields map[string]bool
	// RecoverFuncs holds names of functions and methods whose body
	// installs a top-level deferred recover (sched.Guard and friends);
	// nakedgo treats goroutines running them as panic-safe.
	// RecoverHelpers holds names of functions that call recover()
	// anywhere in their body — safe as `defer helper()` targets, but NOT
	// as go targets (a recover outside a defer does nothing).
	RecoverFuncs   map[string]bool
	RecoverHelpers map[string]bool
	// BlockingFuncs holds names of module functions and methods annotated
	// //autolint:blocking — part of the blocking-call summary table the
	// lockheld analyzer consults: calling one while a mutex is held is a
	// finding, exactly like a channel operation.
	BlockingFuncs map[string]bool
}

// BlockingDirective marks a module function that can block indefinitely
// (waits on a channel, a condition, or I/O with no deadline). The lockheld
// analyzer treats calls to annotated functions as blocking operations. The
// annotation is a doc comment line:
//
//	//autolint:blocking
//	func (q *Queue) Drain() { ... }
const BlockingDirective = "//autolint:blocking"

// skipDir reports whether a directory should not be walked: VCS metadata,
// vendored code, golden-file fixtures, and hidden directories.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule parses every package under root (recursively, skipping
// testdata/vendor/hidden directories) and builds the cross-package
// indexes.
func LoadModule(root string) (*Module, error) {
	mod := &Module{
		Root:           root,
		Path:           modulePath(root),
		Fset:           token.NewFileSet(),
		ErrFuncs:       map[string]bool{},
		NoErrFuncs:     map[string]bool{},
		CtxFuncs:       map[string]bool{},
		MapTypes:       map[string]bool{},
		MapFields:      map[string]bool{},
		NonMapFields:   map[string]bool{},
		RecoverFuncs:   map[string]bool{},
		RecoverHelpers: map[string]bool{},
		BlockingFuncs:  map[string]bool{},
	}
	// Collect package directories first so load order is deterministic.
	var dirs []string
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(path)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		if err := mod.loadDir(dir); err != nil {
			return nil, err
		}
	}
	mod.buildIndexes()
	return mod, nil
}

// modulePath reads the module path from root's go.mod. Fixture trees
// written by tests have no go.mod; they get a stable placeholder path so
// the typed tier can still classify imports as internal vs. stdlib.
func modulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "fixture.local"
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return "fixture.local"
}

// loadDir parses one directory's .go files into one or more Packages
// (a dir can hold both "foo" and "main" in odd layouts; keep them apart).
func (m *Module) loadDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return err
	}
	rel = filepath.ToSlash(rel)
	byName := map[string]*Package{}
	var order []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// Parse under the module-relative name so diagnostic positions,
		// pattern filtering, and File.Filename all agree.
		relName := filepath.ToSlash(filepath.Join(rel, e.Name()))
		af, err := parser.ParseFile(m.Fset, relName, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		pkgName := af.Name.Name
		pkg, ok := byName[pkgName]
		if !ok {
			pkg = &Package{Path: rel, Name: pkgName}
			byName[pkgName] = pkg
			order = append(order, pkgName)
		}
		pkg.Files = append(pkg.Files, &File{
			Fset:     m.Fset,
			AST:      af,
			Filename: relName,
			PkgPath:  rel,
			PkgName:  pkgName,
			IsTest:   strings.HasSuffix(e.Name(), "_test.go"),
			Mod:      m,
			imports:  importMap(af),
		})
	}
	sort.Strings(order)
	for _, name := range order {
		m.Packages = append(m.Packages, byName[name])
	}
	return nil
}

// importMap extracts local-name -> path for a file's imports.
func importMap(af *ast.File) map[string]string {
	out := map[string]string{}
	for _, imp := range af.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		} else {
			name = path[strings.LastIndex(path, "/")+1:]
		}
		if name == "_" || name == "." {
			continue
		}
		out[name] = path
	}
	return out
}

// buildIndexes fills ErrFuncs, CtxFuncs, MapTypes, and MapFields from
// every non-test file in the module. Two passes: named map types must be
// known before struct fields typed with them can be indexed.
func (m *Module) buildIndexes() {
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			if f.IsTest {
				continue
			}
			for _, decl := range f.AST.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if _, isMap := ts.Type.(*ast.MapType); isMap {
						m.MapTypes[ts.Name.Name] = true
						m.MapTypes[pkg.Name+"."+ts.Name.Name] = true
					}
				}
			}
		}
	}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			if f.IsTest {
				continue
			}
			for _, decl := range f.AST.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					m.indexResults(d.Name.Name, d.Type)
					if d.Body != nil {
						if declRecovers(d.Body) {
							m.RecoverFuncs[d.Name.Name] = true
						}
						if containsRecover(d.Body) {
							m.RecoverHelpers[d.Name.Name] = true
						}
					}
					if hasBlockingDirective(d.Doc) {
						m.BlockingFuncs[d.Name.Name] = true
					}
					// CtxFuncs backs the ctxpass XContext-variant rule and
					// must stay functions-only: a method named Run on some
					// type would otherwise mask the trial.Run/RunContext
					// pair.
					if params := d.Type.Params; d.Recv == nil && params != nil && len(params.List) > 0 {
						if isContextType(params.List[0].Type) {
							m.CtxFuncs[d.Name.Name] = true
						}
					}
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						switch t := ts.Type.(type) {
						case *ast.StructType:
							for _, field := range t.Fields.List {
								isMap := m.isMapExpr(field.Type)
								for _, name := range field.Names {
									if isMap {
										m.MapFields[name.Name] = true
									} else {
										m.NonMapFields[name.Name] = true
									}
								}
							}
						case *ast.InterfaceType:
							// Interface method signatures count as
							// declarations: a void Update on an interface
							// makes the name ambiguous even if a concrete
							// Update elsewhere returns error.
							for _, meth := range t.Methods.List {
								ft, ok := meth.Type.(*ast.FuncType)
								if !ok {
									continue
								}
								for _, name := range meth.Names {
									m.indexResults(name.Name, ft)
								}
							}
						}
					}
				}
			}
		}
	}
}

// indexResults files a function/method name under ErrFuncs or NoErrFuncs
// according to whether its final result is `error`.
func (m *Module) indexResults(name string, ft *ast.FuncType) {
	if ft.Results != nil && len(ft.Results.List) > 0 {
		last := ft.Results.List[len(ft.Results.List)-1]
		if id, ok := last.Type.(*ast.Ident); ok && id.Name == "error" {
			m.ErrFuncs[name] = true
			return
		}
	}
	m.NoErrFuncs[name] = true
}

// hasBlockingDirective reports whether a function's doc comment carries
// the //autolint:blocking annotation.
func hasBlockingDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == BlockingDirective {
			return true
		}
	}
	return false
}

// isMapExpr reports whether a type expression is a map type, directly or
// through a named map type the module declares.
func (m *Module) isMapExpr(expr ast.Expr) bool {
	switch t := expr.(type) {
	case *ast.MapType:
		return true
	case *ast.Ident:
		return m.MapTypes[t.Name]
	case *ast.SelectorExpr:
		if x, ok := t.X.(*ast.Ident); ok {
			return m.MapTypes[x.Name+"."+t.Sel.Name]
		}
	}
	return false
}

// isContextType matches the type expression context.Context.
func isContextType(expr ast.Expr) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	return ok && x.Name == "context"
}
