package lint

// A lightweight per-function control-flow graph over go/ast, built for
// the typed dataflow analyzers. Blocks hold only *simple* statements
// and header expressions (an If's Cond, a Switch's Tag); compound
// bodies become successor blocks. That granularity is enough for the
// properties checked here — dominance of one call by another,
// reachability between a resource acquisition and its release — without
// reimplementing golang.org/x/tools/go/cfg.
//
// Panic-like terminators (panic, os.Exit, log.Fatal*, runtime.Goexit)
// end their block with the Panics flag set, so analyses can distinguish
// "every normal return passes X" from "every exit including crashes
// passes X".

import (
	"go/ast"
)

// Block is one straight-line run of simple statements.
type Block struct {
	Index int
	// Nodes are simple statements and header expressions in execution
	// order. Compound statements never appear whole, with two deliberate
	// exceptions: a SelectStmt (the select itself is the interesting
	// event; its clause bodies are successor blocks) and a RangeStmt
	// (for its X and key/value). Use inspectShallow to scan a node
	// without leaking into nested bodies or function literals.
	Nodes []ast.Node
	Succs []*Block
	// Returns marks a block that ends the function normally (return, or
	// falling off the end). Panics marks a block ending in a non-returning
	// call (panic, os.Exit, ...).
	Returns bool
	Panics  bool
}

// CFG is the graph for one function body.
type CFG struct {
	Blocks []*Block // Blocks[0] is the entry
	// commNodes marks select CommClause statements (`case <-ch:`): the
	// channel operation inside belongs to the select, not to the
	// statement, so analyzers looking for bare channel ops skip them.
	commNodes map[ast.Node]bool
}

// Entry returns the entry block.
func (c *CFG) Entry() *Block { return c.Blocks[0] }

// IsCommClause reports whether a block node is a select communication
// clause rather than a standalone channel operation.
func (c *CFG) IsCommClause(n ast.Node) bool { return c.commNodes[n] }

type loopFrame struct {
	label         string
	breakTarget   *Block
	continueTgt   *Block
	isSwitchOrSel bool
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	frames []loopFrame
	labels map[string]*Block // goto targets
	gotos  []pendingGoto
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG constructs the graph for a function body (nil-safe: an
// empty graph for bodyless declarations).
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{commNodes: map[ast.Node]bool{}},
		labels: map[string]*Block{},
	}
	b.cur = b.newBlock()
	if body != nil {
		b.stmts(body.List)
	}
	if b.cur != nil {
		b.cur.Returns = true
	}
	for _, g := range b.gotos {
		if tgt, ok := b.labels[g.label]; ok {
			g.from.Succs = append(g.from.Succs, tgt)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// emit appends a node to the current block (no-op in dead code).
func (b *cfgBuilder) emit(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// seal ends the current block with an edge to next (if alive) and makes
// next current.
func (b *cfgBuilder) seal(next *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, next)
	}
	b.cur = next
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	if b.cur == nil {
		// Dead code after return/branch: park it in an unreachable block
		// so its nodes still exist (analyzers may anchor positions there)
		// without predecessor edges.
		b.cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.ReturnStmt:
		b.emit(s)
		b.cur.Returns = true
		b.cur = nil
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.LabeledStmt:
		tgt := b.newBlock()
		b.labels[s.Label.Name] = tgt
		b.seal(tgt)
		b.labeledStmt(s.Label.Name, s.Stmt)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt("", s)
	case *ast.RangeStmt:
		b.rangeStmt("", s)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		if s.Tag != nil {
			b.emit(s.Tag)
		}
		b.switchStmt("", s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Assign)
		b.switchStmt("", s.Body)
	case *ast.SelectStmt:
		b.selectStmt(s)
	default:
		// Simple statements: expressions, assignments, sends, go, defer,
		// declarations, incdec, empty.
		b.emit(s)
		if terminatesBlock(s) {
			b.cur.Panics = true
			b.cur = nil
		}
	}
}

// labeledStmt builds a statement that carries a label usable by
// break/continue.
func (b *cfgBuilder) labeledStmt(label string, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ForStmt:
		b.forStmt(label, s)
	case *ast.RangeStmt:
		b.rangeStmt(label, s)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		if s.Tag != nil {
			b.emit(s.Tag)
		}
		b.switchStmt(label, s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Assign)
		b.switchStmt(label, s.Body)
	default:
		b.stmt(s)
	}
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	b.emit(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		for i := len(b.frames) - 1; i >= 0; i-- {
			fr := b.frames[i]
			if label == "" || fr.label == label {
				b.cur.Succs = append(b.cur.Succs, fr.breakTarget)
				break
			}
		}
		b.cur = nil
	case "continue":
		for i := len(b.frames) - 1; i >= 0; i-- {
			fr := b.frames[i]
			if fr.isSwitchOrSel {
				continue
			}
			if label == "" || fr.label == label {
				b.cur.Succs = append(b.cur.Succs, fr.continueTgt)
				break
			}
		}
		b.cur = nil
	case "goto":
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
		b.cur = nil
	case "fallthrough":
		// Handled structurally in switchStmt (edge to the next clause
		// body); here just end the block — switchStmt adds the edge.
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.emit(s.Init)
	}
	b.emit(s.Cond)
	head := b.cur
	join := b.newBlock()

	thenB := b.newBlock()
	head.Succs = append(head.Succs, thenB)
	b.cur = thenB
	b.stmts(s.Body.List)
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, join)
	}

	if s.Else != nil {
		elseB := b.newBlock()
		head.Succs = append(head.Succs, elseB)
		b.cur = elseB
		b.stmt(s.Else)
		if b.cur != nil {
			b.cur.Succs = append(b.cur.Succs, join)
		}
	} else {
		head.Succs = append(head.Succs, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(label string, s *ast.ForStmt) {
	if s.Init != nil {
		b.emit(s.Init)
	}
	head := b.newBlock()
	b.seal(head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	after := b.newBlock()
	post := head
	if s.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, s.Post)
		post.Succs = append(post.Succs, head)
	}
	if s.Cond != nil {
		head.Succs = append(head.Succs, after)
	}
	body := b.newBlock()
	head.Succs = append(head.Succs, body)
	b.cur = body
	b.frames = append(b.frames, loopFrame{label: label, breakTarget: after, continueTgt: post})
	b.stmts(s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, post)
	}
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(label string, s *ast.RangeStmt) {
	head := b.newBlock()
	b.seal(head)
	head.Nodes = append(head.Nodes, s)
	after := b.newBlock()
	head.Succs = append(head.Succs, after)
	body := b.newBlock()
	head.Succs = append(head.Succs, body)
	b.cur = body
	b.frames = append(b.frames, loopFrame{label: label, breakTarget: after, continueTgt: head})
	b.stmts(s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, head)
	}
	b.cur = after
}

func (b *cfgBuilder) switchStmt(label string, body *ast.BlockStmt) {
	head := b.cur
	join := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, breakTarget: join, isSwitchOrSel: true})
	hasDefault := false
	var caseBodies []*Block
	var caseFalls []bool
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cb := b.newBlock()
		head.Succs = append(head.Succs, cb)
		for _, e := range cc.List {
			cb.Nodes = append(cb.Nodes, e)
		}
		b.cur = cb
		falls := false
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				falls = true
			}
		}
		b.stmts(cc.Body)
		caseBodies = append(caseBodies, cb)
		caseFalls = append(caseFalls, falls)
		if b.cur != nil {
			b.cur.Succs = append(b.cur.Succs, join)
		}
		// Record the block a fallthrough would leave from (the last live
		// block of this clause) by stashing it in caseBodies' slot; the
		// next iteration wires the edge.
		caseBodies[len(caseBodies)-1] = b.cur
	}
	// Wire fallthrough edges: clause i falls into clause i+1's body head.
	// The body head is the block created for the clause, which is the
	// first successor added to head after the previous clauses.
	idx := 0
	for _, cs := range body.List {
		if _, ok := cs.(*ast.CaseClause); !ok {
			continue
		}
		if caseFalls[idx] && idx+1 < len(head.Succs) && caseBodies[idx] != nil {
			caseBodies[idx].Succs = append(caseBodies[idx].Succs, head.Succs[idx+1])
		}
		idx++
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault {
		head.Succs = append(head.Succs, join)
	}
	b.cur = join
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	b.emit(s)
	head := b.cur
	join := b.newBlock()
	b.frames = append(b.frames, loopFrame{breakTarget: join, isSwitchOrSel: true})
	hasCase := false
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		hasCase = true
		cb := b.newBlock()
		head.Succs = append(head.Succs, cb)
		if cc.Comm != nil {
			cb.Nodes = append(cb.Nodes, cc.Comm)
			b.cfg.commNodes[cc.Comm] = true
		}
		b.cur = cb
		b.stmts(cc.Body)
		if b.cur != nil {
			b.cur.Succs = append(b.cur.Succs, join)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !hasCase {
		// `select {}` blocks forever.
		head.Panics = true
		b.cur = nil
		b.cur = join
		return
	}
	b.cur = join
}

// terminatesBlock reports whether a simple statement never falls
// through: a call to panic, os.Exit, log.Fatal*, runtime.Goexit, or
// (testing.T).Fatal*. Purely syntactic — good enough, and the typed
// analyzers only use it to separate panic edges from normal returns.
func terminatesBlock(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if x, ok := fun.X.(*ast.Ident); ok {
			if x.Name == "os" && name == "Exit" {
				return true
			}
			if x.Name == "runtime" && name == "Goexit" {
				return true
			}
			if x.Name == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln") {
				return true
			}
		}
	}
	return false
}

// inspectShallow walks a block node's expression structure without
// descending into function literals (their bodies have their own CFGs)
// or into the bodies of the two compound nodes that appear whole in
// blocks (SelectStmt, RangeStmt — their bodies are successor blocks).
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			fn(v)
			return false
		case *ast.RangeStmt:
			if v != n {
				return false
			}
			fn(v)
			if v.Key != nil {
				inspectShallow(v.Key, fn)
			}
			if v.Value != nil {
				inspectShallow(v.Value, fn)
			}
			inspectShallow(v.X, fn)
			return false
		}
		return fn(m)
	})
}

// position locates a node within the graph: its block and index.
func (c *CFG) position(target ast.Node) (*Block, int) {
	for _, blk := range c.Blocks {
		for i, n := range blk.Nodes {
			if n == target {
				return blk, i
			}
			found := false
			inspectShallow(n, func(m ast.Node) bool {
				if m == target {
					found = true
					return false
				}
				return true
			})
			if found {
				return blk, i
			}
		}
	}
	return nil, -1
}

// DominatedBy reports whether every path from entry to target passes a
// node satisfying pred strictly before target's node. A forward
// must-analysis: meet is AND over predecessors.
func (c *CFG) DominatedBy(target ast.Node, pred func(ast.Node) bool) bool {
	tblk, tidx := c.position(target)
	if tblk == nil {
		return false
	}
	// If a satisfying node precedes target inside its own block, done.
	for i := 0; i < tidx; i++ {
		if nodeMatches(tblk.Nodes[i], pred) {
			return true
		}
	}
	// gen[b]: block b contains a satisfying node. out[b]: every path
	// entry..end-of-b passes one. in[b] = AND over preds' out.
	n := len(c.Blocks)
	gen := make([]bool, n)
	for i, blk := range c.Blocks {
		for _, nd := range blk.Nodes {
			if nodeMatches(nd, pred) {
				gen[i] = true
				break
			}
		}
	}
	preds := c.predecessors()
	in := make([]bool, n)
	out := make([]bool, n)
	for i := range in {
		in[i], out[i] = true, true
	}
	in[0] = false
	out[0] = gen[0]
	for changed := true; changed; {
		changed = false
		for i, blk := range c.Blocks {
			if i == 0 {
				continue
			}
			newIn := len(preds[i]) > 0
			for _, p := range preds[i] {
				newIn = newIn && out[p.Index]
			}
			newOut := newIn || gen[i]
			if newIn != in[i] || newOut != out[i] {
				in[i], out[i] = newIn, newOut
				changed = true
			}
			_ = blk
		}
	}
	return in[tblk.Index]
}

// ReachesForward reports whether some path from strictly after start
// reaches a node satisfying pred.
func (c *CFG) ReachesForward(start ast.Node, pred func(ast.Node) bool) bool {
	sblk, sidx := c.position(start)
	if sblk == nil {
		return false
	}
	for i := sidx + 1; i < len(sblk.Nodes); i++ {
		if nodeMatches(sblk.Nodes[i], pred) {
			return true
		}
	}
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, nd := range b.Nodes {
			if nodeMatches(nd, pred) {
				return true
			}
		}
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	for _, s := range sblk.Succs {
		if walk(s) {
			return true
		}
	}
	return false
}

// AllReturnsPass reports whether every path from strictly after start
// to a normal function return passes a node satisfying pred. Paths
// ending in a panic-like terminator are exempt. A backward
// must-analysis computed as a greatest fixpoint: ok[b] means "every
// normal-return path from the start of b passes pred".
func (c *CFG) AllReturnsPass(start ast.Node, pred func(ast.Node) bool) bool {
	sblk, sidx := c.position(start)
	if sblk == nil {
		return false
	}
	n := len(c.Blocks)
	gen := make([]bool, n)
	for i, blk := range c.Blocks {
		for _, nd := range blk.Nodes {
			if nodeMatches(nd, pred) {
				gen[i] = true
				break
			}
		}
	}
	ok := make([]bool, n)
	for i := range ok {
		ok[i] = true
	}
	for changed := true; changed; {
		changed = false
		for i, blk := range c.Blocks {
			v := true
			if gen[i] {
				v = true
			} else if blk.Returns {
				v = false
			} else if blk.Panics {
				v = true
			} else if len(blk.Succs) == 0 {
				// A block with no successors and no terminator flag is a
				// dead-end artifact (e.g. after break wiring); treat as
				// exempt.
				v = true
			} else {
				for _, s := range blk.Succs {
					v = v && ok[s.Index]
				}
			}
			// A returning block that also has successors (cannot happen
			// structurally) would be handled above; Returns wins.
			if blk.Returns && !gen[i] {
				v = false
			}
			if v != ok[i] {
				ok[i] = v
				changed = true
			}
		}
	}
	// From start's own block: a satisfying node after start in the same
	// block covers the paths through it.
	for i := sidx + 1; i < len(sblk.Nodes); i++ {
		if nodeMatches(sblk.Nodes[i], pred) {
			return true
		}
	}
	if sblk.Panics {
		return true
	}
	if sblk.Returns {
		return false
	}
	if len(sblk.Succs) == 0 {
		return true
	}
	for _, s := range sblk.Succs {
		if !ok[s.Index] {
			return false
		}
	}
	return true
}

func (c *CFG) predecessors() [][]*Block {
	preds := make([][]*Block, len(c.Blocks))
	for _, blk := range c.Blocks {
		for _, s := range blk.Succs {
			preds[s.Index] = append(preds[s.Index], blk)
		}
	}
	return preds
}

func nodeMatches(n ast.Node, pred func(ast.Node) bool) bool {
	found := false
	inspectShallow(n, func(m ast.Node) bool {
		if pred(m) {
			found = true
			return false
		}
		return true
	})
	return found
}
