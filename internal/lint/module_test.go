package lint

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestModulePath: go.mod supplies the module path; fixture trees without
// one get the stable placeholder the typed tier keys internal-import
// classification on.
func TestModulePath(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"),
		[]byte("// a comment\nmodule example.com/tuned\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte("package p\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "example.com/tuned" {
		t.Errorf("Path = %q, want example.com/tuned", mod.Path)
	}
	if got := writeFixture(t, "package p\n").Path; got != "fixture.local" {
		t.Errorf("no-go.mod Path = %q, want fixture.local", got)
	}
}

// TestErrFuncAmbiguitySets: a name declared both with and without a
// final error result lands in BOTH sets — that is the ambiguity signal
// droppederr's bare-statement rule keys on. Interface method signatures
// count as declarations.
func TestErrFuncAmbiguitySets(t *testing.T) {
	mod := writeFixture(t, `package p

func Flush() error { return nil }

type Sink struct{}

// The method shares the name but drops the error: ambiguous.
func (Sink) Flush() {}

type Store interface {
	// Interface signatures index too: Update is error-returning here
	// and void nowhere, so it stays unambiguous.
	Update(v int) error
}

func Reset() {}
`)
	for name, want := range map[string][2]bool{
		"Flush":  {true, true},  // ambiguous: in both
		"Update": {true, false}, // error-only
		"Reset":  {false, true}, // void-only
	} {
		if got := [2]bool{mod.ErrFuncs[name], mod.NoErrFuncs[name]}; got != want {
			t.Errorf("%s: (ErrFuncs, NoErrFuncs) = %v, want %v", name, got, want)
		}
	}
}

// TestMapFieldAmbiguitySets mirrors the same discipline for struct
// fields: only names that are map-typed in every declaring struct count
// as maps, including through a named map type.
func TestMapFieldAmbiguitySets(t *testing.T) {
	mod := writeFixture(t, `package p

type Params map[string]float64

type A struct {
	Weights map[string]int
	Tags    Params
	Count   int
}

type B struct {
	// Weights here is a slice: the name becomes ambiguous module-wide.
	Weights []int
}
`)
	if !mod.MapTypes["Params"] || !mod.MapTypes["p.Params"] {
		t.Error("named map type Params must index bare and package-qualified")
	}
	for name, want := range map[string][2]bool{
		"Weights": {true, true},  // ambiguous
		"Tags":    {true, false}, // map via named type
		"Count":   {false, true}, // never a map
	} {
		if got := [2]bool{mod.MapFields[name], mod.NonMapFields[name]}; got != want {
			t.Errorf("%s: (MapFields, NonMapFields) = %v, want %v", name, got, want)
		}
	}
}

// TestBlockingFuncsIndex: only the exact //autolint:blocking doc-comment
// line marks a function blocking; body comments and lookalikes do not.
func TestBlockingFuncsIndex(t *testing.T) {
	mod := writeFixture(t, `package p

//autolint:blocking
func Drain() {}

// Waits is documented prose mentioning //autolint:blocking but the
// directive must be its own comment line.
func Prose() {}

func Inline() {
	//autolint:blocking
}
`)
	var got []string
	for name := range mod.BlockingFuncs {
		got = append(got, name)
	}
	sort.Strings(got)
	if len(got) != 1 || got[0] != "Drain" {
		t.Errorf("BlockingFuncs = %v, want [Drain]", got)
	}
}

// TestMalformedDirectiveEdgeCases: every under-specified ignore form is
// itself a diagnostic — a suppression must always carry a check and a
// reason.
func TestMalformedDirectiveEdgeCases(t *testing.T) {
	cases := []struct {
		name, directive string
		wantMalformed   bool
	}{
		{"bare", "//autolint:ignore", true},
		{"check only", "//autolint:ignore wallclock", true},
		{"check and spaces", "//autolint:ignore wallclock   ", true},
		{"wildcard without reason", "//autolint:ignore *", true},
		{"well formed", "//autolint:ignore wallclock backoff is wall time", false},
		{"wildcard with reason", "//autolint:ignore * generated file", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mod := writeFixture(t, "package p\n\nfunc f() {\n\t"+tc.directive+"\n\t_ = 1\n}\n")
			diags := Run(mod, nil)
			malformed := false
			for _, d := range diags {
				if strings.Contains(d.Message, "malformed") {
					malformed = true
				}
			}
			if malformed != tc.wantMalformed {
				t.Errorf("%q: malformed = %v, want %v (diags %v)", tc.directive, malformed, tc.wantMalformed, diags)
			}
		})
	}
}

// TestWildcardDirectiveSuppressesAnyCheck: `*` silences every analyzer
// on the covered lines, and counts as used by any finding.
func TestWildcardDirectiveSuppressesAnyCheck(t *testing.T) {
	mod := writeFixture(t, `package p

import "math/rand"

func f() int {
	//autolint:ignore * seeded fixture data, determinism does not apply
	return rand.Intn(3)
}
`)
	if diags := Run(mod, All()); len(diags) != 0 {
		t.Fatalf("wildcard suppression leaked: %v", diags)
	}
}

// TestLoadModuleSkipsNestedTestdata: fixture trees under testdata must
// not leak into the enclosing module's packages or indexes.
func TestLoadModuleSkipsNestedTestdata(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "testdata"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte("package p\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "testdata", "g.go"),
		[]byte("package fixture\n\nfunc Hidden() error { return nil }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Packages) != 1 || mod.Packages[0].Name != "p" {
		t.Fatalf("Packages = %v, want just p", mod.Packages)
	}
	if mod.ErrFuncs["Hidden"] {
		t.Error("testdata declarations leaked into the module index")
	}
}
