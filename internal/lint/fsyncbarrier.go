package lint

// fsyncbarrier: PR 6's durability contract as a checkable dominance
// property. In the persistence packages (studystore, trial), a Rename
// is a commit point — the moment a reader may observe the new file — so
// two orderings are mandatory:
//
//	(a) every path reaching the Rename must first Sync the written
//	    file (otherwise the commit can expose unsynced bytes after a
//	    crash), and
//	(b) some path after the Rename must fsync the parent directory
//	    (otherwise the rename itself may not survive a crash). Error
//	    returns between the Rename and the directory sync are fine —
//	    rule (b) is reachability, not dominance, because a failing
//	    path aborts the ack.
//
// Single-statement delegation wrappers (osFS.Rename calling os.Rename)
// are exempt: the contract binds call sites that commit data, not the
// plumbing that forwards the syscall.

import (
	"go/ast"
)

// FsyncBarrier is the typed analyzer instance.
var FsyncBarrier = &TypedAnalyzer{
	Name: "fsyncbarrier",
	Doc:  "in persistence packages, Rename must be preceded by File.Sync (dominance) and followed by a directory fsync (reachability)",
	Run:  runFsyncBarrier,
}

// fsyncPackages names the packages under the durability contract, by
// package name so fixtures can opt in.
var fsyncPackages = map[string]bool{
	"studystore": true,
	"trial":      true,
}

func runFsyncBarrier(p *TypedPass) []Diagnostic {
	if !fsyncPackages[p.File.PkgName] {
		return nil
	}
	var out []Diagnostic
	p.funcs(func(name string, fn ast.Node, body *ast.BlockStmt) {
		if isDelegationWrapper(body) {
			return
		}
		cfg := p.FuncCFG(fn)
		for _, blk := range cfg.Blocks {
			for _, nd := range blk.Nodes {
				inspectShallow(nd, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if !p.isCalleeNamed(call, "Rename") {
						return true
					}
					if !cfg.DominatedBy(call, func(m ast.Node) bool {
						c, ok := m.(*ast.CallExpr)
						return ok && p.isCalleeNamed(c, "Sync")
					}) {
						out = append(out, p.Diag("fsyncbarrier", call.Pos(),
							"Rename commit point not dominated by a File.Sync: a crash after the rename can expose unsynced data",
							"sync the written file on every path before renaming it into place"))
					}
					if !cfg.ReachesForward(call, func(m ast.Node) bool {
						c, ok := m.(*ast.CallExpr)
						return ok && (p.isCalleeNamed(c, "SyncDir") || p.isCalleeNamed(c, "syncDir"))
					}) {
						out = append(out, p.Diag("fsyncbarrier", call.Pos(),
							"Rename is never followed by a directory fsync: the rename itself may not survive a crash",
							"fsync the parent directory after the rename, before acknowledging"))
					}
					return true
				})
			}
		}
	})
	return out
}

// isCalleeNamed reports whether a call resolves to a function or method
// with the given bare name (os.Rename, FS.Rename, File.Sync, ...).
func (p *TypedPass) isCalleeNamed(call *ast.CallExpr, name string) bool {
	fn := p.Callee(call)
	return fn != nil && fn.Name() == name
}

// isDelegationWrapper matches bodies that are a single statement
// forwarding to another call (`return os.Rename(a, b)`).
func isDelegationWrapper(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) != 1 {
		return false
	}
	switch s := body.List[0].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		_, ok := s.X.(*ast.CallExpr)
		return ok
	}
	return false
}
