package lint

// goleak: a goroutine launched in library code must have a visible
// termination contract. The type-resolved successor to nakedgo's
// panic-safety rule: nakedgo asks "what happens if it panics", goleak
// asks "how does it ever stop". Accepted contracts, checked over the
// goroutine body (function literal or resolved module function):
//
//   - context cancellation: a receive from (context.Context).Done(),
//     directly or in a select case
//   - WaitGroup ownership: the body calls (*sync.WaitGroup).Done
//     (typically deferred), tying its lifetime to a Wait elsewhere
//   - a work-channel loop: the body ranges over a channel, so closing
//     the channel terminates it
//   - straight-line bodies: no loops at all means the goroutine runs to
//     completion on its own (it may still block on a channel — that is
//     a send/receive pairing the caller owns, not an unbounded loop)
//
// Everything else — unbounded `for {}` loops with no cancellation,
// goroutines running unresolvable or external functions — is a leak
// waiting for the daemon to restart.

import (
	"go/ast"
	"go/types"
)

// GoLeak is the typed analyzer instance.
var GoLeak = &TypedAnalyzer{
	Name: "goleak",
	Doc:  "library goroutine with no cancellation path (ctx.Done, WaitGroup, or closable work channel)",
	Run:  runGoLeak,
}

func runGoLeak(p *TypedPass) []Diagnostic {
	// Library packages only: a main package's goroutines live exactly as
	// long as the process.
	if p.File.PkgName == "main" {
		return nil
	}
	var out []Diagnostic
	ast.Inspect(p.File.AST, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if d, leak := p.goLeakCheck(gs); leak {
			out = append(out, d)
		}
		return true
	})
	return out
}

func (p *TypedPass) goLeakCheck(gs *ast.GoStmt) (Diagnostic, bool) {
	body := p.goBody(gs)
	if body == nil {
		return p.Diag("goleak", gs.Go,
			"goroutine target is not a module function; cannot verify a cancellation path (ctx.Done select, WaitGroup ownership, or closable work channel)",
			""), true
	}
	if p.bodyHasCancellation(body) {
		return Diagnostic{}, false
	}
	return p.Diag("goleak", gs.Go,
		"goroutine has no cancellation path: add a ctx.Done() select, WaitGroup ownership, or loop over a closable work channel",
		""), true
}

// goBody resolves the goroutine's body: a function literal directly, or
// the declaration of a module function/method.
func (p *TypedPass) goBody(gs *ast.GoStmt) *ast.BlockStmt {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	default:
		if fn := p.Callee(gs.Call); fn != nil && p.typed != nil {
			if decl := p.typed.FuncDecl(fn); decl != nil {
				return decl.Body
			}
		}
	}
	return nil
}

// bodyHasCancellation applies the termination-contract rules to a
// goroutine body.
func (p *TypedPass) bodyHasCancellation(body *ast.BlockStmt) bool {
	hasLoop := false
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			hasLoop = true
		case *ast.RangeStmt:
			hasLoop = true
			if t := p.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					ok = true
					return false
				}
			}
		case *ast.UnaryExpr:
			// <-ctx.Done(), bare or inside a select case.
			if n.Op.String() == "<-" && p.isDoneCall(n.X) {
				ok = true
				return false
			}
		case *ast.CallExpr:
			if p.CalleeName(n) == "(*sync.WaitGroup).Done" {
				ok = true
				return false
			}
		}
		return true
	})
	if ok {
		return true
	}
	// Straight-line bodies terminate on their own.
	return !hasLoop
}

// isDoneCall matches a call to (context.Context).Done.
func (p *TypedPass) isDoneCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return p.CalleeName(call) == "(context.Context).Done"
}
