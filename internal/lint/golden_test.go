package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// goldenName is the pinned-diagnostics file inside each fixture dir.
const goldenName = "golden.json"

// goldenFixtures maps each fixture dir to its analyzer, exactly one tier
// populated. The golden files pin the complete rendered diagnostics —
// position, message, and suggestion — where the want-comment runners
// check only (file, line, check). A message reword therefore shows up as
// a reviewable diff instead of slipping through.
var goldenFixtures = []struct {
	name string
	syn  *Analyzer
	typ  *TypedAnalyzer
}{
	{name: "globalrand", syn: GlobalRand},
	{name: "wallclock", syn: WallClock},
	{name: "maporder", syn: MapOrder},
	{name: "ctxpass", syn: CtxPass},
	{name: "droppederr", syn: DroppedErr},
	{name: "nakedgo", syn: NakedGo},
	{name: "hotalloc", syn: HotAlloc},
	{name: "lockheld", typ: LockHeld},
	{name: "goleak", typ: GoLeak},
	{name: "fsyncbarrier", typ: FsyncBarrier},
	{name: "poolreturn", typ: PoolReturn},
}

// TestGoldenFixtures compares each fixture dir's full diagnostic output
// against its checked-in golden.json. Regenerate deliberately with
// `make lint-fixtures UPDATE=1` (never by hand): the guard keeps a
// behavior change from silently re-goldenizing itself.
func TestGoldenFixtures(t *testing.T) {
	update := os.Getenv("UPDATE") == "1"
	for _, g := range goldenFixtures {
		t.Run(g.name, func(t *testing.T) {
			mod, err := LoadModule(filepath.Join("testdata", g.name))
			if err != nil {
				t.Fatal(err)
			}
			var diags []Diagnostic
			if g.typ != nil {
				diags, err = RunAll(mod, nil, []*TypedAnalyzer{g.typ})
				if err != nil {
					t.Fatalf("fixture must type-check: %v", err)
				}
			} else {
				diags = Run(mod, []*Analyzer{g.syn})
			}
			for i := range diags {
				diags[i].Pos.Filename = filepath.ToSlash(diags[i].Pos.Filename)
			}
			got, err := json.MarshalIndent(diags, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", g.name, goldenName)
			if update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with `make lint-fixtures UPDATE=1`): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("diagnostics diverge from %s:\n got:\n%s\nwant:\n%s\nif the change is intended, run `make lint-fixtures UPDATE=1`",
					path, got, want)
			}
		})
	}
}

// TestGoldenCoversEveryFixtureDir: adding a fixture dir without wiring
// it into the golden table (and an analyzer) must fail loudly.
func TestGoldenCoversEveryFixtureDir(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	covered := map[string]bool{}
	for _, g := range goldenFixtures {
		covered[g.name] = true
	}
	for _, e := range entries {
		if e.IsDir() && !covered[e.Name()] {
			t.Errorf("fixture dir testdata/%s has no golden table entry", e.Name())
		}
	}
	if want := len(All()) + len(AllTyped()); len(goldenFixtures) != want {
		t.Errorf("golden table has %d entries; registry has %d analyzers", len(goldenFixtures), want)
	}
}
