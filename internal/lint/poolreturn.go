package lint

// poolreturn: every sync.Pool.Get must be matched by a Put — the
// zero-alloc discipline from PR 5 only holds while checked-out
// workspaces actually return to the pool. Two rules per Get:
//
//	(1) every path from the Get to a normal return passes a Put
//	    (paths ending in panic/os.Exit are exempt from this rule), and
//	(2) if the Put is not deferred, no function call may sit between
//	    the Get and the Put: a panic inside that call unwinds past the
//	    Put and leaks the object. `defer pool.Put(x)` (directly or in
//	    a deferred closure) is the fix — in Go 1.24 an open-coded
//	    defer costs zero allocations, so the hot paths stay hot.

import (
	"go/ast"
)

// PoolReturn is the typed analyzer instance.
var PoolReturn = &TypedAnalyzer{
	Name: "poolreturn",
	Doc:  "sync.Pool.Get must reach Put on all non-panicking paths, and panic-unsafe (non-deferred) Put placement is flagged",
	Run:  runPoolReturn,
}

func runPoolReturn(p *TypedPass) []Diagnostic {
	var out []Diagnostic
	p.funcs(func(name string, fn ast.Node, body *ast.BlockStmt) {
		cfg := p.FuncCFG(fn)
		for _, blk := range cfg.Blocks {
			for _, nd := range blk.Nodes {
				inspectShallow(nd, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if p.CalleeName(call) != "(*sync.Pool).Get" {
						return true
					}
					out = append(out, p.poolGetCheck(cfg, call, nd)...)
					return true
				})
			}
		}
	})
	return out
}

// isPutNode matches a node containing a (*sync.Pool).Put call; defer
// statements are searched in full depth, so both `defer pool.Put(x)`
// and `defer func() { pool.Put(x) }()` count.
func (p *TypedPass) isPutNode(n ast.Node) bool {
	if ds, ok := n.(*ast.DeferStmt); ok {
		return p.containsPut(ds)
	}
	c, ok := n.(*ast.CallExpr)
	return ok && p.CalleeName(c) == "(*sync.Pool).Put"
}

// containsPut deep-searches a subtree (crossing function literals) for
// a Put call.
func (p *TypedPass) containsPut(root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && p.CalleeName(c) == "(*sync.Pool).Put" {
			found = true
			return false
		}
		return !found
	})
	return found
}

func (p *TypedPass) poolGetCheck(cfg *CFG, get *ast.CallExpr, getNode ast.Node) []Diagnostic {
	var out []Diagnostic
	// Rule 1: Put on every normal-return path.
	if !cfg.AllReturnsPass(get, p.isPutNode) {
		out = append(out, p.Diag("poolreturn", get.Pos(),
			"sync.Pool.Get is not matched by a Put on every return path: the object leaks and the pool refills from the heap",
			"defer pool.Put(x) immediately after the Get"))
		return out
	}
	// Rule 2: panic safety. A deferred Put reachable from the Get covers
	// every unwind; without one, any call between Get and Put leaks on
	// panic.
	deferredPut := func(m ast.Node) bool {
		ds, ok := m.(*ast.DeferStmt)
		return ok && p.containsPut(ds)
	}
	if nodeMatches(getNode, deferredPut) || cfg.ReachesForward(get, deferredPut) {
		return out
	}
	if witness := p.callBetweenGetAndPut(cfg, get); witness != nil {
		out = append(out, p.Diag("poolreturn", get.Pos(),
			"Put is not deferred and a function call sits between Get and Put: a panic in between leaks the pooled object",
			"defer pool.Put(x) immediately after the Get (an open-coded defer allocates nothing)"))
	}
	return out
}

// callBetweenGetAndPut walks forward from the Get, stopping each path
// at its first Put, and returns a call expression encountered strictly
// in between (nil if none).
func (p *TypedPass) callBetweenGetAndPut(cfg *CFG, get *ast.CallExpr) *ast.CallExpr {
	gblk, gidx := cfg.position(get)
	if gblk == nil {
		return nil
	}
	var witness *ast.CallExpr
	scanNode := func(nd ast.Node) (stop bool) {
		if p.isPutNode(nd) {
			return true
		}
		inspectShallow(nd, func(n ast.Node) bool {
			if witness != nil {
				return false
			}
			if c, ok := n.(*ast.CallExpr); ok && c != get {
				name := p.CalleeName(c)
				if name == "(*sync.Pool).Put" {
					return true
				}
				if p.BuiltinName(c) != "" {
					return true
				}
				witness = c
				return false
			}
			return true
		})
		return false
	}
	seen := map[*Block]bool{}
	var walk func(b *Block, from int)
	walk = func(b *Block, from int) {
		if witness != nil {
			return
		}
		for i := from; i < len(b.Nodes); i++ {
			if scanNode(b.Nodes[i]) {
				return
			}
			if witness != nil {
				return
			}
		}
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				walk(s, 0)
			}
		}
	}
	walk(gblk, gidx+1)
	return witness
}
