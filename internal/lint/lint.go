// Package lint is a small stdlib-only static-analysis framework plus a
// registry of repo-specific analyzers that enforce the determinism,
// context-propagation, and error-handling invariants this codebase depends
// on. Autotuning results must be reproducible and comparable, so the
// framework itself must never add nondeterminism: no unseeded global RNGs,
// no wall-clock reads in simulated paths, no map-iteration-order leaks into
// trial results.
//
// The framework deliberately uses only go/ast, go/parser, and go/token —
// the module is vendorless and offline, so golang.org/x/tools is not
// available. Analyzers are therefore syntactic, backed by module-wide name
// indexes (see Module) instead of full type information. That makes them
// heuristic; false positives are silenced in place with
//
//	//autolint:ignore <check> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory: a suppression without one is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding from one analyzer.
type Diagnostic struct {
	Check   string         `json:"check"`
	Pos     token.Position `json:"pos"`
	Message string         `json:"message"`
	// Suggestion, when non-empty, is a human-applyable suggested edit
	// (printed by `autolint -fix`).
	Suggestion string `json:"suggestion,omitempty"`
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Check)
	return s
}

// Analyzer is one named check over a single file. Run receives the file
// plus its module context and returns raw findings; the driver applies
// suppression filtering afterwards.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(f *File) []Diagnostic
}

// IgnoreDirective is the comment prefix that suppresses a finding.
const IgnoreDirective = "//autolint:ignore"

// suppression records one //autolint:ignore directive.
type suppression struct {
	line   int    // the line the directive appears on
	check  string // check name, or "*" for all
	reason string
	used   bool
}

// File is one parsed source file plus the context analyzers need.
type File struct {
	Fset     *token.FileSet
	AST      *ast.File
	Filename string
	// PkgPath is the module-relative package directory with forward
	// slashes, e.g. "internal/space" or "cmd/autotune" ("." for the root).
	PkgPath string
	PkgName string
	IsTest  bool
	Mod     *Module

	imports      map[string]string // local import name -> import path
	suppressions []suppression
}

// ImportNames returns every local name the file binds to the given import
// path, sorted (a file may import one path under several names). Dot
// imports are not handled — the repo style forbids them anyway.
func (f *File) ImportNames(path string) []string {
	var out []string
	for name, p := range f.imports {
		if p == path {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// ImportName returns the lexically first local name for the import path
// ("" if the file does not import it).
func (f *File) ImportName(path string) string {
	names := f.ImportNames(path)
	if len(names) == 0 {
		return ""
	}
	return names[0]
}

// Position resolves a token.Pos against the file set.
func (f *File) Position(pos token.Pos) token.Position { return f.Fset.Position(pos) }

// Diag builds a Diagnostic anchored at pos.
func (f *File) Diag(check string, pos token.Pos, msg, suggestion string) Diagnostic {
	return Diagnostic{Check: check, Pos: f.Position(pos), Message: msg, Suggestion: suggestion}
}

// initDirectives scans the file's comments for //autolint:ignore
// directives and records them. A directive suppresses matching findings on
// its own line and on the line immediately below it, which covers both the
// trailing form
//
//	time.Sleep(d) //autolint:ignore wallclock retry backoff is wall time
//
// and the leading form
//
//	//autolint:ignore wallclock retry backoff is wall time
//	time.Sleep(d)
func (f *File) initDirectives() []Diagnostic {
	var bad []Diagnostic
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, IgnoreDirective) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, IgnoreDirective))
			check, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			line := f.Position(c.Pos()).Line
			if check == "" || reason == "" {
				bad = append(bad, f.Diag("autolint", c.Pos(),
					"malformed ignore directive: want //autolint:ignore <check> <reason>", ""))
				continue
			}
			f.suppressions = append(f.suppressions, suppression{line: line, check: check, reason: reason})
		}
	}
	return bad
}

// suppressed reports whether a finding of the given check at the given
// line is covered by a directive, marking the directive used.
func (f *File) suppressed(check string, line int) bool {
	for i := range f.suppressions {
		s := &f.suppressions[i]
		if s.check != check && s.check != "*" {
			continue
		}
		if s.line == line || s.line == line-1 {
			s.used = true
			return true
		}
	}
	return false
}

// unusedDirectives returns a diagnostic for every directive that matched
// nothing, so stale suppressions cannot linger after the underlying code
// is fixed. Only directives for checks that actually ran are judged —
// `autolint -checks globalrand` must not condemn every wallclock
// suppression in the tree (ran[name] set; "*" directives are judged
// whenever anything ran).
func (f *File) unusedDirectives(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, s := range f.suppressions {
		if !s.used && (s.check == "*" || ran[s.check]) {
			out = append(out, Diagnostic{
				Check: "autolint",
				Pos:   token.Position{Filename: f.Filename, Line: s.line, Column: 1},
				Message: fmt.Sprintf("unused ignore directive for %q (nothing to suppress here)",
					s.check),
			})
		}
	}
	return out
}

// Run applies every syntactic analyzer to every file in the module,
// filters suppressed findings, and returns the rest sorted by position.
// It is RunAll without the typed tier.
func Run(mod *Module, analyzers []*Analyzer) []Diagnostic {
	out, _ := RunAll(mod, analyzers, nil)
	return out
}

// All returns the full analyzer registry in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		GlobalRand,
		WallClock,
		MapOrder,
		CtxPass,
		DroppedErr,
		NakedGo,
		HotAlloc,
	}
}

// ByName resolves a comma-separated list of analyzer names ("" or "all"
// selects the whole registry).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" || names == "all" {
		return All(), nil
	}
	index := map[string]*Analyzer{}
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
