package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"autotune/internal/bandit"
	"autotune/internal/resilience"
	"autotune/internal/rl"
	"autotune/internal/sched"
	"autotune/internal/space"
)

// OnlineSystem is a live system an Agent can steer: apply a configuration,
// then measure the resulting loss and the current context (workload
// features). Measurements are noisy and the workload may shift under the
// agent's feet — that is the point.
type OnlineSystem interface {
	Space() *space.Space
	// Apply installs a configuration (the runtime "SET knob=value" path).
	Apply(cfg space.Config) error
	// Measure returns the current loss (minimized) and context features
	// in [0, 1] (e.g. normalized read ratio, request rate).
	Measure() (loss float64, ctx []float64)
}

// Policy proposes configurations for the online loop and learns from
// feedback.
type Policy interface {
	// Propose returns the configuration to apply next, given the current
	// incumbent and context.
	Propose(incumbent space.Config, ctx []float64, rng *rand.Rand) space.Config
	// Feedback reports the loss observed after applying cfg under ctx.
	Feedback(cfg space.Config, ctx []float64, loss float64)
	// Name identifies the policy.
	Name() string
}

// Guardrails bound online exploration (tutorial slide 84).
type Guardrails struct {
	// MaxRegression is the tolerated relative loss increase over the
	// incumbent's smoothed loss before a strike (default 0.2 = 20%).
	MaxRegression float64
	// Patience is how many consecutive strikes trigger rollback
	// (default 2).
	Patience int
	// ExploreScale bounds proposals to a neighbourhood of the incumbent
	// in unit-cube units; 0 disables the bound (policies may still bound
	// themselves).
	ExploreScale float64
	// ApplyRetries retries transient configuration-apply failures
	// (resilience.ErrTransient) with exponential backoff before giving
	// up — a live "SET knob" path flakes just like a benchmark does
	// (default 0 = fail fast).
	ApplyRetries int
	// ApplyBackoff is the base backoff between apply retries
	// (default 50ms).
	ApplyBackoff time.Duration
}

func (g Guardrails) withDefaults() Guardrails {
	if g.MaxRegression <= 0 {
		g.MaxRegression = 0.2
	}
	if g.Patience <= 0 {
		g.Patience = 2
	}
	if g.ApplyBackoff <= 0 {
		g.ApplyBackoff = 50 * time.Millisecond
	}
	return g
}

// Agent is the online tuning loop: each Step proposes, applies, measures,
// learns, and enforces guardrails. The system calls (Apply, Measure) run
// under sched.Guard: a panic in live-system plumbing surfaces as a step
// error wrapping sched.ErrPanic instead of killing the control loop.
type Agent struct {
	sys    OnlineSystem
	policy Policy
	guard  Guardrails
	rng    *rand.Rand

	incumbent     space.Config
	incumbentLoss float64 // EWMA of incumbent's loss
	alpha         float64
	strikes       int
	steps         int
	rollbacks     int
	started       bool
}

// NewAgent builds an online agent. The system's current configuration is
// taken to be the space default until a better incumbent emerges.
func NewAgent(sys OnlineSystem, policy Policy, guard Guardrails, rng *rand.Rand) (*Agent, error) {
	if sys == nil || policy == nil {
		return nil, errors.New("core: agent needs a system and a policy")
	}
	return &Agent{
		sys:    sys,
		policy: policy,
		guard:  guard.withDefaults(),
		rng:    rng,
		alpha:  0.3,
	}, nil
}

// StepReport describes one control-loop iteration.
type StepReport struct {
	Config     space.Config
	Loss       float64
	Accepted   bool // became the new incumbent
	RolledBack bool // guardrail fired and the incumbent was restored
}

// Incumbent returns the current best-known configuration and its smoothed
// loss.
func (a *Agent) Incumbent() (space.Config, float64) {
	if a.incumbent == nil {
		return nil, math.Inf(1)
	}
	return a.incumbent.Clone(), a.incumbentLoss
}

// Rollbacks returns how many times the guardrail fired.
func (a *Agent) Rollbacks() int { return a.rollbacks }

// Steps returns the number of completed steps.
func (a *Agent) Steps() int { return a.steps }

// Step runs one iteration of the online loop.
func (a *Agent) Step() (StepReport, error) {
	a.steps++
	if !a.started {
		// Bootstrap: measure the default configuration.
		def := a.sys.Space().Default()
		if err := a.apply(def); err != nil {
			return StepReport{}, fmt.Errorf("core: bootstrap apply: %w", err)
		}
		loss, ctx, err := a.measure()
		if err != nil {
			return StepReport{}, fmt.Errorf("core: bootstrap measure: %w", err)
		}
		a.incumbent = def
		a.incumbentLoss = loss
		a.started = true
		a.policy.Feedback(def, ctx, loss)
		return StepReport{Config: def.Clone(), Loss: loss, Accepted: true}, nil
	}
	ctx, err := a.peekContext()
	if err != nil {
		return StepReport{}, fmt.Errorf("core: measure: %w", err)
	}
	cand := a.policy.Propose(a.incumbent, ctx, a.rng)
	if a.guard.ExploreScale > 0 {
		cand = a.clampToNeighbourhood(cand)
	}
	if err := a.apply(cand); err != nil {
		return StepReport{}, fmt.Errorf("core: apply: %w", err)
	}
	loss, ctx2, err := a.measure()
	if err != nil {
		return StepReport{}, fmt.Errorf("core: measure: %w", err)
	}
	a.policy.Feedback(cand, ctx2, loss)

	rep := StepReport{Config: cand.Clone(), Loss: loss}
	switch {
	case loss <= a.incumbentLoss:
		a.incumbent = cand.Clone()
		a.incumbentLoss = a.alpha*loss + (1-a.alpha)*a.incumbentLoss
		a.strikes = 0
		rep.Accepted = true
	case loss > a.incumbentLoss*(1+a.guard.MaxRegression):
		if cand.Key() == a.incumbent.Key() {
			// The regressing configuration IS the incumbent: there is
			// nothing to roll back to — the workload has shifted under us.
			// Adapt the baseline so the agent can accept configurations
			// suited to the new regime instead of striking forever — but
			// slowly and capped at 2x per step, or a single crash-scale
			// measurement would blow the guardrail wide open.
			a.incumbentLoss = upwardEWMA(a.incumbentLoss, loss)
			a.strikes = 0
			break
		}
		a.strikes++
		if a.strikes >= a.guard.Patience {
			if err := a.apply(a.incumbent); err != nil {
				return rep, fmt.Errorf("core: rollback apply: %w", err)
			}
			a.strikes = 0
			a.rollbacks++
			rep.RolledBack = true
		}
	default:
		// Mild regression: tolerated, also refreshes the incumbent's
		// smoothed loss so drift does not freeze the baseline.
		a.incumbentLoss = upwardEWMA(a.incumbentLoss, loss)
		a.strikes = 0
	}
	return rep, nil
}

// apply installs a configuration, retrying transient failures with
// exponential backoff + jitter (Guardrails.ApplyRetries). Hard errors and
// exhausted retries surface to the caller; a failed rollback apply in
// particular must not be swallowed. A panicking Apply — a bug in the
// live-system plumbing, the one place a crash would take the whole
// control loop down with it — is recovered into an error wrapping
// sched.ErrPanic and is not retried.
func (a *Agent) apply(cfg space.Config) error {
	bo := resilience.Backoff{Base: a.guard.ApplyBackoff}
	var err error
	for attempt := 0; ; attempt++ {
		err = sched.Guard(func() error { return a.sys.Apply(cfg) })
		if err == nil || !resilience.IsTransient(err) || attempt >= a.guard.ApplyRetries {
			return err
		}
		time.Sleep(bo.Delay(attempt, a.rng))
	}
}

// measure reads the system under sched.Guard so a panicking Measure
// surfaces as a step error instead of unwinding the agent.
func (a *Agent) measure() (loss float64, ctx []float64, err error) {
	err = sched.Guard(func() error {
		loss, ctx = a.sys.Measure()
		return nil
	})
	return loss, ctx, err
}

// upwardEWMA raises a loss baseline toward an observation conservatively:
// slow smoothing, clamped to at most doubling per step.
func upwardEWMA(baseline, loss float64) float64 {
	if loss > baseline*2 {
		loss = baseline * 2
	}
	return 0.9*baseline + 0.1*loss
}

// peekContext measures without feedback to obtain the pre-action context.
func (a *Agent) peekContext() ([]float64, error) {
	_, ctx, err := a.measure()
	return ctx, err
}

// clampToNeighbourhood pulls a candidate back into the guardrail's
// exploration ball around the incumbent (per-dimension clamp).
func (a *Agent) clampToNeighbourhood(cand space.Config) space.Config {
	sp := a.sys.Space()
	xi := sp.Encode(a.incumbent)
	xc := sp.Encode(cand)
	for i := range xc {
		lo, hi := xi[i]-a.guard.ExploreScale, xi[i]+a.guard.ExploreScale
		if xc[i] < lo {
			xc[i] = lo
		}
		if xc[i] > hi {
			xc[i] = hi
		}
	}
	out := sp.Decode(xc)
	// Preserve categorical/bool choices from the candidate (Decode handles
	// them, but clamping a scaled index can flip them arbitrarily; only
	// numeric knobs are distance-bounded).
	for _, p := range sp.Params() {
		if !p.IsNumeric() {
			out[p.Name] = cand[p.Name]
		}
	}
	return sp.Clip(out)
}

// DeltaPolicy tunes numeric knobs with Q-learning over increment /
// decrement / no-op actions (2 per knob + 1), the CDBTune-style
// knob-delta action space.
type DeltaPolicy struct {
	sp    *space.Space
	knobs []string
	agent *rl.QLearning
	// StepSize is the per-action move in unit-cube units (default 0.1).
	StepSize float64

	lastState  []float64
	lastAction int
	hasLast    bool
}

// NewDeltaPolicy builds a Q-learning delta policy over the named numeric
// knobs (all numeric knobs when names is empty).
func NewDeltaPolicy(sp *space.Space, names []string) (*DeltaPolicy, error) {
	if len(names) == 0 {
		for _, p := range sp.Params() {
			if p.IsNumeric() {
				names = append(names, p.Name)
			}
		}
	}
	if len(names) == 0 {
		return nil, errors.New("core: delta policy needs numeric knobs")
	}
	agent, err := rl.NewQLearning(2*len(names) + 1)
	if err != nil {
		return nil, err
	}
	agent.Epsilon = 0.25
	agent.EpsilonDecay = 0.999
	return &DeltaPolicy{sp: sp, knobs: names, agent: agent, StepSize: 0.1}, nil
}

// Name implements Policy.
func (p *DeltaPolicy) Name() string { return "qlearning-delta" }

// Propose implements Policy.
func (p *DeltaPolicy) Propose(incumbent space.Config, ctx []float64, rng *rand.Rand) space.Config {
	action := p.agent.Act(ctx, rng)
	p.lastState = append([]float64(nil), ctx...)
	p.lastAction = action
	p.hasLast = true
	if action == 2*len(p.knobs) {
		return incumbent.Clone() // no-op
	}
	knob := p.knobs[action/2]
	dir := 1.0
	if action%2 == 1 {
		dir = -1
	}
	x := p.sp.Encode(incumbent)
	for i, prm := range p.sp.Params() {
		if prm.Name == knob {
			x[i] += dir * p.StepSize
			if x[i] < 0 {
				x[i] = 0
			}
			if x[i] > 1 {
				x[i] = 1
			}
		}
	}
	out := p.sp.Decode(x)
	// Non-numeric knobs ride along unchanged.
	for _, prm := range p.sp.Params() {
		if !prm.IsNumeric() {
			out[prm.Name] = incumbent[prm.Name]
		}
	}
	return out
}

// Feedback implements Policy.
func (p *DeltaPolicy) Feedback(cfg space.Config, ctx []float64, loss float64) {
	if !p.hasLast {
		return
	}
	p.agent.Update(p.lastState, p.lastAction, -loss, ctx)
}

// BanditPolicy selects among a fixed set of candidate configurations with
// a contextual hybrid bandit (OPPerTune-style): different workload regimes
// learn different arms.
type BanditPolicy struct {
	arms   []space.Config
	hybrid *bandit.Hybrid

	lastArm int
	hasLast bool
}

// NewBanditPolicy builds a contextual bandit policy over candidate
// configurations (e.g. presets from offline tuning).
func NewBanditPolicy(arms []space.Config) (*BanditPolicy, error) {
	h, err := bandit.NewHybrid(len(arms))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cloned := make([]space.Config, len(arms))
	for i, a := range arms {
		cloned[i] = a.Clone()
	}
	return &BanditPolicy{arms: cloned, hybrid: h}, nil
}

// Name implements Policy.
func (p *BanditPolicy) Name() string { return "hybrid-bandit" }

// Arms returns the candidate configurations.
func (p *BanditPolicy) Arms() []space.Config { return p.arms }

// Propose implements Policy.
func (p *BanditPolicy) Propose(incumbent space.Config, ctx []float64, rng *rand.Rand) space.Config {
	arm := p.hybrid.Select(ctx, rng)
	p.lastArm = arm
	p.hasLast = true
	return p.arms[arm].Clone()
}

// Feedback implements Policy.
func (p *BanditPolicy) Feedback(cfg space.Config, ctx []float64, loss float64) {
	if !p.hasLast {
		return
	}
	// Update only errors on an out-of-range arm, and lastArm came from
	// Select over the same arm set; Feedback has no error channel to
	// propagate into anyway.
	//autolint:ignore droppederr lastArm is Select's output and always in range
	_ = p.hybrid.Update(ctx, p.lastArm, loss)
}

// RandomWalkPolicy is the naive baseline: propose a neighbour of the
// incumbent with probability Epsilon, otherwise stay.
type RandomWalkPolicy struct {
	sp *space.Space
	// Epsilon is the exploration probability (default 0.3).
	Epsilon float64
	// Scale is the neighbourhood size (default 0.1).
	Scale float64
}

// NewRandomWalkPolicy returns the baseline policy.
func NewRandomWalkPolicy(sp *space.Space) *RandomWalkPolicy {
	return &RandomWalkPolicy{sp: sp, Epsilon: 0.3, Scale: 0.1}
}

// Name implements Policy.
func (p *RandomWalkPolicy) Name() string { return "random-walk" }

// Propose implements Policy.
func (p *RandomWalkPolicy) Propose(incumbent space.Config, ctx []float64, rng *rand.Rand) space.Config {
	if rng.Float64() < p.Epsilon {
		return p.sp.Neighbor(incumbent, p.Scale, rng)
	}
	return incumbent.Clone()
}

// Feedback implements Policy.
func (p *RandomWalkPolicy) Feedback(space.Config, []float64, float64) {}

// ActorCriticPolicy tunes numeric knobs with the neural actor-critic from
// internal/rl over the same increment/decrement/no-op action space as
// DeltaPolicy — the QTune/CDBTune-style deep-RL alternative to tabular
// Q-learning.
type ActorCriticPolicy struct {
	sp    *space.Space
	knobs []string
	agent *rl.ActorCritic
	// StepSize is the per-action move in unit-cube units (default 0.1).
	StepSize float64

	lastState  []float64
	lastAction int
	hasLast    bool
}

// NewActorCriticPolicy builds an actor-critic policy over the named numeric
// knobs (all numeric knobs when names is empty). stateDim must match the
// context length the online system reports.
func NewActorCriticPolicy(sp *space.Space, names []string, stateDim int, seed int64) (*ActorCriticPolicy, error) {
	if len(names) == 0 {
		for _, p := range sp.Params() {
			if p.IsNumeric() {
				names = append(names, p.Name)
			}
		}
	}
	if len(names) == 0 {
		return nil, errors.New("core: actor-critic policy needs numeric knobs")
	}
	if stateDim <= 0 {
		return nil, errors.New("core: actor-critic policy needs a positive state dimension")
	}
	agent, err := rl.NewActorCritic(stateDim, 2*len(names)+1, 32, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return &ActorCriticPolicy{sp: sp, knobs: names, agent: agent, StepSize: 0.1}, nil
}

// Name implements Policy.
func (p *ActorCriticPolicy) Name() string { return "actor-critic" }

// Propose implements Policy.
func (p *ActorCriticPolicy) Propose(incumbent space.Config, ctx []float64, rng *rand.Rand) space.Config {
	action := p.agent.Act(ctx, rng)
	p.lastState = append([]float64(nil), ctx...)
	p.lastAction = action
	p.hasLast = true
	if action == 2*len(p.knobs) {
		return incumbent.Clone()
	}
	knob := p.knobs[action/2]
	dir := 1.0
	if action%2 == 1 {
		dir = -1
	}
	x := p.sp.Encode(incumbent)
	for i, prm := range p.sp.Params() {
		if prm.Name == knob {
			x[i] += dir * p.StepSize
			if x[i] < 0 {
				x[i] = 0
			}
			if x[i] > 1 {
				x[i] = 1
			}
		}
	}
	out := p.sp.Decode(x)
	for _, prm := range p.sp.Params() {
		if !prm.IsNumeric() {
			out[prm.Name] = incumbent[prm.Name]
		}
	}
	return out
}

// Feedback implements Policy.
func (p *ActorCriticPolicy) Feedback(cfg space.Config, ctx []float64, loss float64) {
	if !p.hasLast {
		return
	}
	p.agent.Update(p.lastState, p.lastAction, -loss, ctx, false)
}
