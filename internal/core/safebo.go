package core

import (
	"math"
	"math/rand"

	"autotune/internal/bo"
	"autotune/internal/space"
)

// SafeBOPolicy is OnlineTune-style safe exploration (tutorial slide 84,
// [29]): a GP surrogate over observed (config, loss) pairs defines a safe
// region — configurations whose pessimistic predicted loss (mean + Beta x
// std) stays within SafetyMargin of the incumbent's smoothed loss — and
// proposals greedily minimize the optimistic bound (mean - Beta x std)
// *inside* that region. Exploration therefore expands outward from the
// incumbent without stepping anywhere the model thinks could violate the
// performance guardrail.
//
// The policy is context-free: under workload shift, stale observations make
// the model conservative until new data arrives (pair it with the agent's
// rollback guardrail).
type SafeBOPolicy struct {
	sp        *space.Space
	surrogate *bo.BO

	// SafetyMargin is the tolerated relative regression for the
	// pessimistic bound (default 0.3).
	SafetyMargin float64
	// Beta scales the confidence width (default 1.5).
	Beta float64
	// Candidates per proposal, drawn from incumbent neighbourhoods of
	// increasing radius (default 128).
	Candidates int
	// MinObservations before the model gates proposals (default 5);
	// earlier proposals are small random steps around the incumbent.
	MinObservations int
	// ExploreProb is the probability a step explores at all; otherwise
	// the incumbent is re-proposed (default 0.35). Online tuners pace
	// their changes — production traffic pays for every experiment.
	ExploreProb float64
	// MaxHistory bounds the surrogate's window (default 120): older
	// observations are dropped, which both caps the O(n^3) GP cost and
	// keeps the model current under workload drift.
	MaxHistory int

	seed          int64
	hist          []obsPair
	incumbentLoss float64
	hasLoss       bool
	n             int
	lastIncumbent string // Key() of the incumbent the last proposal started from
}

type obsPair struct {
	cfg  space.Config
	loss float64
}

// NewSafeBOPolicy builds a safe-BO online policy over the space.
func NewSafeBOPolicy(sp *space.Space, seed int64) *SafeBOPolicy {
	rng := rand.New(rand.NewSource(seed))
	return &SafeBOPolicy{
		sp: sp,
		surrogate: bo.NewWith(sp, rng, bo.Options{
			OneHot: true, LogY: true, FitHyperEvery: 15, RefineIters: 0,
		}),
		SafetyMargin:    0.3,
		Beta:            1.5,
		Candidates:      128,
		MinObservations: 5,
		ExploreProb:     0.35,
		MaxHistory:      120,
		seed:            seed,
	}
}

// Name implements Policy.
func (p *SafeBOPolicy) Name() string { return "safe-bo" }

// Propose implements Policy.
func (p *SafeBOPolicy) Propose(incumbent space.Config, ctx []float64, rng *rand.Rand) space.Config {
	p.lastIncumbent = incumbent.Key()
	if p.n < p.MinObservations || !p.hasLoss {
		return p.coordinateMove(incumbent, 0.15, rng)
	}
	if rng.Float64() >= p.ExploreProb {
		return incumbent.Clone() // paced exploration: mostly serve traffic
	}
	threshold := p.incumbentLoss * (1 + p.SafetyMargin)
	var best space.Config
	bestLCB := math.Inf(1)
	var leastRisky space.Config
	leastRisk := math.Inf(1)
	// Coordinate-wise candidate moves: perturbing one knob at a time keeps
	// proposals genuinely local in high-dimensional spaces (an all-knob
	// Gaussian step changes too much at once for a safety gate to mean
	// anything), with step sizes growing so the safe region can expand.
	scales := []float64{0.05, 0.15, 0.4}
	for i := 0; i < p.Candidates; i++ {
		cand := p.coordinateMove(incumbent, scales[i%len(scales)], rng)
		mu, sd, ok := p.surrogate.Predict(cand)
		if !ok {
			continue
		}
		// Predict is in the surrogate's (log-warped) units; map the
		// threshold the same way for an apples-to-apples bound.
		risk := mu + p.Beta*sd
		if risk < leastRisk {
			leastRisky, leastRisk = cand, risk
		}
		if risk > math.Log(math.Max(threshold, 1e-12)) {
			continue // pessimistic bound violates the guardrail: unsafe
		}
		if lcb := mu - p.Beta*sd; lcb < bestLCB {
			best, bestLCB = cand, lcb
		}
	}
	if best == nil {
		// Nothing provably safe — usually sparse data, where every bound
		// is wide. Expand the safe set SafeOpt-style by probing the
		// least-risky candidate half the time; hold position otherwise.
		if leastRisky != nil && rng.Float64() < 0.5 {
			return leastRisky
		}
		return incumbent.Clone()
	}
	return best
}

// coordinateMove perturbs a single randomly-chosen parameter of the
// incumbent: numeric knobs step by +/- scale in unit-cube units,
// categoricals and bools resample.
func (p *SafeBOPolicy) coordinateMove(incumbent space.Config, scale float64, rng *rand.Rand) space.Config {
	params := p.sp.Params()
	prm := params[rng.Intn(len(params))]
	out := incumbent.Clone()
	switch prm.Kind {
	case space.KindFloat, space.KindInt:
		x := p.sp.Encode(incumbent)
		for i, q := range params {
			if q.Name != prm.Name {
				continue
			}
			x[i] += scale * (2*rng.Float64() - 1)
			if x[i] < 0 {
				x[i] = 0
			}
			if x[i] > 1 {
				x[i] = 1
			}
		}
		dec := p.sp.Decode(x)
		out[prm.Name] = dec[prm.Name]
	case space.KindCategorical:
		out[prm.Name] = prm.Values[rng.Intn(len(prm.Values))]
	case space.KindBool:
		out[prm.Name] = !incumbent.Bool(prm.Name)
	}
	return p.sp.Clip(out)
}

// Feedback implements Policy.
func (p *SafeBOPolicy) Feedback(cfg space.Config, ctx []float64, loss float64) {
	p.n++
	p.hist = append(p.hist, obsPair{cfg.Clone(), loss})
	if p.MaxHistory > 0 && len(p.hist) > p.MaxHistory+p.MaxHistory/4 {
		// Rebuild the surrogate on the most recent window. Rebuilding in
		// chunks (25% hysteresis) amortizes the cost.
		p.hist = append([]obsPair(nil), p.hist[len(p.hist)-p.MaxHistory:]...)
		p.surrogate = bo.NewWith(p.sp, rand.New(rand.NewSource(p.seed+int64(p.n))), bo.Options{
			OneHot: true, LogY: true, FitHyperEvery: 15, RefineIters: 0,
		})
		for _, o := range p.hist[:len(p.hist)-1] {
			//autolint:ignore droppederr replayed configs were accepted by Observe before
			_ = p.surrogate.Observe(o.cfg, o.loss)
		}
	}
	// The Policy.Feedback interface is void: a surrogate that rejects an
	// observation degrades proposal quality but must not abort tuning.
	//autolint:ignore droppederr surrogate rejection is non-fatal to the tuning loop
	_ = p.surrogate.Observe(cfg, loss)
	if !p.hasLoss {
		p.incumbentLoss, p.hasLoss = loss, true
		return
	}
	if loss < p.incumbentLoss {
		p.incumbentLoss = loss
		return
	}
	// Upward tracking only from re-measurements of the incumbent itself
	// (workload drift): a failed *exploration* must not inflate the safety
	// threshold, or failures beget riskier proposals in a spiral.
	if cfg.Key() == p.lastIncumbent {
		p.incumbentLoss = 0.9*p.incumbentLoss + 0.1*loss
	}
}
