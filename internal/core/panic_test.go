package core

import (
	"errors"
	"math/rand"
	"testing"

	"autotune/internal/sched"
	"autotune/internal/space"
)

// flakySystem is an OnlineSystem whose Apply/Measure can be made to panic
// on demand — modeling a bug in live-system plumbing.
type flakySystem struct {
	sp           *space.Space
	panicApply   bool
	panicMeasure bool
	loss         float64
}

func (s *flakySystem) Space() *space.Space { return s.sp }

func (s *flakySystem) Apply(cfg space.Config) error {
	if s.panicApply {
		panic("apply plumbing bug")
	}
	return nil
}

func (s *flakySystem) Measure() (float64, []float64) {
	if s.panicMeasure {
		panic("metrics pipeline bug")
	}
	return s.loss, []float64{0.5}
}

func TestAgentSurvivesSystemPanics(t *testing.T) {
	sys := &flakySystem{sp: space.MustNew(space.Float("x", 0, 1)), loss: 1}
	agent, err := NewAgent(sys, NewRandomWalkPolicy(sys.sp), Guardrails{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Step(); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}

	sys.panicMeasure = true
	if _, err := agent.Step(); !errors.Is(err, sched.ErrPanic) {
		t.Fatalf("measure panic surfaced as %v, want sched.ErrPanic", err)
	}
	sys.panicMeasure = false

	sys.panicApply = true
	// The walk policy sometimes proposes the incumbent itself; either way
	// Apply runs and must panic into an error, never unwind the loop.
	if _, err := agent.Step(); !errors.Is(err, sched.ErrPanic) {
		t.Fatalf("apply panic surfaced as %v, want sched.ErrPanic", err)
	}
	sys.panicApply = false

	// The loop keeps working after both failures.
	rep, err := agent.Step()
	if err != nil {
		t.Fatalf("step after recovered panics: %v", err)
	}
	if rep.Config == nil {
		t.Fatal("step produced no config")
	}
}
