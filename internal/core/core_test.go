package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"autotune/internal/resilience"
	"autotune/internal/space"
	"autotune/internal/trial"
)

func TestRegistryConstructsAll(t *testing.T) {
	s := space.MustNew(space.Float("x", 0, 1), space.Categorical("c", "a", "b"))
	rng := rand.New(rand.NewSource(1))
	for _, name := range OptimizerNames() {
		o, err := NewOptimizer(name, s, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfg, err := o.Suggest()
		if err != nil {
			t.Fatalf("%s suggest: %v", name, err)
		}
		if err := s.Validate(cfg); err != nil {
			t.Fatalf("%s invalid suggestion: %v", name, err)
		}
		if err := o.Observe(cfg, 1); err != nil {
			t.Fatalf("%s observe: %v", name, err)
		}
	}
	if _, err := NewOptimizer("bogus", s, rng); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestTunerEndToEnd(t *testing.T) {
	env := &trial.FuncEnv{
		Sp: space.MustNew(space.Float("x", 0, 1)),
		F:  func(c space.Config) float64 { return math.Abs(c.Float("x") - 0.3) },
	}
	tn, err := NewTuner("bo", env, trial.Options{Budget: 25}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tn.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestValue > 0.05 {
		t.Fatalf("best = %v", rep.BestValue)
	}
	if _, err := NewTuner("bogus", env, trial.Options{Budget: 1}, rand.New(rand.NewSource(2))); err == nil {
		t.Fatal("bad optimizer name should error")
	}
}

// onlineQuad is a toy online system: loss = (x - target)^2 + noise, where
// target depends on the regime (context). Calling shift() moves the
// regime.
type onlineQuad struct {
	sp      *space.Space
	cur     space.Config
	regime  float64 // context feature; optimum x = regime
	rng     *rand.Rand
	applies int
}

func newOnlineQuad(seed int64) *onlineQuad {
	return &onlineQuad{
		sp:     space.MustNew(space.Float("x", 0, 1).WithDefault(0.5)),
		regime: 0.2,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

func (o *onlineQuad) Space() *space.Space { return o.sp }

func (o *onlineQuad) Apply(cfg space.Config) error {
	o.cur = cfg.Clone()
	o.applies++
	return nil
}

func (o *onlineQuad) Measure() (float64, []float64) {
	x := o.cur.Float("x")
	loss := (x-o.regime)*(x-o.regime) + 0.001*o.rng.NormFloat64()
	if loss < 0 {
		loss = 0
	}
	return loss, []float64{o.regime}
}

func TestAgentImprovesOnline(t *testing.T) {
	sys := newOnlineQuad(1)
	pol := NewRandomWalkPolicy(sys.Space())
	agent, err := NewAgent(sys, pol, Guardrails{}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	var first, last float64
	for i := 0; i < 200; i++ {
		rep, err := agent.Step()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = rep.Loss
		}
		last = rep.Loss
	}
	_, incLoss := agent.Incumbent()
	if !(incLoss < first) {
		t.Fatalf("incumbent loss %v did not improve on start %v (last %v)", incLoss, first, last)
	}
	if agent.Steps() != 200 {
		t.Fatalf("steps = %d", agent.Steps())
	}
}

func TestAgentGuardrailRollsBack(t *testing.T) {
	sys := newOnlineQuad(3)
	// A policy that proposes terrible configs after warmup.
	pol := &sabotagePolicy{sp: sys.Space()}
	agent, err := NewAgent(sys, pol, Guardrails{MaxRegression: 0.1, Patience: 2}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	sawRollback := false
	for i := 0; i < 30; i++ {
		rep, err := agent.Step()
		if err != nil {
			t.Fatal(err)
		}
		if rep.RolledBack {
			sawRollback = true
			// Immediately after a rollback the system must be running
			// the incumbent again.
			inc, _ := agent.Incumbent()
			if math.Abs(sys.cur.Float("x")-inc.Float("x")) > 1e-9 {
				t.Fatalf("after rollback system runs %v, incumbent %v", sys.cur, inc)
			}
		}
	}
	if !sawRollback || agent.Rollbacks() == 0 {
		t.Fatal("guardrail never fired against a sabotage policy")
	}
}

type sabotagePolicy struct{ sp *space.Space }

func (p *sabotagePolicy) Name() string { return "sabotage" }

func (p *sabotagePolicy) Propose(inc space.Config, ctx []float64, rng *rand.Rand) space.Config {
	return space.Config{"x": 1.0} // far from any regime in the tests
}

func (p *sabotagePolicy) Feedback(space.Config, []float64, float64) {}

func TestAgentExploreScaleBoundsMoves(t *testing.T) {
	sys := newOnlineQuad(5)
	pol := &sabotagePolicy{sp: sys.Space()}
	agent, _ := NewAgent(sys, pol, Guardrails{ExploreScale: 0.05, MaxRegression: 100}, rand.New(rand.NewSource(6)))
	agent.Step() // bootstrap at default 0.5
	rep, err := agent.Step()
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage proposes 1.0 but the guardrail clamps to 0.5 +/- 0.05.
	if rep.Config.Float("x") > 0.56 {
		t.Fatalf("explore bound violated: %v", rep.Config)
	}
}

func TestDeltaPolicyMovesOneKnob(t *testing.T) {
	sp := space.MustNew(space.Float("a", 0, 1).WithDefault(0.5), space.Float("b", 0, 1).WithDefault(0.5))
	pol, err := NewDeltaPolicy(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	inc := sp.Default()
	moved := 0
	for i := 0; i < 50; i++ {
		next := pol.Propose(inc, []float64{0.5}, rng)
		da := math.Abs(next.Float("a") - inc.Float("a"))
		db := math.Abs(next.Float("b") - inc.Float("b"))
		if da > 0 && db > 0 {
			t.Fatalf("delta policy moved two knobs at once: %v", next)
		}
		if da > 0.11 || db > 0.11 {
			t.Fatalf("step too large: %v", next)
		}
		if da+db > 0 {
			moved++
		}
		pol.Feedback(next, []float64{0.5}, 1)
	}
	if moved == 0 {
		t.Fatal("policy never moved")
	}
}

func TestDeltaPolicyRejectsNoNumeric(t *testing.T) {
	sp := space.MustNew(space.Categorical("c", "a", "b"))
	if _, err := NewDeltaPolicy(sp, nil); err == nil {
		t.Fatal("expected error with no numeric knobs")
	}
}

func TestBanditPolicyLearnsContextualArms(t *testing.T) {
	sp := space.MustNew(space.Float("x", 0, 1))
	arms := []space.Config{{"x": 0.2}, {"x": 0.8}}
	pol, err := NewBanditPolicy(arms)
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Arms()) != 2 {
		t.Fatal("arms")
	}
	rng := rand.New(rand.NewSource(8))
	// Context 0 prefers arm 0, context 1 prefers arm 1.
	loss := func(cfg space.Config, ctx float64) float64 {
		target := 0.2
		if ctx > 0.5 {
			target = 0.8
		}
		return math.Abs(cfg.Float("x") - target)
	}
	for i := 0; i < 800; i++ {
		// Random regime order: a deterministic alternation would be
		// perfectly confounded with the bandit's own arm alternation.
		ctx := []float64{float64(rng.Intn(2))}
		cfg := pol.Propose(sp.Default(), ctx, rng)
		pol.Feedback(cfg, ctx, loss(cfg, ctx[0])+0.01*rng.NormFloat64())
	}
	// After training, greedy choice should be context-appropriate most of
	// the time (bandit still explores a little).
	lowPicks, highPicks := 0, 0
	for i := 0; i < 100; i++ {
		if pol.Propose(sp.Default(), []float64{0}, rng).Float("x") == 0.2 {
			lowPicks++
		}
		if pol.Propose(sp.Default(), []float64{1}, rng).Float("x") == 0.8 {
			highPicks++
		}
	}
	if lowPicks < 60 || highPicks < 60 {
		t.Fatalf("context arms not learned: low %d/100 high %d/100", lowPicks, highPicks)
	}
}

func TestNewAgentValidation(t *testing.T) {
	if _, err := NewAgent(nil, nil, Guardrails{}, nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestSafeBOPolicyImprovesWithoutBigRegressions(t *testing.T) {
	sys := newOnlineQuad(11)
	pol := NewSafeBOPolicy(sys.Space(), 12)
	agent, err := NewAgent(sys, pol, Guardrails{MaxRegression: 0.5, Patience: 3}, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	var losses []float64
	for i := 0; i < 150; i++ {
		rep, err := agent.Step()
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, rep.Loss)
	}
	_, incLoss := agent.Incumbent()
	if incLoss > losses[0] {
		t.Fatalf("incumbent %v did not improve on start %v", incLoss, losses[0])
	}
	// Safety: after warm-up, steps should rarely be catastrophically worse
	// than the start (the quad's worst value is ~0.64 at x=1 vs start 0.09).
	bad := 0
	for _, l := range losses[20:] {
		if l > losses[0]*4 {
			bad++
		}
	}
	if bad > len(losses)/5 {
		t.Fatalf("%d/%d post-warmup steps were catastrophic", bad, len(losses)-20)
	}
	if pol.Name() != "safe-bo" {
		t.Fatal("name")
	}
}

func TestSafeBOPolicyAvoidsKnownBadRegion(t *testing.T) {
	sp := space.MustNew(space.Float("x", 0, 1).WithDefault(0.2))
	pol := NewSafeBOPolicy(sp, 14)
	pol.MinObservations = 3
	rng := rand.New(rand.NewSource(15))
	inc := space.Config{"x": 0.2}
	// Observed surface: gentle near the incumbent, terrible above 0.6.
	pol.Feedback(inc, nil, 0.10)
	for i := 0; i < 12; i++ {
		x := rng.Float64()
		loss := 0.1 + 0.2*math.Abs(x-0.2)
		if x > 0.6 {
			loss = 10
		}
		pol.Feedback(space.Config{"x": x}, nil, loss)
	}
	ventured := 0
	for i := 0; i < 40; i++ {
		if pol.Propose(inc, nil, rng).Float("x") > 0.6 {
			ventured++
		}
	}
	if ventured > 4 {
		t.Fatalf("policy proposed into the known-bad region %d/40 times", ventured)
	}
}

func TestActorCriticPolicyLearnsDirection(t *testing.T) {
	sp := space.MustNew(space.Float("x", 0, 1).WithDefault(0.8))
	pol, err := NewActorCriticPolicy(sp, nil, 1, 21)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	// Loss decreases as x decreases: the policy should learn to step down.
	inc := sp.Default()
	for i := 0; i < 400; i++ {
		next := pol.Propose(inc, []float64{inc.Float("x")}, rng)
		loss := next.Float("x")
		pol.Feedback(next, []float64{next.Float("x")}, loss)
		if loss < inc.Float("x") {
			inc = next
		}
	}
	if inc.Float("x") > 0.4 {
		t.Fatalf("actor-critic did not descend: x = %v", inc.Float("x"))
	}
	if pol.Name() != "actor-critic" {
		t.Fatal("name")
	}
}

func TestActorCriticPolicyValidation(t *testing.T) {
	sp := space.MustNew(space.Categorical("c", "a", "b"))
	if _, err := NewActorCriticPolicy(sp, nil, 1, 1); err == nil {
		t.Fatal("no numeric knobs should error")
	}
	sp2 := space.MustNew(space.Float("x", 0, 1))
	if _, err := NewActorCriticPolicy(sp2, nil, 0, 1); err == nil {
		t.Fatal("zero state dim should error")
	}
}

// flakyApplySys fails every other Apply transiently — a live "SET knob"
// path that drops connections.
type flakyApplySys struct {
	*onlineQuad
	calls int
}

func (f *flakyApplySys) Apply(cfg space.Config) error {
	f.calls++
	if f.calls%2 == 1 {
		return fmt.Errorf("conn reset: %w", resilience.ErrTransient)
	}
	return f.onlineQuad.Apply(cfg)
}

func TestAgentRetriesTransientApply(t *testing.T) {
	sys := &flakyApplySys{onlineQuad: newOnlineQuad(3)}
	pol := NewRandomWalkPolicy(sys.Space())
	agent, err := NewAgent(sys, pol,
		Guardrails{ApplyRetries: 2, ApplyBackoff: time.Nanosecond},
		rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := agent.Step(); err != nil {
			t.Fatalf("step %d not retried: %v", i, err)
		}
	}

	// Fail-fast without retries: the first transient apply surfaces.
	sys2 := &flakyApplySys{onlineQuad: newOnlineQuad(5)}
	agent2, err := NewAgent(sys2, NewRandomWalkPolicy(sys2.Space()), Guardrails{},
		rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent2.Step(); err == nil {
		t.Fatal("transient apply without retries should error")
	}
}
