// Package core is the framework facade: a registry that constructs any of
// the library's optimizers by name, a Tuner that wires an optimizer to an
// environment for offline tuning (delegating to internal/trial), and an
// online Agent — the "side-car" architecture from tutorial slide 78 —
// that continuously adjusts a live system under guardrails (bounded
// exploration, regression rollback).
package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"autotune/internal/bo"
	"autotune/internal/cmaes"
	"autotune/internal/genetic"
	"autotune/internal/optimizer"
	"autotune/internal/pso"
	"autotune/internal/smac"
	"autotune/internal/space"
	"autotune/internal/trial"
)

// NewOptimizer constructs an optimizer by name. Supported names: random,
// grid, anneal, coordinate, bo (alias bo-ei), bo-pi, bo-lcb, smac, cmaes,
// pso, genetic.
func NewOptimizer(name string, s *space.Space, rng *rand.Rand) (optimizer.Optimizer, error) {
	switch name {
	case "random":
		return optimizer.NewRandom(s, rng), nil
	case "grid":
		return optimizer.NewGrid(s, 1024), nil
	case "anneal":
		return optimizer.NewAnneal(s, rng), nil
	case "coordinate":
		return optimizer.NewCoordinate(s, rng), nil
	case "bo", "bo-ei":
		return bo.New(s, rng), nil
	case "bo-pi":
		return bo.NewWith(s, rng, bo.Options{Acq: bo.NewPI(), OneHot: true, RefineIters: 40, FitHyperEvery: 10}), nil
	case "bo-lcb":
		return bo.NewWith(s, rng, bo.Options{Acq: bo.NewLCB(), OneHot: true, RefineIters: 40, FitHyperEvery: 10}), nil
	case "smac":
		return smac.New(s, rng), nil
	case "cmaes":
		return cmaes.New(s, rng), nil
	case "pso":
		return pso.New(s, rng), nil
	case "genetic":
		return genetic.New(s, rng), nil
	default:
		return nil, fmt.Errorf("core: unknown optimizer %q (have %v)", name, OptimizerNames())
	}
}

// OptimizerNames lists the registry's names, sorted.
func OptimizerNames() []string {
	names := []string{
		"random", "grid", "anneal", "coordinate",
		"bo", "bo-pi", "bo-lcb", "smac", "cmaes", "pso", "genetic",
	}
	sort.Strings(names)
	return names
}

// Tuner is the offline tuning facade: optimizer + environment + options.
type Tuner struct {
	Optimizer optimizer.Optimizer
	Env       trial.Environment
	Options   trial.Options
}

// NewTuner builds a Tuner with an optimizer constructed by name.
func NewTuner(optName string, env trial.Environment, opts trial.Options, rng *rand.Rand) (*Tuner, error) {
	o, err := NewOptimizer(optName, env.Space(), rng)
	if err != nil {
		return nil, err
	}
	return &Tuner{Optimizer: o, Env: env, Options: opts}, nil
}

// Run executes the tuning session.
func (t *Tuner) Run() (trial.Report, error) {
	return trial.Run(t.Optimizer, t.Env, t.Options)
}

// RunContext executes the tuning session with cancellation: the loop
// stops at the next batch boundary once ctx is cancelled, checkpointing
// progress when Options.Checkpoint is set.
func (t *Tuner) RunContext(ctx context.Context) (trial.Report, error) {
	return trial.RunContext(ctx, t.Optimizer, t.Env, t.Options)
}

// Resume continues a killed session from Options.Checkpoint, replaying
// recorded trials into the optimizer without re-running them.
func (t *Tuner) Resume(ctx context.Context) (trial.Report, error) {
	return trial.ResumeContext(ctx, t.Optimizer, t.Env, t.Options)
}
