// Package transfer implements knowledge transfer across tuning sessions
// (tutorial slide 67): a store of past trials keyed by workload
// descriptors, similarity-based lookup, warm-starting an optimizer with
// prior observations, and crash imputation — failed configurations are
// re-injected everywhere with a made-up penalty of N x the worst observed
// score, so a new session never re-explores configurations known to crash.
package transfer

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"

	"autotune/internal/optimizer"
	"autotune/internal/space"
)

// CrashValue is the sentinel recorded for configurations that crashed the
// system (no score could be measured).
var CrashValue = math.Inf(1)

// ErrEmpty is returned by lookups on an empty store.
var ErrEmpty = errors.New("transfer: empty store")

// Record is one completed tuning session: the workload descriptor it ran
// under and everything observed.
type Record struct {
	// Workload describes the session context as numeric features
	// (e.g. read_ratio, working_set_mb, request_rate).
	Workload map[string]float64 `json:"workload"`
	// Trials holds observed configurations; Value may be CrashValue.
	Trials []Trial `json:"trials"`
}

// Trial is one stored observation.
type Trial struct {
	Config space.Config `json:"config"`
	Value  float64      `json:"value"`
}

// Store accumulates session records. The zero value is ready to use.
type Store struct {
	records []Record
}

// Add appends a session record.
func (s *Store) Add(r Record) { s.records = append(s.records, r) }

// Len returns the number of stored sessions.
func (s *Store) Len() int { return len(s.records) }

// Records returns all stored sessions (live slice; do not modify).
func (s *Store) Records() []Record { return s.records }

// Similarity returns exp(-||a-b||) over the union of descriptor keys
// (missing keys count as 0), a simple kernel in [0, 1].
func Similarity(a, b map[string]float64) float64 {
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	d2 := 0.0
	for k := range keys {
		d := a[k] - b[k]
		d2 += d * d
	}
	return math.Exp(-math.Sqrt(d2))
}

// Nearest returns the k most similar sessions to the given workload,
// most similar first.
func (s *Store) Nearest(workload map[string]float64, k int) ([]Record, error) {
	if len(s.records) == 0 {
		return nil, ErrEmpty
	}
	type scored struct {
		rec Record
		sim float64
	}
	all := make([]scored, len(s.records))
	for i, r := range s.records {
		all[i] = scored{r, Similarity(workload, r.Workload)}
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].sim > all[b].sim })
	if k > len(all) {
		k = len(all)
	}
	out := make([]Record, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].rec
	}
	return out, nil
}

// WarmStartOptions controls WarmStart.
type WarmStartOptions struct {
	// MaxTrials bounds how many prior observations are replayed
	// (0 = all). The best trials are replayed preferentially.
	MaxTrials int
	// CrashPenaltyFactor scales the made-up score for crashed trials:
	// penalty = factor x worst finite score in the replayed set
	// (default 2). Crashed trials are always replayed — "bad samples:
	// reuse everywhere".
	CrashPenaltyFactor float64
	// SimilarityWeighting, when true, inflates replayed scores from less
	// similar workloads toward the mean, shrinking their influence.
	SimilarityWeighting bool
	// TargetWorkload is required for SimilarityWeighting.
	TargetWorkload map[string]float64
}

// WarmStart replays prior observations from the given sessions into a fresh
// optimizer, implementing the tutorial's warm-start policy: good samples
// from similar workloads are reused as-is, crashed samples are reused
// everywhere with an imputed penalty score. Returns the number of replayed
// observations.
func WarmStart(o optimizer.Optimizer, recs []Record, opts WarmStartOptions) (int, error) {
	if opts.CrashPenaltyFactor <= 0 {
		opts.CrashPenaltyFactor = 2
	}
	type item struct {
		t       Trial
		sim     float64
		crashed bool
	}
	var items []item
	worst, best := math.Inf(-1), math.Inf(1)
	var sum float64
	var finite int
	for _, r := range recs {
		sim := 1.0
		if opts.SimilarityWeighting {
			sim = Similarity(opts.TargetWorkload, r.Workload)
		}
		for _, t := range r.Trials {
			crashed := math.IsInf(t.Value, 1) || math.IsNaN(t.Value)
			if !crashed {
				if t.Value > worst {
					worst = t.Value
				}
				if t.Value < best {
					best = t.Value
				}
				sum += t.Value
				finite++
			}
			items = append(items, item{t, sim, crashed})
		}
	}
	if len(items) == 0 {
		return 0, nil
	}
	if finite == 0 {
		worst, best, sum = 1, 1, 1
		finite = 1
	}
	mean := sum / float64(finite)
	penalty := opts.CrashPenaltyFactor * worst
	if penalty <= worst { // e.g. negative scores
		penalty = worst + math.Abs(worst) + 1
	}
	// Replay best-first so MaxTrials keeps the most informative samples;
	// crashed samples sort last but are never dropped.
	sort.SliceStable(items, func(a, b int) bool {
		va, vb := items[a].t.Value, items[b].t.Value
		if items[a].crashed {
			va = math.Inf(1)
		}
		if items[b].crashed {
			vb = math.Inf(1)
		}
		return va < vb
	})
	replayed := 0
	budget := opts.MaxTrials
	for _, it := range items {
		if it.crashed {
			if err := o.Observe(it.t.Config, penalty); err != nil {
				return replayed, fmt.Errorf("transfer: replay crash: %w", err)
			}
			replayed++
			continue
		}
		if budget > 0 && replayed >= budget {
			continue
		}
		v := it.t.Value
		if opts.SimilarityWeighting {
			// Shrink toward the mean as similarity drops: a score from an
			// unrelated workload says little about this one.
			v = it.sim*v + (1-it.sim)*mean
		}
		if err := o.Observe(it.t.Config, v); err != nil {
			return replayed, fmt.Errorf("transfer: replay: %w", err)
		}
		replayed++
	}
	return replayed, nil
}

// TopConfigs returns the k best (lowest finite value) configurations across
// the given records, deduplicated, best first. Warm-start procedures
// typically re-evaluate these on the new workload first — replayed scores
// alone describe the *old* workload, so the best ones must be confirmed
// before an optimizer exploits them.
func TopConfigs(recs []Record, k int) []space.Config {
	type item struct {
		cfg space.Config
		val float64
	}
	var items []item
	for _, r := range recs {
		for _, t := range r.Trials {
			if math.IsInf(t.Value, 0) || math.IsNaN(t.Value) {
				continue
			}
			items = append(items, item{t.Config, t.Value})
		}
	}
	sort.SliceStable(items, func(a, b int) bool { return items[a].val < items[b].val })
	out := make([]space.Config, 0, k)
	seen := map[string]bool{}
	for _, it := range items {
		if len(out) >= k {
			break
		}
		key := it.cfg.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, it.cfg.Clone())
	}
	return out
}

// Save writes the store as JSON to path.
func (s *Store) Save(path string) error {
	data, err := json.MarshalIndent(s.records, "", "  ")
	if err != nil {
		return fmt.Errorf("transfer: marshal: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("transfer: write %s: %w", path, err)
	}
	return nil
}

// Load reads a store from JSON written by Save. Config values arrive as
// generic JSON types; use space.Clip to restore typed values before use.
func Load(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("transfer: read %s: %w", path, err)
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("transfer: parse %s: %w", path, err)
	}
	return &Store{records: recs}, nil
}
