package transfer

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"autotune/internal/optimizer"
	"autotune/internal/space"
)

func mkRecord(wl map[string]float64, trials ...Trial) Record {
	return Record{Workload: wl, Trials: trials}
}

func TestSimilarity(t *testing.T) {
	a := map[string]float64{"read": 0.9, "ws": 1.0}
	if got := Similarity(a, a); got != 1 {
		t.Fatalf("self similarity = %v", got)
	}
	b := map[string]float64{"read": 0.1, "ws": 0.2}
	if got := Similarity(a, b); got >= 1 || got <= 0 {
		t.Fatalf("similarity = %v", got)
	}
	// Missing keys treated as zero.
	c := map[string]float64{"read": 0.9}
	if Similarity(a, c) >= Similarity(a, a) {
		t.Fatal("missing key should reduce similarity")
	}
}

func TestNearestOrders(t *testing.T) {
	var st Store
	st.Add(mkRecord(map[string]float64{"x": 0}))
	st.Add(mkRecord(map[string]float64{"x": 1}))
	st.Add(mkRecord(map[string]float64{"x": 5}))
	recs, err := st.Nearest(map[string]float64{"x": 0.9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Workload["x"] != 1 || recs[1].Workload["x"] != 0 {
		t.Fatalf("nearest = %v", recs)
	}
	// k overflow clamps.
	recs, _ = st.Nearest(map[string]float64{"x": 0}, 99)
	if len(recs) != 3 {
		t.Fatalf("len = %d", len(recs))
	}
}

func TestNearestEmpty(t *testing.T) {
	var st Store
	if _, err := st.Nearest(map[string]float64{}, 1); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
	if st.Len() != 0 {
		t.Fatal("len")
	}
}

func TestWarmStartReplaysBestFirst(t *testing.T) {
	s := space.MustNew(space.Float("x", 0, 1))
	rec := mkRecord(nil,
		Trial{space.Config{"x": 0.1}, 5},
		Trial{space.Config{"x": 0.2}, 1},
		Trial{space.Config{"x": 0.3}, 3},
	)
	o := optimizer.NewRandom(s, rand.New(rand.NewSource(1)))
	n, err := WarmStart(o, []Record{rec}, WarmStartOptions{MaxTrials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replayed = %d", n)
	}
	_, best, ok := o.Best()
	if !ok || best != 1 {
		t.Fatalf("best = %v", best)
	}
	// The dropped trial must be the worst one (value 5).
	for _, obs := range o.History() {
		if obs.Value == 5 {
			t.Fatal("worst trial should have been dropped under MaxTrials")
		}
	}
}

func TestWarmStartCrashImputation(t *testing.T) {
	s := space.MustNew(space.Float("x", 0, 1))
	rec := mkRecord(nil,
		Trial{space.Config{"x": 0.2}, 10},
		Trial{space.Config{"x": 0.9}, CrashValue},
	)
	o := optimizer.NewRandom(s, rand.New(rand.NewSource(2)))
	n, err := WarmStart(o, []Record{rec}, WarmStartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replayed = %d", n)
	}
	var crashScore float64
	for _, obs := range o.History() {
		if obs.Config.Float("x") == 0.9 {
			crashScore = obs.Value
		}
	}
	if math.IsInf(crashScore, 0) || crashScore <= 10 {
		t.Fatalf("crash score = %v, want finite > worst", crashScore)
	}
}

func TestWarmStartCrashAlwaysReplayed(t *testing.T) {
	// Even with MaxTrials=1, crashes are replayed ("reuse everywhere").
	s := space.MustNew(space.Float("x", 0, 1))
	rec := mkRecord(nil,
		Trial{space.Config{"x": 0.1}, 1},
		Trial{space.Config{"x": 0.2}, 2},
		Trial{space.Config{"x": 0.9}, CrashValue},
	)
	o := optimizer.NewRandom(s, rand.New(rand.NewSource(3)))
	n, err := WarmStart(o, []Record{rec}, WarmStartOptions{MaxTrials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 { // 1 good + 1 crash
		t.Fatalf("replayed = %d", n)
	}
}

func TestWarmStartSimilarityWeighting(t *testing.T) {
	s := space.MustNew(space.Float("x", 0, 1))
	target := map[string]float64{"rate": 0}
	near := mkRecord(map[string]float64{"rate": 0}, Trial{space.Config{"x": 0.1}, 0})
	far := mkRecord(map[string]float64{"rate": 10}, Trial{space.Config{"x": 0.9}, 0})
	o := optimizer.NewRandom(s, rand.New(rand.NewSource(4)))
	_, err := WarmStart(o, []Record{near, far}, WarmStartOptions{
		SimilarityWeighting: true,
		TargetWorkload:      target,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Far sample's score (0, the best) should be shrunk toward the mean (0
	// here as both are 0) — construct asymmetry instead:
	o2 := optimizer.NewRandom(s, rand.New(rand.NewSource(5)))
	near2 := mkRecord(map[string]float64{"rate": 0}, Trial{space.Config{"x": 0.1}, 10})
	far2 := mkRecord(map[string]float64{"rate": 10}, Trial{space.Config{"x": 0.9}, 0})
	if _, err := WarmStart(o2, []Record{near2, far2}, WarmStartOptions{
		SimilarityWeighting: true,
		TargetWorkload:      target,
	}); err != nil {
		t.Fatal(err)
	}
	var farScore float64
	for _, obs := range o2.History() {
		if obs.Config.Float("x") == 0.9 {
			farScore = obs.Value
		}
	}
	// Raw value 0, mean 5: the far sample should be pulled well toward 5.
	if farScore < 2 {
		t.Fatalf("far score = %v, want shrunk toward mean", farScore)
	}
}

func TestWarmStartEmpty(t *testing.T) {
	s := space.MustNew(space.Float("x", 0, 1))
	o := optimizer.NewRandom(s, rand.New(rand.NewSource(6)))
	n, err := WarmStart(o, nil, WarmStartOptions{})
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestWarmStartAllCrashes(t *testing.T) {
	s := space.MustNew(space.Float("x", 0, 1))
	rec := mkRecord(nil, Trial{space.Config{"x": 0.5}, CrashValue})
	o := optimizer.NewRandom(s, rand.New(rand.NewSource(7)))
	n, err := WarmStart(o, []Record{rec}, WarmStartOptions{})
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	_, v, _ := o.Best()
	if math.IsInf(v, 0) {
		t.Fatal("imputed crash score should be finite")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")
	var st Store
	st.Add(mkRecord(map[string]float64{"rate": 2},
		Trial{space.Config{"x": 0.25}, 1.5},
	))
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 {
		t.Fatalf("len = %d", loaded.Len())
	}
	r := loaded.Records()[0]
	if r.Workload["rate"] != 2 || r.Trials[0].Value != 1.5 {
		t.Fatalf("record = %+v", r)
	}
	if r.Trials[0].Config.Float("x") != 0.25 {
		t.Fatalf("config = %v", r.Trials[0].Config)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestWarmStartSpeedsUpTuning(t *testing.T) {
	// End-to-end: warm-started BO-free random search reaches a better best
	// with tiny budgets because the prior best is replayed.
	s := space.MustNew(space.Float("x", 0, 1))
	f := func(c space.Config) float64 { return math.Abs(c.Float("x") - 0.42) }
	prior := mkRecord(map[string]float64{"w": 1},
		Trial{space.Config{"x": 0.43}, f(space.Config{"x": 0.43})},
	)
	warm := optimizer.NewRandom(s, rand.New(rand.NewSource(8)))
	if _, err := WarmStart(warm, []Record{prior}, WarmStartOptions{}); err != nil {
		t.Fatal(err)
	}
	cold := optimizer.NewRandom(s, rand.New(rand.NewSource(8)))
	_, wBest, _ := optimizer.Run(warm, f, 3)
	_, cBest, _ := optimizer.Run(cold, f, 3)
	if wBest > cBest {
		t.Fatalf("warm best %v should be <= cold best %v", wBest, cBest)
	}
}

func TestTopConfigs(t *testing.T) {
	recs := []Record{
		mkRecord(nil,
			Trial{space.Config{"x": 0.1}, 3},
			Trial{space.Config{"x": 0.2}, 1},
			Trial{space.Config{"x": 0.9}, CrashValue}, // excluded
		),
		mkRecord(nil,
			Trial{space.Config{"x": 0.3}, 2},
			Trial{space.Config{"x": 0.2}, 1.5}, // duplicate config, worse
		),
	}
	top := TopConfigs(recs, 2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Float("x") != 0.2 || top[1].Float("x") != 0.3 {
		t.Fatalf("order = %v", top)
	}
	// k larger than available: all finite distinct configs.
	all := TopConfigs(recs, 10)
	if len(all) != 3 {
		t.Fatalf("all = %v", all)
	}
	if len(TopConfigs(nil, 3)) != 0 {
		t.Fatal("empty records should return none")
	}
}
