package moo

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"autotune/internal/bo"
	"autotune/internal/gp"
	"autotune/internal/space"
)

// ErrNoObjectives is returned when an optimizer is built with < 2 objectives.
var ErrNoObjectives = errors.New("moo: need at least 2 objectives")

// MultiOptimizer is the multi-objective analogue of optimizer.Optimizer.
type MultiOptimizer interface {
	// Suggest proposes the next configuration to evaluate.
	Suggest() (space.Config, error)
	// ObserveMulti reports all objective values (minimized) for a config.
	ObserveMulti(cfg space.Config, objs []float64) error
	// Front returns the current nondominated set.
	Front() []FrontEntry
	// Name identifies the algorithm.
	Name() string
}

// FrontEntry is one nondominated configuration with its objectives.
type FrontEntry struct {
	Config     space.Config
	Objectives []float64
}

// multiHistory is the shared observation store.
type multiHistory struct {
	cfgs []space.Config
	objs [][]float64
	k    int
}

func (h *multiHistory) observe(cfg space.Config, objs []float64) error {
	if len(objs) != h.k {
		return fmt.Errorf("moo: got %d objectives, want %d", len(objs), h.k)
	}
	h.cfgs = append(h.cfgs, cfg.Clone())
	h.objs = append(h.objs, append([]float64(nil), objs...))
	return nil
}

func (h *multiHistory) front() []FrontEntry {
	idx := ParetoFront(h.objs)
	out := make([]FrontEntry, 0, len(idx))
	for _, i := range idx {
		out = append(out, FrontEntry{
			Config:     h.cfgs[i].Clone(),
			Objectives: append([]float64(nil), h.objs[i]...),
		})
	}
	return out
}

// normalizedObjs returns history objectives min-max normalized per
// objective so that scalarizations are scale free.
func (h *multiHistory) normalizedObjs() [][]float64 {
	lo := make([]float64, h.k)
	hi := make([]float64, h.k)
	for j := 0; j < h.k; j++ {
		lo[j], hi[j] = math.Inf(1), math.Inf(-1)
	}
	for _, o := range h.objs {
		for j, v := range o {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	out := make([][]float64, len(h.objs))
	for i, o := range h.objs {
		row := make([]float64, h.k)
		for j, v := range o {
			span := hi[j] - lo[j]
			if span <= 0 {
				row[j] = 0
			} else {
				row[j] = (v - lo[j]) / span
			}
		}
		out[i] = row
	}
	return out
}

// ParEGO (Knowles 2006) scalarizes the objectives with a freshly drawn
// augmented-Chebyshev weight vector at every suggestion and runs one step
// of GP-based expected improvement on the scalarized history.
type ParEGO struct {
	hist  multiHistory
	space *space.Space
	rng   *rand.Rand

	// InitSamples random warm-up suggestions (default 6).
	InitSamples int
	// Candidates for acquisition maximization (default 512).
	Candidates int
	// Rho is the Chebyshev augmentation (default 0.05).
	Rho float64
}

// NewParEGO returns a ParEGO optimizer for k objectives.
func NewParEGO(s *space.Space, k int, rng *rand.Rand) (*ParEGO, error) {
	if k < 2 {
		return nil, ErrNoObjectives
	}
	return &ParEGO{
		hist:        multiHistory{k: k},
		space:       s,
		rng:         rng,
		InitSamples: 6,
		Candidates:  512,
		Rho:         0.05,
	}, nil
}

// Name implements MultiOptimizer.
func (p *ParEGO) Name() string { return "parego" }

// ObserveMulti implements MultiOptimizer.
func (p *ParEGO) ObserveMulti(cfg space.Config, objs []float64) error {
	return p.hist.observe(cfg, objs)
}

// Front implements MultiOptimizer.
func (p *ParEGO) Front() []FrontEntry { return p.hist.front() }

// N returns the number of observations.
func (p *ParEGO) N() int { return len(p.hist.cfgs) }

// Suggest implements MultiOptimizer.
func (p *ParEGO) Suggest() (space.Config, error) {
	if len(p.hist.cfgs) == 0 {
		return p.space.Default(), nil
	}
	if len(p.hist.cfgs) < p.InitSamples {
		return p.space.Sample(p.rng), nil
	}
	// Draw a random weight vector on the simplex.
	w := make([]float64, p.hist.k)
	sum := 0.0
	for i := range w {
		w[i] = p.rng.ExpFloat64()
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	scal := Chebyshev{Weights: w, Rho: p.Rho}
	norm := p.hist.normalizedObjs()
	ys := make([]float64, len(norm))
	xs := make([][]float64, len(norm))
	best := math.Inf(1)
	for i, o := range norm {
		ys[i] = scal.Scalarize(o)
		xs[i] = p.space.EncodeOneHot(p.hist.cfgs[i])
		if ys[i] < best {
			best = ys[i]
		}
	}
	model := gp.New(gp.Scale(1, gp.NewMatern(2.5, 0.2)), 1e-6)
	if err := model.Fit(xs, ys); err != nil {
		return p.space.Sample(p.rng), nil
	}
	acq := bo.NewEI()
	var top space.Config
	topScore := math.Inf(-1)
	for i := 0; i < p.Candidates; i++ {
		cfg := p.space.Sample(p.rng)
		mu, v, err := model.Predict(p.space.EncodeOneHot(cfg))
		if err != nil {
			continue
		}
		if sc := acq.Score(mu, math.Sqrt(v), best); sc > topScore {
			top, topScore = cfg, sc
		}
	}
	if top == nil {
		top = p.space.Sample(p.rng)
	}
	return top, nil
}

// NSGAII is the elitist nondominated-sorting genetic algorithm, buffering
// one generation at a time like internal/genetic.
type NSGAII struct {
	hist  multiHistory
	space *space.Space
	rng   *rand.Rand

	// Population size (default 24).
	Population int
	// MutationRate per gene (default 0.15); MutationScale in unit-cube
	// units (default 0.1); CrossoverRate per pair (default 0.9).
	MutationRate, MutationScale, CrossoverRate float64

	pop     []space.Config       // current generation, awaiting evaluation
	vals    map[string][]float64 // evaluated objectives by config key this gen
	nextIdx int
	gen     int
	parents []FrontEntry // survivors from the previous selection
}

// NewNSGAII returns an NSGA-II optimizer for k objectives.
func NewNSGAII(s *space.Space, k int, rng *rand.Rand) (*NSGAII, error) {
	if k < 2 {
		return nil, ErrNoObjectives
	}
	n := &NSGAII{
		hist:          multiHistory{k: k},
		space:         s,
		rng:           rng,
		Population:    24,
		MutationRate:  0.15,
		MutationScale: 0.1,
		CrossoverRate: 0.9,
	}
	n.seedPopulation()
	return n, nil
}

func (n *NSGAII) seedPopulation() {
	n.pop = n.pop[:0]
	n.pop = append(n.pop, n.space.Default())
	for len(n.pop) < n.Population {
		n.pop = append(n.pop, n.space.Sample(n.rng))
	}
	n.vals = make(map[string][]float64, n.Population)
	n.nextIdx = 0
}

// Name implements MultiOptimizer.
func (n *NSGAII) Name() string { return "nsga2" }

// Front implements MultiOptimizer.
func (n *NSGAII) Front() []FrontEntry { return n.hist.front() }

// Generation returns completed generations.
func (n *NSGAII) Generation() int { return n.gen }

// Suggest implements MultiOptimizer.
func (n *NSGAII) Suggest() (space.Config, error) {
	for tries := 0; tries < len(n.pop); tries++ {
		cfg := n.pop[n.nextIdx%len(n.pop)]
		n.nextIdx++
		if _, done := n.vals[cfg.Key()]; !done {
			return cfg.Clone(), nil
		}
	}
	return n.space.Sample(n.rng), nil
}

// ObserveMulti implements MultiOptimizer; a fully evaluated generation
// triggers selection and breeding.
func (n *NSGAII) ObserveMulti(cfg space.Config, objs []float64) error {
	if err := n.hist.observe(cfg, objs); err != nil {
		return err
	}
	key := cfg.Key()
	inPop := false
	for _, c := range n.pop {
		if c.Key() == key {
			inPop = true
			break
		}
	}
	if inPop {
		n.vals[key] = append([]float64(nil), objs...)
	}
	if len(n.vals) >= len(dedupKeys(n.pop)) {
		n.evolve()
	}
	return nil
}

func dedupKeys(cfgs []space.Config) map[string]bool {
	m := make(map[string]bool, len(cfgs))
	for _, c := range cfgs {
		m[c.Key()] = true
	}
	return m
}

// evolve performs nondominated sorting + crowding selection over the
// current generation plus previous parents, then breeds the next one.
func (n *NSGAII) evolve() {
	// Candidate pool: this generation's evaluated configs + prior parents.
	var cfgs []space.Config
	var objs [][]float64
	seen := map[string]bool{}
	add := func(c space.Config, o []float64) {
		k := c.Key()
		if seen[k] {
			return
		}
		seen[k] = true
		cfgs = append(cfgs, c)
		objs = append(objs, o)
	}
	for _, c := range n.pop {
		if o, ok := n.vals[c.Key()]; ok {
			add(c, o)
		}
	}
	for _, p := range n.parents {
		add(p.Config, p.Objectives)
	}
	// Select Population survivors by front rank then crowding.
	fronts := NonDominatedSort(objs)
	var survivors []FrontEntry
	for _, front := range fronts {
		if len(survivors)+len(front) <= n.Population {
			for _, i := range front {
				survivors = append(survivors, FrontEntry{cfgs[i], objs[i]})
			}
			continue
		}
		crowd := CrowdingDistance(objs, front)
		order := make([]int, len(front))
		for i := range order {
			order[i] = i
		}
		// Descending crowding distance.
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && crowd[order[j]] > crowd[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		for _, oi := range order {
			if len(survivors) >= n.Population {
				break
			}
			i := front[oi]
			survivors = append(survivors, FrontEntry{cfgs[i], objs[i]})
		}
		break
	}
	n.parents = survivors
	// Breed next generation by binary tournaments on rank proxy (index
	// order already respects rank) with crossover + mutation.
	next := make([]space.Config, 0, n.Population)
	for len(next) < n.Population {
		a := survivors[n.tournamentIdx(len(survivors))]
		b := survivors[n.tournamentIdx(len(survivors))]
		child := n.crossover(a.Config, b.Config)
		next = append(next, n.mutate(child))
	}
	n.pop = next
	n.vals = make(map[string][]float64, n.Population)
	n.nextIdx = 0
	n.gen++
}

func (n *NSGAII) tournamentIdx(size int) int {
	a, b := n.rng.Intn(size), n.rng.Intn(size)
	if a < b { // lower index = better rank/crowding position
		return a
	}
	return b
}

func (n *NSGAII) crossover(a, b space.Config) space.Config {
	if n.rng.Float64() > n.CrossoverRate {
		return a.Clone()
	}
	child := make(space.Config, len(a))
	for _, p := range n.space.Params() {
		if p.IsNumeric() {
			t := n.rng.Float64()
			v := a.Float(p.Name)*t + b.Float(p.Name)*(1-t)
			if p.Kind == space.KindInt {
				child[p.Name] = int64(math.Round(v))
			} else {
				child[p.Name] = v
			}
		} else if n.rng.Intn(2) == 0 {
			child[p.Name] = a[p.Name]
		} else {
			child[p.Name] = b[p.Name]
		}
	}
	return n.space.Clip(child)
}

func (n *NSGAII) mutate(cfg space.Config) space.Config {
	out := cfg.Clone()
	for _, p := range n.space.Params() {
		if n.rng.Float64() >= n.MutationRate {
			continue
		}
		nb := n.space.Neighbor(out, n.MutationScale, n.rng)
		out[p.Name] = nb[p.Name]
	}
	return n.space.Clip(out)
}

// RandomMulti is the random-search baseline for multi-objective studies.
type RandomMulti struct {
	hist  multiHistory
	space *space.Space
	rng   *rand.Rand
}

// NewRandomMulti returns a random multi-objective sampler for k objectives.
func NewRandomMulti(s *space.Space, k int, rng *rand.Rand) (*RandomMulti, error) {
	if k < 2 {
		return nil, ErrNoObjectives
	}
	return &RandomMulti{hist: multiHistory{k: k}, space: s, rng: rng}, nil
}

// Name implements MultiOptimizer.
func (r *RandomMulti) Name() string { return "random-multi" }

// Suggest implements MultiOptimizer.
func (r *RandomMulti) Suggest() (space.Config, error) { return r.space.Sample(r.rng), nil }

// ObserveMulti implements MultiOptimizer.
func (r *RandomMulti) ObserveMulti(cfg space.Config, objs []float64) error {
	return r.hist.observe(cfg, objs)
}

// Front implements MultiOptimizer.
func (r *RandomMulti) Front() []FrontEntry { return r.hist.front() }

// RunMulti drives a MultiOptimizer for budget evaluations of f.
func RunMulti(m MultiOptimizer, f func(space.Config) []float64, budget int) error {
	for i := 0; i < budget; i++ {
		cfg, err := m.Suggest()
		if err != nil {
			return fmt.Errorf("moo: suggest %d: %w", i, err)
		}
		if err := m.ObserveMulti(cfg, f(cfg)); err != nil {
			return fmt.Errorf("moo: observe %d: %w", i, err)
		}
	}
	return nil
}
