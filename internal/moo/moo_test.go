package moo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"autotune/internal/space"
)

func TestDominates(t *testing.T) {
	if !Dominates([]float64{1, 1}, []float64{2, 2}) {
		t.Fatal("strict dominance failed")
	}
	if !Dominates([]float64{1, 2}, []float64{2, 2}) {
		t.Fatal("weak+strict dominance failed")
	}
	if Dominates([]float64{1, 3}, []float64{2, 2}) {
		t.Fatal("incomparable should not dominate")
	}
	if Dominates([]float64{2, 2}, []float64{2, 2}) {
		t.Fatal("equal should not dominate")
	}
}

func TestParetoFront(t *testing.T) {
	objs := [][]float64{
		{1, 5}, // front
		{2, 4}, // front
		{3, 3}, // front
		{3, 5}, // dominated by {1,5}? no: {1,5} has 1<3, 5==5 -> dominates
		{5, 1}, // front
		{4, 4}, // dominated by {3,3}
	}
	front := ParetoFront(objs)
	want := map[int]bool{0: true, 1: true, 2: true, 4: true}
	if len(front) != 4 {
		t.Fatalf("front = %v", front)
	}
	for _, i := range front {
		if !want[i] {
			t.Fatalf("unexpected front member %d", i)
		}
	}
}

func TestNonDominatedSortLayers(t *testing.T) {
	objs := [][]float64{
		{1, 1}, // layer 0 (dominates all)
		{2, 2}, // layer 1
		{3, 3}, // layer 2
		{2, 3}, // layer 1? dominated by {2,2} -> layer 2? {2,2} dominates {2,3}. And {3,3} vs {2,3}: {2,3} dominates {3,3}.
	}
	fronts := NonDominatedSort(objs)
	if len(fronts[0]) != 1 || fronts[0][0] != 0 {
		t.Fatalf("front0 = %v", fronts[0])
	}
	// {2,2} is only dominated by {1,1} -> front 1.
	found := false
	for _, i := range fronts[1] {
		if i == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("fronts = %v", fronts)
	}
	// Total coverage.
	total := 0
	for _, f := range fronts {
		total += len(f)
	}
	if total != 4 {
		t.Fatalf("sort lost points: %v", fronts)
	}
}

func TestCrowdingDistance(t *testing.T) {
	objs := [][]float64{{0, 4}, {1, 2}, {2, 1}, {4, 0}}
	front := []int{0, 1, 2, 3}
	d := CrowdingDistance(objs, front)
	if !math.IsInf(d[0], 1) || !math.IsInf(d[3], 1) {
		t.Fatalf("boundaries should be Inf: %v", d)
	}
	if math.IsInf(d[1], 1) || math.IsInf(d[2], 1) {
		t.Fatalf("interior should be finite: %v", d)
	}
	if d[1] <= 0 || d[2] <= 0 {
		t.Fatalf("interior distances should be positive: %v", d)
	}
	// Small fronts: all Inf.
	d2 := CrowdingDistance(objs, []int{0, 1})
	if !math.IsInf(d2[0], 1) || !math.IsInf(d2[1], 1) {
		t.Fatal("two-point front should be all Inf")
	}
}

func TestHypervolume2D(t *testing.T) {
	ref := [2]float64{1, 1}
	// Single point at origin dominates the whole unit square.
	if hv := Hypervolume2D([][]float64{{0, 0}}, ref); math.Abs(hv-1) > 1e-12 {
		t.Fatalf("hv = %v", hv)
	}
	// Two points.
	hv := Hypervolume2D([][]float64{{0.5, 0}, {0, 0.5}}, ref)
	want := 0.5*1 + 0.5*0.5 // (1-0)*(1-0.5) for {0,0.5} then (1-0.5)*(0.5-0) for {0.5,0}
	if math.Abs(hv-want) > 1e-12 {
		t.Fatalf("hv = %v, want %v", hv, want)
	}
	// Points outside the reference contribute nothing.
	if hv := Hypervolume2D([][]float64{{2, 2}}, ref); hv != 0 {
		t.Fatalf("hv = %v", hv)
	}
	// Dominated points add nothing.
	a := Hypervolume2D([][]float64{{0.2, 0.2}}, ref)
	b := Hypervolume2D([][]float64{{0.2, 0.2}, {0.5, 0.5}}, ref)
	if a != b {
		t.Fatal("dominated point changed hypervolume")
	}
}

func TestScalarizers(t *testing.T) {
	lin := Linear{Weights: []float64{0.3, 0.7}}
	if got := lin.Scalarize([]float64{1, 2}); math.Abs(got-1.7) > 1e-12 {
		t.Fatalf("linear = %v", got)
	}
	ch := Chebyshev{Weights: []float64{0.5, 0.5}, Rho: 0.05}
	got := ch.Scalarize([]float64{2, 1})
	want := 1.0 + 0.05*1.5
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("chebyshev = %v, want %v", got, want)
	}
	if lin.Name() != "linear" || ch.Name() != "chebyshev" {
		t.Fatal("names")
	}
}

// biObjective: f1 = x, f2 = 1 - sqrt(x) on [0,1] — classic convex front —
// plus a second dim y that penalizes both objectives away from 0.5.
func biObjective(c space.Config) []float64 {
	x := c.Float("x")
	y := c.Float("y")
	pen := (y - 0.5) * (y - 0.5)
	return []float64{x + pen, 1 - math.Sqrt(x) + pen}
}

func biSpace() *space.Space {
	return space.MustNew(space.Float("x", 0, 1), space.Float("y", 0, 1))
}

func TestParEGOFindsFront(t *testing.T) {
	s := biSpace()
	p, err := NewParEGO(s, 2, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := RunMulti(p, biObjective, 60); err != nil {
		t.Fatal(err)
	}
	front := p.Front()
	if len(front) < 5 {
		t.Fatalf("front size = %d", len(front))
	}
	var objs [][]float64
	for _, e := range front {
		objs = append(objs, e.Objectives)
	}
	hv := Hypervolume2D(objs, [2]float64{1.2, 1.2})
	if hv < 0.7 {
		t.Fatalf("ParEGO hypervolume = %v", hv)
	}
	if p.N() != 60 || p.Name() != "parego" {
		t.Fatal("metadata")
	}
}

func TestNSGAIIFindsFront(t *testing.T) {
	s := biSpace()
	n, err := NewNSGAII(s, 2, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if err := RunMulti(n, biObjective, 300); err != nil {
		t.Fatal(err)
	}
	if n.Generation() < 5 {
		t.Fatalf("generations = %d", n.Generation())
	}
	var objs [][]float64
	for _, e := range n.Front() {
		objs = append(objs, e.Objectives)
	}
	hv := Hypervolume2D(objs, [2]float64{1.2, 1.2})
	if hv < 0.7 {
		t.Fatalf("NSGA-II hypervolume = %v", hv)
	}
}

func TestMOOBeatsRandomBaseline(t *testing.T) {
	s := biSpace()
	budget := 90
	hvOf := func(m MultiOptimizer) float64 {
		if err := RunMulti(m, biObjective, budget); err != nil {
			t.Fatal(err)
		}
		var objs [][]float64
		for _, e := range m.Front() {
			objs = append(objs, e.Objectives)
		}
		return Hypervolume2D(objs, [2]float64{1.2, 1.2})
	}
	var pSum, rSum float64
	for i := 0; i < 3; i++ {
		p, _ := NewParEGO(s, 2, rand.New(rand.NewSource(int64(40+i))))
		r, _ := NewRandomMulti(s, 2, rand.New(rand.NewSource(int64(40+i))))
		pSum += hvOf(p)
		rSum += hvOf(r)
	}
	if pSum < rSum*0.98 { // ParEGO should match or beat random
		t.Fatalf("ParEGO mean HV %v vs random %v", pSum/3, rSum/3)
	}
}

func TestObserveWrongArity(t *testing.T) {
	s := biSpace()
	p, _ := NewParEGO(s, 2, rand.New(rand.NewSource(3)))
	if err := p.ObserveMulti(s.Default(), []float64{1}); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestConstructorsRejectSingleObjective(t *testing.T) {
	s := biSpace()
	rng := rand.New(rand.NewSource(4))
	if _, err := NewParEGO(s, 1, rng); err == nil {
		t.Fatal("parego should reject k=1")
	}
	if _, err := NewNSGAII(s, 1, rng); err == nil {
		t.Fatal("nsga2 should reject k=1")
	}
	if _, err := NewRandomMulti(s, 1, rng); err == nil {
		t.Fatal("random should reject k=1")
	}
}

// Property: the Pareto front is mutually non-dominating and dominates (or
// ties with) everything outside it.
func TestParetoFrontProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		objs := make([][]float64, n)
		for i := range objs {
			objs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		front := ParetoFront(objs)
		if len(front) == 0 {
			return false
		}
		inFront := map[int]bool{}
		for _, i := range front {
			inFront[i] = true
		}
		// Mutual non-domination within the front.
		for _, i := range front {
			for _, j := range front {
				if i != j && Dominates(objs[i], objs[j]) {
					return false
				}
			}
		}
		// Every non-front point is dominated by at least one front point.
		for i := range objs {
			if inFront[i] {
				continue
			}
			dominated := false
			for _, j := range front {
				if Dominates(objs[j], objs[i]) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: NonDominatedSort layer 0 equals ParetoFront, and layers
// partition the index set.
func TestNonDominatedSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		objs := make([][]float64, n)
		for i := range objs {
			objs[i] = []float64{rng.Float64(), rng.Float64()}
		}
		fronts := NonDominatedSort(objs)
		seen := map[int]bool{}
		total := 0
		for _, layer := range fronts {
			for _, i := range layer {
				if seen[i] {
					return false
				}
				seen[i] = true
				total++
			}
		}
		if total != n {
			return false
		}
		// Layer 0 must match ParetoFront as a set.
		pf := map[int]bool{}
		for _, i := range ParetoFront(objs) {
			pf[i] = true
		}
		if len(pf) != len(fronts[0]) {
			return false
		}
		for _, i := range fronts[0] {
			if !pf[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: hypervolume is monotone — adding a point never decreases it.
func TestHypervolumeMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := [2]float64{1, 1}
		var objs [][]float64
		prev := 0.0
		for i := 0; i < 10; i++ {
			objs = append(objs, []float64{rng.Float64(), rng.Float64()})
			hv := Hypervolume2D(objs, ref)
			if hv < prev-1e-12 {
				return false
			}
			prev = hv
		}
		return prev <= 1.0+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
