// Package moo implements multi-objective optimization (tutorial slide 58):
// Pareto-dominance utilities (fast nondominated sort, crowding distance,
// 2-D hypervolume), scalarization (linear and augmented Chebyshev), the
// ParEGO algorithm (random Chebyshev scalarization + a GP surrogate per
// step), and an NSGA-II baseline. All objectives are minimized.
package moo

import (
	"math"
	"sort"
)

// Dominates reports whether objective vector a Pareto-dominates b: a is no
// worse in every objective and strictly better in at least one.
func Dominates(a, b []float64) bool {
	strictly := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strictly = true
		}
	}
	return strictly
}

// ParetoFront returns the indices of nondominated points among objs.
func ParetoFront(objs [][]float64) []int {
	var front []int
	for i := range objs {
		dominated := false
		for j := range objs {
			if i != j && Dominates(objs[j], objs[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

// NonDominatedSort partitions indices 0..n-1 into successive Pareto fronts
// (front 0 = nondominated), the core of NSGA-II.
func NonDominatedSort(objs [][]float64) [][]int {
	n := len(objs)
	dominatedBy := make([][]int, n) // dominatedBy[i] = points i dominates
	domCount := make([]int, n)      // number of points dominating i
	var fronts [][]int
	var first []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if Dominates(objs[i], objs[j]) {
				dominatedBy[i] = append(dominatedBy[i], j)
			} else if Dominates(objs[j], objs[i]) {
				domCount[i]++
			}
		}
		if domCount[i] == 0 {
			first = append(first, i)
		}
	}
	fronts = append(fronts, first)
	for len(fronts[len(fronts)-1]) > 0 {
		var next []int
		for _, i := range fronts[len(fronts)-1] {
			for _, j := range dominatedBy[i] {
				domCount[j]--
				if domCount[j] == 0 {
					next = append(next, j)
				}
			}
		}
		if len(next) == 0 {
			break
		}
		fronts = append(fronts, next)
	}
	return fronts
}

// CrowdingDistance returns NSGA-II's crowding distance for each index in
// front (aligned with front's order). Boundary points get +Inf.
func CrowdingDistance(objs [][]float64, front []int) []float64 {
	n := len(front)
	dist := make([]float64, n)
	if n == 0 {
		return dist
	}
	if n <= 2 {
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		return dist
	}
	m := len(objs[front[0]])
	order := make([]int, n) // positions into front
	for obj := 0; obj < m; obj++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return objs[front[order[a]]][obj] < objs[front[order[b]]][obj]
		})
		lo := objs[front[order[0]]][obj]
		hi := objs[front[order[n-1]]][obj]
		dist[order[0]] = math.Inf(1)
		dist[order[n-1]] = math.Inf(1)
		span := hi - lo
		if span == 0 {
			continue
		}
		for k := 1; k < n-1; k++ {
			prev := objs[front[order[k-1]]][obj]
			next := objs[front[order[k+1]]][obj]
			dist[order[k]] += (next - prev) / span
		}
	}
	return dist
}

// Hypervolume2D computes the exact hypervolume dominated by the given 2-D
// objective vectors with respect to reference point ref (both objectives
// minimized; points not dominating ref contribute nothing).
func Hypervolume2D(objs [][]float64, ref [2]float64) float64 {
	var pts [][2]float64
	for _, o := range objs {
		if len(o) != 2 {
			continue
		}
		if o[0] < ref[0] && o[1] < ref[1] {
			pts = append(pts, [2]float64{o[0], o[1]})
		}
	}
	if len(pts) == 0 {
		return 0
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i][0] != pts[j][0] {
			return pts[i][0] < pts[j][0]
		}
		return pts[i][1] < pts[j][1]
	})
	hv := 0.0
	bestY := ref[1]
	for _, p := range pts {
		if p[1] < bestY {
			hv += (ref[0] - p[0]) * (bestY - p[1])
			bestY = p[1]
		}
	}
	return hv
}

// Scalarizer reduces an objective vector to a single value to minimize.
type Scalarizer interface {
	Scalarize(objs []float64) float64
	Name() string
}

// Linear is the weighted sum scalarization Σ w_i f_i. Weights should be
// positive; it cannot reach non-convex parts of the Pareto front.
type Linear struct{ Weights []float64 }

// Scalarize implements Scalarizer.
func (l Linear) Scalarize(objs []float64) float64 {
	s := 0.0
	for i, w := range l.Weights {
		s += w * objs[i]
	}
	return s
}

// Name implements Scalarizer.
func (l Linear) Name() string { return "linear" }

// Chebyshev is the augmented Chebyshev scalarization used by ParEGO:
// max_i(w_i f_i) + rho * Σ w_i f_i. It can reach non-convex fronts.
type Chebyshev struct {
	Weights []float64
	// Rho is the augmentation coefficient (ParEGO uses 0.05).
	Rho float64
}

// Scalarize implements Scalarizer.
func (c Chebyshev) Scalarize(objs []float64) float64 {
	maxTerm := math.Inf(-1)
	sum := 0.0
	for i, w := range c.Weights {
		t := w * objs[i]
		if t > maxTerm {
			maxTerm = t
		}
		sum += t
	}
	return maxTerm + c.Rho*sum
}

// Name implements Scalarizer.
func (c Chebyshev) Name() string { return "chebyshev" }
