// Package optimizer defines the framework's optimizer contract — the
// suggest/observe loop from the tutorial's "optimizer as a black box" slide —
// and implements the classic search strategies: random search, grid search,
// simulated annealing, and greedy coordinate descent. Model-guided
// optimizers (Bayesian optimization, SMAC, CMA-ES, ...) live in sibling
// packages and satisfy the same interface.
package optimizer

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"autotune/internal/space"
)

// Optimizer is the sequential black-box optimization contract. All
// objectives are minimized; callers negate throughput-style metrics.
//
// The protocol is: Suggest a configuration, evaluate it externally, Observe
// the result, repeat. Implementations may tolerate out-of-order or missing
// observations unless documented otherwise.
type Optimizer interface {
	// Suggest proposes the next configuration to evaluate.
	Suggest() (space.Config, error)
	// Observe reports the measured objective for a configuration.
	Observe(cfg space.Config, value float64) error
	// Best returns the incumbent (best observed) configuration and value;
	// ok is false before any observation.
	Best() (cfg space.Config, value float64, ok bool)
	// Name identifies the algorithm for reports.
	Name() string
}

// BatchSuggester is implemented by optimizers that can propose several
// configurations at once for parallel evaluation.
type BatchSuggester interface {
	// SuggestN proposes up to n configurations (it may return fewer, e.g.
	// when a grid is nearly exhausted).
	SuggestN(n int) ([]space.Config, error)
}

// ErrExhausted is returned by Suggest when a finite strategy (e.g. grid
// search) has no configurations left.
var ErrExhausted = errors.New("optimizer: search exhausted")

// Observation is one evaluated configuration.
type Observation struct {
	Config space.Config
	Value  float64
}

// Recorder tracks observations and the incumbent. Embed it to satisfy the
// Observe/Best half of the Optimizer interface.
type Recorder struct {
	history   []Observation
	bestCfg   space.Config
	bestValue float64
	hasBest   bool
}

// Observe implements Optimizer.
func (r *Recorder) Observe(cfg space.Config, value float64) error {
	r.history = append(r.history, Observation{Config: cfg.Clone(), Value: value})
	if !r.hasBest || value < r.bestValue {
		r.bestCfg = cfg.Clone()
		r.bestValue = value
		r.hasBest = true
	}
	return nil
}

// Best implements Optimizer.
func (r *Recorder) Best() (space.Config, float64, bool) {
	if !r.hasBest {
		return nil, math.Inf(1), false
	}
	return r.bestCfg.Clone(), r.bestValue, true
}

// History returns all observations in arrival order. The slice is live;
// callers must not modify it.
func (r *Recorder) History() []Observation { return r.history }

// N returns the number of observations so far.
func (r *Recorder) N() int { return len(r.history) }

// Random is uniform random search: each Suggest draws an independent sample
// from the space (log-uniform on log-scaled parameters).
type Random struct {
	Recorder
	space *space.Space
	rng   *rand.Rand
}

// NewRandom returns a random-search optimizer over s.
func NewRandom(s *space.Space, rng *rand.Rand) *Random {
	return &Random{space: s, rng: rng}
}

// Suggest implements Optimizer.
func (o *Random) Suggest() (space.Config, error) {
	return o.space.Sample(o.rng), nil
}

// SuggestN implements BatchSuggester.
func (o *Random) SuggestN(n int) ([]space.Config, error) {
	return o.space.SampleN(o.rng, n), nil
}

// Name implements Optimizer.
func (o *Random) Name() string { return "random" }

// Grid is deterministic grid search over a fixed budgeted grid; Suggest
// returns ErrExhausted once every point has been proposed.
type Grid struct {
	Recorder
	points []space.Config
	next   int
}

// NewGrid returns a grid-search optimizer whose grid holds at most roughly
// `budget` points (see space.GridBudget).
func NewGrid(s *space.Space, budget int) *Grid {
	return &Grid{points: s.GridBudget(budget)}
}

// NewGridLevels returns grid search with exactly `levels` points per
// numeric parameter.
func NewGridLevels(s *space.Space, levels int) *Grid {
	return &Grid{points: s.Grid(levels)}
}

// Suggest implements Optimizer.
func (o *Grid) Suggest() (space.Config, error) {
	if o.next >= len(o.points) {
		return nil, ErrExhausted
	}
	cfg := o.points[o.next]
	o.next++
	return cfg.Clone(), nil
}

// SuggestN implements BatchSuggester.
func (o *Grid) SuggestN(n int) ([]space.Config, error) {
	var out []space.Config
	for i := 0; i < n; i++ {
		cfg, err := o.Suggest()
		if errors.Is(err, ErrExhausted) {
			break
		}
		if err != nil {
			return nil, err
		}
		out = append(out, cfg)
	}
	if len(out) == 0 {
		return nil, ErrExhausted
	}
	return out, nil
}

// Size returns the total number of grid points.
func (o *Grid) Size() int { return len(o.points) }

// Name implements Optimizer.
func (o *Grid) Name() string { return "grid" }

// Anneal is simulated annealing: a random walk over space neighbourhoods
// that always accepts improvements and accepts regressions with probability
// exp(-Δ/T), with geometrically cooling temperature T.
type Anneal struct {
	Recorder
	space *space.Space
	rng   *rand.Rand

	// Temp0 is the initial temperature in objective units (default 1).
	Temp0 float64
	// Cooling is the per-step temperature multiplier (default 0.95).
	Cooling float64
	// StepScale is the neighbourhood size in unit-cube units (default 0.1).
	StepScale float64

	cur     space.Config
	curVal  float64
	hasCur  bool
	pending space.Config
	step    int
}

// NewAnneal returns a simulated-annealing optimizer over s with default
// schedule parameters.
func NewAnneal(s *space.Space, rng *rand.Rand) *Anneal {
	return &Anneal{space: s, rng: rng, Temp0: 1, Cooling: 0.95, StepScale: 0.1}
}

// Suggest implements Optimizer. The first suggestion is the space default;
// later ones perturb the current state.
func (o *Anneal) Suggest() (space.Config, error) {
	if !o.hasCur {
		o.pending = o.space.Default()
	} else {
		o.pending = o.space.Neighbor(o.cur, o.StepScale, o.rng)
	}
	return o.pending.Clone(), nil
}

// Observe implements Optimizer with Metropolis acceptance.
func (o *Anneal) Observe(cfg space.Config, value float64) error {
	if err := o.Recorder.Observe(cfg, value); err != nil {
		return err
	}
	if !o.hasCur {
		o.cur, o.curVal, o.hasCur = cfg.Clone(), value, true
		return nil
	}
	delta := value - o.curVal
	temp := o.Temp0 * math.Pow(o.Cooling, float64(o.step))
	o.step++
	if delta <= 0 || (temp > 0 && o.rng.Float64() < math.Exp(-delta/temp)) {
		o.cur, o.curVal = cfg.Clone(), value
	}
	return nil
}

// Temperature returns the current annealing temperature.
func (o *Anneal) Temperature() float64 {
	return o.Temp0 * math.Pow(o.Cooling, float64(o.step))
}

// Name implements Optimizer.
func (o *Anneal) Name() string { return "anneal" }

// Coordinate is greedy coordinate descent (BestConfig-style divide and
// conquer): it sweeps parameters round-robin, trying `LevelsPerParam`
// values of the active parameter while holding the incumbent fixed, and
// keeps the best.
type Coordinate struct {
	Recorder
	space *space.Space
	rng   *rand.Rand

	// LevelsPerParam is how many candidate values to try per sweep of a
	// parameter (default 5).
	LevelsPerParam int

	cur      space.Config
	hasCur   bool
	paramIdx int
	levelIdx int
}

// NewCoordinate returns a coordinate-descent optimizer over s.
func NewCoordinate(s *space.Space, rng *rand.Rand) *Coordinate {
	return &Coordinate{space: s, rng: rng, LevelsPerParam: 5}
}

// Suggest implements Optimizer.
func (o *Coordinate) Suggest() (space.Config, error) {
	if !o.hasCur {
		return o.space.Default(), nil
	}
	params := o.space.Params()
	p := params[o.paramIdx%len(params)]
	cfg := o.cur.Clone()
	levels := o.LevelsPerParam
	if l := p.Levels(); l > 0 && l < levels {
		levels = l
	}
	u := 0.5
	if levels > 1 {
		u = float64(o.levelIdx%levels) / float64(levels-1)
	}
	// Decode just this parameter from the unit interval.
	x := o.space.Encode(cfg)
	x[o.paramIdx%len(params)] = u
	probe := o.space.Decode(x)
	cfg[p.Name] = probe[p.Name]

	o.levelIdx++
	if o.levelIdx >= levels {
		o.levelIdx = 0
		o.paramIdx++
	}
	return cfg, nil
}

// Observe implements Optimizer; the incumbent advances greedily.
func (o *Coordinate) Observe(cfg space.Config, value float64) error {
	if err := o.Recorder.Observe(cfg, value); err != nil {
		return err
	}
	if !o.hasCur {
		o.cur, o.hasCur = cfg.Clone(), true
		return nil
	}
	if best, bestVal, ok := o.Best(); ok && bestVal >= value {
		o.cur = best
	}
	return nil
}

// Name implements Optimizer.
func (o *Coordinate) Name() string { return "coordinate" }

// Run drives an optimizer against objective f for `budget` evaluations and
// returns the best configuration and value. It stops early on ErrExhausted.
// It is the minimal tuning loop; internal/trial provides the full-featured
// one (parallelism, early abort, noise policies).
func Run(o Optimizer, f func(space.Config) float64, budget int) (space.Config, float64, error) {
	for i := 0; i < budget; i++ {
		cfg, err := o.Suggest()
		if errors.Is(err, ErrExhausted) {
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("suggest %d: %w", i, err)
		}
		if err := o.Observe(cfg, f(cfg)); err != nil {
			return nil, 0, fmt.Errorf("observe %d: %w", i, err)
		}
	}
	cfg, val, ok := o.Best()
	if !ok {
		return nil, 0, errors.New("optimizer: no observations")
	}
	return cfg, val, nil
}
