package optimizer

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"autotune/internal/space"
	"autotune/internal/testfunc"
)

func TestRecorderBest(t *testing.T) {
	var r Recorder
	if _, _, ok := r.Best(); ok {
		t.Fatal("Best before observations should be !ok")
	}
	r.Observe(space.Config{"x": 1.0}, 5)
	r.Observe(space.Config{"x": 2.0}, 3)
	r.Observe(space.Config{"x": 3.0}, 7)
	cfg, v, ok := r.Best()
	if !ok || v != 3 || cfg.Float("x") != 2 {
		t.Fatalf("Best = %v %v %v", cfg, v, ok)
	}
	if r.N() != 3 || len(r.History()) != 3 {
		t.Fatal("history wrong")
	}
	// Best returns a copy.
	cfg["x"] = 99.0
	cfg2, _, _ := r.Best()
	if cfg2.Float("x") != 2 {
		t.Fatal("Best aliases internal state")
	}
}

func TestRecorderClonesObserved(t *testing.T) {
	var r Recorder
	cfg := space.Config{"x": 1.0}
	r.Observe(cfg, 1)
	cfg["x"] = 42.0
	if r.History()[0].Config.Float("x") != 1 {
		t.Fatal("Observe did not clone config")
	}
}

func TestRandomSearchFindsDecentSphere(t *testing.T) {
	f := testfunc.Sphere(2)
	rng := rand.New(rand.NewSource(1))
	o := NewRandom(f.Space, rng)
	_, val, err := Run(o, f.Eval, 200)
	if err != nil {
		t.Fatal(err)
	}
	if val > 5 {
		t.Fatalf("random search best = %v", val)
	}
	if o.Name() != "random" {
		t.Fatal("name")
	}
}

func TestRandomSuggestN(t *testing.T) {
	s := space.MustNew(space.Float("x", 0, 1))
	o := NewRandom(s, rand.New(rand.NewSource(2)))
	batch, err := o.SuggestN(5)
	if err != nil || len(batch) != 5 {
		t.Fatalf("batch = %v, %v", batch, err)
	}
}

func TestGridExhausts(t *testing.T) {
	s := space.MustNew(space.Float("x", 0, 1), space.Categorical("c", "a", "b"))
	o := NewGridLevels(s, 3) // 3 * 2 = 6 points
	if o.Size() != 6 {
		t.Fatalf("size = %d", o.Size())
	}
	seen := map[string]bool{}
	for i := 0; i < 6; i++ {
		cfg, err := o.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		seen[cfg.Key()] = true
	}
	if len(seen) != 6 {
		t.Fatalf("distinct points = %d", len(seen))
	}
	if _, err := o.Suggest(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
}

func TestGridSuggestNPartial(t *testing.T) {
	s := space.MustNew(space.Float("x", 0, 1))
	o := NewGridLevels(s, 3)
	batch, err := o.SuggestN(10)
	if err != nil || len(batch) != 3 {
		t.Fatalf("batch %d, err %v", len(batch), err)
	}
	if _, err := o.SuggestN(2); !errors.Is(err, ErrExhausted) {
		t.Fatal("want exhausted")
	}
}

func TestGridFindsOptimumOnCurve(t *testing.T) {
	// On the sched curve with enough levels, grid finds the dip region.
	f := testfunc.SchedMigrationCurve()
	o := NewGridLevels(f.Space, 101)
	_, val, err := Run(o, f.Eval, 101)
	if err != nil {
		t.Fatal(err)
	}
	if val > 0.45 {
		t.Fatalf("dense grid best = %v, should find the dip", val)
	}
	// With only 5 levels the dip is missed.
	o2 := NewGridLevels(f.Space, 5)
	_, val2, _ := Run(o2, f.Eval, 5)
	if val2 < 0.6 {
		t.Fatalf("coarse grid best = %v, should miss the dip", val2)
	}
}

func TestRunBudgetAndErrExhausted(t *testing.T) {
	s := space.MustNew(space.Float("x", 0, 1))
	o := NewGridLevels(s, 3)
	calls := 0
	_, _, err := Run(o, func(space.Config) float64 { calls++; return 0 }, 100)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (grid exhausted)", calls)
	}
}

func TestRunNoObservations(t *testing.T) {
	s := space.MustNew(space.Float("x", 0, 1))
	o := NewGridLevels(s, 1)
	// Exhaust the grid first.
	o.Suggest()
	if _, _, err := Run(o, func(space.Config) float64 { return 0 }, 5); err == nil {
		t.Fatal("expected error with zero observations")
	}
}

func TestAnnealImprovesOverStart(t *testing.T) {
	s := space.MustNew(
		space.Float("a", -5, 5).WithDefault(4.0),
		space.Float("b", -5, 5).WithDefault(-4.0),
		space.Float("c", -5, 5).WithDefault(4.0),
	)
	eval := func(c space.Config) float64 {
		return c.Float("a")*c.Float("a") + c.Float("b")*c.Float("b") + c.Float("c")*c.Float("c")
	}
	rng := rand.New(rand.NewSource(3))
	o := NewAnneal(s, rng)
	o.StepScale = 0.15
	start := eval(s.Default())
	_, best, err := Run(o, eval, 300)
	if err != nil {
		t.Fatal(err)
	}
	if best >= start {
		t.Fatalf("anneal best %v did not improve on start %v", best, start)
	}
	if best > 2 {
		t.Fatalf("anneal best = %v, too poor", best)
	}
}

func TestAnnealTemperatureCools(t *testing.T) {
	s := space.MustNew(space.Float("x", 0, 1))
	o := NewAnneal(s, rand.New(rand.NewSource(4)))
	t0 := o.Temperature()
	for i := 0; i < 10; i++ {
		cfg, _ := o.Suggest()
		o.Observe(cfg, 1)
	}
	if !(o.Temperature() < t0) {
		t.Fatalf("temperature did not cool: %v -> %v", t0, o.Temperature())
	}
}

func TestAnnealFirstSuggestionIsDefault(t *testing.T) {
	s := space.MustNew(space.Float("x", 0, 1).WithDefault(0.7))
	o := NewAnneal(s, rand.New(rand.NewSource(5)))
	cfg, err := o.Suggest()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Float("x") != 0.7 {
		t.Fatalf("first suggestion = %v, want default", cfg)
	}
}

func TestCoordinateDescentQuadratic(t *testing.T) {
	// Separable quadratic: coordinate descent is an excellent fit.
	s := space.MustNew(space.Float("a", -5, 5), space.Float("b", -5, 5))
	f := func(c space.Config) float64 {
		return (c.Float("a")-2.5)*(c.Float("a")-2.5) + (c.Float("b")+2.5)*(c.Float("b")+2.5)
	}
	o := NewCoordinate(s, rand.New(rand.NewSource(6)))
	o.LevelsPerParam = 11
	_, best, err := Run(o, f, 50)
	if err != nil {
		t.Fatal(err)
	}
	if best > 0.5 {
		t.Fatalf("coordinate best = %v", best)
	}
	if o.Name() != "coordinate" {
		t.Fatal("name")
	}
}

func TestCoordinateHandlesCategorical(t *testing.T) {
	s := space.MustNew(space.Categorical("c", "bad", "good"), space.Float("x", 0, 1))
	f := func(c space.Config) float64 {
		v := c.Float("x")
		if c.Str("c") == "good" {
			return v
		}
		return v + 10
	}
	o := NewCoordinate(s, rand.New(rand.NewSource(7)))
	cfg, best, err := Run(o, f, 40)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Str("c") != "good" {
		t.Fatalf("best cfg = %v (val %v)", cfg, best)
	}
}

func TestObserveToleratesUnsuggested(t *testing.T) {
	// Optimizers must accept observations they did not suggest (for warm
	// starting / transfer).
	f := testfunc.Sphere(2)
	rng := rand.New(rand.NewSource(8))
	opts := []Optimizer{
		NewRandom(f.Space, rng),
		NewGrid(f.Space, 9),
		NewAnneal(f.Space, rng),
		NewCoordinate(f.Space, rng),
	}
	for _, o := range opts {
		cfg := f.Space.Sample(rng)
		if err := o.Observe(cfg, f.Eval(cfg)); err != nil {
			t.Fatalf("%s: %v", o.Name(), err)
		}
		if _, _, ok := o.Best(); !ok {
			t.Fatalf("%s: Best not set after Observe", o.Name())
		}
	}
}

func TestBestIsMinimum(t *testing.T) {
	f := testfunc.Branin()
	rng := rand.New(rand.NewSource(9))
	o := NewRandom(f.Space, rng)
	_, best, err := Run(o, f.Eval, 100)
	if err != nil {
		t.Fatal(err)
	}
	minSeen := math.Inf(1)
	for _, obs := range o.History() {
		if obs.Value < minSeen {
			minSeen = obs.Value
		}
	}
	if best != minSeen {
		t.Fatalf("Best %v != min history %v", best, minSeen)
	}
}
