package experiments

import (
	"strconv"
	"testing"
)

const testSeed = 20250706

func runQuick(t *testing.T, id string) Table {
	t.Helper()
	tab, err := Run(id, true, testSeed)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tab.ID != id || tab.Title == "" || tab.Claim == "" || tab.Notes == "" {
		t.Fatalf("%s: incomplete table metadata: %+v", id, tab)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s: no rows", id)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Headers) {
			t.Fatalf("%s: row width %d != header width %d (%v)", id, len(row), len(tab.Headers), row)
		}
	}
	return tab
}

func cell(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not a number", tab.ID, row, col, tab.Rows[row][col])
	}
	return v
}

func TestIDsCompleteAndSorted(t *testing.T) {
	ids := IDs()
	if len(ids) != 27 {
		t.Fatalf("experiments = %d, want 27 (F1-F22 + A1-A5): %v", len(ids), ids)
	}
	if ids[0] != "F1" || ids[21] != "F22" || ids[22] != "A1" || ids[26] != "A5" {
		t.Fatalf("order: %v", ids)
	}
	if _, err := Run("F99", true, 1); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestF1GridMissesDip(t *testing.T) {
	tab := runQuick(t, "F1")
	// At 5 and 10 points, grid stays on the ~1.0ms plateau.
	for row := 0; row < 2; row++ {
		if got := cell(t, tab, row, 1); got < 0.6 {
			t.Fatalf("coarse grid found the dip (%v), should miss it", got)
		}
	}
	// Random's mean at budget 50 should be better than grid at 5.
	if !(cell(t, tab, 3, 2) < cell(t, tab, 0, 1)) {
		t.Fatal("random at 50 should beat grid at 5")
	}
}

func TestF2BOBeatsRandom(t *testing.T) {
	tab := runQuick(t, "F2")
	// At budget 20 and 40 BO should be at least as good as random.
	for _, row := range []int{1, 2} {
		boV, rdV := cell(t, tab, row, 1), cell(t, tab, row, 2)
		if boV > rdV*1.1 {
			t.Fatalf("budget row %d: bo %v worse than random %v", row, boV, rdV)
		}
	}
	// BO at budget 40 should have found the dip region.
	if cell(t, tab, 2, 1) > 0.5 {
		t.Fatalf("bo at 40 = %v, should find the dip", cell(t, tab, 2, 1))
	}
}

func TestF3RatioInBand(t *testing.T) {
	tab := runQuick(t, "F3")
	for i := range tab.Rows {
		ratio := cell(t, tab, i, 3)
		if ratio < 2.5 || ratio > 15 {
			t.Fatalf("%s ratio = %v, want the 4-10x shape", tab.Rows[i][0], ratio)
		}
	}
}

func TestF4ReductionShape(t *testing.T) {
	tab := runQuick(t, "F4")
	def := cell(t, tab, 0, 1)
	tuned := cell(t, tab, 1, 1)
	red := (def - tuned) / def
	if red < 0.4 {
		t.Fatalf("P95 reduction = %v, want >= 40%% (claim is 68%%)", red)
	}
}

func TestF5MidLengthscaleWins(t *testing.T) {
	tab := runQuick(t, "F5")
	// Rows: 0.01, 0.05, 0.2, 1, 5. One of the middle lengthscales should
	// have the lowest RMSE.
	bestRow, bestRMSE := -1, 1e18
	for i := range tab.Rows {
		if r := cell(t, tab, i, 1); r < bestRMSE {
			bestRow, bestRMSE = i, r
		}
	}
	if bestRow == 0 || bestRow == len(tab.Rows)-1 {
		t.Fatalf("extreme lengthscale won (row %d)", bestRow)
	}
}

func TestF6ModelBeatsRandom(t *testing.T) {
	tab := runQuick(t, "F6")
	for i := range tab.Rows {
		ei := cell(t, tab, i, 2)
		rd := cell(t, tab, i, 4)
		if ei > rd*1.5 {
			t.Fatalf("%s: EI regret %v much worse than random %v", tab.Rows[i][0], ei, rd)
		}
	}
}

func TestF7AllColumnsPresent(t *testing.T) {
	tab := runQuick(t, "F7")
	if len(tab.Rows) != 3 || len(tab.Headers) != 7 {
		t.Fatalf("shape: %dx%d", len(tab.Rows), len(tab.Headers))
	}
	// On the DBMS row, SMAC should beat pure random.
	smacV := cell(t, tab, 2, 2)
	randV := cell(t, tab, 2, 6)
	if smacV > randV*1.15 {
		t.Fatalf("smac %v should be competitive with random %v on the DBMS", smacV, randV)
	}
}

func TestF8TreesHandleCategoricals(t *testing.T) {
	tab := runQuick(t, "F8")
	oneHot := cell(t, tab, 0, 1)
	random := cell(t, tab, 3, 1)
	if oneHot > random*1.2 {
		t.Fatalf("one-hot BO %v should be competitive with random %v", oneHot, random)
	}
}

func TestF9ParallelSpeedsUp(t *testing.T) {
	tab := runQuick(t, "F9")
	if sp := cell(t, tab, 1, 3); sp < 3 {
		t.Fatalf("batch-4 speedup = %v, want ~4", sp)
	}
	if sp := cell(t, tab, 2, 3); sp < 5 {
		t.Fatalf("batch-8 speedup = %v, want ~8", sp)
	}
	// Quality at batch 8 within 2.5x of sequential.
	if cell(t, tab, 2, 1) > cell(t, tab, 0, 1)*2.5 {
		t.Fatal("batch quality collapsed")
	}
}

func TestF10ModelBasedMOOCompetitive(t *testing.T) {
	tab := runQuick(t, "F10")
	parego := cell(t, tab, 0, 2)
	nsga := cell(t, tab, 1, 2)
	random := cell(t, tab, 2, 2)
	best := parego
	if nsga > best {
		best = nsga
	}
	if best <= 0 {
		t.Fatal("model-based hypervolume should be positive")
	}
	if best < random*0.9 {
		t.Fatalf("model-based HV (%v/%v) should match or beat random (%v)", parego, nsga, random)
	}
}

func TestF11ConstraintEliminatesCrashes(t *testing.T) {
	tab := runQuick(t, "F11")
	unconstrained := cell(t, tab, 0, 2)
	constrained := cell(t, tab, 1, 2)
	if constrained > 0 {
		t.Fatalf("constrained run crashed %v times", constrained)
	}
	if unconstrained == 0 {
		t.Fatal("unconstrained run should hit the cliff sometimes")
	}
}

func TestF12ProjectionSampleEfficient(t *testing.T) {
	tab := runQuick(t, "F12")
	fullHit := cell(t, tab, 0, 2)
	projHit := cell(t, tab, 1, 2)
	if projHit > fullHit*1.5 {
		t.Fatalf("projection needs %v trials vs full %v — should be competitive or faster", projHit, fullHit)
	}
}

func TestF13SHScreensMore(t *testing.T) {
	tab := runQuick(t, "F13")
	shEvals := cell(t, tab, 0, 3)
	shCost := cell(t, tab, 0, 2)
	fxEvals := cell(t, tab, 2, 3)
	fxCost := cell(t, tab, 2, 2)
	// At roughly matched cost SH evaluates more configurations.
	if !(shEvals > fxEvals) {
		t.Fatalf("SH evals %v should exceed fixed-fidelity evals %v (costs %v vs %v)",
			shEvals, fxEvals, shCost, fxCost)
	}
}

func TestF14WarmStartHelps(t *testing.T) {
	tab := runQuick(t, "F14")
	cold := cell(t, tab, 0, 1)
	warm := cell(t, tab, 1, 1)
	if warm > cold*1.05 {
		t.Fatalf("warm start %v should not be worse than cold %v", warm, cold)
	}
}

func TestF15ImportanceRecovered(t *testing.T) {
	tab := runQuick(t, "F15")
	lassoOverlap := cell(t, tab, 0, 2)
	permOverlap := cell(t, tab, 1, 2)
	if lassoOverlap < 2 && permOverlap < 2 {
		t.Fatalf("rankers recovered %v/%v of 5 ground-truth knobs", lassoOverlap, permOverlap)
	}
	narrow := cell(t, tab, 2, 1)
	full := cell(t, tab, 3, 1)
	if narrow > full*2.5 {
		t.Fatalf("top-7 tuning %v much worse than full %v", narrow, full)
	}
}

func TestF16AbortSavesCost(t *testing.T) {
	tab := runQuick(t, "F16")
	fullCost := cell(t, tab, 0, 2)
	abortCost := cell(t, tab, 1, 2)
	if !(abortCost < fullCost) {
		t.Fatalf("abort cost %v should be below full cost %v", abortCost, fullCost)
	}
	if cell(t, tab, 1, 3) == 0 {
		t.Fatal("no trials were aborted")
	}
	// Same best found (random search with same seed stream).
	if cell(t, tab, 1, 1) > cell(t, tab, 0, 1)*1.3 {
		t.Fatal("abort degraded quality too much")
	}
}

func TestF17MitigationHelps(t *testing.T) {
	tab := runQuick(t, "F17")
	naive := cell(t, tab, 0, 1)
	tuna := cell(t, tab, 3, 1)
	duet := cell(t, tab, 2, 1)
	betterOfPaired := tuna
	if duet < betterOfPaired {
		betterOfPaired = duet
	}
	if betterOfPaired > naive*1.15 {
		t.Fatalf("paired scoring (%v) should beat naive (%v)", betterOfPaired, naive)
	}
}

func TestF18GuardrailsAndAdaptation(t *testing.T) {
	tab := runQuick(t, "F18")
	// The bandit with regime presets should have the lowest post-shift loss.
	banditPost := cell(t, tab, 2, 2)
	walkPost := cell(t, tab, 0, 2)
	if banditPost > walkPost*1.2 {
		t.Fatalf("bandit post-shift %v should beat random walk %v", banditPost, walkPost)
	}
}

func TestF19IdentificationQuality(t *testing.T) {
	tab := runQuick(t, "F19")
	if purity := cell(t, tab, 0, 1); purity < 0.7 {
		t.Fatalf("purity = %v", purity)
	}
	if acc := cell(t, tab, 1, 1); acc < 0.7 {
		t.Fatalf("lookup accuracy = %v", acc)
	}
	if delay := cell(t, tab, 2, 1); delay < 0 || delay > 15 {
		t.Fatalf("shift delay = %v", delay)
	}
}

func TestF20SyntheticTransfersMostOfOracle(t *testing.T) {
	tab := runQuick(t, "F20")
	def := cell(t, tab, 0, 1)
	synth := cell(t, tab, 1, 1)
	oracle := cell(t, tab, 2, 1)
	if !(synth < def) {
		t.Fatalf("synthetic-tuned %v should beat default %v", synth, def)
	}
	// Capture at least half of the oracle's improvement.
	if gain, oracleGain := def-synth, def-oracle; oracleGain > 0 && gain < 0.4*oracleGain {
		t.Fatalf("synthetic captured %v of oracle's %v improvement", gain, oracleGain)
	}
}

func TestA1LogWarpHelps(t *testing.T) {
	tab := runQuick(t, "A1")
	shipped, ablated := cell(t, tab, 0, 1), cell(t, tab, 1, 1)
	if shipped > ablated*1.1 {
		t.Fatalf("LogY (%v) should not be worse than raw targets (%v)", shipped, ablated)
	}
}

func TestA2StratifiedWarmupHelps(t *testing.T) {
	tab := runQuick(t, "A2")
	shipped, ablated := cell(t, tab, 0, 1), cell(t, tab, 1, 1)
	if shipped > ablated*1.25 {
		t.Fatalf("stratified warm-up (%v) should not be worse than tiny warm-up (%v)", shipped, ablated)
	}
}

func TestA3InterleavingHelps(t *testing.T) {
	tab := runQuick(t, "A3")
	shipped, ablated := cell(t, tab, 0, 1), cell(t, tab, 1, 1)
	if shipped > ablated*1.25 {
		t.Fatalf("interleaving (%v) should not be worse than pure exploitation (%v)", shipped, ablated)
	}
}

func TestA4OutlierRejectionHelps(t *testing.T) {
	tab := runQuick(t, "A4")
	shipped, ablated := cell(t, tab, 0, 1), cell(t, tab, 1, 1)
	if shipped > ablated*1.1 {
		t.Fatalf("MAD rejection error (%v) should not exceed unguarded error (%v)", shipped, ablated)
	}
}

func TestA5HedgingBeatsBarrier(t *testing.T) {
	tab := runQuick(t, "A5")
	barrier, hedged := cell(t, tab, 0, 1), cell(t, tab, 1, 1)
	if hedged > 0.5*barrier {
		t.Fatalf("hedged wall-clock (%v) should be well under the barrier's (%v)", hedged, barrier)
	}
	if wins := cell(t, tab, 1, 4); wins == 0 {
		t.Fatal("hedging never won a race")
	}
}

func TestF21MultiTaskTransfers(t *testing.T) {
	tab := runQuick(t, "F21")
	multi := cell(t, tab, 0, 1)
	random := cell(t, tab, 2, 1)
	if multi > random*1.1 {
		t.Fatalf("multi-task GP (%v) should beat random (%v)", multi, random)
	}
}

func TestF22ManualHintsHelp(t *testing.T) {
	tab := runQuick(t, "F22")
	informed := cell(t, tab, 1, 1)
	cold := cell(t, tab, 0, 1)
	documented := cell(t, tab, 2, 1)
	defaults := cell(t, tab, 3, 1)
	if !(documented < defaults) {
		t.Fatalf("documented config %v should beat defaults %v", documented, defaults)
	}
	if informed > cold*1.5 {
		t.Fatalf("manual-informed tuning %v should be competitive with cold %v", informed, cold)
	}
}
