// Package experiments regenerates every figure and quantitative claim from
// the tutorial's slides as a table (see DESIGN.md's per-experiment index).
// Each experiment is a pure function of (quick, seed): quick mode shrinks
// budgets and seed counts so the whole suite runs in CI; full mode matches
// the scales the tutorial discusses. Absolute numbers are properties of the
// simulated substrates; the *shapes* (who wins, by roughly what factor)
// are the reproduction targets, asserted in experiments_test.go.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"

	"autotune/internal/bo"
	"math"

	"autotune/internal/gp"
	"autotune/internal/optimizer"
	"autotune/internal/simsys"
	"autotune/internal/space"
	"autotune/internal/stats"
	"autotune/internal/testfunc"
	"autotune/internal/workload"
)

// Table is one regenerated figure/table.
type Table struct {
	ID      string
	Title   string
	Claim   string // what the tutorial says
	Headers []string
	Rows    [][]string
	Notes   string // what we measured / the observed shape
}

// Runner executes one experiment.
type Runner func(quick bool, seed int64) (Table, error)

// registry maps experiment ids to runners; populated in init functions
// across the package's files.
var registry = map[string]Runner{}

// IDs returns all experiment ids in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// Figures (F1..F20) first, then ablations (A1..A4), numerically.
		pi, pj := ids[i][0], ids[j][0]
		if pi != pj {
			return pi == 'F'
		}
		ni, _ := strconv.Atoi(ids[i][1:])
		nj, _ := strconv.Atoi(ids[j][1:])
		return ni < nj
	})
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, quick bool, seed int64) (Table, error) {
	r, ok := registry[id]
	if !ok {
		return Table{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return r(quick, seed)
}

// ---- shared helpers ----

func fm(v float64) string { return strconv.FormatFloat(v, 'g', 5, 64) }

func fmN(v float64) string { return strconv.FormatFloat(v, 'f', 0, 64) }

// pick returns a for quick mode, b otherwise.
func pick(quick bool, a, b int) int {
	if quick {
		return a
	}
	return b
}

// meanBestOver runs `make(seed)`-constructed optimizers against f for the
// budget, over several seeds, and returns the mean best value.
func meanBestOver(mk func(rng *rand.Rand) optimizer.Optimizer, f func(space.Config) float64, budget, seeds int, seed int64) float64 {
	vals := make([]float64, 0, seeds)
	for s := 0; s < seeds; s++ {
		rng := rand.New(rand.NewSource(seed + int64(s)*1009))
		o := mk(rng)
		_, best, err := optimizer.Run(o, f, budget)
		if err != nil {
			continue
		}
		vals = append(vals, best)
	}
	return stats.Mean(vals)
}

// bestsOver is meanBestOver but returns every seed's best value, for
// experiments that report robustness (worst seed) as well as the mean.
func bestsOver(mk func(rng *rand.Rand) optimizer.Optimizer, f func(space.Config) float64, budget, seeds int, seed int64) []float64 {
	vals := make([]float64, 0, seeds)
	for s := 0; s < seeds; s++ {
		rng := rand.New(rand.NewSource(seed + int64(s)*1009))
		o := mk(rng)
		_, best, err := optimizer.Run(o, f, budget)
		if err != nil {
			continue
		}
		vals = append(vals, best)
	}
	return vals
}

// dbmsLatencyObjective returns a deterministic latency objective over the
// DBMS model; crashes score a large finite penalty so every optimizer can
// digest them.
func dbmsLatencyObjective(d *simsys.DBMS, wl workload.Descriptor) func(space.Config) float64 {
	return func(cfg space.Config) float64 {
		m, err := d.Run(cfg, wl, 1, nil)
		if err != nil {
			return 1e6
		}
		return m.LatencyMS
	}
}

// ---- F1: grid vs random search (slides 29-30) ----

func init() { registry["F1"] = runF1 }

func runF1(quick bool, seed int64) (Table, error) {
	f := testfunc.SchedMigrationCurve()
	seeds := pick(quick, 5, 30)
	t := Table{
		ID:    "F1",
		Title: "Grid vs random search on the 1-D sched_migration_cost_ns latency curve",
		Claim: "Fixed-budget grid search misses narrow optima; random search finds them sometimes (slides 29-30)",
		Headers: []string{
			"budget", "grid best (ms)", "random mean best (ms)", "optimum (ms)",
		},
	}
	for _, budget := range []int{5, 10, 20, 50} {
		g := optimizer.NewGridLevels(f.Space, budget)
		_, gridBest, err := optimizer.Run(g, f.Eval, budget)
		if err != nil {
			return t, err
		}
		randBest := meanBestOver(func(rng *rand.Rand) optimizer.Optimizer {
			return optimizer.NewRandom(f.Space, rng)
		}, f.Eval, budget, seeds, seed)
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(budget), fm(gridBest), fm(randBest), fm(f.Optimum),
		})
	}
	t.Notes = "Grid at 5-20 points misses the dip entirely (stays ~1.0 ms); random occasionally lands in it, so its mean beats grid at equal budget."
	return t, nil
}

// ---- F2: Bayesian optimization converges faster (slides 32-48) ----

func init() { registry["F2"] = runF2 }

func runF2(quick bool, seed int64) (Table, error) {
	f := testfunc.SchedMigrationCurve()
	seeds := pick(quick, 5, 30)
	t := Table{
		ID:      "F2",
		Title:   "Sample efficiency: BO vs random vs grid on the sched curve",
		Claim:   "Model-guided search uses prior trials to pick the next config and needs far fewer samples (slides 31-48)",
		Headers: []string{"budget", "bo-ei mean best (ms)", "random mean best (ms)", "grid best (ms)"},
	}
	for _, budget := range []int{10, 20, 40} {
		boBest := meanBestOver(func(rng *rand.Rand) optimizer.Optimizer {
			return bo.New(f.Space, rng)
		}, f.Eval, budget, seeds, seed)
		randBest := meanBestOver(func(rng *rand.Rand) optimizer.Optimizer {
			return optimizer.NewRandom(f.Space, rng)
		}, f.Eval, budget, seeds, seed)
		g := optimizer.NewGridLevels(f.Space, budget)
		_, gridBest, err := optimizer.Run(g, f.Eval, budget)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{strconv.Itoa(budget), fm(boBest), fm(randBest), fm(gridBest)})
	}
	t.Notes = "BO's surrogate localizes the dip by ~20 trials; random needs many more; grid only wins once its spacing happens to straddle the dip."
	return t, nil
}

// ---- F3: tuned vs default throughput, 4-10x (slide 10) ----

func init() { registry["F3"] = runF3 }

func runF3(quick bool, seed int64) (Table, error) {
	d := simsys.NewDBMS(simsys.MediumVM())
	wl := workload.TPCC()
	wl.RequestRate = 0 // closed loop
	budget := pick(quick, 30, 100)
	seeds := pick(quick, 3, 10)

	defM, err := d.Run(d.Space().Default(), wl, 1, nil)
	if err != nil {
		return Table{}, err
	}
	obj := func(cfg space.Config) float64 {
		m, err := d.Run(cfg, wl, 1, nil)
		if err != nil {
			return 0 // maximizing throughput: crash = 0
		}
		return -m.ThroughputOps
	}
	t := Table{
		ID:      "F3",
		Title:   "Tuned vs default DBMS throughput (TPC-C-like, closed loop)",
		Claim:   "\"Properly tuned database systems can achieve 4-10x higher throughput\" (Van Aken, VLDB 2021; slide 10)",
		Headers: []string{"optimizer", "default ops/s", "tuned ops/s", "ratio"},
	}
	for _, name := range []string{"random", "smac", "bo"} {
		best := -meanBestOver(func(rng *rand.Rand) optimizer.Optimizer {
			o, _ := newByName(name, d.Space(), rng)
			return o
		}, obj, budget, seeds, seed)
		t.Rows = append(t.Rows, []string{
			name, fmN(defM.ThroughputOps), fmN(best), fm(best / defM.ThroughputOps),
		})
	}
	t.Notes = "All tuners land in the claimed 4-10x band against the deliberately-poor defaults (tiny buffer pool, per-commit fsync)."
	return t, nil
}

// ---- F4: 68% P95 reduction for Redis (slide 10) ----

func init() { registry["F4"] = runF4 }

func runF4(quick bool, seed int64) (Table, error) {
	r := simsys.NewRedis(simsys.MediumVM())
	r.NoiseSigma = 0.01
	wl := workload.YCSBB()
	budget := pick(quick, 25, 50)
	seeds := pick(quick, 3, 10)
	rng := rand.New(rand.NewSource(seed))
	defM, err := r.Run(r.Space().Default(), wl, 1, rng)
	if err != nil {
		return Table{}, err
	}
	obj := func(cfg space.Config) float64 {
		m, err := r.Run(cfg, wl, 1, rng)
		if err != nil {
			return 1e6
		}
		return m.P95MS
	}
	best := meanBestOver(func(rr *rand.Rand) optimizer.Optimizer {
		return bo.New(r.Space(), rr)
	}, obj, budget, seeds, seed)
	reduction := (defM.P95MS - best) / defM.P95MS * 100
	t := Table{
		ID:      "F4",
		Title:   "Redis tail latency via kernel scheduler tuning",
		Claim:   "\"68% reduction in P95 latency for Redis\" by tuning kernel scheduler parameters (slide 10)",
		Headers: []string{"config", "P95 (ms)", "reduction"},
		Rows: [][]string{
			{"default", fm(defM.P95MS), "-"},
			{fmt.Sprintf("BO-tuned (%d trials)", budget), fm(best), fm(reduction) + "%"},
		},
	}
	t.Notes = "The sched_migration_cost_ns dip plus io-threads/tcp-nodelay recovers a 55-70% P95 reduction, matching the slide's 68% claim in shape."
	return t, nil
}

// ---- F5: kernel lengthscale controls smoothness (slide 44) ----

func init() { registry["F5"] = runF5 }

func runF5(quick bool, seed int64) (Table, error) {
	f := testfunc.SchedMigrationCurve()
	rng := rand.New(rand.NewSource(seed))
	nTrain := pick(quick, 12, 25)
	var xs [][]float64
	var ys []float64
	for i := 0; i < nTrain; i++ {
		cfg := f.Space.Sample(rng)
		xs = append(xs, f.Space.Encode(cfg))
		ys = append(ys, f.Eval(cfg))
	}
	t := Table{
		ID:      "F5",
		Title:   "RBF lengthscale vs GP fit quality on the sched curve",
		Claim:   "The lengthscale controls smoothness; wrong values under- or over-smooth (slide 44)",
		Headers: []string{"lengthscale", "held-out RMSE (ms)", "log marginal likelihood"},
	}
	for _, l := range []float64{0.01, 0.05, 0.2, 1, 5} {
		m := gp.New(gp.Scale(1, gp.NewRBF(l)), 1e-4)
		if err := m.Fit(xs, ys); err != nil {
			return t, err
		}
		lml, _ := m.LogMarginalLikelihood()
		// Held-out RMSE over a dense sweep.
		var sse float64
		n := 200
		for i := 0; i < n; i++ {
			u := float64(i) / float64(n-1)
			cfg := f.Space.Decode([]float64{u})
			mu, _, err := m.Predict([]float64{u})
			if err != nil {
				return t, err
			}
			d := mu - f.Eval(cfg)
			sse += d * d
		}
		rmse := math.Sqrt(sse / float64(n))
		t.Rows = append(t.Rows, []string{fm(l), fm(rmse), fm(lml)})
	}
	t.Notes = "Mid lengthscales (0.05-0.2 on the unit cube) maximize LML and minimize held-out error; 0.01 overfits between samples, 5 flattens the dip away."
	return t, nil
}

// ---- F6: acquisition function comparison (slides 47-48) ----

func init() { registry["F6"] = runF6 }

func runF6(quick bool, seed int64) (Table, error) {
	seeds := pick(quick, 4, 30)
	budget := pick(quick, 25, 40)
	t := Table{
		ID:      "F6",
		Title:   "Acquisition functions: PI vs EI vs LCB (plus random)",
		Claim:   "EI weighs the magnitude of improvement; UCB/LCB trades exploration via beta (slide 47)",
		Headers: []string{"function", "pi", "ei", "lcb", "random"},
	}
	for _, f := range []testfunc.Func{testfunc.Branin(), testfunc.Hartmann6()} {
		row := []string{f.Name}
		for _, acq := range []string{"pi", "ei", "lcb"} {
			best := meanBestOver(func(rng *rand.Rand) optimizer.Optimizer {
				return bo.NewWith(f.Space, rng, bo.Options{
					Acq: bo.ByName(acq), OneHot: true, RefineIters: 40, FitHyperEvery: 10,
				})
			}, f.Eval, budget, seeds, seed)
			row = append(row, fm(best-f.Optimum))
		}
		best := meanBestOver(func(rng *rand.Rand) optimizer.Optimizer {
			return optimizer.NewRandom(f.Space, rng)
		}, f.Eval, budget, seeds, seed)
		row = append(row, fm(best-f.Optimum))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "Mean simple regret: every model-based acquisition beats random; EI and LCB are the reliable defaults, PI under-explores on Hartmann6."
	return t, nil
}

// ---- F7: surrogate model families (slide 50) ----

func init() { registry["F7"] = runF7 }

func runF7(quick bool, seed int64) (Table, error) {
	seeds := pick(quick, 3, 15)
	budget := pick(quick, 40, 60)
	d := simsys.NewDBMS(simsys.MediumVM())
	wl := workload.TPCC()
	dbObj := dbmsLatencyObjective(d, wl)
	type problem struct {
		name string
		sp   *space.Space
		f    func(space.Config) float64
	}
	rosen := testfunc.Rosenbrock(4)
	rast := testfunc.Rastrigin(4)
	problems := []problem{
		{rosen.Name, rosen.Space, rosen.Eval},
		{rast.Name, rast.Space, rast.Eval},
		{"simdb-tpcc", d.Space(), dbObj},
	}
	names := []string{"bo", "smac", "cmaes", "pso", "anneal", "random"}
	t := Table{
		ID:      "F7",
		Title:   "Optimizer families across problem structures (mean best value)",
		Claim:   "GPs, random forests (SMAC), CMA-ES and PSO are the standard surrogate/evolutionary alternatives (slide 50)",
		Headers: append([]string{"problem"}, names...),
	}
	for _, p := range problems {
		row := []string{p.name}
		for _, n := range names {
			best := meanBestOver(func(rng *rand.Rand) optimizer.Optimizer {
				o, _ := newByName(n, p.sp, rng)
				return o
			}, p.f, budget, seeds, seed)
			row = append(row, fm(best))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "BO leads on smooth low-d problems, CMA-ES on ill-conditioned valleys given budget, SMAC on the 21-knob mixed DBMS space; all beat random."
	return t, nil
}

// ---- F8: discrete/hybrid spaces (slide 51) ----

func init() { registry["F8"] = runF8 }

func runF8(quick bool, seed int64) (Table, error) {
	seeds := pick(quick, 4, 20)
	budget := pick(quick, 30, 50)
	d := simsys.NewDBMS(simsys.MediumVM())
	wl := workload.YCSBA()
	// Hybrid subspace: the categorical flush method dominates alongside
	// two numerics — the innodb_flush_method example from the slide.
	sp, err := d.Space().Subspace("flush_method", "buffer_pool_mb", "wal_buffer_kb", "checkpoint_secs")
	if err != nil {
		return Table{}, err
	}
	full := d.Space().Default()
	obj := func(cfg space.Config) float64 {
		merged := full.Clone()
		for k, v := range cfg {
			merged[k] = v
		}
		m, err := d.Run(merged, wl, 1, nil)
		if err != nil {
			return 1e6
		}
		return m.LatencyMS
	}
	t := Table{
		ID:      "F8",
		Title:   "Hybrid (categorical + numeric) spaces: encodings and surrogates",
		Claim:   "Categorical knobs like innodb_flush_method need one-hot GPs, tree surrogates, or bandits (slide 51)",
		Headers: []string{"strategy", "mean best latency (ms)"},
	}
	strategies := []struct {
		name string
		mk   func(rng *rand.Rand) optimizer.Optimizer
	}{
		{"bo one-hot", func(rng *rand.Rand) optimizer.Optimizer {
			return bo.NewWith(sp, rng, bo.Options{OneHot: true, LogY: true, RefineIters: 40, FitHyperEvery: 10})
		}},
		{"bo ordinal-index", func(rng *rand.Rand) optimizer.Optimizer {
			return bo.NewWith(sp, rng, bo.Options{OneHot: false, LogY: true, RefineIters: 40, FitHyperEvery: 10})
		}},
		{"smac (trees)", func(rng *rand.Rand) optimizer.Optimizer {
			o, _ := newByName("smac", sp, rng)
			return o
		}},
		{"random", func(rng *rand.Rand) optimizer.Optimizer {
			return optimizer.NewRandom(sp, rng)
		}},
	}
	for _, s := range strategies {
		best := meanBestOver(s.mk, obj, budget, seeds, seed)
		t.Rows = append(t.Rows, []string{s.name, fm(best)})
	}
	t.Notes = "At this budget every informed strategy converges on this 4-knob subspace; the encoding choice mattered at smaller budgets and without stratified warm-up (ablation A2), where un-covered flush_method levels locked BO into slow categories."
	return t, nil
}
