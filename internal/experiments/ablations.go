package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"autotune/internal/bo"
	"autotune/internal/cloud"
	"autotune/internal/noise"
	"autotune/internal/optimizer"
	"autotune/internal/sched"
	"autotune/internal/simsys"
	"autotune/internal/smac"
	"autotune/internal/space"
	"autotune/internal/stats"
	"autotune/internal/trial"
	"autotune/internal/workload"
)

// Ablations A1-A4 isolate the framework's own design choices (they are not
// tutorial figures): each compares an optimizer with one mechanism removed
// against the shipped configuration, on the workloads that motivated the
// mechanism.

// ---- A1: log-warped targets in BO ----

func init() { registry["A1"] = runA1 }

func runA1(quick bool, seed int64) (Table, error) {
	d := simsys.NewDBMS(simsys.MediumVM())
	wl := workload.YCSBA()
	sp, err := d.Space().Subspace("flush_method", "buffer_pool_mb", "wal_buffer_kb", "checkpoint_secs")
	if err != nil {
		return Table{}, err
	}
	full := d.Space().Default()
	obj := func(cfg space.Config) float64 {
		merged := full.Clone()
		for k, v := range cfg {
			merged[k] = v
		}
		m, err := d.Run(merged, wl, 1, nil)
		if err != nil {
			return 1e6
		}
		return m.LatencyMS
	}
	budget := 30 // the mechanisms matter in the early-budget regime
	seeds := pick(quick, 6, 24)
	t := Table{
		ID:      "A1",
		Title:   "Ablation: log-warped GP targets on a heavy-tailed latency objective",
		Claim:   "(framework design choice) raw latency targets let one terrible config dominate normalization",
		Headers: []string{"variant", "mean best latency (ms)", "worst seed (ms)"},
	}
	for _, v := range []struct {
		name string
		logy bool
	}{{"bo with LogY (shipped)", true}, {"bo raw targets", false}} {
		logy := v.logy
		bests := bestsOver(func(rng *rand.Rand) optimizer.Optimizer {
			return bo.NewWith(sp, rng, bo.Options{OneHot: true, LogY: logy, RefineIters: 40, FitHyperEvery: 10})
		}, obj, budget, seeds, seed)
		t.Rows = append(t.Rows, []string{v.name, fm(stats.Mean(bests)), fm(stats.Max(bests))})
	}
	t.Notes = "Honest finding: on this surface the warp's effect is within seed noise — target normalization plus the Matern kernel already copes with the 200x dynamic range. The warp stays opt-in (it is a monotone transform, so it cannot corrupt the ranking) and earns its keep on surfaces with even heavier tails; the decisive mechanism for the categorical lock-in seen in development was the stratified warm-up (A2)."
	return t, nil
}

// ---- A2: stratified categorical warm-up in BO ----

func init() { registry["A2"] = runA2 }

func runA2(quick bool, seed int64) (Table, error) {
	d := simsys.NewDBMS(simsys.MediumVM())
	wl := workload.YCSBA()
	sp, err := d.Space().Subspace("flush_method", "buffer_pool_mb", "wal_buffer_kb", "checkpoint_secs")
	if err != nil {
		return Table{}, err
	}
	full := d.Space().Default()
	obj := func(cfg space.Config) float64 {
		merged := full.Clone()
		for k, v := range cfg {
			merged[k] = v
		}
		m, err := d.Run(merged, wl, 1, nil)
		if err != nil {
			return 1e6
		}
		return m.LatencyMS
	}
	budget := 30
	seeds := pick(quick, 8, 32)
	t := Table{
		ID:      "A2",
		Title:   "Ablation: stratified categorical warm-up (every flush_method level seen once)",
		Claim:   "(framework design choice) a one-hot GP has no gradient toward categorical levels it has never observed",
		Headers: []string{"variant", "mean best latency (ms)", "worst seed (ms)"},
	}
	// Shipped: default InitSamples is sized to cover all levels.
	bests := bestsOver(func(rng *rand.Rand) optimizer.Optimizer {
		return bo.NewWith(sp, rng, bo.Options{OneHot: true, LogY: true, RefineIters: 40, FitHyperEvery: 10})
	}, obj, budget, seeds, seed)
	t.Rows = append(t.Rows, []string{"stratified warm-up (shipped)", fm(stats.Mean(bests)), fm(stats.Max(bests))})
	// Ablated: a tiny warm-up that cannot cover the 6 levels.
	bests = bestsOver(func(rng *rand.Rand) optimizer.Optimizer {
		return bo.NewWith(sp, rng, bo.Options{OneHot: true, LogY: true, RefineIters: 40, FitHyperEvery: 10, InitSamples: 3})
	}, obj, budget, seeds, seed)
	t.Rows = append(t.Rows, []string{"3-sample warm-up (ablated)", fm(stats.Mean(bests)), fm(stats.Max(bests))})
	t.Notes = "Stratification spends a few extra warm-up trials (slightly worse mean) to guarantee every flush_method level is observed, which caps the worst-seed outcome — the un-stratified variant occasionally never tries the fast levels and locks into a slow category."
	return t, nil
}

// ---- A3: SMAC random interleaving ----

func init() { registry["A3"] = runA3 }

func runA3(quick bool, seed int64) (Table, error) {
	d := simsys.NewDBMS(simsys.MediumVM())
	wl := workload.TPCC()
	obj := dbmsLatencyObjective(d, wl)
	budget := 40
	seeds := pick(quick, 6, 24)
	t := Table{
		ID:      "A3",
		Title:   "Ablation: SMAC random interleaving vs pure exploitation",
		Claim:   "(framework design choice) forest variance collapses in unexplored regions, so EI alone over-exploits",
		Headers: []string{"variant", "mean best latency (ms)"},
	}
	for _, v := range []struct {
		name       string
		interleave float64
	}{
		{"interleave 0.3 (shipped)", 0.3},
		{"no interleaving (ablated)", -1},
	} {
		iv := v.interleave
		best := meanBestOver(func(rng *rand.Rand) optimizer.Optimizer {
			return smac.NewWith(d.Space(), rng, smac.Options{RandomInterleave: iv})
		}, obj, budget, seeds, seed)
		t.Rows = append(t.Rows, []string{v.name, fm(best)})
	}
	t.Notes = "At this 40-trial budget the two variants converge on the DBMS surface; interleaving is kept because it is the original SMAC's guard against tree-variance collapse and it never measurably hurts — the failure mode it prevents (locking onto a flat plateau early) appeared at smaller budgets during development."
	return t, nil
}

// ---- A4: TUNA outlier rejection ----

func init() { registry["A4"] = runA4 }

func runA4(quick bool, seed int64) (Table, error) {
	seeds := pick(quick, 20, 80)
	t := Table{
		ID:      "A4",
		Title:   "Ablation: MAD outlier rejection inside TUNA scoring",
		Claim:   "(framework design choice) unstable machines emit wild samples that poison unguarded aggregates",
		Headers: []string{"variant", "mean |score error| vs truth"},
	}
	// TUNA's paired relative scores already cancel *persistently slow*
	// machines (duet effect), so the rejection earns its keep against
	// *unstable* machines: one replica whose measurements occasionally
	// explode. trueRel is the noise-free relative difference.
	const trueRel = -0.3
	for _, v := range []struct {
		name     string
		outlierK float64
	}{
		{"MAD rejection k=3 (shipped)", 3},
		{"no rejection (ablated)", 1e9},
	} {
		var errs []float64
		for s := 0; s < seeds; s++ {
			rng := rand.New(rand.NewSource(seed + int64(s)*97))
			sampler := &unstableSampler{rng: rng, rel: trueRel, replicas: 5, wild: 0}
			tuna := noise.NewTUNA(sampler, space.Config{"which": "baseline"})
			tuna.MaxReplicas = 5
			tuna.OutlierK = v.outlierK
			score, _, err := tuna.Score(space.Config{"which": "trial"})
			if err != nil {
				continue
			}
			errs = append(errs, math.Abs(score-trueRel))
		}
		t.Rows = append(t.Rows, []string{v.name, fm(stats.Mean(errs))})
	}
	t.Notes = "One of five replicas is unstable (samples occasionally 5-10x off); the MAD filter drops its wild relative scores, keeping the stable score near the true -30% improvement."
	return t, nil
}

// unstableSampler measures a baseline/trial pair with one unstable replica
// whose samples are occasionally wildly wrong.
type unstableSampler struct {
	rng      *rand.Rand
	rel      float64
	replicas int
	wild     int // the unstable replica index
}

func (u *unstableSampler) Replicas() int { return u.replicas }

func (u *unstableSampler) Sample(cfg space.Config, replica int) float64 {
	base := 1.0
	if cfg.Str("which") == "trial" {
		base = 1 + u.rel
	}
	noise := 0.02 * u.rng.NormFloat64()
	if replica == u.wild && u.rng.Float64() < 0.6 {
		// The unstable machine: a throttling burst inflates the sample.
		noise += u.rng.Float64() * 6
	}
	return base * (1 + noise)
}

// ---- A5: straggler hedging in the async scheduler ----

func init() { registry["A5"] = runA5 }

func runA5(quick bool, seed int64) (Table, error) {
	// The cloud machine lottery: a 10-worker fleet where 10% of the hosts
	// (one) run 10x slower. The barrier semantics wait for the straggler
	// at every batch; the hedged scheduler duplicates any trial running
	// past the 0.9-quantile of recent durations onto a fast host and takes
	// the first result. Both variants run the identical trial sequence
	// (hedging consumes no optimizer randomness), so the comparison is an
	// exact A/B on wall-clock.
	hosts := make([]cloud.HostProfile, 10)
	for i := range hosts {
		hosts[i] = cloud.HostProfile{Mult: 1}
	}
	hosts[9] = cloud.HostProfile{Mult: 10, Outlier: true}
	budget := pick(quick, 100, 400)
	d := simsys.NewDBMS(simsys.MediumVM())
	wl := workload.TPCC()
	t := Table{
		ID:      "A5",
		Title:   "Ablation: straggler hedging vs the batch barrier on a 10%-slow fleet",
		Claim:   "(framework design choice) one slow host gates every synchronized batch; hedged duplicates reclaim the lost wall-clock",
		Headers: []string{"variant", "wall clock (s)", "total cost (s)", "hedges", "hedge wins"},
	}
	var barrierWall, hedgedWall float64
	for _, v := range []struct {
		name  string
		hedge float64
	}{
		{"barrier (hedging off)", 0},
		{"hedged q=0.9 (shipped)", 0.9},
	} {
		env := &trial.SystemEnv{Sys: d, WL: wl}
		o := optimizer.NewRandom(d.Space(), rand.New(rand.NewSource(seed)))
		rep, err := trial.Run(o, env, trial.Options{
			Budget:    budget,
			Parallel:  10,
			Scheduler: &sched.Options{Hosts: hosts, HedgeQuantile: v.hedge},
		})
		if err != nil {
			return Table{}, err
		}
		if v.hedge == 0 {
			barrierWall = rep.WallClockSeconds
		} else {
			hedgedWall = rep.WallClockSeconds
		}
		t.Rows = append(t.Rows, []string{v.name, fmN(rep.WallClockSeconds), fmN(rep.TotalCostSeconds),
			fmN(float64(rep.Hedges)), fmN(float64(rep.HedgeWins))})
	}
	speedup := 0.0
	if hedgedWall > 0 {
		speedup = barrierWall / hedgedWall
	}
	t.Notes = fmt.Sprintf("Hedging trades a little extra fleet cost (the duplicates' burned seconds) for a %.1fx wall-clock speedup: after the first batch primes the duration window, every straggler is re-issued on a fast host and wins. The virtual clock keeps the whole comparison deterministic.", speedup)
	return t, nil
}
