package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"autotune/internal/bo"
	"autotune/internal/gp"
	"autotune/internal/importance"
	"autotune/internal/manual"
	"autotune/internal/optimizer"
	"autotune/internal/simsys"
	"autotune/internal/space"
	"autotune/internal/stats"
	"autotune/internal/workload"
)

// ---- F21: multi-task optimization (slide 59) ----

func init() { registry["F21"] = runF21 }

// runF21 reproduces the multi-target optimization idea: data collected
// while tuning the DBMS on a medium VM (task 0) accelerates tuning the
// same workload on a large VM (task 1) through a separable multi-output
// kernel K((i,x),(j,x')) = K_t(i,j) x K_x(x,x').
func runF21(quick bool, seed int64) (Table, error) {
	srcSys := simsys.NewDBMS(simsys.MediumVM())
	dstSys := simsys.NewDBMS(simsys.LargeVM())
	wl := workload.TPCC()
	srcObj := dbmsLatencyObjective(srcSys, wl)
	dstObj := dbmsLatencyObjective(dstSys, wl)
	sp := srcSys.Space()

	srcN := pick(quick, 30, 60)
	budget := pick(quick, 12, 20)
	seeds := pick(quick, 3, 10)
	t := Table{
		ID:      "F21",
		Title:   "Multi-task optimization: reuse medium-VM trials when tuning the large VM",
		Claim:   "Exploit correlations between objectives with separable multi-output kernels (slide 59)",
		Headers: []string{"strategy", fmt.Sprintf("mean best large-VM latency after %d trials (ms)", budget)},
	}
	var multi, single, random []float64
	for s := 0; s < seeds; s++ {
		rng := rand.New(rand.NewSource(seed + int64(s)*557))
		// Source task history (already paid for by a prior tuning session).
		var srcX [][]float64
		var srcY []float64
		for i := 0; i < srcN; i++ {
			cfg := sp.Sample(rng)
			v := srcObj(cfg)
			if v >= 1e6 {
				continue
			}
			srcX = append(srcX, gp.WithTask(0, sp.EncodeOneHot(cfg)))
			srcY = append(srcY, math.Log(v))
		}
		multi = append(multi, runTaskEI(sp, dstObj, srcX, srcY, budget, true, rng))
		single = append(single, runTaskEI(sp, dstObj, nil, nil, budget, false,
			rand.New(rand.NewSource(seed+int64(s)*557+1))))
		// Random baseline.
		rb := math.Inf(1)
		rrng := rand.New(rand.NewSource(seed + int64(s)*557 + 2))
		for i := 0; i < budget; i++ {
			if v := dstObj(sp.Sample(rrng)); v < rb {
				rb = v
			}
		}
		random = append(random, rb)
	}
	t.Rows = append(t.Rows, []string{"multi-task GP (shares medium-VM data)", fm(stats.Mean(multi))})
	t.Rows = append(t.Rows, []string{"single-task GP (target data only)", fm(stats.Mean(single))})
	t.Rows = append(t.Rows, []string{"random", fm(stats.Mean(random))})
	t.Notes = "The fitted inter-task correlation is high (the response surfaces differ mostly by scale), so the multi-task surrogate starts with a usable map of the space and reaches good large-VM configs within a handful of trials."
	return t, nil
}

// runTaskEI is a minimal GP-EI loop over task-1 configurations, optionally
// warm-loaded with task-0 observations through the Task kernel.
func runTaskEI(sp *space.Space, obj func(space.Config) float64, srcX [][]float64, srcY []float64, budget int, multi bool, rng *rand.Rand) float64 {
	kernel := gp.Scale(1, gp.NewTask(0.8, gp.NewMatern(2.5, 0.3)))
	acq := bo.NewEI()
	xs := append([][]float64(nil), srcX...)
	ys := append([]float64(nil), srcY...)
	best := math.Inf(1)
	bestLog := math.Inf(1)
	for i := 0; i < budget; i++ {
		var cand space.Config
		// First trials: default then random; afterwards EI over the model.
		switch {
		case i == 0:
			cand = sp.Default()
		case i < 3 && !multi:
			cand = sp.Sample(rng)
		default:
			model := gp.New(kernel.Clone(), 1e-4)
			if err := model.Fit(xs, ys); err != nil {
				cand = sp.Sample(rng)
				break
			}
			ref := bestLog
			if math.IsInf(ref, 1) && len(ys) > 0 {
				ref = stats.Min(ys)
			}
			bestScore := math.Inf(-1)
			for c := 0; c < 256; c++ {
				cfg := sp.Sample(rng)
				mu, v, err := model.Predict(gp.WithTask(1, sp.EncodeOneHot(cfg)))
				if err != nil {
					continue
				}
				if sc := acq.Score(mu, math.Sqrt(v), ref); sc > bestScore {
					bestScore, cand = sc, cfg
				}
			}
			if cand == nil {
				cand = sp.Sample(rng)
			}
		}
		v := obj(cand)
		if v < best {
			best = v
		}
		if v < 1e6 {
			lv := math.Log(v)
			if lv < bestLog {
				bestLog = lv
			}
			xs = append(xs, gp.WithTask(1, sp.EncodeOneHot(cand)))
			ys = append(ys, lv)
		}
	}
	return best
}

// ---- F22: manual-derived hints (DB-BERT / GPTuner substitute, slides 63-64) ----

func init() { registry["F22"] = runF22 }

func runF22(quick bool, seed int64) (Table, error) {
	d := simsys.NewDBMS(simsys.MediumVM())
	wl := workload.TPCC()
	obj := dbmsLatencyObjective(d, wl)
	budget := pick(quick, 15, 30)
	seeds := pick(quick, 4, 12)

	hints := manual.Extract(manual.DBMSCorpus())
	seeded := manual.ApplyHints(d, hints)
	sub, complete, err := importance.Narrow(d.Space(), manual.TopKnobs(hints, 8), seeded)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "F22",
		Title:   "Manual mining: documentation-derived knob priors and ranges",
		Claim:   "DB-BERT/GPTuner read the manual to find important knobs and biased ranges before optimizing (slides 63-64)",
		Headers: []string{"strategy", fmt.Sprintf("mean best latency after %d trials (ms)", budget)},
	}
	// (a) Uninformed BO over all 21 knobs.
	cold := meanBestOver(func(rng *rand.Rand) optimizer.Optimizer {
		return bo.New(d.Space(), rng)
	}, obj, budget, seeds, seed)
	t.Rows = append(t.Rows, []string{"bo, full space, no priors", fm(cold)})
	// (b) Manual-informed: start from the documented config, tune only the
	// manual's top-8 knobs.
	informed := meanBestOver(func(rng *rand.Rand) optimizer.Optimizer {
		return bo.New(sub, rng)
	}, func(c space.Config) float64 { return obj(complete(c)) }, budget, seeds, seed)
	t.Rows = append(t.Rows, []string{"bo, manual top-8 + documented ranges", fm(informed)})
	// (c) The documented config alone, no tuning.
	t.Rows = append(t.Rows, []string{"documented config, no tuning", fm(obj(seeded))})
	t.Rows = append(t.Rows, []string{"shipped defaults, no tuning", fm(obj(d.Space().Default()))})
	t.Notes = "Mining the manual for emphasis ('the single most important memory area', 'strongly recommended') recovers the influential knobs and a strong starting configuration; the informed tuner matches the cold tuner with a fraction of the search space."
	return t, nil
}
