package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"autotune/internal/bo"
	"autotune/internal/core"
	"autotune/internal/mfidelity"
	"autotune/internal/moo"
	"autotune/internal/optimizer"
	"autotune/internal/projection"
	"autotune/internal/simsys"
	"autotune/internal/space"
	"autotune/internal/stats"
	"autotune/internal/transfer"
	"autotune/internal/trial"
	"autotune/internal/workload"
)

// newByName builds an optimizer from the core registry.
func newByName(name string, sp *space.Space, rng *rand.Rand) (optimizer.Optimizer, error) {
	return core.NewOptimizer(name, sp, rng)
}

// ---- F9: parallel optimization (slide 57) ----

func init() { registry["F9"] = runF9 }

func runF9(quick bool, seed int64) (Table, error) {
	d := simsys.NewDBMS(simsys.MediumVM())
	wl := workload.TPCC()
	budget := pick(quick, 24, 48)
	seeds := pick(quick, 3, 10)
	t := Table{
		ID:      "F9",
		Title:   "Synchronous batch parallelism (constant-liar BO)",
		Claim:   "Suggest k configurations at once; batch evaluation cuts wall clock at some quality cost (slide 57)",
		Headers: []string{"batch size", "mean best latency (ms)", "wall clock (s, simulated)", "speedup"},
	}
	var seqWall float64
	for _, k := range []int{1, 4, 8} {
		var bests, walls []float64
		for s := 0; s < seeds; s++ {
			rng := rand.New(rand.NewSource(seed + int64(s)*211))
			env := &trial.SystemEnv{Sys: d, WL: wl, BaseDurationSec: 300}
			o := bo.New(d.Space(), rng)
			rep, err := trial.Run(o, env, trial.Options{Budget: budget, Parallel: k})
			if err != nil {
				return t, err
			}
			bests = append(bests, rep.BestValue)
			walls = append(walls, rep.WallClockSeconds)
		}
		wall := stats.Mean(walls)
		if k == 1 {
			seqWall = wall
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(k), fm(stats.Mean(bests)), fmN(wall), fm(seqWall / wall),
		})
	}
	t.Notes = "Batch-k wall clock shrinks ~k-fold; the constant-liar heuristic keeps batch members diverse so quality degrades only mildly."
	return t, nil
}

// ---- F10: multi-objective Pareto (slide 58) ----

func init() { registry["F10"] = runF10 }

func runF10(quick bool, seed int64) (Table, error) {
	sys := simsys.NewSpark(simsys.MediumVM())
	sys.NoiseSigma = 0
	wl := workload.TPCH(10)
	budget := pick(quick, 60, 120)
	objectives := func(cfg space.Config) []float64 {
		m, err := sys.Run(cfg, wl, 1, nil)
		if err != nil {
			return []float64{1e6, 1e6}
		}
		runtimeSec := m.LatencyMS / 1000
		jobCost := m.CostUSDPerHour * runtimeSec / 3600 // USD for this run
		return []float64{runtimeSec, jobCost}
	}
	ref := [2]float64{200, 0.05}
	t := Table{
		ID:      "F10",
		Title:   "Multi-objective tuning: Spark runtime vs cost Pareto front",
		Claim:   "No single optimum; report the Pareto frontier (e.g. via ParEGO scalarization) (slide 58)",
		Headers: []string{"algorithm", "front size", "hypervolume", "fastest (s)", "cheapest (USD)"},
	}
	algos := []struct {
		name string
		mk   func(rng *rand.Rand) moo.MultiOptimizer
	}{
		{"parego", func(rng *rand.Rand) moo.MultiOptimizer {
			p, _ := moo.NewParEGO(sys.Space(), 2, rng)
			return p
		}},
		{"nsga2", func(rng *rand.Rand) moo.MultiOptimizer {
			n, _ := moo.NewNSGAII(sys.Space(), 2, rng)
			return n
		}},
		{"random", func(rng *rand.Rand) moo.MultiOptimizer {
			r, _ := moo.NewRandomMulti(sys.Space(), 2, rng)
			return r
		}},
	}
	for _, a := range algos {
		rng := rand.New(rand.NewSource(seed))
		m := a.mk(rng)
		if err := moo.RunMulti(m, objectives, budget); err != nil {
			return t, err
		}
		front := m.Front()
		var objs [][]float64
		fastest, cheapest := math.Inf(1), math.Inf(1)
		for _, e := range front {
			objs = append(objs, e.Objectives)
			if e.Objectives[0] < fastest {
				fastest = e.Objectives[0]
			}
			if e.Objectives[1] < cheapest {
				cheapest = e.Objectives[1]
			}
		}
		hv := moo.Hypervolume2D(objs, ref)
		t.Rows = append(t.Rows, []string{
			a.name, strconv.Itoa(len(front)), fm(hv), fm(fastest), fm(cheapest),
		})
	}
	t.Notes = "ParEGO and NSGA-II trace the runtime/cost trade-off (more executors = faster but pricier); random needs far more evaluations for the same hypervolume."
	return t, nil
}

// ---- F11: constraints & structured spaces (slides 60-61) ----

func init() { registry["F11"] = runF11 }

func runF11(quick bool, seed int64) (Table, error) {
	d := simsys.NewDBMS(simsys.SmallVM()) // tight RAM: the cliff is nearby
	wl := workload.TPCC()
	budget := pick(quick, 30, 60)
	seeds := pick(quick, 3, 10)
	t := Table{
		ID:      "F11",
		Title:   "Constrained tuning: declared memory constraint vs learning the crash cliff",
		Claim:   "Encode cross-knob constraints (buffer_pool_chunk <= pool/instances style) instead of crashing into them (slide 60)",
		Headers: []string{"strategy", "mean best latency (ms)", "mean crashed trials"},
	}
	run := func(sp *space.Space) (best, crashes float64) {
		var bests, crs []float64
		for s := 0; s < seeds; s++ {
			rng := rand.New(rand.NewSource(seed + int64(s)*401))
			env := &trial.SystemEnv{Sys: &spaceOverrideSystem{d, sp}, WL: wl}
			o := bo.New(sp, rng)
			rep, err := trial.Run(o, env, trial.Options{Budget: budget})
			if err != nil {
				continue
			}
			bests = append(bests, rep.BestValue)
			crs = append(crs, float64(rep.Crashes))
		}
		return stats.Mean(bests), stats.Mean(crs)
	}
	unconstrained, crashesU := run(d.Space())
	constrained, crashesC := run(d.Space().WithConstraints(d.MemoryConstraint(wl.Clients)))
	t.Rows = append(t.Rows, []string{"unconstrained (learns the cliff)", fm(unconstrained), fm(crashesU)})
	t.Rows = append(t.Rows, []string{"declared constraint (rejection sampling)", fm(constrained), fm(crashesC)})
	t.Notes = "Declaring the memory constraint eliminates crashed trials and spends the budget inside the feasible region; the unconstrained run burns trials crashing."
	return t, nil
}

// spaceOverrideSystem exposes a different (e.g. constrained) space for the
// same underlying system.
type spaceOverrideSystem struct {
	simsys.System
	sp *space.Space
}

func (s *spaceOverrideSystem) Space() *space.Space { return s.sp }

// ---- F12: LlamaTune-style dimensionality reduction (slide 62) ----

func init() { registry["F12"] = runF12 }

func runF12(quick bool, seed int64) (Table, error) {
	d := simsys.NewDBMS(simsys.MediumVM())
	wl := workload.TPCC()
	obj := dbmsLatencyObjective(d, wl)
	budget := pick(quick, 30, 60)
	seeds := pick(quick, 4, 15)
	t := Table{
		ID:      "F12",
		Title:   "LlamaTune: random-projection search space reduction (21 knobs -> 4 latent dims)",
		Claim:   "Random projection cuts evaluations up to 11x and finds up to 21% better configs (slide 62, VLDB 2022)",
		Headers: []string{"strategy", "mean best latency (ms)", "mean trials to beat default by 25%"},
	}
	defLat := obj(d.Space().Default())
	target := defLat * 0.75
	type strat struct {
		name string
		mk   func(rng *rand.Rand) (optimizer.Optimizer, func(space.Config) float64)
	}
	strategies := []strat{
		{"bo full 21-d space", func(rng *rand.Rand) (optimizer.Optimizer, func(space.Config) float64) {
			return bo.New(d.Space(), rng), obj
		}},
		{"bo + HeSBO 4-d", func(rng *rand.Rand) (optimizer.Optimizer, func(space.Config) float64) {
			h, _ := projection.NewHeSBO(d.Space(), 4, rng)
			h.SpecialBias = 0.2
			return bo.New(h.LowSpace(), rng), h.Objective(obj, nil)
		}},
		{"random full space", func(rng *rand.Rand) (optimizer.Optimizer, func(space.Config) float64) {
			return optimizer.NewRandom(d.Space(), rng), obj
		}},
	}
	for _, s := range strategies {
		var bests, hitAt []float64
		for sd := 0; sd < seeds; sd++ {
			rng := rand.New(rand.NewSource(seed + int64(sd)*733))
			o, f := s.mk(rng)
			firstHit := math.NaN()
			count := 0
			wrapped := func(cfg space.Config) float64 {
				v := f(cfg)
				count++
				if v <= target && math.IsNaN(firstHit) {
					firstHit = float64(count)
				}
				return v
			}
			_, best, err := optimizer.Run(o, wrapped, budget)
			if err != nil {
				continue
			}
			bests = append(bests, best)
			if math.IsNaN(firstHit) {
				firstHit = float64(budget) * 2 // censored
			}
			hitAt = append(hitAt, firstHit)
		}
		t.Rows = append(t.Rows, []string{s.name, fm(stats.Mean(bests)), fm(stats.Mean(hitAt))})
	}
	t.Notes = "The 4-d latent space reaches the 25%-better-than-default bar in a fraction of the trials the full 21-d space needs — the LlamaTune sample-efficiency shape."
	return t, nil
}

// ---- F13: multi-fidelity (slides 65-66) ----

func init() { registry["F13"] = runF13 }

func runF13(quick bool, seed int64) (Table, error) {
	d := simsys.NewDBMS(simsys.MediumVM())
	d.NoiseSigma = 0.05
	wl := workload.TPCC()
	rng := rand.New(rand.NewSource(seed))
	trueObj := dbmsLatencyObjective(simsys.NewDBMS(simsys.MediumVM()), wl)
	eval := func(cfg space.Config, fid float64) float64 {
		m, err := d.Run(cfg, wl, fid, rng)
		if err != nil {
			return 1e6
		}
		return m.LatencyMS
	}
	n := pick(quick, 27, 81)
	t := Table{
		ID:      "F13",
		Title:   "Multi-fidelity: successive halving / Hyperband vs full-fidelity",
		Claim:   "Run cheaper tests (TPC-H SF1, 1-minute TPC-C) to screen configs; beware transferability (slides 65-66)",
		Headers: []string{"strategy", "true latency of pick (ms)", "total cost (benchmark-units)", "evaluations"},
	}
	sh, err := mfidelity.SuccessiveHalving(d.Space(), eval, nil, n, 1.0/9, 3, rng)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"successive halving", fm(trueObj(sh.Best)), fm(sh.TotalCost), strconv.Itoa(sh.Evaluations)})
	hb, err := mfidelity.Hyperband(d.Space(), eval, nil, 1.0/9, 3, rng)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"hyperband", fm(trueObj(hb.Best)), fm(hb.TotalCost), strconv.Itoa(hb.Evaluations)})
	fx, err := mfidelity.FixedFidelity(d.Space(), eval, nil, int(math.Ceil(sh.TotalCost)), rng)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"full fidelity (cost-matched)", fm(trueObj(fx.Best)), fm(fx.TotalCost), strconv.Itoa(fx.Evaluations)})
	t.Notes = "At matched cost SH/Hyperband screen several times more configurations; the low-fidelity bias (shrunken working set flatters small buffer pools) is visible but survivable because the final rung re-measures at full fidelity."
	return t, nil
}

// ---- F14: knowledge transfer / warm start (slide 67) ----

func init() { registry["F14"] = runF14 }

func runF14(quick bool, seed int64) (Table, error) {
	d := simsys.NewDBMS(simsys.MediumVM())
	src := workload.YCSBB()
	dst := workload.Interpolate(workload.YCSBB(), workload.YCSBA(), 0.25) // similar-ish
	far := workload.TPCH(1)                                               // dissimilar
	srcObj := dbmsLatencyObjective(d, src)
	dstObj := dbmsLatencyObjective(d, dst)
	budget := pick(quick, 10, 20)
	priorBudget := pick(quick, 30, 60)
	seeds := pick(quick, 3, 10)

	t := Table{
		ID:      "F14",
		Title:   "Knowledge transfer: warm-starting from a similar workload's trials",
		Claim:   "Reuse good samples from similar workloads, reuse bad/crashed samples everywhere (slide 67)",
		Headers: []string{"strategy", fmt.Sprintf("mean best after %d trials (ms)", budget)},
	}
	var cold, warm, warmFar []float64
	for s := 0; s < seeds; s++ {
		rng := rand.New(rand.NewSource(seed + int64(s)*997))
		// Build the prior store by tuning the source workload.
		prior := bo.New(d.Space(), rng)
		if _, _, err := optimizer.Run(prior, srcObj, priorBudget); err != nil {
			return t, err
		}
		var rec transfer.Record
		rec.Workload = src.Features()
		for _, obs := range prior.History() {
			rec.Trials = append(rec.Trials, transfer.Trial{Config: obs.Config, Value: obs.Value})
		}
		// trackMin wraps the destination objective so that only *destination*
		// evaluations count toward the reported best — a warm-started
		// optimizer's own Best() would include the replayed source scores.
		trackMin := func() (func(space.Config) float64, *float64) {
			best := math.Inf(1)
			return func(cfg space.Config) float64 {
				v := dstObj(cfg)
				if v < best {
					best = v
				}
				return v
			}, &best
		}
		// Cold start on the destination.
		coldOpt := bo.New(d.Space(), rand.New(rand.NewSource(seed+int64(s)*997+1)))
		coldF, coldBest := trackMin()
		if _, _, err := optimizer.Run(coldOpt, coldF, budget); err != nil {
			return t, err
		}
		cold = append(cold, *coldBest)
		// Warm start from the similar workload.
		warmOpt := bo.New(d.Space(), rand.New(rand.NewSource(seed+int64(s)*997+2)))
		if _, err := transfer.WarmStart(warmOpt, []transfer.Record{rec}, transfer.WarmStartOptions{
			MaxTrials: 20, SimilarityWeighting: true, TargetWorkload: dst.Features(),
		}); err != nil {
			return t, err
		}
		warmF, warmBest := trackMin()
		// Re-evaluate the prior's best configs on the new workload first
		// (their replayed scores describe the old workload), then let the
		// optimizer spend the rest of the budget.
		top := transfer.TopConfigs([]transfer.Record{rec}, 3)
		for _, cfg := range top {
			if err := warmOpt.Observe(cfg, warmF(cfg)); err != nil {
				return t, err
			}
		}
		if _, _, err := optimizer.Run(warmOpt, warmF, budget-len(top)); err != nil {
			return t, err
		}
		warm = append(warm, *warmBest)
		// Warm start pretending the prior came from a dissimilar workload:
		// similarity weighting should shrink its influence.
		recFar := rec
		recFar.Workload = far.Features()
		farOpt := bo.New(d.Space(), rand.New(rand.NewSource(seed+int64(s)*997+3)))
		if _, err := transfer.WarmStart(farOpt, []transfer.Record{recFar}, transfer.WarmStartOptions{
			MaxTrials: 20, SimilarityWeighting: true, TargetWorkload: dst.Features(),
		}); err != nil {
			return t, err
		}
		farF, farBest := trackMin()
		topFar := transfer.TopConfigs([]transfer.Record{recFar}, 3)
		for _, cfg := range topFar {
			if err := farOpt.Observe(cfg, farF(cfg)); err != nil {
				return t, err
			}
		}
		if _, _, err := optimizer.Run(farOpt, farF, budget-len(topFar)); err != nil {
			return t, err
		}
		warmFar = append(warmFar, *farBest)
	}
	t.Rows = append(t.Rows, []string{"cold start", fm(stats.Mean(cold))})
	t.Rows = append(t.Rows, []string{"warm start (similar workload)", fm(stats.Mean(warm))})
	t.Rows = append(t.Rows, []string{"warm start (dissimilar, similarity-weighted)", fm(stats.Mean(warmFar))})
	t.Notes = "Warm starting from a similar workload reaches in a handful of trials what cold start needs the whole budget for; dissimilar priors are shrunk toward the mean and neither help nor hurt much."
	return t, nil
}
