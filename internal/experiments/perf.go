package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"autotune/internal/bo"
	"autotune/internal/gp"
	"autotune/internal/space"
)

// SuggestScalingPoint is one row of the suggest-path scaling benchmark:
// at history size n, the cost of absorbing one new observation into the
// surrogate (full O(n³) refit vs O(n²) rank-1 update) and the cost of a
// full Observe+Suggest cycle at the BO level under each policy.
type SuggestScalingPoint struct {
	N int `json:"n"`
	// Surrogate maintenance alone, at the GP level.
	SurrogateFullNs float64 `json:"surrogate_full_refit_ns"`
	SurrogateIncNs  float64 `json:"surrogate_incremental_ns"`
	SurrogateRatio  float64 `json:"surrogate_speedup"`
	// End-to-end Suggest (maintenance + acquisition search + refinement).
	SuggestFullNs float64 `json:"suggest_full_ns"`
	SuggestIncNs  float64 `json:"suggest_incremental_ns"`
	SuggestRatio  float64 `json:"suggest_speedup"`
}

// scalingSpace is a realistic mixed tuning space: 8 numeric knobs plus a
// categorical, one-hot encoded to 11 dimensions.
func scalingSpace() *space.Space {
	params := []space.Param{space.Categorical("policy", "lru", "lfu", "arc")}
	for i := 0; i < 8; i++ {
		params = append(params, space.Float(fmt.Sprintf("k%d", i), 0, 1))
	}
	return space.MustNew(params...)
}

// scalingObjective is a smooth deterministic surface over scalingSpace.
func scalingObjective(c space.Config) float64 {
	base := map[string]float64{"lru": 0.4, "lfu": 0.1, "arc": 0.0}[c.Str("policy")]
	s := base
	for i := 0; i < 8; i++ {
		d := c.Float(fmt.Sprintf("k%d", i)) - 0.5 + float64(i)*0.03
		s += d * d * (1 + 0.2*float64(i))
	}
	return s
}

func medianDur(ds []time.Duration) float64 {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return float64(ds[len(ds)/2].Nanoseconds())
}

// SuggestScaling measures the BO suggest path at several history sizes,
// comparing the incremental surrogate (rank-1 Cholesky updates over a
// cached gram matrix) against from-scratch refits. The surrogate columns
// isolate maintenance cost — the O(n³) vs O(n²) tentpole — while the
// suggest columns are end-to-end cycles, which both arms share acquisition
// search cost on, so their ratio is smaller by construction. Timings are
// medians over repetitions; everything else is a pure function of seed.
func SuggestScaling(quick bool, seed int64) ([]SuggestScalingPoint, error) {
	sizes := []int{50, 100, 200, 500}
	reps := pick(quick, 3, 7)
	s := scalingSpace()
	kernel := gp.Scale(1, gp.NewMatern(2.5, 0.2))

	var out []SuggestScalingPoint
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		pts := make([]space.Config, n+reps)
		xs := make([][]float64, n+reps)
		ys := make([]float64, n+reps)
		for i := range pts {
			pts[i] = s.Sample(rng)
			xs[i] = s.EncodeOneHot(pts[i])
			ys[i] = scalingObjective(pts[i])
		}

		// Surrogate level: absorb observation n into a model holding n
		// points, by full refit vs rank-1 update.
		fullTimes := make([]time.Duration, 0, reps)
		for r := 0; r < reps; r++ {
			g := gp.New(kernel.Clone(), 1e-6)
			start := time.Now()
			if err := g.Fit(xs[:n+1], ys[:n+1]); err != nil {
				return nil, fmt.Errorf("full fit n=%d: %w", n, err)
			}
			fullTimes = append(fullTimes, time.Since(start))
		}
		base := gp.New(kernel.Clone(), 1e-6)
		if err := base.Fit(xs[:n], ys[:n]); err != nil {
			return nil, fmt.Errorf("base fit n=%d: %w", n, err)
		}
		incTimes := make([]time.Duration, 0, reps)
		for r := 0; r < reps; r++ {
			g := base.Clone() // clone outside the timer: Observe is the unit
			start := time.Now()
			if err := g.Observe(xs[n], ys[n]); err != nil {
				return nil, fmt.Errorf("observe n=%d: %w", n, err)
			}
			incTimes = append(incTimes, time.Since(start))
		}

		// BO level: a warmed optimizer absorbs one observation and suggests.
		cycle := func(fullRefit bool) ([]time.Duration, error) {
			b := bo.NewWith(s, rand.New(rand.NewSource(seed)), bo.Options{
				OneHot:      true,
				RefineIters: 40,
				InitSamples: 2,
				FullRefit:   fullRefit,
			})
			for i := 0; i < n; i++ {
				if err := b.Observe(pts[i], ys[i]); err != nil {
					return nil, err
				}
			}
			if _, err := b.Suggest(); err != nil { // warm: initial full fit
				return nil, err
			}
			times := make([]time.Duration, 0, reps)
			for r := 0; r < reps; r++ {
				if err := b.Observe(pts[n+r], ys[n+r]); err != nil {
					return nil, err
				}
				start := time.Now()
				if _, err := b.Suggest(); err != nil {
					return nil, err
				}
				times = append(times, time.Since(start))
			}
			return times, nil
		}
		sugFull, err := cycle(true)
		if err != nil {
			return nil, fmt.Errorf("bo full arm n=%d: %w", n, err)
		}
		sugInc, err := cycle(false)
		if err != nil {
			return nil, fmt.Errorf("bo incremental arm n=%d: %w", n, err)
		}

		p := SuggestScalingPoint{
			N:               n,
			SurrogateFullNs: medianDur(fullTimes),
			SurrogateIncNs:  medianDur(incTimes),
			SuggestFullNs:   medianDur(sugFull),
			SuggestIncNs:    medianDur(sugInc),
		}
		if p.SurrogateIncNs > 0 {
			p.SurrogateRatio = p.SurrogateFullNs / p.SurrogateIncNs
		} else {
			p.SurrogateRatio = math.Inf(1)
		}
		if p.SuggestIncNs > 0 {
			p.SuggestRatio = p.SuggestFullNs / p.SuggestIncNs
		}
		out = append(out, p)
	}
	return out, nil
}
