package experiments

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"autotune/internal/server"
	"autotune/internal/studystore"
)

// observe.go is the BENCH_9 harness: durable observe throughput with and
// without group commit, at matched durability (every ack strictly after
// the fsync covering it). Two layers are measured on the same disk:
//
//   - Store saturation: concurrent writers calling AppendBatch directly.
//     This isolates the durable-write path the group-commit PR changed —
//     the per-caller-fsync baseline hard-serializes at ~1/fsync, so the
//     ratio here is the honest measure of fsync amortization.
//   - Service saturation: the real daemon on loopback HTTP, workers
//     flooding observe requests. This shows how much of the store-level
//     win survives HTTP framing, JSON, and session locking end to end.
//
// The baseline arm is the identical binary with DisableGroupCommit set:
// the same commit path forced to groups of one, i.e. exactly the PR 6
// write path (one fsync per appender).

// ObserveArm describes one service-saturation load shape.
type ObserveArm struct {
	Name    string `json:"name"`
	Studies int    `json:"studies"`
	Workers int    `json:"workers"`
	// ObservePerBatch is the observations carried per observe request;
	// every request is one durability barrier.
	ObservePerBatch int    `json:"observe_per_batch"`
	GroupCommit     bool   `json:"group_commit"`
	Duration        string `json:"duration"`
}

// ObserveArmResult is the measured outcome of one service arm.
type ObserveArmResult struct {
	Arm           ObserveArm `json:"arm"`
	WallSeconds   float64    `json:"wall_seconds"`
	Observes      int64      `json:"observes"`
	Errors        int64      `json:"errors"`
	ObservePerSec float64    `json:"observe_per_sec"`
	ObserveP50Ms  float64    `json:"observe_p50_ms"`
	ObserveP99Ms  float64    `json:"observe_p99_ms"`
	// Store counters after the run: how many fsyncs the arm cost and how
	// many observe batches each one amortized.
	Fsyncs    int     `json:"fsyncs"`
	MeanGroup float64 `json:"mean_group"`
	MaxGroup  int     `json:"max_group"`
}

// StoreSaturationResult is the store-level comparison: the same
// concurrent append load against the per-caller-fsync baseline and the
// group-commit path.
type StoreSaturationResult struct {
	Writers         int     `json:"writers"`
	Seconds         float64 `json:"seconds"`
	BaselineRecords int64   `json:"baseline_records"`
	BaselinePerSec  float64 `json:"baseline_per_sec"`
	BaselineFsyncs  int     `json:"baseline_fsyncs"`
	GroupRecords    int64   `json:"group_records"`
	GroupPerSec     float64 `json:"group_per_sec"`
	GroupFsyncs     int     `json:"group_fsyncs"`
	GroupMean       float64 `json:"group_mean"`
	GroupMax        int     `json:"group_max"`
	Ratio           float64 `json:"ratio"`
}

// ObserveResult is the full BENCH_9 document body.
type ObserveResult struct {
	Store        StoreSaturationResult `json:"store"`
	Baseline     ObserveArmResult      `json:"service_baseline"`
	Group        ObserveArmResult      `json:"service_group"`
	ServiceRatio float64               `json:"service_ratio"`
}

// storeSaturation floods one store with single-record appends from
// `writers` goroutines for `measure`, with group commit on or off, and
// returns the durable record rate plus the fsync counters.
func storeSaturation(writers int, measure time.Duration, group bool) (records int64, seconds float64, stats studystore.Stats, err error) {
	dir, err := os.MkdirTemp("", "observe-bench")
	if err != nil {
		return 0, 0, stats, err
	}
	defer os.RemoveAll(dir)
	st, err := studystore.Open(dir, studystore.Options{DisableGroupCommit: !group})
	if err != nil {
		return 0, 0, stats, err
	}
	defer st.Close()

	var (
		wg       sync.WaitGroup
		total    atomic.Int64
		errMu    sync.Mutex
		firstErr error
		deadline = time.Now().Add(measure)
		start    = time.Now()
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					fail(fmt.Errorf("writer %d panicked: %v", w, r))
				}
				wg.Done()
			}()
			payload := []byte(fmt.Sprintf(`{"writer":%d}`, w))
			study := fmt.Sprintf("w%03d", w)
			for id := int64(0); time.Now().Before(deadline); id++ {
				rec := studystore.Record{Study: study, ID: id, Payload: payload}
				if err := st.AppendBatch([]studystore.Record{rec}); err != nil {
					fail(err)
					return
				}
				total.Add(1)
			}
		}()
	}
	wg.Wait()
	seconds = time.Since(start).Seconds()
	if firstErr != nil {
		return 0, 0, stats, firstErr
	}
	return total.Load(), seconds, st.Stats(), nil
}

// StoreSaturation runs the baseline and group arms back to back on the
// same filesystem and returns the comparison.
func StoreSaturation(writers int, measure time.Duration) (StoreSaturationResult, error) {
	baseRecs, baseSecs, baseStats, err := storeSaturation(writers, measure, false)
	if err != nil {
		return StoreSaturationResult{}, fmt.Errorf("baseline: %w", err)
	}
	grpRecs, grpSecs, grpStats, err := storeSaturation(writers, measure, true)
	if err != nil {
		return StoreSaturationResult{}, fmt.Errorf("group: %w", err)
	}
	res := StoreSaturationResult{
		Writers:         writers,
		Seconds:         measure.Seconds(),
		BaselineRecords: baseRecs,
		BaselinePerSec:  float64(baseRecs) / baseSecs,
		BaselineFsyncs:  baseStats.Fsyncs,
		GroupRecords:    grpRecs,
		GroupPerSec:     float64(grpRecs) / grpSecs,
		GroupFsyncs:     grpStats.Fsyncs,
		GroupMean:       grpStats.MeanGroup(),
		GroupMax:        grpStats.MaxGroup,
	}
	if res.BaselinePerSec > 0 {
		res.Ratio = res.GroupPerSec / res.BaselinePerSec
	}
	return res, nil
}

// observeServiceArm boots the daemon with the arm's commit mode and
// floods it with observe-only traffic: each worker owns one study and
// reports synthetic trials (observes carry the config, so no suggest
// round-trip dilutes the write path).
func observeServiceArm(arm ObserveArm, seed int64) (ObserveArmResult, error) {
	measure, err := time.ParseDuration(arm.Duration)
	if err != nil {
		return ObserveArmResult{}, err
	}
	env, err := startService(server.Options{
		AdmissionLimit:     2 * arm.Workers,
		DisableGroupCommit: !arm.GroupCommit,
	})
	if err != nil {
		return ObserveArmResult{}, err
	}
	defer env.Close()
	c := env.client
	//autolint:ignore ctxpass the load harness is a program edge: cmd/bench owns the process lifetime
	ctx := context.Background()

	studies := make([]string, arm.Studies)
	for i := range studies {
		studies[i] = fmt.Sprintf("obs-%04d", i)
		if _, err := c.CreateStudy(ctx, studies[i], serviceSpec("random", seed+int64(i))); err != nil {
			return ObserveArmResult{}, fmt.Errorf("create %s: %w", studies[i], err)
		}
	}
	// One config per study is enough: dedup is by trial ID and the random
	// strategy's Observe is O(1), so the wire and barrier costs dominate
	// exactly as they do for a real fleet reporting results.
	cfg := map[string]any{"cache_mb": 512, "flush_interval": 1.5, "policy": "lru", "direct_io": false}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		lats     []time.Duration
		observes int64
		errs     int64
		firstErr error
		deadline = time.Now().Add(measure)
		start    = time.Now()
	)
	for w := 0; w < arm.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("observe worker %d panicked: %v", w, r)
					}
					errs++
					mu.Unlock()
				}
				wg.Done()
			}()
			study := studies[w%len(studies)]
			var myLats []time.Duration
			var myObs, myErrs int64
			var myFirst error
			next := int64(w) * 1_000_000_000 // disjoint ID ranges per worker
			for time.Now().Before(deadline) {
				obs := make([]server.Observation, arm.ObservePerBatch)
				for j := range obs {
					obs[j] = server.Observation{
						Trial: next, Config: cfg,
						Value: float64((next*2654435761)%1000) / 1000,
					}
					next++
				}
				t0 := time.Now()
				res, err := c.Observe(ctx, study, obs...)
				myLats = append(myLats, time.Since(t0))
				if err != nil {
					myErrs++
					if myFirst == nil {
						myFirst = err
					}
					continue
				}
				myObs += int64(res.Acked)
			}
			mu.Lock()
			lats = append(lats, myLats...)
			observes += myObs
			errs += myErrs
			if firstErr == nil {
				firstErr = myFirst
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	if firstErr != nil {
		return ObserveArmResult{}, fmt.Errorf("observe load: %d request errors, first: %w", errs, firstErr)
	}
	stats := env.srv.StoreStats()

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	quantile := func(q float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		return float64(lats[int(q*float64(len(lats)-1))]) / 1e6
	}
	return ObserveArmResult{
		Arm:           arm,
		WallSeconds:   wall,
		Observes:      observes,
		Errors:        errs,
		ObservePerSec: float64(observes) / wall,
		ObserveP50Ms:  quantile(0.50),
		ObserveP99Ms:  quantile(0.99),
		Fsyncs:        stats.Fsyncs,
		MeanGroup:     stats.MeanGroup(),
		MaxGroup:      stats.MaxGroup,
	}, nil
}

// ObserveThroughput runs the full BENCH_9 comparison: store saturation
// (the gated ratio) plus the end-to-end service arms. workers and
// observePerBatch override the default load shape when > 0.
func ObserveThroughput(quick bool, seed int64, workers, observePerBatch int) (ObserveResult, error) {
	w, opb, dur := 64, 1, 5*time.Second
	if quick {
		w, dur = 16, time.Second
	}
	if workers > 0 {
		w = workers
	}
	if observePerBatch > 0 {
		opb = observePerBatch
	}

	store, err := StoreSaturation(w, dur)
	if err != nil {
		return ObserveResult{}, fmt.Errorf("store saturation: %w", err)
	}

	arm := ObserveArm{
		Studies: w, Workers: w, ObservePerBatch: opb,
		Duration: dur.String(),
	}
	base := arm
	base.Name, base.GroupCommit = "observe-baseline", false
	grp := arm
	grp.Name, grp.GroupCommit = "observe-group", true

	baseRes, err := observeServiceArm(base, seed)
	if err != nil {
		return ObserveResult{}, fmt.Errorf("baseline arm: %w", err)
	}
	grpRes, err := observeServiceArm(grp, seed)
	if err != nil {
		return ObserveResult{}, fmt.Errorf("group arm: %w", err)
	}
	res := ObserveResult{Store: store, Baseline: baseRes, Group: grpRes}
	if baseRes.ObservePerSec > 0 {
		res.ServiceRatio = grpRes.ObservePerSec / baseRes.ObservePerSec
	}
	return res, nil
}
