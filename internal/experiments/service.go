package experiments

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"autotune/internal/server"
)

// service.go is the BENCH_7 load harness: it boots the real autotuned
// server (real store, real fsync barriers) on a loopback listener, floods
// it with concurrent studies over real HTTP+JSON, and measures sustained
// suggest/observe throughput and suggest latency quantiles. The service
// numbers the paper cares about — thousands of coexisting studies, a
// six-figure suggest rate on one box — come from here.

// ServiceArm describes one load shape.
type ServiceArm struct {
	Name    string `json:"name"`
	Studies int    `json:"studies"`
	Workers int    `json:"workers"`
	// Batch is the suggest batch for the random-search fleet; BOBatch
	// the (much smaller) batch for the model-guided studies, whose
	// per-observation cost grows with history.
	Batch   int `json:"batch"`
	BOBatch int `json:"bo_batch"`
	BOShare int `json:"bo_studies"` // model-guided studies mixed in
	// ObservePerBatch is how many trials of each suggested batch the
	// worker reports back (each report crossing the fsync barrier). Real
	// clients evaluate trials much more slowly than the daemon suggests
	// them, so observes trail suggests by design.
	ObservePerBatch int `json:"observe_per_batch"`
	// BOHistoryCap stops feeding a model-guided study once its history
	// reaches this size, mirroring real BO budgets (a GP over unbounded
	// history would dominate the run with O(n³) refits).
	BOHistoryCap int    `json:"bo_history_cap"`
	Duration     string `json:"duration"`
}

// ServiceResult is the measured outcome of one service load run.
type ServiceResult struct {
	Arm           ServiceArm `json:"arm"`
	WallSeconds   float64    `json:"wall_seconds"`
	CreateSeconds float64    `json:"create_seconds"` // study fan-in incl. per-create fsync
	Suggests      int64      `json:"suggests"`
	Observes      int64      `json:"observes"`
	Shed          int64      `json:"shed_429"`
	Errors        int64      `json:"errors"`
	SuggestPerSec float64    `json:"suggest_per_sec"`
	ObservePerSec float64    `json:"observe_per_sec"`
	SuggestP50Ms  float64    `json:"suggest_p50_ms"`
	SuggestP99Ms  float64    `json:"suggest_p99_ms"`
	StoreRecords  int        `json:"store_records"`
}

// serviceSpec is the study shape used by the load generator: a small
// mixed space, so wire payloads look like real tuning traffic.
func serviceSpec(opt string, seed int64) server.StudySpec {
	return server.StudySpec{
		Optimizer: opt,
		Seed:      seed,
		Space: []server.ParamSpec{
			{Name: "cache_mb", Kind: "int", Min: 64, Max: 8192, Log: true},
			{Name: "flush_interval", Kind: "float", Min: 0.01, Max: 30, Log: true},
			{Name: "policy", Kind: "categorical", Values: []string{"lru", "fifo", "arc", "clock"}},
			{Name: "direct_io", Kind: "bool"},
		},
	}
}

// serviceEnv is a booted daemon on a loopback listener plus a client
// pointed at it. Close tears all of it down, store directory included.
type serviceEnv struct {
	srv    *server.Server
	hs     *http.Server
	dir    string
	client *server.Client
}

// startService boots the real daemon (real store, real fsync barriers) in a
// temp directory on an ephemeral loopback port.
func startService(opts server.Options) (*serviceEnv, error) {
	dir, err := os.MkdirTemp("", "autotuned-bench")
	if err != nil {
		return nil, err
	}
	if opts.StoreDir == "" {
		opts.StoreDir = dir
	}
	srv, err := server.New(opts)
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		//autolint:ignore droppederr best-effort cleanup; the listen error is what the caller needs
		srv.Close()
		os.RemoveAll(dir)
		return nil, err
	}
	hs := &http.Server{Handler: srv}
	//autolint:ignore goleak Serve exits when serviceEnv.Close releases the listener
	go hs.Serve(ln) //autolint:ignore nakedgo http.Server guards each connection itself; Serve only returns on Close
	return &serviceEnv{
		srv: srv, hs: hs, dir: dir,
		client: server.NewClient("http://" + ln.Addr().String()),
	}, nil
}

func (e *serviceEnv) Close() error {
	err := e.hs.Close()
	if cerr := e.srv.Close(); err == nil {
		err = cerr
	}
	if rerr := os.RemoveAll(e.dir); err == nil {
		err = rerr
	}
	return err
}

// ServiceThroughput runs the tuning-as-a-service load benchmark. Quick
// mode shrinks the fleet and the measurement window for CI. boHistoryCap
// overrides the per-study feed cap for the model-guided share; 0 keeps the
// default, 1024 — deep enough that those studies climb the surrogate tier
// ladder during the run instead of being frozen at dense-GP depth.
// workers and observePerBatch override the arm's load shape when > 0
// (the cmd/bench -serve-workers and -observe-per-batch flags).
func ServiceThroughput(quick bool, seed int64, boHistoryCap, workers, observePerBatch int) (ServiceResult, error) {
	arm := ServiceArm{
		Name:            "serve-full",
		Studies:         1024,
		Workers:         8,
		Batch:           256,
		BOBatch:         8,
		BOShare:         8,
		ObservePerBatch: 8,
		BOHistoryCap:    1024,
		Duration:        "5s",
	}
	if quick {
		arm = ServiceArm{
			Name: "serve-quick", Studies: 128, Workers: 4,
			Batch: 256, BOBatch: 8, BOShare: 2, ObservePerBatch: 16, BOHistoryCap: 1024, Duration: "1s",
		}
	}
	if boHistoryCap > 0 {
		arm.BOHistoryCap = boHistoryCap
	}
	if workers > 0 {
		arm.Workers = workers
	}
	if observePerBatch > 0 {
		arm.ObservePerBatch = observePerBatch
	}
	measure, err := time.ParseDuration(arm.Duration)
	if err != nil {
		return ServiceResult{}, err
	}

	env, err := startService(server.Options{AdmissionLimit: 2 * arm.Workers})
	if err != nil {
		return ServiceResult{}, err
	}
	defer env.Close()
	srv, c := env.srv, env.client
	//autolint:ignore ctxpass the load harness is a program edge: cmd/bench owns the process lifetime
	ctx := context.Background()

	// Fan in the fleet. Every create is an fsync barrier, so this phase
	// is reported separately — it is the daemon's cold-start cost.
	studies := make([]string, arm.Studies)
	createStart := time.Now()
	for i := range studies {
		studies[i] = fmt.Sprintf("svc-%04d", i)
		opt := "random"
		if i < arm.BOShare {
			opt = "bo"
		}
		if _, err := c.CreateStudy(ctx, studies[i], serviceSpec(opt, seed+int64(i))); err != nil {
			return ServiceResult{}, fmt.Errorf("create %s: %w", studies[i], err)
		}
	}
	createSeconds := time.Since(createStart).Seconds()

	// Load phase: workers own disjoint study shards (real clients don't
	// share studies either), each looping suggest-batch → observe-batch
	// so every iteration crosses the durability barrier too.
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		lats      []time.Duration
		suggests  int64
		observes  int64
		shed      int64
		errs      int64
		firstErr  error
		deadline  = time.Now().Add(measure)
		loadStart = time.Now()
	)
	for w := 0; w < arm.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("load worker %d panicked: %v", w, r)
					}
					errs++
					mu.Unlock()
				}
				wg.Done()
			}()
			var myLats []time.Duration
			var mySugg, myObs, myShed, myErrs int64
			var myFirst error
			boFed := map[int]int{} // observations fed per BO study shard
			for i := w; time.Now().Before(deadline); i += arm.Workers {
				idx := i % len(studies)
				study := studies[idx]
				batch := arm.Batch
				if idx < arm.BOShare {
					batch = arm.BOBatch
				}
				t0 := time.Now()
				sugg, err := c.Suggest(ctx, study, batch)
				myLats = append(myLats, time.Since(t0))
				if err != nil {
					var apiErr *server.APIError
					if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
						myShed++
						continue
					}
					myErrs++
					if myFirst == nil {
						myFirst = err
					}
					continue
				}
				mySugg += int64(len(sugg))
				report := sugg
				if idx < arm.BOShare {
					if arm.BOHistoryCap > 0 && boFed[idx] >= arm.BOHistoryCap {
						continue
					}
					boFed[idx] += len(report)
				} else if arm.ObservePerBatch > 0 && len(report) > arm.ObservePerBatch {
					report = report[:arm.ObservePerBatch]
				}
				obs := make([]server.Observation, len(report))
				for j, s := range report {
					obs[j] = server.Observation{
						Trial: s.Trial, Config: s.Config,
						Value:       float64((s.Trial*2654435761)%1000) / 1000,
						CostSeconds: 0.1,
					}
				}
				res, err := c.Observe(ctx, study, obs...)
				if err != nil {
					myErrs++
					if myFirst == nil {
						myFirst = err
					}
					continue
				}
				myObs += int64(res.Acked)
			}
			mu.Lock()
			lats = append(lats, myLats...)
			suggests += mySugg
			observes += myObs
			shed += myShed
			errs += myErrs
			if firstErr == nil {
				firstErr = myFirst
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	wall := time.Since(loadStart).Seconds()
	if firstErr != nil {
		return ServiceResult{}, fmt.Errorf("service load: %d request errors, first: %w", errs, firstErr)
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	quantile := func(q float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		idx := int(q * float64(len(lats)-1))
		return float64(lats[idx]) / 1e6
	}
	return ServiceResult{
		Arm:           arm,
		WallSeconds:   wall,
		CreateSeconds: createSeconds,
		Suggests:      suggests,
		Observes:      observes,
		Shed:          shed,
		Errors:        errs,
		SuggestPerSec: float64(suggests) / wall,
		ObservePerSec: float64(observes) / wall,
		SuggestP50Ms:  quantile(0.50),
		SuggestP99Ms:  quantile(0.99),
		StoreRecords:  srv.StoreStats().Records,
	}, nil
}
