package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"autotune/internal/bo"
	"autotune/internal/space"
	"autotune/internal/trial"
)

// SessionsArm is one loop configuration's aggregate over N complete tuning
// sessions run concurrently.
type SessionsArm struct {
	Name             string  `json:"name"`
	Sessions         int     `json:"sessions"`
	TrialsPerSession int     `json:"trials_per_session"`
	WallSeconds      float64 `json:"wall_seconds"`
	SessionsPerSec   float64 `json:"sessions_per_sec"`
	AllocsPerSession float64 `json:"allocs_per_session"`
	MBPerSession     float64 `json:"mb_per_session"`
	SuggestP50Ms     float64 `json:"suggest_p50_ms"`
	SuggestP99Ms     float64 `json:"suggest_p99_ms"`
	MeanBest         float64 `json:"mean_best"`
}

// SessionsResult compares the pre-optimization suggest–evaluate–observe
// loop (LegacyLoop: per-candidate Config/encoding allocation, allocating
// surrogate paths) against the current flat-buffer loop with the
// deduplicating evaluation cache enabled.
type SessionsResult struct {
	Legacy     SessionsArm `json:"legacy"`
	Optimized  SessionsArm `json:"optimized"`
	Speedup    float64     `json:"speedup"`
	AllocRatio float64     `json:"alloc_ratio"`
}

// timedOptimizer records every Suggest latency. It deliberately exposes
// only the sequential Optimizer interface, so both arms take the same
// suggest path in the trial loop.
type timedOptimizer struct {
	inner *bo.BO
	durs  []time.Duration
}

func (o *timedOptimizer) Name() string { return o.inner.Name() }

func (o *timedOptimizer) Suggest() (space.Config, error) {
	start := time.Now()
	cfg, err := o.inner.Suggest()
	o.durs = append(o.durs, time.Since(start))
	return cfg, err
}

func (o *timedOptimizer) Observe(cfg space.Config, v float64) error {
	return o.inner.Observe(cfg, v)
}

func (o *timedOptimizer) Best() (space.Config, float64, bool) { return o.inner.Best() }

func percentileDur(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i].Nanoseconds())
}

// runSessionsArm executes n complete BO tuning sessions concurrently over
// scalingSpace/scalingObjective and aggregates throughput, allocation, and
// Suggest-latency statistics. Allocation counts are process-wide malloc
// deltas divided by the session count — concurrent sessions are the
// workload being measured, so attribution is aggregate by construction.
func runSessionsArm(name string, n, trials int, seed int64, legacy bool) (SessionsArm, error) {
	opts := make([]*timedOptimizer, n)
	envs := make([]*trial.FuncEnv, n)
	for i := range opts {
		// RefineIters is 0 in BOTH arms: the Nelder-Mead polish re-decodes a
		// Config per objective eval at identical cost either way, so leaving
		// it on only dilutes the comparison of the candidate loops.
		b := bo.NewWith(scalingSpace(), rand.New(rand.NewSource(seed+int64(i))), bo.Options{
			OneHot:        true,
			RefineIters:   0,
			FitHyperEvery: 10,
			InitSamples:   2,
			LegacyLoop:    legacy,
		})
		opts[i] = &timedOptimizer{inner: b}
		envs[i] = &trial.FuncEnv{Sp: scalingSpace(), F: scalingObjective}
	}
	topts := trial.Options{Budget: trials, Parallel: 1, DedupEvals: !legacy}

	var wg sync.WaitGroup
	errs := make([]error, n)
	bests := make([]float64, n)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("session %d panicked: %v", i, r)
				}
				wg.Done()
			}()
			rep, err := trial.Run(opts[i], envs[i], topts)
			if err != nil {
				errs[i] = fmt.Errorf("session %d: %w", i, err)
				return
			}
			bests[i] = rep.BestValue
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	for _, err := range errs {
		if err != nil {
			return SessionsArm{}, err
		}
	}

	var durs []time.Duration
	meanBest := 0.0
	for i := range opts {
		durs = append(durs, opts[i].durs...)
		meanBest += bests[i] / float64(n)
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	arm := SessionsArm{
		Name:             name,
		Sessions:         n,
		TrialsPerSession: trials,
		WallSeconds:      wall.Seconds(),
		AllocsPerSession: float64(after.Mallocs-before.Mallocs) / float64(n),
		MBPerSession:     float64(after.TotalAlloc-before.TotalAlloc) / float64(n) / (1 << 20),
		SuggestP50Ms:     percentileDur(durs, 0.50) / 1e6,
		SuggestP99Ms:     percentileDur(durs, 0.99) / 1e6,
		MeanBest:         meanBest,
	}
	if arm.WallSeconds > 0 {
		arm.SessionsPerSec = float64(n) / arm.WallSeconds
	}
	return arm, nil
}

// SessionsThroughput is the PR-5 end-to-end benchmark: N seeded concurrent
// tuning sessions per arm, legacy loop first, then the optimized loop. The
// legacy arm runs identical budgets and seeds; only the loop implementation
// (and the evaluation cache) differs.
func SessionsThroughput(quick bool, seed int64) (SessionsResult, error) {
	n := pick(quick, 4, 8)
	trials := pick(quick, 12, 20)
	legacy, err := runSessionsArm("legacy", n, trials, seed, true)
	if err != nil {
		return SessionsResult{}, fmt.Errorf("legacy arm: %w", err)
	}
	opt, err := runSessionsArm("optimized", n, trials, seed, false)
	if err != nil {
		return SessionsResult{}, fmt.Errorf("optimized arm: %w", err)
	}
	res := SessionsResult{Legacy: legacy, Optimized: opt}
	if opt.SessionsPerSec > 0 {
		res.Speedup = opt.SessionsPerSec / legacy.SessionsPerSec
	}
	if opt.AllocsPerSession > 0 {
		res.AllocRatio = legacy.AllocsPerSession / opt.AllocsPerSession
	}
	return res, nil
}
