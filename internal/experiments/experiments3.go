package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"autotune/internal/bo"
	"autotune/internal/cloud"
	"autotune/internal/core"
	"autotune/internal/heuristic"
	"autotune/internal/importance"
	"autotune/internal/noise"
	"autotune/internal/optimizer"
	"autotune/internal/simsys"
	"autotune/internal/smac"
	"autotune/internal/space"
	"autotune/internal/stats"
	"autotune/internal/trial"
	"autotune/internal/workload"
	"autotune/internal/workloadid"
)

// ---- F15: knob importance narrows the space (slide 68) ----

func init() { registry["F15"] = runF15 }

func runF15(quick bool, seed int64) (Table, error) {
	d := simsys.NewDBMS(simsys.MediumVM())
	wl := workload.TPCC()
	obj := dbmsLatencyObjective(d, wl)
	rng := rand.New(rand.NewSource(seed))
	nSamples := pick(quick, 120, 300)
	budget := pick(quick, 25, 50)
	seeds := pick(quick, 3, 10)

	// Historical trials (the OtterTune prerequisite). Crashed runs are
	// excluded and latency is log-transformed before ranking — otherwise
	// the regression learns the OOM-crash boundary (which knobs overcommit
	// memory) instead of the performance surface.
	var cfgs []space.Config
	var ys []float64
	for i := 0; i < nSamples; i++ {
		cfg := d.Space().Sample(rng)
		v := obj(cfg)
		if v >= 1e6 {
			continue // crashed trial
		}
		cfgs = append(cfgs, cfg)
		ys = append(ys, math.Log(v))
	}
	lasso, err := importance.Lasso(d.Space(), cfgs, ys, 0.02)
	if err != nil {
		return Table{}, err
	}
	perm, err := importance.Permutation(d.Space(), cfgs, ys, rng)
	if err != nil {
		return Table{}, err
	}
	truth := d.ImportantKnobs(wl)
	overlap := func(r importance.Ranking) int {
		top := map[string]bool{}
		for _, n := range r.TopK(5) {
			top[n] = true
		}
		hits := 0
		for _, k := range truth {
			if top[k] {
				hits++
			}
		}
		return hits
	}
	t := Table{
		ID:      "F15",
		Title:   "Knob importance (Lasso / permutation) and top-k space narrowing",
		Claim:   "OtterTune uses Lasso to find important knobs; SHAP-style rankings serve the same role (slide 68)",
		Headers: []string{"method", "top-5 knobs", "overlap with ground truth (of 5)"},
	}
	t.Rows = append(t.Rows, []string{"lasso", fmt.Sprint(lasso.TopK(5)), strconv.Itoa(overlap(lasso))})
	t.Rows = append(t.Rows, []string{"permutation (RF)", fmt.Sprint(perm.TopK(5)), strconv.Itoa(overlap(perm))})

	// Tuning narrowed vs full space: keep the top 7 knobs (a 3x space
	// reduction) and pin the remaining 14 at defaults.
	sub, complete, err := importance.Narrow(d.Space(), perm.TopK(7), d.Space().Default())
	if err != nil {
		return Table{}, err
	}
	narrowBest := meanBestOver(func(r *rand.Rand) optimizer.Optimizer {
		return bo.New(sub, r)
	}, func(c space.Config) float64 { return obj(complete(c)) }, budget, seeds, seed)
	fullBest := meanBestOver(func(r *rand.Rand) optimizer.Optimizer {
		return bo.New(d.Space(), r)
	}, obj, budget, seeds, seed)
	t.Rows = append(t.Rows, []string{fmt.Sprintf("tune top-7 only (%d trials)", budget), fm(narrowBest), "-"})
	t.Rows = append(t.Rows, []string{fmt.Sprintf("tune all 21 knobs (%d trials)", budget), fm(fullBest), "-"})
	t.Notes = "Both rankers recover most ground-truth knobs; tuning just the top-7 (of 21) stays within striking distance of full-space tuning while shrinking the space 3x."
	return t, nil
}

// ---- F16: early abort (slide 69) ----

func init() { registry["F16"] = runF16 }

func runF16(quick bool, seed int64) (Table, error) {
	d := simsys.NewDBMS(simsys.MediumVM())
	wl := workload.TPCH(1) // elapsed-time benchmark: the slide's example
	budget := pick(quick, 25, 60)
	seeds := pick(quick, 3, 10)
	t := Table{
		ID:      "F16",
		Title:   "Early abort of clearly-bad trials (elapsed-time benchmarks)",
		Claim:   "Report a bad score sooner: stop a TPC-H run once it exceeds the incumbent (slide 69)",
		Headers: []string{"strategy", "mean best (ms)", "mean total cost (s)", "mean aborted trials"},
	}
	for _, margin := range []float64{0, 0.25} {
		var bests, costs, aborts []float64
		for s := 0; s < seeds; s++ {
			rng := rand.New(rand.NewSource(seed + int64(s)*577))
			env := &trial.SystemEnv{Sys: d, WL: wl}
			o := optimizer.NewRandom(d.Space(), rng)
			rep, err := trial.Run(o, env, trial.Options{Budget: budget, AbortMargin: margin})
			if err != nil {
				return t, err
			}
			bests = append(bests, rep.BestValue)
			costs = append(costs, rep.TotalCostSeconds)
			aborts = append(aborts, float64(rep.Aborts))
		}
		name := "run every trial to completion"
		if margin > 0 {
			name = fmt.Sprintf("abort above best x %.2f", 1+margin)
		}
		t.Rows = append(t.Rows, []string{name, fm(stats.Mean(bests)), fmN(stats.Mean(costs)), fm(stats.Mean(aborts))})
	}
	t.Notes = "Aborting trials that exceed the incumbent by 25% cuts total benchmark time substantially with no loss in the best configuration found."
	return t, nil
}

// ---- F17: noisy cloud mitigation (slides 70-71) ----

func init() { registry["F17"] = runF17 }

func runF17(quick bool, seed int64) (Table, error) {
	sys := simsys.NewDBMS(simsys.MediumVM())
	sys.NoiseSigma = 0
	wl := workload.TPCC()
	budget := pick(quick, 20, 40)
	seeds := pick(quick, 4, 15)
	t := Table{
		ID:      "F17",
		Title:   "Tuning on a noisy fleet: naive vs replicated vs duet vs TUNA scoring",
		Claim:   "Machine noise slows learning; duet pairing and TUNA's replicated, outlier-rejected scores restore it (slides 70-71)",
		Headers: []string{"scoring strategy", "mean true latency of final pick (ms)", "mean samples per trial"},
	}
	type strat struct {
		name  string
		score func(f *cloud.Fleet, tuna *noise.TUNA, cfg space.Config, i int) (float64, int)
	}
	strategies := []strat{
		{"naive single sample", func(f *cloud.Fleet, _ *noise.TUNA, cfg space.Config, i int) (float64, int) {
			return f.Sample(cfg, i), 1
		}},
		{"mean of 3 samples", func(f *cloud.Fleet, _ *noise.TUNA, cfg space.Config, i int) (float64, int) {
			v, _ := noise.Repeated(f, cfg, 3, noise.PolicyMean)
			return v, 3
		}},
		{"duet vs default", func(f *cloud.Fleet, _ *noise.TUNA, cfg space.Config, i int) (float64, int) {
			v, _ := noise.Duet(f, sys.Space().Default(), cfg, 2)
			return v, 4
		}},
		{"TUNA (replicated + outlier rejection)", func(_ *cloud.Fleet, tuna *noise.TUNA, cfg space.Config, i int) (float64, int) {
			v, spent, _ := tuna.Score(cfg)
			return v, spent
		}},
	}
	for _, s := range strategies {
		var finals, spents []float64
		for sd := 0; sd < seeds; sd++ {
			rng := rand.New(rand.NewSource(seed + int64(sd)*307))
			fleet := cloud.NewFleet(sys, wl, 6, cloud.Options{
				MachineSigma: 0.12, OutlierProb: 0.2, MeasurementSigma: 0.05,
			}, rng)
			tuna := noise.NewTUNA(fleet, sys.Space().Default())
			tuna.MaxReplicas = 3
			o := smac.New(sys.Space(), rng)
			spent := 0
			i := 0
			wrapped := func(cfg space.Config) float64 {
				v, n := s.score(fleet, tuna, cfg, i)
				spent += n
				i++
				if math.IsInf(v, 0) || math.IsNaN(v) {
					return 1e6
				}
				return v
			}
			bestCfg, _, err := optimizer.Run(o, wrapped, budget)
			if err != nil {
				continue
			}
			truth := fleet.TrueScore(bestCfg)
			if math.IsInf(truth, 0) {
				truth = 1e6
			}
			finals = append(finals, truth)
			spents = append(spents, float64(spent)/float64(budget))
		}
		t.Rows = append(t.Rows, []string{s.name, fm(stats.Mean(finals)), fm(stats.Mean(spents))})
	}
	t.Notes = "TUNA's replicated, outlier-rejected scores pick the best true config; plain 3-sample averaging also helps. Duet is within noise of naive here because the fleet's machine multipliers mostly cancel in SMAC's ranking anyway — its advantage shows when machines differ persistently and configs are compared across them (see the duet-vs-naive estimator test in internal/noise)."
	return t, nil
}

// ---- F18: online tuning under workload shift (slides 76-84) ----

func init() { registry["F18"] = runF18 }

// onlineDBMS adapts the simulated DBMS to core.OnlineSystem with a
// workload that shifts at a fixed step.
type onlineDBMS struct {
	d         *simsys.DBMS
	before    workload.Descriptor
	after     workload.Descriptor
	shiftStep int
	step      int
	cur       space.Config
	rng       *rand.Rand
}

func (o *onlineDBMS) Space() *space.Space { return o.d.Space() }

func (o *onlineDBMS) Apply(cfg space.Config) error {
	o.cur = cfg.Clone()
	return nil
}

func (o *onlineDBMS) workload() workload.Descriptor {
	if o.step >= o.shiftStep {
		return o.after
	}
	return o.before
}

func (o *onlineDBMS) Measure() (float64, []float64) {
	o.step++
	wl := o.workload()
	m, err := o.d.Run(o.cur, wl, 0.2, o.rng)
	// A crashed config shows up as a timeout-capped measurement: still
	// catastrophic (100x the SLO) but not so large that a single crash
	// dominates a 250-step mean unreadably.
	loss := 300.0
	if err == nil {
		loss = m.LatencyMS
	}
	ctx := []float64{wl.ReadRatio, wl.WriteFraction(), wl.ScanRatio}
	return loss, ctx
}

func runF18(quick bool, seed int64) (Table, error) {
	d := simsys.NewDBMS(simsys.MediumVM())
	d.NoiseSigma = 0.02
	before := workload.YCSBB() // read-mostly
	after := workload.YCSBA()  // write-heavy
	steps := pick(quick, 200, 500)
	shiftAt := steps / 2
	seeds := pick(quick, 3, 8)
	sloLimit := 3.0 // ms: the "performance regression" bar

	t := Table{
		ID:      "F18",
		Title:   "Online tuning across a workload shift (read-mostly -> write-heavy)",
		Claim:   "Online agents adapt to shifts; guardrails cap regressions (slides 76-84)",
		Headers: []string{"policy", "mean loss before shift", "mean loss after shift", "SLO violations %", "rollbacks"},
	}
	mkArms := func() []space.Config {
		return []space.Config{
			d.Space().Default(),
			heuristic.DBMSConfig(d, before),
			heuristic.DBMSConfig(d, after),
		}
	}
	policies := []struct {
		name string
		mk   func() (core.Policy, error)
	}{
		{"random-walk (baseline)", func() (core.Policy, error) {
			return core.NewRandomWalkPolicy(d.Space()), nil
		}},
		{"qlearning-delta", func() (core.Policy, error) {
			return core.NewDeltaPolicy(d.Space(), []string{"buffer_pool_mb", "worker_threads", "io_threads", "wal_buffer_kb"})
		}},
		{"hybrid-bandit (preset arms)", func() (core.Policy, error) {
			return core.NewBanditPolicy(mkArms())
		}},
		{"actor-critic", func() (core.Policy, error) {
			return core.NewActorCriticPolicy(d.Space(),
				[]string{"buffer_pool_mb", "worker_threads", "io_threads", "wal_buffer_kb"}, 3, seed)
		}},
		{"safe-bo (OnlineTune-style)", func() (core.Policy, error) {
			return core.NewSafeBOPolicy(d.Space(), seed), nil
		}},
	}
	for _, p := range policies {
		var pre, post, viol, rolls []float64
		for s := 0; s < seeds; s++ {
			rng := rand.New(rand.NewSource(seed + int64(s)*131))
			sys := &onlineDBMS{d: d, before: before, after: after, shiftStep: shiftAt, rng: rng}
			pol, err := p.mk()
			if err != nil {
				return t, err
			}
			agent, err := core.NewAgent(sys, pol, core.Guardrails{MaxRegression: 0.3, Patience: 2}, rng)
			if err != nil {
				return t, err
			}
			var preSum, postSum float64
			var preN, postN, violations int
			for i := 0; i < steps; i++ {
				rep, err := agent.Step()
				if err != nil {
					return t, err
				}
				if rep.Loss > sloLimit {
					violations++
				}
				if i < shiftAt {
					preSum += rep.Loss
					preN++
				} else {
					postSum += rep.Loss
					postN++
				}
			}
			pre = append(pre, preSum/float64(preN))
			post = append(post, postSum/float64(postN))
			viol = append(viol, 100*float64(violations)/float64(steps))
			rolls = append(rolls, float64(agent.Rollbacks()))
		}
		t.Rows = append(t.Rows, []string{
			p.name, fm(stats.Mean(pre)), fm(stats.Mean(post)),
			fm(stats.Mean(viol)), fm(stats.Mean(rolls)),
		})
	}
	t.Notes = "The contextual bandit snaps to the regime-appropriate preset after the shift and safe-BO's gated exploration adapts within a few dozen steps; the from-scratch RL policies (Q-learning deltas, actor-critic) wander at these step counts — the tutorial's argument for pre-training online agents in an offline gym. Guardrail rollbacks stay rare for the careful policies and absorb the exploratory ones' regressions."
	return t, nil
}

// ---- F19: workload identification (slides 88-92) ----

func init() { registry["F19"] = runF19 }

func runF19(quick bool, seed int64) (Table, error) {
	rng := rand.New(rand.NewSource(seed))
	families := []workload.Descriptor{
		workload.YCSBA(), workload.YCSBB(), workload.YCSBE(),
		workload.TPCC(), workload.TPCH(1),
	}
	perFamily := pick(quick, 4, 10)
	window := pick(quick, 64, 128)

	var points [][]float64
	var labels []int
	for li, d := range families {
		for i := 0; i < perFamily; i++ {
			s := workloadid.Synthesize(d, window, rand.New(rand.NewSource(seed+int64(li*100+i))))
			points = append(points, workloadid.EmbedTelemetry(s))
			labels = append(labels, li)
		}
	}
	// Normalize feature columns for clustering.
	normalizeColumns(points)
	assign, _, err := workloadid.KMeansRestarts(points, len(families), 100, 8, rng)
	if err != nil {
		return Table{}, err
	}
	purity := workloadid.Purity(assign, labels)

	// Nearest-neighbour identification accuracy on fresh instances.
	var ix workloadid.Index
	for li, d := range families {
		s := workloadid.Synthesize(d, window, rand.New(rand.NewSource(seed+int64(9000+li))))
		ix.Add(d.Name, workloadid.EmbedTelemetry(s))
	}
	correct := 0
	probes := pick(quick, 10, 30)
	for i := 0; i < probes; i++ {
		li := i % len(families)
		s := workloadid.Synthesize(families[li], window, rand.New(rand.NewSource(seed+int64(5000+i))))
		label, _, err := ix.Nearest(workloadid.EmbedTelemetry(s))
		if err != nil {
			return Table{}, err
		}
		if label == families[li].Name {
			correct++
		}
	}

	// Shift detection delay: stream ycsb-b telemetry, shift to ycsb-a.
	det := workloadid.NewShiftDetector(1.5)
	det.RefWindow = 10
	delay := -1
	streamRng := rand.New(rand.NewSource(seed + 42))
	for step := 0; step < 60; step++ {
		d := workload.YCSBB()
		if step >= 30 {
			d = workload.YCSBA()
		}
		s := workloadid.Synthesize(d, 32, streamRng)
		if det.Observe(workloadid.EmbedTelemetry(s)) {
			delay = step - 30
		}
	}
	t := Table{
		ID:      "F19",
		Title:   "Workload identification: clustering, lookup, shift detection",
		Claim:   "Embed telemetry, cluster similar workloads, reuse configs, detect shifts (slides 88-92)",
		Headers: []string{"metric", "value"},
		Rows: [][]string{
			{"k-means purity (5 families x instances)", fm(purity)},
			{fmt.Sprintf("nearest-workload accuracy (%d probes)", probes), fm(float64(correct) / float64(probes))},
			{"shift detection delay (windows after shift)", strconv.Itoa(delay)},
		},
	}
	t.Notes = "Telemetry embeddings cluster cleanly by family, fresh instances resolve to the right family, and the detector flags the read->write shift within a few windows."
	return t, nil
}

func normalizeColumns(points [][]float64) {
	if len(points) == 0 {
		return
	}
	dim := len(points[0])
	for j := 0; j < dim; j++ {
		col := make([]float64, len(points))
		for i := range points {
			col[i] = points[i][j]
		}
		norm := stats.Normalize(col)
		for i := range points {
			points[i][j] = norm[i]
		}
	}
}

// ---- F20: synthetic benchmark generation (slide 92) ----

func init() { registry["F20"] = runF20 }

func runF20(quick bool, seed int64) (Table, error) {
	d := simsys.NewDBMS(simsys.MediumVM())
	rng := rand.New(rand.NewSource(seed))
	budget := pick(quick, 30, 60)

	// "Production" is a hidden mixture we only see through its embedding.
	bases := []workload.Descriptor{workload.YCSBA(), workload.YCSBC(), workload.TPCH(1)}
	prod, err := workload.Mix(bases, []float64{0.55, 0.30, 0.15})
	if err != nil {
		return Table{}, err
	}
	target := workloadid.EmbedDescriptor(prod)
	synth, weights, err := workloadid.SynthesizeBenchmark(target, bases, 800, rng)
	if err != nil {
		return Table{}, err
	}
	prodObj := dbmsLatencyObjective(d, prod)
	synthObj := dbmsLatencyObjective(d, synth)

	// Tune on the synthetic benchmark, deploy the pick to production.
	o := smac.New(d.Space(), rng)
	bestSynth, _, err := optimizer.Run(o, synthObj, budget)
	if err != nil {
		return Table{}, err
	}
	deployed := prodObj(bestSynth)
	// Oracle: tune directly on production (privacy/side effects forbid
	// this in reality — that is the slide's point).
	o2 := smac.New(d.Space(), rand.New(rand.NewSource(seed+1)))
	bestProd, oracle, err := optimizer.Run(o2, prodObj, budget)
	if err != nil {
		return Table{}, err
	}
	_ = bestProd
	defLat := prodObj(d.Space().Default())

	t := Table{
		ID:      "F20",
		Title:   "Synthetic benchmark generation from workload embeddings",
		Claim:   "Generate a query mixture matching production telemetry, tune offline on it, deploy the config (slide 92, Stitcher)",
		Headers: []string{"configuration", "production latency (ms)"},
		Rows: [][]string{
			{"default", fm(defLat)},
			{fmt.Sprintf("tuned on synthetic mix %v", roundSlice(weights)), fm(deployed)},
			{"oracle: tuned on production directly", fm(oracle)},
		},
	}
	t.Notes = "The recovered mixture is close enough that the config tuned on the synthetic benchmark captures most of the oracle's improvement without ever touching production."
	return t, nil
}

func roundSlice(w []float64) []float64 {
	out := make([]float64, len(w))
	for i, v := range w {
		out[i] = math.Round(v*100) / 100
	}
	return out
}
