package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"autotune/internal/bo"
	"autotune/internal/server"
	"autotune/internal/space"
	"autotune/internal/testfunc"
)

// scale.go is the BENCH_8 harness: does the surrogate tier ladder (dense →
// sparse → forest) keep the observe+suggest cycle flat as histories grow
// into the thousands, and does it pay for that speed with regret? Three
// measurements: (1) warmed observe+suggest cycle time at deep history
// sizes, dense vs auto-tiered; (2) full optimization runs on the synthetic
// suite comparing best values (the regret guard); (3) the live daemon
// serving a single deep-history BO study over HTTP.

// SurrogateScalePoint is one row of the cycle-time comparison at history
// size N: the cost of absorbing one observation and producing the next
// suggestion, on a warmed optimizer.
type SurrogateScalePoint struct {
	N    int    `json:"n"`
	Tier string `json:"tier"` // tier the auto policy serves at this size
	// Dense arm: the exact incremental GP (rank-1 updates, full history).
	// Skipped at sizes where the O(n³) warm-up fit is impractical.
	DenseCycleNs float64 `json:"dense_cycle_ns"`
	DenseSkipped bool    `json:"dense_skipped,omitempty"`
	// Tiered arm: the auto policy at its default thresholds.
	TieredCycleNs float64 `json:"tiered_cycle_ns"`
	Speedup       float64 `json:"speedup,omitempty"`
}

// SurrogateRegretPoint compares the best value found by the dense policy
// and the auto policy (thresholds lowered so the tier ladder engages within
// the budget) on one synthetic objective.
type SurrogateRegretPoint struct {
	Func        string  `json:"func"`
	Optimum     float64 `json:"optimum"`
	DenseBest   float64 `json:"dense_best"`
	TieredBest  float64 `json:"tiered_best"`
	RegretRatio float64 `json:"regret_ratio"`
}

// DeepServiceResult measures the daemon serving one BO study whose history
// is far past the dense tier: how fast client-reported observations land,
// and what a batch suggest costs once the deep history is in place.
type DeepServiceResult struct {
	HistoryCap    int     `json:"history_cap"`
	FeedSeconds   float64 `json:"feed_seconds"`
	ObservePerSec float64 `json:"observe_per_sec"`
	SuggestP50Ms  float64 `json:"suggest_p50_ms"`
	SuggestMaxMs  float64 `json:"suggest_max_ms"`
	Suggests      int     `json:"suggests"`
}

// SurrogateScaleResult is the full BENCH_8 document.
type SurrogateScaleResult struct {
	Points []SurrogateScalePoint  `json:"points"`
	Regret []SurrogateRegretPoint `json:"regret"`
	Deep   DeepServiceResult      `json:"deep_service"`
	// SpeedupAtGate is the cycle speedup at the gate size (n=5000 full,
	// the largest dense-measured size in quick mode).
	GateN          int     `json:"gate_n"`
	SpeedupAtGate  float64 `json:"speedup_at_gate"`
	MaxRegretRatio float64 `json:"max_regret_ratio"`
}

// scaleCycle warms a BO with n observations, then times reps observe+suggest
// cycles and returns the median in nanoseconds.
func scaleCycle(opts bo.Options, seed int64, pts []space.Config, ys []float64, n, reps int) (float64, string, error) {
	s := scalingSpace()
	b := bo.NewWith(s, rand.New(rand.NewSource(seed)), opts)
	for i := 0; i < n; i++ {
		if err := b.Observe(pts[i], ys[i]); err != nil {
			return 0, "", err
		}
	}
	if _, err := b.Suggest(); err != nil { // warm: the initial full fit
		return 0, "", err
	}
	times := make([]time.Duration, 0, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if err := b.Observe(pts[n+r], ys[n+r]); err != nil {
			return 0, "", err
		}
		if _, err := b.Suggest(); err != nil {
			return 0, "", err
		}
		times = append(times, time.Since(start))
	}
	return medianDur(times), b.Stats().Tier, nil
}

// SurrogateScaling measures the observe+suggest cycle at deep history
// sizes. Both arms share identical acquisition-search budgets, so the ratio
// isolates surrogate maintenance plus prediction cost. The dense arm is
// skipped at the largest size: its warm-up alone is an O(n³) fit that would
// dominate the benchmark's runtime without informing the comparison.
func SurrogateScaling(quick bool, seed int64) ([]SurrogateScalePoint, int, float64, error) {
	sizes := []int{1000, 5000, 10000}
	denseSkip := map[int]bool{10000: true}
	reps := pick(quick, 2, 5)
	opts := func(p bo.SurrogatePolicy) bo.Options {
		o := bo.Options{
			OneHot: true, InitSamples: 2, RefineIters: 0,
			Candidates: 256, AcqRestarts: 4, Surrogate: p,
		}
		if quick {
			// Quick mode shrinks sizes below; lower the thresholds so the
			// ladder still engages.
			o.DenseMax, o.SparseMax, o.SparseBudget = 64, 400, 64
		}
		return o
	}
	if quick {
		sizes = []int{300, 600}
		denseSkip = map[int]bool{600: true}
	}
	gateN := sizes[len(sizes)-2] // largest size with a dense arm

	s := scalingSpace()
	max := sizes[len(sizes)-1] + reps
	rng := rand.New(rand.NewSource(seed))
	pts := make([]space.Config, max)
	ys := make([]float64, max)
	for i := range pts {
		pts[i] = s.Sample(rng)
		ys[i] = scalingObjective(pts[i])
	}

	var out []SurrogateScalePoint
	gateSpeedup := 0.0
	for _, n := range sizes {
		p := SurrogateScalePoint{N: n}
		tiered, tier, err := scaleCycle(opts(bo.SurrogateAuto), seed, pts, ys, n, reps)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("tiered arm n=%d: %w", n, err)
		}
		p.TieredCycleNs, p.Tier = tiered, tier
		if denseSkip[n] {
			p.DenseSkipped = true
		} else {
			dense, _, err := scaleCycle(opts(bo.SurrogateDense), seed, pts, ys, n, reps)
			if err != nil {
				return nil, 0, 0, fmt.Errorf("dense arm n=%d: %w", n, err)
			}
			p.DenseCycleNs = dense
			if tiered > 0 {
				p.Speedup = dense / tiered
			}
			if n == gateN {
				gateSpeedup = p.Speedup
			}
		}
		out = append(out, p)
	}
	return out, gateN, gateSpeedup, nil
}

// SurrogateRegret runs full optimization loops on the synthetic suite,
// dense policy vs auto policy with thresholds lowered so the run crosses
// dense → sparse within the budget. The ratio compares simple regrets with
// a floor so near-optimal denominators cannot explode it.
func SurrogateRegret(quick bool, seed int64) ([]SurrogateRegretPoint, float64, error) {
	funcs := []testfunc.Func{testfunc.Branin(), testfunc.Sphere(3), testfunc.Hartmann6()}
	budget := pick(quick, 40, 150)
	seeds := pick(quick, 2, 3)

	arm := func(f testfunc.Func, p bo.SurrogatePolicy, s int64) (float64, error) {
		o := bo.Options{OneHot: true, RefineIters: 40, FitHyperEvery: 10, Surrogate: p}
		if p == bo.SurrogateAuto {
			o.DenseMax, o.SparseMax, o.SparseBudget = budget/4, 10*budget, 48
		}
		b := bo.NewWith(f.Space, rand.New(rand.NewSource(s)), o)
		best := 0.0
		for i := 0; i < budget; i++ {
			cfg, err := b.Suggest()
			if err != nil {
				return 0, err
			}
			v := f.Eval(cfg)
			if i == 0 || v < best {
				best = v
			}
			if err := b.Observe(cfg, v); err != nil {
				return 0, err
			}
		}
		return best, nil
	}

	var out []SurrogateRegretPoint
	maxRatio := 0.0
	for _, f := range funcs {
		dSum, tSum := 0.0, 0.0
		for s := 0; s < seeds; s++ {
			d, err := arm(f, bo.SurrogateDense, seed+int64(101*s))
			if err != nil {
				return nil, 0, fmt.Errorf("%s dense: %w", f.Name, err)
			}
			ti, err := arm(f, bo.SurrogateAuto, seed+int64(101*s))
			if err != nil {
				return nil, 0, fmt.Errorf("%s tiered: %w", f.Name, err)
			}
			dSum += d
			tSum += ti
		}
		p := SurrogateRegretPoint{
			Func: f.Name, Optimum: f.Optimum,
			DenseBest:  dSum / float64(seeds),
			TieredBest: tSum / float64(seeds),
		}
		// Floor the regrets at 5% of the objective scale: a dense arm that
		// lands within noise of the optimum should not turn an equally
		// close tiered arm into a huge ratio.
		floor := 0.05 * (1 + abs(f.Optimum))
		dr := p.DenseBest - f.Optimum
		tr := p.TieredBest - f.Optimum
		if dr < floor {
			dr = floor
		}
		if tr < floor {
			tr = floor
		}
		p.RegretRatio = tr / dr
		if p.RegretRatio > maxRatio {
			maxRatio = p.RegretRatio
		}
		out = append(out, p)
	}
	return out, maxRatio, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// DeepHistoryService boots the real daemon, creates one BO study, feeds it
// historyCap client-evaluated observations (clients may report trials the
// daemon never suggested — the session dedups by trial ID only), and then
// measures batch suggests against the deep history. Before the tier ladder
// this was the service's pathological case: every suggest paid the dense
// GP's O(n³)/O(n²) maintenance over the whole history.
func DeepHistoryService(quick bool, seed int64, historyCap int) (DeepServiceResult, error) {
	if historyCap <= 0 {
		historyCap = pick(quick, 600, 2048)
	}
	suggests := pick(quick, 3, 8)

	env, err := startService(server.Options{AdmissionLimit: 4})
	if err != nil {
		return DeepServiceResult{}, err
	}
	defer env.Close()
	//autolint:ignore ctxpass the load harness is a program edge: cmd/bench owns the process lifetime
	ctx := context.Background()

	const study = "deep-bo"
	if _, err := env.client.CreateStudy(ctx, study, serviceSpec("bo", seed)); err != nil {
		return DeepServiceResult{}, fmt.Errorf("create: %w", err)
	}

	// Feed phase: invented trial IDs, synthetic values — the client did the
	// evaluating, the daemon just absorbs. Batched to amortize the fsync.
	rng := rand.New(rand.NewSource(seed))
	policies := []string{"lru", "fifo", "arc", "clock"}
	feedStart := time.Now()
	const feedBatch = 64
	fed := 0
	for fed < historyCap {
		n := feedBatch
		if historyCap-fed < n {
			n = historyCap - fed
		}
		obs := make([]server.Observation, n)
		for j := range obs {
			id := int64(1_000_000 + fed + j)
			obs[j] = server.Observation{
				Trial: id,
				Config: map[string]any{
					"cache_mb":       64 + rng.Intn(8129),
					"flush_interval": 0.01 + 29.0*rng.Float64(),
					"policy":         policies[rng.Intn(len(policies))],
					"direct_io":      rng.Intn(2) == 1,
				},
				Value:       rng.Float64(),
				CostSeconds: 0.1,
			}
		}
		res, err := env.client.Observe(ctx, study, obs...)
		if err != nil {
			return DeepServiceResult{}, fmt.Errorf("feed observe: %w", err)
		}
		fed += res.Acked
	}
	feedSeconds := time.Since(feedStart).Seconds()

	// Measure phase: batch suggests against the deep history.
	lats := make([]time.Duration, 0, suggests)
	for i := 0; i < suggests; i++ {
		t0 := time.Now()
		if _, err := env.client.Suggest(ctx, study, 8); err != nil {
			return DeepServiceResult{}, fmt.Errorf("suggest %d: %w", i, err)
		}
		lats = append(lats, time.Since(t0))
	}
	maxMs := 0.0
	for _, l := range lats {
		if ms := float64(l) / 1e6; ms > maxMs {
			maxMs = ms
		}
	}
	return DeepServiceResult{
		HistoryCap:    historyCap,
		FeedSeconds:   feedSeconds,
		ObservePerSec: float64(historyCap) / feedSeconds,
		SuggestP50Ms:  medianDur(lats) / 1e6,
		SuggestMaxMs:  maxMs,
		Suggests:      suggests,
	}, nil
}

// SurrogateScale runs all three BENCH_8 measurements.
func SurrogateScale(quick bool, seed int64, historyCap int) (SurrogateScaleResult, error) {
	points, gateN, gateSpeedup, err := SurrogateScaling(quick, seed)
	if err != nil {
		return SurrogateScaleResult{}, fmt.Errorf("scaling: %w", err)
	}
	regret, maxRatio, err := SurrogateRegret(quick, seed)
	if err != nil {
		return SurrogateScaleResult{}, fmt.Errorf("regret: %w", err)
	}
	deep, err := DeepHistoryService(quick, seed, historyCap)
	if err != nil {
		return SurrogateScaleResult{}, fmt.Errorf("deep service: %w", err)
	}
	return SurrogateScaleResult{
		Points: points, Regret: regret, Deep: deep,
		GateN: gateN, SpeedupAtGate: gateSpeedup, MaxRegretRatio: maxRatio,
	}, nil
}
