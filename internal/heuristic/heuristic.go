// Package heuristic implements a rule-based configuration baseline in the
// spirit of pgtune/mysqltuner ("encoded best practices", tutorial slide 7):
// given the host spec and a workload descriptor, it derives a sensible
// DBMS configuration from the folklore rules DBAs apply by hand. Tuning
// experiments use it as the non-ML baseline.
package heuristic

import (
	"math"

	"autotune/internal/simsys"
	"autotune/internal/space"
	"autotune/internal/workload"
)

// DBMSConfig returns the rule-derived configuration for the simulated DBMS
// on the given host under the given workload. Rules (classic pgtune-ish):
//
//   - buffer pool = 60% of RAM (the single most repeated best practice);
//   - redo log sized to ~30 minutes of writes, capped;
//   - io threads = 2x cores (SSD era), worker threads = 2-4x cores by
//     read-vs-write mix;
//   - O_DIRECT for write-heavy (double buffering hurts), fsync otherwise;
//   - query cache only for read-mostly workloads;
//   - per-connection buffers sized so the worst case fits in the other 40%.
func DBMSConfig(d *simsys.DBMS, wl workload.Descriptor) space.Config {
	sp := d.Space()
	cfg := sp.Default()
	spec := d.Spec

	cfg["buffer_pool_mb"] = clampInt(int64(spec.RAMMB*0.6), sp, "buffer_pool_mb")
	writeMBps := wl.RequestRate * wl.WriteFraction() * wl.RecordBytes / 1024 / 1024
	logMB := int64(math.Max(256, math.Min(writeMBps*1800, 4096)))
	cfg["log_file_mb"] = clampInt(logMB, sp, "log_file_mb")
	cfg["io_threads"] = clampInt(int64(2*spec.CPUCores), sp, "io_threads")

	workers := 2 * spec.CPUCores
	if wl.ReadRatio > 0.8 {
		workers = 4 * spec.CPUCores
	}
	cfg["worker_threads"] = clampInt(int64(workers), sp, "worker_threads")

	if wl.WriteFraction() > 0.3 {
		cfg["flush_method"] = "O_DIRECT"
	} else {
		cfg["flush_method"] = "fsync"
	}
	if wl.WriteFraction() < 0.1 {
		cfg["query_cache_mb"] = clampInt(256, sp, "query_cache_mb")
	} else {
		cfg["query_cache_mb"] = int64(0)
	}
	cfg["checkpoint_secs"] = clampInt(300, sp, "checkpoint_secs")
	cfg["wal_buffer_kb"] = clampInt(4096, sp, "wal_buffer_kb")
	cfg["max_connections"] = clampInt(int64(maxI(wl.Clients*2, 100)), sp, "max_connections")
	cfg["prefetch"] = wl.ScanRatio > 0.05

	// Per-connection buffers: budget the remaining 40% of RAM minus the
	// caches across the connection count.
	conns := float64(cfg.Int("max_connections"))
	spareMB := spec.RAMMB*0.4 - float64(cfg.Int("query_cache_mb")) - 512
	perConnMB := math.Max(spareMB/math.Max(conns, 1), 0.5)
	sortKB := int64(math.Min(perConnMB*0.4*1024, 16384))
	cfg["sort_buffer_kb"] = clampInt(sortKB, sp, "sort_buffer_kb")
	cfg["join_buffer_kb"] = clampInt(sortKB/2, sp, "join_buffer_kb")
	cfg["tmp_table_mb"] = clampInt(int64(math.Min(perConnMB*0.2, 64)), sp, "tmp_table_mb")

	if wl.ScanRatio > 0.5 {
		cfg["jit"] = true
	}
	return sp.Clip(cfg)
}

func clampInt(v int64, sp *space.Space, name string) int64 {
	p, ok := sp.Param(name)
	if !ok {
		return v
	}
	if float64(v) < p.Min {
		return int64(p.Min)
	}
	if float64(v) > p.Max {
		return int64(p.Max)
	}
	return v
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
