package heuristic

import (
	"testing"

	"autotune/internal/simsys"
	"autotune/internal/workload"
)

func TestDBMSConfigValid(t *testing.T) {
	for _, spec := range []simsys.SystemSpec{simsys.SmallVM(), simsys.MediumVM(), simsys.LargeVM()} {
		d := simsys.NewDBMS(spec)
		for _, wl := range workload.All() {
			cfg := DBMSConfig(d, wl)
			if err := d.Space().Validate(cfg); err != nil {
				t.Fatalf("%v / %s: %v", spec.CPUCores, wl.Name, err)
			}
			// Must not crash the system it was derived for.
			if _, err := d.Run(cfg, wl, 1, nil); err != nil {
				t.Fatalf("%v / %s: %v", spec.CPUCores, wl.Name, err)
			}
		}
	}
}

func TestDBMSConfigBeatsDefaults(t *testing.T) {
	d := simsys.NewDBMS(simsys.MediumVM())
	for _, wl := range []workload.Descriptor{workload.TPCC(), workload.YCSBB(), workload.TPCH(1)} {
		def, err := d.Run(d.Space().Default(), wl, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		tuned, err := d.Run(DBMSConfig(d, wl), wl, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !(tuned.LatencyMS < def.LatencyMS) {
			t.Fatalf("%s: heuristic latency %v should beat default %v",
				wl.Name, tuned.LatencyMS, def.LatencyMS)
		}
	}
}

func TestDBMSConfigWorkloadSensitive(t *testing.T) {
	d := simsys.NewDBMS(simsys.MediumVM())
	oltp := DBMSConfig(d, workload.TPCC())
	olap := DBMSConfig(d, workload.TPCH(1))
	readonly := DBMSConfig(d, workload.YCSBC())
	if oltp.Str("flush_method") != "O_DIRECT" {
		t.Fatalf("write-heavy flush = %v", oltp.Str("flush_method"))
	}
	if readonly.Int("query_cache_mb") == 0 {
		t.Fatal("read-only should enable query cache")
	}
	if oltp.Int("query_cache_mb") != 0 {
		t.Fatal("write-heavy should disable query cache")
	}
	if !olap.Bool("jit") {
		t.Fatal("scan-heavy should enable JIT")
	}
	if !olap.Bool("prefetch") {
		t.Fatal("scan-heavy should enable prefetch")
	}
}

func TestDBMSConfigScalesWithHost(t *testing.T) {
	small := DBMSConfig(simsys.NewDBMS(simsys.SmallVM()), workload.TPCC())
	large := DBMSConfig(simsys.NewDBMS(simsys.LargeVM()), workload.TPCC())
	if !(large.Int("buffer_pool_mb") > small.Int("buffer_pool_mb")) {
		t.Fatal("buffer pool should scale with RAM")
	}
	if !(large.Int("worker_threads") > small.Int("worker_threads")) {
		t.Fatal("workers should scale with cores")
	}
}
