package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestForwardShapes(t *testing.T) {
	n := New([]int{3, 8, 2}, rand.New(rand.NewSource(1)))
	out := n.Forward([]float64{0.1, -0.2, 0.3})
	if len(out) != 2 {
		t.Fatalf("out len = %d", len(out))
	}
	if n.Inputs() != 3 || n.Outputs() != 2 {
		t.Fatal("dims wrong")
	}
}

func TestForwardPanicsOnBadDim(t *testing.T) {
	n := New([]int{2, 2}, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Forward([]float64{1})
}

func TestLearnsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := New([]int{2, 16, 1}, rng)
	f := func(x []float64) float64 { return 0.5*x[0] - 0.3*x[1] + 0.1 }
	for epoch := 0; epoch < 3000; epoch++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		n.TrainMSE(x, []float64{f(x)}, 0.02)
	}
	mse := 0.0
	for i := 0; i < 100; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		out := n.Forward(x)
		mse += (out[0] - f(x)) * (out[0] - f(x))
	}
	mse /= 100
	if mse > 0.01 {
		t.Fatalf("MSE = %v", mse)
	}
}

func TestLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := New([]int{2, 12, 1}, rng)
	data := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	labels := []float64{0, 1, 1, 0}
	for epoch := 0; epoch < 8000; epoch++ {
		i := rng.Intn(4)
		n.TrainMSE(data[i], []float64{labels[i]}, 0.05)
	}
	for i, x := range data {
		out := n.Forward(x)[0]
		if math.Abs(out-labels[i]) > 0.25 {
			t.Fatalf("XOR(%v) = %v, want %v", x, out, labels[i])
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := New([]int{2, 4, 1}, rng)
	c := n.Clone()
	x := []float64{0.5, -0.5}
	before := n.Forward(x)[0]
	// Train the clone hard; original must not change.
	for i := 0; i < 200; i++ {
		c.TrainMSE(x, []float64{10}, 0.1)
	}
	if got := n.Forward(x)[0]; got != before {
		t.Fatal("training clone changed original")
	}
	if math.Abs(c.Forward(x)[0]-10) > 1 {
		t.Fatal("clone did not train")
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 2, 3})
	sum := 0.0
	for _, v := range p {
		if v <= 0 {
			t.Fatal("probabilities must be positive")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("sum = %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Fatalf("ordering wrong: %v", p)
	}
	// Stability with huge logits.
	p = Softmax([]float64{1000, 1001})
	if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
		t.Fatal("softmax overflow")
	}
}

func TestSampleCategorical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := []float64{0.1, 0.7, 0.2}
	counts := make([]int, 3)
	for i := 0; i < 10000; i++ {
		counts[SampleCategorical(p, rng)]++
	}
	if math.Abs(float64(counts[1])/10000-0.7) > 0.03 {
		t.Fatalf("counts = %v", counts)
	}
	// Degenerate: rounding edge returns last index.
	if SampleCategorical([]float64{0, 0}, rng) != 1 {
		t.Fatal("edge case should return last index")
	}
}

func TestBackwardGradClip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := New([]int{1, 4, 1}, rng)
	x := []float64{0.5}
	n.Forward(x)
	before := n.Forward(x)[0]
	// Huge gradient with clipping should produce a bounded update.
	n.Forward(x)
	n.Backward([]float64{1e9}, 0.01, 1)
	after := n.Forward(x)[0]
	if math.Abs(after-before) > 10 {
		t.Fatalf("clipped update moved output by %v", after-before)
	}
}
