// Package nn implements small fully-connected neural networks with tanh
// hidden activations and a linear output layer, trained by plain SGD
// backpropagation. It exists to support the actor-critic online tuner in
// internal/rl (policy and value function approximation) — it is not a
// general deep-learning library.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Net is a feed-forward network. Construct with New; the zero value is
// unusable.
type Net struct {
	sizes   []int
	weights [][][]float64 // [layer][out][in]
	biases  [][]float64   // [layer][out]

	// Scratch buffers reused across Forward/Backward.
	acts [][]float64 // activations per layer (acts[0] = input)
	pre  [][]float64 // pre-activations per layer (hidden + output)
}

// New builds a network with the given layer sizes, e.g. []int{4, 16, 2}
// for 4 inputs, one 16-unit tanh hidden layer, and 2 linear outputs.
// Weights are Xavier-initialized from rng.
func New(sizes []int, rng *rand.Rand) *Net {
	if len(sizes) < 2 {
		panic(fmt.Sprintf("nn: need at least 2 layers, got %v", sizes))
	}
	n := &Net{sizes: append([]int(nil), sizes...)}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		scale := math.Sqrt(2.0 / float64(in+out))
		w := make([][]float64, out)
		for o := range w {
			w[o] = make([]float64, in)
			for i := range w[o] {
				w[o][i] = rng.NormFloat64() * scale
			}
		}
		n.weights = append(n.weights, w)
		n.biases = append(n.biases, make([]float64, out))
	}
	n.acts = make([][]float64, len(sizes))
	n.pre = make([][]float64, len(sizes)-1)
	for l, s := range sizes {
		n.acts[l] = make([]float64, s)
		if l > 0 {
			n.pre[l-1] = make([]float64, s)
		}
	}
	return n
}

// Outputs returns the output layer width.
func (n *Net) Outputs() int { return n.sizes[len(n.sizes)-1] }

// Inputs returns the input layer width.
func (n *Net) Inputs() int { return n.sizes[0] }

// Forward runs the network and returns a copy of the outputs.
func (n *Net) Forward(x []float64) []float64 {
	if len(x) != n.sizes[0] {
		panic(fmt.Sprintf("nn: input dim %d, want %d", len(x), n.sizes[0]))
	}
	copy(n.acts[0], x)
	last := len(n.weights) - 1
	for l, w := range n.weights {
		in := n.acts[l]
		for o := range w {
			s := n.biases[l][o]
			for i, wi := range w[o] {
				s += wi * in[i]
			}
			n.pre[l][o] = s
			if l == last {
				n.acts[l+1][o] = s // linear output
			} else {
				n.acts[l+1][o] = math.Tanh(s)
			}
		}
	}
	out := make([]float64, n.Outputs())
	copy(out, n.acts[len(n.acts)-1])
	return out
}

// Backward performs one SGD step given the gradient of the loss with
// respect to the network OUTPUTS (dL/dy), evaluated after a Forward call on
// the same input. lr is the learning rate. Gradients are clipped to
// [-clip, clip] elementwise at the output (clip <= 0 disables clipping).
func (n *Net) Backward(gradOut []float64, lr, clip float64) {
	if len(gradOut) != n.Outputs() {
		panic(fmt.Sprintf("nn: grad dim %d, want %d", len(gradOut), n.Outputs()))
	}
	delta := make([]float64, n.Outputs())
	copy(delta, gradOut)
	if clip > 0 {
		for i := range delta {
			if delta[i] > clip {
				delta[i] = clip
			}
			if delta[i] < -clip {
				delta[i] = -clip
			}
		}
	}
	for l := len(n.weights) - 1; l >= 0; l-- {
		w := n.weights[l]
		in := n.acts[l]
		var nextDelta []float64
		if l > 0 {
			nextDelta = make([]float64, n.sizes[l])
		}
		for o := range w {
			d := delta[o]
			// Propagate before updating weights.
			if l > 0 {
				for i := range w[o] {
					nextDelta[i] += w[o][i] * d
				}
			}
			for i := range w[o] {
				w[o][i] -= lr * d * in[i]
			}
			n.biases[l][o] -= lr * d
		}
		if l > 0 {
			// Apply tanh' at the hidden layer below.
			for i := range nextDelta {
				a := n.acts[l][i] // tanh activation
				nextDelta[i] *= 1 - a*a
			}
			delta = nextDelta
		}
	}
}

// TrainMSE performs Forward + one SGD step on the squared error between the
// network output and target, returning the loss. Convenience for value
// networks.
func (n *Net) TrainMSE(x, target []float64, lr float64) float64 {
	out := n.Forward(x)
	grad := make([]float64, len(out))
	loss := 0.0
	for i := range out {
		d := out[i] - target[i]
		grad[i] = 2 * d
		loss += d * d
	}
	n.Backward(grad, lr, 5)
	return loss
}

// Clone returns a deep copy of the network.
func (n *Net) Clone() *Net {
	c := &Net{sizes: append([]int(nil), n.sizes...)}
	for l := range n.weights {
		w := make([][]float64, len(n.weights[l]))
		for o := range w {
			w[o] = append([]float64(nil), n.weights[l][o]...)
		}
		c.weights = append(c.weights, w)
		c.biases = append(c.biases, append([]float64(nil), n.biases[l]...))
	}
	c.acts = make([][]float64, len(n.sizes))
	c.pre = make([][]float64, len(n.sizes)-1)
	for l, s := range n.sizes {
		c.acts[l] = make([]float64, s)
		if l > 0 {
			c.pre[l-1] = make([]float64, s)
		}
	}
	return c
}

// Softmax converts logits to a probability distribution, numerically
// stabilized by max subtraction.
func Softmax(logits []float64) []float64 {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	out := make([]float64, len(logits))
	sum := 0.0
	for i, v := range logits {
		out[i] = math.Exp(v - maxv)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// SampleCategorical draws an index from the probability vector p.
func SampleCategorical(p []float64, rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	for i, pi := range p {
		acc += pi
		if u < acc {
			return i
		}
	}
	return len(p) - 1
}
