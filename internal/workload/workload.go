// Package workload defines workload descriptors and generators for the
// benchmark suites the tutorial tunes against: the YCSB core workloads A-F,
// a TPC-C-like transactional mix, and a TPC-H-like analytical mix. A
// Descriptor is the numeric summary consumed by the simulated systems
// (internal/simsys) and by workload identification (internal/workloadid);
// the op generator produces concrete key-value operation streams for the
// real in-memory store (internal/kvstore).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Descriptor summarizes a workload as the features that drive system
// performance. All ratios are in [0, 1] and sum to <= 1 (the remainder is
// read-modify-write); sizes are in MB; rates are ops/sec offered load.
type Descriptor struct {
	Name string
	// Operation mix.
	ReadRatio   float64
	UpdateRatio float64
	InsertRatio float64
	ScanRatio   float64
	// ScanLength is the mean records per scan.
	ScanLength float64
	// Skew is the zipfian theta (0 = uniform, 0.99 = classic YCSB skew).
	Skew float64
	// WorkingSetMB is the hot data size; DataSizeMB the total.
	WorkingSetMB float64
	DataSizeMB   float64
	// RecordBytes is the mean record size.
	RecordBytes float64
	// RequestRate is the offered load in ops/sec.
	RequestRate float64
	// Clients is the number of concurrent client connections.
	Clients int
}

// Validate checks descriptor invariants.
func (d Descriptor) Validate() error {
	sum := d.ReadRatio + d.UpdateRatio + d.InsertRatio + d.ScanRatio
	if sum > 1.000001 {
		return fmt.Errorf("workload %q: mix ratios sum to %v > 1", d.Name, sum)
	}
	for _, v := range []float64{d.ReadRatio, d.UpdateRatio, d.InsertRatio, d.ScanRatio} {
		if v < 0 {
			return fmt.Errorf("workload %q: negative ratio", d.Name)
		}
	}
	if d.WorkingSetMB > d.DataSizeMB {
		return fmt.Errorf("workload %q: working set %v exceeds data size %v",
			d.Name, d.WorkingSetMB, d.DataSizeMB)
	}
	if d.Skew < 0 || d.Skew >= 1 {
		return fmt.Errorf("workload %q: skew %v outside [0, 1)", d.Name, d.Skew)
	}
	return nil
}

// RMWRatio returns the read-modify-write remainder of the mix.
func (d Descriptor) RMWRatio() float64 {
	r := 1 - d.ReadRatio - d.UpdateRatio - d.InsertRatio - d.ScanRatio
	if r < 0 {
		return 0
	}
	return r
}

// WriteFraction returns the fraction of operations that write.
func (d Descriptor) WriteFraction() float64 {
	return d.UpdateRatio + d.InsertRatio + d.RMWRatio()
}

// Features returns the descriptor as a named feature map, the form used by
// knowledge transfer and workload identification.
func (d Descriptor) Features() map[string]float64 {
	return map[string]float64{
		"read_ratio":     d.ReadRatio,
		"update_ratio":   d.UpdateRatio,
		"insert_ratio":   d.InsertRatio,
		"scan_ratio":     d.ScanRatio,
		"scan_length":    d.ScanLength,
		"skew":           d.Skew,
		"working_set_mb": d.WorkingSetMB,
		"data_size_mb":   d.DataSizeMB,
		"request_rate":   d.RequestRate,
	}
}

// The YCSB core workloads (Cooper et al.), sized for a mid-size instance.

// YCSBA is the update-heavy mix (50/50 read/update).
func YCSBA() Descriptor {
	return Descriptor{
		Name: "ycsb-a", ReadRatio: 0.5, UpdateRatio: 0.5,
		Skew: 0.99, WorkingSetMB: 1024, DataSizeMB: 10240,
		RecordBytes: 1024, RequestRate: 20000, Clients: 64,
	}
}

// YCSBB is the read-mostly mix (95/5).
func YCSBB() Descriptor {
	d := YCSBA()
	d.Name = "ycsb-b"
	d.ReadRatio, d.UpdateRatio = 0.95, 0.05
	return d
}

// YCSBC is read-only.
func YCSBC() Descriptor {
	d := YCSBA()
	d.Name = "ycsb-c"
	d.ReadRatio, d.UpdateRatio = 1, 0
	return d
}

// YCSBD is read-latest (95/0/5 insert).
func YCSBD() Descriptor {
	d := YCSBA()
	d.Name = "ycsb-d"
	d.ReadRatio, d.UpdateRatio, d.InsertRatio = 0.95, 0, 0.05
	d.Skew = 0.8 // latest distribution approximated by strong skew
	return d
}

// YCSBE is the scan-heavy mix (95% scans / 5% inserts).
func YCSBE() Descriptor {
	d := YCSBA()
	d.Name = "ycsb-e"
	d.ReadRatio, d.UpdateRatio, d.InsertRatio, d.ScanRatio = 0, 0, 0.05, 0.95
	d.ScanLength = 50
	d.RequestRate = 2000
	return d
}

// YCSBF is the read-modify-write mix (50% read / 50% RMW).
func YCSBF() Descriptor {
	d := YCSBA()
	d.Name = "ycsb-f"
	d.ReadRatio, d.UpdateRatio = 0.5, 0
	return d
}

// TPCC approximates the TPC-C transaction mix as a key-value descriptor:
// write-heavy, moderate skew, working set that exceeds small buffer pools.
func TPCC() Descriptor {
	return Descriptor{
		Name: "tpcc", ReadRatio: 0.35, UpdateRatio: 0.45, InsertRatio: 0.15, ScanRatio: 0.05,
		ScanLength: 20, Skew: 0.6, WorkingSetMB: 4096, DataSizeMB: 20480,
		RecordBytes: 512, RequestRate: 8000, Clients: 128,
	}
}

// TPCH approximates TPC-H: pure scans over large cold data, low concurrency.
func TPCH(scaleFactor float64) Descriptor {
	if scaleFactor <= 0 {
		scaleFactor = 1
	}
	return Descriptor{
		Name: fmt.Sprintf("tpch-sf%g", scaleFactor), ScanRatio: 1,
		ScanLength: 100000 * scaleFactor, Skew: 0,
		WorkingSetMB: 800 * scaleFactor, DataSizeMB: 1000 * scaleFactor,
		RecordBytes: 256, RequestRate: 8, Clients: 4,
	}
}

// All returns the standard suite.
func All() []Descriptor {
	return []Descriptor{
		YCSBA(), YCSBB(), YCSBC(), YCSBD(), YCSBE(), YCSBF(), TPCC(), TPCH(1),
	}
}

// ByName returns the named standard workload.
func ByName(name string) (Descriptor, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return Descriptor{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Interpolate blends two descriptors: (1-t)*a + t*b elementwise, used by
// workload-shift simulations and synthetic benchmark generation.
func Interpolate(a, b Descriptor, t float64) Descriptor {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	lerp := func(x, y float64) float64 { return x*(1-t) + y*t }
	return Descriptor{
		Name:         fmt.Sprintf("%s~%s@%.2f", a.Name, b.Name, t),
		ReadRatio:    lerp(a.ReadRatio, b.ReadRatio),
		UpdateRatio:  lerp(a.UpdateRatio, b.UpdateRatio),
		InsertRatio:  lerp(a.InsertRatio, b.InsertRatio),
		ScanRatio:    lerp(a.ScanRatio, b.ScanRatio),
		ScanLength:   lerp(a.ScanLength, b.ScanLength),
		Skew:         lerp(a.Skew, b.Skew),
		WorkingSetMB: lerp(a.WorkingSetMB, b.WorkingSetMB),
		DataSizeMB:   lerp(a.DataSizeMB, b.DataSizeMB),
		RecordBytes:  lerp(a.RecordBytes, b.RecordBytes),
		RequestRate:  lerp(a.RequestRate, b.RequestRate),
		Clients:      int(math.Round(lerp(float64(a.Clients), float64(b.Clients)))),
	}
}

// Mix blends several descriptors with the given nonnegative weights
// (normalized internally) — the synthetic-benchmark-generation primitive.
func Mix(descs []Descriptor, weights []float64) (Descriptor, error) {
	if len(descs) == 0 || len(descs) != len(weights) {
		return Descriptor{}, fmt.Errorf("workload: mix needs matching descs/weights, got %d/%d",
			len(descs), len(weights))
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			return Descriptor{}, fmt.Errorf("workload: negative mix weight %v", w)
		}
		sum += w
	}
	if sum == 0 {
		return Descriptor{}, fmt.Errorf("workload: all mix weights zero")
	}
	var out Descriptor
	out.Name = "mix"
	var clients float64
	for i, d := range descs {
		w := weights[i] / sum
		out.ReadRatio += w * d.ReadRatio
		out.UpdateRatio += w * d.UpdateRatio
		out.InsertRatio += w * d.InsertRatio
		out.ScanRatio += w * d.ScanRatio
		out.ScanLength += w * d.ScanLength
		out.Skew += w * d.Skew
		out.WorkingSetMB += w * d.WorkingSetMB
		out.DataSizeMB += w * d.DataSizeMB
		out.RecordBytes += w * d.RecordBytes
		out.RequestRate += w * d.RequestRate
		clients += w * float64(d.Clients)
	}
	out.Clients = int(math.Round(clients))
	return out, nil
}

// OpKind enumerates generated operations.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpScan
	OpRMW
)

// Op is one generated operation for the kvstore driver.
type Op struct {
	Kind OpKind
	Key  uint64
	// Len is the scan length for OpScan.
	Len int
}

// Generator produces an op stream matching a descriptor.
type Generator struct {
	desc    Descriptor
	zipf    *Zipfian
	rng     *rand.Rand
	keys    uint64
	nextKey uint64
}

// NewGenerator builds a generator over `keys` distinct keys.
func NewGenerator(desc Descriptor, keys uint64, rng *rand.Rand) (*Generator, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	if keys == 0 {
		keys = 1
	}
	var z *Zipfian
	if desc.Skew > 0 {
		z = NewZipfian(keys, desc.Skew, rng)
	}
	return &Generator{desc: desc, zipf: z, rng: rng, keys: keys, nextKey: keys}, nil
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	u := g.rng.Float64()
	d := g.desc
	key := g.sampleKey()
	switch {
	case u < d.ReadRatio:
		return Op{Kind: OpRead, Key: key}
	case u < d.ReadRatio+d.UpdateRatio:
		return Op{Kind: OpUpdate, Key: key}
	case u < d.ReadRatio+d.UpdateRatio+d.InsertRatio:
		g.nextKey++
		return Op{Kind: OpInsert, Key: g.nextKey}
	case u < d.ReadRatio+d.UpdateRatio+d.InsertRatio+d.ScanRatio:
		l := int(d.ScanLength)
		if l < 1 {
			l = 1
		}
		return Op{Kind: OpScan, Key: key, Len: l}
	default:
		return Op{Kind: OpRMW, Key: key}
	}
}

func (g *Generator) sampleKey() uint64 {
	if g.zipf != nil {
		return g.zipf.Next()
	}
	return uint64(g.rng.Int63n(int64(g.keys)))
}

// Zipfian samples keys with the classic YCSB zipfian distribution using
// the Gray et al. rejection-free method.
type Zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
}

// NewZipfian builds a sampler over [0, n) with skew theta in (0, 1).
func NewZipfian(n uint64, theta float64, rng *rand.Rand) *Zipfian {
	if n == 0 {
		n = 1
	}
	if theta <= 0 {
		theta = 0.01
	}
	if theta >= 1 {
		theta = 0.999
	}
	z := &Zipfian{n: n, theta: theta, rng: rng}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	// Exact up to 10k terms, then the integral approximation; YCSB-scale
	// key counts make the exact sum too slow.
	limit := n
	if limit > 10000 {
		limit = 10000
	}
	sum := 0.0
	for i := uint64(1); i <= limit; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	if n > limit {
		// ∫ x^-theta dx from limit to n.
		sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(limit), 1-theta)) / (1 - theta)
	}
	return sum
}

// Next returns the next zipfian-distributed key in [0, n).
func (z *Zipfian) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	idx := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if idx >= z.n {
		idx = z.n - 1
	}
	return idx
}
