package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestStandardWorkloadsValid(t *testing.T) {
	for _, d := range All() {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
	if len(All()) != 8 {
		t.Fatalf("suite size = %d", len(All()))
	}
}

func TestValidateCatchesBadDescriptors(t *testing.T) {
	bad := []Descriptor{
		{Name: "over", ReadRatio: 0.8, UpdateRatio: 0.5},
		{Name: "neg", ReadRatio: -0.1},
		{Name: "ws", WorkingSetMB: 10, DataSizeMB: 5},
		{Name: "skew", Skew: 1.5},
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("%s: expected error", d.Name)
		}
	}
}

func TestMixAndWriteFraction(t *testing.T) {
	a := YCSBA()
	if got := a.WriteFraction(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ycsb-a write fraction = %v", got)
	}
	f := YCSBF()
	// 50% read + 50% RMW -> RMW counts as write.
	if got := f.RMWRatio(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ycsb-f rmw = %v", got)
	}
	if got := f.WriteFraction(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ycsb-f write fraction = %v", got)
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("tpcc")
	if err != nil || d.Name != "tpcc" {
		t.Fatalf("ByName: %v %v", d, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestFeatures(t *testing.T) {
	f := YCSBB().Features()
	if f["read_ratio"] != 0.95 {
		t.Fatalf("features = %v", f)
	}
	if _, ok := f["working_set_mb"]; !ok {
		t.Fatal("missing working_set_mb")
	}
}

func TestInterpolate(t *testing.T) {
	a, b := YCSBA(), YCSBC()
	mid := Interpolate(a, b, 0.5)
	if math.Abs(mid.ReadRatio-0.75) > 1e-12 {
		t.Fatalf("mid read ratio = %v", mid.ReadRatio)
	}
	if err := mid.Validate(); err != nil {
		t.Fatal(err)
	}
	// Clamping.
	if Interpolate(a, b, -1).ReadRatio != a.ReadRatio {
		t.Fatal("t < 0 should clamp to a")
	}
	if Interpolate(a, b, 2).ReadRatio != b.ReadRatio {
		t.Fatal("t > 1 should clamp to b")
	}
}

func TestMix(t *testing.T) {
	m, err := Mix([]Descriptor{YCSBA(), YCSBC()}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.ReadRatio-0.75) > 1e-12 {
		t.Fatalf("mix read ratio = %v", m.ReadRatio)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Mix(nil, nil); err == nil {
		t.Fatal("empty mix should error")
	}
	if _, err := Mix([]Descriptor{YCSBA()}, []float64{-1}); err == nil {
		t.Fatal("negative weight should error")
	}
	if _, err := Mix([]Descriptor{YCSBA()}, []float64{0}); err == nil {
		t.Fatal("zero weights should error")
	}
}

func TestGeneratorMixMatchesDescriptor(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen, err := NewGenerator(YCSBA(), 100000, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[OpKind]int{}
	n := 20000
	for i := 0; i < n; i++ {
		counts[gen.Next().Kind]++
	}
	readFrac := float64(counts[OpRead]) / float64(n)
	updFrac := float64(counts[OpUpdate]) / float64(n)
	if math.Abs(readFrac-0.5) > 0.02 || math.Abs(updFrac-0.5) > 0.02 {
		t.Fatalf("mix = %v", counts)
	}
}

func TestGeneratorScanLength(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gen, err := NewGenerator(YCSBE(), 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		op := gen.Next()
		if op.Kind == OpScan && op.Len != 50 {
			t.Fatalf("scan len = %d", op.Len)
		}
	}
}

func TestGeneratorInsertsGetFreshKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := Descriptor{Name: "ins", InsertRatio: 1, DataSizeMB: 1, WorkingSetMB: 1}
	gen, err := NewGenerator(d, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 50; i++ {
		op := gen.Next()
		if op.Kind != OpInsert {
			t.Fatal("kind")
		}
		if op.Key < 100 {
			t.Fatalf("insert key %d collides with initial range", op.Key)
		}
		if seen[op.Key] {
			t.Fatalf("duplicate insert key %d", op.Key)
		}
		seen[op.Key] = true
	}
}

func TestGeneratorRejectsInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := NewGenerator(Descriptor{ReadRatio: 2}, 10, rng); err == nil {
		t.Fatal("invalid descriptor should error")
	}
}

func TestZipfianSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	z := NewZipfian(10000, 0.99, rng)
	counts := map[uint64]int{}
	n := 50000
	for i := 0; i < n; i++ {
		k := z.Next()
		if k >= 10000 {
			t.Fatalf("key out of range: %d", k)
		}
		counts[k]++
	}
	// Hot key 0 should take a large share; under uniform it'd be ~5.
	if counts[0] < n/50 {
		t.Fatalf("key 0 count = %d, want heavy skew", counts[0])
	}
	// Distinct keys touched far fewer than uniform would.
	if len(counts) > n/3 {
		t.Fatalf("distinct keys = %d, want concentration", len(counts))
	}
}

func TestZipfianUniformish(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	z := NewZipfian(100, 0.01, rng) // near uniform
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	// No key should dominate.
	for k, c := range counts {
		if c > 5000 {
			t.Fatalf("key %d count %d too high for near-uniform", k, c)
		}
	}
}

func TestZipfianDegenerateParams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	z := NewZipfian(0, 0, rng) // clamps to n=1, small theta
	if z.Next() != 0 {
		t.Fatal("single-key zipfian must return 0")
	}
	z2 := NewZipfian(10, 5, rng) // theta clamps below 1
	for i := 0; i < 100; i++ {
		if z2.Next() >= 10 {
			t.Fatal("out of range")
		}
	}
}
