package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Trace is a recorded operation sequence. Replaying the same trace against
// two configurations gives an exact A/B comparison — the same idea as duet
// benchmarking, applied to the op stream instead of the machine.
type Trace struct {
	Name string
	Ops  []Op
}

// ErrEmptyTrace is returned when replaying a trace with no operations.
var ErrEmptyTrace = errors.New("workload: empty trace")

// Record captures n operations from the generator into a trace.
func Record(gen *Generator, n int) *Trace {
	t := &Trace{Name: gen.desc.Name, Ops: make([]Op, n)}
	for i := range t.Ops {
		t.Ops[i] = gen.Next()
	}
	return t
}

// Replayer iterates a trace, cycling when it reaches the end.
type Replayer struct {
	trace *Trace
	pos   int
}

// Replayer returns a fresh iterator over the trace.
func (t *Trace) Replayer() (*Replayer, error) {
	return t.ReplayerAt(0)
}

// ReplayerAt returns an iterator starting at the given offset (mod length),
// so concurrent workers can replay disjoint regions deterministically.
func (t *Trace) ReplayerAt(start int) (*Replayer, error) {
	if len(t.Ops) == 0 {
		return nil, ErrEmptyTrace
	}
	if start < 0 {
		start = 0
	}
	return &Replayer{trace: t, pos: start % len(t.Ops)}, nil
}

// Next returns the next operation, cycling past the end.
func (r *Replayer) Next() Op {
	op := r.trace.Ops[r.pos]
	r.pos = (r.pos + 1) % len(r.trace.Ops)
	return op
}

// Len returns the number of recorded operations.
func (t *Trace) Len() int { return len(t.Ops) }

// Mix returns the observed operation-kind fractions, for validating that a
// recorded trace matches its descriptor.
func (t *Trace) Mix() map[OpKind]float64 {
	counts := map[OpKind]int{}
	for _, op := range t.Ops {
		counts[op.Kind]++
	}
	out := make(map[OpKind]float64, len(counts))
	for k, c := range counts {
		out[k] = float64(c) / float64(len(t.Ops))
	}
	return out
}

// traceMagic guards the binary trace format.
const traceMagic = uint32(0x41545452) // "ATTR"

// Save writes the trace in a compact binary format.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("workload: create trace: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := binary.Write(w, binary.LittleEndian, traceMagic); err != nil {
		return fmt.Errorf("workload: write trace: %w", err)
	}
	name := []byte(t.Name)
	if err := binary.Write(w, binary.LittleEndian, uint32(len(name))); err != nil {
		return fmt.Errorf("workload: write trace: %w", err)
	}
	if _, err := w.Write(name); err != nil {
		return fmt.Errorf("workload: write trace: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(t.Ops))); err != nil {
		return fmt.Errorf("workload: write trace: %w", err)
	}
	for _, op := range t.Ops {
		rec := [2]uint64{uint64(op.Kind)<<32 | uint64(uint32(op.Len)), op.Key}
		if err := binary.Write(w, binary.LittleEndian, rec); err != nil {
			return fmt.Errorf("workload: write trace: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("workload: write trace: %w", err)
	}
	return nil
}

// LoadTrace reads a trace written by Save.
func LoadTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: open trace: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("workload: read trace: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("workload: %s is not a trace file", path)
	}
	var nameLen uint32
	if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
		return nil, fmt.Errorf("workload: read trace: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("workload: trace name length %d too large", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, fmt.Errorf("workload: read trace: %w", err)
	}
	var count uint64
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("workload: read trace: %w", err)
	}
	if count > 1<<30 {
		return nil, fmt.Errorf("workload: trace op count %d too large", count)
	}
	t := &Trace{Name: string(name), Ops: make([]Op, count)}
	for i := range t.Ops {
		var rec [2]uint64
		if err := binary.Read(r, binary.LittleEndian, &rec); err != nil {
			return nil, fmt.Errorf("workload: read trace op %d: %w", i, err)
		}
		t.Ops[i] = Op{
			Kind: OpKind(rec[0] >> 32),
			Len:  int(uint32(rec[0])),
			Key:  rec[1],
		}
	}
	return t, nil
}
