package workload

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestRecordAndReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen, err := NewGenerator(YCSBA(), 10000, rng)
	if err != nil {
		t.Fatal(err)
	}
	tr := Record(gen, 500)
	if tr.Len() != 500 || tr.Name != "ycsb-a" {
		t.Fatalf("trace: len=%d name=%q", tr.Len(), tr.Name)
	}
	// Two replayers yield identical sequences.
	r1, err := tr.Replayer()
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := tr.Replayer()
	for i := 0; i < 1200; i++ { // crosses the cycle boundary
		a, b := r1.Next(), r2.Next()
		if a != b {
			t.Fatalf("replayers diverged at %d: %v vs %v", i, a, b)
		}
	}
	// Cycling: op 0 == op Len.
	r3, _ := tr.Replayer()
	first := r3.Next()
	for i := 1; i < tr.Len(); i++ {
		r3.Next()
	}
	if got := r3.Next(); got != first {
		t.Fatalf("cycle mismatch: %v vs %v", got, first)
	}
}

func TestEmptyTraceReplayer(t *testing.T) {
	tr := &Trace{}
	if _, err := tr.Replayer(); !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("err = %v", err)
	}
}

func TestTraceMixMatchesDescriptor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gen, err := NewGenerator(YCSBB(), 10000, rng)
	if err != nil {
		t.Fatal(err)
	}
	tr := Record(gen, 20000)
	mix := tr.Mix()
	if math.Abs(mix[OpRead]-0.95) > 0.02 {
		t.Fatalf("read fraction = %v", mix[OpRead])
	}
	if math.Abs(mix[OpUpdate]-0.05) > 0.02 {
		t.Fatalf("update fraction = %v", mix[OpUpdate])
	}
}

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gen, err := NewGenerator(YCSBE(), 5000, rng)
	if err != nil {
		t.Fatal(err)
	}
	tr := Record(gen, 300)
	path := filepath.Join(t.TempDir(), "trace.bin")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != tr.Name || loaded.Len() != tr.Len() {
		t.Fatalf("metadata: %q/%d vs %q/%d", loaded.Name, loaded.Len(), tr.Name, tr.Len())
	}
	for i := range tr.Ops {
		if tr.Ops[i] != loaded.Ops[i] {
			t.Fatalf("op %d: %v vs %v", i, tr.Ops[i], loaded.Ops[i])
		}
	}
}

func TestLoadTraceRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk.bin")
	if err := os.WriteFile(path, []byte("this is not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace(path); err == nil {
		t.Fatal("garbage should fail to load")
	}
	if _, err := LoadTrace(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file should error")
	}
}

// Property: Save/Load round-trips arbitrary traces exactly.
func TestTraceRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%200
		tr := &Trace{Name: "prop"}
		for i := 0; i < n; i++ {
			tr.Ops = append(tr.Ops, Op{
				Kind: OpKind(rng.Intn(5)),
				Key:  rng.Uint64(),
				Len:  rng.Intn(1 << 16),
			})
		}
		path := filepath.Join(dir, "t.bin")
		if err := tr.Save(path); err != nil {
			return false
		}
		got, err := LoadTrace(path)
		if err != nil || got.Name != tr.Name || got.Len() != tr.Len() {
			return false
		}
		for i := range tr.Ops {
			if tr.Ops[i] != got.Ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
