// Package projection implements LlamaTune-style search-space reduction
// (Kanellis et al., VLDB 2022): a HeSBO hashing random projection from a
// low-dimensional tuning space into the full knob space, plus the two knob
// treatments LlamaTune layers on top — special-value biasing (e.g. a knob's
// OFF value gets dedicated probability mass) and value bucketization.
//
// The wrapper exposes the reduced space as a regular *space.Space, so any
// optimizer in the framework can tune in d_low dimensions while the target
// system receives full configurations.
package projection

import (
	"errors"
	"fmt"
	"math/rand"

	"autotune/internal/space"
)

// ErrBadDim is returned for non-positive target dimensionality.
var ErrBadDim = errors.New("projection: target dimension must be positive")

// HeSBO is a hashing-based sparse random projection: every original
// dimension i is assigned a random low dimension h(i) and a random sign
// s(i); the full-space unit-cube point is x_i = 0.5 + s(i)*(y_h(i) - 0.5),
// which keeps points inside the cube (Nayebi et al., 2019).
type HeSBO struct {
	full *space.Space
	low  *space.Space
	hash []int
	sign []float64

	// SpecialBias is the probability that a decoded knob with special
	// values snaps to one of them (LlamaTune uses ~0.2; 0 disables).
	SpecialBias float64
	// Buckets quantizes each decoded numeric knob into this many discrete
	// levels (0 disables bucketization).
	Buckets int

	rng *rand.Rand
}

// NewHeSBO builds a projection from full onto dLow latent dimensions, with
// hash and sign assignments drawn from rng.
func NewHeSBO(full *space.Space, dLow int, rng *rand.Rand) (*HeSBO, error) {
	if dLow <= 0 {
		return nil, ErrBadDim
	}
	d := full.Dim()
	if dLow > d {
		dLow = d
	}
	params := make([]space.Param, dLow)
	for i := range params {
		params[i] = space.Float(fmt.Sprintf("z%02d", i), 0, 1).WithDefault(0.5)
	}
	lowSpace, err := space.New(params...)
	if err != nil {
		return nil, fmt.Errorf("projection: %w", err)
	}
	h := &HeSBO{
		full: full,
		low:  lowSpace,
		hash: make([]int, d),
		sign: make([]float64, d),
		rng:  rng,
	}
	for i := 0; i < d; i++ {
		h.hash[i] = rng.Intn(dLow)
		if rng.Intn(2) == 0 {
			h.sign[i] = 1
		} else {
			h.sign[i] = -1
		}
	}
	return h, nil
}

// LowSpace returns the reduced tuning space (dLow continuous dimensions).
func (h *HeSBO) LowSpace() *space.Space { return h.low }

// FullSpace returns the original knob space.
func (h *HeSBO) FullSpace() *space.Space { return h.full }

// Project maps a low-space configuration to a full-space configuration,
// applying special-value biasing and bucketization when enabled.
func (h *HeSBO) Project(lowCfg space.Config) space.Config {
	y := h.low.Encode(lowCfg)
	x := make([]float64, h.full.Dim())
	for i := range x {
		x[i] = 0.5 + h.sign[i]*(y[h.hash[i]]-0.5)
	}
	if h.Buckets > 1 {
		for i := range x {
			// Snap to bucket centers.
			b := float64(h.Buckets)
			k := float64(int(x[i] * b))
			if k >= b {
				k = b - 1
			}
			x[i] = (k + 0.5) / b
		}
	}
	cfg := h.full.Decode(x)
	if h.SpecialBias > 0 {
		for _, p := range h.full.Params() {
			if len(p.Special) == 0 {
				continue
			}
			if h.rng.Float64() < h.SpecialBias {
				sp := p.Special[h.rng.Intn(len(p.Special))]
				switch p.Kind {
				case space.KindInt:
					cfg[p.Name] = int64(sp)
				case space.KindFloat:
					cfg[p.Name] = sp
				}
			}
		}
		cfg = h.full.Clip(cfg)
	}
	return cfg
}

// Objective wraps a full-space objective so it can be minimized over the
// low space: f_low(z) = f_full(Project(z)). It also reports the projected
// configuration for each call through the optional sink.
func (h *HeSBO) Objective(f func(space.Config) float64, sink func(low, full space.Config)) func(space.Config) float64 {
	return func(lowCfg space.Config) float64 {
		full := h.Project(lowCfg)
		if sink != nil {
			sink(lowCfg, full)
		}
		return f(full)
	}
}
