package projection

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"autotune/internal/bo"
	"autotune/internal/optimizer"
	"autotune/internal/space"
)

// wideSpace builds a d-dimensional space where only two dims matter.
func wideSpace(d int) *space.Space {
	params := make([]space.Param, d)
	for i := range params {
		params[i] = space.Float(fmt.Sprintf("k%02d", i), 0, 1)
	}
	return space.MustNew(params...)
}

func wideObjective(c space.Config) float64 {
	// Only k00 and k01 matter.
	a := c.Float("k00") - 0.8
	b := c.Float("k01") - 0.2
	return a*a + b*b
}

func TestNewHeSBOValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewHeSBO(wideSpace(4), 0, rng); !errors.Is(err, ErrBadDim) {
		t.Fatalf("err = %v", err)
	}
	// dLow > d clamps.
	h, err := NewHeSBO(wideSpace(3), 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if h.LowSpace().Dim() != 3 {
		t.Fatalf("low dim = %d", h.LowSpace().Dim())
	}
}

func TestProjectProducesValidConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	full := space.MustNew(
		space.Float("a", 0, 100),
		space.Int("b", 1, 64),
		space.Categorical("c", "x", "y", "z"),
		space.Bool("d"),
		space.Float("e", 1, 1e6).WithLog(),
	)
	h, err := NewHeSBO(full, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		low := h.LowSpace().Sample(rng)
		fullCfg := h.Project(low)
		if err := full.Validate(fullCfg); err != nil {
			t.Fatalf("projected config invalid: %v", err)
		}
	}
}

func TestProjectionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	full := wideSpace(8)
	h, _ := NewHeSBO(full, 3, rng)
	low := h.LowSpace().Sample(rand.New(rand.NewSource(4)))
	a := h.Project(low)
	b := h.Project(low)
	if a.Key() != b.Key() {
		t.Fatal("projection not deterministic without biasing")
	}
}

func TestSpecialBias(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	full := space.MustNew(
		space.Int("cache_mb", 0, 1024).WithSpecial(0), // 0 = off
		space.Float("x", 0, 1),
	)
	h, _ := NewHeSBO(full, 2, rng)
	h.SpecialBias = 0.5
	zeros := 0
	n := 400
	for i := 0; i < n; i++ {
		low := h.LowSpace().Sample(rng)
		cfg := h.Project(low)
		if cfg.Int("cache_mb") == 0 {
			zeros++
		}
	}
	// Without bias P(exactly 0) ~ 1/1025; with 50% bias it should be huge.
	if zeros < n/4 {
		t.Fatalf("special value hit %d/%d times, want >= %d", zeros, n, n/4)
	}
}

func TestBucketization(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	full := space.MustNew(space.Float("x", 0, 1))
	h, _ := NewHeSBO(full, 1, rng)
	h.Buckets = 4
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		low := h.LowSpace().Sample(rng)
		cfg := h.Project(low)
		seen[cfg.Key()] = true
	}
	if len(seen) > 4 {
		t.Fatalf("bucketized projection produced %d distinct values, want <= 4", len(seen))
	}
}

func TestLowDimTuningFindsOptimum(t *testing.T) {
	// Tuning 16 knobs through a 4-d projection: BO over the low space
	// should still find a good config because the effective dim is 2.
	full := wideSpace(16)
	var projWins int
	seeds := 4
	for s := 0; s < seeds; s++ {
		rng := rand.New(rand.NewSource(int64(50 + s)))
		h, err := NewHeSBO(full, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		opt := bo.New(h.LowSpace(), rng)
		obj := h.Objective(wideObjective, nil)
		_, lowBest, err := optimizer.Run(opt, obj, 30)
		if err != nil {
			t.Fatal(err)
		}
		// Full-space random search with the same budget.
		rd := optimizer.NewRandom(full, rand.New(rand.NewSource(int64(50+s))))
		_, rdBest, err := optimizer.Run(rd, wideObjective, 30)
		if err != nil {
			t.Fatal(err)
		}
		if lowBest <= rdBest {
			projWins++
		}
	}
	if projWins < seeds/2 {
		t.Fatalf("projection won only %d/%d seeds", projWins, seeds)
	}
}

func TestObjectiveSink(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	full := wideSpace(6)
	h, _ := NewHeSBO(full, 2, rng)
	var gotLow, gotFull space.Config
	obj := h.Objective(wideObjective, func(low, fullCfg space.Config) {
		gotLow, gotFull = low, fullCfg
	})
	low := h.LowSpace().Sample(rng)
	obj(low)
	if gotLow == nil || gotFull == nil {
		t.Fatal("sink not called")
	}
	if err := full.Validate(gotFull); err != nil {
		t.Fatal(err)
	}
}
