package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"autotune/internal/core"
	"autotune/internal/optimizer"
	"autotune/internal/space"
	"autotune/internal/studystore"
)

// testSpec is a small mixed space exercising every parameter kind.
func testSpec(opt string, seed int64) StudySpec {
	return StudySpec{
		Optimizer: opt,
		Seed:      seed,
		Space: []ParamSpec{
			{Name: "cache_mb", Kind: "int", Min: 64, Max: 4096},
			{Name: "timeout", Kind: "float", Min: 0.1, Max: 10, Log: true},
			{Name: "policy", Kind: "categorical", Values: []string{"lru", "fifo", "arc"}},
			{Name: "compress", Kind: "bool"},
		},
	}
}

// newTestServer serves a fresh store dir over httptest.
func newTestServer(t *testing.T, opts Options) (*Server, *Client) {
	t.Helper()
	if opts.StoreDir == "" {
		opts.StoreDir = t.TempDir()
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(hs.Close)
	t.Cleanup(func() { _ = s.Close() })
	return s, NewClientHTTP(hs.URL, hs.Client())
}

func mustCreate(t *testing.T, c *Client, study string, spec StudySpec) {
	t.Helper()
	if _, err := c.CreateStudy(context.Background(), study, spec); err != nil {
		t.Fatalf("create %s: %v", study, err)
	}
}

// observeSuggested runs one suggest/observe round and returns the trials.
func observeSuggested(t *testing.T, c *Client, study string, n int) []SuggestedTrial {
	t.Helper()
	ctx := context.Background()
	sugg, err := c.Suggest(ctx, study, n)
	if err != nil {
		t.Fatalf("suggest %s: %v", study, err)
	}
	obs := make([]Observation, len(sugg))
	for i, tr := range sugg {
		obs[i] = Observation{
			Trial: tr.Trial, Config: tr.Config,
			Value:       float64(tr.Trial%7) - float64(tr.Trial)/100,
			CostSeconds: 1 + float64(tr.Trial%3),
			Metrics:     map[string]float64{"p99_ms": 10 + float64(tr.Trial%5)},
		}
	}
	res, err := c.Observe(ctx, study, obs...)
	if err != nil {
		t.Fatalf("observe %s: %v", study, err)
	}
	if res.Acked != len(obs) || res.Duplicates != 0 {
		t.Fatalf("observe %s: acked %d dups %d, want %d/0", study, res.Acked, res.Duplicates, len(obs))
	}
	return sugg
}

func TestEndToEnd(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := context.Background()

	created, err := c.CreateStudy(ctx, "e2e", testSpec("random", 42))
	if err != nil || !created {
		t.Fatalf("create: created=%v err=%v", created, err)
	}
	// Identical re-create is idempotent.
	created, err = c.CreateStudy(ctx, "e2e", testSpec("random", 42))
	if err != nil || created {
		t.Fatalf("re-create: created=%v err=%v, want false/nil", created, err)
	}
	// A different spec under the same name conflicts.
	_, err = c.CreateStudy(ctx, "e2e", testSpec("random", 43))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict {
		t.Fatalf("spec mismatch: %v, want 409", err)
	}

	observeSuggested(t, c, "e2e", 8)
	best, err := c.Best(ctx, "e2e")
	if err != nil || !best.Found || best.Observed != 8 {
		t.Fatalf("best: %+v err=%v", best, err)
	}
	if _, ok := best.Config["cache_mb"]; !ok {
		t.Fatalf("best config missing knob: %v", best.Config)
	}
	trs, err := c.Trials(ctx, "e2e")
	if err != nil || len(trs) != 8 {
		t.Fatalf("trials: %d err=%v", len(trs), err)
	}
	infos, err := c.Studies(ctx)
	if err != nil || len(infos) != 1 || infos[0].Trials != 8 || infos[0].ReadOnly {
		t.Fatalf("list: %+v err=%v", infos, err)
	}
	if err := c.Healthy(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if err := c.Ready(ctx); err != nil {
		t.Fatalf("readyz: %v", err)
	}
	if _, err := c.Suggest(ctx, "nope", 1); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown study: %v, want 404", err)
	}
}

func TestObserveIdempotent(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := context.Background()
	mustCreate(t, c, "idem", testSpec("random", 1))
	sugg := observeSuggested(t, c, "idem", 4)

	// Retry the exact batch: all duplicates, nothing acked twice.
	obs := make([]Observation, len(sugg))
	for i, tr := range sugg {
		obs[i] = Observation{Trial: tr.Trial, Config: tr.Config, Value: 99}
	}
	res, err := c.Observe(ctx, "idem", obs...)
	if err != nil || res.Acked != 0 || res.Duplicates != 4 {
		t.Fatalf("retry: %+v err=%v, want 0 acked 4 dups", res, err)
	}
	// The duplicate's bogus value must not have moved the incumbent.
	best, err := c.Best(ctx, "idem")
	if err != nil || best.Value == 99 {
		t.Fatalf("best after dup: %+v err=%v", best, err)
	}
	// A batch with an in-batch repeat acks it once.
	one := []Observation{
		{Trial: 100, Config: sugg[0].Config, Value: 1},
		{Trial: 100, Config: sugg[0].Config, Value: 2},
	}
	res, err = c.Observe(ctx, "idem", one...)
	if err != nil || res.Acked != 1 || res.Duplicates != 1 {
		t.Fatalf("in-batch dup: %+v err=%v", res, err)
	}
}

// TestCrashRecoveryExactlyOnce simulates kill -9 by abandoning the server
// without sealing (Store.Close leaves the tail exactly as a crash would)
// and asserts the restarted server holds every acked observation exactly
// once and resumes suggesting deterministically.
func TestCrashRecoveryExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s1, err := New(Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h1 := httptest.NewServer(s1)
	c1 := NewClientHTTP(h1.URL, h1.Client())
	for i, opt := range []string{"random", "bo", "anneal"} {
		study := fmt.Sprintf("crash-%s", opt)
		mustCreate(t, c1, study, testSpec(opt, int64(100+i)))
		observeSuggested(t, c1, study, 5)
	}
	// Capture the post-crash reference: what each study's optimizer
	// suggests after a pure replay of the durable history.
	want := map[string]string{}
	for i, opt := range []string{"random", "bo", "anneal"} {
		study := fmt.Sprintf("crash-%s", opt)
		trs, err := c1.Trials(ctx, study)
		if err != nil {
			t.Fatal(err)
		}
		spec := testSpec(opt, int64(100+i))
		sp, err := buildSpace(spec.Space)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := core.NewOptimizer(opt, sp, rand.New(rand.NewSource(spec.Seed)))
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range trs {
			cfg, err := normalizeConfig(sp, tr.Config)
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Observe(cfg, tr.Value); err != nil {
				t.Fatal(err)
			}
		}
		// Mirror the server's batch-vs-serial suggest dispatch exactly.
		var stream []space.Config
		if bs, ok := ref.(optimizer.BatchSuggester); ok {
			stream, err = bs.SuggestN(3)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			for k := 0; k < 3; k++ {
				cfg, err := ref.Suggest()
				if err != nil {
					t.Fatal(err)
				}
				stream = append(stream, cfg)
			}
		}
		want[study] = mustJSON(t, stream)
	}
	h1.Close()
	if err := s1.crashClose(); err != nil { // crash: no seal, no drain
		t.Fatal(err)
	}

	// Two sequential restarts must agree with the reference and with each
	// other, bit for bit.
	for restart := 0; restart < 2; restart++ {
		s2, err := New(Options{StoreDir: dir})
		if err != nil {
			t.Fatalf("restart %d: %v", restart, err)
		}
		h2 := httptest.NewServer(s2)
		c2 := NewClientHTTP(h2.URL, h2.Client())
		for _, opt := range []string{"random", "bo", "anneal"} {
			study := fmt.Sprintf("crash-%s", opt)
			trs, err := c2.Trials(ctx, study)
			if err != nil {
				t.Fatalf("restart %d %s: %v", restart, study, err)
			}
			if len(trs) != 5 {
				t.Fatalf("restart %d %s: %d trials, want 5 (exactly once)", restart, study, len(trs))
			}
			seen := map[int]bool{}
			for _, tr := range trs {
				if seen[tr.ID] {
					t.Fatalf("restart %d %s: duplicate trial %d", restart, study, tr.ID)
				}
				seen[tr.ID] = true
			}
			sugg, err := c2.Suggest(ctx, study, 3)
			if err != nil {
				t.Fatalf("restart %d %s suggest: %v", restart, study, err)
			}
			var stream []map[string]any
			for _, tr := range sugg {
				stream = append(stream, tr.Config)
			}
			if got := mustJSON(t, stream); got != normalizeJSON(t, want[study]) {
				t.Fatalf("restart %d %s: suggest stream diverged\n got %s\nwant %s",
					restart, study, got, want[study])
			}
		}
		h2.Close()
		if err := s2.crashClose(); err != nil {
			t.Fatal(err)
		}
	}
}

// mustJSON pins a value's canonical JSON for bitwise comparison.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// normalizeJSON round-trips through map[string]any so int64 vs float64
// representations of the same number compare equal.
func normalizeJSON(t *testing.T, s string) string {
	t.Helper()
	var v any
	if err := json.Unmarshal([]byte(s), &v); err != nil {
		t.Fatal(err)
	}
	return mustJSON(t, v)
}

// panicOptimizer blows up on demand to test fault isolation.
type panicOptimizer struct{ onSuggest, onObserve bool }

func (p panicOptimizer) Suggest() (space.Config, error) {
	if p.onSuggest {
		panic("boom: suggest")
	}
	return space.Config{}, nil
}
func (p panicOptimizer) Observe(space.Config, float64) error {
	if p.onObserve {
		panic("boom: observe")
	}
	return nil
}
func (p panicOptimizer) Best() (space.Config, float64, bool) { return nil, 0, false }
func (p panicOptimizer) Name() string                        { return "panic" }

func TestPanicIsolation(t *testing.T) {
	s, c := newTestServer(t, Options{})
	ctx := context.Background()
	mustCreate(t, c, "bomb", testSpec("random", 7))
	mustCreate(t, c, "healthy", testSpec("random", 8))
	s.session("bomb").opt = panicOptimizer{onSuggest: true}

	_, err := c.Suggest(ctx, "bomb", 1)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("panicking suggest: %v, want 500", err)
	}
	// The study degraded to read-only; the process and siblings survive.
	if _, err := c.Suggest(ctx, "bomb", 1); !errors.As(err, &apiErr) || apiErr.Code != "read_only" {
		t.Fatalf("degraded study: %v, want read_only", err)
	}
	if _, err := c.Suggest(ctx, "healthy", 1); err != nil {
		t.Fatalf("sibling study: %v", err)
	}
	if err := c.Healthy(ctx); err != nil {
		t.Fatalf("healthz after panic: %v", err)
	}
	infos, err := c.Studies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if info.Study == "bomb" && !info.ReadOnly {
			t.Fatalf("bomb not listed read-only: %+v", info)
		}
	}
}

func TestObservePanicStaysAcked(t *testing.T) {
	s, c := newTestServer(t, Options{})
	ctx := context.Background()
	mustCreate(t, c, "obomb", testSpec("random", 9))
	sugg, err := c.Suggest(ctx, "obomb", 2)
	if err != nil {
		t.Fatal(err)
	}
	s.session("obomb").opt = panicOptimizer{onObserve: true}

	obs := []Observation{{Trial: sugg[0].Trial, Config: sugg[0].Config, Value: 1}}
	_, err = c.Observe(ctx, "obomb", obs...)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("panicking observe: %v, want 500", err)
	}
	// The observation was durable before the optimizer saw it: the retry
	// dedups and the history holds it exactly once.
	res, err := c.Observe(ctx, "obomb", obs...)
	if err == nil {
		if res.Acked != 0 || res.Duplicates != 1 {
			t.Fatalf("retry after panic: %+v, want dedup", res)
		}
	} else if !errors.As(err, &apiErr) || apiErr.Code != "read_only" {
		t.Fatalf("retry after panic: %v", err)
	}
	trs, err := c.Trials(ctx, "obomb")
	if err != nil || len(trs) != 1 {
		t.Fatalf("trials after panic: %d err=%v, want exactly 1", len(trs), err)
	}
}

func TestRequestDeadline(t *testing.T) {
	s, c := newTestServer(t, Options{RequestTimeout: 50 * time.Millisecond})
	ctx := context.Background()
	mustCreate(t, c, "slow", testSpec("random", 3))
	// Hold the session lock so the suggest can't make progress.
	ss := s.session("slow")
	ss.lk <- struct{}{}
	defer func() { <-ss.lk }()

	_, err := c.Suggest(ctx, "slow", 1)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("deadline: %v, want 504", err)
	}
	if s.m.deadlines.Load() == 0 {
		t.Fatal("deadline counter not incremented")
	}
}

func TestStoreFailureDegradesToReadOnly(t *testing.T) {
	s, c := newTestServer(t, Options{})
	ctx := context.Background()
	mustCreate(t, c, "deg", testSpec("random", 5))
	sugg := observeSuggested(t, c, "deg", 3)

	s.failStore(errors.New("injected disk failure"))

	var apiErr *APIError
	_, err := c.Observe(ctx, "deg", Observation{Trial: 999, Config: sugg[0].Config, Value: 1})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("observe on poisoned: %v, want 503", err)
	}
	if _, err := c.CreateStudy(ctx, "deg2", testSpec("random", 6)); !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("create on poisoned: %v, want 503", err)
	}
	// Reads and suggests still serve.
	if _, err := c.Suggest(ctx, "deg", 1); err != nil {
		t.Fatalf("suggest on poisoned: %v", err)
	}
	if _, err := c.Best(ctx, "deg"); err != nil {
		t.Fatalf("best on poisoned: %v", err)
	}
	if err := c.Ready(ctx); err == nil {
		t.Fatal("readyz on poisoned: want failure")
	}
	if err := c.Healthy(ctx); err != nil {
		t.Fatalf("healthz on poisoned: %v", err)
	}
}

func TestParetoFront(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := context.Background()
	mustCreate(t, c, "pareto", testSpec("random", 11))
	sugg, err := c.Suggest(ctx, "pareto", 4)
	if err != nil {
		t.Fatal(err)
	}
	// (value, cost): trials 0 and 1 trade off; 2 and 3 are dominated.
	vals := []struct{ v, cost float64 }{{1, 10}, {2, 5}, {3, 10}, {2, 6}}
	obs := make([]Observation, 4)
	for i, tr := range sugg {
		obs[i] = Observation{Trial: tr.Trial, Config: tr.Config, Value: vals[i].v, CostSeconds: vals[i].cost}
	}
	if _, err := c.Observe(ctx, "pareto", obs...); err != nil {
		t.Fatal(err)
	}
	front, err := c.Pareto(ctx, "pareto")
	if err != nil {
		t.Fatal(err)
	}
	if len(front.Front) != 2 || front.Front[0].Trial != sugg[0].Trial || front.Front[1].Trial != sugg[1].Trial {
		t.Fatalf("front: %+v, want trials %d and %d", front.Front, sugg[0].Trial, sugg[1].Trial)
	}
	// A metric objective works too.
	if _, err := c.Pareto(ctx, "pareto", "value", "p99_ms"); err != nil {
		t.Fatalf("metric objectives: %v", err)
	}
}

// TestOrphanStudyReadOnly covers logs written by other tools: no meta
// record means the history is queryable but not tunable.
func TestOrphanStudyReadOnly(t *testing.T) {
	dir := t.TempDir()
	st, err := studystore.Open(dir, studystore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"id":0,"config":{"x":1},"value":3.5}`)
	if err := st.Append(studystore.Record{Study: "legacy", ID: 0, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, c := newTestServer(t, Options{StoreDir: dir})
	ctx := context.Background()
	var apiErr *APIError
	if _, err := c.Suggest(ctx, "legacy", 1); !errors.As(err, &apiErr) || apiErr.Code != "read_only" {
		t.Fatalf("orphan suggest: %v, want read_only", err)
	}
	best, err := c.Best(ctx, "legacy")
	if err != nil || !best.Found || best.Value != 3.5 {
		t.Fatalf("orphan best: %+v err=%v", best, err)
	}
}

func TestGridExhaustion(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := context.Background()
	spec := StudySpec{
		Optimizer: "grid",
		Space:     []ParamSpec{{Name: "mode", Kind: "categorical", Values: []string{"a", "b"}}},
	}
	mustCreate(t, c, "grid", spec)
	sugg, err := c.Suggest(ctx, "grid", 10)
	if err != nil || len(sugg) != 2 {
		t.Fatalf("grid suggest: %d err=%v, want the whole 2-point grid", len(sugg), err)
	}
	var apiErr *APIError
	if _, err := c.Suggest(ctx, "grid", 1); !errors.As(err, &apiErr) || apiErr.Code != "exhausted" {
		t.Fatalf("exhausted grid: %v, want code exhausted", err)
	}
}
