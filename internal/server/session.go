package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"autotune/internal/core"
	"autotune/internal/optimizer"
	"autotune/internal/sched"
	"autotune/internal/space"
	"autotune/internal/studystore"
	"autotune/internal/trial"
)

// session.go multiplexes one study's optimizer state behind a
// context-aware lock. Every mutation follows the WAL contract: the
// observation batch is durable in the study store before the optimizer
// sees it or the client gets an ack, so a crash at any instant loses
// nothing that was acknowledged. Optimizer calls run under sched.Guard —
// a panicking strategy degrades its own study to read-only instead of
// taking the process (and its sibling studies) down.

// Sentinel errors the handlers translate into HTTP statuses.
var (
	// errReadOnlyStudy marks a study that cannot accept suggests or
	// observes: it was recovered without a meta record, or its optimizer
	// panicked and was retired.
	errReadOnlyStudy = errors.New("server: study is read-only")
	// errExhausted mirrors optimizer.ErrExhausted at the session boundary.
	errExhausted = errors.New("server: study exhausted")
)

// storeFailure wraps an error from the study store so handlers can tell
// "the durable layer failed" (degrade the whole server to read-only)
// apart from client mistakes (400) and optimizer trouble (500).
type storeFailure struct{ err error }

func (e *storeFailure) Error() string { return "store failure: " + e.err.Error() }
func (e *storeFailure) Unwrap() error { return e.err }

// session is one study: its immutable descriptor plus the live optimizer
// and dedup state, serialized by a capacity-1 channel lock so waiters
// respect request deadlines (a sync.Mutex would block past them).
type session struct {
	study string
	meta  studyMeta
	sp    *space.Space // immutable after construction; nil for orphans

	// st is the store this study's history lives in; every append goes
	// here. Set once at create/recovery, immutable after — which is what
	// lets histories survive shard-count changes (the hash may route the
	// study to a different shard, but its log stays where it is).
	st *studystore.Store

	lk chan struct{} // capacity-1 token; lock(ctx)/unlock()

	// Guarded by lk.
	opt      optimizer.Optimizer // nil when read-only
	degraded string              // why opt is nil (error text for clients)
	seen     map[int64]struct{}  // acked trial IDs: the dedup set
	records  []trial.TrialRecord // observed trials in ack order
	nextID   int64               // next trial ID to hand out

	observed atomic.Int64 // len(records) mirror for lock-free listing
	readOnly atomic.Bool  // opt == nil mirror for lock-free listing
}

// lock acquires the session, giving up when ctx expires.
func (ss *session) lock(ctx context.Context) error {
	select {
	case ss.lk <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("study %q busy: %w", ss.study, ctx.Err())
	}
}

func (ss *session) unlock() { <-ss.lk }

// newSession builds a live session from a validated meta descriptor.
func newSession(meta studyMeta) (*session, error) {
	sp, err := buildSpace(meta.Space)
	if err != nil {
		return nil, err
	}
	opt, err := core.NewOptimizer(meta.Optimizer, sp, rand.New(rand.NewSource(meta.Seed)))
	if err != nil {
		return nil, err
	}
	return &session{
		study: meta.Study,
		meta:  meta,
		sp:    sp,
		lk:    make(chan struct{}, 1),
		opt:   opt,
		seen:  make(map[int64]struct{}),
	}, nil
}

// orphanSession wraps a study that exists in the store but has no usable
// meta record (e.g. a log produced by another tool). Its history stays
// queryable; suggest and observe report read-only.
func orphanSession(study, why string, recs []trial.TrialRecord) *session {
	ss := &session{
		study:    study,
		meta:     studyMeta{Study: study},
		lk:       make(chan struct{}, 1),
		degraded: why,
		seen:     make(map[int64]struct{}),
		records:  recs,
	}
	for _, r := range recs {
		ss.seen[int64(r.ID)] = struct{}{}
		if int64(r.ID) >= ss.nextID {
			ss.nextID = int64(r.ID) + 1
		}
	}
	ss.observed.Store(int64(len(recs)))
	ss.readOnly.Store(true)
	return ss
}

// recoverSession rebuilds a session from its durable records: decode the
// meta descriptor, re-seed a fresh optimizer, and replay observations in
// ID order. The resumed suggest stream is a pure function of (seed,
// replayed history), so two recoveries of the same log are bitwise
// identical. Records that fail to decode or a strategy that panics on
// replay degrade the study to read-only rather than failing the boot.
func recoverSession(study string, recs []studystore.Record) *session {
	var meta *studyMeta
	var hist []trial.TrialRecord
	for _, r := range recs {
		if r.ID == metaID {
			var m studyMeta
			if err := json.Unmarshal(r.Payload, &m); err == nil && m.Meta >= 1 {
				meta = &m
			}
			continue
		}
		var tr trial.TrialRecord
		if err := json.Unmarshal(r.Payload, &tr); err != nil {
			return orphanSession(study, fmt.Sprintf("record %d undecodable: %v", r.ID, err), hist)
		}
		tr.ID = int(r.ID) // the store key is authoritative
		hist = append(hist, tr)
	}
	if meta == nil {
		return orphanSession(study, "no meta record (log written by another tool?)", hist)
	}
	ss, err := newSession(*meta)
	if err != nil {
		return orphanSession(study, fmt.Sprintf("meta rejected: %v", err), hist)
	}
	for _, tr := range hist {
		cfg, err := normalizeConfig(ss.sp, tr.Config)
		if err != nil {
			ss.retire(fmt.Sprintf("replay trial %d: %v", tr.ID, err))
			break
		}
		tr.Config = cfg
		if gerr := sched.Guard(func() error { return ss.opt.Observe(cfg, tr.Value) }); gerr != nil {
			ss.retire(fmt.Sprintf("replay trial %d: %v", tr.ID, gerr))
			break
		}
	}
	for _, tr := range hist {
		ss.seen[int64(tr.ID)] = struct{}{}
		if int64(tr.ID) >= ss.nextID {
			ss.nextID = int64(tr.ID) + 1
		}
	}
	ss.records = hist
	ss.observed.Store(int64(len(hist)))
	return ss
}

// retire drops the optimizer and leaves the study read-only. Callers
// hold lk (or, during recovery, exclusive ownership).
func (ss *session) retire(why string) {
	ss.opt = nil
	ss.degraded = why
	ss.readOnly.Store(true)
}

// writable reports errReadOnlyStudy with the degrade reason attached.
func (ss *session) writable() error {
	if ss.opt == nil {
		return fmt.Errorf("%w: %s", errReadOnlyStudy, ss.degraded)
	}
	return nil
}

// suggest proposes up to n configurations and assigns provisional trial
// IDs. IDs become durable only when observed; after a crash, unobserved
// IDs are reassigned (observes carry the config, so acks never depend on
// server-side suggest state).
func (ss *session) suggest(ctx context.Context, n int) ([]SuggestedTrial, bool, error) {
	if err := ss.lock(ctx); err != nil {
		return nil, false, err
	}
	defer ss.unlock()
	if err := ss.writable(); err != nil {
		return nil, false, err
	}
	var cfgs []space.Config
	var serr error
	gerr := sched.Guard(func() error {
		if bs, ok := ss.opt.(optimizer.BatchSuggester); ok && n > 1 {
			cfgs, serr = bs.SuggestN(n)
			return nil
		}
		for i := 0; i < n; i++ {
			cfg, err := ss.opt.Suggest()
			if err != nil {
				serr = err
				return nil
			}
			cfgs = append(cfgs, cfg)
		}
		return nil
	})
	if gerr != nil {
		ss.retire(fmt.Sprintf("suggest panicked: %v", firstLine(gerr)))
		return nil, false, gerr
	}
	exhausted := errors.Is(serr, optimizer.ErrExhausted)
	if serr != nil && !exhausted {
		return nil, false, serr
	}
	if len(cfgs) == 0 {
		return nil, true, errExhausted
	}
	out := make([]SuggestedTrial, len(cfgs))
	for i, cfg := range cfgs {
		out[i] = SuggestedTrial{Trial: ss.nextID, Config: cfg}
		ss.nextID++
	}
	return out, exhausted, nil
}

// observe applies a batch exactly once: new (study, trial) pairs are made
// durable under one fsync barrier, then fed to the optimizer, then acked.
// Pairs already acked — by an earlier request or earlier in this batch —
// count as duplicates and change nothing, which is what makes client
// retries safe. A store failure is returned before any state changes; an
// optimizer panic after the barrier retires the study but the batch stays
// acked (it is durable, and replay will surface the same panic).
func (ss *session) observe(ctx context.Context, obs []Observation) (acked, dups int, err error) {
	if err := ss.lock(ctx); err != nil {
		return 0, 0, err
	}
	defer ss.unlock()
	if err := ss.writable(); err != nil {
		return 0, 0, err
	}

	type pending struct {
		tr  trial.TrialRecord
		cfg space.Config
	}
	var fresh []pending
	var recs []studystore.Record
	batchSeen := make(map[int64]struct{}, len(obs))
	for _, o := range obs {
		if o.Trial < 0 {
			return 0, 0, fmt.Errorf("trial ID %d is negative", o.Trial)
		}
		if _, dup := ss.seen[o.Trial]; dup {
			dups++
			continue
		}
		if _, dup := batchSeen[o.Trial]; dup {
			dups++
			continue
		}
		cfg, err := normalizeConfig(ss.sp, o.Config)
		if err != nil {
			return 0, 0, fmt.Errorf("trial %d: %w", o.Trial, err)
		}
		if math.IsNaN(o.Value) || math.IsInf(o.Value, 0) {
			return 0, 0, fmt.Errorf("trial %d: value must be finite", o.Trial)
		}
		batchSeen[o.Trial] = struct{}{}
		tr := trial.TrialRecord{
			ID:          int(o.Trial),
			Config:      cfg,
			Value:       o.Value,
			CostSeconds: o.CostSeconds,
			Metrics:     o.Metrics,
		}
		payload, err := json.Marshal(tr)
		if err != nil {
			return 0, 0, fmt.Errorf("trial %d: %w", o.Trial, err)
		}
		fresh = append(fresh, pending{tr: tr, cfg: cfg})
		recs = append(recs, studystore.Record{Study: ss.study, ID: o.Trial, Payload: payload})
	}
	if len(fresh) == 0 {
		return 0, dups, nil
	}

	// Durability barrier: nothing below runs unless the whole batch is
	// fsynced. On failure the store is poisoned and no pair was acked.
	if err := ss.st.AppendBatch(recs); err != nil {
		return 0, dups, &storeFailure{err}
	}

	var degrade error
	for _, p := range fresh {
		if degrade == nil {
			p := p
			if gerr := sched.Guard(func() error { return ss.opt.Observe(p.cfg, p.tr.Value) }); gerr != nil {
				degrade = gerr
				ss.retire(fmt.Sprintf("observe panicked: %v", firstLine(gerr)))
			}
		}
		// Durable regardless of the optimizer's opinion: ack and dedup.
		id := int64(p.tr.ID)
		ss.seen[id] = struct{}{}
		ss.records = append(ss.records, p.tr)
		if id >= ss.nextID {
			ss.nextID = id + 1
		}
		acked++
	}
	ss.observed.Store(int64(len(ss.records)))
	return acked, dups, degrade
}

// best returns the incumbent from the durable history (crashed trials
// excluded), so it also works for read-only studies.
func (ss *session) best(ctx context.Context) (BestResult, error) {
	if err := ss.lock(ctx); err != nil {
		return BestResult{}, err
	}
	defer ss.unlock()
	res := BestResult{Study: ss.study, Observed: len(ss.records)}
	for _, tr := range ss.records {
		if tr.Crashed {
			continue
		}
		if !res.Found || tr.Value < res.Value {
			res.Found = true
			res.Trial = int64(tr.ID)
			res.Value = tr.Value
			res.Config = tr.Config
		}
	}
	return res, nil
}

// pareto computes the non-dominated front over the named objectives, all
// minimized. "value" and "cost_seconds" read the record fields; any other
// name reads Metrics. Trials missing an objective are skipped.
func (ss *session) pareto(ctx context.Context, objectives []string) (ParetoResult, error) {
	if err := ss.lock(ctx); err != nil {
		return ParetoResult{}, err
	}
	defer ss.unlock()
	res := ParetoResult{Study: ss.study, Objectives: objectives}
	var pts []ParetoPoint
	for _, tr := range ss.records {
		if tr.Crashed {
			continue
		}
		vec := make([]float64, len(objectives))
		ok := true
		for i, name := range objectives {
			switch name {
			case "value":
				vec[i] = tr.Value
			case "cost", "cost_seconds":
				vec[i] = tr.CostSeconds
			default:
				v, has := tr.Metrics[name]
				if !has {
					ok = false
				}
				vec[i] = v
			}
		}
		if ok {
			pts = append(pts, ParetoPoint{Trial: int64(tr.ID), Config: tr.Config, Objectives: vec})
		}
	}
	for _, p := range pts {
		if !dominatedBy(p, pts) {
			res.Front = append(res.Front, p)
		}
	}
	sort.Slice(res.Front, func(i, j int) bool { return res.Front[i].Trial < res.Front[j].Trial })
	return res, nil
}

// dominatedBy reports whether q beats p on every objective and strictly
// on at least one, for any q in pts.
func dominatedBy(p ParetoPoint, pts []ParetoPoint) bool {
	for _, q := range pts {
		if q.Trial == p.Trial {
			continue
		}
		allLeq, oneLess := true, false
		for i := range p.Objectives {
			if q.Objectives[i] > p.Objectives[i] {
				allLeq = false
				break
			}
			if q.Objectives[i] < p.Objectives[i] {
				oneLess = true
			}
		}
		if allLeq && oneLess {
			return true
		}
	}
	return false
}

// trials returns a copy of the observed history in ack order.
func (ss *session) trials(ctx context.Context) ([]trial.TrialRecord, error) {
	if err := ss.lock(ctx); err != nil {
		return nil, err
	}
	defer ss.unlock()
	return append([]trial.TrialRecord(nil), ss.records...), nil
}

// info is the lock-free listing row (trial count and read-only flag are
// atomics; the rest of the descriptor is immutable).
func (ss *session) info() StudyInfo {
	return StudyInfo{
		Study:     ss.study,
		Optimizer: ss.meta.Optimizer,
		Trials:    int(ss.observed.Load()),
		ReadOnly:  ss.readOnly.Load(),
	}
}

// firstLine trims a guard error (panic value + full stack) to its first
// line for client-facing degrade reasons; the full text goes to the log.
func firstLine(err error) string {
	s := err.Error()
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
