package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"autotune/internal/trial"
)

// client.go is the typed Go client for the daemon. It is deliberately
// thin — every method is one request — and surfaces the service's error
// envelope as *APIError so callers can branch on Code ("overloaded",
// "read_only", ...) and honor Retry-After on shed load.

// APIError is a non-2xx response from the service.
type APIError struct {
	Status     int    // HTTP status
	Code       string // machine-readable error code from the envelope
	Message    string // human-readable detail
	RetryAfter int    // seconds from the Retry-After header, 0 if absent
}

func (e *APIError) Error() string {
	return fmt.Sprintf("autotuned: %d %s: %s", e.Status, e.Code, e.Message)
}

// IsRetryable reports whether backing off and retrying the identical
// request is safe and useful: shed load and drain windows are transient,
// and observes are idempotent on the server side.
func (e *APIError) IsRetryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Code == "draining"
}

// Client talks to one autotuned base URL.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for base (e.g. "http://127.0.0.1:8153").
// The transport keeps enough idle connections to drive a loaded daemon
// from one process.
func NewClient(base string) *Client {
	tr := &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 256}
	return &Client{base: base, hc: &http.Client{Transport: tr}}
}

// NewClientHTTP returns a client using the given http.Client (httptest
// servers, custom timeouts, instrumented transports).
func NewClientHTTP(base string, hc *http.Client) *Client {
	return &Client{base: base, hc: hc}
}

// do runs one JSON request; in == nil sends no body, out == nil discards
// the response.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("autotuned: encode %s: %w", path, err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("autotuned: %s: %w", path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("autotuned: %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("autotuned: read %s: %w", path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		apiErr := &APIError{Status: resp.StatusCode, Message: string(data)}
		var env errorResponse
		if json.Unmarshal(data, &env) == nil && env.Error != "" {
			apiErr.Code, apiErr.Message = env.Code, env.Error
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if n, err := strconv.Atoi(ra); err == nil {
				apiErr.RetryAfter = n
			}
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("autotuned: decode %s: %w", path, err)
	}
	return nil
}

// CreateStudy registers a study. created is false when an identical study
// already existed (creation is idempotent); a different spec under the
// same name is an APIError with code "spec_mismatch".
func (c *Client) CreateStudy(ctx context.Context, study string, spec StudySpec) (created bool, err error) {
	var resp createResponse
	err = c.do(ctx, http.MethodPost, "/v1/studies", createRequest{Study: study, StudySpec: spec}, &resp)
	return resp.Created, err
}

// Suggest asks for up to n trial configurations (n <= 0 means 1).
func (c *Client) Suggest(ctx context.Context, study string, n int) ([]SuggestedTrial, error) {
	var resp suggestResponse
	path := "/v1/studies/" + study + "/suggest"
	if err := c.do(ctx, http.MethodPost, path, suggestRequest{Count: n}, &resp); err != nil {
		return nil, err
	}
	return resp.Trials, nil
}

// ObserveResult reports how an observe batch landed.
type ObserveResult struct {
	Acked      int
	Duplicates int
}

// Observe reports measured trials. It is idempotent: resending an acked
// (study, trial) pair is counted in Duplicates and changes nothing, so
// retrying after any transport error is always safe.
func (c *Client) Observe(ctx context.Context, study string, obs ...Observation) (ObserveResult, error) {
	var resp observeResponse
	path := "/v1/studies/" + study + "/observe"
	if err := c.do(ctx, http.MethodPost, path, observeRequest{Observations: obs}, &resp); err != nil {
		return ObserveResult{}, err
	}
	return ObserveResult{Acked: resp.Acked, Duplicates: resp.Duplicates}, nil
}

// Best returns the study's incumbent.
func (c *Client) Best(ctx context.Context, study string) (BestResult, error) {
	var resp BestResult
	err := c.do(ctx, http.MethodGet, "/v1/studies/"+study+"/best", nil, &resp)
	return resp, err
}

// Pareto returns the non-dominated front over the named objectives
// (default: value and cost_seconds).
func (c *Client) Pareto(ctx context.Context, study string, objectives ...string) (ParetoResult, error) {
	path := "/v1/studies/" + study + "/pareto"
	if len(objectives) > 0 {
		path += "?objectives="
		for i, o := range objectives {
			if i > 0 {
				path += ","
			}
			path += o
		}
	}
	var resp ParetoResult
	err := c.do(ctx, http.MethodGet, path, nil, &resp)
	return resp, err
}

// Trials returns the study's durable history in ack order.
func (c *Client) Trials(ctx context.Context, study string) ([]trial.TrialRecord, error) {
	var resp trialsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/studies/"+study+"/trials", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Trials, nil
}

// Studies lists all live studies.
func (c *Client) Studies(ctx context.Context) ([]StudyInfo, error) {
	var resp listResponse
	if err := c.do(ctx, http.MethodGet, "/v1/studies", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Studies, nil
}

// Ready probes /readyz; nil means the daemon is admitting traffic.
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil)
}

// Healthy probes /healthz; nil means the process is alive.
func (c *Client) Healthy(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}
