// Package server is the tuning-as-a-service front door: a stdlib net/http
// daemon that multiplexes thousands of concurrent studies over the
// framework's optimizers and persists every acknowledged observation
// through the crash-safe study store before responding. The contract is
// the one the paper's service framing demands:
//
//   - Exactly-once observe: an acked observation is durable (fsynced
//     before the ack) and idempotent (deduped by study and trial ID), so
//     kill -9 plus restart loses nothing and client retries are safe.
//   - Deterministic resume: a study's suggest stream is a pure function
//     of its seed and its durable history, so restarts are reproducible.
//   - Fault isolation: a panicking strategy degrades its own study to
//     read-only behind a 500; a poisoned store degrades the server to
//     read-only behind 503s; sibling studies keep serving.
//   - Bounded overload: suggests past the admission limit shed with 429 +
//     Retry-After, and /readyz flips at a high-water mark below the limit
//     while /healthz keeps reporting the process alive.
//   - Graceful drain: SIGTERM (via ListenAndServe's context) stops
//     admissions, finishes in-flight requests, seals the study log with a
//     durable terminator, and exits clean.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"autotune/internal/sched"
	"autotune/internal/studystore"
)

// Options configures a Server. The zero value serves from StoreDir with
// sensible defaults for everything else.
type Options struct {
	// StoreDir is the study-store directory (required; created if absent).
	StoreDir string
	// SegmentBytes overrides the store's segment rotation threshold.
	SegmentBytes int64
	// AdmissionLimit bounds concurrent suggest requests (default 64);
	// excess load is shed with 429 + Retry-After.
	AdmissionLimit int
	// ReadyHighWater is the suggest occupancy at which /readyz starts
	// failing, before the hard limit starts bouncing requests
	// (default 3/4 of AdmissionLimit).
	ReadyHighWater int
	// RequestTimeout is the per-request deadline derived from each
	// request's context (default 30s).
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful drain in ListenAndServe
	// (default: wait indefinitely).
	DrainTimeout time.Duration
	// MaxSuggestBatch caps `count` in one suggest call (default 512).
	MaxSuggestBatch int
	// MaxObserveBatch caps observations in one observe call (default 4096).
	MaxObserveBatch int
	// MaxStudies caps live studies (default 65536).
	MaxStudies int
	// DefaultOptimizer names the strategy used when a create omits one
	// (default "bo").
	DefaultOptimizer string
	// Log receives operational messages; nil means silent.
	Log *log.Logger
}

func (o Options) withDefaults() Options {
	if o.AdmissionLimit <= 0 {
		o.AdmissionLimit = 64
	}
	if o.ReadyHighWater <= 0 {
		o.ReadyHighWater = o.AdmissionLimit * 3 / 4
		if o.ReadyHighWater < 1 {
			o.ReadyHighWater = 1
		}
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxSuggestBatch <= 0 {
		o.MaxSuggestBatch = 512
	}
	if o.MaxObserveBatch <= 0 {
		o.MaxObserveBatch = 4096
	}
	if o.MaxStudies <= 0 {
		o.MaxStudies = 65536
	}
	if o.DefaultOptimizer == "" {
		o.DefaultOptimizer = "bo"
	}
	return o
}

// Server is the daemon. Create with New, serve with ListenAndServe (or
// mount it as an http.Handler), stop with Drain or Close.
type Server struct {
	opts  Options
	store *studystore.Store

	// drainMu tracks in-flight API requests: each holds the read side for
	// its duration; Drain takes the write side as a barrier that waits
	// for all of them. TryRLock keeps new requests from queueing behind
	// a waiting drain.
	drainMu  sync.RWMutex
	draining atomic.Bool
	poisoned atomic.Bool

	mu       sync.RWMutex // guards sessions
	sessions map[string]*session

	createMu sync.Mutex // serializes study creation against the store

	adm *admission
	m   counters
	mux *http.ServeMux

	sealOnce sync.Once
	sealErr  error

	// testGate, when set before serving, makes suggest handlers block
	// after admission until the channel closes — the hook the overload
	// test uses to saturate the queue deterministically.
	testGate chan struct{}
}

// New opens (or creates) the study store under opts.StoreDir and recovers
// every persisted study into a live session. Recovery is read-only on the
// optimizer side: each study's observations are replayed in trial-ID
// order into a freshly seeded strategy, so the daemon resumes exactly
// where the durable history says it was.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.StoreDir == "" {
		return nil, errors.New("server: Options.StoreDir is required")
	}
	st, err := studystore.Open(opts.StoreDir, studystore.Options{SegmentBytes: opts.SegmentBytes})
	if err != nil {
		return nil, fmt.Errorf("server: open store: %w", err)
	}
	s := &Server{
		opts:     opts,
		store:    st,
		sessions: make(map[string]*session),
		adm:      newAdmission(opts.AdmissionLimit, opts.ReadyHighWater),
	}
	for _, study := range st.Studies() {
		ss := recoverSession(study, st.Records(study))
		if ss.degraded != "" {
			s.logf("study %q recovered read-only: %s", study, ss.degraded)
		}
		s.sessions[study] = ss
	}
	if stats := st.Stats(); stats.TornTailBytes > 0 || stats.Quarantined > 0 {
		s.logf("store repair: %d torn-tail bytes truncated, %d ranges quarantined", stats.TornTailBytes, stats.Quarantined)
	}
	s.mux = s.routes()
	return s, nil
}

// ServeHTTP implements http.Handler: probes bypass the drain gate, API
// requests register in-flight, get a deadline derived from the request
// context, and run under a panic guard so one bad request cannot take
// down the process.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz":
		s.handleHealthz(w, r)
		return
	case "/readyz":
		s.handleReadyz(w, r)
		return
	case "/metrics":
		s.handleMetrics(w, r)
		return
	}
	if s.draining.Load() || !s.drainMu.TryRLock() {
		s.writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	defer s.drainMu.RUnlock()
	s.m.requests.Add(1)
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	if err := sched.Guard(func() error {
		s.mux.ServeHTTP(w, r.WithContext(ctx))
		return nil
	}); err != nil {
		s.m.panics.Add(1)
		s.logf("request %s %s: %v", r.Method, r.URL.Path, err)
		s.writeError(w, http.StatusInternalServerError, "panic", "internal panic recovered")
	}
}

// session returns the live session for a study, or nil.
func (s *Server) session(study string) *session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[study]
}

// Drain stops admitting API requests, waits for in-flight ones to finish,
// then seals the study store so the log ends on a durable terminator.
// It is idempotent; the seal happens once and later calls return the same
// result. If ctx expires the drain gate stays shut but the store is left
// unsealed (every acked observation is already durable regardless).
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	//autolint:ignore nakedgo drain barrier: Lock/Unlock on a held-out RWMutex cannot panic, and the goroutine exits once in-flight requests finish
	go func() {
		// The critical section is empty on purpose: Lock is purely a
		// barrier that returns once every in-flight reader is gone.
		s.drainMu.Lock()
		s.drainMu.Unlock()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
	s.sealOnce.Do(func() { s.sealErr = s.store.Seal() })
	return s.sealErr
}

// Close drains with no deadline and releases the store: the teardown for
// tests and defers. Servers that need a bounded drain call Drain.
func (s *Server) Close() error {
	//autolint:ignore ctxpass Close is the one legitimate server-lifetime root: final teardown has no request context to inherit, and Drain is the ctx-aware form
	return s.Drain(context.Background())
}

// ListenAndServe serves on addr until ctx is cancelled (the caller wires
// SIGTERM to that), then drains gracefully: stop admitting, let in-flight
// requests and connections finish (bounded by Options.DrainTimeout), seal
// the store, and return nil on a clean exit. If ready is non-nil it is
// called once with the bound address, after the listener exists.
func (s *Server) ListenAndServe(ctx context.Context, addr string, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	if ready != nil {
		ready(ln.Addr())
	}
	hs := &http.Server{Handler: s, ErrorLog: s.opts.Log}
	errc := make(chan error, 1)
	//autolint:ignore nakedgo http.Server recovers per-connection panics itself; this goroutine only forwards Serve's exit error into the buffered channel
	go func() { errc <- hs.Serve(ln) }()

	var serveErr error
	select {
	case serveErr = <-errc:
		// The listener died under us; drain anyway so state is sealed.
	case <-ctx.Done():
	}

	dctx := context.WithoutCancel(ctx)
	cancel := context.CancelFunc(func() {})
	if s.opts.DrainTimeout > 0 {
		dctx, cancel = context.WithTimeout(dctx, s.opts.DrainTimeout)
	}
	defer cancel()
	s.draining.Store(true) // shut the gate before Shutdown waits on conns
	if err := hs.Shutdown(dctx); err != nil && serveErr == nil {
		serveErr = fmt.Errorf("server: shutdown: %w", err)
	}
	if err := s.Drain(dctx); err != nil && serveErr == nil {
		serveErr = err
	}
	if errors.Is(serveErr, http.ErrServerClosed) {
		serveErr = nil
	}
	return serveErr
}

// StoreStats exposes the underlying store's counters for operational
// tooling (the /metrics page and the load harness).
func (s *Server) StoreStats() studystore.Stats { return s.store.Stats() }

// failStore records that the durable layer failed: the server degrades to
// read-only (suggest/best/pareto keep working, writes get 503s) instead
// of crashing, because every previously acked observation is still safe.
func (s *Server) failStore(err error) {
	if s.poisoned.CompareAndSwap(false, true) {
		s.logf("store failed, degrading to read-only: %v", err)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Log != nil {
		s.opts.Log.Printf(format, args...)
	}
}
