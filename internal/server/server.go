// Package server is the tuning-as-a-service front door: a stdlib net/http
// daemon that multiplexes thousands of concurrent studies over the
// framework's optimizers and persists every acknowledged observation
// through the crash-safe study store before responding. The contract is
// the one the paper's service framing demands:
//
//   - Exactly-once observe: an acked observation is durable (fsynced
//     before the ack) and idempotent (deduped by study and trial ID), so
//     kill -9 plus restart loses nothing and client retries are safe.
//   - Deterministic resume: a study's suggest stream is a pure function
//     of its seed and its durable history, so restarts are reproducible.
//   - Fault isolation: a panicking strategy degrades its own study to
//     read-only behind a 500; a poisoned store degrades the server to
//     read-only behind 503s; sibling studies keep serving.
//   - Bounded overload: suggests past the admission limit shed with 429 +
//     Retry-After, and /readyz flips at a high-water mark below the limit
//     while /healthz keeps reporting the process alive.
//   - Graceful drain: SIGTERM (via ListenAndServe's context) stops
//     admissions, finishes in-flight requests, seals the study log with a
//     durable terminator, and exits clean.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autotune/internal/sched"
	"autotune/internal/studystore"
)

// Options configures a Server. The zero value serves from StoreDir with
// sensible defaults for everything else.
type Options struct {
	// StoreDir is the study-store directory (required; created if absent).
	StoreDir string
	// SegmentBytes overrides the store's segment rotation threshold.
	SegmentBytes int64
	// AdmissionLimit bounds concurrent suggest requests (default 64);
	// excess load is shed with 429 + Retry-After.
	AdmissionLimit int
	// ReadyHighWater is the suggest occupancy at which /readyz starts
	// failing, before the hard limit starts bouncing requests
	// (default 3/4 of AdmissionLimit).
	ReadyHighWater int
	// RequestTimeout is the per-request deadline derived from each
	// request's context (default 30s).
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful drain in ListenAndServe
	// (default: wait indefinitely).
	DrainTimeout time.Duration
	// MaxSuggestBatch caps `count` in one suggest call (default 512).
	MaxSuggestBatch int
	// MaxObserveBatch caps observations in one observe call (default 4096).
	MaxObserveBatch int
	// MaxStudies caps live studies (default 65536).
	MaxStudies int
	// DefaultOptimizer names the strategy used when a create omits one
	// (default "bo").
	DefaultOptimizer string
	// Shards partitions studies across independently locked shards
	// (default GOMAXPROCS): suggest/observe for studies on different
	// shards never contend on a shared mutex. Study → shard by name hash.
	Shards int
	// ShardStores gives every shard its own store directory
	// (StoreDir/shard-NNN) so shards do not even share a commit queue —
	// useful when the store directories live on independent devices. The
	// root StoreDir keeps serving any studies it already holds. Default:
	// one store shared by all shards (group commit coalesces their
	// writes into shared fsyncs).
	ShardStores bool
	// DisableGroupCommit forces every observe batch to pay its own store
	// fsync (the pre-group-commit write path). It exists as the
	// benchmark baseline; leave it off in production.
	DisableGroupCommit bool
	// Log receives operational messages; nil means silent.
	Log *log.Logger
}

func (o Options) withDefaults() Options {
	if o.AdmissionLimit <= 0 {
		o.AdmissionLimit = 64
	}
	if o.ReadyHighWater <= 0 {
		o.ReadyHighWater = o.AdmissionLimit * 3 / 4
		if o.ReadyHighWater < 1 {
			o.ReadyHighWater = 1
		}
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxSuggestBatch <= 0 {
		o.MaxSuggestBatch = 512
	}
	if o.MaxObserveBatch <= 0 {
		o.MaxObserveBatch = 4096
	}
	if o.MaxStudies <= 0 {
		o.MaxStudies = 65536
	}
	if o.DefaultOptimizer == "" {
		o.DefaultOptimizer = "bo"
	}
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	return o
}

// Server is the daemon. Create with New, serve with ListenAndServe (or
// mount it as an http.Handler), stop with Drain or Close.
//
// Studies are partitioned across shards by name hash: each shard owns
// its slice of the session map behind its own locks and tracks its own
// in-flight requests, so requests for studies on different shards never
// contend on a shared mutex. Drain is a barrier across every shard.
type Server struct {
	opts Options

	shards []*shard
	// stores are the distinct open study stores: the root StoreDir store
	// first, then any per-shard stores when Options.ShardStores is set.
	stores []*studystore.Store

	draining atomic.Bool
	poisoned atomic.Bool
	nstudies atomic.Int64 // live sessions across all shards

	adm *admission
	m   counters
	mux *http.ServeMux

	sealOnce sync.Once
	sealErr  error

	// testGate, when set before serving, makes suggest handlers block
	// after admission until the channel closes — the hook the overload
	// test uses to saturate the queue deterministically.
	testGate chan struct{}
}

// shard is one partition of the study space: its own session map, its
// own creation serialization, its own in-flight tracking, and the store
// its new studies are created in.
type shard struct {
	// store is the create-target for new studies on this shard; recovered
	// sessions keep appending to whichever store their history lives in.
	store *studystore.Store

	// drainMu tracks this shard's in-flight API requests: each holds the
	// read side for its duration; Drain takes the write side of every
	// shard as a barrier. TryRLock keeps new requests from queueing
	// behind a waiting drain.
	drainMu sync.RWMutex

	mu       sync.RWMutex // guards sessions
	sessions map[string]*session

	createMu sync.Mutex // serializes study creation against the store
}

// session returns the shard's live session for a study, or nil.
func (sh *shard) session(study string) *session {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.sessions[study]
}

// shardOf routes a study name to its shard: an FNV-1a hash, stable
// across restarts for a fixed shard count. (Histories survive a changed
// count regardless — sessions append to the store they were recovered
// from, wherever the hash now routes their requests.)
func (s *Server) shardOf(study string) *shard {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(study); i++ {
		h ^= uint32(study[i])
		h *= prime32
	}
	return s.shards[h%uint32(len(s.shards))]
}

// shardDirName renders the store subdirectory for shard i under
// Options.ShardStores.
func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// New opens (or creates) the study stores under opts.StoreDir and
// recovers every persisted study into a live session on its hash shard.
// Recovery is read-only on the optimizer side: each study's observations
// are replayed in trial-ID order into a freshly seeded strategy, so the
// daemon resumes exactly where the durable history says it was. With
// ShardStores, every store directory found on disk is opened — including
// shards beyond the current count — so histories survive shard-count
// changes; a recovered session keeps appending to the store it came from.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.StoreDir == "" {
		return nil, errors.New("server: Options.StoreDir is required")
	}
	stOpts := studystore.Options{
		SegmentBytes:       opts.SegmentBytes,
		DisableGroupCommit: opts.DisableGroupCommit,
	}
	root, err := studystore.Open(opts.StoreDir, stOpts)
	if err != nil {
		return nil, fmt.Errorf("server: open store: %w", err)
	}
	s := &Server{
		opts:   opts,
		stores: []*studystore.Store{root},
		adm:    newAdmission(opts.AdmissionLimit, opts.ReadyHighWater),
	}
	closeAll := func() {
		for _, st := range s.stores {
			//autolint:ignore droppederr already failing; nothing was written through these handles
			st.Close()
		}
	}
	s.shards = make([]*shard, opts.Shards)
	for i := range s.shards {
		s.shards[i] = &shard{store: root, sessions: make(map[string]*session)}
	}
	if opts.ShardStores {
		// Open the store for every shard index, plus any shard directory
		// a previous (larger) configuration left behind.
		want := map[string]bool{}
		for i := range s.shards {
			want[shardDirName(i)] = true
		}
		if entries, err := os.ReadDir(opts.StoreDir); err == nil {
			for _, e := range entries {
				if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
					want[e.Name()] = true
				}
			}
		}
		names := make([]string, 0, len(want))
		for name := range want {
			names = append(names, name)
		}
		sort.Strings(names)
		byName := map[string]*studystore.Store{}
		for _, name := range names {
			st, err := studystore.Open(filepath.Join(opts.StoreDir, name), stOpts)
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("server: open store %s: %w", name, err)
			}
			s.stores = append(s.stores, st)
			byName[name] = st
		}
		for i := range s.shards {
			s.shards[i].store = byName[shardDirName(i)]
		}
	}
	for _, st := range s.stores {
		for _, study := range st.Studies() {
			sh := s.shardOf(study)
			if _, exists := sh.sessions[study]; exists {
				s.logf("study %q exists in multiple stores; first recovery wins", study)
				continue
			}
			ss := recoverSession(study, st.Records(study))
			ss.st = st
			if ss.degraded != "" {
				s.logf("study %q recovered read-only: %s", study, ss.degraded)
			}
			sh.sessions[study] = ss
			s.nstudies.Add(1)
		}
		if stats := st.Stats(); stats.TornTailBytes > 0 || stats.Quarantined > 0 {
			s.logf("store repair: %d torn-tail bytes truncated, %d ranges quarantined", stats.TornTailBytes, stats.Quarantined)
		}
	}
	s.mux = s.routes()
	return s, nil
}

// ServeHTTP implements http.Handler: probes bypass the drain gate, API
// requests get a deadline derived from the request context and run under
// a panic guard so one bad request cannot take down the process. Study
// handlers additionally register in-flight on their study's shard (see
// enter), which is what Drain's barrier waits on.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz":
		s.handleHealthz(w, r)
		return
	case "/readyz":
		s.handleReadyz(w, r)
		return
	case "/metrics":
		s.handleMetrics(w, r)
		return
	}
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	s.m.requests.Add(1)
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	if err := sched.Guard(func() error {
		s.mux.ServeHTTP(w, r.WithContext(ctx))
		return nil
	}); err != nil {
		s.m.panics.Add(1)
		s.logf("request %s %s: %v", r.Method, r.URL.Path, err)
		s.writeError(w, http.StatusInternalServerError, "panic", "internal panic recovered")
	}
}

// enter registers a request in-flight on the study's shard by taking the
// read side of the shard's drain lock; the caller must sh.drainMu.RUnlock
// when done. A nil return means the server is draining and a 503 was
// already written — TryRLock keeps late requests from queueing behind the
// drain barrier's pending write lock.
func (s *Server) enter(w http.ResponseWriter, study string) *shard {
	sh := s.shardOf(study)
	if s.draining.Load() || !sh.drainMu.TryRLock() {
		s.writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return nil
	}
	return sh
}

// session returns the live session for a study, or nil.
func (s *Server) session(study string) *session {
	sh := s.shardOf(study)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.sessions[study]
}

// Drain stops admitting API requests, waits for in-flight ones to finish
// on every shard, then seals each study store so the logs end on durable
// terminators. It is idempotent; the seal happens once and later calls
// return the same result. If ctx expires the drain gate stays shut but
// the stores are left unsealed (every acked observation is already
// durable regardless).
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	//autolint:ignore goleak the loop is bounded by the fixed shard count and each Lock returns once that shard's readers finish; request deadlines bound the readers, so the goroutine cannot outlive the drain
	go func() { //autolint:ignore nakedgo drain barrier: Lock/Unlock on held-out RWMutexes cannot panic, and the goroutine exits once in-flight requests finish
		// The critical sections are empty on purpose: each Lock is purely
		// a barrier that returns once that shard's in-flight readers are
		// gone. Taken one shard at a time — with draining already set no
		// new reader gets in, so the walk is a full barrier, not a
		// deadlock-prone all-shards hold.
		for _, sh := range s.shards {
			sh.drainMu.Lock()
			//lint:ignore SA2001 empty critical section is the barrier
			sh.drainMu.Unlock()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
	s.sealOnce.Do(func() {
		var errs []error
		for _, st := range s.stores {
			if err := st.Seal(); err != nil {
				errs = append(errs, err)
			}
		}
		s.sealErr = errors.Join(errs...)
	})
	return s.sealErr
}

// Close drains with no deadline and releases the stores: the teardown
// for tests and defers. Servers that need a bounded drain call Drain.
func (s *Server) Close() error {
	//autolint:ignore ctxpass Close is the one legitimate server-lifetime root: final teardown has no request context to inherit, and Drain is the ctx-aware form
	return s.Drain(context.Background())
}

// crashClose releases every store handle without draining or sealing —
// the test hook that simulates kill -9 at the store layer.
func (s *Server) crashClose() error {
	var errs []error
	for _, st := range s.stores {
		if err := st.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// ListenAndServe serves on addr until ctx is cancelled (the caller wires
// SIGTERM to that), then drains gracefully: stop admitting, let in-flight
// requests and connections finish (bounded by Options.DrainTimeout), seal
// the store, and return nil on a clean exit. If ready is non-nil it is
// called once with the bound address, after the listener exists.
func (s *Server) ListenAndServe(ctx context.Context, addr string, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	if ready != nil {
		ready(ln.Addr())
	}
	hs := &http.Server{Handler: s, ErrorLog: s.opts.Log}
	errc := make(chan error, 1)
	//autolint:ignore nakedgo http.Server recovers per-connection panics itself; this goroutine only forwards Serve's exit error into the buffered channel
	go func() { errc <- hs.Serve(ln) }()

	var serveErr error
	select {
	case serveErr = <-errc:
		// The listener died under us; drain anyway so state is sealed.
	case <-ctx.Done():
	}

	dctx := context.WithoutCancel(ctx)
	cancel := context.CancelFunc(func() {})
	if s.opts.DrainTimeout > 0 {
		dctx, cancel = context.WithTimeout(dctx, s.opts.DrainTimeout)
	}
	defer cancel()
	s.draining.Store(true) // shut the gate before Shutdown waits on conns
	if err := hs.Shutdown(dctx); err != nil && serveErr == nil {
		serveErr = fmt.Errorf("server: shutdown: %w", err)
	}
	if err := s.Drain(dctx); err != nil && serveErr == nil {
		serveErr = err
	}
	if errors.Is(serveErr, http.ErrServerClosed) {
		serveErr = nil
	}
	return serveErr
}

// StoreStats exposes the underlying stores' counters, summed, for
// operational tooling (the /metrics page and the load harness). Max-type
// fields take the max across stores; Poisoned is true if any store is.
func (s *Server) StoreStats() studystore.Stats {
	var agg studystore.Stats
	for i, st := range s.stores {
		stats := st.Stats()
		if i == 0 {
			agg = stats
			continue
		}
		agg.Records += stats.Records
		agg.Studies += stats.Studies
		agg.Segments += stats.Segments
		agg.Appended += stats.Appended
		agg.Rotations += stats.Rotations
		agg.Compactions += stats.Compactions
		agg.TornTailBytes += stats.TornTailBytes
		agg.Quarantined += stats.Quarantined
		agg.Fsyncs += stats.Fsyncs
		agg.Groups += stats.Groups
		agg.GroupBatches += stats.GroupBatches
		if stats.MaxGroup > agg.MaxGroup {
			agg.MaxGroup = stats.MaxGroup
		}
		agg.AppendedBytes += stats.AppendedBytes
		agg.Poisoned = agg.Poisoned || stats.Poisoned
		if stats.ActiveSeq > agg.ActiveSeq {
			agg.ActiveSeq = stats.ActiveSeq
		}
		if stats.SnapshotSeq > agg.SnapshotSeq {
			agg.SnapshotSeq = stats.SnapshotSeq
		}
	}
	return agg
}

// failStore records that the durable layer failed: the server degrades to
// read-only (suggest/best/pareto keep working, writes get 503s) instead
// of crashing, because every previously acked observation is still safe.
func (s *Server) failStore(err error) {
	if s.poisoned.CompareAndSwap(false, true) {
		s.logf("store failed, degrading to read-only: %v", err)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Log != nil {
		s.opts.Log.Printf(format, args...)
	}
}
