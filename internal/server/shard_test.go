package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// shard_test.go covers the study partitioning added for the group-commit
// PR: hash routing, per-shard stores on disk, histories surviving a
// changed shard count, drain as a cross-shard barrier, and creates
// racing across shards.

// TestShardRoutingStable pins that shardOf is a pure function of the
// study name for a fixed shard count, and that every session lands on
// the shard the hash names.
func TestShardRoutingStable(t *testing.T) {
	s, c := newTestServer(t, Options{Shards: 4})
	ctx := context.Background()
	for i := 0; i < 16; i++ {
		study := fmt.Sprintf("route-%02d", i)
		mustCreate(t, c, study, testSpec("random", int64(i)))
		if _, err := c.Suggest(ctx, study, 1); err != nil {
			t.Fatalf("suggest %s: %v", study, err)
		}
		sh := s.shardOf(study)
		if sh != s.shardOf(study) {
			t.Fatalf("shardOf(%q) is not stable", study)
		}
		if sh.session(study) == nil {
			t.Fatalf("session %q not on its hash shard", study)
		}
	}
	spread := map[*shard]int{}
	for i := 0; i < 16; i++ {
		spread[s.shardOf(fmt.Sprintf("route-%02d", i))]++
	}
	if len(spread) < 2 {
		t.Fatalf("16 studies all hashed to one of 4 shards")
	}
}

// TestShardStoresOnDisk pins the ShardStores layout: every shard gets
// its own store directory and creates land in the creating shard's
// store, not the root.
func TestShardStoresOnDisk(t *testing.T) {
	dir := t.TempDir()
	s, c := newTestServer(t, Options{StoreDir: dir, Shards: 3, ShardStores: true})
	for i := 0; i < 9; i++ {
		study := fmt.Sprintf("disk-%02d", i)
		mustCreate(t, c, study, testSpec("random", int64(i)))
		observeSuggested(t, c, study, 2)
	}
	for i := 0; i < 3; i++ {
		if _, err := os.Stat(filepath.Join(dir, shardDirName(i))); err != nil {
			t.Fatalf("shard dir %d missing: %v", i, err)
		}
	}
	// The root store exists but holds no studies; the shard stores hold
	// all of them.
	if n := s.stores[0].Stats().Studies; n != 0 {
		t.Fatalf("root store has %d studies, want 0", n)
	}
	agg := s.StoreStats()
	if agg.Studies != 9 {
		t.Fatalf("aggregated stats report %d studies, want 9", agg.Studies)
	}
	if len(s.stores) != 4 {
		t.Fatalf("%d open stores, want 4 (root + 3 shards)", len(s.stores))
	}
}

// TestShardCountChangeKeepsHistories restarts a ShardStores deployment
// with a smaller shard count: every study must come back with its full
// history and stay writable, appending to the store its log lives in
// even though the hash now routes its requests elsewhere.
func TestShardCountChangeKeepsHistories(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s1, err := New(Options{StoreDir: dir, Shards: 4, ShardStores: true})
	if err != nil {
		t.Fatal(err)
	}
	h1 := httptest.NewServer(s1)
	c1 := NewClientHTTP(h1.URL, h1.Client())
	for i := 0; i < 8; i++ {
		study := fmt.Sprintf("resize-%02d", i)
		mustCreate(t, c1, study, testSpec("random", int64(i)))
		observeSuggested(t, c1, study, 3)
	}
	h1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Options{StoreDir: dir, Shards: 2, ShardStores: true})
	if err != nil {
		t.Fatal(err)
	}
	h2 := httptest.NewServer(s2)
	defer h2.Close()
	defer func() {
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	// All four original shard stores reopen even though only two shards
	// serve now.
	if len(s2.stores) != 5 {
		t.Fatalf("%d open stores after shrink, want 5 (root + 4 on disk)", len(s2.stores))
	}
	c2 := NewClientHTTP(h2.URL, h2.Client())
	for i := 0; i < 8; i++ {
		study := fmt.Sprintf("resize-%02d", i)
		trs, err := c2.Trials(ctx, study)
		if err != nil {
			t.Fatalf("trials %s: %v", study, err)
		}
		if len(trs) != 3 {
			t.Fatalf("%s recovered %d trials, want 3", study, len(trs))
		}
		// Still writable: observe one more and confirm it sticks.
		observeSuggested(t, c2, study, 1)
	}
	if got := s2.StoreStats().Studies; got != 8 {
		t.Fatalf("aggregated stats report %d studies, want 8", got)
	}
}

// TestDrainBarrierSealsEveryShardStore drains a sharded deployment and
// checks every store — root and per-shard — was sealed exactly once,
// and that API requests bounce with 503 afterwards.
func TestDrainBarrierSealsEveryShardStore(t *testing.T) {
	dir := t.TempDir()
	s, c := newTestServer(t, Options{StoreDir: dir, Shards: 3, ShardStores: true})
	ctx := context.Background()
	mustCreate(t, c, "drainy", testSpec("random", 1))
	observeSuggested(t, c, "drainy", 2)

	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Idempotent: a second drain returns the same (nil) result.
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if _, err := c.Suggest(ctx, "drainy", 1); err == nil {
		t.Fatal("suggest admitted during drain")
	}
	// Every store ends on a durable terminator: reopening must report
	// zero torn-tail bytes anywhere.
	if err := s.crashClose(); err != nil {
		t.Fatal(err)
	}
	s2, err := New(Options{StoreDir: dir, Shards: 3, ShardStores: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if st := s2.StoreStats(); st.TornTailBytes != 0 || st.Quarantined != 0 {
		t.Fatalf("reopen after drain found damage: %+v", st)
	}
}

// TestConcurrentCreatesAcrossShards hammers create from many goroutines:
// per-shard create locks must still serialize same-name races (exactly
// one Created=true per name) while distinct names proceed independently.
func TestConcurrentCreatesAcrossShards(t *testing.T) {
	_, c := newTestServer(t, Options{Shards: 4})
	ctx := context.Background()
	const names, racers = 8, 4
	var wg sync.WaitGroup
	createdCount := make([][]int, names)
	for n := 0; n < names; n++ {
		createdCount[n] = make([]int, racers)
		for r := 0; r < racers; r++ {
			wg.Add(1)
			go func(n, r int) {
				defer wg.Done()
				created, err := c.CreateStudy(ctx, fmt.Sprintf("race-%d", n), testSpec("random", int64(n)))
				if err != nil {
					t.Errorf("create race-%d: %v", n, err)
					return
				}
				if created {
					createdCount[n][r] = 1
				}
			}(n, r)
		}
	}
	wg.Wait()
	for n := 0; n < names; n++ {
		total := 0
		for _, v := range createdCount[n] {
			total += v
		}
		if total != 1 {
			t.Fatalf("race-%d: %d Created=true acks, want exactly 1", n, total)
		}
	}
}
