package server

import (
	"fmt"
	"net/http"
	"sync/atomic"
)

// metrics.go is the observability surface: monotonic counters updated on
// the request path and a plain-text exposition endpoint in the usual
// `name value` format, cheap enough to scrape every second.

// counters are the server's monotonic event counts.
type counters struct {
	requests   atomic.Int64 // API requests admitted past the drain gate
	creates    atomic.Int64 // studies created
	suggests   atomic.Int64 // trials suggested
	observes   atomic.Int64 // observations acked durable
	duplicates atomic.Int64 // observations deduped as retries
	shed       atomic.Int64 // suggests bounced by admission control
	panics     atomic.Int64 // panics recovered into 500s
	deadlines  atomic.Int64 // requests that hit their deadline
	writeErrs  atomic.Int64 // response bodies the client never read
}

// handleMetrics writes the exposition page.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.StoreStats()
	studies := s.nstudies.Load()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b []byte
	line := func(name string, v int64) {
		b = fmt.Appendf(b, "%s %d\n", name, v)
	}
	line("autotuned_requests_total", s.m.requests.Load())
	line("autotuned_studies", studies)
	line("autotuned_shards", int64(len(s.shards)))
	line("autotuned_stores", int64(len(s.stores)))
	line("autotuned_creates_total", s.m.creates.Load())
	line("autotuned_suggests_total", s.m.suggests.Load())
	line("autotuned_observes_total", s.m.observes.Load())
	line("autotuned_duplicates_total", s.m.duplicates.Load())
	line("autotuned_shed_total", s.m.shed.Load())
	line("autotuned_panics_total", s.m.panics.Load())
	line("autotuned_deadlines_total", s.m.deadlines.Load())
	line("autotuned_response_write_errors_total", s.m.writeErrs.Load())
	line("autotuned_admission_inflight", int64(s.adm.inflight()))
	line("autotuned_admission_limit", int64(cap(s.adm.slots)))
	line("autotuned_draining", boolGauge(s.draining.Load()))
	line("autotuned_poisoned", boolGauge(s.poisoned.Load()))
	line("autotuned_store_records", int64(st.Records))
	line("autotuned_store_segments", int64(st.Segments))
	line("autotuned_store_torn_tail_bytes", st.TornTailBytes)
	line("autotuned_store_quarantined", int64(st.Quarantined))
	line("autotuned_store_appends_total", int64(st.Appended))
	line("autotuned_store_appended_bytes_total", st.AppendedBytes)
	line("autotuned_store_fsyncs_total", int64(st.Fsyncs))
	line("autotuned_store_group_commits_total", int64(st.Groups))
	line("autotuned_store_group_batches_total", int64(st.GroupBatches))
	line("autotuned_store_group_max", int64(st.MaxGroup))
	b = fmt.Appendf(b, "autotuned_store_group_mean %.3f\n", st.MeanGroup())
	line("autotuned_store_poisoned", boolGauge(st.Poisoned))
	if _, err := w.Write(b); err != nil {
		s.m.writeErrs.Add(1)
	}
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
