package server

// admission.go bounds the number of suggest requests in flight. Suggests
// are the compute-heavy path (a BO suggest is a GP fit plus an acquisition
// search), so past a fixed concurrency the right move is to shed load
// fast — 429 with Retry-After — rather than queue until every client
// times out. Readiness flips at a high-water mark below the hard limit,
// so an orchestrator stops routing new traffic here before requests
// actually start bouncing.

// admission is a non-blocking counting semaphore.
type admission struct {
	slots     chan struct{}
	highWater int
}

func newAdmission(limit, highWater int) *admission {
	if limit < 1 {
		limit = 1
	}
	if highWater < 1 || highWater > limit {
		highWater = limit
	}
	return &admission{slots: make(chan struct{}, limit), highWater: highWater}
}

// tryAcquire claims a slot without blocking; callers that fail shed the
// request instead of queueing behind work they can't see.
func (a *admission) tryAcquire() bool {
	select {
	case a.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (a *admission) release() { <-a.slots }

// inflight is the current occupancy (approximate under concurrency, which
// is fine for metrics and readiness).
func (a *admission) inflight() int { return len(a.slots) }

// ready reports whether occupancy is still below the high-water mark.
func (a *admission) ready() bool { return len(a.slots) < a.highWater }
