package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"autotune/internal/studystore"
)

// TestOverloadShedsWithRetryAfter saturates the admission queue with a
// deterministic gate and pins the overload contract: excess suggests get
// 429 + Retry-After, /readyz fails while /healthz stays OK, and every
// admitted request completes once the backlog clears — accepted work is
// never dropped.
func TestOverloadShedsWithRetryAfter(t *testing.T) {
	s, c := newTestServer(t, Options{AdmissionLimit: 2, ReadyHighWater: 1})
	gate := make(chan struct{})
	s.testGate = gate
	ctx := context.Background()
	mustCreate(t, c, "load", testSpec("random", 21))

	const total = 10
	results := make(chan error, total)
	var started sync.WaitGroup
	for i := 0; i < total; i++ {
		started.Add(1)
		go func() {
			defer started.Done()
			_, err := c.Suggest(ctx, "load", 1)
			results <- err
		}()
	}
	// Wait until both admission slots are occupied (the two admitted
	// requests park on the gate), so the remaining requests shed
	// deterministically.
	for s.adm.inflight() < 2 {
		runtime.Gosched()
	}

	// While saturated: readiness fails, liveness holds.
	if err := c.Ready(ctx); err == nil {
		t.Fatal("readyz under saturation: want failure")
	} else {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
			t.Fatalf("readyz under saturation: %v, want 503", err)
		}
	}
	if err := c.Healthy(ctx); err != nil {
		t.Fatalf("healthz under saturation: %v", err)
	}

	// Shed requests drain out as 429s with Retry-After; the two admitted
	// ones are still parked.
	var shed int
	for shed < total-2 {
		err := <-results
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("shed request: %v, want APIError", err)
		}
		if apiErr.Status != http.StatusTooManyRequests {
			t.Fatalf("shed request: status %d, want 429", apiErr.Status)
		}
		if apiErr.RetryAfter < 1 {
			t.Fatalf("shed request: Retry-After %d, want >= 1", apiErr.RetryAfter)
		}
		if !apiErr.IsRetryable() {
			t.Fatal("shed request: want IsRetryable")
		}
		shed++
	}

	// Release the gate: both accepted requests must complete successfully.
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("accepted request dropped: %v", err)
		}
	}
	started.Wait()
	if got := s.m.shed.Load(); got != int64(total-2) {
		t.Fatalf("shed counter %d, want %d", got, total-2)
	}
	if err := c.Ready(ctx); err != nil {
		t.Fatalf("readyz after backlog cleared: %v", err)
	}
}

// TestDrainFinishesInFlightAndSeals pins the drain contract: once a drain
// starts, new API requests bounce with 503 while the in-flight one
// finishes, probes keep serving, and the store ends sealed — a reopen
// finds zero torn bytes and a fresh segment.
func TestDrainFinishesInFlightAndSeals(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	defer hs.Close()
	c := NewClientHTTP(hs.URL, hs.Client())
	ctx := context.Background()
	mustCreate(t, c, "drain", testSpec("random", 31))
	observeSuggested(t, c, "drain", 3)

	gate := make(chan struct{})
	s.testGate = gate
	inflightDone := make(chan error, 1)
	go func() {
		_, err := c.Suggest(ctx, "drain", 1)
		inflightDone <- err
	}()
	for s.adm.inflight() == 0 {
		runtime.Gosched()
	}

	drainDone := make(chan error, 1)
	go func() { drainDone <- s.Drain(ctx) }()
	// The drain barrier is waiting on the parked request; once the gate
	// shuts, new API calls bounce with "draining" while probes stay up.
	for !s.draining.Load() {
		runtime.Gosched()
	}
	var apiErr *APIError
	if _, err := c.Suggest(ctx, "drain", 1); !errors.As(err, &apiErr) || apiErr.Code != "draining" {
		t.Fatalf("suggest during drain: %v, want 503 draining", err)
	}
	if err := c.Healthy(ctx); err != nil {
		t.Fatalf("healthz during drain: %v", err)
	}
	if err := c.Ready(ctx); err == nil {
		t.Fatal("readyz during drain: want failure")
	}
	select {
	case err := <-drainDone:
		t.Fatalf("drain finished with a request in flight: %v", err)
	default:
	}

	close(gate)
	if err := <-inflightDone; err != nil {
		t.Fatalf("in-flight request during drain: %v", err)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := s.Close(); err != nil { // idempotent after Drain
		t.Fatalf("close after drain: %v", err)
	}

	// The log was sealed: reopening repairs nothing and starts fresh.
	st, err := studystore.Open(dir, studystore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stats := st.Stats()
	if stats.TornTailBytes != 0 || stats.Quarantined != 0 {
		t.Fatalf("reopen after drain: torn=%d quarantined=%d, want clean", stats.TornTailBytes, stats.Quarantined)
	}
	if got := len(st.Records("drain")); got != 4 { // meta + 3 observations
		t.Fatalf("records after drain: %d, want 4", got)
	}
}
