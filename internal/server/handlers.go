package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sort"
	"strings"

	"autotune/internal/sched"
	"autotune/internal/studystore"
	"autotune/internal/trial"
)

// handlers.go translates HTTP to session operations. Every handler
// derives its context from the request (the deadline middleware in
// ServeHTTP already bounded it), validates inputs into typed forms, and
// maps session errors onto statuses: client mistakes 400, unknown study
// 404, read-only/exhausted 409, shed load 429, panics 500, degraded
// store 503, missed deadline 504.

// maxBodyBytes bounds request bodies; observe batches are the largest
// legitimate payloads.
const maxBodyBytes = 8 << 20

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/studies", s.handleCreate)
	mux.HandleFunc("GET /v1/studies", s.handleList)
	mux.HandleFunc("POST /v1/studies/{study}/suggest", s.handleSuggest)
	mux.HandleFunc("POST /v1/studies/{study}/observe", s.handleObserve)
	mux.HandleFunc("GET /v1/studies/{study}/best", s.handleBest)
	mux.HandleFunc("GET /v1/studies/{study}/pareto", s.handlePareto)
	mux.HandleFunc("GET /v1/studies/{study}/trials", s.handleTrials)
	return mux
}

// writeJSON writes a JSON response; a failed write means the client went
// away, which is only worth a counter.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.m.writeErrs.Add(1)
	}
}

// writeError writes the error envelope; 429s carry Retry-After so shed
// clients know to back off rather than hammer.
func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	s.writeJSON(w, status, errorResponse{Error: msg, Code: code})
}

// decode reads a JSON body into v; an empty body leaves v zero (useful
// for suggest, where everything is optional). Returns false after
// writing a 400.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_body", "read body: "+err.Error())
		return false
	}
	if len(bytes.TrimSpace(body)) == 0 {
		return true
	}
	if err := json.Unmarshal(body, v); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_json", "decode body: "+err.Error())
		return false
	}
	return true
}

// writeSessionError maps a session/store error onto an HTTP status.
func (s *Server) writeSessionError(w http.ResponseWriter, err error) {
	var sf *storeFailure
	switch {
	case errors.As(err, &sf):
		s.failStore(err)
		s.writeError(w, http.StatusServiceUnavailable, "store_failed", "durable store failed; server is read-only: "+err.Error())
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.m.deadlines.Add(1)
		s.writeError(w, http.StatusGatewayTimeout, "deadline", err.Error())
	case errors.Is(err, errReadOnlyStudy):
		s.writeError(w, http.StatusConflict, "read_only", err.Error())
	case errors.Is(err, errExhausted):
		s.writeError(w, http.StatusConflict, "exhausted", "search space exhausted")
	case errors.Is(err, sched.ErrPanic):
		s.m.panics.Add(1)
		s.writeError(w, http.StatusInternalServerError, "panic", "optimizer panicked; study degraded to read-only: "+firstLine(err))
	case errors.Is(err, studystore.ErrPoisoned):
		s.failStore(err)
		s.writeError(w, http.StatusServiceUnavailable, "store_failed", err.Error())
	default:
		s.writeError(w, http.StatusBadRequest, "bad_request", err.Error())
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !studyNameRE.MatchString(req.Study) {
		s.writeError(w, http.StatusBadRequest, "bad_study", "study name must match "+studyNameRE.String())
		return
	}
	if req.Optimizer == "" {
		req.Optimizer = s.opts.DefaultOptimizer
	}
	meta := studyMeta{Meta: 1, Study: req.Study, Optimizer: req.Optimizer, Seed: req.Seed, Space: req.Space}

	sh := s.enter(w, req.Study)
	if sh == nil {
		return
	}
	defer sh.drainMu.RUnlock()

	// createMu serializes check-then-append so two racing creates cannot
	// both write a meta record; the meta append is the durability barrier
	// that makes the study survive a crash the instant it is acked. The
	// lock is per shard — study→shard is a stable hash, so two creates of
	// the same name always contend on the same mutex.
	sh.createMu.Lock()
	defer sh.createMu.Unlock()
	if existing := sh.session(req.Study); existing != nil {
		if sameSpec(existing.meta, meta) {
			s.writeJSON(w, http.StatusOK, createResponse{
				Study: req.Study, Optimizer: existing.meta.Optimizer,
				Created: false, Trials: int(existing.observed.Load()),
			})
			return
		}
		s.writeError(w, http.StatusConflict, "spec_mismatch", "study exists with a different spec")
		return
	}
	if s.nstudies.Load() >= int64(s.opts.MaxStudies) {
		s.writeError(w, http.StatusServiceUnavailable, "capacity", "study limit reached")
		return
	}
	ss, err := newSession(meta)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_spec", err.Error())
		return
	}
	if s.poisoned.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "store_failed", "durable store failed; server is read-only")
		return
	}
	payload, err := json.Marshal(meta)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_spec", err.Error())
		return
	}
	if err := sh.store.Append(studystore.Record{Study: req.Study, ID: metaID, Payload: payload}); err != nil {
		s.writeSessionError(w, &storeFailure{err})
		return
	}
	ss.st = sh.store
	sh.mu.Lock()
	sh.sessions[req.Study] = ss
	sh.mu.Unlock()
	s.nstudies.Add(1)
	s.m.creates.Add(1)
	s.writeJSON(w, http.StatusCreated, createResponse{
		Study: req.Study, Optimizer: meta.Optimizer, Created: true,
	})
}

// sameSpec compares descriptors by canonical JSON (the structs contain no
// maps, so marshaling is deterministic).
func sameSpec(a, b studyMeta) bool {
	aj, aerr := json.Marshal(a)
	bj, berr := json.Marshal(b)
	return aerr == nil && berr == nil && bytes.Equal(aj, bj)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	infos := make([]StudyInfo, 0, s.nstudies.Load())
	for _, sh := range s.shards {
		sh.mu.RLock()
		names := make([]string, 0, len(sh.sessions))
		for name := range sh.sessions {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			infos = append(infos, sh.sessions[name].info())
		}
		sh.mu.RUnlock()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Study < infos[j].Study })
	s.writeJSON(w, http.StatusOK, listResponse{Studies: infos})
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	study := r.PathValue("study")
	sh := s.enter(w, study)
	if sh == nil {
		return
	}
	defer sh.drainMu.RUnlock()
	ss := sh.session(study)
	if ss == nil {
		s.writeError(w, http.StatusNotFound, "not_found", "no such study")
		return
	}
	if !s.adm.tryAcquire() {
		s.m.shed.Add(1)
		s.writeError(w, http.StatusTooManyRequests, "overloaded", "suggest queue full; retry after backoff")
		return
	}
	defer s.adm.release()
	if s.testGate != nil {
		select {
		case <-s.testGate:
		case <-r.Context().Done():
		}
	}
	var req suggestRequest
	if !s.decode(w, r, &req) {
		return
	}
	n := req.Count
	if n <= 0 {
		n = 1
	}
	if n > s.opts.MaxSuggestBatch {
		n = s.opts.MaxSuggestBatch
	}
	trials, exhausted, err := ss.suggest(r.Context(), n)
	if err != nil {
		s.writeSessionError(w, err)
		return
	}
	s.m.suggests.Add(int64(len(trials)))
	s.writeJSON(w, http.StatusOK, suggestResponse{Study: study, Trials: trials, Exhausted: exhausted})
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	study := r.PathValue("study")
	sh := s.enter(w, study)
	if sh == nil {
		return
	}
	defer sh.drainMu.RUnlock()
	ss := sh.session(study)
	if ss == nil {
		s.writeError(w, http.StatusNotFound, "not_found", "no such study")
		return
	}
	if s.poisoned.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "store_failed", "durable store failed; server is read-only")
		return
	}
	var req observeRequest
	if !s.decode(w, r, &req) {
		return
	}
	obs := req.Observations
	if len(obs) == 0 {
		if req.Config == nil {
			s.writeError(w, http.StatusBadRequest, "bad_request", "no observation in body")
			return
		}
		obs = []Observation{req.Observation}
	}
	if len(obs) > s.opts.MaxObserveBatch {
		s.writeError(w, http.StatusBadRequest, "batch_too_large", "observe batch exceeds limit")
		return
	}
	acked, dups, err := ss.observe(r.Context(), obs)
	s.m.observes.Add(int64(acked))
	s.m.duplicates.Add(int64(dups))
	if err != nil {
		s.writeSessionError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, observeResponse{Study: study, Acked: acked, Duplicates: dups})
}

func (s *Server) handleBest(w http.ResponseWriter, r *http.Request) {
	ss := s.session(r.PathValue("study"))
	if ss == nil {
		s.writeError(w, http.StatusNotFound, "not_found", "no such study")
		return
	}
	res, err := ss.best(r.Context())
	if err != nil {
		s.writeSessionError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, res)
}

func (s *Server) handlePareto(w http.ResponseWriter, r *http.Request) {
	ss := s.session(r.PathValue("study"))
	if ss == nil {
		s.writeError(w, http.StatusNotFound, "not_found", "no such study")
		return
	}
	objectives := []string{"value", "cost_seconds"}
	if q := r.URL.Query().Get("objectives"); q != "" {
		objectives = strings.Split(q, ",")
	}
	res, err := ss.pareto(r.Context(), objectives)
	if err != nil {
		s.writeSessionError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, res)
}

// trialsResponse is the GET /v1/studies/{study}/trials body.
type trialsResponse struct {
	Study  string              `json:"study"`
	Trials []trial.TrialRecord `json:"trials"`
}

func (s *Server) handleTrials(w http.ResponseWriter, r *http.Request) {
	study := r.PathValue("study")
	ss := s.session(study)
	if ss == nil {
		s.writeError(w, http.StatusNotFound, "not_found", "no such study")
		return
	}
	trs, err := ss.trials(r.Context())
	if err != nil {
		s.writeSessionError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, trialsResponse{Study: study, Trials: trs})
}

// handleHealthz is liveness: the process is up and serving, even while
// draining or degraded — restarts are for the orchestrator to decide on
// other evidence.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is routability: it fails before the hard limit starts
// bouncing (high-water mark), during drain, and when the store has
// degraded the server to read-only.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		s.writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
	case s.poisoned.Load():
		s.writeError(w, http.StatusServiceUnavailable, "store_failed", "durable store failed")
	case !s.adm.ready():
		s.writeError(w, http.StatusServiceUnavailable, "overloaded", "suggest queue past high-water mark")
	default:
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}
