package server

import (
	"errors"
	"fmt"
	"math"
	"regexp"

	"autotune/internal/space"
)

// wire.go is the JSON wire format of the tuning service: the study spec a
// client posts, the suggest/observe/best/pareto payloads, and the
// normalization that turns untyped JSON values back into the typed
// space.Config the optimizers expect (JSON has only float64 numbers; the
// space says which knobs are integers).

// ParamSpec is the serializable form of one space.Param. Kind is one of
// "float", "int", "categorical", "bool".
type ParamSpec struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Min/Max bound numeric parameters (inclusive; integral for "int").
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
	// Log requests log-scale encoding (numeric kinds, Min > 0).
	Log bool `json:"log,omitempty"`
	// Step quantizes float parameters to multiples of Step above Min.
	Step float64 `json:"step,omitempty"`
	// Values lists categorical levels in declaration order.
	Values []string `json:"values,omitempty"`
	// Default overrides the kind's default value (numbers arrive as JSON
	// float64 and are coerced per kind).
	Default any `json:"default,omitempty"`
	// Parent and ParentValues make the parameter conditional.
	Parent       string   `json:"parent,omitempty"`
	ParentValues []string `json:"parent_values,omitempty"`
}

// param converts the spec to a space.Param.
func (ps ParamSpec) param() (space.Param, error) {
	var p space.Param
	switch ps.Kind {
	case "float":
		p = space.Float(ps.Name, ps.Min, ps.Max)
		if ps.Step > 0 {
			p = p.WithStep(ps.Step)
		}
	case "int":
		p = space.Int(ps.Name, int64(ps.Min), int64(ps.Max))
	case "categorical":
		p = space.Categorical(ps.Name, ps.Values...)
	case "bool":
		p = space.Bool(ps.Name)
	default:
		return p, fmt.Errorf("param %q: unknown kind %q (want float, int, categorical, or bool)", ps.Name, ps.Kind)
	}
	if ps.Log {
		p = p.WithLog()
	}
	if ps.Default != nil {
		def, err := coerceValue(p, ps.Default)
		if err != nil {
			return p, fmt.Errorf("param %q default: %w", ps.Name, err)
		}
		p = p.WithDefault(def)
	}
	if ps.Parent != "" {
		p = p.WithParent(ps.Parent, ps.ParentValues...)
	}
	return p, nil
}

// SpecOf converts one space.Param to its wire form (constraints, which
// are Go closures, do not survive the trip and must be re-imposed
// server-side if needed).
func SpecOf(p space.Param) ParamSpec {
	ps := ParamSpec{
		Name: p.Name, Min: p.Min, Max: p.Max, Log: p.Log, Step: p.Step,
		Values: p.Values, Parent: p.Parent, ParentValues: p.ParentValues,
	}
	switch p.Kind {
	case space.KindFloat:
		ps.Kind = "float"
	case space.KindInt:
		ps.Kind = "int"
	case space.KindCategorical:
		ps.Kind = "categorical"
		ps.Min, ps.Max = 0, 0
	case space.KindBool:
		ps.Kind = "bool"
		ps.Min, ps.Max = 0, 0
	}
	ps.Default = p.Def
	return ps
}

// SpecsOf converts a whole space to wire form.
func SpecsOf(sp *space.Space) []ParamSpec {
	params := sp.Params()
	out := make([]ParamSpec, len(params))
	for i, p := range params {
		out[i] = SpecOf(p)
	}
	return out
}

// buildSpace validates a spec list into a Space.
func buildSpace(specs []ParamSpec) (*space.Space, error) {
	if len(specs) == 0 {
		return nil, errors.New("study space is empty")
	}
	params := make([]space.Param, len(specs))
	for i, ps := range specs {
		p, err := ps.param()
		if err != nil {
			return nil, err
		}
		params[i] = p
	}
	return space.New(params...)
}

// coerceValue converts one untyped JSON value to the parameter's typed
// Config representation (float64, int64, string, or bool).
func coerceValue(p space.Param, v any) (any, error) {
	switch p.Kind {
	case space.KindFloat:
		f, ok := asFloat(v)
		if !ok {
			return nil, fmt.Errorf("want a number, got %T", v)
		}
		return f, nil
	case space.KindInt:
		f, ok := asFloat(v)
		if !ok || f != math.Trunc(f) {
			return nil, fmt.Errorf("want an integer, got %v", v)
		}
		return int64(f), nil
	case space.KindCategorical:
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("want a string, got %T", v)
		}
		return s, nil
	case space.KindBool:
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("want a bool, got %T", v)
		}
		return b, nil
	}
	return nil, fmt.Errorf("unknown kind %v", p.Kind)
}

func asFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int64:
		return float64(x), true
	case int:
		return float64(x), true
	}
	return 0, false
}

// normalizeConfig types an untyped JSON config object against the space:
// every key must name a known parameter, every value must coerce to the
// parameter's kind, and the result must pass space validation.
func normalizeConfig(sp *space.Space, raw map[string]any) (space.Config, error) {
	if len(raw) == 0 {
		return nil, errors.New("config is empty")
	}
	cfg := make(space.Config, len(raw))
	for name, v := range raw {
		p, ok := sp.Param(name)
		if !ok {
			return nil, fmt.Errorf("unknown knob %q", name)
		}
		tv, err := coerceValue(p, v)
		if err != nil {
			return nil, fmt.Errorf("knob %q: %w", name, err)
		}
		cfg[name] = tv
	}
	if err := sp.Validate(cfg); err != nil {
		return nil, err
	}
	return cfg, nil
}

// studyMeta is the durable study descriptor, persisted as record metaID
// (-1) in the study's log before the create is acknowledged. Recovery
// rebuilds the space and a freshly seeded optimizer from it, so a
// restarted study resumes suggesting as a pure function of (seed,
// replayed observations).
type studyMeta struct {
	Meta      int         `json:"meta"` // format version, currently 1
	Study     string      `json:"study"`
	Optimizer string      `json:"optimizer"`
	Seed      int64       `json:"seed"`
	Space     []ParamSpec `json:"space"`
}

// metaID is the reserved in-study record ID that holds studyMeta; trial
// records use IDs >= 0.
const metaID = -1

// studyNameRE bounds study names to filesystem- and URL-safe tokens.
var studyNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// StudySpec is what a client needs to create a study: the optimizer (any
// name NewOptimizer accepts; empty means "bo"), the deterministic seed,
// and the configuration space.
type StudySpec struct {
	Optimizer string      `json:"optimizer,omitempty"`
	Seed      int64       `json:"seed"`
	Space     []ParamSpec `json:"space"`
}

// createRequest is the POST /v1/studies body.
type createRequest struct {
	Study string `json:"study"`
	StudySpec
}

// createResponse acknowledges a create. Created is false when the study
// already existed with an identical spec (creation is idempotent);
// Trials reports observations already recovered from the store.
type createResponse struct {
	Study     string `json:"study"`
	Optimizer string `json:"optimizer"`
	Created   bool   `json:"created"`
	Trials    int    `json:"trials"`
}

// suggestRequest is the POST /v1/studies/{study}/suggest body; an empty
// body means Count = 1.
type suggestRequest struct {
	Count int `json:"count,omitempty"`
}

// SuggestedTrial is one proposed configuration with its trial ID. The ID
// is not durable until observed: trial IDs suggested but never observed
// before a crash are reassigned after restart, and the observe carries
// the config precisely so that the ack is self-contained.
type SuggestedTrial struct {
	Trial  int64          `json:"trial"`
	Config map[string]any `json:"config"`
}

// suggestResponse carries the proposed trials; Exhausted marks a finite
// strategy (grid) that has fewer configurations left than asked.
type suggestResponse struct {
	Study     string           `json:"study"`
	Trials    []SuggestedTrial `json:"trials"`
	Exhausted bool             `json:"exhausted,omitempty"`
}

// Observation is one measured trial reported back to the service.
type Observation struct {
	Trial       int64              `json:"trial"`
	Config      map[string]any     `json:"config"`
	Value       float64            `json:"value"`
	CostSeconds float64            `json:"cost_seconds,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// observeRequest is the POST /v1/studies/{study}/observe body: either a
// single inline Observation or a batch (the batch is durable under one
// fsync barrier).
type observeRequest struct {
	Observation
	Observations []Observation `json:"observations,omitempty"`
}

// observeResponse acknowledges an observe. Acked counts observations
// made durable by this request; Duplicates counts (study, trial) pairs
// that were already acked — retries are safe and change nothing.
type observeResponse struct {
	Study      string `json:"study"`
	Acked      int    `json:"acked"`
	Duplicates int    `json:"duplicates"`
}

// BestResult is the incumbent of one study.
type BestResult struct {
	Study    string         `json:"study"`
	Trial    int64          `json:"trial"`
	Config   map[string]any `json:"config,omitempty"`
	Value    float64        `json:"value"`
	Found    bool           `json:"found"`
	Observed int            `json:"observed"`
}

// ParetoPoint is one non-dominated trial.
type ParetoPoint struct {
	Trial      int64          `json:"trial"`
	Config     map[string]any `json:"config"`
	Objectives []float64      `json:"objectives"`
}

// ParetoResult is the non-dominated front of a study over the named
// objectives (all minimized): "value", "cost_seconds", or any metric
// name the observations carried.
type ParetoResult struct {
	Study      string        `json:"study"`
	Objectives []string      `json:"objectives"`
	Front      []ParetoPoint `json:"front"`
}

// StudyInfo is one row of the study listing.
type StudyInfo struct {
	Study     string `json:"study"`
	Optimizer string `json:"optimizer,omitempty"`
	Trials    int    `json:"trials"`
	ReadOnly  bool   `json:"read_only,omitempty"`
}

// listResponse is the GET /v1/studies body.
type listResponse struct {
	Studies []StudyInfo `json:"studies"`
}

// errorResponse is the JSON error envelope every non-2xx response carries.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}
