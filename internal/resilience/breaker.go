package resilience

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"autotune/internal/space"
)

// Breaker is a circuit breaker over the configuration space and the host
// fleet: config regions that repeatedly crash and hosts that repeatedly
// flake are quarantined for a cooldown, so the tuner stops burning budget
// on a cliff it has already mapped (the TUNA "detect and quarantine
// unstable machines" loop, applied to both axes).
//
// Regions are coarse cells of the unit cube (Cells levels per numeric
// dimension). Time is measured in Allow calls (≈ trials), not wall clock,
// so quarantine behaves identically in simulated and real tuning. After a
// cooldown the region reopens half-open: one more failure re-trips it
// immediately.
type Breaker struct {
	// FailThreshold is how many failures (without an intervening success)
	// trip the circuit (default 3).
	FailThreshold int
	// Cooldown is how many Allow ticks a tripped circuit stays open
	// (default 20).
	Cooldown int
	// Cells is the per-dimension quantization of region keys (default 4).
	Cells int

	mu      sync.Mutex
	clock   int
	regions map[string]*cbState
	hosts   map[int]*cbState
	trips   int
}

type cbState struct {
	fails     int
	openUntil int
}

// NewBreaker returns a Breaker with default thresholds.
func NewBreaker() *Breaker {
	return &Breaker{FailThreshold: 3, Cooldown: 20, Cells: 4}
}

func (b *Breaker) defaults() (threshold, cooldown, cells int) {
	threshold, cooldown, cells = b.FailThreshold, b.Cooldown, b.Cells
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 20
	}
	if cells <= 0 {
		cells = 4
	}
	return
}

// RegionKey maps a configuration to its quarantine cell.
func (b *Breaker) RegionKey(sp *space.Space, cfg space.Config) string {
	_, _, cells := b.defaults()
	x := sp.Encode(cfg)
	var sb strings.Builder
	for i, v := range x {
		c := int(math.Floor(v * float64(cells)))
		if c >= cells {
			c = cells - 1
		}
		if c < 0 {
			c = 0
		}
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", c)
	}
	return sb.String()
}

// Allow reports whether cfg's region is currently runnable and advances
// the breaker's clock by one tick.
func (b *Breaker) Allow(sp *space.Space, cfg space.Config) bool {
	key := b.RegionKey(sp, cfg)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.clock++
	st := b.regions[key]
	return st == nil || st.openUntil <= b.clock
}

// RecordFailure notes a crash in cfg's region, tripping the circuit once
// the threshold is reached.
func (b *Breaker) RecordFailure(sp *space.Space, cfg space.Config) {
	key := b.RegionKey(sp, cfg)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.regions == nil {
		b.regions = map[string]*cbState{}
	}
	b.record(b.regions[key], func(st *cbState) { b.regions[key] = st })
}

// RecordSuccess closes cfg's region circuit.
func (b *Breaker) RecordSuccess(sp *space.Space, cfg space.Config) {
	key := b.RegionKey(sp, cfg)
	b.mu.Lock()
	defer b.mu.Unlock()
	if st := b.regions[key]; st != nil {
		st.fails = 0
		st.openUntil = 0
	}
}

// AllowHost reports whether a host is currently usable (does not tick the
// clock: host checks happen during placement, not once per trial).
func (b *Breaker) AllowHost(host int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.hosts[host]
	return st == nil || st.openUntil <= b.clock
}

// RecordHost notes a host-level success or failure.
func (b *Breaker) RecordHost(host int, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.hosts == nil {
		b.hosts = map[int]*cbState{}
	}
	if ok {
		if st := b.hosts[host]; st != nil {
			st.fails = 0
			st.openUntil = 0
		}
		return
	}
	b.record(b.hosts[host], func(st *cbState) { b.hosts[host] = st })
}

// record applies one failure to st (allocating via put when nil).
func (b *Breaker) record(st *cbState, put func(*cbState)) {
	threshold, cooldown, _ := b.defaults()
	if st == nil {
		st = &cbState{}
		put(st)
	}
	st.fails++
	if st.fails >= threshold {
		st.openUntil = b.clock + cooldown
		// Half-open on reopen: one more failure re-trips immediately.
		st.fails = threshold - 1
		b.trips++
	}
}

// Trips returns how many times any circuit has tripped.
func (b *Breaker) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// OpenRegions returns how many config regions are quarantined right now.
func (b *Breaker) OpenRegions() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, st := range b.regions {
		if st.openUntil > b.clock {
			n++
		}
	}
	return n
}

// OpenHosts returns how many hosts are quarantined right now.
func (b *Breaker) OpenHosts() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, st := range b.hosts {
		if st.openUntil > b.clock {
			n++
		}
	}
	return n
}
