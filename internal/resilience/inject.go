package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"autotune/internal/cloud"
	"autotune/internal/space"
	"autotune/internal/trial"
)

// InjectorOptions shapes the faults an Injector adds to an environment.
// Probabilities are per attempt and drawn independently; the first fault
// drawn wins (order: host flake, hard crash, transient, hang).
type InjectorOptions struct {
	// TransientProb is the chance of a retryable failure (ErrTransient):
	// benchmark harness hiccup, lost connection, OOM-killed agent.
	TransientProb float64
	// CrashProb is the chance of a hard, non-retryable crash (ErrCrash):
	// the configuration itself is lethal regardless of retries.
	CrashProb float64
	// HangProb is the chance the trial hangs. A hanging trial blocks
	// until its context deadline fires; with no deadline it gives up
	// after HangFor and surfaces as a transient failure (so tests and
	// deadline-less callers cannot wedge).
	HangProb float64
	// HangFor bounds a hang when the context has no deadline
	// (default 50ms of real time).
	HangFor time.Duration
	// HangCostSeconds is the simulated cost charged for a hang at full
	// fidelity (default 60 — the deadline's worth of wasted benchmark).
	HangCostSeconds float64
	// StragglerProb is the chance a successful trial is a straggler;
	// StragglerFactor inflates its cost (default 4x).
	StragglerProb, StragglerFactor float64
	// CorruptProb is the chance a successful measurement is corrupted;
	// CorruptFactor multiplies its value (default 3x — an outlier that
	// lies to the optimizer rather than failing).
	CorruptProb, CorruptFactor float64
	// Hosts assigns each attempt to a simulated VM round-robin; flaky
	// hosts (cloud.HostProfile.Flaky) add their FailRate as extra
	// transient failures, and every host's multiplier skews the measured
	// value — the machine-lottery noise model from internal/cloud.
	Hosts []cloud.HostProfile
	// Breaker, when set, is consulted for host placement: quarantined
	// hosts are skipped, and host outcomes are reported back — wiring
	// TUNA-style machine quarantine into the injector.
	Breaker *Breaker
	// Seed makes the fault sequence reproducible.
	Seed int64
}

func (o InjectorOptions) withDefaults() InjectorOptions {
	if o.HangFor <= 0 {
		o.HangFor = 50 * time.Millisecond
	}
	if o.HangCostSeconds <= 0 {
		o.HangCostSeconds = 60
	}
	if o.StragglerFactor <= 1 {
		o.StragglerFactor = 4
	}
	if o.CorruptFactor <= 1 {
		o.CorruptFactor = 3
	}
	return o
}

// InjectorStats counts the faults actually injected.
type InjectorStats struct {
	Attempts, Transients, Crashes, Hangs, Stragglers, Corruptions, HostFaults int
}

// Injector wraps a trial.Environment with configurable fault injection —
// the failure modes from the tutorial's systems-challenges half (slides
// 65-75): transient errors, hard crashes, hangs, stragglers, corrupted
// measurements, and per-VM flakiness. It is how the resilience layer is
// tested against itself, and a harness for hardening any tuning setup.
type Injector struct {
	inner trial.Environment
	opts  InjectorOptions

	mu      sync.Mutex
	rng     *rand.Rand
	hostSeq int
	stats   InjectorStats
}

// NewInjector wraps env with fault injection.
func NewInjector(env trial.Environment, opts InjectorOptions) *Injector {
	return &Injector{
		inner: env,
		opts:  opts.withDefaults(),
		rng:   rand.New(rand.NewSource(opts.Seed)),
	}
}

// Space implements trial.Environment.
func (j *Injector) Space() *space.Space { return j.inner.Space() }

// Stats returns a snapshot of the injected-fault counters.
func (j *Injector) Stats() InjectorStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// fault is one pre-drawn injection decision (drawn under the lock, acted
// on outside it so parallel trials do not serialize on the injector).
type fault struct {
	host                   int
	hostFault              bool
	crash, transient, hang bool
	straggler, corrupt     bool
}

func (j *Injector) draw() fault {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.stats.Attempts++
	var f fault
	f.host = -1
	if n := len(j.opts.Hosts); n > 0 {
		// Round-robin placement, skipping quarantined hosts when a
		// breaker is wired in (all-quarantined falls back to rotation).
		for tries := 0; tries < n; tries++ {
			h := j.hostSeq % n
			j.hostSeq++
			if j.opts.Breaker == nil || j.opts.Breaker.AllowHost(h) {
				f.host = h
				break
			}
		}
		if f.host < 0 {
			f.host = j.hostSeq % n
			j.hostSeq++
		}
		host := j.opts.Hosts[f.host]
		if host.Flaky && j.rng.Float64() < host.FailRate {
			f.hostFault = true
			j.stats.HostFaults++
			return f
		}
	}
	switch {
	case j.rng.Float64() < j.opts.CrashProb:
		f.crash = true
		j.stats.Crashes++
	case j.rng.Float64() < j.opts.TransientProb:
		f.transient = true
		j.stats.Transients++
	case j.rng.Float64() < j.opts.HangProb:
		f.hang = true
		j.stats.Hangs++
	default:
		if j.rng.Float64() < j.opts.StragglerProb {
			f.straggler = true
			j.stats.Stragglers++
		}
		if j.rng.Float64() < j.opts.CorruptProb {
			f.corrupt = true
			j.stats.Corruptions++
		}
	}
	return f
}

// Run implements trial.Environment.
func (j *Injector) Run(ctx context.Context, cfg space.Config, fidelity float64) (trial.Result, error) {
	res, _, err := j.run(ctx, cfg, fidelity, nil)
	return res, err
}

// RunAbortable implements trial.Abortable, delegating early abort to the
// inner environment when it supports it.
func (j *Injector) RunAbortable(ctx context.Context, cfg space.Config, fidelity, abortAbove float64) (trial.Result, bool, error) {
	return j.run(ctx, cfg, fidelity, &abortAbove)
}

func (j *Injector) run(ctx context.Context, cfg space.Config, fidelity float64, abortAbove *float64) (trial.Result, bool, error) {
	f := j.draw()
	reportHost := func(ok bool) {
		if f.host >= 0 && j.opts.Breaker != nil {
			j.opts.Breaker.RecordHost(f.host, ok)
		}
	}
	partial := trial.Result{CostSeconds: j.opts.HangCostSeconds * fidelity * 0.1}
	switch {
	case f.hostFault:
		reportHost(false)
		return partial, false, fmt.Errorf("inject: host %d flaked: %w", f.host, ErrTransient)
	case f.crash:
		reportHost(true) // the config crashed, not the machine
		return partial, false, fmt.Errorf("inject: %w", trial.ErrCrash)
	case f.transient:
		reportHost(false)
		return partial, false, fmt.Errorf("inject: transient benchmark failure: %w", ErrTransient)
	case f.hang:
		reportHost(false)
		hang := time.NewTimer(j.opts.HangFor)
		defer hang.Stop()
		cost := trial.Result{CostSeconds: j.opts.HangCostSeconds * fidelity}
		if _, hasDeadline := ctx.Deadline(); hasDeadline {
			select {
			case <-ctx.Done():
				return cost, false, fmt.Errorf("inject: trial hung: %w", ctx.Err())
			case <-hang.C:
				// Deadline generous enough to outlast the hang: the trial
				// eventually dies as a transient failure.
				return cost, false, fmt.Errorf("inject: hang gave up: %w", ErrTransient)
			}
		}
		select {
		case <-ctx.Done():
			return cost, false, fmt.Errorf("inject: trial hung: %w", ctx.Err())
		case <-hang.C:
			return cost, false, fmt.Errorf("inject: hang gave up: %w", ErrTransient)
		}
	}
	var res trial.Result
	var aborted bool
	var err error
	if abortAbove != nil {
		if ab, ok := j.inner.(trial.Abortable); ok {
			res, aborted, err = ab.RunAbortable(ctx, cfg, fidelity, *abortAbove)
		} else {
			res, err = j.inner.Run(ctx, cfg, fidelity)
		}
	} else {
		res, err = j.inner.Run(ctx, cfg, fidelity)
	}
	if err != nil {
		reportHost(true)
		return res, aborted, err
	}
	if f.straggler {
		res.CostSeconds *= j.opts.StragglerFactor
	}
	if f.corrupt {
		res.Value *= j.opts.CorruptFactor
	}
	if f.host >= 0 {
		res.Value *= j.opts.Hosts[f.host].Mult
	}
	reportHost(true)
	return res, aborted, nil
}
