package resilience

import (
	"math/rand"
	"sync"
	"testing"

	"autotune/internal/space"
)

// TestBreakerConcurrentHammer pounds every Breaker method from many
// goroutines at once — the access pattern the asynchronous scheduler
// creates, where placement checks (AllowHost) race host verdicts
// (RecordHost) and region bookkeeping from concurrently finishing
// trials. Run under -race; the assertions only sanity-check that the
// counters stay coherent.
func TestBreakerConcurrentHammer(t *testing.T) {
	b := NewBreaker()
	sp := space.MustNew(space.Float("x", 0, 1), space.Float("y", 0, 1))
	const workers, iters, hostFleet = 12, 2000, 8

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 997))
			for i := 0; i < iters; i++ {
				host := rng.Intn(hostFleet)
				cfg := space.Config{"x": rng.Float64(), "y": rng.Float64()}
				switch i % 6 {
				case 0:
					b.AllowHost(host)
				case 1:
					b.RecordHost(host, rng.Intn(3) > 0)
				case 2:
					b.Allow(sp, cfg)
				case 3:
					b.RecordFailure(sp, cfg)
				case 4:
					b.RecordSuccess(sp, cfg)
				case 5:
					b.Trips()
					b.OpenHosts()
					b.OpenRegions()
				}
			}
		}(w)
	}
	wg.Wait()

	if b.Trips() < 0 {
		t.Fatal("negative trip count")
	}
	if open := b.OpenHosts(); open < 0 || open > hostFleet {
		t.Fatalf("open hosts = %d with a fleet of %d", open, hostFleet)
	}
	// The breaker still behaves after the hammering: a fresh host trips
	// after FailThreshold consecutive failures and reopens after the
	// cooldown's worth of Allow ticks.
	const probe = hostFleet + 1
	for i := 0; i < b.FailThreshold; i++ {
		if !b.AllowHost(probe) {
			t.Fatalf("host %d quarantined after %d failures (threshold %d)", probe, i, b.FailThreshold)
		}
		b.RecordHost(probe, false)
	}
	if b.AllowHost(probe) {
		t.Fatalf("host %d open after %d failures", probe, b.FailThreshold)
	}
	cfg := space.Config{"x": 0.5, "y": 0.5}
	for i := 0; i < b.Cooldown+1; i++ {
		b.Allow(sp, cfg) // advance the trial clock past the cooldown
	}
	if !b.AllowHost(probe) {
		t.Fatalf("host %d still quarantined after cooldown", probe)
	}
	// Half-open: one more failure re-trips immediately.
	b.RecordHost(probe, false)
	if b.AllowHost(probe) {
		t.Fatalf("half-open host %d did not re-trip on the next failure", probe)
	}
}
