package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"autotune/internal/cloud"
	"autotune/internal/optimizer"
	"autotune/internal/space"
	"autotune/internal/trial"
)

func noSleep(context.Context, time.Duration) {}

func quadEnv() *trial.FuncEnv {
	return &trial.FuncEnv{
		Sp: space.MustNew(space.Float("x", 0, 1)),
		F:  func(c space.Config) float64 { return (c.Float("x") - 0.6) * (c.Float("x") - 0.6) },
	}
}

// scriptedEnv fails the first failN calls with the given error.
type scriptedEnv struct {
	sp    *space.Space
	calls atomic.Int64
	failN int64
	err   error
}

func (e *scriptedEnv) Space() *space.Space { return e.sp }

func (e *scriptedEnv) Run(ctx context.Context, cfg space.Config, fid float64) (trial.Result, error) {
	if err := ctx.Err(); err != nil {
		return trial.Result{}, err
	}
	n := e.calls.Add(1)
	if n <= e.failN {
		return trial.Result{CostSeconds: 0.5}, e.err
	}
	return trial.Result{Value: 1, CostSeconds: 2}, nil
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Factor: 2, Max: time.Second}
	prev := time.Duration(0)
	for i := 0; i < 4; i++ {
		d := b.Delay(i, nil)
		if d <= prev {
			t.Fatalf("delay %d = %v not growing", i, d)
		}
		prev = d
	}
	if d := b.Delay(20, nil); d != time.Second {
		t.Fatalf("uncapped delay %v", d)
	}
	// Jitter stays within ±20% of the deterministic delay.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		d := b.Delay(2, rng)
		base := b.Delay(2, nil)
		lo, hi := time.Duration(float64(base)*0.8), time.Duration(float64(base)*1.2)
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, lo, hi)
		}
	}
}

func TestRetryRecoversTransientFailures(t *testing.T) {
	inner := &scriptedEnv{sp: quadEnv().Sp, failN: 2, err: fmt.Errorf("flake: %w", ErrTransient)}
	var slept []time.Duration
	env := Wrap(inner, Options{
		Retries: 3,
		Backoff: Backoff{Base: time.Second, Jitter: 1e-9},
		Sleep:   func(_ context.Context, d time.Duration) { slept = append(slept, d) },
	})
	res, err := env.Run(context.Background(), env.Space().Default(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if inner.calls.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", inner.calls.Load())
	}
	if len(slept) != 2 {
		t.Fatalf("backoffs = %d, want 2", len(slept))
	}
	if !(slept[1] > slept[0]) {
		t.Fatalf("backoff not exponential: %v", slept)
	}
	// Cost is honest: two failed attempts + backoff delays + success.
	want := 0.5 + 0.5 + 2 + slept[0].Seconds() + slept[1].Seconds()
	if diff := res.CostSeconds - want; diff > 0.01 || diff < -0.01 {
		t.Fatalf("cost %v, want ~%v", res.CostSeconds, want)
	}
	if s := env.Stats(); s.Retries != 2 || s.Attempts != 3 {
		t.Fatalf("stats %+v", s)
	}
}

func TestRetryGivesUpAfterBudget(t *testing.T) {
	inner := &scriptedEnv{sp: quadEnv().Sp, failN: 100, err: fmt.Errorf("flake: %w", ErrTransient)}
	env := Wrap(inner, Options{Retries: 2, Sleep: noSleep})
	_, err := env.Run(context.Background(), env.Space().Default(), 1)
	if !IsTransient(err) {
		t.Fatalf("want transient error, got %v", err)
	}
	if inner.calls.Load() != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", inner.calls.Load())
	}
}

func TestHardCrashIsNotRetried(t *testing.T) {
	inner := &scriptedEnv{sp: quadEnv().Sp, failN: 100, err: trial.ErrCrash}
	env := Wrap(inner, Options{Retries: 5, Sleep: noSleep})
	_, err := env.Run(context.Background(), env.Space().Default(), 1)
	if !errors.Is(err, trial.ErrCrash) {
		t.Fatalf("want crash, got %v", err)
	}
	if inner.calls.Load() != 1 {
		t.Fatalf("crash retried %d times", inner.calls.Load()-1)
	}
}

func TestDeadlineKillsHangingTrial(t *testing.T) {
	inj := NewInjector(quadEnv(), InjectorOptions{HangProb: 1, HangFor: 10 * time.Second, Seed: 1})
	env := Wrap(inj, Options{TrialTimeout: 20 * time.Millisecond, Sleep: noSleep})
	start := time.Now()
	_, err := env.Run(context.Background(), env.Space().Default(), 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline exceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hang not bounded by deadline: %v", elapsed)
	}
	if env.Stats().Timeouts != 1 {
		t.Fatalf("stats %+v", env.Stats())
	}
}

func TestHangWithoutDeadlineGivesUpTransiently(t *testing.T) {
	inj := NewInjector(quadEnv(), InjectorOptions{HangProb: 1, HangFor: 5 * time.Millisecond, Seed: 1})
	_, err := inj.Run(context.Background(), inj.Space().Default(), 1)
	if !IsTransient(err) {
		t.Fatalf("deadline-less hang should surface transient, got %v", err)
	}
}

// crashRegionEnv hard-crashes for x > 0.8 (a cliff region).
type crashRegionEnv struct {
	sp    *space.Space
	calls atomic.Int64
}

func (e *crashRegionEnv) Space() *space.Space { return e.sp }

func (e *crashRegionEnv) Run(ctx context.Context, cfg space.Config, fid float64) (trial.Result, error) {
	e.calls.Add(1)
	if cfg.Float("x") > 0.8 {
		return trial.Result{CostSeconds: 10}, trial.ErrCrash
	}
	return trial.Result{Value: cfg.Float("x"), CostSeconds: 1}, nil
}

func TestBreakerQuarantinesCrashRegion(t *testing.T) {
	inner := &crashRegionEnv{sp: space.MustNew(space.Float("x", 0, 1))}
	br := NewBreaker()
	br.FailThreshold = 2
	br.Cooldown = 100
	env := Wrap(inner, Options{Breaker: br, Sleep: noSleep})
	bad := space.Config{"x": 0.95}
	good := space.Config{"x": 0.1}
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := env.Run(ctx, bad, 1); !errors.Is(err, trial.ErrCrash) {
			t.Fatalf("want crash, got %v", err)
		}
	}
	before := inner.calls.Load()
	_, err := env.Run(ctx, bad, 1)
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("want quarantine, got %v", err)
	}
	if inner.calls.Load() != before {
		t.Fatal("quarantined trial must not touch the environment")
	}
	if env.Stats().Quarantined != 1 || br.Trips() == 0 || br.OpenRegions() != 1 {
		t.Fatalf("stats %+v, trips %d, open %d", env.Stats(), br.Trips(), br.OpenRegions())
	}
	// Other regions stay runnable.
	if _, err := env.Run(ctx, good, 1); err != nil {
		t.Fatalf("good region blocked: %v", err)
	}
}

func TestBreakerReopensAfterCooldown(t *testing.T) {
	br := NewBreaker()
	br.FailThreshold = 1
	br.Cooldown = 3
	sp := space.MustNew(space.Float("x", 0, 1))
	cfg := space.Config{"x": 0.95}
	if !br.Allow(sp, cfg) {
		t.Fatal("fresh region should be allowed")
	}
	br.RecordFailure(sp, cfg)
	if br.Allow(sp, cfg) {
		t.Fatal("tripped region should be quarantined")
	}
	for i := 0; i < 3; i++ {
		br.Allow(sp, cfg) // tick the clock past the cooldown
	}
	if !br.Allow(sp, cfg) {
		t.Fatal("region should reopen half-open after cooldown")
	}
	// Half-open: a single failure re-trips.
	br.RecordFailure(sp, cfg)
	if br.Allow(sp, cfg) {
		t.Fatal("half-open failure should re-trip immediately")
	}
	// A success closes the circuit for good.
	br.RecordSuccess(sp, cfg)
	if !br.Allow(sp, cfg) {
		t.Fatal("success should close the circuit")
	}
}

func TestFlakyHostQuarantine(t *testing.T) {
	hosts := []cloud.HostProfile{
		{Mult: 1},
		{Mult: 1, Flaky: true, FailRate: 1}, // always fails
		{Mult: 1},
	}
	br := NewBreaker()
	br.FailThreshold = 2
	br.Cooldown = 1000
	inj := NewInjector(quadEnv(), InjectorOptions{Hosts: hosts, Breaker: br, Seed: 2})
	env := Wrap(inj, Options{Retries: 3, Breaker: br, Sleep: noSleep})
	ctx := context.Background()
	for i := 0; i < 12; i++ {
		if _, err := env.Run(ctx, env.Space().Default(), 1); err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
	}
	if br.OpenHosts() != 1 {
		t.Fatalf("open hosts = %d, want 1", br.OpenHosts())
	}
	// Once quarantined the flaky host stops being scheduled: fault count
	// freezes.
	faults := inj.Stats().HostFaults
	for i := 0; i < 12; i++ {
		if _, err := env.Run(ctx, env.Space().Default(), 1); err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
	}
	if got := inj.Stats().HostFaults; got != faults {
		t.Fatalf("quarantined host still faulting: %d -> %d", faults, got)
	}
}

func TestInjectorDeterministicBySeed(t *testing.T) {
	mk := func() InjectorStats {
		inj := NewInjector(quadEnv(), InjectorOptions{
			TransientProb: 0.3, CrashProb: 0.1, StragglerProb: 0.2, CorruptProb: 0.2, Seed: 7,
		})
		for i := 0; i < 50; i++ {
			_, _ = inj.Run(context.Background(), inj.Space().Default(), 1)
		}
		return inj.Stats()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.Transients == 0 || a.Crashes == 0 || a.Stragglers == 0 || a.Corruptions == 0 {
		t.Fatalf("expected all fault kinds at these rates: %+v", a)
	}
}

// TestFaultInjectedRunMatchesFaultFreeQuality is the acceptance check: a
// tuning run over a fault-injected environment (>20% transient failures
// plus hangs) must land in the same best-config quality envelope as the
// fault-free run.
func TestFaultInjectedRunMatchesFaultFreeQuality(t *testing.T) {
	clean := quadEnv()
	o1 := optimizer.NewRandom(clean.Space(), rand.New(rand.NewSource(10)))
	cleanRep, err := trial.Run(o1, clean, trial.Options{Budget: 60})
	if err != nil {
		t.Fatal(err)
	}

	inj := NewInjector(quadEnv(), InjectorOptions{
		TransientProb: 0.25,
		HangProb:      0.05,
		HangFor:       2 * time.Millisecond,
		StragglerProb: 0.1,
		Seed:          11,
	})
	env := Wrap(inj, Options{
		Retries:      6,
		TrialTimeout: time.Second,
		Backoff:      Backoff{Base: time.Millisecond},
		Sleep:        noSleep,
	})
	o2 := optimizer.NewRandom(env.Space(), rand.New(rand.NewSource(10)))
	rep, err := trial.Run(o2, env, trial.Options{Budget: 60})
	if err != nil {
		t.Fatal(err)
	}
	if inj.Stats().Transients == 0 {
		t.Fatal("injector produced no transient faults")
	}
	if len(rep.Trials) != 60 {
		t.Fatalf("lost trials: %d", len(rep.Trials))
	}
	// Same envelope: with every transient retried away, the faulty run
	// should find an equally good optimum (quad min is 0; 0.05 is the
	// envelope random search reaches with this budget).
	if cleanRep.BestValue > 0.05 {
		t.Fatalf("clean best %v out of envelope", cleanRep.BestValue)
	}
	if rep.BestValue > 0.05 {
		t.Fatalf("faulty best %v out of envelope (clean %v)", rep.BestValue, cleanRep.BestValue)
	}
}

func TestWrapPassesThroughAbortable(t *testing.T) {
	inner := quadEnv()
	env := Wrap(inner, Options{Sleep: noSleep})
	// FuncEnv is not Abortable: RunAbortable must fall back to Run.
	res, aborted, err := env.RunAbortable(context.Background(), inner.Sp.Default(), 1, 0.001)
	if err != nil || aborted {
		t.Fatalf("fallback: %v aborted=%v", err, aborted)
	}
	if res.CostSeconds <= 0 {
		t.Fatal("no cost recorded")
	}
}
