// Package resilience hardens trial execution against the failure modes
// the tutorial's systems-challenges half (slides 65-75) says dominate
// real tuning: crashed and hanging benchmarks, transient infrastructure
// errors, stragglers, and lying measurements from flaky machines (TUNA,
// Freischuetz & Kroth 2025). It provides
//
//   - Injector: a configurable fault injector wrapping any
//     trial.Environment (transient errors, hangs, stragglers, corrupted
//     results, per-VM flakiness seeded from internal/cloud);
//   - Env (via Wrap): a fault-tolerant executor adding retry with
//     exponential backoff + jitter, per-attempt deadlines, and circuit
//     breaking;
//   - Breaker: quarantine for repeatedly-crashing config regions and
//     repeatedly-flaky hosts.
//
// The wrappers compose: Wrap(NewInjector(env, ...), ...) is the
// self-test harness; Wrap(realEnv, ...) is the production path.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"autotune/internal/space"
	"autotune/internal/trial"
)

// ErrTransient marks a retryable failure: the trial may succeed if simply
// run again (network hiccup, lost benchmark agent, flaky host). Hard
// crashes (trial.ErrCrash) are NOT transient — the configuration itself
// is at fault and retrying wastes budget.
var ErrTransient = errors.New("resilience: transient failure")

// ErrQuarantined is returned without running the trial when the circuit
// breaker has quarantined the configuration's region.
var ErrQuarantined = errors.New("resilience: region quarantined")

// IsTransient reports whether err is retryable.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// Backoff computes exponential backoff with jitter.
type Backoff struct {
	// Base is the first delay (default 100ms).
	Base time.Duration
	// Factor is the per-attempt multiplier (default 2).
	Factor float64
	// Max caps the delay (default 10s).
	Max time.Duration
	// Jitter is the symmetric random fraction applied to each delay
	// (default 0.2 → ±20%); it decorrelates retry storms.
	Jitter float64
}

// Delay returns the backoff before retry number attempt (0-based). A nil
// rng disables jitter.
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	factor := b.Factor
	if factor < 1 {
		factor = 2
	}
	max := b.Max
	if max <= 0 {
		max = 10 * time.Second
	}
	jitter := b.Jitter
	if jitter <= 0 {
		jitter = 0.2
	}
	d := float64(base) * math.Pow(factor, float64(attempt))
	if d > float64(max) {
		d = float64(max)
	}
	if rng != nil {
		d *= 1 + jitter*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}

// Options configures the fault-tolerant executor.
type Options struct {
	// Retries is how many times a transient or timed-out attempt is
	// retried (default 0 = fail fast).
	Retries int
	// Backoff shapes the delay between retries.
	Backoff Backoff
	// TrialTimeout bounds each attempt with a context deadline
	// (0 = unbounded). Attempts killed by it surface as
	// context.DeadlineExceeded, which trial.Run counts as a timeout and
	// can respond to with fidelity degradation.
	TrialTimeout time.Duration
	// Breaker quarantines crashing config regions (nil = no quarantine).
	Breaker *Breaker
	// Sleep waits between retries (default: real sleep, cancellable).
	// Simulations override it to avoid wall-clock delays.
	Sleep func(ctx context.Context, d time.Duration)
	// Seed drives backoff jitter.
	Seed int64
}

// Stats counts what the executor absorbed.
type Stats struct {
	Attempts, Retries, Timeouts, Quarantined int
}

// Env is a fault-tolerant trial.Environment: it wraps an inner
// environment with per-attempt deadlines, retry with exponential backoff
// + jitter for transient failures and timeouts, and circuit breaking for
// crash regions. Backoff delays are charged to the trial's CostSeconds so
// reports stay honest about where wall clock went.
type Env struct {
	inner trial.Environment
	opts  Options

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// Wrap hardens env with the given options.
func Wrap(env trial.Environment, opts Options) *Env {
	if opts.Sleep == nil {
		opts.Sleep = func(ctx context.Context, d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
			case <-t.C:
			}
		}
	}
	return &Env{inner: env, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Space implements trial.Environment.
func (e *Env) Space() *space.Space { return e.inner.Space() }

// Stats returns a snapshot of the executor's counters.
func (e *Env) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Run implements trial.Environment.
func (e *Env) Run(ctx context.Context, cfg space.Config, fidelity float64) (trial.Result, error) {
	res, _, err := e.run(ctx, cfg, fidelity, nil)
	return res, err
}

// RunAbortable implements trial.Abortable (falling back to plain Run when
// the inner environment cannot abort early).
func (e *Env) RunAbortable(ctx context.Context, cfg space.Config, fidelity, abortAbove float64) (trial.Result, bool, error) {
	return e.run(ctx, cfg, fidelity, &abortAbove)
}

func (e *Env) run(ctx context.Context, cfg space.Config, fidelity float64, abortAbove *float64) (trial.Result, bool, error) {
	sp := e.inner.Space()
	if e.opts.Breaker != nil && !e.opts.Breaker.Allow(sp, cfg) {
		e.mu.Lock()
		e.stats.Quarantined++
		e.mu.Unlock()
		// Cheap synthetic crash: the penalty imputation keeps the
		// optimizer away without burning benchmark time.
		return trial.Result{CostSeconds: 1}, false, ErrQuarantined
	}
	totalCost := 0.0
	for attempt := 0; ; attempt++ {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if e.opts.TrialTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, e.opts.TrialTimeout)
		}
		res, aborted, err := e.attempt(actx, cfg, fidelity, abortAbove)
		cancel()
		e.mu.Lock()
		e.stats.Attempts++
		e.mu.Unlock()
		totalCost += res.CostSeconds
		res.CostSeconds = totalCost
		if err == nil {
			if e.opts.Breaker != nil {
				e.opts.Breaker.RecordSuccess(sp, cfg)
			}
			return res, aborted, nil
		}
		if ctx.Err() != nil {
			// The caller's context died (cancelled run, outer deadline):
			// not the trial's fault, never retried, never recorded.
			return res, false, ctx.Err()
		}
		timedOut := errors.Is(err, context.DeadlineExceeded)
		if timedOut {
			e.mu.Lock()
			e.stats.Timeouts++
			e.mu.Unlock()
		}
		if !timedOut && !IsTransient(err) {
			// Hard crash: the configuration is at fault, retries cannot
			// help, and the breaker learns the region.
			if e.opts.Breaker != nil {
				e.opts.Breaker.RecordFailure(sp, cfg)
			}
			return res, false, err
		}
		if attempt >= e.opts.Retries {
			if e.opts.Breaker != nil {
				e.opts.Breaker.RecordFailure(sp, cfg)
			}
			if timedOut {
				return res, false, fmt.Errorf("resilience: trial timed out (%d attempts): %w",
					attempt+1, context.DeadlineExceeded)
			}
			return res, false, fmt.Errorf("resilience: giving up after %d attempts: %w", attempt+1, err)
		}
		e.mu.Lock()
		e.stats.Retries++
		d := e.opts.Backoff.Delay(attempt, e.rng)
		e.mu.Unlock()
		e.opts.Sleep(ctx, d)
		totalCost += d.Seconds()
	}
}

func (e *Env) attempt(ctx context.Context, cfg space.Config, fidelity float64, abortAbove *float64) (trial.Result, bool, error) {
	if abortAbove != nil {
		if ab, ok := e.inner.(trial.Abortable); ok {
			return ab.RunAbortable(ctx, cfg, fidelity, *abortAbove)
		}
	}
	res, err := e.inner.Run(ctx, cfg, fidelity)
	return res, false, err
}
