package simsys

import (
	"fmt"
	"math"
	"math/rand"

	"autotune/internal/space"
	"autotune/internal/workload"
)

// DBMS is the analytic database model: a 21-knob configuration space with
// MySQL/PostgreSQL-style semantics over a buffer-pool + WAL + worker-pool
// architecture. The model computes per-operation service times from cache
// hit rates, I/O queueing, log flushing, checkpoint pressure, and thread
// contention, then derives throughput and latency with an M/M/1-style
// queue. Deliberately-poor defaults (tiny buffer pool, fsync on every
// commit, four I/O threads) reproduce the tutorial's "4-10x from tuning"
// claim; memory overcommit crashes the system, giving tuners a constraint
// cliff to learn.
type DBMS struct {
	// Spec is the host the database runs on.
	Spec SystemSpec
	// NoiseSigma is the full-fidelity lognormal noise level (default 0.02).
	NoiseSigma float64

	space *space.Space
}

// NewDBMS returns a DBMS on the given host.
func NewDBMS(spec SystemSpec) *DBMS {
	d := &DBMS{Spec: spec, NoiseSigma: 0.02}
	d.space = buildDBMSSpace()
	return d
}

func buildDBMSSpace() *space.Space {
	return space.MustNew(
		space.Int("buffer_pool_mb", 64, 16384).WithLog().WithDefault(int64(128)),
		space.Int("log_file_mb", 16, 4096).WithLog().WithDefault(int64(48)),
		space.Int("io_threads", 1, 64).WithDefault(int64(4)),
		space.Int("worker_threads", 1, 256).WithLog().WithDefault(int64(16)),
		space.Int("query_cache_mb", 0, 1024).WithDefault(int64(0)).WithSpecial(0),
		space.Int("checkpoint_secs", 5, 900).WithLog().WithDefault(int64(30)),
		space.Categorical("flush_method",
			"fsync", "O_DSYNC", "littlesync", "O_DIRECT", "O_DIRECT_NO_FSYNC", "nosync").
			WithDefault("fsync"),
		space.Bool("compression"),
		space.Int("join_buffer_kb", 64, 65536).WithLog().WithDefault(int64(256)),
		space.Int("sort_buffer_kb", 64, 65536).WithLog().WithDefault(int64(512)),
		space.Int("tmp_table_mb", 1, 1024).WithLog().WithDefault(int64(16)),
		space.Int("max_connections", 10, 2000).WithDefault(int64(150)),
		space.Bool("prefetch"),
		space.Int("wal_buffer_kb", 64, 16384).WithLog().WithDefault(int64(512)),
		space.Int("lock_wait_ms", 10, 10000).WithLog().WithDefault(int64(1000)),
		space.Categorical("page_kb", "4", "8", "16").WithDefault("16"),
		space.Int("stats_sample", 1, 100).WithDefault(int64(20)),
		space.Int("vacuum_cost_limit", 100, 10000).WithLog().WithDefault(int64(200)),
		space.Bool("jit"),
		space.Int("jit_above_cost_k", 1, 1000).WithLog().WithDefault(int64(100)).
			WithParent("jit", "true"),
		space.Int("net_buffer_kb", 16, 4096).WithLog().WithDefault(int64(64)),
	)
}

// Name implements System.
func (d *DBMS) Name() string { return "simdb" }

// Space implements System.
func (d *DBMS) Space() *space.Space { return d.space }

// MemoryFootprintMB returns the model's total memory demand for a config
// given a client count — exposed so constraint-aware tuning (experiment
// F11) can declare it as an explicit space.Constraint instead of learning
// the crash cliff.
func (d *DBMS) MemoryFootprintMB(cfg space.Config, clients int) float64 {
	conns := math.Min(float64(cfg.Int("max_connections")), float64(clients))
	perConn := (float64(cfg.Int("join_buffer_kb")) +
		float64(cfg.Int("sort_buffer_kb")) +
		float64(cfg.Int("net_buffer_kb"))) / 1024
	perConn += float64(cfg.Int("tmp_table_mb"))
	return float64(cfg.Int("buffer_pool_mb")) +
		float64(cfg.Int("query_cache_mb")) +
		float64(cfg.Int("wal_buffer_kb"))/1024 +
		conns*perConn +
		512 // fixed server overhead
}

// MemoryConstraint returns a space constraint enforcing the crash boundary
// for a given client count, for constrained-optimization experiments.
func (d *DBMS) MemoryConstraint(clients int) space.Constraint {
	return space.Constraint{
		Name: "memory_footprint <= ram",
		Check: func(cfg space.Config) bool {
			return d.MemoryFootprintMB(cfg, clients) <= d.Spec.RAMMB
		},
	}
}

// ImportantKnobs returns the model's ground-truth influential knobs for a
// workload, most important first — used to validate knob-importance
// rankings (experiment F15).
func (d *DBMS) ImportantKnobs(wl workload.Descriptor) []string {
	if wl.WriteFraction() > 0.3 {
		// Write-heavy: the commit path (group commit via the WAL buffer,
		// then the flush method) and the buffer pool dominate.
		return []string{"buffer_pool_mb", "wal_buffer_kb", "flush_method", "worker_threads", "io_threads"}
	}
	if wl.ScanRatio > 0.5 {
		return []string{"buffer_pool_mb", "io_threads", "worker_threads", "prefetch", "jit"}
	}
	return []string{"buffer_pool_mb", "query_cache_mb", "io_threads", "worker_threads", "page_kb"}
}

var flushFactor = map[string]float64{
	"fsync":             1.0,
	"O_DSYNC":           0.72,
	"littlesync":        0.55,
	"O_DIRECT":          0.62,
	"O_DIRECT_NO_FSYNC": 0.45,
	"nosync":            0.30,
}

// Run implements System.
func (d *DBMS) Run(cfg space.Config, wl workload.Descriptor, fidelity float64, rng *rand.Rand) (Metrics, error) {
	if err := d.space.Validate(cfg); err != nil {
		return Metrics{}, fmt.Errorf("simsys: %w", err)
	}
	if err := wl.Validate(); err != nil {
		return Metrics{}, fmt.Errorf("simsys: %w", err)
	}
	if fidelity <= 0 || fidelity > 1 {
		fidelity = 1
	}
	// --- Crash region: memory overcommit takes the server down. ---
	if d.MemoryFootprintMB(cfg, wl.Clients) > d.Spec.RAMMB {
		return Metrics{}, fmt.Errorf("%w: OOM (footprint %.0f MB > RAM %.0f MB)",
			ErrCrash, d.MemoryFootprintMB(cfg, wl.Clients), d.Spec.RAMMB)
	}

	// --- Fidelity bias: a short benchmark touches a shrunken working set
	// (caches look better than steady state) — the tutorial's SF1-vs-SF100
	// transferability caveat. ---
	ws := wl.WorkingSetMB * (0.35 + 0.65*fidelity)

	// --- Buffer pool hit rate. ---
	bp := float64(cfg.Int("buffer_pool_mb"))
	bpEff := bp
	compressCPU := 0.0
	if cfg.Bool("compression") {
		bpEff *= 1.6 // compressed pages stretch capacity...
		compressCPU = 0.004
	}
	cover := clamp(bpEff/math.Max(ws, 1), 0, 1)
	// Skewed access concentrates hits: higher exponent = faster saturation.
	hit := 1 - math.Pow(1-cover, 1+2*wl.Skew)
	hit = clamp(hit, 0, 0.999)

	// --- I/O path. ---
	pageKB := 16.0
	switch cfg.Str("page_kb") {
	case "4":
		pageKB = 4
	case "8":
		pageKB = 8
	}
	ioThreads := float64(cfg.Int("io_threads"))
	// Random reads: need ~8 in-flight requests to saturate a cloud SSD.
	effIOPS := d.Spec.DiskIOPS * clamp(ioThreads/8, 0.15, 1)
	missReadMS := 1000 / effIOPS * (pageKB/16*0.3 + 0.7)
	// Sequential scans: bandwidth-bound; prefetch doubles effective depth.
	seqMBps := d.Spec.DiskMBps * clamp(ioThreads/4, 0.25, 1)
	if cfg.Bool("prefetch") {
		seqMBps *= 1.6
	}

	// --- Per-op CPU. ---
	baseCPU := 0.012 // ms per point op on one core
	if cfg.Int("stats_sample") > 80 {
		baseCPU *= 1.03 // planner overhead: tiny, a decoy knob
	}

	// --- Log/commit path for writes. ---
	ff := flushFactor[cfg.Str("flush_method")]
	commitMS := 0.05 + 0.9*ff // device flush latency
	walKB := float64(cfg.Int("wal_buffer_kb"))
	if walKB < 256 {
		commitMS *= 1 + 0.4*(256-walKB)/256 // undersized WAL buffer stalls
	}
	// Checkpoint pressure: frequent checkpoints or a small redo log force
	// extra page writes that steal I/O bandwidth from the read path.
	ckSecs := float64(cfg.Int("checkpoint_secs"))
	logMB := float64(cfg.Int("log_file_mb"))
	ckPressure := (30/ckSecs)*0.5 + math.Sqrt(96/math.Max(logMB, 16))*0.5
	ckPressure = clamp(ckPressure, 0.1, 3)
	writeAmp := 1 + 0.25*ckPressure*wl.WriteFraction()

	// --- Query cache (read-mostly workloads only). ---
	qc := float64(cfg.Int("query_cache_mb"))
	qcHit := 0.0
	if qc > 0 {
		invalidation := clamp(1-4*wl.WriteFraction(), 0, 1)
		qcHit = qc / (qc + 96) * 0.55 * invalidation
		baseCPU *= 1.04 // cache maintenance overhead
	}

	// --- Concurrency: effective parallelism from worker pool vs cores. ---
	wt := float64(cfg.Int("worker_threads"))
	cores := float64(d.Spec.CPUCores)
	effPar := math.Min(wt, cores)
	if wt > 4*cores { // context-switch thrash
		effPar *= 1 / (1 + (wt-4*cores)/(8*cores))
	}
	if wt < cores { // under-provisioned pool leaves cores idle
		effPar = wt
	}
	// Client admission: too-few connections cap achievable concurrency
	// and add per-request multiplexing overhead.
	conns := math.Min(float64(cfg.Int("max_connections")), float64(wl.Clients))
	effPar = math.Min(effPar, conns)
	effPar = math.Max(effPar, 1)

	// --- Group commit: concurrent commits share one device flush, up to
	// what the WAL buffer can batch. ---
	group := clamp(math.Min(effPar, walKB/128), 1, 16)

	// --- Assemble per-op service times (ms on one worker). ---
	recKB := wl.RecordBytes / 1024
	readMS := (baseCPU + compressCPU*(1-hit)) + (1-hit)*missReadMS*writeAmp
	readMS *= 1 - qcHit
	commitPerOpMS := commitMS * writeAmp / group
	writeMS := baseCPU*1.4 + compressCPU + (1-hit)*missReadMS*0.5 + commitPerOpMS
	scanRows := math.Max(wl.ScanLength, 1)
	scanCPUms := scanRows * 0.0016
	if d.jitActive(cfg, scanRows) {
		scanCPUms *= 0.55 // JIT-compiled expression evaluation
	}
	scanIOms := (1 - hit) * scanRows * recKB / 1024 / seqMBps * 1000
	// Sort/join spill: scans that exceed the sort buffer hit temp disk.
	sortKB := float64(cfg.Int("sort_buffer_kb"))
	spillKB := scanRows * recKB
	if spillKB > sortKB {
		scanIOms += (spillKB - sortKB) / 1024 / seqMBps * 1000 * 0.8
	}
	scanMS := scanCPUms + scanIOms
	rmwMS := readMS + writeMS

	mixMS := wl.ReadRatio*readMS + wl.UpdateRatio*writeMS +
		wl.InsertRatio*writeMS*1.15 + wl.ScanRatio*scanMS + wl.RMWRatio()*rmwMS

	// --- Throughput: the tightest of three bottlenecks. ---
	// (1) Random-read IOPS consumed by buffer-pool misses.
	pointFrac := wl.ReadRatio + wl.UpdateRatio + wl.InsertRatio + wl.RMWRatio()*2
	scanPages := scanRows * recKB / pageKB
	pagesPerOp := (1 - hit) * (pointFrac + wl.ScanRatio*scanPages*0.2)
	ioCap := math.Inf(1)
	if pagesPerOp > 1e-9 {
		ioCap = effIOPS / pagesPerOp
	}
	// (2) Log-device flushes amortized by group commit.
	logCap := math.Inf(1)
	if wf := wl.WriteFraction(); wf > 1e-9 {
		flushesPerSec := 1000 / (commitMS * writeAmp)
		logCap = flushesPerSec * group / wf
	}
	// (3) CPU-side service across the worker pool.
	cpuMS := wl.ReadRatio*baseCPU + (wl.UpdateRatio+wl.InsertRatio+wl.RMWRatio())*baseCPU*1.6 +
		wl.ScanRatio*scanCPUms + compressCPU
	cpuCap := effPar * 1000 / math.Max(cpuMS, 1e-6)
	capacity := math.Min(ioCap, math.Min(logCap, cpuCap)) * 0.97

	// Demand: open loop at the offered rate, or closed loop (clients drive
	// back to back, the TPC-style benchmark mode) when RequestRate == 0.
	demand := wl.RequestRate
	if demand <= 0 {
		demand = float64(maxInt(wl.Clients, 1)) * 1000 / math.Max(mixMS, 1e-6)
	}
	rho := demand / capacity
	achieved := math.Min(demand, capacity)
	latency := mm1Latency(mixMS, rho)
	// Connection starvation: clients queueing for a connection slot wait
	// roughly a service time per client ahead of them in line.
	if float64(wl.Clients) > conns && conns > 0 {
		latency += (float64(wl.Clients)/conns - 1) * mixMS * 0.5
	}
	offered := demand
	// Lock contention adds latency for write-heavy skewed loads.
	lockMS := float64(cfg.Int("lock_wait_ms"))
	contention := wl.WriteFraction() * wl.Skew * clamp(rho, 0, 1)
	latency += contention * math.Min(lockMS, 20) * 0.02
	p95 := latency * (1.6 + 1.2*clamp(rho, 0, 1))

	nf := noiseFactor(d.NoiseSigma, fidelity, rng)
	m := Metrics{
		ThroughputOps:  achieved / nf,
		LatencyMS:      latency * nf,
		P95MS:          p95 * nf,
		CPUUtil:        clamp(rho, 0, 1),
		IOUtil:         clamp((1-hit)*offered*recKB/1024/d.Spec.DiskMBps, 0, 1),
		CostUSDPerHour: d.Spec.USDPerHour,
	}
	return m, nil
}

func (d *DBMS) jitActive(cfg space.Config, scanRows float64) bool {
	if !cfg.Bool("jit") || !d.space.Active(cfg, "jit_above_cost_k") {
		return false
	}
	// JIT kicks in only when the query cost exceeds the threshold.
	return scanRows >= float64(cfg.Int("jit_above_cost_k"))*10
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
