package simsys

import (
	"errors"
	"math"
	"testing"

	"autotune/internal/space"
	"autotune/internal/testfunc"
	"autotune/internal/workload"
)

// run executes deterministically (no noise) for shape assertions.
func run(t *testing.T, sys System, cfg space.Config, wl workload.Descriptor) Metrics {
	t.Helper()
	m, err := sys.Run(cfg, wl, 1, nil)
	if err != nil {
		t.Fatalf("%s: %v", sys.Name(), err)
	}
	return m
}

func tunedDBMSConfig(d *DBMS) space.Config {
	cfg := d.Space().Default()
	cfg["buffer_pool_mb"] = int64(8192)
	cfg["log_file_mb"] = int64(2048)
	cfg["io_threads"] = int64(16)
	cfg["worker_threads"] = int64(32)
	cfg["flush_method"] = "O_DIRECT_NO_FSYNC"
	cfg["checkpoint_secs"] = int64(300)
	cfg["wal_buffer_kb"] = int64(4096)
	cfg["max_connections"] = int64(400)
	cfg["prefetch"] = true
	return cfg
}

func TestDBMSDefaultsValid(t *testing.T) {
	d := NewDBMS(MediumVM())
	if err := d.Space().Validate(d.Space().Default()); err != nil {
		t.Fatal(err)
	}
	if d.Space().Dim() != 21 {
		t.Fatalf("dim = %d", d.Space().Dim())
	}
}

func TestDBMSTunedVsDefaultThroughputBand(t *testing.T) {
	// The tutorial's 4-10x claim: tuned throughput on TPC-C-like load
	// should be several times the default's.
	d := NewDBMS(MediumVM())
	wl := workload.TPCC()
	wl.RequestRate = 0 // closed loop: the benchmark drives as hard as it can
	def := run(t, d, d.Space().Default(), wl)
	tuned := run(t, d, tunedDBMSConfig(d), wl)
	ratio := tuned.ThroughputOps / def.ThroughputOps
	if ratio < 3 || ratio > 15 {
		t.Fatalf("tuned/default throughput ratio = %v, want within the 3-15x envelope (def %v tuned %v)",
			ratio, def.ThroughputOps, tuned.ThroughputOps)
	}
}

func TestDBMSBufferPoolHelps(t *testing.T) {
	d := NewDBMS(MediumVM())
	wl := workload.YCSBB()
	small := d.Space().Default()
	small["buffer_pool_mb"] = int64(64)
	big := d.Space().Default()
	big["buffer_pool_mb"] = int64(8192)
	if !(run(t, d, big, wl).LatencyMS < run(t, d, small, wl).LatencyMS) {
		t.Fatal("bigger buffer pool should reduce latency")
	}
}

func TestDBMSFlushMethodOrdering(t *testing.T) {
	d := NewDBMS(MediumVM())
	wl := workload.YCSBA() // write-heavy
	lat := func(method string) float64 {
		cfg := d.Space().Default()
		cfg["flush_method"] = method
		return run(t, d, cfg, wl).LatencyMS
	}
	if !(lat("nosync") < lat("O_DIRECT_NO_FSYNC") && lat("O_DIRECT_NO_FSYNC") < lat("fsync")) {
		t.Fatalf("flush ordering wrong: nosync=%v odnf=%v fsync=%v",
			lat("nosync"), lat("O_DIRECT_NO_FSYNC"), lat("fsync"))
	}
}

func TestDBMSQueryCacheWorkloadDependence(t *testing.T) {
	d := NewDBMS(MediumVM())
	withQC := d.Space().Default()
	withQC["query_cache_mb"] = int64(512)
	noQC := d.Space().Default()
	// Read-only: cache helps.
	rd := workload.YCSBC()
	if !(run(t, d, withQC, rd).LatencyMS < run(t, d, noQC, rd).LatencyMS) {
		t.Fatal("query cache should help read-only load")
	}
	// Write-heavy: invalidation nullifies the benefit (and adds overhead).
	wr := workload.YCSBA()
	if run(t, d, withQC, wr).LatencyMS < run(t, d, noQC, wr).LatencyMS*0.98 {
		t.Fatal("query cache should not help write-heavy load")
	}
}

func TestDBMSOOMCrash(t *testing.T) {
	d := NewDBMS(SmallVM()) // 8 GB RAM
	cfg := d.Space().Default()
	cfg["buffer_pool_mb"] = int64(16384)
	_, err := d.Run(cfg, workload.TPCC(), 1, nil)
	if !errors.Is(err, ErrCrash) {
		t.Fatalf("err = %v, want ErrCrash", err)
	}
}

func TestDBMSMemoryConstraintMatchesCrash(t *testing.T) {
	d := NewDBMS(SmallVM())
	wl := workload.TPCC()
	c := d.MemoryConstraint(wl.Clients)
	ok := d.Space().Default()
	if !c.Check(ok) {
		t.Fatal("default should satisfy the memory constraint")
	}
	bad := d.Space().Default()
	bad["buffer_pool_mb"] = int64(16384)
	if c.Check(bad) {
		t.Fatal("oversized buffer pool should violate the constraint")
	}
}

func TestDBMSConnectionCap(t *testing.T) {
	d := NewDBMS(MediumVM())
	wl := workload.TPCC() // 128 clients
	few := d.Space().Default()
	few["max_connections"] = int64(10)
	many := d.Space().Default()
	many["max_connections"] = int64(400)
	if !(run(t, d, many, wl).LatencyMS < run(t, d, few, wl).LatencyMS) {
		t.Fatal("connection starvation should inflate latency")
	}
}

func TestDBMSJITConditional(t *testing.T) {
	d := NewDBMS(MediumVM())
	wl := workload.TPCH(1)
	off := d.Space().Default()
	on := d.Space().Default()
	on["jit"] = true
	on["jit_above_cost_k"] = int64(1)
	if !(run(t, d, on, wl).LatencyMS < run(t, d, off, wl).LatencyMS) {
		t.Fatal("JIT should speed up scan-heavy load")
	}
	// jit=false makes the threshold knob inert.
	a := d.Space().Default()
	a["jit_above_cost_k"] = int64(1)
	b := d.Space().Default()
	b["jit_above_cost_k"] = int64(1000)
	if run(t, d, a, wl).LatencyMS != run(t, d, b, wl).LatencyMS {
		t.Fatal("inactive conditional knob changed behaviour")
	}
}

func TestDBMSCheckpointAndLogSize(t *testing.T) {
	d := NewDBMS(MediumVM())
	wl := workload.YCSBA()
	hot := d.Space().Default()
	hot["checkpoint_secs"] = int64(5)
	hot["log_file_mb"] = int64(16)
	calm := d.Space().Default()
	calm["checkpoint_secs"] = int64(600)
	calm["log_file_mb"] = int64(2048)
	if !(run(t, d, calm, wl).LatencyMS < run(t, d, hot, wl).LatencyMS) {
		t.Fatal("aggressive checkpointing should hurt write-heavy latency")
	}
}

func TestDBMSFidelityBiasAndNoise(t *testing.T) {
	d := NewDBMS(MediumVM())
	wl := workload.TPCC()
	cfg := d.Space().Default()
	full := run(t, d, cfg, wl)
	m, err := d.Run(cfg, wl, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Short benchmark shrinks the working set -> better hit rate -> lower
	// latency than steady state: low fidelity is optimistic.
	if !(m.LatencyMS < full.LatencyMS) {
		t.Fatalf("low fidelity %v should look faster than full %v", m.LatencyMS, full.LatencyMS)
	}
}

func TestDBMSInvalidInputs(t *testing.T) {
	d := NewDBMS(MediumVM())
	bad := d.Space().Default()
	bad["buffer_pool_mb"] = int64(1) // below min
	if _, err := d.Run(bad, workload.TPCC(), 1, nil); err == nil {
		t.Fatal("invalid config should error")
	}
	if _, err := d.Run(d.Space().Default(), workload.Descriptor{ReadRatio: 5}, 1, nil); err == nil {
		t.Fatal("invalid workload should error")
	}
}

func TestDBMSImportantKnobs(t *testing.T) {
	d := NewDBMS(MediumVM())
	for _, wl := range []workload.Descriptor{workload.TPCC(), workload.YCSBC(), workload.TPCH(1)} {
		knobs := d.ImportantKnobs(wl)
		if len(knobs) < 3 {
			t.Fatalf("%s: %v", wl.Name, knobs)
		}
		if knobs[0] != "buffer_pool_mb" {
			t.Fatalf("%s: first knob = %s", wl.Name, knobs[0])
		}
		for _, k := range knobs {
			if _, ok := d.Space().Param(k); !ok {
				t.Fatalf("ground-truth knob %q not in space", k)
			}
		}
	}
}

func TestRedisSchedCurveDominates(t *testing.T) {
	r := NewRedis(MediumVM())
	wl := workload.YCSBB()
	at := func(ns int64) float64 {
		cfg := r.Space().Default()
		cfg["sched_migration_cost_ns"] = ns
		return run(t, r, cfg, wl).P95MS
	}
	if !(at(testfunc.SchedDipCenterNS) < at(50_000) && at(testfunc.SchedDipCenterNS) < at(1_000_000)) {
		t.Fatalf("dip missing: dip=%v 50k=%v 1M=%v", at(testfunc.SchedDipCenterNS), at(50_000), at(1_000_000))
	}
	// The tutorial's "68% reduction" shape: dip vs plateau.
	red := (at(50_000) - at(testfunc.SchedDipCenterNS)) / at(50_000)
	if red < 0.5 {
		t.Fatalf("reduction = %v, want >= 0.5", red)
	}
}

func TestRedisSecondaryKnobs(t *testing.T) {
	r := NewRedis(MediumVM())
	wl := workload.YCSBA()
	base := r.Space().Default()
	nodelay := base.Clone()
	nodelay["tcp_nodelay"] = true
	if !(run(t, r, nodelay, wl).P95MS < run(t, r, base, wl).P95MS) {
		t.Fatal("tcp_nodelay should help")
	}
	always := base.Clone()
	always["appendfsync"] = "always"
	noSync := base.Clone()
	noSync["appendfsync"] = "no"
	if !(run(t, r, noSync, wl).P95MS < run(t, r, always, wl).P95MS) {
		t.Fatal("appendfsync=always should hurt write-heavy tails")
	}
}

func TestSparkMoreExecutorsFaster(t *testing.T) {
	s := NewSpark(MediumVM())
	wl := workload.TPCH(10)
	small := s.Space().Default()
	small["executors"] = int64(2)
	big := s.Space().Default()
	big["executors"] = int64(20)
	big["executor_mem_mb"] = int64(8192)
	mSmall := run(t, s, small, wl)
	mBig := run(t, s, big, wl)
	if !(mBig.LatencyMS < mSmall.LatencyMS) {
		t.Fatal("more executors should cut runtime")
	}
	// But cost scales with executors.
	if !(mBig.CostUSDPerHour > mSmall.CostUSDPerHour) {
		t.Fatal("more executors should cost more")
	}
}

func TestSparkShufflePartitionsUShape(t *testing.T) {
	s := NewSpark(MediumVM())
	wl := workload.TPCH(10)
	at := func(p int64) float64 {
		cfg := s.Space().Default()
		cfg["executors"] = int64(8)
		cfg["shuffle_partitions"] = p
		return run(t, s, cfg, wl).LatencyMS
	}
	// Sweet spot near 3 partitions/core (8 execs * 8 cores * 3 = 192).
	if !(at(192) < at(8) && at(192) < at(2048)) {
		t.Fatalf("U-shape missing: 192=%v 8=%v 2048=%v", at(192), at(8), at(2048))
	}
}

func TestVMByName(t *testing.T) {
	if VMByName("small").CPUCores != 2 || VMByName("large").CPUCores != 32 {
		t.Fatal("vm specs")
	}
	if VMByName("bogus").CPUCores != 8 {
		t.Fatal("unknown should default to medium")
	}
}

func TestNoiseFactorProperties(t *testing.T) {
	if noiseFactor(0.05, 1, nil) != 1 {
		t.Fatal("nil rng should disable noise")
	}
	if noiseFactor(0, 1, nil) != 1 {
		t.Fatal("zero sigma should disable noise")
	}
}

func TestMM1Latency(t *testing.T) {
	if mm1Latency(1, 0) != 1 {
		t.Fatal("idle latency should equal service time")
	}
	if !(mm1Latency(1, 0.9) > mm1Latency(1, 0.5)) {
		t.Fatal("latency should grow with utilization")
	}
	if math.IsInf(mm1Latency(1, 1.5), 0) {
		t.Fatal("overload should clamp, not blow up")
	}
}
