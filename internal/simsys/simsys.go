// Package simsys provides analytic response-surface models of the tunable
// systems the tutorial's examples target: a DBMS (MySQL/PostgreSQL-style
// knobs, OLTP and OLAP workloads), a Redis-on-Linux kernel-tuning model
// (the running example), and a Spark-like batch job (the motivating tuning
// game). Real systems are unavailable in this environment; these models
// substitute for them (see DESIGN.md) by encoding the response-surface
// *structure* that the tutorial's experiments depend on: a few dominant
// knobs, interactions, constraint cliffs where configurations crash,
// categorical choices with distinct regimes, and noise that scales with
// measurement fidelity.
//
// All models are deterministic given (config, workload, fidelity, rng) and
// cheap to evaluate, so experiments can average over many seeds.
package simsys

import (
	"errors"
	"math"
	"math/rand"

	"autotune/internal/space"
	"autotune/internal/workload"
)

// ErrCrash is returned when a configuration crashes the simulated system
// (e.g. memory overcommit). Tuners should treat it as a failed trial.
var ErrCrash = errors.New("simsys: configuration crashed the system")

// Metrics is the result of one benchmark run.
type Metrics struct {
	// ThroughputOps is achieved ops/sec (or queries/sec).
	ThroughputOps float64
	// LatencyMS is the mean request latency in milliseconds.
	LatencyMS float64
	// P95MS is the 95th-percentile latency in milliseconds.
	P95MS float64
	// CPUUtil and IOUtil are utilizations in [0, 1].
	CPUUtil, IOUtil float64
	// CostUSDPerHour is the (spec-derived) infrastructure cost.
	CostUSDPerHour float64
}

// System is a tunable simulated system.
type System interface {
	// Name identifies the system.
	Name() string
	// Space returns the knob space.
	Space() *space.Space
	// Run benchmarks a configuration under a workload at a fidelity in
	// (0, 1] (1 = full-length benchmark). It returns ErrCrash for
	// configurations that take the system down.
	Run(cfg space.Config, wl workload.Descriptor, fidelity float64, rng *rand.Rand) (Metrics, error)
}

// SystemSpec describes the host executing the system.
type SystemSpec struct {
	// CPUCores is the number of cores.
	CPUCores int
	// RAMMB is physical memory.
	RAMMB float64
	// DiskMBps is sequential disk bandwidth; DiskIOPS random-read ops/sec.
	DiskMBps float64
	DiskIOPS float64
	// NetworkMBps is NIC bandwidth.
	NetworkMBps float64
	// USDPerHour is the instance price.
	USDPerHour float64
}

// MediumVM is the default evaluation host: a typical 8-core cloud VM with
// a mid-range SSD.
func MediumVM() SystemSpec {
	return SystemSpec{
		CPUCores: 8, RAMMB: 32768,
		DiskMBps: 400, DiskIOPS: 8000,
		NetworkMBps: 1200, USDPerHour: 0.384,
	}
}

// SmallVM is a 2-core budget instance.
func SmallVM() SystemSpec {
	return SystemSpec{
		CPUCores: 2, RAMMB: 8192,
		DiskMBps: 150, DiskIOPS: 3000,
		NetworkMBps: 400, USDPerHour: 0.096,
	}
}

// LargeVM is a 32-core instance.
func LargeVM() SystemSpec {
	return SystemSpec{
		CPUCores: 32, RAMMB: 131072,
		DiskMBps: 1200, DiskIOPS: 40000,
		NetworkMBps: 4000, USDPerHour: 1.536,
	}
}

// VMByName maps a size name to a spec; it returns MediumVM for unknown
// names.
func VMByName(name string) SystemSpec {
	switch name {
	case "small":
		return SmallVM()
	case "large":
		return LargeVM()
	default:
		return MediumVM()
	}
}

// noiseFactor returns a multiplicative lognormal noise term whose standard
// deviation shrinks with the square root of fidelity (longer benchmarks
// average more).
func noiseFactor(sigma, fidelity float64, rng *rand.Rand) float64 {
	if sigma <= 0 || rng == nil {
		return 1
	}
	if fidelity <= 0 {
		fidelity = 0.01
	}
	if fidelity > 1 {
		fidelity = 1
	}
	s := sigma / math.Sqrt(fidelity)
	return math.Exp(rng.NormFloat64()*s - s*s/2)
}

// mm1Latency returns the M/M/1-style latency multiplier for utilization
// rho, clamped to avoid infinities at saturation.
func mm1Latency(service, rho float64) float64 {
	if rho >= 0.99 {
		rho = 0.99
	}
	if rho < 0 {
		rho = 0
	}
	return service / (1 - rho)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
