package simsys

import (
	"fmt"
	"math"
	"math/rand"

	"autotune/internal/space"
	"autotune/internal/testfunc"
	"autotune/internal/workload"
)

// Redis models the tutorial's running example (slides 26-48): a Redis
// server on Linux whose tail latency is tuned through kernel and server
// knobs. The dominant knob is sched_migration_cost_ns, whose response
// follows the 1-D curve from the slides (plateau, sharp dip near 450k,
// slow rise); secondary knobs (io-threads, tcp-nodelay, appendfsync,
// somaxconn) contribute smaller additive and multiplicative effects.
type Redis struct {
	// Spec is the host.
	Spec SystemSpec
	// NoiseSigma is the full-fidelity lognormal noise (default 0.03 —
	// tail latency is noisier than throughput).
	NoiseSigma float64

	space *space.Space
}

// NewRedis returns the Redis/kernel model.
func NewRedis(spec SystemSpec) *Redis {
	r := &Redis{Spec: spec, NoiseSigma: 0.03}
	r.space = space.MustNew(
		space.Int("sched_migration_cost_ns", 0, 1_000_000).WithDefault(int64(500_000)),
		space.Int("io_threads", 1, 16).WithDefault(int64(1)),
		space.Bool("tcp_nodelay"),
		space.Categorical("appendfsync", "always", "everysec", "no").WithDefault("everysec"),
		space.Int("somaxconn", 128, 65535).WithLog().WithDefault(int64(128)),
		space.Bool("activedefrag"),
	)
	return r
}

// Name implements System.
func (r *Redis) Name() string { return "simredis" }

// Space implements System.
func (r *Redis) Space() *space.Space { return r.space }

// Run implements System. The objective of interest is P95MS.
func (r *Redis) Run(cfg space.Config, wl workload.Descriptor, fidelity float64, rng *rand.Rand) (Metrics, error) {
	if err := r.space.Validate(cfg); err != nil {
		return Metrics{}, fmt.Errorf("simsys: %w", err)
	}
	if fidelity <= 0 || fidelity > 1 {
		fidelity = 1
	}
	// Kernel scheduler curve: the dominant effect.
	p95 := testfunc.SchedLatencyMS(float64(cfg.Int("sched_migration_cost_ns")))

	// io-threads: parallel network I/O helps until cores are exhausted.
	cores := float64(r.Spec.CPUCores)
	iot := float64(cfg.Int("io_threads"))
	ioFactor := 1 / (1 + 0.35*math.Log1p(math.Min(iot, cores)-1))
	if iot > cores {
		ioFactor *= 1 + 0.05*(iot-cores) // oversubscription hurts tails
	}
	p95 *= ioFactor

	// Nagle off shaves fixed time from every small request.
	if cfg.Bool("tcp_nodelay") {
		p95 -= 0.04
	}
	// Persistence policy adds fsync stalls proportional to write mix.
	switch cfg.Str("appendfsync") {
	case "always":
		p95 += 0.5 * wl.WriteFraction()
	case "everysec":
		p95 += 0.05 * wl.WriteFraction()
	}
	// Accept-queue overflow under high client counts.
	if float64(wl.Clients) > float64(cfg.Int("somaxconn")) {
		p95 += 0.15
	}
	// Defrag trades a small steady overhead.
	if cfg.Bool("activedefrag") {
		p95 *= 1.03
	}
	if p95 < 0.05 {
		p95 = 0.05
	}

	svc := p95 / 3 // crude mean from tail
	capacity := cores * 1000 / svc * 8
	achieved := math.Min(wl.RequestRate, capacity)
	nf := noiseFactor(r.NoiseSigma, fidelity, rng)
	return Metrics{
		ThroughputOps:  achieved / nf,
		LatencyMS:      svc * nf,
		P95MS:          p95 * nf,
		CPUUtil:        clamp(achieved/capacity, 0, 1),
		CostUSDPerHour: r.Spec.USDPerHour,
	}, nil
}

// Spark models a Spark-like batch job (the tutorial's motivating "Spark
// tuning game", slide 14): minimize the runtime of a TPC-H-style query by
// choosing executor count/memory, shuffle partitions, and compression.
type Spark struct {
	// Spec is the cluster node type; the job may use many of them.
	Spec SystemSpec
	// NoiseSigma is the full-fidelity noise (default 0.04).
	NoiseSigma float64

	space *space.Space
}

// NewSpark returns the Spark job model.
func NewSpark(spec SystemSpec) *Spark {
	s := &Spark{Spec: spec, NoiseSigma: 0.04}
	s.space = space.MustNew(
		space.Int("executors", 1, 50).WithDefault(int64(2)),
		space.Int("executor_mem_mb", 512, 16384).WithLog().WithDefault(int64(1024)),
		space.Int("shuffle_partitions", 8, 2048).WithLog().WithDefault(int64(200)),
		space.Int("broadcast_threshold_mb", 1, 512).WithLog().WithDefault(int64(10)),
		space.Bool("shuffle_compress"),
	)
	return s
}

// Name implements System.
func (s *Spark) Name() string { return "simspark" }

// Space implements System.
func (s *Spark) Space() *space.Space { return s.space }

// Run implements System. The objective is job runtime, reported through
// LatencyMS (milliseconds); ThroughputOps is rows/sec.
func (s *Spark) Run(cfg space.Config, wl workload.Descriptor, fidelity float64, rng *rand.Rand) (Metrics, error) {
	if err := s.space.Validate(cfg); err != nil {
		return Metrics{}, fmt.Errorf("simsys: %w", err)
	}
	if fidelity <= 0 || fidelity > 1 {
		fidelity = 1
	}
	dataMB := wl.DataSizeMB * fidelity // fidelity = scale factor fraction
	exec := float64(cfg.Int("executors"))
	memMB := float64(cfg.Int("executor_mem_mb"))

	// Map phase: scan bandwidth scales with executors; insufficient memory
	// spills to disk.
	scanMBps := exec * 120
	mapSec := dataMB / scanMBps
	spillFrac := clamp((dataMB/exec/4-memMB)/math.Max(memMB, 1), 0, 2)
	mapSec *= 1 + 0.7*spillFrac

	// Shuffle phase: per-partition fixed overhead vs parallelism sweet
	// spot near 2-4 partitions per core.
	parts := float64(cfg.Int("shuffle_partitions"))
	cores := exec * float64(s.Spec.CPUCores)
	ideal := cores * 3
	imbalance := math.Abs(math.Log(parts / ideal)) // U-shaped in log space
	shuffleMB := dataMB * 0.4
	if cfg.Bool("shuffle_compress") {
		shuffleMB *= 0.45
		mapSec *= 1.06 // compression CPU
	}
	shuffleSec := shuffleMB/(exec*60)*(1+0.5*imbalance) + parts*0.004

	// Join strategy: a large-enough broadcast threshold avoids a shuffle
	// join for the dimension table (~64 MB here).
	joinSec := shuffleMB / (exec * 100)
	if float64(cfg.Int("broadcast_threshold_mb")) >= 64*fidelity {
		joinSec *= 0.45
	}

	runtimeSec := (mapSec + shuffleSec + joinSec) * noiseFactor(s.NoiseSigma, fidelity, rng)
	rows := dataMB * 1024 * 1024 / math.Max(wl.RecordBytes, 1)
	return Metrics{
		ThroughputOps:  rows / math.Max(runtimeSec, 1e-9),
		LatencyMS:      runtimeSec * 1000,
		P95MS:          runtimeSec * 1000 * 1.1,
		CPUUtil:        clamp(0.6+0.4*spillFrac, 0, 1),
		CostUSDPerHour: s.Spec.USDPerHour * exec,
	}, nil
}
