package genetic

import (
	"math"
	"math/rand"
	"testing"

	"autotune/internal/optimizer"
	"autotune/internal/space"
	"autotune/internal/testfunc"
)

func TestGAOnSphere(t *testing.T) {
	f := testfunc.Sphere(4)
	g := New(f.Space, rand.New(rand.NewSource(1)))
	_, val, err := optimizer.Run(g, f.Eval, 500)
	if err != nil {
		t.Fatal(err)
	}
	if val > 1 {
		t.Fatalf("GA best = %v", val)
	}
	if g.Generation() < 5 {
		t.Fatalf("generations = %d", g.Generation())
	}
	if g.Name() != "genetic" {
		t.Fatal("name")
	}
}

func TestGAMixedSpace(t *testing.T) {
	sp := space.MustNew(
		space.Categorical("policy", "lru", "lfu", "clock"),
		space.Int("shards", 1, 64),
		space.Bool("compress"),
		space.Float("ratio", 0, 1),
	)
	f := func(c space.Config) float64 {
		v := math.Abs(c.Float("ratio") - 0.6)
		v += math.Abs(float64(c.Int("shards"))-16) / 64
		if c.Str("policy") != "lfu" {
			v += 1
		}
		if c.Bool("compress") {
			v += 0.5
		}
		return v
	}
	g := New(sp, rand.New(rand.NewSource(2)))
	cfg, val, err := optimizer.Run(g, f, 600)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Str("policy") != "lfu" || cfg.Bool("compress") {
		t.Fatalf("best cfg = %v (%v)", cfg, val)
	}
	if val > 0.4 {
		t.Fatalf("best val = %v", val)
	}
}

func TestGAElitePreservesBest(t *testing.T) {
	f := testfunc.Sphere(2)
	g := New(f.Space, rand.New(rand.NewSource(3)))
	var bests []float64
	for i := 0; i < 300; i++ {
		cfg, err := g.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		g.Observe(cfg, f.Eval(cfg))
		if _, v, ok := g.Best(); ok {
			bests = append(bests, v)
		}
	}
	// Incumbent must be monotone non-increasing.
	for i := 1; i < len(bests); i++ {
		if bests[i] > bests[i-1]+1e-12 {
			t.Fatalf("incumbent regressed at %d: %v -> %v", i, bests[i-1], bests[i])
		}
	}
}

func TestGASuggestionsValid(t *testing.T) {
	sp := space.MustNew(
		space.Float("buffer_mb", 64, 16384).WithLog(),
		space.Int("threads", 1, 64),
		space.Categorical("flush", "a", "b", "c"),
	)
	g := New(sp, rand.New(rand.NewSource(4)))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		cfg, err := g.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		if err := sp.Validate(cfg); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		g.Observe(cfg, rng.Float64())
	}
}

func TestGAOverSuggest(t *testing.T) {
	f := testfunc.Sphere(2)
	g := NewWith(f.Space, rand.New(rand.NewSource(6)), Options{Population: 6})
	// Ask far more than the population without observing.
	for i := 0; i < 20; i++ {
		if _, err := g.Suggest(); err != nil {
			t.Fatal(err)
		}
	}
	// Then observe the first 6 (by re-suggesting round robin the configs
	// returned may repeat, so just observe arbitrary samples and ensure no
	// deadlock).
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		cfg, _ := g.Suggest()
		g.Observe(cfg, f.Eval(cfg))
		_ = rng
	}
}

func TestGAFirstIsDefault(t *testing.T) {
	sp := space.MustNew(space.Float("x", 0, 1).WithDefault(0.123))
	g := New(sp, rand.New(rand.NewSource(8)))
	cfg, _ := g.Suggest()
	if cfg.Float("x") != 0.123 {
		t.Fatal("first suggestion should be default")
	}
}
