// Package genetic implements a generational genetic algorithm over typed
// configuration spaces (HUNTER/RFHOC-style online tuners use GAs): tournament
// selection, uniform crossover with blend crossover on numeric genes,
// per-kind mutation, and elitism. One generation is buffered at a time to
// fit the Suggest/Observe protocol.
package genetic

import (
	"math"
	"math/rand"

	"autotune/internal/optimizer"
	"autotune/internal/space"
)

// Options configures the GA.
type Options struct {
	// Population size (default 24).
	Population int
	// Elite is how many best individuals survive unchanged (default 2).
	Elite int
	// TournamentK is the tournament size for parent selection (default 3).
	TournamentK int
	// CrossoverRate is the per-pair crossover probability (default 0.9).
	CrossoverRate float64
	// MutationRate is the per-gene mutation probability (default 0.15).
	MutationRate float64
	// MutationScale is the numeric mutation step in unit-cube units
	// (default 0.1).
	MutationScale float64
}

func (o Options) withDefaults() Options {
	if o.Population <= 0 {
		o.Population = 24
	}
	if o.Elite < 0 {
		o.Elite = 0
	} else if o.Elite == 0 {
		o.Elite = 2
	}
	if o.Elite >= o.Population {
		o.Elite = o.Population - 1
	}
	if o.TournamentK <= 0 {
		o.TournamentK = 3
	}
	if o.CrossoverRate <= 0 {
		o.CrossoverRate = 0.9
	}
	if o.MutationRate <= 0 {
		o.MutationRate = 0.15
	}
	if o.MutationScale <= 0 {
		o.MutationScale = 0.1
	}
	return o
}

type individual struct {
	cfg space.Config
	val float64
	key string // pending key; "" once observed
	got bool
}

// GA implements optimizer.Optimizer and optimizer.BatchSuggester.
type GA struct {
	optimizer.Recorder
	space *space.Space
	rng   *rand.Rand
	opts  Options

	pop     []*individual
	nextIdx int
	gen     int
}

// New returns a GA with default options.
func New(s *space.Space, rng *rand.Rand) *GA { return NewWith(s, rng, Options{}) }

// NewWith returns a GA with explicit options.
func NewWith(s *space.Space, rng *rand.Rand, opts Options) *GA {
	opts = opts.withDefaults()
	g := &GA{space: s, rng: rng, opts: opts}
	g.pop = make([]*individual, opts.Population)
	for i := range g.pop {
		var cfg space.Config
		if i == 0 {
			cfg = s.Default()
		} else {
			cfg = s.Sample(rng)
		}
		g.pop[i] = &individual{cfg: cfg, key: cfg.Key(), val: math.Inf(1)}
	}
	return g
}

// Name implements optimizer.Optimizer.
func (g *GA) Name() string { return "genetic" }

// Generation returns the number of completed generations.
func (g *GA) Generation() int { return g.gen }

// Suggest implements optimizer.Optimizer.
func (g *GA) Suggest() (space.Config, error) {
	// Hand out the next unevaluated individual; wrap if callers over-ask.
	for tries := 0; tries < len(g.pop); tries++ {
		ind := g.pop[g.nextIdx%len(g.pop)]
		g.nextIdx++
		if !ind.got {
			return ind.cfg.Clone(), nil
		}
	}
	// All evaluated (callers raced ahead): return a mutant of the best.
	best, _, ok := g.Best()
	if !ok {
		return g.space.Sample(g.rng), nil
	}
	return g.space.Neighbor(best, g.opts.MutationScale, g.rng), nil
}

// SuggestN implements optimizer.BatchSuggester.
func (g *GA) SuggestN(n int) ([]space.Config, error) {
	out := make([]space.Config, 0, n)
	for i := 0; i < n; i++ {
		cfg, err := g.Suggest()
		if err != nil {
			return nil, err
		}
		out = append(out, cfg)
	}
	return out, nil
}

// Observe implements optimizer.Optimizer; a full generation triggers
// selection and breeding.
func (g *GA) Observe(cfg space.Config, value float64) error {
	if err := g.Recorder.Observe(cfg, value); err != nil {
		return err
	}
	key := cfg.Key()
	done := 0
	for _, ind := range g.pop {
		if !ind.got && ind.key == key {
			ind.val = value
			ind.got = true
		}
		if ind.got {
			done++
		}
	}
	if done >= len(g.pop) {
		g.breed()
	}
	return nil
}

// breed produces the next generation: elites survive; the rest come from
// tournament-selected parents via crossover and mutation.
func (g *GA) breed() {
	// Sort ascending by fitness (insertion; population small).
	pop := g.pop
	for i := 1; i < len(pop); i++ {
		for j := i; j > 0 && pop[j].val < pop[j-1].val; j-- {
			pop[j], pop[j-1] = pop[j-1], pop[j]
		}
	}
	next := make([]*individual, 0, len(pop))
	for i := 0; i < g.opts.Elite; i++ {
		cfg := pop[i].cfg.Clone()
		next = append(next, &individual{cfg: cfg, key: cfg.Key(), val: pop[i].val, got: true})
	}
	for len(next) < len(pop) {
		p1 := g.tournament()
		p2 := g.tournament()
		child := g.crossover(p1.cfg, p2.cfg)
		child = g.mutate(child)
		next = append(next, &individual{cfg: child, key: child.Key(), val: math.Inf(1)})
	}
	g.pop = next
	g.nextIdx = 0
	g.gen++
}

func (g *GA) tournament() *individual {
	best := g.pop[g.rng.Intn(len(g.pop))]
	for i := 1; i < g.opts.TournamentK; i++ {
		c := g.pop[g.rng.Intn(len(g.pop))]
		if c.val < best.val {
			best = c
		}
	}
	return best
}

// crossover mixes two parents: numeric genes blend (BLX-style convex
// combination), discrete genes pick a parent uniformly.
func (g *GA) crossover(a, b space.Config) space.Config {
	if g.rng.Float64() > g.opts.CrossoverRate {
		return a.Clone()
	}
	child := make(space.Config, len(a))
	for _, p := range g.space.Params() {
		switch p.Kind {
		case space.KindFloat, space.KindInt:
			// BLX-style blend in value space.
			t := g.rng.Float64()
			av := a.Float(p.Name)
			bv := b.Float(p.Name)
			v := av*t + bv*(1-t)
			if p.Kind == space.KindInt {
				child[p.Name] = int64(math.Round(v))
			} else {
				child[p.Name] = v
			}
		default:
			if g.rng.Intn(2) == 0 {
				child[p.Name] = a[p.Name]
			} else {
				child[p.Name] = b[p.Name]
			}
		}
	}
	return g.space.Clip(child)
}

func (g *GA) mutate(cfg space.Config) space.Config {
	out := cfg.Clone()
	for _, p := range g.space.Params() {
		if g.rng.Float64() >= g.opts.MutationRate {
			continue
		}
		switch p.Kind {
		case space.KindFloat, space.KindInt:
			one := g.space.Neighbor(out, g.opts.MutationScale, g.rng)
			out[p.Name] = one[p.Name]
		case space.KindCategorical:
			out[p.Name] = p.Values[g.rng.Intn(len(p.Values))]
		case space.KindBool:
			out[p.Name] = !out.Bool(p.Name)
		}
	}
	return g.space.Clip(out)
}
