package bo

import (
	"math/rand"
	"testing"

	"autotune/internal/space"
	"autotune/internal/testfunc"
)

func localOpts(acqWorkers, gpWorkers int) Options {
	return Options{
		OneHot: true, Surrogate: SurrogateLocal,
		TrustRegions: 3, LocalCap: 64,
		Candidates: 64, AcqRestarts: 4, RefineIters: 0,
		FitHyperEvery: 0, AcqWorkers: acqWorkers, GPWorkers: gpWorkers,
	}
}

// TestLocalSuggestDeterministicAcrossWorkers pins the trust-region tier's
// determinism contract: box-search RNGs derive from (seed, job index) and
// results reduce in index order, so the suggestion stream is bitwise
// identical for any AcqWorkers/GPWorkers combination.
func TestLocalSuggestDeterministicAcrossWorkers(t *testing.T) {
	f := testfunc.Branin()
	budget := 35
	serial := driveBO(t, NewWith(f.Space, rand.New(rand.NewSource(21)), localOpts(1, 1)), f.Eval, budget)
	for _, w := range []struct{ acq, gp int }{{2, 1}, {8, 1}, {1, 4}, {4, 4}} {
		par := driveBO(t, NewWith(f.Space, rand.New(rand.NewSource(21)), localOpts(w.acq, w.gp)), f.Eval, budget)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("acq=%d gp=%d diverged at step %d:\n  serial:   %s\n  parallel: %s",
					w.acq, w.gp, i, serial[i], par[i])
			}
		}
	}
}

// TestLocalRebuildMatchesIncrementalSync drives one optimizer step by step
// (incremental region folds) and replays the identical history into a
// fresh optimizer (full rebuild fold). Because region maintenance is a
// pure left-fold over history, both must land in identical region states.
func TestLocalRebuildMatchesIncrementalSync(t *testing.T) {
	f := testfunc.Branin()
	live := NewWith(f.Space, rand.New(rand.NewSource(33)), localOpts(1, 1))
	driveBO(t, live, f.Eval, 30)

	replay := NewWith(f.Space, rand.New(rand.NewSource(33)), localOpts(1, 1))
	for _, obs := range live.History() {
		if err := replay.Observe(obs.Config, obs.Value); err != nil {
			t.Fatal(err)
		}
	}
	if err := live.ensureModel(); err != nil {
		t.Fatal(err)
	}
	if err := replay.ensureModel(); err != nil {
		t.Fatal(err)
	}
	lr, rr := live.local.regions, replay.local.regions
	if len(lr) != len(rr) {
		t.Fatalf("region counts differ: %d vs %d", len(lr), len(rr))
	}
	for i := range lr {
		a, b := lr[i], rr[i]
		if a.length != b.length || a.bestY != b.bestY || a.bestIdx != b.bestIdx ||
			a.succ != b.succ || a.fail != b.fail || a.restarts != b.restarts {
			t.Fatalf("region %d state diverged:\n  live:   %+v\n  replay: %+v", i, a, b)
		}
		for k := range a.center {
			if a.center[k] != b.center[k] {
				t.Fatalf("region %d center[%d] %v != %v", i, k, a.center[k], b.center[k])
			}
		}
		if len(a.members) != len(b.members) {
			t.Fatalf("region %d member counts differ: %d vs %d", i, len(a.members), len(b.members))
		}
		for k := range a.members {
			if a.members[k] != b.members[k] {
				t.Fatalf("region %d member %d: %d != %d", i, k, a.members[k], b.members[k])
			}
		}
	}
}

// TestLocalSuggestN exercises the batch path under the local tier: the
// returned configs must be valid, distinct, and deterministic across runs.
func TestLocalSuggestN(t *testing.T) {
	f := testfunc.Branin()
	run := func() []string {
		b := NewWith(f.Space, rand.New(rand.NewSource(14)), localOpts(2, 1))
		driveBO(t, b, f.Eval, 20)
		cfgs, err := b.SuggestN(4)
		if err != nil {
			t.Fatal(err)
		}
		if len(cfgs) != 4 {
			t.Fatalf("SuggestN returned %d configs, want 4", len(cfgs))
		}
		keys := make([]string, len(cfgs))
		for i, cfg := range cfgs {
			if err := f.Space.Validate(cfg); err != nil {
				t.Fatalf("invalid batch suggestion %v: %v", cfg, err)
			}
			keys[i] = cfg.Key()
		}
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				if keys[i] == keys[j] {
					t.Fatalf("duplicate batch suggestions: %s", keys[i])
				}
			}
		}
		return keys
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("batch run diverged at slot %d: %s != %s", i, a[i], b[i])
		}
	}
}

// TestLocalRestartsOnCollapse drives a trust region into repeated failures
// with a deceptive objective and requires at least one restart to fire,
// with the restart counter surfaced through Stats.
func TestLocalRestartsOnCollapse(t *testing.T) {
	f := testfunc.Branin()
	opts := localOpts(1, 1)
	opts.TrustRegions = 2
	b := NewWith(f.Space, rand.New(rand.NewSource(8)), opts)
	// A constant objective means every post-init observation is a failure,
	// so lengths halve until the restart threshold trips.
	driveBO(t, b, func(cfg space.Config) float64 { return 1 }, 60)
	if b.Stats().LocalRestarts == 0 {
		t.Fatal("expected at least one trust-region restart under constant objective")
	}
}
