// Package bo implements Bayesian optimization over configuration spaces: a
// Gaussian-process surrogate (internal/gp) maintained incrementally via
// rank-1 Cholesky updates with periodic full hyperparameter refits, the
// standard acquisition functions (probability of improvement, expected
// improvement, lower confidence bound, posterior-sample / Thompson), a
// deterministic parallel multi-start acquisition search plus Nelder-Mead
// refinement, and batch suggestion via the constant-liar heuristic.
//
// Everything minimizes. Configurations are encoded to the unit cube (or
// one-hot) via internal/space before reaching the GP.
package bo

import (
	"math"

	"autotune/internal/stats"
)

// Acquisition scores a candidate from its posterior mean and standard
// deviation plus the incumbent (best observed) value. Higher scores are
// more desirable; the optimizer maximizes the acquisition.
type Acquisition interface {
	Score(mean, std, best float64) float64
	Name() string
}

// PI is probability of improvement: P(f(x) < best - xi).
type PI struct {
	// Xi is the improvement margin (default 0.01 when constructed via NewPI).
	Xi float64
}

// NewPI returns a PI acquisition with the conventional margin 0.01.
func NewPI() *PI { return &PI{Xi: 0.01} }

// Score implements Acquisition.
func (a *PI) Score(mean, std, best float64) float64 {
	if std <= 0 {
		if mean < best-a.Xi {
			return 1
		}
		return 0
	}
	return stats.NormalCDF((best - a.Xi - mean) / std)
}

// Name implements Acquisition.
func (a *PI) Name() string { return "pi" }

// EI is expected improvement: E[max(best - xi - f(x), 0)], which weighs both
// the probability and the magnitude of improvement.
type EI struct {
	// Xi is the improvement margin (default 0.01 when constructed via NewEI).
	Xi float64
}

// NewEI returns an EI acquisition with margin 0.01.
func NewEI() *EI { return &EI{Xi: 0.01} }

// Score implements Acquisition.
func (a *EI) Score(mean, std, best float64) float64 {
	imp := best - a.Xi - mean
	if std <= 0 {
		if imp > 0 {
			return imp
		}
		return 0
	}
	z := imp / std
	return imp*stats.NormalCDF(z) + std*stats.NormalPDF(z)
}

// Name implements Acquisition.
func (a *EI) Name() string { return "ei" }

// LCB is the lower confidence bound acquisition for minimization: it scores
// -(mean - beta*std), so maximizing it seeks points whose optimistic value
// is lowest. Beta >= 0 trades exploration (large) against exploitation.
type LCB struct {
	// Beta is the exploration weight (default 2 when constructed via NewLCB).
	Beta float64
}

// NewLCB returns an LCB acquisition with beta = 2.
func NewLCB() *LCB { return &LCB{Beta: 2} }

// Score implements Acquisition.
func (a *LCB) Score(mean, std, best float64) float64 {
	return -(mean - a.Beta*std)
}

// Name implements Acquisition.
func (a *LCB) Name() string { return "lcb" }

// ByName returns the acquisition with the given name ("pi", "ei", "lcb"),
// defaulting to EI for unknown names.
func ByName(name string) Acquisition {
	switch name {
	case "pi":
		return NewPI()
	case "lcb":
		return NewLCB()
	default:
		return NewEI()
	}
}

// clampInvalid maps non-finite objective values (crashed trials reported as
// +Inf or NaN) to a large-but-finite penalty derived from the finite
// observations, following the tutorial's "make up a score: N x worst" advice
// for failed configurations (slide 67).
func clampInvalid(ys []float64) []float64 {
	worst, best := math.Inf(-1), math.Inf(1)
	for _, y := range ys {
		if !math.IsInf(y, 0) && !math.IsNaN(y) {
			if y > worst {
				worst = y
			}
			if y < best {
				best = y
			}
		}
	}
	if math.IsInf(worst, -1) { // no finite values at all
		out := make([]float64, len(ys))
		for i := range out {
			out[i] = 1
		}
		return out
	}
	spread := worst - best
	if spread <= 0 {
		spread = math.Abs(worst)
		if spread == 0 {
			spread = 1
		}
	}
	penalty := worst + 2*spread
	out := make([]float64, len(ys))
	for i, y := range ys {
		if math.IsInf(y, 0) || math.IsNaN(y) {
			out[i] = penalty
		} else {
			out[i] = y
		}
	}
	return out
}
