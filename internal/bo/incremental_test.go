package bo

import (
	"math"
	"math/rand"
	"testing"

	"autotune/internal/space"
	"autotune/internal/testfunc"
)

// driveBO runs a Suggest/Observe loop against f and returns the sequence of
// suggested configuration keys.
func driveBO(t *testing.T, b *BO, f func(space.Config) float64, budget int) []string {
	t.Helper()
	keys := make([]string, 0, budget)
	for i := 0; i < budget; i++ {
		cfg, err := b.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, cfg.Key())
		if err := b.Observe(cfg, f(cfg)); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

// TestParallelAcqMatchesSerial: the multi-start acquisition search must
// produce bitwise-identical suggestion sequences for any worker count,
// because restart RNGs derive from (seed, restart index) and results reduce
// in index order — never from goroutine scheduling.
func TestParallelAcqMatchesSerial(t *testing.T) {
	f := testfunc.Branin()
	budget := 30
	opts := func(workers int) Options {
		return Options{OneHot: true, RefineIters: 40, FitHyperEvery: 10, AcqWorkers: workers}
	}
	serial := driveBO(t, NewWith(f.Space, rand.New(rand.NewSource(42)), opts(1)), f.Eval, budget)
	for _, workers := range []int{2, 4, 8} {
		par := driveBO(t, NewWith(f.Space, rand.New(rand.NewSource(42)), opts(workers)), f.Eval, budget)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d diverged from serial at step %d:\n  serial: %s\n  parallel: %s",
					workers, i, serial[i], par[i])
			}
		}
	}
}

// TestIncrementalMatchesFullRefit feeds the same observations to an
// incremental-path BO and a FullRefit BO and requires their posteriors to
// agree to 1e-8 after every absorption.
func TestIncrementalMatchesFullRefit(t *testing.T) {
	s := space.MustNew(
		space.Float("x", 0, 1),
		space.Float("y", 0, 1),
		space.Categorical("mode", "a", "b", "c"),
	)
	f := func(c space.Config) float64 {
		base := map[string]float64{"a": 0.5, "b": 0, "c": 1}[c.Str("mode")]
		dx, dy := c.Float("x")-0.4, c.Float("y")-0.7
		return base + dx*dx + dy*dy
	}
	// FitHyperEvery 0 keeps both arms' kernels identical; hyper refits are
	// full refits on both paths anyway.
	inc := NewWith(s, rand.New(rand.NewSource(7)), Options{OneHot: true, FitHyperEvery: 0})
	full := NewWith(s, rand.New(rand.NewSource(7)), Options{OneHot: true, FitHyperEvery: 0, FullRefit: true})
	rng := rand.New(rand.NewSource(99))
	probes := make([]space.Config, 10)
	for i := range probes {
		probes[i] = s.Sample(rng)
	}
	for i := 0; i < 40; i++ {
		cfg := s.Sample(rng)
		y := f(cfg)
		if err := inc.Observe(cfg, y); err != nil {
			t.Fatal(err)
		}
		if err := full.Observe(cfg, y); err != nil {
			t.Fatal(err)
		}
		if i < 3 {
			continue // let the surrogate have a few points first
		}
		for _, p := range probes {
			mi, si, ok1 := inc.Predict(p)
			mf, sf, ok2 := full.Predict(p)
			if !ok1 || !ok2 {
				t.Fatalf("step %d: Predict failed (inc ok=%v, full ok=%v)", i, ok1, ok2)
			}
			if math.Abs(mi-mf) > 1e-8 || math.Abs(si-sf) > 1e-8 {
				t.Fatalf("step %d: posterior diverged: mean %v vs %v, std %v vs %v",
					i, mi, mf, si, sf)
			}
		}
	}
	if got := inc.Stats().IncrementalUpdates; got < 30 {
		t.Fatalf("incremental arm absorbed only %d observations incrementally", got)
	}
	if got := full.Stats().IncrementalUpdates; got != 0 {
		t.Fatalf("FullRefit arm used the incremental path %d times", got)
	}
}

// TestIncrementalEnabledByDefault: a default-constructed BO must maintain
// its surrogate mostly via rank-1 updates, with full refits only for the
// periodic hyperparameter refit.
func TestIncrementalEnabledByDefault(t *testing.T) {
	f := testfunc.Branin()
	b := New(f.Space, rand.New(rand.NewSource(13)))
	driveBO(t, b, f.Eval, 35)
	st := b.Stats()
	if st.IncrementalUpdates == 0 {
		t.Fatal("default BO never used the incremental path")
	}
	// With FitHyperEvery=10 and 35 observations, full refits are the first
	// model build plus the periodic hyper refits — far fewer than one per
	// observation.
	if st.FullRefits >= st.IncrementalUpdates {
		t.Fatalf("full refits (%d) should be rarer than incremental updates (%d)",
			st.FullRefits, st.IncrementalUpdates)
	}
	if st.HyperRefits == 0 {
		t.Fatal("periodic hyperparameter refits never happened")
	}
}

// TestLogYIncrementalShiftChange: under LogY, an observation that lowers
// the warp shift rewrites every past target, so it must force a full refit
// — and the result must match a from-scratch model exactly.
func TestLogYIncrementalShiftChange(t *testing.T) {
	s := space.MustNew(space.Float("x", 0, 1))
	inc := NewWith(s, rand.New(rand.NewSource(21)), Options{OneHot: true, LogY: true, FitHyperEvery: 0})
	full := NewWith(s, rand.New(rand.NewSource(21)), Options{OneHot: true, LogY: true, FitHyperEvery: 0, FullRefit: true})
	feed := func(x, y float64) {
		cfg := space.Config{"x": x}
		if err := inc.Observe(cfg, y); err != nil {
			t.Fatal(err)
		}
		if err := full.Observe(cfg, y); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		x := float64(i) / 8
		feed(x, 1+x*x) // all positive: shift stays 0
	}
	probe := space.Config{"x": 0.37}
	if _, _, ok := inc.Predict(probe); !ok {
		t.Fatal("warm-up Predict failed")
	}
	refitsBefore := inc.Stats().FullRefits
	// A negative observation forces the shifted log; the incremental path
	// must detect the shift change and rebuild.
	feed(0.9, -2)
	mi, si, ok1 := inc.Predict(probe)
	mf, sf, ok2 := full.Predict(probe)
	if !ok1 || !ok2 {
		t.Fatal("Predict after shift change failed")
	}
	if inc.Stats().FullRefits != refitsBefore+1 {
		t.Fatalf("shift change did not trigger a full refit (refits %d -> %d)",
			refitsBefore, inc.Stats().FullRefits)
	}
	if math.Abs(mi-mf) > 1e-8 || math.Abs(si-sf) > 1e-8 {
		t.Fatalf("post-shift posterior diverged: mean %v vs %v, std %v vs %v", mi, mf, si, sf)
	}
}

// TestSearchSeedStable pins the restart-seed derivation: changing it would
// silently change every seeded run's suggestions.
func TestSearchSeedStable(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 64; i++ {
		s := searchSeed(12345, i)
		if s < 0 {
			t.Fatalf("restart %d: negative seed %d", i, s)
		}
		if seen[s] {
			t.Fatalf("restart %d: seed collision %d", i, s)
		}
		seen[s] = true
	}
	if a, b := searchSeed(1, 0), searchSeed(2, 0); a == b {
		t.Fatal("base seed must change restart seeds")
	}
}
