package bo

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"autotune/internal/space"
)

// cand pairs a configuration with its acquisition score.
type cand struct {
	cfg   space.Config
	score float64
}

// restartOutcome is one multi-start restart's result: the best candidate
// not yet evaluated, the best candidate overall (fallback for tiny discrete
// spaces where everything has been seen), and any error.
type restartOutcome struct {
	top    cand
	topAny cand
	err    error
}

// searchSeed derives the RNG seed for one restart from the search's base
// seed via a SplitMix64-style mix, so restart streams are decorrelated yet
// fully determined by (base seed, restart index) — never by which worker
// ran the restart or when.
func searchSeed(base int64, restart int) int64 {
	z := uint64(base) + uint64(restart+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z & 0x7fffffffffffffff)
}

// runRestart samples and scores nCand candidates with a restart-local RNG.
// It only reads shared state (space, model, seen), so restarts may run
// concurrently; panics are converted to errors so one bad kernel input
// cannot kill the worker pool.
func (b *BO) runRestart(model surModel, best float64, seen map[string]bool, seed int64, nCand int) (out restartOutcome) {
	defer func() {
		if r := recover(); r != nil {
			out.err = fmt.Errorf("bo: acquisition restart panic: %v", r)
		}
	}()
	rng := rand.New(rand.NewSource(seed))
	out.top.score = math.Inf(-1)
	out.topAny.score = math.Inf(-1)
	for i := 0; i < nCand; i++ {
		cfg := b.space.Sample(rng)
		mu, v, err := model.Predict(b.encode(cfg))
		if err != nil {
			out.err = err
			return out
		}
		sc := b.opts.Acq.Score(mu, math.Sqrt(v), best)
		if sc > out.topAny.score {
			out.topAny = cand{cfg, sc}
		}
		if sc > out.top.score && !seen[cfg.Key()] {
			out.top = cand{cfg, sc}
		}
	}
	return out
}

// searchAcq is the deterministic parallel multi-start acquisition search.
// Candidates are split across AcqRestarts restarts; each restart draws from
// its own RNG seeded by (one draw from b.rng, restart index) and restarts
// are reduced strictly in index order with a strict > comparison, so the
// result is bitwise-identical for any AcqWorkers value and any goroutine
// schedule. Exactly one value is consumed from b.rng per search.
func (b *BO) searchAcq(model surModel, best float64, seen map[string]bool) (top, topAny cand, err error) {
	restarts := b.opts.AcqRestarts
	per := (b.opts.Candidates + restarts - 1) / restarts
	baseSeed := b.rng.Int63()
	results := make([]restartOutcome, restarts)
	workers := b.opts.AcqWorkers
	if workers > restarts {
		workers = restarts
	}
	if workers <= 1 {
		for i := 0; i < restarts; i++ {
			results[i] = b.runRestart(model, best, seen, searchSeed(baseSeed, i), per)
		}
	} else {
		// Pre-filled buffered channel: workers drain it and exit when it is
		// empty, so no sender can block even if a worker dies.
		jobs := make(chan int, restarts)
		for i := 0; i < restarts; i++ {
			jobs <- i
		}
		close(jobs)
		var mu sync.Mutex
		var poolErr error
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer func() {
					// runRestart recovers its own panics; this guards the
					// loop plumbing so the pool always unblocks wg.Wait.
					if r := recover(); r != nil {
						mu.Lock()
						if poolErr == nil {
							poolErr = fmt.Errorf("bo: acquisition worker panic: %v", r)
						}
						mu.Unlock()
					}
					wg.Done()
				}()
				for i := range jobs {
					results[i] = b.runRestart(model, best, seen, searchSeed(baseSeed, i), per)
				}
			}()
		}
		wg.Wait()
		if poolErr != nil {
			return cand{}, cand{}, poolErr
		}
	}
	top.score, topAny.score = math.Inf(-1), math.Inf(-1)
	for _, r := range results {
		if r.err != nil {
			return cand{}, cand{}, r.err
		}
		if r.top.score > top.score {
			top = r.top
		}
		if r.topAny.score > topAny.score {
			topAny = r.topAny
		}
	}
	return top, topAny, nil
}
