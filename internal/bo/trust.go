package bo

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"autotune/internal/gp"
	"autotune/internal/optimizer"
	"autotune/internal/space"
)

// trust.go is the TuRBO-style local tier (Options.Surrogate =
// SurrogateLocal): instead of one global model, several small GPs each own
// a hyper-rectangular trust region in the scalar unit-cube encoding.
// Region maintenance — assignment, recentering, expand on streaks of
// successes, shrink on streaks of failures, restart when a region
// collapses — is a pure left fold over the trial history, so an optimizer
// that evolved incrementally and one rebuilt from the same history land in
// bit-identical region states. Suggestion search samples inside each box
// with index-derived RNG streams and reduces in job order, making
// suggestions bitwise-identical for any worker count.

const (
	trustInitLength = 0.8       // L0: initial box side in the unit cube
	trustMaxLength  = 1.6       // expansion cap
	trustMinLength  = 1.0 / 128 // collapse threshold triggering a restart
	trustSuccTol    = 3         // successes in a row before expanding
)

// trustRegion is one local model and its box. All fields are derived
// deterministically from the history fold.
type trustRegion struct {
	center  []float64 // scalar encoding of the region's best point
	length  float64
	bestY   float64
	bestIdx int
	succ    int
	fail    int

	restarts int
	members  []int // history indices assigned to this region, in order

	model  *gp.GP
	fitted []int // history indices the model currently conditions on
}

// inBox reports whether scalar point s lies in the region's box. It runs
// once per history point per fit and once per candidate per restart, so it
// must not allocate.
//
//autolint:hotpath
func (r *trustRegion) inBox(s []float64) bool {
	h := r.length / 2
	for k, v := range s {
		if math.Abs(v-r.center[k]) > h {
			return false
		}
	}
	return true
}

// localModels is the fold state for the local tier plus cached encodings.
type localModels struct {
	regions []*trustRegion
	synced  int // history prefix the fold has consumed

	// Per-history-index caches, appended by the fold: scalar encodings
	// (box geometry), model encodings (GP inputs), and model-unit targets.
	scal [][]float64
	enc  [][]float64
	ys   []float64

	failTol int

	// search state: one outcome slot per (region, restart) job and one
	// scalar scratch per worker.
	jobs    []localOutcome
	scratch [][]float64
}

// localOutcome is one (region, restart) search job's result: up to K
// candidates, best first, as scalar snapshots.
type localOutcome struct {
	scores []float64
	snaps  [][]float64
	n      int
	err    error
}

func newLocalModels(b *BO) *localModels {
	failTol := b.space.Dim()
	if failTol < 4 {
		failTol = 4
	}
	return &localModels{failTol: failTol}
}

// rebuild folds the whole history from scratch. xs and ys are the encoded
// inputs and model-unit targets refit() already computed.
func (lm *localModels) rebuild(b *BO, hist []optimizer.Observation, xs [][]float64, ys []float64) error {
	lm.regions = lm.regions[:0]
	lm.synced = 0
	lm.scal = lm.scal[:0]
	lm.enc = lm.enc[:0]
	lm.ys = lm.ys[:0]
	for i, obs := range hist {
		lm.fold(b, b.space.Encode(obs.Config), xs[i], ys[i])
	}
	return nil
}

// sync folds history entries past the consumed prefix. Only called when
// the incremental guards (finite values, stable warp shift) already hold.
func (lm *localModels) sync(b *BO, hist []optimizer.Observation) {
	for _, obs := range hist[lm.synced:] {
		lm.fold(b, b.space.Encode(obs.Config), b.encode(obs.Config), b.modelUnitY(obs.Value))
	}
}

// fold consumes one observation: cache its encodings, seed or pick a
// region, update streak counters and geometry. Pure in (history, Options).
func (lm *localModels) fold(b *BO, s, enc []float64, y float64) {
	idx := lm.synced
	lm.scal = append(lm.scal, s)
	lm.enc = append(lm.enc, enc)
	lm.ys = append(lm.ys, y)
	lm.synced++

	if len(lm.regions) < b.opts.TrustRegions {
		// The first R observations each seed a region where they landed.
		r := &trustRegion{
			center:  append([]float64(nil), s...),
			length:  trustInitLength,
			bestY:   y,
			bestIdx: idx,
			members: []int{idx},
		}
		lm.regions = append(lm.regions, r)
		return
	}

	// Assign to the nearest center; ties break on the lowest region index.
	r := lm.regions[lm.nearestRegion(s)]
	r.members = append(r.members, idx)
	if y < r.bestY {
		r.bestY, r.bestIdx = y, idx
		copy(r.center, s)
		r.succ++
		r.fail = 0
	} else {
		r.fail++
		r.succ = 0
	}
	if r.succ >= trustSuccTol {
		r.succ = 0
		r.length *= 2
		if r.length > trustMaxLength {
			r.length = trustMaxLength
		}
	}
	if r.fail >= lm.failTol {
		r.fail = 0
		r.length /= 2
		if r.length < trustMinLength {
			lm.restart(r)
		}
	}
}

// nearestRegion returns the index of the region whose center is closest
// to s in scalar space (squared Euclidean, lowest index on ties).
//
//autolint:hotpath
func (lm *localModels) nearestRegion(s []float64) int {
	best, bestD := 0, math.Inf(1)
	for ri, r := range lm.regions {
		d := 0.0
		for k, v := range s {
			dv := v - r.center[k]
			d += dv * dv
		}
		if d < bestD {
			best, bestD = ri, d
		}
	}
	return best
}

// restart re-seeds a collapsed region at the observed point farthest from
// every other region's center (maximin, lowest index on ties) — the
// deterministic analogue of TuRBO's fresh random restart: it moves the
// region to the least-covered part of the explored space.
func (lm *localModels) restart(r *trustRegion) {
	r.restarts++
	r.length = trustInitLength
	r.succ, r.fail = 0, 0
	pick, pickD := -1, math.Inf(-1)
	for i, s := range lm.scal {
		d := math.Inf(1)
		for _, other := range lm.regions {
			if other == r {
				continue
			}
			dd := 0.0
			for k, v := range s {
				dv := v - other.center[k]
				dd += dv * dv
			}
			if dd < d {
				d = dd
			}
		}
		if d > pickD {
			pick, pickD = i, d
		}
	}
	if pick < 0 {
		pick = len(lm.scal) - 1
	}
	copy(r.center, lm.scal[pick])
	r.bestY, r.bestIdx = lm.ys[pick], pick
	// Membership restarts from the points the new box already covers, so
	// the fresh model is not conditioned on the collapsed region's past.
	r.members = r.members[:0]
	for i, s := range lm.scal {
		if r.inBox(s) {
			r.members = append(r.members, i)
		}
	}
	r.fitted = r.fitted[:0]
	r.model = nil
}

// globalMin is the incumbent in model units over everything folded.
func (lm *localModels) globalMin() float64 {
	best := math.Inf(1)
	for _, y := range lm.ys {
		if y < best {
			best = y
		}
	}
	return best
}

// ensureFit brings one region's GP up to date with its in-box membership:
// a pure rank-1 extension when the previous fit is a prefix, a refit
// otherwise. Capped at the most recent LocalCap members so every local
// model stays O(cap²) no matter how deep the history is.
func (lm *localModels) ensureFit(b *BO, r *trustRegion) error {
	want := r.members
	if len(want) == 0 {
		// A box can cover nothing after a shrink; fall back to the
		// region's best point so the model is at least defined.
		want = []int{r.bestIdx}
	}
	inBox := make([]int, 0, len(want))
	for _, i := range want {
		if r.inBox(lm.scal[i]) {
			inBox = append(inBox, i)
		}
	}
	if len(inBox) == 0 {
		inBox = append(inBox, r.bestIdx)
	}
	if cp := b.opts.LocalCap; cp > 0 && len(inBox) > cp {
		inBox = inBox[len(inBox)-cp:]
	}
	if r.model != nil && len(r.fitted) <= len(inBox) && intsEqualPrefix(r.fitted, inBox) {
		for _, i := range inBox[len(r.fitted):] {
			if err := r.model.Observe(lm.enc[i], lm.ys[i]); err != nil {
				return err
			}
			r.fitted = append(r.fitted, i)
		}
		return nil
	}
	if r.model == nil {
		r.model = gp.New(b.opts.Kernel.Clone(), b.opts.Noise)
		r.model.SetWorkers(b.opts.GPWorkers)
	}
	ax := make([][]float64, len(inBox))
	ay := make([]float64, len(inBox))
	for j, i := range inBox {
		ax[j] = lm.enc[i]
		ay[j] = lm.ys[i]
	}
	if err := r.model.Fit(ax, ay); err != nil {
		return err
	}
	r.fitted = append(r.fitted[:0], inBox...)
	return nil
}

// intsEqualPrefix reports whether a equals the first len(a) entries of b.
func intsEqualPrefix(a, b []int) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// suggestN runs the per-region box searches and returns the k best
// distinct candidates across all regions (k=1 for plain Suggest).
// Consumes exactly one value from b.rng, like the global search, and is
// bitwise-deterministic for any worker count: every (region, restart) job
// has an index-derived RNG stream and its own result slot, and the merge
// walks jobs in index order.
func (lm *localModels) suggestN(b *BO, k int) ([]space.Config, error) {
	for _, r := range lm.regions {
		if err := lm.ensureFit(b, r); err != nil {
			return nil, fmt.Errorf("bo: local fit: %w", err)
		}
	}
	b.ensureSampler()
	b.syncSeen()
	best := lm.globalMin()
	baseSeed := b.rng.Int63()

	nr := len(lm.regions)
	restarts := b.opts.AcqRestarts / nr
	if restarts < 1 {
		restarts = 1
	}
	per := b.opts.Candidates / (nr * restarts)
	if per < 4 {
		per = 4
	}
	totalJobs := nr * restarts
	if cap(lm.jobs) < totalJobs {
		lm.jobs = make([]localOutcome, totalJobs)
	}
	jobs := lm.jobs[:totalJobs]

	workers := b.opts.AcqWorkers
	if workers > totalJobs {
		workers = totalJobs
	}
	if workers < 1 {
		workers = 1
	}
	for len(lm.scratch) < workers {
		lm.scratch = append(lm.scratch, nil)
	}
	if workers <= 1 {
		for j := 0; j < totalJobs; j++ {
			lm.runBoxSearch(b, lm.regions[j/restarts], best, searchSeed(baseSeed, j), per, k, &jobs[j], &lm.scratch[0])
		}
	} else {
		var mu sync.Mutex
		var poolErr error
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer func() {
					// runBoxSearch recovers its own panics; this guards the
					// striding plumbing so wg.Wait always unblocks.
					if r := recover(); r != nil {
						mu.Lock()
						if poolErr == nil {
							poolErr = fmt.Errorf("bo: local search worker panic: %v", r)
						}
						mu.Unlock()
					}
					wg.Done()
				}()
				for j := w; j < totalJobs; j += workers {
					lm.runBoxSearch(b, lm.regions[j/restarts], best, searchSeed(baseSeed, j), per, k, &jobs[j], &lm.scratch[w])
				}
			}()
		}
		wg.Wait()
		if poolErr != nil {
			return nil, poolErr
		}
	}

	// Merge all job candidate lists in job order: repeatedly take the
	// highest score not yet picked and not a duplicate encoding.
	type ref struct{ job, slot int }
	picked := make(map[string]bool, k)
	out := make([]space.Config, 0, k)
	cursor := make([]int, totalJobs)
	for j := range jobs {
		if jobs[j].err != nil {
			return nil, jobs[j].err
		}
	}
	for len(out) < k {
		bestRef, bestScore := ref{-1, -1}, math.Inf(-1)
		for j := range jobs {
			c := cursor[j]
			if c < jobs[j].n && jobs[j].scores[c] > bestScore {
				bestScore = jobs[j].scores[c]
				bestRef = ref{j, c}
			}
		}
		if bestRef.job < 0 {
			break
		}
		cursor[bestRef.job]++
		snap := jobs[bestRef.job].snaps[bestRef.slot]
		cfg := b.space.Decode(snap)
		b.encodeInto(cfg, b.encBuf)
		key := string(encKey(b.encBuf, b.keyBuf))
		if picked[key] {
			continue
		}
		picked[key] = true
		out = append(out, cfg)
	}
	for len(out) < k {
		out = append(out, b.space.Sample(b.rng))
	}
	return out, nil
}

// runBoxSearch scores per candidates drawn uniformly inside the region's
// box, keeping the top k distinct unseen candidates in the outcome slot.
// Writes only its own outcome and worker scratch, so jobs run concurrently.
func (lm *localModels) runBoxSearch(b *BO, r *trustRegion, best float64, seed int64, per, k int, out *localOutcome, scratch *[]float64) {
	defer func() {
		if rec := recover(); rec != nil {
			out.err = fmt.Errorf("bo: local restart panic: %v", rec)
		}
	}()
	out.err = nil
	out.n = 0
	pdim := b.space.Dim()
	edim := b.ensureSampler().Dim()
	if cap(*scratch) < pdim+edim {
		*scratch = make([]float64, pdim+edim)
	}
	sBuf := (*scratch)[:pdim]
	eBuf := (*scratch)[pdim : pdim+edim]
	keyBuf := make([]byte, 8*edim)
	if cap(out.scores) < k {
		out.scores = make([]float64, k)
		out.snaps = make([][]float64, k)
		for i := range out.snaps {
			out.snaps[i] = make([]float64, pdim)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	half := r.length / 2
	ws := gp.NewWorkspace()
	for c := 0; c < per; c++ {
		for j := 0; j < pdim; j++ {
			v := r.center[j] + (rng.Float64()*2-1)*half
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			sBuf[j] = v
		}
		cfg := b.space.Decode(sBuf)
		b.encodeInto(cfg, eBuf)
		if b.seenEnc[string(encKey(eBuf, keyBuf))] {
			continue
		}
		mu, v, err := r.model.PredictWS(ws, eBuf)
		if err != nil {
			out.err = err
			return
		}
		sc := b.opts.Acq.Score(mu, math.Sqrt(v), best)
		lm.insertTopK(out, k, sc, sBuf)
	}
}

// insertTopK inserts (score, snapshot) into the outcome's descending
// top-k list, shifting lower entries down.
func (lm *localModels) insertTopK(out *localOutcome, k int, sc float64, snap []float64) {
	pos := out.n
	for pos > 0 && sc > out.scores[pos-1] {
		pos--
	}
	if pos >= k {
		return
	}
	if out.n < k {
		out.n++
	}
	// Shift down, reusing the displaced bottom buffer for the insert.
	spare := out.snaps[out.n-1]
	for i := out.n - 1; i > pos; i-- {
		out.scores[i] = out.scores[i-1]
		out.snaps[i] = out.snaps[i-1]
	}
	copy(spare, snap)
	out.scores[pos] = sc
	out.snaps[pos] = spare
}

// Restarts sums region restarts, for stats.
func (lm *localModels) Restarts() int {
	total := 0
	for _, r := range lm.regions {
		total += r.restarts
	}
	return total
}

// predict serves BO.Predict under the local tier: the posterior of the
// region owning cfg (nearest center).
func (lm *localModels) predict(b *BO, cfg space.Config) (float64, float64, error) {
	if len(lm.regions) == 0 {
		return 0, 0, gp.ErrNotFitted
	}
	s := b.space.Encode(cfg)
	r := lm.regions[lm.nearestRegion(s)]
	if err := lm.ensureFit(b, r); err != nil {
		return 0, 0, err
	}
	return r.model.Predict(b.encode(cfg))
}
