package bo

import (
	"math/rand"
	"testing"

	"autotune/internal/space"
	"autotune/internal/testfunc"
)

// suggestAllocBudget is the documented per-call ceiling for a warm Suggest
// with refinement and hyperparameter refits disabled: materializing the
// winning Config (one small map plus boxed values), recording the
// observation, and occasional amortized growth of the encoded dedup set.
// The pre-optimization loop measured in the thousands (a Config, two
// encodings, and a Key string per candidate, times 512 candidates).
const suggestAllocBudget = 40

// TestSuggestWarmAllocs pins the steady-state allocation cost of the flat
// acquisition loop.
func TestSuggestWarmAllocs(t *testing.T) {
	f := testfunc.Branin()
	b := NewWith(f.Space, rand.New(rand.NewSource(3)), Options{
		OneHot:        true,
		RefineIters:   0,
		FitHyperEvery: 0,
		AcqWorkers:    1,
	})
	for i := 0; i < 12; i++ { // warm-up: init samples, model build, buffers
		cfg, err := b.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Observe(cfg, f.Eval(cfg)); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		cfg, err := b.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Observe(cfg, f.Eval(cfg)); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > suggestAllocBudget {
		t.Fatalf("warm Suggest+Observe allocates %v per call, budget %d", allocs, suggestAllocBudget)
	}
}

// TestGPWorkersDeterministic: the surrogate's row-parallel gram and batched
// prediction must not perturb suggestions — any GPWorkers value yields the
// identical seeded sequence.
func TestGPWorkersDeterministic(t *testing.T) {
	f := testfunc.Branin()
	budget := 25
	opts := func(workers int) Options {
		return Options{OneHot: true, RefineIters: 40, FitHyperEvery: 10, GPWorkers: workers}
	}
	serial := driveBO(t, NewWith(f.Space, rand.New(rand.NewSource(11)), opts(1)), f.Eval, budget)
	for _, workers := range []int{2, 4} {
		par := driveBO(t, NewWith(f.Space, rand.New(rand.NewSource(11)), opts(workers)), f.Eval, budget)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("GPWorkers=%d diverged at step %d:\n  serial: %s\n  parallel: %s",
					workers, i, serial[i], par[i])
			}
		}
	}
}

// TestLegacyLoopStillWorks keeps the benchmark arm honest: the allocating
// loop must still run end to end and reach a sane Branin value, and the
// flat loop must do at least as well on the same budget order.
func TestLegacyLoopStillWorks(t *testing.T) {
	f := testfunc.Branin()
	budget := 35
	run := func(opts Options, seed int64) float64 {
		b := NewWith(f.Space, rand.New(rand.NewSource(seed)), opts)
		best := 0.0
		for i := 0; i < budget; i++ {
			cfg, err := b.Suggest()
			if err != nil {
				t.Fatal(err)
			}
			y := f.Eval(cfg)
			if i == 0 || y < best {
				best = y
			}
			if err := b.Observe(cfg, y); err != nil {
				t.Fatal(err)
			}
		}
		return best
	}
	base := Options{OneHot: true, RefineIters: 40, FitHyperEvery: 10}
	legacyOpts := base
	legacyOpts.LegacyLoop = true
	legacy := run(legacyOpts, 21)
	fast := run(base, 21)
	// Branin's global minimum is ~0.398; both loops should get close.
	if legacy > 2.0 {
		t.Fatalf("legacy loop best %v, want < 2.0", legacy)
	}
	if fast > 2.0 {
		t.Fatalf("fast loop best %v, want < 2.0", fast)
	}
}

// TestFastDedupAvoidsRepeats: on a tiny discrete space where the candidate
// pool quickly covers everything, the encoded dedup must still prefer
// unevaluated configurations while history has gaps.
func TestFastDedupAvoidsRepeats(t *testing.T) {
	s := space.MustNew(
		space.Categorical("a", "x", "y", "z"),
		space.Bool("b"),
	)
	b := NewWith(s, rand.New(rand.NewSource(5)), Options{
		OneHot: true, InitSamples: 2, RefineIters: 0, FitHyperEvery: 0,
	})
	seen := map[string]bool{}
	for i := 0; i < 6; i++ {
		cfg, err := b.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		k := cfg.Key()
		// Warm-up draws (default + stratified) don't consult the dedup set.
		if i >= 2 && seen[k] && len(seen) < 6 {
			t.Fatalf("step %d repeated %s with %d/6 configs unexplored", i, k, 6-len(seen))
		}
		seen[k] = true
		if err := b.Observe(cfg, float64(len(k)%3)); err != nil {
			t.Fatal(err)
		}
	}
}
