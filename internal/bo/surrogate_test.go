package bo

import (
	"math/rand"
	"testing"

	"autotune/internal/space"
	"autotune/internal/testfunc"
)

// TestSparseTierMatchesDenseBelowThreshold pins the tier contract at the
// BO level: with an inducing budget the history never reaches, the pinned
// sparse tier and the pinned dense tier must produce bitwise-identical
// suggestion streams — the sparse path delegates to the very same code.
func TestSparseTierMatchesDenseBelowThreshold(t *testing.T) {
	f := testfunc.Branin()
	budget := 30
	opts := func(p SurrogatePolicy) Options {
		return Options{
			OneHot: true, RefineIters: 40, FitHyperEvery: 10,
			Surrogate: p, SparseBudget: 4096,
		}
	}
	dense := driveBO(t, NewWith(f.Space, rand.New(rand.NewSource(7)), opts(SurrogateDense)), f.Eval, budget)
	sparse := driveBO(t, NewWith(f.Space, rand.New(rand.NewSource(7)), opts(SurrogateSparse)), f.Eval, budget)
	for i := range dense {
		if dense[i] != sparse[i] {
			t.Fatalf("sparse tier diverged from dense at step %d:\n  dense:  %s\n  sparse: %s",
				i, dense[i], sparse[i])
		}
	}
}

// TestAutoSwitchPointsDeterministic drives the auto policy across both
// thresholds twice with identical seeds and requires the switch points to
// match exactly; a third optimizer fed the full history in one replay
// (the server's resume pattern) must land on the same tier.
func TestAutoSwitchPointsDeterministic(t *testing.T) {
	f := testfunc.Branin()
	budget := 48
	opts := Options{
		OneHot: true, RefineIters: 4, FitHyperEvery: 0,
		DenseMax: 12, SparseMax: 24, SparseBudget: 16,
		Candidates: 64, AcqRestarts: 4,
	}
	run := func() (*BO, []string) {
		b := NewWith(f.Space, rand.New(rand.NewSource(11)), opts)
		keys := driveBO(t, b, f.Eval, budget)
		return b, keys
	}
	b1, k1 := run()
	b2, k2 := run()
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("runs diverged at step %d: %s != %s", i, k1[i], k2[i])
		}
	}
	st1, st2 := b1.Stats(), b2.Stats()
	if st1.TierSwitches != 2 {
		t.Fatalf("expected 2 tier switches (dense→sparse→forest), got %d: %+v", st1.TierSwitches, st1.Switches)
	}
	if len(st1.Switches) != len(st2.Switches) {
		t.Fatalf("switch histories differ: %+v vs %+v", st1.Switches, st2.Switches)
	}
	for i := range st1.Switches {
		if st1.Switches[i] != st2.Switches[i] {
			t.Fatalf("switch %d differs: %+v vs %+v", i, st1.Switches[i], st2.Switches[i])
		}
	}
	if st1.Tier != "forest" {
		t.Fatalf("final tier %q, want forest", st1.Tier)
	}

	// Resume: replay the whole history into a fresh optimizer, then one
	// Suggest. The tier decision depends only on history size, so the
	// replayed optimizer must resolve the same tier.
	replay := NewWith(f.Space, rand.New(rand.NewSource(11)), opts)
	for _, obs := range b1.History() {
		if err := replay.Observe(obs.Config, obs.Value); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := replay.Suggest(); err != nil {
		t.Fatal(err)
	}
	if got := replay.Stats().Tier; got != st1.Tier {
		t.Fatalf("replayed tier %q != live tier %q", got, st1.Tier)
	}
}

// TestForestTierSuggests pins the deep-history tier end to end: forced
// forest surrogate, suggestions stay valid, the forest refits on cadence,
// and SuggestN's constant-liar clone leaves the real counter alone.
func TestForestTierSuggests(t *testing.T) {
	f := testfunc.Branin()
	b := NewWith(f.Space, rand.New(rand.NewSource(3)), Options{
		OneHot: true, Surrogate: SurrogateForest, Candidates: 64, AcqRestarts: 4,
	})
	driveBO(t, b, f.Eval, 40)
	st := b.Stats()
	if st.Tier != "forest" {
		t.Fatalf("tier %q, want forest", st.Tier)
	}
	if st.ForestRefits == 0 {
		t.Fatal("forest never refit")
	}
	before := b.Stats().ForestRefits
	cfgs, err := b.SuggestN(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 4 {
		t.Fatalf("SuggestN returned %d configs, want 4", len(cfgs))
	}
	for _, cfg := range cfgs {
		if err := f.Space.Validate(cfg); err != nil {
			t.Fatalf("invalid suggestion %v: %v", cfg, err)
		}
	}
	if after := b.Stats().ForestRefits; after != before {
		t.Fatalf("constant-liar clone bumped ForestRefits: %d -> %d", before, after)
	}
}

// TestSparseTierDeepHistory exercises the sparse tier well past the dense
// threshold: maintenance must go through skips and rebuilds while
// suggestions stay valid and the incumbent stays exact.
func TestSparseTierDeepHistory(t *testing.T) {
	f := testfunc.Branin()
	b := NewWith(f.Space, rand.New(rand.NewSource(5)), Options{
		OneHot: true, Surrogate: SurrogateSparse, SparseBudget: 16,
		Candidates: 64, AcqRestarts: 4, FitHyperEvery: 0,
	})
	// Bulk history first (absorbed by one refit), then a live loop so the
	// saturated rank-1 observe path runs past the budget.
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 40; i++ {
		cfg := f.Space.Sample(rng)
		if err := b.Observe(cfg, f.Eval(cfg)); err != nil {
			t.Fatal(err)
		}
	}
	driveBO(t, b, f.Eval, 60)
	st := b.Stats()
	if st.Tier != "sparse" {
		t.Fatalf("tier %q, want sparse", st.Tier)
	}
	if st.Sparse.Skipped == 0 || st.Sparse.Rebuilds == 0 {
		t.Fatalf("deep history should skip and rebuild: %+v", st.Sparse)
	}
}

// TestTierSwitchKeepsPredict: Predict must stay serviceable across a
// dense→sparse switch (the guardrail consumers never see the tiers).
func TestTierSwitchKeepsPredict(t *testing.T) {
	s := space.MustNew(space.Float("x", 0, 1), space.Float("y", 0, 1))
	b := NewWith(s, rand.New(rand.NewSource(9)), Options{
		OneHot: true, DenseMax: 10, SparseBudget: 8, FitHyperEvery: 0,
		Candidates: 32, AcqRestarts: 2,
	})
	obj := func(cfg space.Config) float64 {
		x := cfg["x"].(float64)
		y := cfg["y"].(float64)
		return (x-0.4)*(x-0.4) + (y-0.6)*(y-0.6)
	}
	driveBO(t, b, obj, 30)
	probe := space.Config{"x": 0.4, "y": 0.6}
	if _, _, ok := b.Predict(probe); !ok {
		t.Fatal("Predict unavailable after tier switch")
	}
	if got := b.Stats().Tier; got != "sparse" {
		t.Fatalf("tier %q, want sparse", got)
	}
}
