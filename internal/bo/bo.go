package bo

import (
	"fmt"
	"math"
	"math/rand"

	"autotune/internal/gp"
	"autotune/internal/numopt"
	"autotune/internal/optimizer"
	"autotune/internal/space"
)

// Options configures a BO optimizer. The zero value is usable: NewWith
// fills defaults.
type Options struct {
	// Acq is the acquisition function (default EI).
	Acq Acquisition
	// Kernel is the surrogate kernel template (default 1.0 * Matérn 5/2
	// with lengthscale 0.2, a solid default on unit-cube encodings).
	Kernel gp.Kernel
	// Noise is the initial observation-noise variance in normalized
	// target units (default 1e-6; raised automatically by hyperparameter
	// fitting when the data is noisy).
	Noise float64
	// InitSamples is the number of warm-up suggestions before the model
	// kicks in: the space default first, then stratified random samples
	// that cycle every categorical level (default max(5, L+1) where L is
	// the largest categorical level count, so every level is observed at
	// least once before the surrogate takes over).
	InitSamples int
	// Candidates is the random candidate pool size for acquisition
	// maximization (default 512).
	Candidates int
	// RefineIters enables Nelder-Mead local refinement of the best
	// candidate for this many iterations (default 40; 0 disables).
	RefineIters int
	// FitHyperEvery re-optimizes kernel hyperparameters every k
	// observations (default 10; 0 disables).
	FitHyperEvery int
	// OneHot selects one-hot encoding for categoricals (default true,
	// which distance-based kernels prefer; false uses scaled indices).
	OneHot bool
	// LogY fits the surrogate on log-transformed objective values, the
	// standard warping for heavy-tailed positive objectives like latency
	// (a single terrible configuration would otherwise dominate target
	// normalization and blind the model near the optimum). Requires all
	// observations to be positive; non-positive values fall back to a
	// shifted log.
	LogY bool
}

func (o Options) withDefaults() Options {
	if o.Acq == nil {
		o.Acq = NewEI()
	}
	if o.Kernel == nil {
		o.Kernel = gp.Scale(1, gp.NewMatern(2.5, 0.2))
	}
	if o.Noise <= 0 {
		o.Noise = 1e-6
	}
	if o.InitSamples <= 0 {
		o.InitSamples = 5
	}
	if o.Candidates <= 0 {
		o.Candidates = 512
	}
	if o.RefineIters < 0 {
		o.RefineIters = 0
	}
	if o.FitHyperEvery < 0 {
		o.FitHyperEvery = 0
	}
	return o
}

// BO is a sequential model-based optimizer with a GP surrogate. It
// implements optimizer.Optimizer and optimizer.BatchSuggester.
type BO struct {
	optimizer.Recorder
	space *space.Space
	rng   *rand.Rand
	opts  Options

	model      *gp.GP
	modelDirty bool
	lastHyper  int
	logShift   float64 // shift used by the LogY warp in the current fit
}

// New returns a BO optimizer with default options.
func New(s *space.Space, rng *rand.Rand) *BO {
	return NewWith(s, rng, Options{OneHot: true, RefineIters: 40, FitHyperEvery: 10})
}

// NewWith returns a BO optimizer with explicit options.
func NewWith(s *space.Space, rng *rand.Rand, opts Options) *BO {
	explicitInit := opts.InitSamples > 0
	opts = opts.withDefaults()
	if !explicitInit {
		maxLevels := 0
		for _, p := range s.Params() {
			if l := p.Levels(); l > maxLevels {
				maxLevels = l
			}
		}
		if maxLevels+1 > opts.InitSamples {
			opts.InitSamples = maxLevels + 1
		}
	}
	return &BO{space: s, rng: rng, opts: opts}
}

// Name implements optimizer.Optimizer.
func (b *BO) Name() string { return "bo-" + b.opts.Acq.Name() }

// Space returns the optimizer's configuration space.
func (b *BO) Space() *space.Space { return b.space }

func (b *BO) encode(cfg space.Config) []float64 {
	if b.opts.OneHot {
		return b.space.EncodeOneHot(cfg)
	}
	return b.space.Encode(cfg)
}

// Observe implements optimizer.Optimizer and marks the surrogate stale.
func (b *BO) Observe(cfg space.Config, value float64) error {
	if err := b.Recorder.Observe(cfg, value); err != nil {
		return err
	}
	b.modelDirty = true
	return nil
}

// refit rebuilds the GP from history; hyperparameters are refitted every
// FitHyperEvery observations.
func (b *BO) refit() error {
	hist := b.History()
	xs := make([][]float64, len(hist))
	ys := make([]float64, len(hist))
	for i, obs := range hist {
		xs[i] = b.encode(obs.Config)
		ys[i] = obs.Value
	}
	ys = clampInvalid(ys)
	if b.opts.LogY {
		ys, b.logShift = logWarp(ys)
	}
	if b.model == nil {
		b.model = gp.New(b.opts.Kernel.Clone(), b.opts.Noise)
	}
	every := b.opts.FitHyperEvery
	if every > 0 && len(hist)-b.lastHyper >= every {
		b.lastHyper = len(hist)
		if err := b.model.FitHyper(xs, ys, 2, b.rng); err != nil {
			return fmt.Errorf("bo: hyper fit: %w", err)
		}
	} else if err := b.model.Fit(xs, ys); err != nil {
		return fmt.Errorf("bo: fit: %w", err)
	}
	b.modelDirty = false
	return nil
}

// Suggest implements optimizer.Optimizer: warm-up samples first, then
// acquisition maximization over the surrogate.
func (b *BO) Suggest() (space.Config, error) {
	n := b.N()
	if n == 0 {
		return b.space.Default(), nil
	}
	if n < b.opts.InitSamples {
		return b.stratifiedSample(n - 1), nil
	}
	if b.modelDirty || b.model == nil {
		if err := b.refit(); err != nil {
			// Surrogate failure must not stall tuning: fall back to random.
			return b.space.Sample(b.rng), nil
		}
	}
	cfg, err := b.maximizeAcq(b.model)
	if err != nil {
		return b.space.Sample(b.rng), nil
	}
	return cfg, nil
}

// stratifiedSample draws a random configuration whose categorical and
// boolean parameters are pinned to level (i mod L), guaranteeing every
// level appears during warm-up — a GP one-hot encoding gets no gradient
// toward levels it has never seen.
func (b *BO) stratifiedSample(i int) space.Config {
	cfg := b.space.Sample(b.rng)
	for _, p := range b.space.Params() {
		switch p.Kind {
		case space.KindCategorical:
			cfg[p.Name] = p.Values[i%len(p.Values)]
		case space.KindBool:
			cfg[p.Name] = i%2 == 1
		}
	}
	return b.space.Clip(cfg)
}

// maximizeAcq scores a random candidate pool, optionally refines the best
// numeric point locally, and dedups against already-evaluated configs.
func (b *BO) maximizeAcq(model *gp.GP) (space.Config, error) {
	_, best, ok := b.Best()
	if !ok {
		best = 0
	}
	if b.opts.LogY {
		best = math.Log(best + b.logShift)
	}
	seen := make(map[string]bool, b.N())
	for _, obs := range b.History() {
		seen[obs.Config.Key()] = true
	}
	type cand struct {
		cfg   space.Config
		score float64
	}
	var top cand
	top.score = math.Inf(-1)
	var topAny cand
	topAny.score = math.Inf(-1)
	for i := 0; i < b.opts.Candidates; i++ {
		cfg := b.space.Sample(b.rng)
		mu, v, err := model.Predict(b.encode(cfg))
		if err != nil {
			return nil, err
		}
		sc := b.opts.Acq.Score(mu, math.Sqrt(v), best)
		if sc > topAny.score {
			topAny = cand{cfg, sc}
		}
		if sc > top.score && !seen[cfg.Key()] {
			top = cand{cfg, sc}
		}
	}
	if top.cfg == nil {
		top = topAny // everything seen (tiny discrete space): repeat is fine
	}
	if b.opts.RefineIters > 0 && top.cfg != nil {
		refined := b.refine(model, top.cfg, best)
		// Refinement decodes arbitrary cube points, which can step outside
		// declared constraints; discard such candidates.
		if refined != nil && b.space.Validate(refined) != nil {
			refined = nil
		}
		if refined != nil && !seen[refined.Key()] {
			mu, v, err := model.Predict(b.encode(refined))
			if err == nil {
				if sc := b.opts.Acq.Score(mu, math.Sqrt(v), best); sc > top.score {
					top = cand{refined, sc}
				}
			}
		}
	}
	if top.cfg == nil {
		return b.space.Sample(b.rng), nil
	}
	return top.cfg, nil
}

// refine runs Nelder-Mead on the unit-cube encoding around cfg, maximizing
// the acquisition; categorical assignments ride along via Decode snapping.
func (b *BO) refine(model *gp.GP, cfg space.Config, best float64) space.Config {
	x0 := b.space.Encode(cfg)
	obj := func(x []float64) float64 {
		c := b.space.Decode(x)
		mu, v, err := model.Predict(b.encode(c))
		if err != nil {
			return math.Inf(1)
		}
		return -b.opts.Acq.Score(mu, math.Sqrt(v), best)
	}
	x, _ := numopt.NelderMead(obj, x0, numopt.Options{MaxIter: b.opts.RefineIters, Scale: 0.05})
	return b.space.Decode(x)
}

// SuggestN implements optimizer.BatchSuggester via the constant-liar
// heuristic: after each pick the surrogate is refitted as if the pick had
// been observed at the current incumbent value, pushing later picks away.
func (b *BO) SuggestN(n int) ([]space.Config, error) {
	if n <= 1 || b.N() < b.opts.InitSamples {
		out := make([]space.Config, 0, n)
		for i := 0; i < n; i++ {
			cfg, err := b.Suggest()
			if err != nil {
				return nil, err
			}
			out = append(out, cfg)
		}
		return out, nil
	}
	if b.modelDirty || b.model == nil {
		if err := b.refit(); err != nil {
			return b.space.SampleN(b.rng, n), nil
		}
	}
	_, lie, _ := b.Best()
	hist := b.History()
	xs := make([][]float64, len(hist))
	ys := make([]float64, len(hist))
	for i, obs := range hist {
		xs[i] = b.encode(obs.Config)
		ys[i] = obs.Value
	}
	ys = clampInvalid(ys)
	if b.opts.LogY {
		var shift float64
		ys, shift = logWarp(ys)
		lie = math.Log(lie + shift)
	}
	model := gp.New(b.opts.Kernel.Clone(), b.opts.Noise)
	out := make([]space.Config, 0, n)
	for i := 0; i < n; i++ {
		if err := model.Fit(xs, ys); err != nil {
			out = append(out, b.space.Sample(b.rng))
			continue
		}
		cfg, err := b.maximizeAcq(model)
		if err != nil || cfg == nil {
			cfg = b.space.Sample(b.rng)
		}
		out = append(out, cfg)
		xs = append(xs, b.encode(cfg))
		ys = append(ys, lie)
	}
	return out, nil
}

// logWarp returns log-transformed values and the shift applied to keep
// arguments positive (0 when all values already are).
func logWarp(ys []float64) ([]float64, float64) {
	shift := 0.0
	for _, y := range ys {
		if y-1e-12 < -shift {
			shift = -(y - 1e-12)
		}
	}
	out := make([]float64, len(ys))
	for i, y := range ys {
		out[i] = math.Log(y + shift + 1e-12)
	}
	return out, shift
}

// Predict exposes the surrogate's posterior at cfg: mean and standard
// deviation, in model units — log-warped when Options.LogY is set. Used by
// safe-exploration guardrails and diagnostics. Before the model exists it
// returns ok=false.
func (b *BO) Predict(cfg space.Config) (mean, std float64, ok bool) {
	if b.modelDirty || b.model == nil {
		if b.N() == 0 {
			return 0, 0, false
		}
		if err := b.refit(); err != nil {
			return 0, 0, false
		}
	}
	mu, v, err := b.model.Predict(b.encode(cfg))
	if err != nil {
		return 0, 0, false
	}
	return mu, math.Sqrt(v), true
}
