package bo

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"autotune/internal/gp"
	"autotune/internal/numopt"
	"autotune/internal/optimizer"
	"autotune/internal/space"
)

// Options configures a BO optimizer. The zero value is usable: NewWith
// fills defaults.
type Options struct {
	// Acq is the acquisition function (default EI).
	Acq Acquisition
	// Kernel is the surrogate kernel template (default 1.0 * Matérn 5/2
	// with lengthscale 0.2, a solid default on unit-cube encodings).
	Kernel gp.Kernel
	// Noise is the initial observation-noise variance in normalized
	// target units (default 1e-6; raised automatically by hyperparameter
	// fitting when the data is noisy).
	Noise float64
	// InitSamples is the number of warm-up suggestions before the model
	// kicks in: the space default first, then stratified random samples
	// that cycle every categorical level (default max(5, L+1) where L is
	// the largest categorical level count, so every level is observed at
	// least once before the surrogate takes over).
	InitSamples int
	// Candidates is the random candidate pool size for acquisition
	// maximization (default 512).
	Candidates int
	// RefineIters enables Nelder-Mead local refinement of the best
	// candidate for this many iterations (default 40; 0 disables).
	RefineIters int
	// FitHyperEvery re-optimizes kernel hyperparameters every k
	// observations (default 10; 0 disables).
	FitHyperEvery int
	// OneHot selects one-hot encoding for categoricals (default true,
	// which distance-based kernels prefer; false uses scaled indices).
	OneHot bool
	// LogY fits the surrogate on log-transformed objective values, the
	// standard warping for heavy-tailed positive objectives like latency
	// (a single terrible configuration would otherwise dominate target
	// normalization and blind the model near the optimum). Requires all
	// observations to be positive; non-positive values fall back to a
	// shifted log.
	LogY bool
	// AcqRestarts is the number of independent restarts the multi-start
	// acquisition search runs (default 8). Candidates are split evenly
	// across restarts, each drawing from its own RNG derived from (search
	// seed, restart index).
	AcqRestarts int
	// AcqWorkers bounds the goroutines scoring restarts concurrently
	// (default min(GOMAXPROCS, AcqRestarts)). Every value produces
	// bitwise-identical suggestions: restart RNGs are index-derived and
	// results are reduced in index order.
	AcqWorkers int
	// FullRefit disables the incremental surrogate path: every batch of
	// new observations triggers an O(n³) from-scratch refit as earlier
	// versions did. Off by default; the incremental O(n²) path is used
	// whenever it is exactly equivalent. Kept as a benchmark arm and
	// escape hatch.
	FullRefit bool
	// LegacyLoop disables the flat-buffer acquisition search and the
	// surrogate's reused-workspace paths, restoring the allocating
	// per-candidate loop. Off by default; kept as a benchmark arm and
	// escape hatch. The two loops make identical seeded random draws but
	// deduplicate differently (typed config keys vs encoded vectors), so
	// their suggestions are not required to coincide.
	LegacyLoop bool
	// GPWorkers bounds the goroutines the surrogate uses for gram
	// construction and batched prediction (default GOMAXPROCS). Every
	// value produces bitwise-identical models: rows are partitioned by
	// index and every matrix element has exactly one writer.
	GPWorkers int
	// Surrogate selects the surrogate tier policy (surrogate.go). The
	// default SurrogateAuto switches dense → sparse → forest as history
	// grows past DenseMax and SparseMax; the other values pin one tier.
	Surrogate SurrogatePolicy
	// DenseMax is the largest history the auto policy serves with the
	// exact incremental GP (default 512). Above it, per-observation
	// maintenance would cost O(n²) and keep growing.
	DenseMax int
	// SparseMax is the largest history the auto policy serves with the
	// subset-of-data sparse GP before switching to the random forest
	// (default 4096).
	SparseMax int
	// SparseBudget is the sparse tier's inducing-set size (default 256):
	// observe cost is O(budget²) regardless of history depth.
	SparseBudget int
	// TrustRegions is the number of local models the SurrogateLocal tier
	// maintains (default 4).
	TrustRegions int
	// LocalCap caps the observations each local model conditions on
	// (default 256), keeping every local fit O(cap²).
	LocalCap int
}

func (o Options) withDefaults() Options {
	if o.Acq == nil {
		o.Acq = NewEI()
	}
	if o.Kernel == nil {
		o.Kernel = gp.Scale(1, gp.NewMatern(2.5, 0.2))
	}
	if o.Noise <= 0 {
		o.Noise = 1e-6
	}
	if o.InitSamples <= 0 {
		o.InitSamples = 5
	}
	if o.Candidates <= 0 {
		o.Candidates = 512
	}
	if o.RefineIters < 0 {
		o.RefineIters = 0
	}
	if o.FitHyperEvery < 0 {
		o.FitHyperEvery = 0
	}
	if o.AcqRestarts <= 0 {
		o.AcqRestarts = 8
	}
	if o.AcqWorkers <= 0 {
		o.AcqWorkers = runtime.GOMAXPROCS(0)
		if o.AcqWorkers > o.AcqRestarts {
			o.AcqWorkers = o.AcqRestarts
		}
	}
	if o.DenseMax <= 0 {
		o.DenseMax = 512
	}
	if o.SparseMax <= 0 {
		o.SparseMax = 4096
	}
	if o.SparseMax < o.DenseMax {
		o.SparseMax = o.DenseMax
	}
	if o.SparseBudget <= 0 {
		o.SparseBudget = 256
	}
	if o.TrustRegions <= 0 {
		o.TrustRegions = 4
	}
	if o.LocalCap <= 0 {
		o.LocalCap = 256
	}
	return o
}

// SurrogateStats counts how the surrogate has been maintained, for tests
// and diagnostics.
type SurrogateStats struct {
	// IncrementalUpdates is the number of observations absorbed via O(n²)
	// rank-1 Cholesky row updates.
	IncrementalUpdates int
	// FullRefits is the number of from-scratch surrogate rebuilds,
	// including hyperparameter refits (and, under the forest and local
	// tiers, forest fits and region-model rebuilds).
	FullRefits int
	// HyperRefits is the subset of full refits that also re-optimized
	// kernel hyperparameters.
	HyperRefits int
	// Tier is the currently active surrogate tier ("dense", "sparse",
	// "local", or "forest"); empty before the first model build.
	Tier string
	// TierSwitches counts automatic tier changes; Switches records each
	// one with the history size at which it fired. Both are pure
	// functions of (history length, Options) — identical across runs,
	// worker counts, and resume.
	TierSwitches int
	Switches     []TierSwitch
	// Sparse mirrors the sparse tier's absorb/skip/rebuild counters while
	// that tier is active.
	Sparse gp.SparseStats
	// ForestRefits counts forest rebuilds under the forest tier.
	ForestRefits int
	// LocalRestarts counts trust-region restarts under the local tier.
	LocalRestarts int
}

// BO is a sequential model-based optimizer with a GP surrogate. It
// implements optimizer.Optimizer and optimizer.BatchSuggester.
type BO struct {
	optimizer.Recorder
	space *space.Space
	rng   *rand.Rand
	opts  Options

	// model is the active global surrogate: *gp.GP (dense tier),
	// *gp.SparseGP (sparse), or *forestSur (forest). Under the local tier
	// it is nil and local holds the trust regions instead.
	model      surModel
	local      *localModels
	tier       SurrogatePolicy // resolved tier; SurrogateAuto until first build
	surSeed    int64           // lazily drawn seed for sparse/forest/local tiers
	surSeeded  bool
	modelDirty bool
	lastHyper  int
	logShift   float64 // shift used by the LogY warp in the current fit

	// absorbed is how many history observations the surrogate currently
	// reflects; haveInvalid whether any of them were non-finite before
	// clamping (which pins the clamp penalty to global history stats and
	// forces full refits).
	absorbed    int
	haveInvalid bool
	stats       SurrogateStats

	// Flat-buffer acquisition search state (acqfast.go). sampler draws
	// candidates straight into reused scalar/encoding vectors; seenEnc
	// dedups on encoded keys and is maintained incrementally over the
	// first seenN history entries; acqWS holds one workspace per search
	// worker and fastRes one outcome slot per restart.
	sampler *space.EncodedSampler
	seenEnc map[string]bool
	seenN   int
	encBuf  []float64
	keyBuf  []byte
	acqWS   []*acqWorkspace
	fastRes []fastOutcome
}

// Stats returns counters describing how the surrogate has been maintained
// (incremental updates, full refits, tier switches) since construction.
func (b *BO) Stats() SurrogateStats {
	st := b.stats
	if b.tier != SurrogateAuto {
		st.Tier = b.tier.String()
	}
	if sp, ok := b.model.(*gp.SparseGP); ok {
		st.Sparse = sp.Stats()
	}
	if b.local != nil {
		st.LocalRestarts = b.local.Restarts()
	}
	st.Switches = append([]TierSwitch(nil), b.stats.Switches...)
	return st
}

// SetGPWorkers overrides Options.GPWorkers after construction, propagating
// to an existing surrogate. Every value produces bitwise-identical models,
// so it is safe to change at any point in a run.
func (b *BO) SetGPWorkers(n int) {
	b.opts.GPWorkers = n
	if gm, ok := b.model.(gpModel); ok {
		gm.SetWorkers(n)
	}
}

// SetSurrogate overrides Options.Surrogate after construction but before
// the first model build, for callers (like the CLI) that construct
// optimizers through a generic factory.
func (b *BO) SetSurrogate(p SurrogatePolicy) { b.opts.Surrogate = p }

// SetDenseMax overrides the auto policy's dense→sparse switch threshold;
// values <= 0 are ignored.
func (b *BO) SetDenseMax(n int) {
	if n > 0 {
		b.opts.DenseMax = n
		if b.opts.SparseMax < n {
			b.opts.SparseMax = n
		}
	}
}

// New returns a BO optimizer with default options.
func New(s *space.Space, rng *rand.Rand) *BO {
	return NewWith(s, rng, Options{OneHot: true, RefineIters: 40, FitHyperEvery: 10})
}

// NewWith returns a BO optimizer with explicit options.
func NewWith(s *space.Space, rng *rand.Rand, opts Options) *BO {
	explicitInit := opts.InitSamples > 0
	opts = opts.withDefaults()
	if !explicitInit {
		maxLevels := 0
		for _, p := range s.Params() {
			if l := p.Levels(); l > maxLevels {
				maxLevels = l
			}
		}
		if maxLevels+1 > opts.InitSamples {
			opts.InitSamples = maxLevels + 1
		}
	}
	// The surrogate seed is drawn eagerly so every tier consumes the same
	// rng prefix: a pinned sparse run and a pinned dense run then share
	// their entire draw sequence, which is what makes "sparse == dense
	// below the inducing budget" hold for whole suggestion streams, not
	// just individual model predictions.
	return &BO{space: s, rng: rng, opts: opts, surSeed: rng.Int63(), surSeeded: true}
}

// Name implements optimizer.Optimizer.
func (b *BO) Name() string { return "bo-" + b.opts.Acq.Name() }

// Space returns the optimizer's configuration space.
func (b *BO) Space() *space.Space { return b.space }

func (b *BO) encode(cfg space.Config) []float64 {
	if b.opts.OneHot {
		return b.space.EncodeOneHot(cfg)
	}
	return b.space.Encode(cfg)
}

// Observe implements optimizer.Optimizer and marks the surrogate stale.
func (b *BO) Observe(cfg space.Config, value float64) error {
	if err := b.Recorder.Observe(cfg, value); err != nil {
		return err
	}
	b.modelDirty = true
	return nil
}

// refit rebuilds the active tier's surrogate from history; under the GP
// tiers, hyperparameters are refitted every FitHyperEvery observations.
func (b *BO) refit() error {
	hist := b.History()
	xs := make([][]float64, len(hist))
	ys := make([]float64, len(hist))
	haveInvalid := false
	for i, obs := range hist {
		xs[i] = b.encode(obs.Config)
		ys[i] = obs.Value
		if math.IsInf(obs.Value, 0) || math.IsNaN(obs.Value) {
			haveInvalid = true
		}
	}
	ys = clampInvalid(ys)
	if b.opts.LogY {
		ys, b.logShift = logWarp(ys)
	}
	switch b.tier {
	case SurrogateLocal:
		if b.local == nil {
			b.local = newLocalModels(b)
		}
		b.model = nil
		if err := b.local.rebuild(b, hist, xs, ys); err != nil {
			return fmt.Errorf("bo: local rebuild: %w", err)
		}
	case SurrogateForest:
		f, ok := b.model.(*forestSur)
		if !ok {
			f = newForestSur(0, b.surrogateSeed(), &b.stats.ForestRefits)
			b.model = f
		}
		if err := f.Fit(xs, ys); err != nil {
			return err
		}
	default: // dense and sparse share the exact-GP maintenance path
		gm := b.gpModelForTier()
		every := b.opts.FitHyperEvery
		if every > 0 && len(hist)-b.lastHyper >= every {
			b.lastHyper = len(hist)
			b.stats.HyperRefits++
			if err := gm.FitHyper(xs, ys, 2, b.rng); err != nil {
				return fmt.Errorf("bo: hyper fit: %w", err)
			}
		} else if err := gm.Fit(xs, ys); err != nil {
			return fmt.Errorf("bo: fit: %w", err)
		}
	}
	b.stats.FullRefits++
	b.absorbed = len(hist)
	b.haveInvalid = haveInvalid
	b.modelDirty = false
	return nil
}

// gpModelForTier returns the current GP-backed surrogate, constructing
// (or replacing, after a tier switch) it as needed. The dense tier keeps
// the exact incremental GP; the sparse tier wraps the same GP behind a
// deterministic inducing-point subset.
func (b *BO) gpModelForTier() gpModel {
	if b.tier == SurrogateSparse {
		if sp, ok := b.model.(*gp.SparseGP); ok {
			return sp
		}
		sp := gp.NewSparse(b.opts.Kernel.Clone(), b.opts.Noise, b.opts.SparseBudget, b.surrogateSeed())
		sp.SetWorkers(b.opts.GPWorkers)
		b.model = sp
		return sp
	}
	if g, ok := b.model.(*gp.GP); ok {
		return g
	}
	g := gp.New(b.opts.Kernel.Clone(), b.opts.Noise)
	g.SetLegacyAlloc(b.opts.LegacyLoop)
	g.SetWorkers(b.opts.GPWorkers)
	b.model = g
	return g
}

// ensureModel brings the surrogate up to date with history: first the
// tier decision (a pure function of history size), then incremental
// absorption wherever it is exactly equivalent to refitting — otherwise
// (tier switch, hyperparameter refit due, non-finite values in play, a
// LogY shift change, or Options.FullRefit) a rebuild from scratch.
func (b *BO) ensureModel() error {
	n := len(b.History())
	tier := b.resolveTier(n)
	if tier != b.tier {
		if b.tier != SurrogateAuto { // initial placement is not a switch
			b.stats.TierSwitches++
			b.stats.Switches = append(b.stats.Switches, TierSwitch{
				N: n, From: b.tier.String(), To: tier.String(),
			})
		}
		b.tier = tier
		return b.refit()
	}
	if b.model == nil && b.local == nil {
		return b.refit()
	}
	if !b.modelDirty {
		return nil
	}
	hist := b.History()
	if b.opts.FullRefit || b.haveInvalid || b.absorbed > len(hist) {
		return b.refit()
	}
	if b.tier != SurrogateForest {
		if every := b.opts.FitHyperEvery; every > 0 && len(hist)-b.lastHyper >= every {
			return b.refit()
		}
	}
	pending := hist[b.absorbed:]
	for _, obs := range pending {
		if math.IsInf(obs.Value, 0) || math.IsNaN(obs.Value) {
			// clampInvalid's penalty is derived from the whole history;
			// only a full refit applies it consistently.
			return b.refit()
		}
		if b.opts.LogY && obs.Value-1e-12 < -b.logShift {
			// The warp shift would grow, rewriting every past target.
			return b.refit()
		}
	}
	if b.tier == SurrogateLocal {
		b.local.sync(b, hist)
		b.absorbed = len(hist)
		b.modelDirty = false
		return nil
	}
	for _, obs := range pending {
		if err := b.model.Observe(b.encode(obs.Config), b.modelUnitY(obs.Value)); err != nil {
			return fmt.Errorf("bo: incremental observe: %w", err)
		}
		b.absorbed++
		if b.tier != SurrogateForest {
			b.stats.IncrementalUpdates++
		}
	}
	b.modelDirty = false
	return nil
}

// Suggest implements optimizer.Optimizer: warm-up samples first, then
// acquisition maximization over the surrogate.
func (b *BO) Suggest() (space.Config, error) {
	n := b.N()
	if n == 0 {
		return b.space.Default(), nil
	}
	if n < b.opts.InitSamples {
		return b.stratifiedSample(n - 1), nil
	}
	if err := b.ensureModel(); err != nil {
		// Surrogate failure must not stall tuning: fall back to random.
		return b.space.Sample(b.rng), nil
	}
	if b.tier == SurrogateLocal {
		cfgs, err := b.local.suggestN(b, 1)
		if err != nil || len(cfgs) == 0 {
			return b.space.Sample(b.rng), nil
		}
		return cfgs[0], nil
	}
	cfg, err := b.maximizeAcq(b.model)
	if err != nil {
		return b.space.Sample(b.rng), nil
	}
	return cfg, nil
}

// stratifiedSample draws a random configuration whose categorical and
// boolean parameters are pinned to level (i mod L), guaranteeing every
// level appears during warm-up — a GP one-hot encoding gets no gradient
// toward levels it has never seen.
func (b *BO) stratifiedSample(i int) space.Config {
	cfg := b.space.Sample(b.rng)
	for _, p := range b.space.Params() {
		switch p.Kind {
		case space.KindCategorical:
			cfg[p.Name] = p.Values[i%len(p.Values)]
		case space.KindBool:
			cfg[p.Name] = i%2 == 1
		}
	}
	return b.space.Clip(cfg)
}

// maximizeAcq dispatches between the flat-buffer acquisition search
// (acqfast.go, the default) and the allocating legacy loop kept as a
// benchmark arm.
func (b *BO) maximizeAcq(model surModel) (space.Config, error) {
	if b.opts.LegacyLoop {
		return b.maximizeAcqLegacy(model)
	}
	return b.maximizeAcqFast(model)
}

// maximizeAcqLegacy runs the multi-start acquisition search (see searchAcq),
// optionally refines the best numeric point locally, and dedups against
// already-evaluated configs. The incumbent comes from the model itself
// (MinY), so fantasized observations on a cloned surrogate participate.
func (b *BO) maximizeAcqLegacy(model surModel) (space.Config, error) {
	best := model.MinY()
	seen := make(map[string]bool, b.N())
	for _, obs := range b.History() {
		seen[obs.Config.Key()] = true
	}
	top, topAny, err := b.searchAcq(model, best, seen)
	if err != nil {
		return nil, err
	}
	if top.cfg == nil {
		top = topAny // everything seen (tiny discrete space): repeat is fine
	}
	if b.opts.RefineIters > 0 && top.cfg != nil {
		refined := b.refine(model, top.cfg, best)
		// Refinement decodes arbitrary cube points, which can step outside
		// declared constraints; discard such candidates.
		if refined != nil && b.space.Validate(refined) != nil {
			refined = nil
		}
		if refined != nil && !seen[refined.Key()] {
			mu, v, err := model.Predict(b.encode(refined))
			if err == nil {
				if sc := b.opts.Acq.Score(mu, math.Sqrt(v), best); sc > top.score {
					top = cand{refined, sc}
				}
			}
		}
	}
	if top.cfg == nil {
		return b.space.Sample(b.rng), nil
	}
	return top.cfg, nil
}

// refine runs Nelder-Mead on the unit-cube encoding around cfg, maximizing
// the acquisition; categorical assignments ride along via Decode snapping.
func (b *BO) refine(model surModel, cfg space.Config, best float64) space.Config {
	x0 := b.space.Encode(cfg)
	obj := func(x []float64) float64 {
		c := b.space.Decode(x)
		mu, v, err := model.Predict(b.encode(c))
		if err != nil {
			return math.Inf(1)
		}
		return -b.opts.Acq.Score(mu, math.Sqrt(v), best)
	}
	x, _ := numopt.NelderMead(obj, x0, numopt.Options{MaxIter: b.opts.RefineIters, Scale: 0.05})
	return b.space.Decode(x)
}

// SuggestN implements optimizer.BatchSuggester via the constant-liar
// heuristic: the fitted surrogate is cloned once, and after each pick the
// clone absorbs the pick at the incumbent value with an O(n²) rank-1
// update — no per-pick O(n³) refit — pushing later picks away.
func (b *BO) SuggestN(n int) ([]space.Config, error) {
	if n <= 1 || b.N() < b.opts.InitSamples {
		out := make([]space.Config, 0, n)
		for i := 0; i < n; i++ {
			cfg, err := b.Suggest()
			if err != nil {
				return nil, err
			}
			out = append(out, cfg)
		}
		return out, nil
	}
	if err := b.ensureModel(); err != nil {
		return b.space.SampleN(b.rng, n), nil
	}
	if b.tier == SurrogateLocal {
		cfgs, err := b.local.suggestN(b, n)
		if err != nil {
			return b.space.SampleN(b.rng, n), nil
		}
		return cfgs, nil
	}
	model := cloneSur(b.model)
	lie := model.MinY() // incumbent in model units (post clamp and warp)
	out := make([]space.Config, 0, n)
	for i := 0; i < n; i++ {
		cfg, err := b.maximizeAcq(model)
		if err != nil || cfg == nil {
			cfg = b.space.Sample(b.rng)
		}
		out = append(out, cfg)
		if i == n-1 {
			break // the last pick has no later picks to push away
		}
		if err := model.Observe(b.encode(cfg), lie); err != nil {
			// Fantasy absorption failed (degenerate clone); later picks
			// simply are not pushed away from this one.
			continue
		}
	}
	return out, nil
}

// logWarp returns log-transformed values and the shift applied to keep
// arguments positive (0 when all values already are).
func logWarp(ys []float64) ([]float64, float64) {
	shift := 0.0
	for _, y := range ys {
		if y-1e-12 < -shift {
			shift = -(y - 1e-12)
		}
	}
	out := make([]float64, len(ys))
	for i, y := range ys {
		out[i] = math.Log(y + shift + 1e-12)
	}
	return out, shift
}

// Predict exposes the surrogate's posterior at cfg: mean and standard
// deviation, in model units — log-warped when Options.LogY is set. Used by
// safe-exploration guardrails and diagnostics. Before the model exists it
// returns ok=false.
func (b *BO) Predict(cfg space.Config) (mean, std float64, ok bool) {
	if b.N() == 0 {
		return 0, 0, false
	}
	if err := b.ensureModel(); err != nil {
		return 0, 0, false
	}
	var mu, v float64
	var err error
	if b.tier == SurrogateLocal {
		mu, v, err = b.local.predict(b, cfg)
	} else {
		mu, v, err = b.model.Predict(b.encode(cfg))
	}
	if err != nil {
		return 0, 0, false
	}
	return mu, math.Sqrt(v), true
}
