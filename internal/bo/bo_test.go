package bo

import (
	"math"
	"math/rand"
	"testing"

	"autotune/internal/optimizer"
	"autotune/internal/space"
	"autotune/internal/testfunc"
)

func TestAcquisitionShapes(t *testing.T) {
	pi, ei, lcb := NewPI(), NewEI(), NewLCB()
	best := 1.0
	// A point predicted clearly better than best scores high.
	if pi.Score(0, 0.1, best) < 0.99 {
		t.Fatal("PI should be ~1 for clear improvement")
	}
	if !(ei.Score(0, 0.1, best) > ei.Score(0.9, 0.1, best)) {
		t.Fatal("EI should prefer larger improvement")
	}
	// More uncertainty increases EI when means are equal.
	if !(ei.Score(1, 0.5, best) > ei.Score(1, 0.01, best)) {
		t.Fatal("EI should reward uncertainty")
	}
	// LCB prefers low mean and high variance.
	if !(lcb.Score(0, 0.1, best) > lcb.Score(1, 0.1, best)) {
		t.Fatal("LCB should prefer low mean")
	}
	if !(lcb.Score(1, 1, best) > lcb.Score(1, 0.1, best)) {
		t.Fatal("LCB should prefer high std")
	}
}

func TestAcquisitionZeroStd(t *testing.T) {
	ei, pi := NewEI(), NewPI()
	if got := ei.Score(0.5, 0, 1); math.Abs(got-(1-0.01-0.5)) > 1e-12 {
		t.Fatalf("EI zero-std improvement = %v", got)
	}
	if got := ei.Score(2, 0, 1); got != 0 {
		t.Fatalf("EI zero-std no improvement = %v", got)
	}
	if pi.Score(0.5, 0, 1) != 1 || pi.Score(2, 0, 1) != 0 {
		t.Fatal("PI zero-std wrong")
	}
}

func TestByName(t *testing.T) {
	if ByName("pi").Name() != "pi" || ByName("lcb").Name() != "lcb" ||
		ByName("ei").Name() != "ei" || ByName("bogus").Name() != "ei" {
		t.Fatal("ByName wrong")
	}
}

func TestClampInvalid(t *testing.T) {
	ys := clampInvalid([]float64{1, 2, math.Inf(1), math.NaN(), 3})
	for _, y := range ys {
		if math.IsInf(y, 0) || math.IsNaN(y) {
			t.Fatalf("clamp left invalid value: %v", ys)
		}
	}
	if !(ys[2] > 3 && ys[3] > 3) {
		t.Fatalf("penalty should exceed worst: %v", ys)
	}
	if ys[0] != 1 || ys[4] != 3 {
		t.Fatal("finite values should be untouched")
	}
	// All invalid.
	all := clampInvalid([]float64{math.Inf(1), math.NaN()})
	for _, y := range all {
		if math.IsInf(y, 0) || math.IsNaN(y) {
			t.Fatal("all-invalid clamp failed")
		}
	}
	// Constant values: penalty still strictly greater.
	c := clampInvalid([]float64{5, 5, math.Inf(1)})
	if !(c[2] > 5) {
		t.Fatalf("constant clamp = %v", c)
	}
}

func TestBOOnBranin(t *testing.T) {
	f := testfunc.Branin()
	rng := rand.New(rand.NewSource(1))
	b := New(f.Space, rng)
	_, val, err := optimizer.Run(b, f.Eval, 40)
	if err != nil {
		t.Fatal(err)
	}
	if val > f.Optimum+1.0 {
		t.Fatalf("BO best = %v, want near %v", val, f.Optimum)
	}
}

func TestBOBeatsRandomOnSchedCurve(t *testing.T) {
	f := testfunc.SchedMigrationCurve()
	budget := 25
	seeds := 8
	boWins := 0
	for s := 0; s < seeds; s++ {
		rngB := rand.New(rand.NewSource(int64(100 + s)))
		rngR := rand.New(rand.NewSource(int64(100 + s)))
		b := New(f.Space, rngB)
		r := optimizer.NewRandom(f.Space, rngR)
		_, bv, err := optimizer.Run(b, f.Eval, budget)
		if err != nil {
			t.Fatal(err)
		}
		_, rv, err := optimizer.Run(r, f.Eval, budget)
		if err != nil {
			t.Fatal(err)
		}
		if bv <= rv {
			boWins++
		}
	}
	if boWins < seeds/2+1 {
		t.Fatalf("BO won only %d/%d seeds vs random", boWins, seeds)
	}
}

func TestBOFirstSuggestionIsDefault(t *testing.T) {
	s := space.MustNew(space.Float("x", 0, 1).WithDefault(0.3))
	b := New(s, rand.New(rand.NewSource(2)))
	cfg, err := b.Suggest()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Float("x") != 0.3 {
		t.Fatalf("first suggestion = %v, want default", cfg)
	}
}

func TestBOHandlesCrashValues(t *testing.T) {
	// Objective returns +Inf in half the space; BO must keep functioning.
	s := space.MustNew(space.Float("x", 0, 1))
	f := func(c space.Config) float64 {
		x := c.Float("x")
		if x > 0.5 {
			return math.Inf(1)
		}
		return (x - 0.3) * (x - 0.3)
	}
	b := New(s, rand.New(rand.NewSource(3)))
	cfg, val, err := optimizer.Run(b, f, 25)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(val, 0) {
		t.Fatal("best value is Inf")
	}
	if math.Abs(cfg.Float("x")-0.3) > 0.15 {
		t.Fatalf("best x = %v, want near 0.3", cfg.Float("x"))
	}
}

func TestBOCategoricalSpace(t *testing.T) {
	s := space.MustNew(
		space.Categorical("mode", "slow", "fast", "turbo"),
		space.Float("x", 0, 1),
	)
	f := func(c space.Config) float64 {
		base := map[string]float64{"slow": 2, "fast": 1, "turbo": 0}[c.Str("mode")]
		return base + (c.Float("x")-0.5)*(c.Float("x")-0.5)
	}
	b := New(s, rand.New(rand.NewSource(4)))
	cfg, _, err := optimizer.Run(b, f, 35)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Str("mode") != "turbo" {
		t.Fatalf("best mode = %v", cfg.Str("mode"))
	}
}

func TestBOSuggestNDiverse(t *testing.T) {
	f := testfunc.Branin()
	rng := rand.New(rand.NewSource(5))
	b := New(f.Space, rng)
	// Seed some observations.
	for i := 0; i < 8; i++ {
		cfg := f.Space.Sample(rng)
		b.Observe(cfg, f.Eval(cfg))
	}
	batch, err := b.SuggestN(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 4 {
		t.Fatalf("batch = %d", len(batch))
	}
	keys := map[string]bool{}
	for _, c := range batch {
		keys[c.Key()] = true
	}
	if len(keys) < 3 {
		t.Fatalf("constant liar produced %d distinct of 4", len(keys))
	}
}

func TestBOPredict(t *testing.T) {
	s := space.MustNew(space.Float("x", 0, 1))
	b := New(s, rand.New(rand.NewSource(6)))
	if _, _, ok := b.Predict(s.Default()); ok {
		t.Fatal("Predict before data should be !ok")
	}
	for i := 0; i <= 10; i++ {
		x := float64(i) / 10
		b.Observe(space.Config{"x": x}, x*x)
	}
	mu, sd, ok := b.Predict(space.Config{"x": 0.5})
	if !ok {
		t.Fatal("Predict failed")
	}
	if math.Abs(mu-0.25) > 0.1 {
		t.Fatalf("predicted mean = %v, want ~0.25", mu)
	}
	if sd < 0 {
		t.Fatal("negative std")
	}
}

func TestBODedupsTinyDiscreteSpace(t *testing.T) {
	// 3-point space: after all are observed, suggestions must still work.
	s := space.MustNew(space.Int("n", 1, 3))
	f := func(c space.Config) float64 { return float64(c.Int("n")) }
	b := NewWith(s, rand.New(rand.NewSource(7)), Options{InitSamples: 2, Candidates: 64})
	_, val, err := optimizer.Run(b, f, 10)
	if err != nil {
		t.Fatal(err)
	}
	if val != 1 {
		t.Fatalf("best = %v, want 1", val)
	}
}

func TestBOName(t *testing.T) {
	s := space.MustNew(space.Float("x", 0, 1))
	if New(s, rand.New(rand.NewSource(8))).Name() != "bo-ei" {
		t.Fatal("name")
	}
	b := NewWith(s, rand.New(rand.NewSource(8)), Options{Acq: NewLCB()})
	if b.Name() != "bo-lcb" {
		t.Fatal("name with lcb")
	}
}

func TestLogYOption(t *testing.T) {
	// A heavy-tailed surface: LogY must still find the optimum, and the
	// surrogate must handle non-positive values via the shifted log.
	s := space.MustNew(space.Float("x", 0, 1))
	f := func(c space.Config) float64 {
		x := c.Float("x")
		return math.Exp(8*math.Abs(x-0.3)) - 2 // ranges from -1 to ~270
	}
	b := NewWith(s, rand.New(rand.NewSource(10)), Options{LogY: true, OneHot: true})
	cfg, _, err := optimizer.Run(b, f, 30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cfg.Float("x")-0.3) > 0.1 {
		t.Fatalf("best x = %v, want ~0.3", cfg.Float("x"))
	}
	// Predict works in warped units.
	if _, sd, ok := b.Predict(s.Default()); !ok || sd < 0 {
		t.Fatal("Predict under LogY failed")
	}
}

func TestStratifiedWarmupCoversLevels(t *testing.T) {
	s := space.MustNew(
		space.Categorical("c", "a", "b", "d", "e", "f", "g"),
		space.Float("x", 0, 1),
	)
	b := New(s, rand.New(rand.NewSource(11)))
	seen := map[string]bool{}
	// Default InitSamples is levels+1 = 7; the stratified warm-up must
	// visit every level at least once.
	for i := 0; i < 7; i++ {
		cfg, err := b.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		seen[cfg.Str("c")] = true
		b.Observe(cfg, float64(i))
	}
	if len(seen) != 6 {
		t.Fatalf("warm-up covered %d/6 levels: %v", len(seen), seen)
	}
}

func TestSuggestNBeforeWarmupDone(t *testing.T) {
	s := space.MustNew(space.Float("x", 0, 1))
	b := New(s, rand.New(rand.NewSource(12)))
	batch, err := b.SuggestN(3)
	if err != nil || len(batch) != 3 {
		t.Fatalf("batch %v err %v", batch, err)
	}
}
