package bo

import (
	"fmt"
	"math"
	"math/rand"

	"autotune/internal/forest"
	"autotune/internal/gp"
)

// surrogate.go is the surrogate tier layer: the policy enum, the model
// contracts the acquisition search runs against, and the random-forest
// deep-history surrogate. Tier selection itself lives in resolveTier; the
// switching mechanics are in bo.go's ensureModel/refit.

// SurrogatePolicy selects which surrogate serves Suggest. The default,
// SurrogateAuto, switches by history size: the dense incremental GP up to
// DenseMax observations, the subset-of-data sparse GP up to SparseMax,
// and the random forest beyond — each switch recorded in Stats(). The
// remaining values pin one tier as an escape hatch.
type SurrogatePolicy int

const (
	// SurrogateAuto switches dense → sparse → forest by history size.
	SurrogateAuto SurrogatePolicy = iota
	// SurrogateDense pins the exact incremental GP regardless of size.
	SurrogateDense
	// SurrogateSparse pins the inducing-point sparse GP.
	SurrogateSparse
	// SurrogateLocal pins TuRBO-style local trust-region GPs (trust.go).
	SurrogateLocal
	// SurrogateForest pins the random-forest surrogate.
	SurrogateForest
)

// String names the policy for stats and CLI output.
func (p SurrogatePolicy) String() string {
	switch p {
	case SurrogateDense:
		return "dense"
	case SurrogateSparse:
		return "sparse"
	case SurrogateLocal:
		return "local"
	case SurrogateForest:
		return "forest"
	default:
		return "auto"
	}
}

// ParseSurrogate maps a policy name (as printed by String) back to the
// enum; unknown names return SurrogateAuto and false.
func ParseSurrogate(name string) (SurrogatePolicy, bool) {
	switch name {
	case "auto", "":
		return SurrogateAuto, true
	case "dense":
		return SurrogateDense, true
	case "sparse":
		return SurrogateSparse, true
	case "local":
		return SurrogateLocal, true
	case "forest":
		return SurrogateForest, true
	}
	return SurrogateAuto, false
}

// TierSwitch records one surrogate tier change: the history size at which
// it fired and the tiers involved. Switch points are a pure function of
// (history length, Options), so they are identical across runs, worker
// counts, and resume.
type TierSwitch struct {
	N        int
	From, To string
}

// surModel is the contract the acquisition search and the constant-liar
// batch path need from a surrogate. *gp.GP, *gp.SparseGP, and *forestSur
// all satisfy it.
type surModel interface {
	Observe(x []float64, y float64) error
	Predict(x []float64) (mean, variance float64, err error)
	PredictN(xs [][]float64, mean, variance []float64) error
	MinY() float64
}

// gpModel extends surModel with the fitting entry points the GP-backed
// tiers (dense and sparse) share, so refit/ensureModel treat them
// uniformly — which is what makes "sparse == dense below the budget" a
// code-path identity rather than a numerical coincidence.
type gpModel interface {
	surModel
	Fit(x [][]float64, y []float64) error
	FitHyper(x [][]float64, y []float64, restarts int, rng *rand.Rand) error
	SetWorkers(n int)
}

// cloneSur deep-copies a surrogate for constant-liar fantasies.
func cloneSur(m surModel) surModel {
	switch m := m.(type) {
	case *gp.GP:
		return m.Clone()
	case *gp.SparseGP:
		return m.Clone()
	case *forestSur:
		return m.clone()
	}
	return nil
}

// resolveTier maps the current history size to a concrete tier under the
// configured policy. Auto thresholds compare against the full history
// length, so the switch points are deterministic in n.
func (b *BO) resolveTier(n int) SurrogatePolicy {
	switch b.opts.Surrogate {
	case SurrogateDense, SurrogateSparse, SurrogateLocal, SurrogateForest:
		return b.opts.Surrogate
	}
	switch {
	case n <= b.opts.DenseMax:
		return SurrogateDense
	case n <= b.opts.SparseMax:
		return SurrogateSparse
	default:
		return SurrogateForest
	}
}

// surrogateSeed returns the seed that decorrelates sparse selection and
// forest bootstraps across studies. NewWith draws it from the optimizer rng
// exactly once, eagerly, so every tier consumes an identical rng prefix and
// runs remain bitwise reproducible; the lazy branch only covers BO values
// constructed without NewWith (zero-value embedding in tests).
func (b *BO) surrogateSeed() int64 {
	if !b.surSeeded {
		b.surSeed = b.rng.Int63()
		b.surSeeded = true
	}
	return b.surSeed
}

// forestSur is the deep-history surrogate: a random-forest regressor over
// the encoded history. Refits cost O(trees · n log n) and are amortized by
// cadence (every max(8, n/16) observations), so per-observation
// maintenance is O(trees · log n) — the across-tree variance supplies the
// exploration signal exactly as in SMAC.
type forestSur struct {
	xs [][]float64
	ys []float64

	model  *forest.Forest
	trees  int
	seed   int64
	refits int
	fitted int // history size the forest currently reflects

	// refitCounter points at the shared ForestRefits stat so clones made
	// for constant-liar fantasies do not skew the real counter.
	refitCounter *int
}

// forestMinVariance floors the across-tree variance so acquisition
// scores never treat a unanimous forest as perfectly certain.
const forestMinVariance = 1e-10

func newForestSur(trees int, seed int64, counter *int) *forestSur {
	if trees <= 0 {
		trees = 24
	}
	return &forestSur{trees: trees, seed: seed, refitCounter: counter}
}

// fit rebuilds the forest over the full recorded data. The bootstrap rng
// derives from (seed, refit index), never from the optimizer stream, so
// cadence changes cannot shift unrelated draws.
func (f *forestSur) fit() error {
	rng := rand.New(rand.NewSource(searchSeed(f.seed, f.refits)))
	m, err := forest.Fit(f.xs, f.ys, forest.Options{Trees: f.trees}, rng)
	if err != nil {
		return fmt.Errorf("bo: forest fit: %w", err)
	}
	f.model = m
	f.refits++
	f.fitted = len(f.xs)
	if f.refitCounter != nil {
		*f.refitCounter++
	}
	return nil
}

// refitEvery is the refit cadence at the current size: frequent while the
// forest is small, amortized to n/16 as history deepens.
func (f *forestSur) refitEvery() int {
	e := f.fitted / 16
	if e < 8 {
		e = 8
	}
	return e
}

// Fit replaces the training data and rebuilds immediately.
func (f *forestSur) Fit(xs [][]float64, ys []float64) error {
	f.xs = append(f.xs[:0], xs...)
	f.ys = append(f.ys[:0], ys...)
	return f.fit()
}

// Observe appends one observation; the forest refits on cadence rather
// than per observation.
func (f *forestSur) Observe(x []float64, y float64) error {
	f.xs = append(f.xs, x)
	f.ys = append(f.ys, y)
	if f.model == nil || len(f.xs)-f.fitted >= f.refitEvery() {
		return f.fit()
	}
	return nil
}

// Predict returns the forest mean and floored across-tree variance.
//
//autolint:hotpath
func (f *forestSur) Predict(x []float64) (float64, float64, error) {
	if f.model == nil {
		return 0, 0, gp.ErrNotFitted
	}
	mean, v := f.model.Predict(x)
	if v < forestMinVariance {
		v = forestMinVariance
	}
	return mean, v, nil
}

// PredictN scores a batch serially: a forest lookup is O(trees · depth)
// with no shared scratch, so there is nothing to parallelize at this size.
//
//autolint:hotpath
func (f *forestSur) PredictN(xs [][]float64, mean, vari []float64) error {
	if f.model == nil {
		return gp.ErrNotFitted
	}
	if len(mean) < len(xs) || len(vari) < len(xs) {
		return fmt.Errorf("bo: forest predictn: %d points but %d/%d outputs", len(xs), len(mean), len(vari))
	}
	for i, x := range xs {
		m, v := f.model.Predict(x)
		if v < forestMinVariance {
			v = forestMinVariance
		}
		mean[i], vari[i] = m, v
	}
	return nil
}

// MinY is the incumbent over everything recorded, fitted or pending.
func (f *forestSur) MinY() float64 {
	if len(f.ys) == 0 {
		return 0
	}
	best := f.ys[0]
	for _, y := range f.ys[1:] {
		if y < best {
			best = y
		}
	}
	return best
}

// clone shares the fitted forest (immutable once built) and copies the
// data slices, so fantasy observes on the clone cannot leak back.
func (f *forestSur) clone() *forestSur {
	c := *f
	c.xs = append([][]float64(nil), f.xs...)
	c.ys = append([]float64(nil), f.ys...)
	c.refitCounter = nil
	return &c
}

// modelUnitY maps a raw objective value into model units under the
// optimizer's current warp (clamping is handled by refit; incremental
// paths reject non-finite values before calling this).
func (b *BO) modelUnitY(v float64) float64 {
	if b.opts.LogY {
		return math.Log(v + b.logShift + 1e-12)
	}
	return v
}
