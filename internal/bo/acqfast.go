package bo

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"autotune/internal/space"
)

// This file is the allocation-free acquisition search. It replaces the
// per-candidate Config/encode/Key churn of the legacy loop (acqsearch.go)
// with flat buffers: candidates are drawn straight into reusable scalar and
// encoding vectors by a space.EncodedSampler, scored through gp.PredictN,
// deduplicated against an incrementally-maintained set of encoded keys, and
// only the winning candidate is materialized into a Config. Determinism is
// preserved exactly as in the legacy search: restart RNG streams depend only
// on (one draw from b.rng, restart index), and restarts reduce in index
// order with strict >.
//
// Dedup semantics differ deliberately from the legacy loop: the legacy
// search keys on Config.Key() (typed values, so two configs differing only
// in an inactive conditional are distinct), while this path keys on the
// encoded vector (inactive conditionals collapse to their default, matching
// what the surrogate can actually distinguish). Both are valid "already
// evaluated" notions; seeded runs of one path are self-consistent.

// acqWorkspace is one search worker's reusable state. Buffers grow to the
// candidate block size on first use and are then flat-reused, so a warm
// restart performs no heap allocation.
type acqWorkspace struct {
	rng     *rand.Rand
	scalars []float64   // nCand × pdim, flat
	enc     []float64   // nCand × edim, flat
	encRows [][]float64 // views into enc
	mean    []float64
	vari    []float64
	keyBuf  []byte // 8 × edim scratch for encoded dedup keys
}

func (ws *acqWorkspace) ensure(nCand, pdim, edim int) {
	if ws.rng == nil {
		ws.rng = rand.New(rand.NewSource(0)) // reseeded per restart
	}
	if cap(ws.scalars) < nCand*pdim {
		ws.scalars = make([]float64, nCand*pdim)
	}
	ws.scalars = ws.scalars[:nCand*pdim]
	if cap(ws.enc) < nCand*edim {
		ws.enc = make([]float64, nCand*edim)
	}
	ws.enc = ws.enc[:nCand*edim]
	if cap(ws.encRows) < nCand {
		ws.encRows = make([][]float64, nCand)
	}
	ws.encRows = ws.encRows[:nCand]
	for c := 0; c < nCand; c++ {
		ws.encRows[c] = ws.enc[c*edim : (c+1)*edim]
	}
	if cap(ws.mean) < nCand {
		ws.mean = make([]float64, nCand)
		ws.vari = make([]float64, nCand)
	}
	ws.mean, ws.vari = ws.mean[:nCand], ws.vari[:nCand]
	if cap(ws.keyBuf) < 8*edim {
		ws.keyBuf = make([]byte, 8*edim)
	}
	ws.keyBuf = ws.keyBuf[:8*edim]
}

// fastOutcome is one restart's result with the winning candidates held as
// scalar snapshots instead of materialized Configs.
type fastOutcome struct {
	topScore    float64
	topAnyScore float64
	top         []float64 // pdim snapshot, valid when topScore > -Inf
	topAny      []float64
	err         error
}

// encKey writes the bitwise content of enc into buf and returns it. Used as
// a map key via string(buf), which the compiler keeps off the heap for
// lookups; only inserts copy.
func encKey(enc []float64, buf []byte) []byte {
	for i, v := range enc {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

// ensureSampler lazily compiles the flat sampler for the current encoding.
func (b *BO) ensureSampler() *space.EncodedSampler {
	if b.sampler == nil {
		b.sampler = space.NewEncodedSampler(b.space, b.opts.OneHot)
	}
	return b.sampler
}

// syncSeen brings the encoded dedup set up to date with history. Keys are
// encoded vectors, so only genuinely new observations pay an insert.
func (b *BO) syncSeen() {
	hist := b.History()
	if b.seenEnc == nil {
		b.seenEnc = make(map[string]bool, len(hist)+16)
	}
	es := b.ensureSampler()
	if cap(b.encBuf) < es.Dim() {
		b.encBuf = make([]float64, es.Dim())
	}
	b.encBuf = b.encBuf[:es.Dim()]
	if cap(b.keyBuf) < 8*es.Dim() {
		b.keyBuf = make([]byte, 8*es.Dim())
	}
	b.keyBuf = b.keyBuf[:8*es.Dim()]
	for _, obs := range hist[b.seenN:] {
		b.encodeInto(obs.Config, b.encBuf)
		b.seenEnc[string(encKey(b.encBuf, b.keyBuf))] = true
	}
	b.seenN = len(hist)
}

// encodeInto encodes cfg into buf under the optimizer's encoding.
func (b *BO) encodeInto(cfg space.Config, buf []float64) {
	if b.opts.OneHot {
		b.space.EncodeOneHotInto(cfg, buf)
	} else {
		b.space.EncodeInto(cfg, buf)
	}
}

// runRestartFast samples and scores one restart's candidate block through
// the flat buffers. It reads shared state (space, model, seenEnc) and writes
// only its own workspace and outcome, so restarts run concurrently; panics
// become errors as in the legacy path.
//
//autolint:hotpath
func (b *BO) runRestartFast(model surModel, best float64, seed int64, nCand int, ws *acqWorkspace, out *fastOutcome) {
	defer func() {
		if r := recover(); r != nil {
			out.err = fmt.Errorf("bo: acquisition restart panic: %v", r)
		}
	}()
	es := b.sampler
	pdim := b.space.Dim()
	edim := es.Dim()
	ws.ensure(nCand, pdim, edim)
	// Seeding the reused rand.Rand replays exactly the stream a fresh
	// rand.New(rand.NewSource(seed)) would produce.
	ws.rng.Seed(seed)
	out.topScore, out.topAnyScore = math.Inf(-1), math.Inf(-1)
	out.err = nil
	for c := 0; c < nCand; c++ {
		es.SampleInto(ws.rng, ws.scalars[c*pdim:(c+1)*pdim], ws.encRows[c])
	}
	if err := model.PredictN(ws.encRows, ws.mean, ws.vari); err != nil {
		out.err = err
		return
	}
	for c := 0; c < nCand; c++ {
		sc := b.opts.Acq.Score(ws.mean[c], math.Sqrt(ws.vari[c]), best)
		if sc > out.topAnyScore {
			out.topAnyScore = sc
			copy(out.topAny, ws.scalars[c*pdim:(c+1)*pdim])
		}
		if sc > out.topScore && !b.seenEnc[string(encKey(ws.encRows[c], ws.keyBuf))] {
			out.topScore = sc
			copy(out.top, ws.scalars[c*pdim:(c+1)*pdim])
		}
	}
}

// searchAcqFast is the flat-buffer twin of the legacy searchAcq: identical
// restart seeding, worker-pool shape, and index-order strict-> reduction, so
// suggestions are bitwise-identical for any AcqWorkers value. Exactly one
// value is consumed from b.rng per search.
func (b *BO) searchAcqFast(model surModel, best float64) (top, topAny cand, err error) {
	restarts := b.opts.AcqRestarts
	per := (b.opts.Candidates + restarts - 1) / restarts
	baseSeed := b.rng.Int63()
	pdim := b.space.Dim()
	if cap(b.fastRes) < restarts {
		b.fastRes = make([]fastOutcome, restarts)
	}
	results := b.fastRes[:restarts]
	for i := range results {
		if cap(results[i].top) < pdim {
			results[i].top = make([]float64, pdim)
			results[i].topAny = make([]float64, pdim)
		}
		results[i].top = results[i].top[:pdim]
		results[i].topAny = results[i].topAny[:pdim]
	}
	workers := b.opts.AcqWorkers
	if workers > restarts {
		workers = restarts
	}
	if workers < 1 {
		workers = 1
	}
	for len(b.acqWS) < workers {
		b.acqWS = append(b.acqWS, &acqWorkspace{})
	}
	if workers <= 1 {
		ws := b.acqWS[0]
		for i := 0; i < restarts; i++ {
			b.runRestartFast(model, best, searchSeed(baseSeed, i), per, ws, &results[i])
		}
	} else {
		jobs := make(chan int, restarts)
		for i := 0; i < restarts; i++ {
			jobs <- i
		}
		close(jobs)
		var mu sync.Mutex
		var poolErr error
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(ws *acqWorkspace) {
				defer func() {
					if r := recover(); r != nil {
						mu.Lock()
						if poolErr == nil {
							poolErr = fmt.Errorf("bo: acquisition worker panic: %v", r)
						}
						mu.Unlock()
					}
					wg.Done()
				}()
				for i := range jobs {
					b.runRestartFast(model, best, searchSeed(baseSeed, i), per, ws, &results[i])
				}
			}(b.acqWS[w])
		}
		wg.Wait()
		if poolErr != nil {
			return cand{}, cand{}, poolErr
		}
	}
	topScore, topAnyScore := math.Inf(-1), math.Inf(-1)
	var topScalars, topAnyScalars []float64
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return cand{}, cand{}, r.err
		}
		if r.topScore > topScore {
			topScore, topScalars = r.topScore, r.top
		}
		if r.topAnyScore > topAnyScore {
			topAnyScore, topAnyScalars = r.topAnyScore, r.topAny
		}
	}
	es := b.sampler
	if topScalars != nil {
		top = cand{es.Config(topScalars), topScore}
	} else {
		top = cand{nil, topScore}
	}
	if topAnyScalars != nil {
		topAny = cand{es.Config(topAnyScalars), topAnyScore}
	} else {
		topAny = cand{nil, topAnyScore}
	}
	return top, topAny, nil
}

// maximizeAcqFast mirrors maximizeAcqLegacy over the flat search: encoded
// dedup, optional local refinement, random fallback.
func (b *BO) maximizeAcqFast(model surModel) (space.Config, error) {
	best := model.MinY()
	b.ensureSampler()
	b.syncSeen()
	top, topAny, err := b.searchAcqFast(model, best)
	if err != nil {
		return nil, err
	}
	if top.cfg == nil {
		top = topAny // everything seen (tiny discrete space): repeat is fine
	}
	if b.opts.RefineIters > 0 && top.cfg != nil {
		refined := b.refine(model, top.cfg, best)
		if refined != nil && b.space.Validate(refined) != nil {
			refined = nil
		}
		if refined != nil {
			b.encodeInto(refined, b.encBuf)
			if !b.seenEnc[string(encKey(b.encBuf, b.keyBuf))] {
				mu, v, err := model.Predict(b.encBuf)
				if err == nil {
					if sc := b.opts.Acq.Score(mu, math.Sqrt(v), best); sc > top.score {
						top = cand{refined, sc}
					}
				}
			}
		}
	}
	if top.cfg == nil {
		return b.space.Sample(b.rng), nil
	}
	return top.cfg, nil
}
