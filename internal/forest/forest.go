// Package forest implements CART regression trees and random forests with
// per-point mean/variance estimates across trees — the surrogate model used
// by SMAC-style Bayesian optimization (Hutter et al., 2010) and by
// permutation-based knob-importance ranking.
//
// Inputs are raw float vectors; the caller chooses the encoding (the rest of
// the framework feeds unit-cube encodings, which handle categoricals as
// scaled level indices — trees split on them naturally).
package forest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrNoData is returned when fitting with an empty training set.
var ErrNoData = errors.New("forest: empty training set")

// node is one tree node; leaves hold predictions.
type node struct {
	// Internal nodes.
	feature int
	thresh  float64
	left    *node
	right   *node
	// Leaves.
	leaf  bool
	value float64
}

// Tree is a single CART regression tree.
type Tree struct {
	root *node
	dim  int
}

// TreeOptions controls tree induction.
type TreeOptions struct {
	// MaxDepth bounds tree depth (default 16).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 2).
	MinLeaf int
	// MaxFeatures is the number of random candidate features per split;
	// 0 means all features (plain CART).
	MaxFeatures int
	// Rng drives feature subsampling; required when MaxFeatures > 0.
	Rng *rand.Rand
}

func (o TreeOptions) withDefaults() TreeOptions {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 16
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 2
	}
	return o
}

// treeScratch holds buffers reused across every node of a tree build (and,
// via Fit, across all trees of a forest): the root index permutation and
// bestSplit's feature list and sort order. Induction is sequential, so one
// scratch serves a whole forest without affecting any split decision.
type treeScratch struct {
	idx   []int
	feats []int
	order []int
}

func (sc *treeScratch) ensure(n, dim int) {
	if cap(sc.idx) < n {
		sc.idx = make([]int, n)
		sc.order = make([]int, n)
	}
	sc.idx, sc.order = sc.idx[:n], sc.order[:n]
	if cap(sc.feats) < dim {
		sc.feats = make([]int, dim)
	}
	sc.feats = sc.feats[:dim]
}

// FitTree builds a regression tree on (x, y).
func FitTree(x [][]float64, y []float64, opts TreeOptions) (*Tree, error) {
	return fitTree(x, y, opts, &treeScratch{})
}

func fitTree(x [][]float64, y []float64, opts TreeOptions, sc *treeScratch) (*Tree, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("%w: %d inputs, %d targets", ErrNoData, len(x), len(y))
	}
	opts = opts.withDefaults()
	sc.ensure(len(x), len(x[0]))
	for i := range sc.idx {
		sc.idx[i] = i
	}
	t := &Tree{dim: len(x[0])}
	t.root = build(x, y, sc.idx, 0, opts, sc)
	return t, nil
}

func build(x [][]float64, y []float64, idx []int, depth int, opts TreeOptions, sc *treeScratch) *node {
	mean, sse := meanSSE(y, idx)
	if depth >= opts.MaxDepth || len(idx) < 2*opts.MinLeaf || sse < 1e-12 {
		return &node{leaf: true, value: mean}
	}
	feat, thresh, gain := bestSplit(x, y, idx, opts, sc)
	if gain <= 1e-12 {
		return &node{leaf: true, value: mean}
	}
	var li, ri []int
	for _, i := range idx {
		if x[i][feat] <= thresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) < opts.MinLeaf || len(ri) < opts.MinLeaf {
		return &node{leaf: true, value: mean}
	}
	return &node{
		feature: feat,
		thresh:  thresh,
		left:    build(x, y, li, depth+1, opts, sc),
		right:   build(x, y, ri, depth+1, opts, sc),
	}
}

func meanSSE(y []float64, idx []int) (mean, sse float64) {
	for _, i := range idx {
		mean += y[i]
	}
	mean /= float64(len(idx))
	for _, i := range idx {
		d := y[i] - mean
		sse += d * d
	}
	return mean, sse
}

// bestSplit scans candidate features for the variance-reducing split. The
// feature list and sort order live in the shared scratch: every node needs
// at most the root's counts, so slicing the preallocated buffers replaces
// two allocations per node.
func bestSplit(x [][]float64, y []float64, idx []int, opts TreeOptions, sc *treeScratch) (feat int, thresh, gain float64) {
	dim := len(x[idx[0]])
	feats := sc.feats[:dim]
	for i := range feats {
		feats[i] = i
	}
	if opts.MaxFeatures > 0 && opts.MaxFeatures < dim && opts.Rng != nil {
		opts.Rng.Shuffle(dim, func(i, j int) { feats[i], feats[j] = feats[j], feats[i] })
		feats = feats[:opts.MaxFeatures]
	}
	_, parentSSE := meanSSE(y, idx)
	feat, gain = -1, 0

	order := sc.order[:len(idx)]
	for _, f := range feats {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })
		// Incremental split scan: maintain left/right sums.
		var lSum, lSq float64
		rSum, rSq := 0.0, 0.0
		for _, i := range order {
			rSum += y[i]
			rSq += y[i] * y[i]
		}
		n := float64(len(order))
		for k := 0; k < len(order)-1; k++ {
			yi := y[order[k]]
			lSum += yi
			lSq += yi * yi
			rSum -= yi
			rSq -= yi * yi
			if x[order[k]][f] == x[order[k+1]][f] {
				continue // can't split between equal values
			}
			nl := float64(k + 1)
			nr := n - nl
			sseL := lSq - lSum*lSum/nl
			sseR := rSq - rSum*rSum/nr
			g := parentSSE - (sseL + sseR)
			if g > gain {
				gain = g
				feat = f
				thresh = (x[order[k]][f] + x[order[k+1]][f]) / 2
			}
		}
	}
	return feat, thresh, gain
}

// Predict returns the tree's prediction for x.
func (t *Tree) Predict(x []float64) float64 {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the maximum depth of the tree (a single leaf has depth 0).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n.leaf {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Forest is a bootstrap-aggregated set of regression trees.
type Forest struct {
	trees []*Tree
	dim   int
}

// Options controls forest induction.
type Options struct {
	// Trees is the ensemble size (default 30).
	Trees int
	// MaxDepth per tree (default 16).
	MaxDepth int
	// MinLeaf per tree (default 2).
	MinLeaf int
	// MaxFeatures per split; 0 defaults to max(1, dim/3).
	MaxFeatures int
}

func (o Options) withDefaults(dim int) Options {
	if o.Trees <= 0 {
		o.Trees = 30
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 16
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 2
	}
	if o.MaxFeatures <= 0 {
		o.MaxFeatures = dim / 3
		if o.MaxFeatures < 1 {
			o.MaxFeatures = 1
		}
	}
	return o
}

// Fit trains a random forest on (x, y) with bootstrap resampling driven by
// rng.
func Fit(x [][]float64, y []float64, opts Options, rng *rand.Rand) (*Forest, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("%w: %d inputs, %d targets", ErrNoData, len(x), len(y))
	}
	dim := len(x[0])
	opts = opts.withDefaults(dim)
	f := &Forest{dim: dim}
	n := len(x)
	// One bootstrap buffer and one induction scratch serve every tree:
	// trees retain only node values and thresholds, never the training
	// rows, so the next iteration may overwrite them freely.
	bx := make([][]float64, n)
	by := make([]float64, n)
	var sc treeScratch
	for t := 0; t < opts.Trees; t++ {
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i] = x[j]
			by[i] = y[j]
		}
		tree, err := fitTree(bx, by, TreeOptions{
			MaxDepth:    opts.MaxDepth,
			MinLeaf:     opts.MinLeaf,
			MaxFeatures: opts.MaxFeatures,
			Rng:         rng,
		}, &sc)
		if err != nil {
			return nil, err
		}
		f.trees = append(f.trees, tree)
	}
	return f, nil
}

// Predict returns the ensemble mean and the across-tree variance at x. The
// variance is SMAC's uncertainty proxy: high where trees disagree (sparse
// or conflicted regions), near zero where they agree.
func (f *Forest) Predict(x []float64) (mean, variance float64) {
	if len(f.trees) == 0 {
		return 0, 0
	}
	var sum, sq float64
	for _, t := range f.trees {
		v := t.Predict(x)
		sum += v
		sq += v * v
	}
	n := float64(len(f.trees))
	mean = sum / n
	variance = sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// Trees returns the ensemble size.
func (f *Forest) Trees() int { return len(f.trees) }

// Dim returns the input dimensionality the forest was trained on.
func (f *Forest) Dim() int { return f.dim }

// PermutationImportance estimates each feature's importance as the increase
// in mean squared error when that feature's column is randomly permuted in
// the evaluation set (x, y). Larger is more important; values are clipped
// at zero.
func (f *Forest) PermutationImportance(x [][]float64, y []float64, rng *rand.Rand) []float64 {
	base := f.mse(x, y)
	imp := make([]float64, f.dim)
	perm := make([]int, len(x))
	col := make([]float64, len(x))
	for d := 0; d < f.dim; d++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for i := range x {
			col[i] = x[i][d]
		}
		// Temporarily permute column d.
		for i := range x {
			x[i][d] = col[perm[i]]
		}
		m := f.mse(x, y)
		for i := range x {
			x[i][d] = col[i]
		}
		v := m - base
		if v < 0 {
			v = 0
		}
		imp[d] = v
	}
	return imp
}

func (f *Forest) mse(x [][]float64, y []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range x {
		m, _ := f.Predict(x[i])
		d := m - y[i]
		s += d * d
	}
	return s / float64(len(x))
}
