package forest

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func makeData(n int, f func([]float64) float64, dim int, rng *rand.Rand) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = make([]float64, dim)
		for d := range x[i] {
			x[i][d] = rng.Float64()
		}
		y[i] = f(x[i])
	}
	return x, y
}

func TestTreeFitsStep(t *testing.T) {
	// A step function is learned exactly by one split.
	x := [][]float64{{0.1}, {0.2}, {0.3}, {0.7}, {0.8}, {0.9}}
	y := []float64{0, 0, 0, 1, 1, 1}
	tree, err := FitTree(x, y, TreeOptions{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{0.25}); got != 0 {
		t.Fatalf("left = %v", got)
	}
	if got := tree.Predict([]float64{0.75}); got != 1 {
		t.Fatalf("right = %v", got)
	}
	if tree.Depth() < 1 {
		t.Fatal("tree did not split")
	}
}

func TestTreeConstantTarget(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}}
	y := []float64{4, 4, 4}
	tree, err := FitTree(x, y, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 {
		t.Fatal("constant target should give a leaf")
	}
	if tree.Predict([]float64{5}) != 4 {
		t.Fatal("wrong constant prediction")
	}
}

func TestTreeMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := makeData(200, func(v []float64) float64 { return math.Sin(10 * v[0]) }, 1, rng)
	tree, err := FitTree(x, y, TreeOptions{MaxDepth: 2, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d > 2 {
		t.Fatalf("depth = %d > 2", d)
	}
}

func TestTreeEmptyErrors(t *testing.T) {
	if _, err := FitTree(nil, nil, TreeOptions{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Fit(nil, nil, Options{}, rand.New(rand.NewSource(1))); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v", err)
	}
}

func TestForestRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(v []float64) float64 { return 3*v[0] - 2*v[1] + v[0]*v[1] }
	x, y := makeData(400, f, 2, rng)
	forest, err := Fit(x, y, Options{Trees: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if forest.Trees() != 40 || forest.Dim() != 2 {
		t.Fatalf("trees=%d dim=%d", forest.Trees(), forest.Dim())
	}
	// Held-out MSE should be small relative to target variance (~1).
	tx, ty := makeData(100, f, 2, rng)
	mse := 0.0
	for i := range tx {
		m, _ := forest.Predict(tx[i])
		mse += (m - ty[i]) * (m - ty[i])
	}
	mse /= float64(len(tx))
	if mse > 0.05 {
		t.Fatalf("held-out MSE = %v", mse)
	}
}

func TestForestVarianceHighOffData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Train only on [0, 0.4]; variance should be higher at 0.9 than 0.2.
	n := 100
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		v := rng.Float64() * 0.4
		x[i] = []float64{v}
		y[i] = math.Sin(8*v) + 0.05*rng.NormFloat64()
	}
	forest, err := Fit(x, y, Options{Trees: 50, MaxFeatures: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, vIn := forest.Predict([]float64{0.2})
	_, vOut := forest.Predict([]float64{0.9})
	// Off-data the trees extrapolate with their last leaves; disagreement
	// should not be lower than well-covered regions.
	if vOut+1e-9 < vIn/2 {
		t.Fatalf("vOut=%v much smaller than vIn=%v", vOut, vIn)
	}
}

func TestForestVarianceZeroWhenUnanimous(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := [][]float64{{0}, {0}, {1}, {1}}
	y := []float64{0, 0, 10, 10}
	forest, err := Fit(x, y, Options{Trees: 20, MinLeaf: 1, MaxFeatures: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, v := forest.Predict([]float64{0})
	// Bootstrap may occasionally produce one-sided trees, but generally
	// the prediction is near 0 with small variance.
	if math.Abs(m) > 3 {
		t.Fatalf("mean = %v", m)
	}
	if v < 0 {
		t.Fatalf("variance negative: %v", v)
	}
}

func TestPermutationImportanceFindsSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// y depends strongly on dim 0, weakly on dim 1, not at all on dim 2.
	f := func(v []float64) float64 { return 10*v[0] + 1*v[1] }
	x, y := makeData(300, f, 3, rng)
	forest, err := Fit(x, y, Options{Trees: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	imp := forest.PermutationImportance(x, y, rng)
	if !(imp[0] > imp[1] && imp[1] > imp[2]) {
		t.Fatalf("importances = %v, want dim0 > dim1 > dim2", imp)
	}
	if imp[2] > imp[0]/10 {
		t.Fatalf("noise dim importance too high: %v", imp)
	}
}

func TestPermutationImportanceRestoresData(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := makeData(50, func(v []float64) float64 { return v[0] }, 2, rng)
	orig := make([][]float64, len(x))
	for i := range x {
		orig[i] = append([]float64(nil), x[i]...)
	}
	forest, _ := Fit(x, y, Options{Trees: 10}, rng)
	forest.PermutationImportance(x, y, rng)
	for i := range x {
		for d := range x[i] {
			if x[i][d] != orig[i][d] {
				t.Fatal("PermutationImportance mutated input")
			}
		}
	}
}

func TestEmptyForestPredict(t *testing.T) {
	var f Forest
	m, v := f.Predict([]float64{1})
	if m != 0 || v != 0 {
		t.Fatal("empty forest should predict 0, 0")
	}
}

func TestCategoricalAsIndexSplits(t *testing.T) {
	// Unit-cube categorical encoding: levels at 0, 0.5, 1. The tree should
	// isolate the middle level.
	x := [][]float64{{0}, {0}, {0.5}, {0.5}, {1}, {1}}
	y := []float64{1, 1, 9, 9, 1, 1}
	tree, err := FitTree(x, y, TreeOptions{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{0.5}); got != 9 {
		t.Fatalf("middle level = %v", got)
	}
	if got := tree.Predict([]float64{0}); got != 1 {
		t.Fatalf("first level = %v", got)
	}
}
