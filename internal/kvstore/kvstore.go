// Package kvstore implements a real, tunable, sharded in-memory key-value
// store plus a YCSB-style benchmark driver. Unlike internal/simsys (which
// models systems analytically), this store actually executes operations, so
// tuning it measures genuine effects: shard count changes lock contention,
// eviction policy changes hit rate under skew, and capacity changes the
// miss rate — a miss pays a real computational "backing store" penalty.
//
// The store is safe for concurrent use.
package kvstore

import (
	"container/list"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"autotune/internal/space"
)

// Eviction policies.
const (
	EvictLRU    = "lru"
	EvictLFU    = "lfu"
	EvictClock  = "clock"
	EvictRandom = "random"
)

// ErrBadConfig is returned by Open for invalid configurations.
var ErrBadConfig = errors.New("kvstore: bad config")

// Space returns the store's knob space: shard count (lock striping),
// eviction policy, capacity, and the LFU/random sampling width.
func Space() *space.Space {
	return space.MustNew(
		space.Int("shards", 1, 256).WithLog().WithDefault(int64(8)),
		space.Categorical("eviction", EvictLRU, EvictLFU, EvictClock, EvictRandom).
			WithDefault(EvictLRU),
		space.Int("capacity_items", 1024, 4*1024*1024).WithLog().WithDefault(int64(65536)),
		space.Int("evict_sample", 2, 64).WithDefault(int64(8)),
	)
}

type entry struct {
	key   uint64
	value []byte
	freq  uint32 // LFU counter / CLOCK reference bit
	elem  *list.Element
}

type shard struct {
	mu       sync.Mutex
	items    map[uint64]*entry
	lru      *list.List // front = most recent
	clockPos []uint64   // CLOCK hand iteration order (keys)
	capacity int
	policy   string
	sample   int
	rng      *rand.Rand

	hits, misses, evictions uint64
}

// Store is a sharded in-memory KV store with bounded capacity.
type Store struct {
	shards []*shard
	mask   uint64
}

// Open builds a store from a configuration drawn from Space().
func Open(cfg space.Config) (*Store, error) {
	sp := Space()
	if err := sp.Validate(cfg); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	n := nextPow2(int(cfg.Int("shards")))
	capacity := int(cfg.Int("capacity_items")) / n
	if capacity < 1 {
		capacity = 1
	}
	st := &Store{shards: make([]*shard, n), mask: uint64(n - 1)}
	for i := range st.shards {
		st.shards[i] = &shard{
			items:    make(map[uint64]*entry, capacity),
			lru:      list.New(),
			capacity: capacity,
			policy:   cfg.Str("eviction"),
			sample:   int(cfg.Int("evict_sample")),
			rng:      rand.New(rand.NewSource(int64(i)*7919 + 1)),
		}
	}
	return st, nil
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Shards returns the (power-of-two) shard count.
func (s *Store) Shards() int { return len(s.shards) }

func (s *Store) shardFor(key uint64) *shard {
	// Fibonacci hashing spreads sequential keys across shards.
	return s.shards[(key*0x9E3779B97F4A7C15)>>32&s.mask]
}

// Get returns the value for key and whether it was present.
func (s *Store) Get(key uint64) ([]byte, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[key]
	if !ok {
		sh.misses++
		return nil, false
	}
	sh.hits++
	sh.touch(e)
	return e.value, true
}

// Put inserts or replaces the value for key, evicting if at capacity.
func (s *Store) Put(key uint64, value []byte) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.items[key]; ok {
		e.value = value
		sh.touch(e)
		return
	}
	for len(sh.items) >= sh.capacity {
		sh.evict()
	}
	e := &entry{key: key, value: value, freq: 1}
	e.elem = sh.lru.PushFront(e)
	sh.items[key] = e
}

// Delete removes key; it reports whether the key existed.
func (s *Store) Delete(key uint64) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[key]
	if !ok {
		return false
	}
	sh.lru.Remove(e.elem)
	delete(sh.items, key)
	return true
}

// Scan visits up to n entries starting at key (by key order within the
// owning shard; cross-shard scans visit shards in order). It returns the
// number of entries visited. The callback must not call back into the
// store.
func (s *Store) Scan(start uint64, n int, visit func(key uint64, value []byte)) int {
	visited := 0
	for i := 0; i < len(s.shards) && visited < n; i++ {
		sh := s.shards[(int(start)+i)%len(s.shards)]
		sh.mu.Lock()
		for _, e := range sh.items {
			if visited >= n {
				break
			}
			if visit != nil {
				visit(e.key, e.value)
			}
			visited++
		}
		sh.mu.Unlock()
	}
	return visited
}

// Len returns the total number of resident entries.
func (s *Store) Len() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += len(sh.items)
		sh.mu.Unlock()
	}
	return total
}

// Stats summarizes hit/miss/eviction counters across shards.
type Stats struct {
	Hits, Misses, Evictions uint64
}

// Stats returns aggregate counters.
func (s *Store) Stats() Stats {
	var st Stats
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.Evictions += sh.evictions
		sh.mu.Unlock()
	}
	return st
}

// HitRate returns hits / (hits + misses), or 0 with no traffic.
func (st Stats) HitRate() float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// touch records an access for the eviction policy. Caller holds the lock.
func (sh *shard) touch(e *entry) {
	switch sh.policy {
	case EvictLRU:
		sh.lru.MoveToFront(e.elem)
	case EvictLFU:
		if e.freq < 1<<30 {
			e.freq++
		}
	case EvictClock:
		e.freq = 1 // reference bit
	}
}

// evict removes one entry per the policy. Caller holds the lock.
func (sh *shard) evict() {
	if len(sh.items) == 0 {
		return
	}
	var victim *entry
	switch sh.policy {
	case EvictLRU:
		victim = sh.lru.Back().Value.(*entry)
	case EvictLFU:
		victim = sh.sampleVictim(func(a, b *entry) bool { return a.freq < b.freq })
	case EvictClock:
		// Sweep from the back of the recency list, clearing reference
		// bits until an unreferenced entry is found.
		for el := sh.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*entry)
			if e.freq == 0 {
				victim = e
				break
			}
			e.freq = 0
		}
		if victim == nil {
			victim = sh.lru.Back().Value.(*entry)
		}
	default: // random
		victim = sh.sampleVictim(func(a, b *entry) bool { return sh.rng.Intn(2) == 0 })
	}
	sh.lru.Remove(victim.elem)
	delete(sh.items, victim.key)
	sh.evictions++
}

// sampleVictim samples up to sh.sample entries (map iteration order is
// effectively random) and returns the one minimizing less().
func (sh *shard) sampleVictim(less func(a, b *entry) bool) *entry {
	var best *entry
	n := 0
	for _, e := range sh.items {
		if best == nil || less(e, best) {
			best = e
		}
		n++
		if n >= sh.sample {
			break
		}
	}
	return best
}
