package kvstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"autotune/internal/space"
	"autotune/internal/workload"

	"math/rand"
)

// BenchResult summarizes one benchmark run against a live store.
type BenchResult struct {
	Ops       int
	Elapsed   time.Duration
	OpsPerSec float64
	P50, P95  time.Duration
	HitRate   float64
}

// missPenaltyIters is the computational cost of a cache miss: the driver
// "fetches from the backing store" by hashing for this many iterations,
// making hit rate a real performance factor rather than bookkeeping.
const missPenaltyIters = 2000

// Bench loads the store with `keys` initial records and runs totalOps
// operations from the descriptor's mix across `workers` goroutines,
// measuring real elapsed time and per-op latency percentiles (sampled).
func Bench(st *Store, desc workload.Descriptor, keys uint64, totalOps, workers int, seed int64) (BenchResult, error) {
	if workers < 1 {
		workers = 1
	}
	if totalOps < 1 {
		return BenchResult{}, fmt.Errorf("kvstore: totalOps must be positive")
	}
	recBytes := int(desc.RecordBytes)
	if recBytes < 8 {
		recBytes = 8
	}
	// Preload up to the key range (bounded to keep setup cheap).
	value := make([]byte, recBytes)
	for i := range value {
		value[i] = byte(i)
	}
	for k := uint64(0); k < keys; k++ {
		st.Put(k, value)
	}

	opsPerWorker := totalOps / workers
	var wg sync.WaitGroup
	latencies := make([][]time.Duration, workers)
	var penaltySink atomic.Uint64
	errs := make([]error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// A panicking worker must fail its own shard, not the process.
			defer func() {
				if r := recover(); r != nil {
					errs[w] = fmt.Errorf("kvstore: bench worker %d panicked: %v", w, r)
				}
			}()
			rng := rand.New(rand.NewSource(seed + int64(w)*101))
			gen, err := workload.NewGenerator(desc, keys, rng)
			if err != nil {
				errs[w] = err
				return
			}
			lats := make([]time.Duration, 0, opsPerWorker/8+1)
			local := make([]byte, recBytes)
			copy(local, value)
			for i := 0; i < opsPerWorker; i++ {
				sample := i%8 == 0
				var t0 time.Time
				if sample {
					t0 = time.Now()
				}
				op := gen.Next()
				switch op.Kind {
				case workload.OpRead:
					if _, ok := st.Get(op.Key); !ok {
						penaltySink.Add(missWork())
						st.Put(op.Key, local)
					}
				case workload.OpUpdate:
					st.Put(op.Key, local)
				case workload.OpInsert:
					st.Put(op.Key, local)
				case workload.OpScan:
					st.Scan(op.Key, op.Len, nil)
				case workload.OpRMW:
					if v, ok := st.Get(op.Key); ok {
						local[0] = v[0] + 1
					} else {
						penaltySink.Add(missWork())
					}
					st.Put(op.Key, local)
				}
				if sample {
					lats = append(lats, time.Since(t0))
				}
			}
			latencies[w] = lats
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return BenchResult{}, err
		}
	}

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := BenchResult{
		Ops:       opsPerWorker * workers,
		Elapsed:   elapsed,
		OpsPerSec: float64(opsPerWorker*workers) / elapsed.Seconds(),
		HitRate:   st.Stats().HitRate(),
	}
	if len(all) > 0 {
		res.P50 = all[len(all)/2]
		res.P95 = all[len(all)*95/100]
	}
	return res, nil
}

// missWork burns CPU simulating a backing-store fetch; the returned value
// defeats dead-code elimination.
func missWork() uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < missPenaltyIters; i++ {
		h ^= uint64(i)
		h *= 1099511628211
	}
	return h
}

// BenchConfig opens a store with cfg and benchmarks it — the one-call
// objective used by tuning examples. Lower latency is better; use
// -OpsPerSec to maximize throughput.
func BenchConfig(cfg space.Config, desc workload.Descriptor, keys uint64, totalOps, workers int, seed int64) (BenchResult, error) {
	st, err := Open(cfg)
	if err != nil {
		return BenchResult{}, err
	}
	return Bench(st, desc, keys, totalOps, workers, seed)
}

// BenchTrace replays a recorded operation trace against the store across
// `workers` goroutines (each replaying a disjoint region), measuring real
// elapsed time. Replaying the identical trace against two configurations
// is an exact A/B comparison: both runs execute the same operations on the
// same keys in the same per-worker order.
func BenchTrace(st *Store, tr *workload.Trace, recBytes, totalOps, workers int) (BenchResult, error) {
	if workers < 1 {
		workers = 1
	}
	if totalOps < 1 {
		return BenchResult{}, fmt.Errorf("kvstore: totalOps must be positive")
	}
	if recBytes < 8 {
		recBytes = 8
	}
	value := make([]byte, recBytes)
	for i := range value {
		value[i] = byte(i)
	}
	opsPerWorker := totalOps / workers
	var wg sync.WaitGroup
	var penaltySink atomic.Uint64
	errs := make([]error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// A panicking worker must fail its own shard, not the process.
			defer func() {
				if r := recover(); r != nil {
					errs[w] = fmt.Errorf("kvstore: replay worker %d panicked: %v", w, r)
				}
			}()
			rep, err := tr.ReplayerAt(w * tr.Len() / workers)
			if err != nil {
				errs[w] = err
				return
			}
			local := make([]byte, recBytes)
			copy(local, value)
			for i := 0; i < opsPerWorker; i++ {
				op := rep.Next()
				switch op.Kind {
				case workload.OpRead:
					if _, ok := st.Get(op.Key); !ok {
						penaltySink.Add(missWork())
						st.Put(op.Key, local)
					}
				case workload.OpUpdate, workload.OpInsert:
					st.Put(op.Key, local)
				case workload.OpScan:
					st.Scan(op.Key, op.Len, nil)
				case workload.OpRMW:
					if v, ok := st.Get(op.Key); ok {
						local[0] = v[0] + 1
					} else {
						penaltySink.Add(missWork())
					}
					st.Put(op.Key, local)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return BenchResult{}, err
		}
	}
	return BenchResult{
		Ops:       opsPerWorker * workers,
		Elapsed:   elapsed,
		OpsPerSec: float64(opsPerWorker*workers) / elapsed.Seconds(),
		HitRate:   st.Stats().HitRate(),
	}, nil
}
