package kvstore

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"autotune/internal/space"
	"autotune/internal/workload"
)

func openWith(t *testing.T, overrides space.Config) *Store {
	t.Helper()
	cfg := Space().Default()
	for k, v := range overrides {
		cfg[k] = v
	}
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestOpenValidation(t *testing.T) {
	bad := Space().Default()
	bad["eviction"] = "bogus"
	if _, err := Open(bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
}

func TestShardCountPow2(t *testing.T) {
	st := openWith(t, space.Config{"shards": int64(5)})
	if st.Shards() != 8 {
		t.Fatalf("shards = %d, want next pow2 8", st.Shards())
	}
}

func TestPutGetDelete(t *testing.T) {
	st := openWith(t, nil)
	st.Put(1, []byte("hello"))
	v, ok := st.Get(1)
	if !ok || string(v) != "hello" {
		t.Fatalf("get = %q %v", v, ok)
	}
	st.Put(1, []byte("world"))
	v, _ = st.Get(1)
	if string(v) != "world" {
		t.Fatal("overwrite failed")
	}
	if !st.Delete(1) {
		t.Fatal("delete existing returned false")
	}
	if st.Delete(1) {
		t.Fatal("delete missing returned true")
	}
	if _, ok := st.Get(1); ok {
		t.Fatal("deleted key still present")
	}
}

func TestCapacityEnforced(t *testing.T) {
	for _, policy := range []string{EvictLRU, EvictLFU, EvictClock, EvictRandom} {
		st := openWith(t, space.Config{
			"capacity_items": int64(1024),
			"shards":         int64(4),
			"eviction":       policy,
		})
		for k := uint64(0); k < 10000; k++ {
			st.Put(k, []byte("x"))
		}
		if n := st.Len(); n > 1024 {
			t.Fatalf("%s: len = %d > capacity 1024", policy, n)
		}
		if st.Stats().Evictions == 0 {
			t.Fatalf("%s: no evictions recorded", policy)
		}
	}
}

func TestLRUEvictsCold(t *testing.T) {
	st := openWith(t, space.Config{
		"capacity_items": int64(1024),
		"shards":         int64(1),
		"eviction":       EvictLRU,
	})
	// Fill to capacity (single shard => capacity 1024).
	for k := uint64(0); k < 1024; k++ {
		st.Put(k, []byte("x"))
	}
	// Touch the first 512 keys to make them hot.
	for k := uint64(0); k < 512; k++ {
		st.Get(k)
	}
	// Insert 256 new keys: evictions must come from the cold half.
	for k := uint64(10000); k < 10256; k++ {
		st.Put(k, []byte("y"))
	}
	for k := uint64(0); k < 512; k++ {
		if _, ok := st.Get(k); !ok {
			t.Fatalf("hot key %d was evicted", k)
		}
	}
}

func TestLFUKeepsFrequent(t *testing.T) {
	st := openWith(t, space.Config{
		"capacity_items": int64(1024),
		"shards":         int64(1),
		"eviction":       EvictLFU,
		"evict_sample":   int64(64),
	})
	for k := uint64(0); k < 1024; k++ {
		st.Put(k, []byte("x"))
	}
	// Make key 7 extremely hot.
	for i := 0; i < 1000; i++ {
		st.Get(7)
	}
	for k := uint64(20000); k < 21000; k++ {
		st.Put(k, []byte("y"))
	}
	if _, ok := st.Get(7); !ok {
		t.Fatal("hottest key evicted under LFU")
	}
}

func TestScanVisits(t *testing.T) {
	st := openWith(t, space.Config{"shards": int64(4)})
	for k := uint64(0); k < 100; k++ {
		st.Put(k, []byte("v"))
	}
	seen := 0
	n := st.Scan(0, 50, func(k uint64, v []byte) { seen++ })
	if n != 50 || seen != 50 {
		t.Fatalf("scan visited %d/%d", seen, n)
	}
	// Scan more than resident.
	if n := st.Scan(0, 1000, nil); n != 100 {
		t.Fatalf("overscan visited %d, want 100", n)
	}
}

func TestStatsHitRate(t *testing.T) {
	st := openWith(t, nil)
	st.Put(1, []byte("v"))
	st.Get(1)
	st.Get(2)
	s := st.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty hit rate should be 0")
	}
}

func TestConcurrentAccess(t *testing.T) {
	st := openWith(t, space.Config{"shards": int64(8), "capacity_items": int64(8192)})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := uint64(w*1000 + i%500)
				switch i % 4 {
				case 0:
					st.Put(k, []byte{byte(i)})
				case 1:
					st.Get(k)
				case 2:
					st.Scan(k, 5, nil)
				default:
					st.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestBenchRuns(t *testing.T) {
	cfg := Space().Default()
	cfg["capacity_items"] = int64(32768)
	desc := workload.YCSBB()
	desc.RecordBytes = 64
	res, err := BenchConfig(cfg, desc, 20000, 20000, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.OpsPerSec <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.P95 < res.P50 {
		t.Fatalf("P95 %v < P50 %v", res.P95, res.P50)
	}
	if res.HitRate <= 0 {
		t.Fatal("hit rate should be positive")
	}
}

func TestBenchValidation(t *testing.T) {
	cfg := Space().Default()
	if _, err := BenchConfig(cfg, workload.YCSBB(), 100, 0, 1, 1); err == nil {
		t.Fatal("totalOps=0 should error")
	}
	bad := Space().Default()
	bad["shards"] = int64(-1)
	if _, err := BenchConfig(bad, workload.YCSBB(), 100, 100, 1, 1); err == nil {
		t.Fatal("bad config should error")
	}
}

func TestEvictionPolicyMattersUnderSkew(t *testing.T) {
	// With a zipfian workload and a small cache, LRU should achieve a
	// higher hit rate than random eviction.
	desc := workload.YCSBC() // read-only, skew 0.99
	desc.RecordBytes = 64
	hitRate := func(policy string) float64 {
		cfg := Space().Default()
		cfg["capacity_items"] = int64(4096)
		cfg["shards"] = int64(4)
		cfg["eviction"] = policy
		res, err := BenchConfig(cfg, desc, 200000, 30000, 2, 7)
		if err != nil {
			t.Fatal(err)
		}
		return res.HitRate
	}
	lru, random := hitRate(EvictLRU), hitRate(EvictRandom)
	if !(lru > random) {
		t.Fatalf("LRU hit rate %v should beat random %v under skew", lru, random)
	}
}

// Property: with capacity far above the key range, the store behaves
// exactly like a reference map under random op sequences.
func TestStoreMatchesReferenceMapProperty(t *testing.T) {
	run := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := openWith(t, space.Config{
			"capacity_items": int64(1 << 20), // never evicts in this test
			"shards":         int64(1 + rng.Intn(16)),
		})
		ref := map[uint64]byte{}
		for i := 0; i < 1500; i++ {
			k := uint64(rng.Intn(64))
			switch rng.Intn(4) {
			case 0: // put
				v := byte(rng.Intn(256))
				st.Put(k, []byte{v})
				ref[k] = v
			case 1: // get
				got, ok := st.Get(k)
				v, refOk := ref[k]
				if ok != refOk {
					return false
				}
				if ok && got[0] != v {
					return false
				}
			case 2: // delete
				delOk := st.Delete(k)
				_, refOk := ref[k]
				if delOk != refOk {
					return false
				}
				delete(ref, k)
			case 3: // len
				if st.Len() != len(ref) {
					return false
				}
			}
		}
		return st.Len() == len(ref)
	}
	for seed := int64(0); seed < 20; seed++ {
		if !run(seed) {
			t.Fatalf("store diverged from reference map at seed %d", seed)
		}
	}
}

// Property: eviction never exceeds capacity and never loses the most
// recently inserted key (it was just pushed to the front).
func TestEvictionInvariantsProperty(t *testing.T) {
	f := func(seed int64, policyPick uint8) bool {
		policies := []string{EvictLRU, EvictLFU, EvictClock, EvictRandom}
		policy := policies[int(policyPick)%len(policies)]
		rng := rand.New(rand.NewSource(seed))
		st := openWith(t, space.Config{
			"capacity_items": int64(1024),
			"shards":         int64(4),
			"eviction":       policy,
		})
		for i := 0; i < 3000; i++ {
			k := uint64(rng.Intn(100000))
			st.Put(k, []byte{1})
			if _, ok := st.Get(k); !ok {
				return false // the key we just inserted must be resident
			}
			if st.Len() > 1024 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestBenchTraceExactAB(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	desc := workload.YCSBB()
	gen, err := workload.NewGenerator(desc, 50000, rng)
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Record(gen, 20000)
	run := func(policy string) Stats {
		st := openWith(t, space.Config{
			"capacity_items": int64(2048), // small enough that eviction engages
			"eviction":       policy,
		})
		// workers=1: with concurrency, read-miss cache fills interleave
		// nondeterministically, so exact counter equality only holds for a
		// single worker.
		if _, err := BenchTrace(st, tr, 64, 20000, 1); err != nil {
			t.Fatal(err)
		}
		return st.Stats()
	}
	// Same trace, same policy: identical hit/miss counters (determinism).
	a, b := run(EvictLRU), run(EvictLRU)
	if a != b {
		t.Fatalf("identical replays diverged: %+v vs %+v", a, b)
	}
	if a.Evictions == 0 {
		t.Fatal("trace did not exercise eviction; shrink the capacity")
	}
	// Different policy on the same ops: a genuine A/B difference.
	c := run(EvictRandom)
	if a == c {
		t.Fatal("different policies produced identical stats — suspicious")
	}
	if _, err := BenchTrace(openWith(t, nil), tr, 64, 0, 1); err == nil {
		t.Fatal("totalOps=0 should error")
	}
	if _, err := BenchTrace(openWith(t, nil), &workload.Trace{}, 64, 10, 1); err == nil {
		t.Fatal("empty trace should error")
	}
}
