package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v", got)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of single sample should be NaN")
	}
}

func TestMinMaxArg(t *testing.T) {
	xs := []float64{3, -1, 7, 7, -1}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max wrong: %v %v", Min(xs), Max(xs))
	}
	if ArgMin(xs) != 1 {
		t.Fatalf("ArgMin = %d, want 1 (first occurrence)", ArgMin(xs))
	}
	if ArgMax(xs) != 2 {
		t.Fatalf("ArgMax = %d, want 2", ArgMax(xs))
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Fatal("Arg{Min,Max} of empty should be -1")
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {150, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated input")
	}
}

func TestMAD(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 4, 6, 9}
	// median = 2, abs devs = {1,1,0,0,2,4,7}, median dev = 1
	if got := MAD(xs); !almostEqual(got, 1.4826, 1e-12) {
		t.Fatalf("MAD = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{1, 2, 3})
	if !almostEqual(Mean(out), 0, 1e-12) {
		t.Fatalf("normalized mean = %v", Mean(out))
	}
	if !almostEqual(StdDev(out), 1, 1e-12) {
		t.Fatalf("normalized std = %v", StdDev(out))
	}
	// Constant input: centered but not scaled.
	out = Normalize([]float64{5, 5, 5})
	for _, v := range out {
		if v != 0 {
			t.Fatalf("constant normalize = %v", out)
		}
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if !math.IsNaN(e.Value()) {
		t.Fatal("EWMA before update should be NaN")
	}
	e.Update(10)
	if e.Value() != 10 {
		t.Fatalf("first update = %v", e.Value())
	}
	e.Update(20)
	if !almostEqual(e.Value(), 15, 1e-12) {
		t.Fatalf("second update = %v", e.Value())
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 100)
	var o Online
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		o.Add(xs[i])
	}
	if !almostEqual(o.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("online mean %v vs %v", o.Mean(), Mean(xs))
	}
	if !almostEqual(o.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("online var %v vs %v", o.Variance(), Variance(xs))
	}
	if o.Min() != Min(xs) || o.Max() != Max(xs) {
		t.Fatal("online min/max mismatch")
	}
	if o.N() != 100 {
		t.Fatalf("N = %d", o.N())
	}
}

func TestBootstrapCIBrackets(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64() + 5
	}
	lo, hi := BootstrapCI(xs, Mean, 500, 0.05, rng)
	if !(lo < 5 && 5 < hi) {
		t.Fatalf("CI [%v, %v] does not bracket 5", lo, hi)
	}
	if hi-lo > 1 {
		t.Fatalf("CI too wide: [%v, %v]", lo, hi)
	}
}

func TestCovarianceAndPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
	if !math.IsNaN(Covariance(xs, []float64{1})) {
		t.Fatal("length mismatch should be NaN")
	}
}

func TestMannWhitneySeparated(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b := []float64{101, 102, 103, 104, 105, 106, 107, 108}
	u, p := MannWhitneyU(a, b)
	if u != 0 {
		t.Fatalf("U = %v, want 0 for fully separated samples", u)
	}
	if p > 0.01 {
		t.Fatalf("p = %v, want significant", p)
	}
	_, pSame := MannWhitneyU(a, a)
	if pSame < 0.9 {
		t.Fatalf("identical samples p = %v, want ~1", pSame)
	}
}

func TestNormalCDFPDF(t *testing.T) {
	if !almostEqual(NormalCDF(0), 0.5, 1e-12) {
		t.Fatal("CDF(0) != 0.5")
	}
	if !almostEqual(NormalCDF(1.96), 0.975, 1e-3) {
		t.Fatalf("CDF(1.96) = %v", NormalCDF(1.96))
	}
	if !almostEqual(NormalPDF(0), 1/math.Sqrt(2*math.Pi), 1e-12) {
		t.Fatal("PDF(0) wrong")
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEqual(xs[i], want[i], 1e-12) {
			t.Fatalf("Linspace = %v", xs)
		}
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Linspace n=1 = %v", got)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := float64(p1 % 101)
		b := float64(p2 % 101)
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(xs, a), Percentile(xs, b)
		return pa <= pb+1e-9 && pa >= Min(xs)-1e-9 && pb <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: online accumulator matches batch mean for any input.
func TestOnlineMeanProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		var o Online
		for _, x := range xs {
			o.Add(x)
		}
		scale := math.Max(1, math.Abs(Mean(xs)))
		return almostEqual(o.Mean(), Mean(xs), 1e-6*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
