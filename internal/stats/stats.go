// Package stats provides the descriptive statistics used throughout the
// autotuning framework: moments, percentiles, robust estimators, exponential
// smoothing, and simple resampling-based confidence intervals.
//
// All functions operate on float64 slices and never mutate their inputs
// unless documented otherwise. NaN handling is the caller's responsibility;
// passing NaNs yields unspecified results.
package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// ErrEmpty is returned (or causes NaN results) when a statistic of an empty
// sample is requested.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the unbiased sample variance of xs (n-1 denominator),
// or NaN when fewer than two samples are given.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or +Inf if xs is empty.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf if xs is empty.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMin returns the index of the smallest element of xs, or -1 if empty.
// Ties resolve to the first occurrence.
func ArgMin(xs []float64) int {
	idx, best := -1, math.Inf(1)
	for i, x := range xs {
		if x < best {
			best, idx = x, i
		}
	}
	return idx
}

// ArgMax returns the index of the largest element of xs, or -1 if empty.
func ArgMax(xs []float64) int {
	idx, best := -1, math.Inf(-1)
	for i, x := range xs {
		if x > best {
			best, idx = x, i
		}
	}
	return idx
}

// Median returns the sample median, interpolating between the two middle
// order statistics for even n. Returns NaN for empty input.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. Returns NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentileSorted is like Percentile but requires xs to already be sorted
// ascending, avoiding the copy and sort.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MAD returns the median absolute deviation of xs scaled by 1.4826 so that
// it estimates the standard deviation for Gaussian data.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return 1.4826 * Median(dev)
}

// Normalize returns (xs - mean) / std. If the standard deviation is zero or
// not finite the centered values are returned unscaled.
func Normalize(xs []float64) []float64 {
	m, s := Mean(xs), StdDev(xs)
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x - m
	}
	if s > 0 && !math.IsNaN(s) && !math.IsInf(s, 0) {
		for i := range out {
			out[i] /= s
		}
	}
	return out
}

// EWMA holds an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]. The zero value is invalid; use NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor. alpha is clamped
// to (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 {
		alpha = 1e-9
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Update folds x into the average and returns the new value. The first
// observation initializes the average.
func (e *EWMA) Update(x float64) float64 {
	if !e.init {
		e.value, e.init = x, true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average, or NaN before any update.
func (e *EWMA) Value() float64 {
	if !e.init {
		return math.NaN()
	}
	return e.value
}

// Online accumulates streaming count/mean/variance via Welford's algorithm.
// The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean, or NaN when empty.
func (o *Online) Mean() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.mean
}

// Variance returns the running unbiased variance, or NaN with fewer than two
// observations.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return math.NaN()
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the running standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest observation, or NaN when empty.
func (o *Online) Min() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.min
}

// Max returns the largest observation, or NaN when empty.
func (o *Online) Max() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.max
}

// BootstrapCI estimates a two-sided (1-alpha) confidence interval for the
// statistic f over xs using n bootstrap resamples drawn from rng. It returns
// the lower and upper bounds. For empty input both bounds are NaN.
func BootstrapCI(xs []float64, f func([]float64) float64, n int, alpha float64, rng *rand.Rand) (lo, hi float64) {
	if len(xs) == 0 || n <= 0 {
		return math.NaN(), math.NaN()
	}
	est := make([]float64, n)
	buf := make([]float64, len(xs))
	for i := 0; i < n; i++ {
		for j := range buf {
			buf[j] = xs[rng.Intn(len(xs))]
		}
		est[i] = f(buf)
	}
	sort.Float64s(est)
	return percentileSorted(est, 100*alpha/2), percentileSorted(est, 100*(1-alpha/2))
}

// Covariance returns the sample covariance of xs and ys (n-1 denominator).
// It returns NaN if the lengths differ or fewer than two samples are given.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs)-1)
}

// Pearson returns the Pearson correlation coefficient of xs and ys, or NaN
// when undefined.
func Pearson(xs, ys []float64) float64 {
	c := Covariance(xs, ys)
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return math.NaN()
	}
	return c / (sx * sy)
}

// MannWhitneyU computes the Mann-Whitney U statistic for samples a and b and
// a normal-approximation two-sided p-value. It is used to decide whether one
// configuration stochastically dominates another under noise. Small samples
// (< 8 total) make the approximation crude; callers should gather more data.
func MannWhitneyU(a, b []float64) (u, p float64) {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		return math.NaN(), math.NaN()
	}
	type obs struct {
		v    float64
		from int
	}
	all := make([]obs, 0, n1+n2)
	for _, x := range a {
		all = append(all, obs{x, 0})
	}
	for _, x := range b {
		all = append(all, obs{x, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	// Assign mid-ranks to ties.
	ranks := make([]float64, len(all))
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		r := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = r
		}
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.from == 0 {
			r1 += ranks[i]
		}
	}
	u1 := r1 - float64(n1*(n1+1))/2
	u2 := float64(n1*n2) - u1
	u = math.Min(u1, u2)
	mu := float64(n1*n2) / 2
	sigma := math.Sqrt(float64(n1*n2*(n1+n2+1)) / 12)
	if sigma == 0 {
		return u, 1
	}
	z := (u - mu) / sigma
	p = 2 * normalCDF(-math.Abs(z))
	return u, p
}

func normalCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

// NormalCDF returns the standard normal cumulative distribution at x.
func NormalCDF(x float64) float64 { return normalCDF(x) }

// NormalPDF returns the standard normal density at x.
func NormalPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// Linspace returns n evenly spaced values from lo to hi inclusive. n < 2
// yields a single-element slice containing lo.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}
