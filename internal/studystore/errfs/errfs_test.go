package errfs_test

import (
	"errors"
	"testing"

	"autotune/internal/studystore/errfs"
)

// TestCrashDiscardsUnsyncedWrites: file data is durable only up to the
// last successful Sync.
func TestCrashDiscardsUnsyncedWrites(t *testing.T) {
	fs := errfs.New()
	if err := fs.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("db/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("db"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("+volatile")); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	data, err := fs.ReadFile("db/a")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "durable" {
		t.Fatalf("after crash: %q, want the synced prefix only", data)
	}
}

// TestCrashDropsEntryWithoutDirSync: a created file vanishes at a crash
// if its directory entry was never fsync'd, even when its bytes were.
func TestCrashDropsEntryWithoutDirSync(t *testing.T) {
	fs := errfs.New()
	if err := fs.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("db/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// No SyncDir: the entry is volatile.
	fs.Crash()
	if _, err := fs.ReadFile("db/a"); err == nil {
		t.Fatal("file survived a crash without a directory fsync")
	}
}

// TestCrashRollsBackUnsyncedRename: a rename is durable only after the
// directory fsync; a crash before it restores the old name.
func TestCrashRollsBackUnsyncedRename(t *testing.T) {
	fs := errfs.New()
	fs.Put("db/old", []byte("v"))
	if err := fs.Rename("db/old", "db/new"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	if _, err := fs.ReadFile("db/old"); err != nil {
		t.Fatalf("old name gone after crash without dir fsync: %v", err)
	}
	if _, err := fs.ReadFile("db/new"); err == nil {
		t.Fatal("new name survived crash without dir fsync")
	}

	// With the barrier, the rename sticks.
	fs2 := errfs.New()
	fs2.Put("db/old", []byte("v"))
	if err := fs2.Rename("db/old", "db/new"); err != nil {
		t.Fatal(err)
	}
	if err := fs2.SyncDir("db"); err != nil {
		t.Fatal(err)
	}
	fs2.Crash()
	if _, err := fs2.ReadFile("db/new"); err != nil {
		t.Fatalf("renamed file lost despite dir fsync: %v", err)
	}
	if _, err := fs2.ReadFile("db/old"); err == nil {
		t.Fatal("old name resurrected despite dir fsync")
	}
}

// TestCrashResurrectsUnsyncedRemove: a removed file comes back if the
// directory was not fsync'd after the remove.
func TestCrashResurrectsUnsyncedRemove(t *testing.T) {
	fs := errfs.New()
	fs.Put("db/a", []byte("v"))
	if err := fs.RemoveFile("db/a"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	if _, err := fs.ReadFile("db/a"); err != nil {
		t.Fatalf("removed file stayed gone without dir fsync: %v", err)
	}

	fs2 := errfs.New()
	fs2.Put("db/a", []byte("v"))
	if err := fs2.RemoveFile("db/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs2.SyncDir("db"); err != nil {
		t.Fatal(err)
	}
	fs2.Crash()
	if _, err := fs2.ReadFile("db/a"); err == nil {
		t.Fatal("removed file resurrected despite dir fsync")
	}
}

// TestInjectedFaults: an armed write fault lands half the bytes and
// errors; an armed sync fault promotes nothing.
func TestInjectedFaults(t *testing.T) {
	fs := errfs.New()
	fs.Put("db/a", nil)
	f, err := fs.OpenAppend("db/a")
	if err != nil {
		t.Fatal(err)
	}
	fs.FailAt(1)
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, errfs.ErrInjected) || n != 3 {
		t.Fatalf("injected write: n=%d err=%v, want short write of 3", n, err)
	}
	if fs.Faults() != 1 {
		t.Fatalf("faults = %d, want 1", fs.Faults())
	}
	data, err := fs.ReadFile("db/a")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "abc" {
		t.Fatalf("file holds %q, want the short half", data)
	}
	fs.Crash()
	data, err = fs.ReadFile("db/a")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "" {
		t.Fatalf("short write survived crash: %q", data)
	}

	fs.FailAt(1)
	f2, err := fs.OpenAppend("db/a")
	if err == nil {
		// The open itself was the first mutating op and may be the fault
		// point in other sweeps; here we arm the *sync*.
		t.Fatal("expected the armed fault to fire on OpenAppend")
	}
	_ = f2
	f3, err := fs.OpenAppend("db/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f3.Write([]byte("xyz")); err != nil {
		t.Fatal(err)
	}
	fs.FailAt(1)
	if err := f3.Sync(); !errors.Is(err, errfs.ErrInjected) {
		t.Fatalf("injected sync = %v, want ErrInjected", err)
	}
	fs.Crash()
	data, err = fs.ReadFile("db/a")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "" {
		t.Fatalf("failed sync promoted bytes: %q", data)
	}
}

// TestCloneIsIndependent: mutations after Clone do not leak between the
// copies.
func TestCloneIsIndependent(t *testing.T) {
	fs := errfs.New()
	fs.Put("db/a", []byte("one"))
	cp := fs.Clone()
	f, err := fs.OpenAppend("db/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("+more")); err != nil {
		t.Fatal(err)
	}
	data, err := cp.ReadFile("db/a")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "one" {
		t.Fatalf("clone saw the original's write: %q", data)
	}
}
