// Package errfs is an in-memory, fault-injecting filesystem for
// crash-torture testing the study store. It models POSIX durability
// semantics precisely enough to simulate power cuts:
//
//   - file data written but not fsync'd is volatile;
//   - directory entries (creates, renames, removes) are volatile until
//     the directory is fsync'd, even when the file's own data is durable;
//   - Crash discards every volatile effect, rolling the filesystem back
//     to exactly what the fsync barriers guaranteed.
//
// Fault injection arms a single failure at the Nth mutating operation:
// writes fail short (half the bytes land, volatile), fsyncs fail without
// making anything durable, and metadata operations fail without applying.
// Sweeping N across a workload's full operation count visits every
// fault point the store can die at; following each fault with Crash and
// a reopen is the recovery torture test.
package errfs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"autotune/internal/studystore"
)

// ErrInjected is the error returned by an armed fault.
var ErrInjected = errors.New("errfs: injected fault")

// inode is one file's contents: current bytes plus the durable prefix
// guaranteed by its last successful Sync.
type inode struct {
	data    []byte
	durable []byte
}

func (ino *inode) clone() *inode {
	return &inode{data: cloneBytes(ino.data), durable: cloneBytes(ino.durable)}
}

func cloneBytes(b []byte) []byte { return append([]byte(nil), b...) }

// FS is the fault-injecting in-memory filesystem. The zero value is not
// usable; construct with New. It implements studystore.FS.
type FS struct {
	mu      sync.Mutex
	dirs    map[string]bool
	entries map[string]*inode // current namespace, full path -> inode
	durable map[string]*inode // namespace as of each directory's last SyncDir
	ops     int
	failAt  int
	faults  int
}

// New returns an empty filesystem.
func New() *FS {
	return &FS{
		dirs:    map[string]bool{},
		entries: map[string]*inode{},
		durable: map[string]*inode{},
	}
}

// FailAt arms a single fault at the n-th mutating operation from now
// (1-based). Zero disarms.
func (f *FS) FailAt(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops = 0
	f.failAt = n
}

// Ops reports mutating operations performed since construction or the
// last FailAt.
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Faults reports how many injected faults have fired.
func (f *FS) Faults() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faults
}

// step counts one mutating operation and reports whether the armed fault
// fires on it. Callers hold f.mu.
func (f *FS) step() bool {
	f.ops++
	if f.failAt != 0 && f.ops == f.failAt {
		f.faults++
		return true
	}
	return false
}

// Crash simulates a power cut: every effect not covered by an fsync
// barrier is discarded. The filesystem remains usable (recovery runs on
// it) and any armed fault is cleared.
func (f *FS) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt = 0
	cur := make(map[string]*inode, len(f.durable))
	for name, ino := range f.durable {
		restored := &inode{data: cloneBytes(ino.durable), durable: cloneBytes(ino.durable)}
		cur[name] = restored
		f.durable[name] = restored
	}
	f.entries = cur
}

// Clone deep-copies the filesystem, faults disarmed.
func (f *FS) Clone() *FS {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := New()
	for d := range f.dirs {
		out.dirs[d] = true
	}
	seen := map[*inode]*inode{}
	dup := func(ino *inode) *inode {
		if c, ok := seen[ino]; ok {
			return c
		}
		c := ino.clone()
		seen[ino] = c
		return c
	}
	for name, ino := range f.entries {
		out.entries[name] = dup(ino)
	}
	for name, ino := range f.durable {
		out.durable[name] = dup(ino)
	}
	return out
}

// Files returns the current (volatile-inclusive) contents of every file.
func (f *FS) Files() map[string][]byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string][]byte, len(f.entries))
	for name, ino := range f.entries {
		out[name] = cloneBytes(ino.data)
	}
	return out
}

// Put installs a file with fully durable contents — a test seeding hook.
func (f *FS) Put(name string, data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dirs[filepath.Dir(name)] = true
	ino := &inode{data: cloneBytes(data), durable: cloneBytes(data)}
	f.entries[name] = ino
	f.durable[name] = ino
}

// MkdirAll implements studystore.FS. Directory creation is durable
// immediately (the store's crash windows of interest are inside one
// directory, not its creation).
func (f *FS) MkdirAll(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.step() {
		return fmt.Errorf("mkdir %s: %w", dir, ErrInjected)
	}
	f.dirs[dir] = true
	return nil
}

// ReadDir implements studystore.FS.
func (f *FS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var names []string
	for name := range f.entries {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	if names == nil && !f.dirs[dir] {
		return nil, &os.PathError{Op: "open", Path: dir, Err: os.ErrNotExist}
	}
	return names, nil
}

// ReadFile implements studystore.FS.
func (f *FS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ino, ok := f.entries[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return cloneBytes(ino.data), nil
}

// Create implements studystore.FS: a fresh inode replaces any existing
// entry; both the entry and its bytes are volatile until fsync'd.
func (f *FS) Create(name string) (studystore.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.step() {
		return nil, fmt.Errorf("create %s: %w", name, ErrInjected)
	}
	ino := &inode{}
	f.entries[name] = ino
	return &file{fs: f, ino: ino, name: name}, nil
}

// OpenAppend implements studystore.FS.
func (f *FS) OpenAppend(name string) (studystore.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.step() {
		return nil, fmt.Errorf("open %s: %w", name, ErrInjected)
	}
	ino, ok := f.entries[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return &file{fs: f, ino: ino, name: name}, nil
}

// Truncate implements studystore.FS; the cut is volatile until the file
// is fsync'd.
func (f *FS) Truncate(name string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.step() {
		return fmt.Errorf("truncate %s: %w", name, ErrInjected)
	}
	ino, ok := f.entries[name]
	if !ok {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	if size < 0 || size > int64(len(ino.data)) {
		return fmt.Errorf("truncate %s: size %d out of range", name, size)
	}
	ino.data = ino.data[:size]
	return nil
}

// Rename implements studystore.FS; durable only after SyncDir.
func (f *FS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.step() {
		return fmt.Errorf("rename %s: %w", oldname, ErrInjected)
	}
	ino, ok := f.entries[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	f.entries[newname] = ino
	delete(f.entries, oldname)
	return nil
}

// RemoveFile implements studystore.FS; durable only after SyncDir.
func (f *FS) RemoveFile(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.step() {
		return fmt.Errorf("remove %s: %w", name, ErrInjected)
	}
	if _, ok := f.entries[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(f.entries, name)
	return nil
}

// SyncDir implements studystore.FS: the directory's current entry set
// (creates, renames, removes) becomes durable. File contents stay
// governed by their own Sync barriers.
func (f *FS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.step() {
		return fmt.Errorf("syncdir %s: %w", dir, ErrInjected)
	}
	for name := range f.durable {
		if filepath.Dir(name) == dir {
			if _, ok := f.entries[name]; !ok {
				delete(f.durable, name)
			}
		}
	}
	for name, ino := range f.entries {
		if filepath.Dir(name) == dir {
			f.durable[name] = ino
		}
	}
	return nil
}

// file is one write handle.
type file struct {
	fs     *FS
	ino    *inode
	name   string
	closed bool
}

// Write appends to the inode; an injected fault lands half the bytes
// (volatile) and reports failure — the short-write crash artifact.
func (h *file) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fmt.Errorf("write %s: file closed", h.name)
	}
	if h.fs.step() {
		n := len(p) / 2
		h.ino.data = append(h.ino.data, p[:n]...)
		return n, fmt.Errorf("write %s: %w", h.name, ErrInjected)
	}
	h.ino.data = append(h.ino.data, p...)
	return len(p), nil
}

// Sync makes the inode's current bytes durable; an injected fault fails
// without promoting anything (the adversarial reading of a failed fsync).
func (h *file) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fmt.Errorf("sync %s: file closed", h.name)
	}
	if h.fs.step() {
		return fmt.Errorf("sync %s: %w", h.name, ErrInjected)
	}
	h.ino.durable = cloneBytes(h.ino.data)
	return nil
}

// Close marks the handle unusable. It is never a fault point: the store
// treats Close as non-durability-bearing.
func (h *file) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
