package studystore

import "fmt"

// group.go is the group-commit engine: the one place a record batch is
// written and fsynced. Concurrent appenders enqueue their pre-framed
// batches; whoever holds the leadership token drains the whole queue,
// writes every waiting batch into the active segment, issues a single
// fsync, and only then wakes the followers. The durability contract is
// unchanged from the per-caller barrier it replaces — an appender's call
// returns nil strictly after the fsync that covers its records — but the
// fsync cost is now amortized across every batch that arrived while the
// previous commit was on the disk. A failed write or fsync poisons the
// store and fails every waiter in the group: none of their batches may be
// reported durable, because the shared commit they were riding never
// became one.
//
// Leadership is a token in a capacity-1 channel rather than a background
// goroutine: the store spawns nothing, so it has no lifecycle of its own
// to leak. An appender that enqueues either (a) is committed by the
// current leader and woken through its done channel, or (b) acquires the
// token, drains one group (which must include its own batch if nothing
// else committed it), releases the token, and checks its result. Each
// caller therefore leads at most a bounded number of drains — there is no
// dedicated leader to starve and no queue that can be abandoned.

// commitReq is one appender's framed batch waiting for a shared commit.
type commitReq struct {
	buf  []byte     // framed record batch, ready for the segment
	recs []Record   // the records, for the index once durable
	done chan error // buffered(1); the commit outcome
}

// enqueueCommit submits a framed batch to the group-commit queue and
// blocks until some commit (this caller's own drain or another leader's)
// has resolved it. It must be called with no store locks held.
func (s *Store) enqueueCommit(req *commitReq) error {
	s.qmu.Lock()
	s.queue = append(s.queue, req)
	s.qmu.Unlock()
	for {
		select {
		case err := <-req.done:
			return err
		case s.leadTok <- struct{}{}:
			s.leadDrain()
			<-s.leadTok
			// If our batch rode the drain (ours or a concurrent leader's),
			// the result is ready; otherwise it is still queued and the
			// next iteration drains it.
			select {
			case err := <-req.done:
				return err
			default:
			}
		}
	}
}

// leadDrain commits every batch currently queued under one fsync barrier
// and delivers the shared outcome to each waiter. Called by the token
// holder with no locks held.
func (s *Store) leadDrain() {
	s.qmu.Lock()
	group := s.queue
	s.queue = nil
	s.qmu.Unlock()
	if len(group) == 0 {
		return
	}
	s.wmu.Lock()
	err := s.commitGroupLocked(group)
	s.wmu.Unlock()
	for _, r := range group {
		r.done <- err
	}
}

// commitGroupLocked is the single write-and-fsync path for appends: it
// rotates if the active segment is full, writes every batch in the group
// back-to-back, issues one fsync, and folds the records into the index.
// The returned error is shared by every batch in the group — on a write
// or fsync failure the store is poisoned and no batch in the group may be
// considered durable. Caller holds wmu (and not mu).
func (s *Store) commitGroupLocked(group []*commitReq) error {
	if s.poison != nil {
		return fmt.Errorf("%w (cause: %v)", ErrPoisoned, s.poison)
	}
	if s.active == nil {
		return ErrClosed
	}
	if s.activeSize >= s.segBytes {
		if err := s.rotateLocked(); err != nil {
			return s.poisonWith(err)
		}
	}
	buf := group[0].buf
	if len(group) > 1 {
		total := 0
		for _, r := range group {
			total += len(r.buf)
		}
		buf = make([]byte, 0, total)
		for _, r := range group {
			buf = append(buf, r.buf...)
		}
	}
	if n, werr := s.active.Write(buf); werr != nil || n < len(buf) {
		return s.poisonWith(fmt.Errorf("studystore: append %s: %w",
			segName(s.activeSeq), writeErr(n, len(buf), werr)))
	}
	// wmu (held by the caller) is the WAL barrier: the group's shared
	// fsync must complete under the write-ordering lock before any waiter
	// is acked; index readers use mu and do not wait here.
	if serr := s.active.Sync(); serr != nil {
		return s.poisonWith(fmt.Errorf("studystore: sync %s: %w", segName(s.activeSeq), serr))
	}
	s.activeSize += int64(len(buf))
	nrecs := 0
	s.mu.Lock()
	for _, r := range group {
		for _, rec := range r.recs {
			rec.Payload = append([]byte(nil), rec.Payload...)
			s.addRecord(rec)
		}
		nrecs += len(r.recs)
	}
	s.appended += nrecs
	s.fsyncs++
	s.groups++
	s.groupBatches += len(group)
	if len(group) > s.maxGroup {
		s.maxGroup = len(group)
	}
	s.appendedBytes += int64(len(buf))
	s.mu.Unlock()
	return nil
}
