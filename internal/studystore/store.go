// Package studystore is an embedded, crash-safe, append-only study
// store: the durability layer under the tuning loop's trial journal and
// the storage foundation for multi-study serving.
//
// Records are opaque payloads (JSON upstream) keyed by (study, ID) and
// written as length-prefixed, CRC32C-framed entries into segment files
// that rotate at a size threshold. Durability follows a strict fsync
// barrier discipline: every append batch is fsync'd before it is
// acknowledged — concurrent batches are group-committed under one shared
// fsync (see group.go), but the ack still comes strictly after the fsync
// that covers it — segments are sealed (seal frame + fsync) before the next
// one is created, and the directory is fsync'd after every create,
// rename, or remove that must survive a power cut. Compaction writes a
// checkpoint snapshot of the live record set, makes it durable, and only
// then drops the segments it supersedes — crash-safe at every step.
//
// Recovery distinguishes the two corruption classes a write-ahead log
// must never conflate: a torn tail in the last segment is the expected
// artifact of a crash mid-append and is silently truncated, while a
// corrupt interior frame (CRC mismatch, impossible length) is
// quarantined with a report — the damaged byte range is counted and
// surfaced via Quarantine, never silently skipped, and Compact refuses
// to destroy segments while quarantined bytes exist.
//
// Any write or fsync failure poisons the store: the durable state on
// disk is no longer known to match the in-memory index, so every
// subsequent append fails fast with ErrPoisoned until the store is
// reopened (reopening replays the durable truth).
package studystore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrPoisoned marks a store unusable after a write or fsync failure: the
// durable state is ambiguous, so appends fail fast until a reopen
// re-establishes the on-disk truth.
var ErrPoisoned = errors.New("studystore: store poisoned by earlier write failure")

// ErrReadOnly is returned by mutating calls on a read-only store.
var ErrReadOnly = errors.New("studystore: store is read-only")

// ErrQuarantined is returned by Compact when quarantined bytes exist:
// compaction would silently destroy the damaged ranges.
var ErrQuarantined = errors.New("studystore: refusing to compact with quarantined records")

// ErrClosed is returned by appends after Close or Seal released the
// active segment handle.
var ErrClosed = errors.New("studystore: store is closed")

// Record is one stored entry: an opaque payload keyed by (study, ID).
type Record struct {
	Study   string
	ID      int64
	Payload []byte
}

// Quarantined reports one damaged byte range found during recovery.
type Quarantined struct {
	// File is the segment or snapshot filename (not path).
	File string
	// Offset is where the damage starts; Bytes is the quarantined length.
	Offset int64
	Bytes  int64
	// Reason describes the corruption (CRC mismatch, bad header, ...).
	Reason string
}

// Options configures Open.
type Options struct {
	// FS is the filesystem to write through (default: the real OS).
	FS FS
	// SegmentBytes is the rotation threshold (default 1 MiB): a batch
	// that finds the active segment at or past this size rotates first.
	SegmentBytes int64
	// ReadOnly opens the store without repairing, creating, or writing
	// anything; Append, Compact, and Rotate fail with ErrReadOnly.
	ReadOnly bool
	// DisableGroupCommit forces every append batch to pay its own fsync
	// (the pre-group-commit barrier) instead of riding a shared one. The
	// write path is identical otherwise — it exists as the benchmark
	// baseline and for the byte-identity property tests.
	DisableGroupCommit bool
}

// Stats summarizes store state and activity since Open.
type Stats struct {
	Records       int    // live records in the index
	Studies       int    // distinct studies
	Segments      int    // live segment files (including active)
	ActiveSeq     uint64 // sequence of the segment accepting appends
	SnapshotSeq   uint64 // sequence covered by the newest snapshot (0 = none)
	Appended      int    // records appended through this handle
	Rotations     int    // segment rotations through this handle
	Compactions   int    // successful compactions through this handle
	TornTailBytes int64  // bytes truncated from the last segment at Open
	Quarantined   int    // damaged byte ranges reported by recovery

	// Group-commit amortization counters (all through this handle).
	Fsyncs        int   // file fsyncs issued on the write path
	Groups        int   // append group commits (one shared fsync each)
	GroupBatches  int   // append batches committed through groups
	MaxGroup      int   // largest group (batches under one fsync)
	AppendedBytes int64 // framed bytes appended
	Poisoned      bool  // writes refused after an earlier write/fsync failure
}

// MeanGroup is the mean number of append batches amortized per group
// commit (1.0 means no amortization happened).
func (st Stats) MeanGroup() float64 {
	if st.Groups == 0 {
		return 0
	}
	return float64(st.GroupBatches) / float64(st.Groups)
}

// Store is the embedded study store. All methods are safe for
// concurrent use.
//
// Locking: three locks split the commit queue, the write barrier, and
// the read path. qmu guards the group-commit queue (pending batches and
// nothing else; never held across I/O). wmu orders the write path — it
// owns the active segment handle and is held across Write/Sync/rotate/
// compact so the on-disk log is a serial history; holding it across
// fsync IS the WAL barrier and is deliberate (annotated where the
// lockheld analyzer fires). Under group commit only the current leader
// takes wmu, so concurrent appenders queue on qmu (cheap) rather than on
// an fsync in progress. mu guards the in-memory index and handle
// metadata and is never held across I/O, so Records/Studies/Stats/
// Quarantine do not wait behind an fsync. Acquire wmu before mu, never
// the reverse; qmu nests inside neither. Fields guarded by mu are
// written only while wmu is also held, so the write path may read them
// under wmu alone.
type Store struct {
	wmu sync.Mutex
	mu  sync.Mutex
	fs  FS
	dir string

	segBytes    int64
	readOnly    bool
	groupCommit bool

	// Group-commit queue: qmu guards the pending batches (never held
	// across I/O); leadTok is the capacity-1 leadership token — its
	// holder drains the queue under wmu. See group.go.
	qmu     sync.Mutex
	queue   []*commitReq
	leadTok chan struct{}

	// Owned by wmu: the active segment and write-path state.
	active     File
	activeSize int64
	poison     error

	// Guarded by mu (written under wmu+mu): index and metadata.
	activeSeq uint64
	liveSegs  map[uint64]bool
	snapSeq   uint64

	studies     map[string][]Record
	seen        map[string]map[int64]bool
	nrecords    int
	quarantined []Quarantined

	appended, rotations, compactions int
	tornTailBytes                    int64
	fsyncs, groups, groupBatches     int
	maxGroup                         int
	appendedBytes                    int64
	poisoned                         bool
}

// Open loads (creating if needed) the store at dir: it removes stale
// temp files, loads the newest intact snapshot, finishes any compaction
// that crashed after its commit point (removing superseded segments and
// snapshots), replays every newer segment — truncating a torn tail,
// quarantining interior corruption — and prepares an active segment for
// appending.
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{
		fs:          opts.FS,
		dir:         dir,
		segBytes:    opts.SegmentBytes,
		readOnly:    opts.ReadOnly,
		groupCommit: !opts.DisableGroupCommit,
		leadTok:     make(chan struct{}, 1),
		liveSegs:    map[uint64]bool{},
		studies:     map[string][]Record{},
		seen:        map[string]map[int64]bool{},
	}
	if s.fs == nil {
		s.fs = OSFS()
	}
	if s.segBytes <= 0 {
		s.segBytes = 1 << 20
	}
	if !s.readOnly {
		if err := s.fs.MkdirAll(dir); err != nil {
			return nil, fmt.Errorf("studystore: mkdir %s: %w", dir, err)
		}
	}
	names, err := s.fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("studystore: list %s: %w", dir, err)
	}
	segs, snaps, tmps := classify(names)
	dirty := false
	if !s.readOnly {
		for _, name := range tmps {
			// A temp file is a compaction that never reached its rename;
			// its contents were never acknowledged as a snapshot.
			if err := s.fs.RemoveFile(join(dir, name)); err != nil {
				return nil, fmt.Errorf("studystore: remove stale %s: %w", name, err)
			}
			dirty = true
		}
	}
	s.loadSnapshot(snaps)
	if !s.readOnly && s.snapSeq > 0 {
		// Finish a compaction that crashed mid-removal: everything the
		// loaded snapshot covers is safe to drop.
		for _, seq := range snaps {
			if seq >= s.snapSeq {
				continue
			}
			if err := s.fs.RemoveFile(join(dir, snapName(seq))); err != nil {
				return nil, fmt.Errorf("studystore: remove %s: %w", snapName(seq), err)
			}
			dirty = true
		}
		for _, seq := range segs {
			if seq > s.snapSeq {
				continue
			}
			if err := s.fs.RemoveFile(join(dir, segName(seq))); err != nil {
				return nil, fmt.Errorf("studystore: remove %s: %w", segName(seq), err)
			}
			dirty = true
		}
	}
	if err := s.replaySegments(segs, &dirty); err != nil {
		return nil, err
	}
	if !s.readOnly && dirty {
		if err := s.fs.SyncDir(dir); err != nil {
			return nil, fmt.Errorf("studystore: %w", err)
		}
	}
	return s, nil
}

// classify splits directory entries into segment seqs, snapshot seqs
// (both ascending), and temp files.
func classify(names []string) (segs, snaps []uint64, tmps []string) {
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			tmps = append(tmps, name)
			continue
		}
		if seq, ok := parseName(name, "seg-", ".log"); ok {
			segs = append(segs, seq)
			continue
		}
		if seq, ok := parseName(name, "snap-", ".snap"); ok {
			snaps = append(snaps, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	return segs, snaps, tmps
}

// parseName extracts the hex sequence from prefix<16 hex>suffix.
func parseName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// loadSnapshot loads the newest intact snapshot, reporting damaged ones.
func (s *Store) loadSnapshot(snaps []uint64) {
	for i := len(snaps) - 1; i >= 0; i-- {
		seq := snaps[i]
		name := snapName(seq)
		data, err := s.fs.ReadFile(join(s.dir, name))
		if err != nil {
			s.quarantined = append(s.quarantined, Quarantined{
				File: name, Reason: fmt.Sprintf("unreadable snapshot: %v", err)})
			continue
		}
		recs, reason := parseSnapshot(data, seq)
		if reason != "" {
			s.quarantined = append(s.quarantined, Quarantined{
				File: name, Bytes: int64(len(data)), Reason: reason})
			continue
		}
		for _, rec := range recs {
			s.addRecord(rec)
		}
		s.snapSeq = seq
		return
	}
}

// parseSnapshot validates a snapshot file end to end; a non-empty reason
// means the snapshot is unusable.
func parseSnapshot(data []byte, seq uint64) ([]Record, string) {
	if len(data) < headerSize || string(data[:8]) != snapMagic {
		return nil, "bad snapshot header"
	}
	if hdrSeq(data) != seq {
		return nil, "snapshot sequence does not match filename"
	}
	var recs []Record
	off := int64(headerSize)
	for {
		kind, body, next, st := nextFrame(data, off)
		if st != frameOK {
			return nil, fmt.Sprintf("snapshot damaged at offset %d (no footer)", off)
		}
		switch kind {
		case kindRecord:
			rec, err := decodeRecordBody(body)
			if err != nil {
				return nil, fmt.Sprintf("snapshot record at offset %d: %v", off, err)
			}
			recs = append(recs, rec)
		case kindFooter:
			if len(body) != 8 {
				return nil, "snapshot footer malformed"
			}
			if count := binary.LittleEndian.Uint64(body); count != uint64(len(recs)) {
				return nil, fmt.Sprintf("snapshot footer count %d, have %d records", count, len(recs))
			}
			if int(next) != len(data) {
				return nil, "trailing bytes after snapshot footer"
			}
			return recs, ""
		default:
			return nil, fmt.Sprintf("snapshot frame kind %d at offset %d", kind, off)
		}
		off = next
	}
}

// segState classifies one replayed segment.
type segState int

const (
	segOpenTail  segState = iota // unsealed, intact through good — valid append target
	segSealed                    // cleanly sealed at rotation
	segTornHead                  // header never became durable; carries no records
	segPoisonous                 // quarantined damage; never append to it
)

// replaySegments replays every segment newer than the snapshot, repairs
// the last one (torn-tail truncation, torn-header rewrite), and opens or
// creates the active segment.
func (s *Store) replaySegments(segs []uint64, dirty *bool) error {
	var replay []uint64
	for _, seq := range segs {
		if seq > s.snapSeq {
			replay = append(replay, seq)
		}
	}
	lastState := segSealed
	var lastGood int64
	for i, seq := range replay {
		name := segName(seq)
		isLast := i == len(replay)-1
		data, err := s.fs.ReadFile(join(s.dir, name))
		if err != nil {
			return fmt.Errorf("studystore: read %s: %w", name, err)
		}
		state, good := s.replaySegment(name, seq, data, isLast)
		s.liveSegs[seq] = true
		if !isLast {
			continue
		}
		lastState, lastGood = state, good
		if state == segOpenTail && good < int64(len(data)) && !s.readOnly {
			// Torn tail: the crash artifact. Cut the file back to the
			// last intact frame so appends continue from a clean edge.
			if err := s.fs.Truncate(join(s.dir, name), good); err != nil {
				return fmt.Errorf("studystore: truncate %s: %w", name, err)
			}
			s.tornTailBytes += int64(len(data)) - good
		}
	}
	if s.readOnly {
		if len(replay) > 0 {
			s.activeSeq = replay[len(replay)-1]
		}
		return nil
	}
	switch {
	case len(replay) > 0 && lastState == segOpenTail:
		// Reuse the unsealed tail segment.
		seq := replay[len(replay)-1]
		f, err := s.fs.OpenAppend(join(s.dir, segName(seq)))
		if err != nil {
			return fmt.Errorf("studystore: reopen %s: %w", segName(seq), err)
		}
		s.active, s.activeSeq, s.activeSize = f, seq, lastGood
		return nil
	case len(replay) > 0 && lastState == segTornHead:
		// The directory entry outlived the header bytes (power cut right
		// at creation). The file provably holds no acknowledged records,
		// so rewrite it in place under the same sequence.
		if err := s.createSegment(replay[len(replay)-1]); err != nil {
			return err
		}
		*dirty = true
		return nil
	}
	// Sealed, quarantined, or no segments at all: start a fresh one past
	// everything seen so far.
	next := s.snapSeq + 1
	if len(replay) > 0 {
		next = replay[len(replay)-1] + 1
	}
	if err := s.createSegment(next); err != nil {
		return err
	}
	*dirty = true
	return nil
}

// replaySegment parses one segment, folding records into the index and
// damage into the quarantine report. good is the offset after the last
// intact frame.
func (s *Store) replaySegment(name string, seq uint64, data []byte, isLast bool) (state segState, good int64) {
	if len(data) < headerSize {
		if isLast {
			return segTornHead, 0
		}
		s.quarantined = append(s.quarantined, Quarantined{
			File: name, Bytes: int64(len(data)), Reason: "segment header torn"})
		return segPoisonous, 0
	}
	if string(data[:8]) != segMagic || hdrSeq(data) != seq {
		s.quarantined = append(s.quarantined, Quarantined{
			File: name, Bytes: int64(len(data)), Reason: "bad segment header"})
		return segPoisonous, 0
	}
	sealed := false
	off := int64(headerSize)
	for {
		kind, body, next, st := nextFrame(data, off)
		switch st {
		case frameEOF:
			if sealed {
				return segSealed, off
			}
			return segOpenTail, off
		case frameTorn:
			if isLast && !sealed {
				return segOpenTail, off
			}
			s.quarantined = append(s.quarantined, Quarantined{
				File: name, Offset: off, Bytes: int64(len(data)) - off,
				Reason: "torn frame in sealed position"})
			return segPoisonous, off
		case frameCorrupt:
			// Interior corruption: frame lengths past this point cannot
			// be trusted, so the remainder of the segment is quarantined
			// as one reported range rather than silently resynced.
			s.quarantined = append(s.quarantined, Quarantined{
				File: name, Offset: off, Bytes: int64(len(data)) - off,
				Reason: "frame CRC/length mismatch"})
			return segPoisonous, off
		}
		if sealed {
			s.quarantined = append(s.quarantined, Quarantined{
				File: name, Offset: off, Bytes: int64(len(data)) - off,
				Reason: "frames after seal"})
			return segPoisonous, off
		}
		switch kind {
		case kindRecord:
			rec, err := decodeRecordBody(body)
			if err != nil {
				s.quarantined = append(s.quarantined, Quarantined{
					File: name, Offset: off, Bytes: int64(len(data)) - off,
					Reason: err.Error()})
				return segPoisonous, off
			}
			s.addRecord(rec)
		case kindSeal:
			sealed = true
		default:
			s.quarantined = append(s.quarantined, Quarantined{
				File: name, Offset: off, Bytes: int64(len(data)) - off,
				Reason: fmt.Sprintf("unknown frame kind %d", kind)})
			return segPoisonous, off
		}
		off = next
	}
}

// addRecord folds one record into the index; the first occurrence of a
// (study, ID) wins, matching the journal's read-side dedup semantics.
func (s *Store) addRecord(rec Record) {
	ids := s.seen[rec.Study]
	if ids == nil {
		ids = map[int64]bool{}
		s.seen[rec.Study] = ids
	}
	if ids[rec.ID] {
		return
	}
	ids[rec.ID] = true
	s.studies[rec.Study] = append(s.studies[rec.Study], rec)
	s.nrecords++
}

// createSegment creates and makes durable a fresh segment: file header
// written and fsync'd; the caller (or the shared Open epilogue) fsyncs
// the directory.
func (s *Store) createSegment(seq uint64) error {
	name := segName(seq)
	f, err := s.fs.Create(join(s.dir, name))
	if err != nil {
		return fmt.Errorf("studystore: create %s: %w", name, err)
	}
	hdr := fileHeader(segMagic, seq)
	if n, err := f.Write(hdr); err != nil || n < len(hdr) {
		//autolint:ignore droppederr already failing; the close error is secondary
		f.Close()
		return fmt.Errorf("studystore: write %s header: %w", name, writeErr(n, len(hdr), err))
	}
	if err := f.Sync(); err != nil {
		//autolint:ignore droppederr already failing; the close error is secondary
		f.Close()
		return fmt.Errorf("studystore: sync %s: %w", name, err)
	}
	s.countFsyncs(1)
	s.active, s.activeSize = f, headerSize
	s.mu.Lock()
	s.activeSeq = seq
	s.liveSegs[seq] = true
	s.mu.Unlock()
	return nil
}

// writeErr normalizes a short write into an error.
func writeErr(n, want int, err error) error {
	if err != nil {
		return err
	}
	if n < want {
		return io.ErrShortWrite
	}
	return nil
}

// Append writes one record durably. It rides the same group-commit
// queue as AppendBatch — there is exactly one fsync path in the store.
func (s *Store) Append(rec Record) error { return s.AppendBatch([]Record{rec}) }

// AppendBatch writes a batch of records under an fsync barrier: when it
// returns nil, every record in the batch is durable across a power cut.
// Concurrent batches are group-committed — each enqueues its framed
// records and a leader fsyncs every waiting batch at once — but the ack
// still happens strictly after the fsync that covers it. On any write or
// fsync failure the store is poisoned, every waiter in the failing group
// gets the error (none of their batches is durable), and subsequent
// appends fail with ErrPoisoned until the store is reopened.
func (s *Store) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	if s.readOnly {
		return ErrReadOnly
	}
	var buf []byte
	var err error
	for _, rec := range recs {
		buf, err = appendRecordFrame(buf, rec)
		if err != nil {
			return err // encoding error: nothing written, store still clean
		}
	}
	req := &commitReq{buf: buf, recs: recs, done: make(chan error, 1)}
	if !s.groupCommit {
		// Baseline arm: the same commit path, forced to a group of one,
		// so every batch pays its own fsync.
		s.wmu.Lock()
		err := s.commitGroupLocked([]*commitReq{req})
		s.wmu.Unlock()
		return err
	}
	return s.enqueueCommit(req)
}

// poisonWith records the first failure and returns it. Caller holds
// wmu (poison is write-path state); the mu-guarded mirror lets Stats
// report the poisoning without touching write-path state.
func (s *Store) poisonWith(err error) error {
	if s.poison == nil {
		s.poison = err
	}
	s.mu.Lock()
	s.poisoned = true
	s.mu.Unlock()
	return err
}

// countFsyncs bumps the write-path fsync counter by n. Callers hold wmu.
func (s *Store) countFsyncs(n int) {
	s.mu.Lock()
	s.fsyncs += n
	s.mu.Unlock()
}

// rotateLocked seals the active segment and starts the next one:
// seal frame + file fsync, close, create the successor (header fsync'd),
// directory fsync. Each barrier completes before the next step, so a
// crash at any point recovers to either the sealed or the fresh segment.
// Caller holds wmu (and not mu).
func (s *Store) rotateLocked() error {
	seal := appendFrame(nil, kindSeal, nil)
	if n, err := s.active.Write(seal); err != nil || n < len(seal) {
		return fmt.Errorf("studystore: seal %s: %w", segName(s.activeSeq), writeErr(n, len(seal), err))
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("studystore: seal sync %s: %w", segName(s.activeSeq), err)
	}
	s.countFsyncs(1)
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("studystore: close %s: %w", segName(s.activeSeq), err)
	}
	if err := s.createSegment(s.activeSeq + 1); err != nil {
		return err
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return err
	}
	s.mu.Lock()
	s.rotations++
	s.mu.Unlock()
	return nil
}

// Seal writes a durable seal frame to the active segment and closes the
// store: the log ends on a cleanly terminated history instead of an open
// tail, so the next Open starts a fresh segment with zero repair work.
// It is the graceful-shutdown counterpart to Close (which leaves the tail
// open, as a crash would). A poisoned store cannot be trusted to write
// the seal; Seal then just releases the handle — every acknowledged
// append is already durable.
func (s *Store) Seal() error {
	if s.readOnly {
		return ErrReadOnly
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.active == nil {
		return nil
	}
	if s.poison != nil {
		err := s.active.Close()
		s.active = nil
		return err
	}
	seal := appendFrame(nil, kindSeal, nil)
	if n, err := s.active.Write(seal); err != nil || n < len(seal) {
		return s.poisonWith(fmt.Errorf("studystore: seal %s: %w", segName(s.activeSeq), writeErr(n, len(seal), err)))
	}
	//autolint:ignore lockheld wmu is the WAL barrier: the final seal must be durable before the handle is released
	if err := s.active.Sync(); err != nil {
		return s.poisonWith(fmt.Errorf("studystore: seal sync %s: %w", segName(s.activeSeq), err))
	}
	s.countFsyncs(1)
	err := s.active.Close()
	s.active = nil
	if err != nil {
		return fmt.Errorf("studystore: close %s: %w", segName(s.activeSeq), err)
	}
	return nil
}

// Rotate seals the active segment and starts a fresh one.
func (s *Store) Rotate() error {
	if s.readOnly {
		return ErrReadOnly
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.poison != nil {
		return fmt.Errorf("%w (cause: %v)", ErrPoisoned, s.poison)
	}
	if err := s.rotateLocked(); err != nil {
		return s.poisonWith(err)
	}
	return nil
}

// Compact checkpoints the live record set and drops the segments it
// supersedes. The sequence is crash-safe at every step:
//
//  1. rotate — seal the active segment so the snapshot covers a frozen
//     prefix of the log;
//  2. write the snapshot to a temp file and fsync it;
//  3. rename it into place and fsync the directory (the commit point);
//  4. remove superseded segments and older snapshots, fsync again.
//
// A crash before step 3 leaves only a stale temp file (removed at next
// Open); a crash during step 4 leaves extra segments whose records the
// snapshot already covers (finished at next Open). Compact refuses to
// run while quarantined bytes exist — destroying segments would silently
// drop the damaged ranges.
func (s *Store) Compact() error {
	if s.readOnly {
		return ErrReadOnly
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.poison != nil {
		return fmt.Errorf("%w (cause: %v)", ErrPoisoned, s.poison)
	}
	// quarantined is fixed at Open; reading it without mu is safe.
	if len(s.quarantined) > 0 {
		return ErrQuarantined
	}
	if err := s.rotateLocked(); err != nil {
		return s.poisonWith(err)
	}
	covered := s.activeSeq - 1
	if err := s.writeSnapshot(covered); err != nil {
		return s.poisonWith(err)
	}
	// Commit point passed: drop everything the snapshot supersedes.
	oldSnap := s.snapSeq
	for seq := uint64(1); seq <= covered; seq++ {
		if !s.liveSegs[seq] {
			continue
		}
		if err := s.fs.RemoveFile(join(s.dir, segName(seq))); err != nil {
			return s.poisonWith(fmt.Errorf("studystore: remove %s: %w", segName(seq), err))
		}
		s.mu.Lock()
		delete(s.liveSegs, seq)
		s.mu.Unlock()
	}
	if oldSnap > 0 && oldSnap < covered {
		if err := s.fs.RemoveFile(join(s.dir, snapName(oldSnap))); err != nil {
			return s.poisonWith(fmt.Errorf("studystore: remove %s: %w", snapName(oldSnap), err))
		}
	}
	//autolint:ignore lockheld compaction is write-path work: wmu is held across the directory barrier by design; index readers use mu and do not wait here
	if err := s.fs.SyncDir(s.dir); err != nil {
		return s.poisonWith(err)
	}
	s.mu.Lock()
	s.snapSeq = covered
	s.compactions++
	s.mu.Unlock()
	return nil
}

// writeSnapshot writes, fsyncs, and atomically publishes the snapshot
// covering all segments with seq <= covered. Caller holds wmu, which
// excludes every index writer, so the record set is read without mu —
// concurrent Records/Studies calls proceed while the snapshot syncs.
func (s *Store) writeSnapshot(covered uint64) error {
	tmpName := join(s.dir, fmt.Sprintf("snap-%016x.tmp", covered))
	f, err := s.fs.Create(tmpName)
	if err != nil {
		return fmt.Errorf("studystore: create snapshot temp: %w", err)
	}
	buf := fileHeader(snapMagic, covered)
	count := 0
	for _, study := range s.studiesLocked() {
		recs := append([]Record(nil), s.studies[study]...)
		sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
		for _, rec := range recs {
			buf, err = appendRecordFrame(buf, rec)
			if err != nil {
				//autolint:ignore droppederr already failing; the close error is secondary
				f.Close()
				return err
			}
			count++
		}
	}
	var footer [8]byte
	binary.LittleEndian.PutUint64(footer[:], uint64(count))
	buf = appendFrame(buf, kindFooter, footer[:])
	if n, err := f.Write(buf); err != nil || n < len(buf) {
		//autolint:ignore droppederr already failing; the close error is secondary
		f.Close()
		return fmt.Errorf("studystore: write snapshot: %w", writeErr(n, len(buf), err))
	}
	if err := f.Sync(); err != nil {
		//autolint:ignore droppederr already failing; the close error is secondary
		f.Close()
		return fmt.Errorf("studystore: sync snapshot: %w", err)
	}
	s.countFsyncs(1)
	if err := f.Close(); err != nil {
		return fmt.Errorf("studystore: close snapshot: %w", err)
	}
	if err := s.fs.Rename(tmpName, join(s.dir, snapName(covered))); err != nil {
		return fmt.Errorf("studystore: publish snapshot: %w", err)
	}
	return s.fs.SyncDir(s.dir)
}

// Records returns the study's records sorted by ID (first occurrence of
// each ID wins). The returned slice is the caller's; payloads are shared
// and must be treated as read-only.
func (s *Store) Records(study string) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]Record(nil), s.studies[study]...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Studies lists the studies with at least one record, sorted.
func (s *Store) Studies() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.studiesLocked()
}

// studiesLocked lists the studies; the caller holds mu, or wmu (which
// excludes every index writer).
func (s *Store) studiesLocked() []string {
	out := make([]string, 0, len(s.studies))
	for study := range s.studies {
		out = append(out, study)
	}
	sort.Strings(out)
	return out
}

// QueueDepth reports the append batches currently waiting in the
// group-commit queue: an instantaneous gauge of commit pressure.
func (s *Store) QueueDepth() int {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return len(s.queue)
}

// Quarantine reports every damaged byte range recovery found.
func (s *Store) Quarantine() []Quarantined {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Quarantined(nil), s.quarantined...)
}

// Stats returns a snapshot of store state and handle activity.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Records:       s.nrecords,
		Studies:       len(s.studies),
		Segments:      len(s.liveSegs),
		ActiveSeq:     s.activeSeq,
		SnapshotSeq:   s.snapSeq,
		Appended:      s.appended,
		Rotations:     s.rotations,
		Compactions:   s.compactions,
		TornTailBytes: s.tornTailBytes,
		Quarantined:   len(s.quarantined),
		Fsyncs:        s.fsyncs,
		Groups:        s.groups,
		GroupBatches:  s.groupBatches,
		MaxGroup:      s.maxGroup,
		AppendedBytes: s.appendedBytes,
		Poisoned:      s.poisoned,
	}
}

// Close closes the active segment handle. Every acknowledged append is
// already durable, so Close performs no flushing of its own.
func (s *Store) Close() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.active == nil {
		return nil
	}
	err := s.active.Close()
	s.active = nil
	return err
}

// hdrSeq reads the sequence number from a 16-byte file header.
func hdrSeq(data []byte) uint64 { return binary.LittleEndian.Uint64(data[8:16]) }
