package studystore_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autotune/internal/studystore"
	"autotune/internal/studystore/errfs"
)

func rec(study string, id int64) studystore.Record {
	return studystore.Record{
		Study:   study,
		ID:      id,
		Payload: []byte(fmt.Sprintf(`{"study":%q,"id":%d}`, study, id)),
	}
}

// ids extracts the ID sequence of a record slice.
func ids(recs []studystore.Record) []int64 {
	out := make([]int64, len(recs))
	for i, r := range recs {
		out[i] = r.ID
	}
	return out
}

func TestStoreRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := studystore.Open(dir, studystore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := st.Append(rec("alpha", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Append(rec("beta", 0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := studystore.Open(dir, studystore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got := st2.Records("alpha")
	if len(got) != 10 {
		t.Fatalf("alpha records = %d, want 10", len(got))
	}
	for i, r := range got {
		if r.ID != int64(i) {
			t.Fatalf("record %d has ID %d, want sorted IDs", i, r.ID)
		}
		if string(r.Payload) != string(rec("alpha", r.ID).Payload) {
			t.Fatalf("record %d payload = %q", i, r.Payload)
		}
	}
	if studies := st2.Studies(); len(studies) != 2 || studies[0] != "alpha" || studies[1] != "beta" {
		t.Fatalf("studies = %v", studies)
	}
	if q := st2.Quarantine(); len(q) != 0 {
		t.Fatalf("quarantine = %v, want none", q)
	}
}

func TestStoreRotationSpansSegments(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := studystore.Open(dir, studystore.Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 40; i++ {
		if err := st.Append(rec("s", i)); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.Rotations == 0 || stats.Segments < 2 {
		t.Fatalf("rotations=%d segments=%d, want a multi-segment store", stats.Rotations, stats.Segments)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := studystore.Open(dir, studystore.Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Records("s"); len(got) != 40 {
		t.Fatalf("recovered %d records across segments, want 40", len(got))
	}
	if q := st2.Quarantine(); len(q) != 0 {
		t.Fatalf("quarantine = %v, want none", q)
	}
}

func TestStoreCompactionDropsSegmentsKeepsRecords(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := studystore.Open(dir, studystore.Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 30; i++ {
		if err := st.Append(rec("s", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if stats := st.Stats(); stats.Segments != 1 || stats.SnapshotSeq == 0 {
		t.Fatalf("after compact: segments=%d snapshotSeq=%d, want 1 segment + snapshot",
			stats.Segments, stats.SnapshotSeq)
	}
	// Append past the snapshot, compact again: the old snapshot is replaced.
	for i := int64(30); i < 45; i++ {
		if err := st.Append(rec("s", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	var snaps, segs int
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".snap"):
			snaps++
		case strings.HasSuffix(e.Name(), ".log"):
			segs++
		case strings.HasSuffix(e.Name(), ".tmp"):
			t.Fatalf("stale temp file %s after compaction", e.Name())
		}
	}
	if snaps != 1 || segs != 1 {
		t.Fatalf("on disk: %d snapshots, %d segments; want 1 and 1", snaps, segs)
	}

	st2, err := studystore.Open(dir, studystore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Records("s"); len(got) != 45 {
		t.Fatalf("recovered %d records after compaction, want 45", len(got))
	}
}

func TestStoreDedupFirstWins(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := studystore.Open(dir, studystore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	first := studystore.Record{Study: "s", ID: 7, Payload: []byte("first")}
	second := studystore.Record{Study: "s", ID: 7, Payload: []byte("second")}
	if err := st.Append(first); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(second); err != nil {
		t.Fatal(err)
	}
	got := st.Records("s")
	if len(got) != 1 || string(got[0].Payload) != "first" {
		t.Fatalf("records = %v, want single record with first payload", got)
	}
}

func TestStoreInteriorCorruptionQuarantined(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := studystore.Open(dir, studystore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		if err := st.Append(rec("s", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the middle of the segment: disk damage, not a torn
	// tail. Recovery must report it, not silently skip it.
	seg := filepath.Join(dir, "seg-0000000000000001.log")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := studystore.Open(dir, studystore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	q := st2.Quarantine()
	if len(q) != 1 || q[0].Bytes == 0 {
		t.Fatalf("quarantine = %v, want one damaged range", q)
	}
	if got := st2.Records("s"); len(got) == 8 || len(got) == 0 {
		t.Fatalf("recovered %d records, want the prefix before the damage", len(got))
	}
	if err := st2.Compact(); !errors.Is(err, studystore.ErrQuarantined) {
		t.Fatalf("Compact with quarantine = %v, want ErrQuarantined", err)
	}
	// The store stays appendable: new records land in a fresh segment.
	if err := st2.Append(rec("s", 100)); err != nil {
		t.Fatal(err)
	}
}

func TestStoreTornTailTruncated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := studystore.Open(dir, studystore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		if err := st.Append(rec("s", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	seg := filepath.Join(dir, "seg-0000000000000001.log")
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A frame header promising more bytes than the file holds: the classic
	// crash-mid-append artifact.
	if _, err := f.Write([]byte{0xF0, 0x00, 0x00, 0x00, 0x12}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := studystore.Open(dir, studystore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Records("s"); len(got) != 5 {
		t.Fatalf("recovered %d records, want 5", len(got))
	}
	if q := st2.Quarantine(); len(q) != 0 {
		t.Fatalf("quarantine = %v; a torn tail is not corruption", q)
	}
	if stats := st2.Stats(); stats.TornTailBytes != 5 {
		t.Fatalf("torn tail bytes = %d, want 5", stats.TornTailBytes)
	}
	// The truncated segment accepts appends again.
	if err := st2.Append(rec("s", 5)); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := studystore.Open(dir, studystore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if got := ids(st3.Records("s")); len(got) != 6 || got[5] != 5 {
		t.Fatalf("records after repair+append = %v", got)
	}
}

func TestStorePoisonedAfterSyncFailure(t *testing.T) {
	fs := errfs.New()
	st, err := studystore.Open("db", studystore.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(rec("s", 0)); err != nil {
		t.Fatal(err)
	}
	// The next mutating op is the record write; the one after is its fsync.
	fs.FailAt(2)
	if err := st.Append(rec("s", 1)); !errors.Is(err, errfs.ErrInjected) {
		t.Fatalf("append with failing fsync = %v, want injected error", err)
	}
	if err := st.Append(rec("s", 2)); !errors.Is(err, studystore.ErrPoisoned) {
		t.Fatalf("append after poison = %v, want ErrPoisoned", err)
	}
	if err := st.Compact(); !errors.Is(err, studystore.ErrPoisoned) {
		t.Fatalf("compact after poison = %v, want ErrPoisoned", err)
	}

	// Crash and reopen: only the acknowledged record survives.
	fs.Crash()
	st2, err := studystore.Open("db", studystore.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := ids(st2.Records("s")); len(got) != 1 || got[0] != 0 {
		t.Fatalf("recovered IDs = %v, want [0]", got)
	}
	if q := st2.Quarantine(); len(q) != 0 {
		t.Fatalf("quarantine = %v, want none", q)
	}
}

func TestStoreReadOnly(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := studystore.Open(dir, studystore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(rec("s", 0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := studystore.Open(dir, studystore.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if got := ro.Records("s"); len(got) != 1 {
		t.Fatalf("read-only records = %d, want 1", len(got))
	}
	if err := ro.Append(rec("s", 1)); !errors.Is(err, studystore.ErrReadOnly) {
		t.Fatalf("read-only append = %v, want ErrReadOnly", err)
	}
	if err := ro.Compact(); !errors.Is(err, studystore.ErrReadOnly) {
		t.Fatalf("read-only compact = %v, want ErrReadOnly", err)
	}
	if err := ro.Rotate(); !errors.Is(err, studystore.ErrReadOnly) {
		t.Fatalf("read-only rotate = %v, want ErrReadOnly", err)
	}
}

func TestStoreStaleTempAndBadSnapshotIgnored(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := studystore.Open(dir, studystore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		if err := st.Append(rec("s", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A crashed compaction's leftovers: a temp file and a snapshot whose
	// footer never made it.
	if err := os.WriteFile(filepath.Join(dir, "snap-0000000000000009.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snap-0000000000000002.snap"), []byte("ATSNAP01truncated"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := studystore.Open(dir, studystore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Records("s"); len(got) != 4 {
		t.Fatalf("recovered %d records, want 4 from segments", len(got))
	}
	if _, err := os.Stat(filepath.Join(dir, "snap-0000000000000009.tmp")); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived open: %v", err)
	}
	q := st2.Quarantine()
	if len(q) != 1 || q[0].File != "snap-0000000000000002.snap" {
		t.Fatalf("quarantine = %v, want the damaged snapshot reported", q)
	}
}

// TestSealCleanShutdown: Seal terminates the log with a durable seal
// frame; the next Open finds a cleanly sealed history (no torn tail, no
// repair) and starts a fresh segment past it.
func TestSealCleanShutdown(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := studystore.Open(dir, studystore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		if err := st.Append(rec("alpha", i)); err != nil {
			t.Fatal(err)
		}
	}
	sealedSeq := st.Stats().ActiveSeq
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	// Seal released the handle: further seals are no-ops, appends poisoned
	// handles aside would hit a nil segment — the store is done.
	if err := st.Seal(); err != nil {
		t.Fatalf("second Seal: %v", err)
	}

	st2, err := studystore.Open(dir, studystore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	stats := st2.Stats()
	if stats.TornTailBytes != 0 {
		t.Fatalf("torn tail after Seal = %d bytes, want 0", stats.TornTailBytes)
	}
	if stats.Quarantined != 0 {
		t.Fatalf("quarantined after Seal = %d, want 0", stats.Quarantined)
	}
	if stats.ActiveSeq != sealedSeq+1 {
		t.Fatalf("active seq = %d, want fresh segment %d past the sealed one", stats.ActiveSeq, sealedSeq+1)
	}
	if got := ids(st2.Records("alpha")); len(got) != 5 {
		t.Fatalf("records after Seal+Open = %v, want 5", got)
	}
	if err := st2.Append(rec("alpha", 5)); err != nil {
		t.Fatal(err)
	}
}
