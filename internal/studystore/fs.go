package studystore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// FS is the narrow filesystem surface the store writes through. The
// production implementation is the real OS filesystem; tests substitute
// the fault-injecting in-memory filesystem from studystore/errfs to
// simulate short writes, fsync failures, and power cuts at every
// operation boundary.
type FS interface {
	// MkdirAll creates the directory (and parents) if missing.
	MkdirAll(dir string) error
	// ReadDir lists the names (not paths) of entries in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// ReadFile returns the full contents of the named file.
	ReadFile(name string) ([]byte, error)
	// Create opens the named file for writing, truncating it.
	Create(name string) (File, error)
	// OpenAppend opens an existing file for appending.
	OpenAppend(name string) (File, error)
	// Truncate cuts the named file to size bytes.
	Truncate(name string, size int64) error
	// Rename atomically replaces newname with oldname's entry. Durable
	// only after SyncDir.
	Rename(oldname, newname string) error
	// RemoveFile deletes the named file. Durable only after SyncDir.
	RemoveFile(name string) error
	// SyncDir fsyncs the directory, making creates, renames, and removes
	// inside it durable.
	SyncDir(dir string) error
}

// File is one writable file handle.
type File interface {
	Write(p []byte) (int, error)
	// Sync fsyncs the file: every byte written before Sync returns is
	// durable across a power cut.
	Sync() error
	Close() error
}

// osFS is the real filesystem.
type osFS struct{}

// OSFS returns the production FS backed by the operating system.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_APPEND|os.O_WRONLY, 0o644)
}

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) RemoveFile(name string) error { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("studystore: open dir %s: %w", dir, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("studystore: sync dir %s: %w", dir, err)
	}
	return nil
}

// join builds a path inside the store directory.
func join(dir, name string) string { return filepath.Join(dir, name) }
