package studystore_test

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"autotune/internal/studystore"
)

// TestStoreConcurrentReadersWritersCompact hammers the two-lock
// discipline: writers append (each fsync holds the write-ordering lock),
// readers pound the index (which must never wait behind an fsync), and a
// maintenance goroutine rotates and compacts throughout. Run under
// -race this is the regression test for the wmu/mu split; afterwards a
// reopen must replay the exact record set.
func TestStoreConcurrentReadersWritersCompact(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := studystore.Open(dir, studystore.Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const perWriter = 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			study := fmt.Sprintf("study-%d", w)
			for i := int64(0); i < perWriter; i++ {
				if err := st.Append(rec(study, i)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			study := fmt.Sprintf("study-%d", r)
			for {
				select {
				case <-done:
					return
				default:
				}
				recs := st.Records(study)
				for i := 1; i < len(recs); i++ {
					if recs[i-1].ID >= recs[i].ID {
						t.Errorf("reader %d: unsorted snapshot", r)
						return
					}
				}
				st.Studies()
				st.Stats()
				st.Quarantine()
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 10; i++ {
			if err := st.Rotate(); err != nil {
				t.Errorf("rotate: %v", err)
				return
			}
			if err := st.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	stats := st.Stats()
	if want := writers * perWriter; stats.Records != want {
		t.Fatalf("Records = %d, want %d", stats.Records, want)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := studystore.Open(dir, studystore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for w := 0; w < writers; w++ {
		got := ids(st2.Records(fmt.Sprintf("study-%d", w)))
		if len(got) != perWriter {
			t.Fatalf("study-%d replayed %d records, want %d", w, len(got), perWriter)
		}
		for i, id := range got {
			if id != int64(i) {
				t.Fatalf("study-%d record %d has ID %d", w, i, id)
			}
		}
	}
}
