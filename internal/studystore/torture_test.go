package studystore_test

// Crash-torture tests: the store is killed at every injectable fault
// point (TestTortureFaultSweep) and at every byte prefix of its segment
// files (TestTortureBytePrefixRecovery), then reopened. Recovery must be
// exactly-once — no acknowledged record lost, none duplicated, nothing
// quarantined — because every one of these states is reachable by a real
// power cut under the store's fsync-barrier discipline.

import (
	"fmt"
	"testing"

	"autotune/internal/studystore"
	"autotune/internal/studystore/errfs"
)

const tortureSegBytes = 512

type recKey struct {
	study string
	id    int64
}

// runTortureWorkload drives a deterministic mixed workload — batched
// appends across two studies, rotations via the small segment size, one
// mid-stream compaction — and returns the keys of every acknowledged
// record. It stops at the first error: the store is poisoned and the
// simulated process dies.
func runTortureWorkload(fs *errfs.FS, compact bool) (acked []recKey) {
	st, err := studystore.Open("db", studystore.Options{FS: fs, SegmentBytes: tortureSegBytes})
	if err != nil {
		return nil
	}
	defer st.Close()
	studies := []string{"alpha", "beta"}
	next := map[string]int64{}
	for i := 0; i < 16; i++ {
		study := studies[i%len(studies)]
		batch := make([]studystore.Record, 1+i%3)
		for j := range batch {
			batch[j] = rec(study, next[study])
			next[study]++
		}
		if err := st.AppendBatch(batch); err != nil {
			return acked
		}
		for _, r := range batch {
			acked = append(acked, recKey{r.Study, r.ID})
		}
		if compact && i == 8 {
			if err := st.Compact(); err != nil {
				return acked
			}
		}
	}
	return acked
}

// recovered reopens the store and returns every live record keyed by
// (study, ID), with payload integrity checked.
func recovered(t *testing.T, fs *errfs.FS, label string) map[recKey]bool {
	t.Helper()
	st, err := studystore.Open("db", studystore.Options{FS: fs, SegmentBytes: tortureSegBytes})
	if err != nil {
		t.Fatalf("%s: recovery open failed: %v", label, err)
	}
	defer st.Close()
	if q := st.Quarantine(); len(q) != 0 {
		t.Fatalf("%s: recovery quarantined %v; power-cut states must replay clean", label, q)
	}
	got := map[recKey]bool{}
	for _, study := range st.Studies() {
		for _, r := range st.Records(study) {
			k := recKey{study, r.ID}
			if got[k] {
				t.Fatalf("%s: record %v recovered twice", label, k)
			}
			got[k] = true
			if want := string(rec(study, r.ID).Payload); string(r.Payload) != want {
				t.Fatalf("%s: record %v payload %q, want %q", label, k, r.Payload, want)
			}
		}
	}
	return got
}

// TestTortureFaultSweep kills the store at every mutating filesystem
// operation of the workload — short writes, failed fsyncs, failed
// creates/renames/removes — follows each with a power cut, reopens, and
// asserts exactly-once recovery of the acknowledged set.
func TestTortureFaultSweep(t *testing.T) {
	probe := errfs.New()
	full := runTortureWorkload(probe, true)
	total := probe.Ops()
	if len(full) == 0 || total < 50 {
		t.Fatalf("workload too small to torture: %d records, %d ops", len(full), total)
	}
	stride := 1
	if testing.Short() {
		stride = 7
	}
	for fault := 1; fault <= total; fault += stride {
		label := fmt.Sprintf("fault@%d/%d", fault, total)
		fs := errfs.New()
		fs.FailAt(fault)
		acked := runTortureWorkload(fs, true)
		if fs.Faults() != 1 {
			t.Fatalf("%s: fired %d faults, want exactly 1", label, fs.Faults())
		}
		fs.Crash()
		got := recovered(t, fs, label)
		for _, k := range acked {
			if !got[k] {
				t.Fatalf("%s: acknowledged record %v lost (recovered %d of %d)",
					label, k, len(got), len(acked))
			}
		}
		if len(got) != len(acked) {
			t.Fatalf("%s: recovered %d records but only %d were acknowledged — phantom ack",
				label, len(got), len(acked))
		}
		// The recovered store must accept new work: append one more record
		// and reopen once again.
		if fault%5 == 0 {
			st, err := studystore.Open("db", studystore.Options{FS: fs, SegmentBytes: tortureSegBytes})
			if err != nil {
				t.Fatalf("%s: post-recovery open: %v", label, err)
			}
			extra := rec("gamma", 1)
			if err := st.Append(extra); err != nil {
				t.Fatalf("%s: post-recovery append: %v", label, err)
			}
			if err := st.Close(); err != nil {
				t.Fatalf("%s: post-recovery close: %v", label, err)
			}
			got2 := recovered(t, fs, label+"+append")
			if len(got2) != len(acked)+1 || !got2[recKey{"gamma", 1}] {
				t.Fatalf("%s: post-recovery append not durable (%d records)", label, len(got2))
			}
		}
	}
}

// TestTortureBytePrefixRecovery cuts the on-disk state at every byte
// prefix — modeling a power cut that left any prefix of the log durable —
// and asserts recovery is prefix-closed in append order: the recovered
// set is always the first m appends, m never decreases as the prefix
// grows, and nothing is quarantined.
func TestTortureBytePrefixRecovery(t *testing.T) {
	// A single-study, sequential-ID workload with no compaction: append
	// order equals ID order, so prefix-closedness is checkable as
	// contiguity.
	fs := errfs.New()
	st, err := studystore.Open("db", studystore.Options{FS: fs, SegmentBytes: tortureSegBytes})
	if err != nil {
		t.Fatal(err)
	}
	const total = 40
	for i := int64(0); i < total; i++ {
		if err := st.Append(rec("s", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	files := fs.Files()
	var segs []string
	for seq := uint64(1); ; seq++ {
		name := fmt.Sprintf("db/seg-%016x.log", seq)
		if _, ok := files[name]; !ok {
			break
		}
		segs = append(segs, name)
	}
	if len(segs) < 3 {
		t.Fatalf("workload produced %d segments, want >= 3 for a meaningful sweep", len(segs))
	}

	stride := 1
	if testing.Short() {
		stride = 17
	}
	prev := -1
	step := 0
	for i, seg := range segs {
		for cut := 0; cut <= len(files[seg]); cut += stride {
			label := fmt.Sprintf("seg[%d]cut@%d", i, cut)
			sim := errfs.New()
			for _, done := range segs[:i] {
				sim.Put(done, files[done])
			}
			sim.Put(seg, files[seg][:cut])
			got := recovered(t, sim, label)
			// Prefix-closed: exactly the IDs 0..m-1 for some m.
			m := len(got)
			for id := int64(0); id < int64(m); id++ {
				if !got[recKey{"s", id}] {
					t.Fatalf("%s: recovered %d records but ID %d missing — not prefix-closed", label, m, id)
				}
			}
			// Monotone: a longer durable prefix never recovers less.
			if m < prev {
				t.Fatalf("%s: recovery shrank from %d to %d records as the prefix grew", label, prev, m)
			}
			prev = m
			// Spot-check appendability after repair.
			step++
			if step%13 == 0 {
				st, err := studystore.Open("db", studystore.Options{FS: sim, SegmentBytes: tortureSegBytes})
				if err != nil {
					t.Fatalf("%s: post-repair open: %v", label, err)
				}
				if err := st.Append(rec("s", int64(m))); err != nil {
					t.Fatalf("%s: post-repair append: %v", label, err)
				}
				if err := st.Close(); err != nil {
					t.Fatal(err)
				}
				got2 := recovered(t, sim, label+"+append")
				if len(got2) != m+1 || !got2[recKey{"s", int64(m)}] {
					t.Fatalf("%s: post-repair append not durable (%d records, want %d)", label, len(got2), m+1)
				}
			}
		}
	}
	// The full final segment recovers the whole workload.
	sim := errfs.New()
	for _, seg := range segs {
		sim.Put(seg, files[seg])
	}
	if got := recovered(t, sim, "full"); len(got) != total {
		t.Fatalf("full state recovered %d records, want %d", len(got), total)
	}
}
