package studystore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// On-disk format.
//
// Every store file starts with a 16-byte header: an 8-byte magic string
// followed by a little-endian uint64 sequence number that must match the
// number encoded in the filename. Segment files (`seg-<seq>.log`) hold
// the append-only record log; snapshot files (`snap-<seq>.snap`) hold a
// compacted copy of every live record covering all segments with
// sequence <= seq.
//
// After the header, both file kinds are a run of frames:
//
//	+----------------+----------------+------+------------------+
//	| length  uint32 | crc32c  uint32 | kind | body (length-1)  |
//	+----------------+----------------+------+------------------+
//
// length counts the kind byte plus the body; the CRC (Castagnoli) covers
// the same range. Frame kinds:
//
//	kindRecord  one study record: uint64 ID, uint16 study-name length,
//	            the study name, then the opaque payload (JSON upstream).
//	kindSeal    empty body; marks a segment cleanly sealed at rotation.
//	kindFooter  snapshot trailer: uint64 record count. A snapshot
//	            without a matching footer is incomplete and ignored.
//
// A frame that runs past end-of-file is a torn tail; a frame whose CRC
// or structure is wrong mid-file is corruption and quarantines the rest
// of that file (lengths past the damage cannot be trusted).
const (
	segMagic  = "ATSSEG01"
	snapMagic = "ATSNAP01"

	headerSize      = 16
	frameHeaderSize = 8
	maxFrameSize    = 16 << 20

	kindRecord = 1
	kindSeal   = 2
	kindFooter = 3
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// fileHeader renders the 16-byte header for a segment or snapshot.
func fileHeader(magic string, seq uint64) []byte {
	buf := make([]byte, headerSize)
	copy(buf, magic)
	binary.LittleEndian.PutUint64(buf[8:], seq)
	return buf
}

// appendFrame appends one framed body (kind byte included) to buf.
func appendFrame(buf []byte, kind byte, body []byte) []byte {
	n := 1 + len(body)
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(n))
	crc := crc32.Update(0, crcTable, []byte{kind})
	crc = crc32.Update(crc, crcTable, body)
	binary.LittleEndian.PutUint32(hdr[4:], crc)
	buf = append(buf, hdr[:]...)
	buf = append(buf, kind)
	buf = append(buf, body...)
	return buf
}

// appendRecordFrame frames one record.
func appendRecordFrame(buf []byte, rec Record) ([]byte, error) {
	if len(rec.Study) > 0xFFFF {
		return buf, fmt.Errorf("studystore: study name %d bytes, max %d", len(rec.Study), 0xFFFF)
	}
	body := make([]byte, 0, 10+len(rec.Study)+len(rec.Payload))
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(rec.ID))
	body = append(body, n[:]...)
	var sl [2]byte
	binary.LittleEndian.PutUint16(sl[:], uint16(len(rec.Study)))
	body = append(body, sl[:]...)
	body = append(body, rec.Study...)
	body = append(body, rec.Payload...)
	out := appendFrame(buf, kindRecord, body)
	if len(out)-len(buf) > maxFrameSize {
		return buf, fmt.Errorf("studystore: record %d payload exceeds max frame size", rec.ID)
	}
	return out, nil
}

// decodeRecordBody parses a kindRecord frame body (kind byte stripped).
func decodeRecordBody(body []byte) (Record, error) {
	if len(body) < 10 {
		return Record{}, fmt.Errorf("studystore: record frame %d bytes, need >= 10", len(body))
	}
	id := int64(binary.LittleEndian.Uint64(body[0:]))
	sl := int(binary.LittleEndian.Uint16(body[8:]))
	if len(body) < 10+sl {
		return Record{}, fmt.Errorf("studystore: record frame truncated study name")
	}
	study := string(body[10 : 10+sl])
	payload := append([]byte(nil), body[10+sl:]...)
	return Record{Study: study, ID: id, Payload: payload}, nil
}

// frameStatus classifies one parse step.
type frameStatus int

const (
	frameOK      frameStatus = iota // valid frame decoded
	frameEOF                        // clean end of data
	frameTorn                       // frame runs past end-of-file
	frameCorrupt                    // CRC mismatch or impossible structure
)

// nextFrame parses the frame at data[off:]. On frameOK it returns the
// kind, the body (kind byte stripped), and the offset after the frame.
func nextFrame(data []byte, off int64) (kind byte, body []byte, next int64, st frameStatus) {
	rem := data[off:]
	if len(rem) == 0 {
		return 0, nil, off, frameEOF
	}
	if len(rem) < frameHeaderSize {
		return 0, nil, off, frameTorn
	}
	n := binary.LittleEndian.Uint32(rem[0:])
	want := binary.LittleEndian.Uint32(rem[4:])
	if n < 1 || n > maxFrameSize {
		return 0, nil, off, frameCorrupt
	}
	if int64(len(rem)) < frameHeaderSize+int64(n) {
		return 0, nil, off, frameTorn
	}
	framed := rem[frameHeaderSize : frameHeaderSize+int64(n)]
	if crc32.Checksum(framed, crcTable) != want {
		return 0, nil, off, frameCorrupt
	}
	return framed[0], framed[1:], off + frameHeaderSize + int64(n), frameOK
}

// segName / snapName render store filenames; parseSeq inverts them.
func segName(seq uint64) string  { return fmt.Sprintf("seg-%016x.log", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%016x.snap", seq) }
