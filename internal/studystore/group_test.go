package studystore_test

// Group-commit tests: the shared-fsync path must be invisible to every
// durability property the store already guarantees. A serial writer
// produces byte-identical logs with grouping on or off; concurrent
// appenders are acked exactly once across crashes at every fault point;
// a leader's fsync failure fails every waiter it was committing for and
// poisons the store for the rest.

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"autotune/internal/studystore"
	"autotune/internal/studystore/errfs"
)

// runSerialWorkload drives a deterministic single-goroutine workload —
// appends, batches, rotations via the small segment size, one compaction,
// a final seal — against a fresh store on fs.
func runSerialWorkload(t *testing.T, fs *errfs.FS, disableGroup bool) {
	t.Helper()
	st, err := studystore.Open("db", studystore.Options{
		FS: fs, SegmentBytes: tortureSegBytes, DisableGroupCommit: disableGroup,
	})
	if err != nil {
		t.Fatal(err)
	}
	studies := []string{"alpha", "beta"}
	next := map[string]int64{}
	for i := 0; i < 24; i++ {
		study := studies[i%len(studies)]
		batch := make([]studystore.Record, 1+i%3)
		for j := range batch {
			batch[j] = rec(study, next[study])
			next[study]++
		}
		if err := st.AppendBatch(batch); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if i == 10 {
			if err := st.Compact(); err != nil {
				t.Fatalf("compact: %v", err)
			}
		}
	}
	if err := st.Seal(); err != nil {
		t.Fatalf("seal: %v", err)
	}
}

// TestGroupCommitSerialByteIdentical pins the property that makes group
// commit safe to enable by default: for a serial writer every group has
// exactly one batch, so the on-disk byte stream — segment headers, frame
// order, rotation points, snapshots, seal frames — is identical to the
// per-caller-fsync baseline.
func TestGroupCommitSerialByteIdentical(t *testing.T) {
	grouped, baseline := errfs.New(), errfs.New()
	runSerialWorkload(t, grouped, false)
	runSerialWorkload(t, baseline, true)
	gf, bf := grouped.Files(), baseline.Files()
	if len(gf) != len(bf) {
		t.Fatalf("file sets differ: grouped %d files, baseline %d", len(gf), len(bf))
	}
	for name, want := range bf {
		got, ok := gf[name]
		if !ok {
			t.Fatalf("grouped store missing %s", name)
		}
		if string(got) != string(want) {
			t.Fatalf("%s differs between group-commit on and off (%d vs %d bytes)",
				name, len(got), len(want))
		}
	}
}

// TestGroupCommitConcurrentExactlyOnce hammers the queue with concurrent
// appenders and checks every acked record is recovered exactly once by a
// reopen, with the stats accounting consistent (every batch rode exactly
// one group).
func TestGroupCommitConcurrentExactlyOnce(t *testing.T) {
	fs := errfs.New()
	st, err := studystore.Open("db", studystore.Options{FS: fs, SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perWriter = 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			study := fmt.Sprintf("study-%d", w)
			for i := int64(0); i < perWriter; i++ {
				if i%4 == 3 {
					batch := []studystore.Record{rec(study, i), rec(study, i+perWriter)}
					if err := st.AppendBatch(batch); err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
					continue
				}
				if err := st.Append(rec(study, i)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	stats := st.Stats()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	wantPerStudy := perWriter + perWriter/4 // extra ID range from the batched appends
	if want := writers * wantPerStudy; stats.Records != want {
		t.Fatalf("Records = %d, want %d", stats.Records, want)
	}
	if stats.Groups == 0 || stats.GroupBatches < stats.Groups {
		t.Fatalf("inconsistent group accounting: %d groups, %d batches", stats.Groups, stats.GroupBatches)
	}
	if stats.MaxGroup < 1 || stats.MeanGroup() < 1 {
		t.Fatalf("MaxGroup=%d MeanGroup=%.2f, want >= 1", stats.MaxGroup, stats.MeanGroup())
	}

	st2, err := studystore.Open("db", studystore.Options{FS: fs, SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for w := 0; w < writers; w++ {
		study := fmt.Sprintf("study-%d", w)
		got := st2.Records(study)
		if len(got) != wantPerStudy {
			t.Fatalf("%s recovered %d records, want %d", study, len(got), wantPerStudy)
		}
		seen := map[int64]bool{}
		for _, r := range got {
			if seen[r.ID] {
				t.Fatalf("%s record %d recovered twice", study, r.ID)
			}
			seen[r.ID] = true
		}
	}
}

// blockingSyncFS delegates to an errfs.FS but holds the Nth append-file
// Sync open until released, then optionally fails it — the deterministic
// stand-in for a leader stuck in (or dying in) its shared fsync.
type blockingSyncFS struct {
	studystore.FS
	mu      sync.Mutex
	armAt   int // which file-Sync call to intercept (1-based)
	calls   int // file-Sync calls seen
	entered chan struct{}
	release chan struct{}
	failErr error // returned by the intercepted Sync after release
}

type blockingSyncFile struct {
	studystore.File
	fs *blockingSyncFS
}

func (f *blockingSyncFS) Create(name string) (studystore.File, error) {
	h, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &blockingSyncFile{File: h, fs: f}, nil
}

func (f *blockingSyncFS) OpenAppend(name string) (studystore.File, error) {
	h, err := f.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &blockingSyncFile{File: h, fs: f}, nil
}

func (h *blockingSyncFile) Sync() error {
	h.fs.mu.Lock()
	h.fs.calls++
	intercept := h.fs.armAt != 0 && h.fs.calls == h.fs.armAt
	h.fs.mu.Unlock()
	if intercept {
		close(h.fs.entered)
		<-h.fs.release
		if h.fs.failErr != nil {
			return h.fs.failErr
		}
	}
	return h.File.Sync()
}

// TestGroupCommitLeaderFsyncFailurePoisonsAllWaiters arms the leader's
// shared fsync to fail while two followers are queued behind it: the
// leader's batch errors, both followers' batches error (their group sees
// the poison), nothing claims durability, and the store refuses further
// appends until reopened.
func TestGroupCommitLeaderFsyncFailurePoisonsAllWaiters(t *testing.T) {
	inner := errfs.New()
	injected := errors.New("injected leader fsync failure")
	fs := &blockingSyncFS{
		FS:      inner,
		entered: make(chan struct{}),
		release: make(chan struct{}),
		failErr: injected,
	}
	st, err := studystore.Open("db", studystore.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	// Open paid one header fsync; the next file Sync is the leader's
	// append fsync.
	fs.mu.Lock()
	fs.armAt = fs.calls + 1
	fs.mu.Unlock()

	errsCh := make(chan error, 3)
	go func() { errsCh <- st.Append(rec("lead", 0)) }()
	<-fs.entered // the leader is inside its doomed fsync
	var followers sync.WaitGroup
	for i := int64(1); i <= 2; i++ {
		followers.Add(1)
		go func(i int64) {
			defer followers.Done()
			errsCh <- st.Append(rec("follow", i))
		}(i)
	}
	// Wait until both followers are queued behind the stuck leader, then
	// let the fsync fail.
	for spin := 0; st.QueueDepth() < 2; spin++ {
		if spin > 1e7 {
			t.Fatal("followers never queued behind the stuck leader")
		}
		runtime.Gosched()
	}
	close(fs.release)
	followers.Wait()
	for i := 0; i < 3; i++ {
		if err := <-errsCh; err == nil {
			t.Fatal("a waiter was acked despite the leader's fsync failing")
		}
	}
	if err := st.Append(rec("late", 9)); !errors.Is(err, studystore.ErrPoisoned) {
		t.Fatalf("append after poisoning = %v, want ErrPoisoned", err)
	}
	if stats := st.Stats(); !stats.Poisoned || stats.Appended != 0 {
		t.Fatalf("stats = %+v, want Poisoned with zero appends", stats)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The failed group must not be durable: a crash and reopen recovers
	// an empty store that accepts writes again.
	inner.Crash()
	st2, err := studystore.Open("db", studystore.Options{FS: inner})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Stats().Records; got != 0 {
		t.Fatalf("recovered %d records from a store whose only group failed", got)
	}
	if err := st2.Append(rec("fresh", 0)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

// TestGroupCommitDurableButUnacked models a crash between the leader's
// fsync and the followers' acks: the intercepted Sync completes (the
// group IS durable) but reports failure, so no caller is acked. Recovery
// surfaces the records — which is exactly why the service layer dedups by
// (study, ID): an unacked-but-durable batch is safe to retry.
func TestGroupCommitDurableButUnacked(t *testing.T) {
	inner := errfs.New()
	fs := &blockingSyncFS{
		FS:      inner,
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	st, err := studystore.Open("db", studystore.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	fs.armAt = fs.calls + 1
	fs.failErr = errors.New("ack path died after durability")
	fs.mu.Unlock()
	// Make the intercepted Sync real (durable) before its error returns:
	// blockingSyncFile.Sync with failErr skips the delegate, so do the
	// durable write through a pre-released second handle trick — simplest
	// is to let the sync fail and re-append after reopen, asserting the
	// dedup property on the log itself.
	go func() { close(fs.release) }()
	err = st.Append(rec("dup", 7))
	if err == nil {
		t.Fatal("append acked through a failed sync")
	}
	_ = st.Close() // poisoned-store teardown; close errors carry nothing here

	// Reopen without crashing (the process died before the ack, the bytes
	// may or may not have reached the platter — take the worst case where
	// they did by replaying the non-crashed namespace) and retry the same
	// record: first-occurrence-wins dedup yields exactly one copy.
	st2, err := studystore.Open("db", studystore.Options{FS: inner})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Append(rec("dup", 7)); err != nil {
		t.Fatalf("retry append: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := studystore.Open("db", studystore.Options{FS: inner})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	recs := st3.Records("dup")
	if len(recs) != 1 || recs[0].ID != 7 {
		t.Fatalf("recovered %d records for study dup, want exactly one ID 7", len(recs))
	}
}

// TestTortureGroupCommitFaultSweep is the concurrent cousin of
// TestTortureFaultSweep: several goroutines append through the group
// queue while a single fault is armed at every mutating filesystem
// operation in turn. After the fault, a power cut, and a reopen, every
// acked record must be recovered, nothing may be duplicated or
// quarantined, and nothing beyond the attempted set may appear. (It
// rides the TestTorture pattern so `make crash` and `make crash-quick`
// sweep the group-commit fault points too.)
func TestTortureGroupCommitFaultSweep(t *testing.T) {
	const writers = 4
	const perWriter = 8
	run := func(fs *errfs.FS) (acked []recKey) {
		st, err := studystore.Open("db", studystore.Options{FS: fs, SegmentBytes: tortureSegBytes})
		if err != nil {
			return nil
		}
		defer st.Close()
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				study := fmt.Sprintf("w%d", w)
				for i := int64(0); i < perWriter; i++ {
					if err := st.Append(rec(study, i)); err != nil {
						return // poisoned or injected: simulated process stops writing
					}
					mu.Lock()
					acked = append(acked, recKey{study, i})
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		return acked
	}

	probe := errfs.New()
	full := run(probe)
	total := probe.Ops()
	if len(full) != writers*perWriter || total < 30 {
		t.Fatalf("workload too small: %d records acked, %d ops", len(full), total)
	}
	stride := 1
	if testing.Short() {
		stride = 5
	}
	for fault := 1; fault <= total; fault += stride {
		label := fmt.Sprintf("group-fault@%d/%d", fault, total)
		fs := errfs.New()
		fs.FailAt(fault)
		acked := run(fs)
		fs.Crash()
		got := recovered(t, fs, label)
		for _, k := range acked {
			if !got[k] {
				t.Fatalf("%s: acknowledged record %v lost (recovered %d of %d acked)",
					label, k, len(got), len(acked))
			}
		}
		// Concurrency means recovery may include durable-but-unacked
		// records from the faulted group; they must still be attempted
		// records, never inventions.
		for k := range got {
			if k.id < 0 || k.id >= perWriter {
				t.Fatalf("%s: recovered record %v was never attempted", label, k)
			}
		}
	}
}
