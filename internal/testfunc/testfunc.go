// Package testfunc provides the classic synthetic black-box objectives used
// to exercise and compare optimizers, plus the 1-D kernel-scheduler latency
// curve from the tutorial's running example. All functions are minimized;
// each ships with its canonical search Space and known optimum so that
// convergence experiments can report simple regret.
package testfunc

import (
	"math"
	"sync"

	"autotune/internal/space"
)

// Func is a synthetic objective: a deterministic function over a Space with
// a known global minimum for regret computation.
type Func struct {
	Name string
	// Space is the canonical domain.
	Space *space.Space
	// Eval returns the objective at cfg (minimization).
	Eval func(cfg space.Config) float64
	// Optimum is the known global minimum value.
	Optimum float64
}

// Regret returns f(cfg) - optimum, the simple regret of cfg.
func (f Func) Regret(cfg space.Config) float64 { return f.Eval(cfg) - f.Optimum }

// Sphere returns the d-dimensional sphere function sum(x_i^2) on [-5, 5]^d.
// Minimum 0 at the origin.
func Sphere(d int) Func {
	params := make([]space.Param, d)
	for i := range params {
		params[i] = space.Float(dimName(i), -5, 5)
	}
	s := space.MustNew(params...)
	return Func{
		Name:  "sphere",
		Space: s,
		Eval: func(cfg space.Config) float64 {
			sum := 0.0
			for i := 0; i < d; i++ {
				x := cfg.Float(dimName(i))
				sum += x * x
			}
			return sum
		},
		Optimum: 0,
	}
}

// Branin returns the 2-D Branin-Hoo function on [-5,10] x [0,15].
// Global minimum 0.397887 at three points.
func Branin() Func {
	s := space.MustNew(space.Float("x1", -5, 10), space.Float("x2", 0, 15))
	a, b, c := 1.0, 5.1/(4*math.Pi*math.Pi), 5/math.Pi
	r, t, sc := 6.0, 1/(8*math.Pi), 10.0
	return Func{
		Name:  "branin",
		Space: s,
		Eval: func(cfg space.Config) float64 {
			x1, x2 := cfg.Float("x1"), cfg.Float("x2")
			term := x2 - b*x1*x1 + c*x1 - r
			return a*term*term + sc*(1-t)*math.Cos(x1) + sc
		},
		Optimum: 0.39788735772973816,
	}
}

// Rosenbrock returns the d-dimensional Rosenbrock valley on [-2, 2]^d.
// Minimum 0 at (1, ..., 1).
func Rosenbrock(d int) Func {
	params := make([]space.Param, d)
	for i := range params {
		params[i] = space.Float(dimName(i), -2, 2)
	}
	s := space.MustNew(params...)
	return Func{
		Name:  "rosenbrock",
		Space: s,
		Eval: func(cfg space.Config) float64 {
			sum := 0.0
			for i := 0; i < d-1; i++ {
				x, y := cfg.Float(dimName(i)), cfg.Float(dimName(i+1))
				sum += 100*(y-x*x)*(y-x*x) + (1-x)*(1-x)
			}
			return sum
		},
		Optimum: 0,
	}
}

// Ackley returns the d-dimensional Ackley function on [-32.768, 32.768]^d.
// Minimum 0 at the origin.
func Ackley(d int) Func {
	params := make([]space.Param, d)
	for i := range params {
		params[i] = space.Float(dimName(i), -32.768, 32.768)
	}
	s := space.MustNew(params...)
	return Func{
		Name:  "ackley",
		Space: s,
		Eval: func(cfg space.Config) float64 {
			var sq, cs float64
			for i := 0; i < d; i++ {
				x := cfg.Float(dimName(i))
				sq += x * x
				cs += math.Cos(2 * math.Pi * x)
			}
			n := float64(d)
			return -20*math.Exp(-0.2*math.Sqrt(sq/n)) - math.Exp(cs/n) + 20 + math.E
		},
		Optimum: 0,
	}
}

// Rastrigin returns the d-dimensional Rastrigin function on [-5.12, 5.12]^d.
// Minimum 0 at the origin; highly multimodal.
func Rastrigin(d int) Func {
	params := make([]space.Param, d)
	for i := range params {
		params[i] = space.Float(dimName(i), -5.12, 5.12)
	}
	s := space.MustNew(params...)
	return Func{
		Name:  "rastrigin",
		Space: s,
		Eval: func(cfg space.Config) float64 {
			sum := 10 * float64(d)
			for i := 0; i < d; i++ {
				x := cfg.Float(dimName(i))
				sum += x*x - 10*math.Cos(2*math.Pi*x)
			}
			return sum
		},
		Optimum: 0,
	}
}

// Levy returns the d-dimensional Levy function on [-10, 10]^d.
// Minimum 0 at (1, ..., 1).
func Levy(d int) Func {
	params := make([]space.Param, d)
	for i := range params {
		params[i] = space.Float(dimName(i), -10, 10)
	}
	s := space.MustNew(params...)
	w := func(x float64) float64 { return 1 + (x-1)/4 }
	return Func{
		Name:  "levy",
		Space: s,
		Eval: func(cfg space.Config) float64 {
			w1 := w(cfg.Float(dimName(0)))
			sum := math.Pow(math.Sin(math.Pi*w1), 2)
			for i := 0; i < d-1; i++ {
				wi := w(cfg.Float(dimName(i)))
				sum += (wi - 1) * (wi - 1) * (1 + 10*math.Pow(math.Sin(math.Pi*wi+1), 2))
			}
			wd := w(cfg.Float(dimName(d - 1)))
			sum += (wd - 1) * (wd - 1) * (1 + math.Pow(math.Sin(2*math.Pi*wd), 2))
			return sum
		},
		Optimum: 0,
	}
}

// Hartmann6 returns the 6-D Hartmann function on [0, 1]^6.
// Minimum -3.32237 at a known interior point.
func Hartmann6() Func {
	params := make([]space.Param, 6)
	for i := range params {
		params[i] = space.Float(dimName(i), 0, 1)
	}
	s := space.MustNew(params...)
	alpha := []float64{1.0, 1.2, 3.0, 3.2}
	A := [4][6]float64{
		{10, 3, 17, 3.5, 1.7, 8},
		{0.05, 10, 17, 0.1, 8, 14},
		{3, 3.5, 1.7, 10, 17, 8},
		{17, 8, 0.05, 10, 0.1, 14},
	}
	P := [4][6]float64{
		{0.1312, 0.1696, 0.5569, 0.0124, 0.8283, 0.5886},
		{0.2329, 0.4135, 0.8307, 0.3736, 0.1004, 0.9991},
		{0.2348, 0.1451, 0.3522, 0.2883, 0.3047, 0.6650},
		{0.4047, 0.8828, 0.8732, 0.5743, 0.1091, 0.0381},
	}
	return Func{
		Name:  "hartmann6",
		Space: s,
		Eval: func(cfg space.Config) float64 {
			outer := 0.0
			for i := 0; i < 4; i++ {
				inner := 0.0
				for j := 0; j < 6; j++ {
					x := cfg.Float(dimName(j))
					d := x - P[i][j]
					inner += A[i][j] * d * d
				}
				outer += alpha[i] * math.Exp(-inner)
			}
			return -outer
		},
		Optimum: -3.32236801141551,
	}
}

// SchedDipCenterNS is the location of the beneficial dip in the
// SchedMigrationCurve, chosen away from the low-denominator rational grid
// points (i/4, i/9, ...) that coarse grid searches probe.
const SchedDipCenterNS = 371_000

// SchedMigrationCurve reproduces the shape of the tutorial's running
// example (slides 26-48): P95 latency in milliseconds of a Redis-like
// service as a function of the kernel knob sched_migration_cost_ns in
// [0, 1e6]. The curve has a flat ~1.0 ms plateau at small values, a sharp
// beneficial dip around 371k ns (~0.33 ms), and a slow rise afterwards —
// so grid search with few points misses the dip, random search finds it
// occasionally, and a model-based optimizer homes in on it.
//
// The function is deterministic; pair it with a noise wrapper (see
// internal/cloud or internal/simsys) to study noisy tuning.
func SchedMigrationCurve() Func {
	s := space.MustNew(
		space.Int("sched_migration_cost_ns", 0, 1_000_000).WithDefault(int64(500_000)),
	)
	return Func{
		Name:  "sched_migration",
		Space: s,
		Eval: func(cfg space.Config) float64 {
			return SchedLatencyMS(float64(cfg.Int("sched_migration_cost_ns")))
		},
		Optimum: schedOptimum(),
	}
}

// SchedLatencyMS is the raw curve behind SchedMigrationCurve, exposed so
// substrates (internal/simsys) can reuse it with noise.
func SchedLatencyMS(ns float64) float64 {
	x := ns / 1e6 // normalize to [0, 1]
	base := 1.0
	// Gentle degradation at the high end (migrations too sticky).
	rise := 0.35 * x * x
	// Sharp beneficial dip: the sweet spot where migration cost matches
	// the workload's wakeup pattern.
	dip := -0.68 * math.Exp(-math.Pow((x-SchedDipCenterNS/1e6)/0.04, 2))
	// Mild ripple modelling cache/NUMA interactions.
	ripple := 0.02 * math.Sin(9*math.Pi*x)
	return base + rise + dip + ripple
}

var (
	schedOptOnce  sync.Once
	schedOptValue float64
)

// schedOptimum scans the integer domain once to find the curve's true
// global minimum (the ripple shifts it slightly off the dip center).
func schedOptimum() float64 {
	schedOptOnce.Do(func() {
		best := math.Inf(1)
		for ns := 0; ns <= 1_000_000; ns += 10 {
			if v := SchedLatencyMS(float64(ns)); v < best {
				best = v
			}
		}
		schedOptValue = best
	})
	return schedOptValue
}

func dimName(i int) string { return "x" + string(rune('0'+i/10)) + string(rune('0'+i%10)) }

// All returns the standard suite at conventional dimensionalities, used by
// optimizer comparison experiments.
func All() []Func {
	return []Func{
		Sphere(4),
		Branin(),
		Rosenbrock(4),
		Ackley(4),
		Rastrigin(4),
		Levy(4),
		Hartmann6(),
		SchedMigrationCurve(),
	}
}
