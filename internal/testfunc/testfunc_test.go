package testfunc

import (
	"math"
	"math/rand"
	"testing"

	"autotune/internal/space"
)

// evalAt builds a config assigning the same value list to dims in order.
func evalAt(f Func, vals ...float64) float64 {
	cfg := space.Config{}
	for i, p := range f.Space.Params() {
		cfg[p.Name] = vals[i]
	}
	return f.Eval(cfg)
}

func TestSphereOptimum(t *testing.T) {
	f := Sphere(3)
	if got := evalAt(f, 0, 0, 0); got != 0 {
		t.Fatalf("sphere(0) = %v", got)
	}
	if got := evalAt(f, 1, 2, 3); got != 14 {
		t.Fatalf("sphere(1,2,3) = %v", got)
	}
}

func TestBraninKnownMinima(t *testing.T) {
	f := Branin()
	minima := [][2]float64{
		{-math.Pi, 12.275},
		{math.Pi, 2.275},
		{9.42478, 2.475},
	}
	for _, m := range minima {
		got := f.Eval(space.Config{"x1": m[0], "x2": m[1]})
		if math.Abs(got-f.Optimum) > 1e-4 {
			t.Errorf("branin%v = %v, want %v", m, got, f.Optimum)
		}
	}
}

func TestRosenbrockOptimum(t *testing.T) {
	f := Rosenbrock(5)
	cfg := space.Config{}
	for _, p := range f.Space.Params() {
		cfg[p.Name] = 1.0
	}
	if got := f.Eval(cfg); got != 0 {
		t.Fatalf("rosenbrock(1...) = %v", got)
	}
}

func TestAckleyOptimum(t *testing.T) {
	f := Ackley(4)
	got := evalAt(f, 0, 0, 0, 0)
	if math.Abs(got) > 1e-12 {
		t.Fatalf("ackley(0) = %v", got)
	}
	if evalAt(f, 10, 10, 10, 10) < 10 {
		t.Fatal("ackley far from origin should be large")
	}
}

func TestRastriginOptimum(t *testing.T) {
	f := Rastrigin(4)
	if got := evalAt(f, 0, 0, 0, 0); math.Abs(got) > 1e-12 {
		t.Fatalf("rastrigin(0) = %v", got)
	}
}

func TestLevyOptimum(t *testing.T) {
	f := Levy(3)
	if got := evalAt(f, 1, 1, 1); math.Abs(got) > 1e-12 {
		t.Fatalf("levy(1,1,1) = %v", got)
	}
}

func TestHartmann6Optimum(t *testing.T) {
	f := Hartmann6()
	xOpt := []float64{0.20169, 0.150011, 0.476874, 0.275332, 0.311652, 0.6573}
	got := evalAt(f, xOpt...)
	if math.Abs(got-f.Optimum) > 1e-3 {
		t.Fatalf("hartmann6(opt) = %v, want %v", got, f.Optimum)
	}
}

func TestAllNonNegativeRegret(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range All() {
		for i := 0; i < 300; i++ {
			cfg := f.Space.Sample(rng)
			if r := f.Regret(cfg); r < -1e-6 {
				t.Fatalf("%s: negative regret %v at %v", f.Name, r, cfg)
			}
			if math.IsNaN(f.Eval(cfg)) {
				t.Fatalf("%s: NaN at %v", f.Name, cfg)
			}
		}
	}
}

func TestSchedCurveShape(t *testing.T) {
	// Plateau near 1.0 ms at low values.
	if v := SchedLatencyMS(0); v < 0.9 || v > 1.1 {
		t.Fatalf("plateau value = %v", v)
	}
	// Dip center is substantially better.
	dip := SchedLatencyMS(SchedDipCenterNS)
	if dip > 0.45 {
		t.Fatalf("dip = %v, want < 0.45", dip)
	}
	// High end is worse than plateau.
	if SchedLatencyMS(1_000_000) <= SchedLatencyMS(100_000) {
		t.Fatal("high end should degrade")
	}
	// ~68%% P95 reduction claim: (plateau - dip) / plateau >= 0.6.
	plateau := SchedLatencyMS(50_000)
	if red := (plateau - dip) / plateau; red < 0.6 {
		t.Fatalf("reduction = %v, want >= 0.6", red)
	}
}

func TestSchedCurveFuncWiring(t *testing.T) {
	f := SchedMigrationCurve()
	got := f.Eval(space.Config{"sched_migration_cost_ns": int64(SchedDipCenterNS)})
	if got < f.Optimum {
		t.Fatalf("eval at dip center %v below declared optimum %v", got, f.Optimum)
	}
	if math.Abs(got-f.Optimum) > 0.03 {
		t.Fatalf("eval at dip center = %v, far from optimum %v", got, f.Optimum)
	}
	if f.Space.Dim() != 1 {
		t.Fatal("sched space should be 1-D")
	}
}

func TestDimNamesUniqueAndStable(t *testing.T) {
	f := Sphere(12)
	names := map[string]bool{}
	for _, p := range f.Space.Params() {
		if names[p.Name] {
			t.Fatalf("duplicate dim name %q", p.Name)
		}
		names[p.Name] = true
	}
	if !names["x00"] || !names["x11"] {
		t.Fatalf("unexpected names: %v", names)
	}
}
