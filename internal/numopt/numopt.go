// Package numopt provides small derivative-free optimizers over raw float
// vectors: Nelder-Mead simplex search and golden-section line search. They
// serve as inner loops (GP hyperparameter fitting, acquisition refinement),
// not as user-facing tuning algorithms — those live in internal/optimizer
// and friends, and operate on typed configuration spaces.
package numopt

import "math"

// Options controls NelderMead.
type Options struct {
	// MaxIter bounds the number of simplex iterations (default 200).
	MaxIter int
	// Tol stops when the simplex function-value spread falls below it
	// (default 1e-9).
	Tol float64
	// Scale is the initial simplex edge length (default 0.1).
	Scale float64
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.Scale <= 0 {
		o.Scale = 0.1
	}
	return o
}

// NelderMead minimizes f starting from x0 and returns the best point and
// value found. f must be total (return +Inf for invalid regions rather than
// panicking). x0 is not modified.
func NelderMead(f func([]float64) float64, x0 []float64, opts Options) ([]float64, float64) {
	opts = opts.withDefaults()
	n := len(x0)
	if n == 0 {
		return nil, f(nil)
	}
	// Build initial simplex.
	simplex := make([][]float64, n+1)
	fv := make([]float64, n+1)
	for i := range simplex {
		p := append([]float64(nil), x0...)
		if i > 0 {
			p[i-1] += opts.Scale
		}
		simplex[i] = p
		fv[i] = f(p)
	}
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	for iter := 0; iter < opts.MaxIter; iter++ {
		// Order simplex by value (insertion sort; n is small).
		for i := 1; i <= n; i++ {
			for j := i; j > 0 && fv[j] < fv[j-1]; j-- {
				fv[j], fv[j-1] = fv[j-1], fv[j]
				simplex[j], simplex[j-1] = simplex[j-1], simplex[j]
			}
		}
		if math.Abs(fv[n]-fv[0]) < opts.Tol {
			break
		}
		// Centroid of all but worst.
		centroid := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				centroid[j] += simplex[i][j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}
		// Reflect.
		xr := combine(centroid, simplex[n], 1+alpha, -alpha)
		fr := f(xr)
		switch {
		case fr < fv[0]:
			// Expand.
			xe := combine(centroid, simplex[n], 1+alpha*gamma, -alpha*gamma)
			if fe := f(xe); fe < fr {
				simplex[n], fv[n] = xe, fe
			} else {
				simplex[n], fv[n] = xr, fr
			}
		case fr < fv[n-1]:
			simplex[n], fv[n] = xr, fr
		default:
			// Contract.
			xc := combine(centroid, simplex[n], 1-rho, rho)
			if fc := f(xc); fc < fv[n] {
				simplex[n], fv[n] = xc, fc
			} else {
				// Shrink toward best.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i][j] = simplex[0][j] + sigma*(simplex[i][j]-simplex[0][j])
					}
					fv[i] = f(simplex[i])
				}
			}
		}
	}
	best := 0
	for i := 1; i <= n; i++ {
		if fv[i] < fv[best] {
			best = i
		}
	}
	return append([]float64(nil), simplex[best]...), fv[best]
}

// combine returns a*x + b*y elementwise.
func combine(x, y []float64, a, b float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = a*x[i] + b*y[i]
	}
	return out
}

// GoldenSection minimizes a unimodal 1-D function on [lo, hi] to the given
// tolerance and returns the minimizing x and f(x).
func GoldenSection(f func(float64) float64, lo, hi, tol float64) (float64, float64) {
	if tol <= 0 {
		tol = 1e-8
	}
	invPhi := (math.Sqrt(5) - 1) / 2
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	x := (a + b) / 2
	return x, f(x)
}
