package numopt

import (
	"math"
	"testing"
)

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + (x[1]+1)*(x[1]+1)
	}
	x, v := NelderMead(f, []float64{0, 0}, Options{MaxIter: 500})
	if math.Abs(x[0]-3) > 1e-3 || math.Abs(x[1]+1) > 1e-3 {
		t.Fatalf("x = %v", x)
	}
	if v > 1e-5 {
		t.Fatalf("v = %v", v)
	}
}

func TestNelderMeadRosenbrock2D(t *testing.T) {
	f := func(x []float64) float64 {
		return 100*(x[1]-x[0]*x[0])*(x[1]-x[0]*x[0]) + (1-x[0])*(1-x[0])
	}
	x, v := NelderMead(f, []float64{-1.2, 1}, Options{MaxIter: 2000, Tol: 1e-14})
	if v > 1e-4 {
		t.Fatalf("rosenbrock value = %v at %v", v, x)
	}
}

func TestNelderMeadHandlesInf(t *testing.T) {
	// Constrained region: f = +Inf outside x >= 0.
	f := func(x []float64) float64 {
		if x[0] < 0 {
			return math.Inf(1)
		}
		return (x[0] - 0.5) * (x[0] - 0.5)
	}
	x, v := NelderMead(f, []float64{2}, Options{MaxIter: 300})
	if math.Abs(x[0]-0.5) > 1e-3 || v > 1e-5 {
		t.Fatalf("x = %v, v = %v", x, v)
	}
}

func TestNelderMeadEmpty(t *testing.T) {
	called := 0
	_, v := NelderMead(func(x []float64) float64 { called++; return 7 }, nil, Options{})
	if v != 7 || called != 1 {
		t.Fatalf("empty input: v=%v called=%d", v, called)
	}
}

func TestNelderMeadDoesNotMutateStart(t *testing.T) {
	x0 := []float64{1, 2}
	NelderMead(func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] }, x0, Options{})
	if x0[0] != 1 || x0[1] != 2 {
		t.Fatal("x0 mutated")
	}
}

func TestGoldenSection(t *testing.T) {
	x, v := GoldenSection(func(x float64) float64 { return (x - 2.5) * (x - 2.5) }, 0, 10, 1e-8)
	if math.Abs(x-2.5) > 1e-6 {
		t.Fatalf("x = %v", x)
	}
	if v > 1e-10 {
		t.Fatalf("v = %v", v)
	}
}

func TestGoldenSectionEdgeMin(t *testing.T) {
	// Monotone increasing: min at left edge.
	x, _ := GoldenSection(func(x float64) float64 { return x }, 1, 5, 1e-8)
	if math.Abs(x-1) > 1e-5 {
		t.Fatalf("x = %v, want 1", x)
	}
}
