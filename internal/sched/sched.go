// Package sched is a supervised asynchronous trial scheduler: a bounded
// worker pool mapped onto cloud host slots that isolates panics at the
// task boundary, hedges stragglers (when a task runs past a quantile of
// recent durations, a duplicate is launched on another worker and the
// first result wins), drains quarantined hosts via a pluggable gate
// (satisfied by resilience.Breaker), and finishes in-flight work on
// context cancellation instead of silently dropping it.
//
// The pool has two clocks. The default virtual clock is a deterministic
// discrete-event simulation: tasks are evaluated inline in a fixed order
// and their reported costs, scaled by per-host speed multipliers, drive a
// simulated timeline — identically-seeded runs are bitwise identical, so
// the deterministic packages (trial, simsys) can use hedging and host
// placement without breaking the seed-sufficiency invariant. WallClock
// mode runs real worker goroutines with real hedge timers for
// environments that do real work (kvstore, cloud deployments).
package sched

import (
	"context"
	"errors"
	"sort"
	"sync"

	"autotune/internal/cloud"
)

// HostGate decides whether a host may receive new work and records
// per-host outcomes. *resilience.Breaker satisfies it; the indirection
// exists because resilience depends on trial which depends on sched.
type HostGate interface {
	AllowHost(host int) bool
	RecordHost(host int, ok bool)
}

// Attempt is the outcome of one execution attempt of a task.
type Attempt struct {
	// Cost is the cost reported by the task itself, in seconds (simulated
	// for model environments, measured for real ones).
	Cost float64
	// Err is the attempt's failure, if any. A recovered panic wraps
	// ErrPanic.
	Err error
	// Payload carries the caller's result through the pool untouched.
	Payload any
}

// Exec evaluates task (an index into the current batch) and returns its
// outcome. attempt is 0 for the primary execution and 1 for a hedge. The
// context is cancelled when the sibling attempt wins or the pool drains.
// Exec runs under Guard: a panic becomes an Attempt with Err wrapping
// ErrPanic.
type Exec func(ctx context.Context, task, attempt int) Attempt

// Completion reports the winning attempt of one task. Exactly one
// Completion is delivered per started task, in timeline order (virtual
// end time with deterministic tie-breaks, or real arrival order).
type Completion struct {
	// Task is the batch index the completion belongs to.
	Task int
	// Attempt is the winning attempt number (0 primary, 1 hedge).
	Attempt int
	// Host is the host slot that produced the winning result.
	Host int
	// Hedged reports whether a duplicate attempt was launched.
	Hedged bool
	// Cost is the time the winning attempt occupied its worker: the
	// task-reported cost scaled by the host's speed multiplier on the
	// virtual clock, or the attempt's reported cost on the wall clock.
	Cost float64
	// Waste is the time the losing attempt burned before cancellation
	// (0 when no hedge was launched or the hedge never started).
	Waste float64
	// Start and End position the winning attempt on the pool's timeline,
	// in seconds from the start of the Run call.
	Start, End float64
	// Result is the winning attempt's outcome.
	Result Attempt
}

// Options configures a Pool.
type Options struct {
	// Workers bounds concurrent attempts (default: len(Hosts), else 4).
	Workers int
	// Hosts optionally maps worker slots onto host profiles: worker w
	// runs on Hosts[w%len(Hosts)], and on the virtual clock an attempt's
	// duration is its reported cost times the host's Mult. Empty means
	// uniform hosts with multiplier 1.
	Hosts []cloud.HostProfile
	// Gate, when non-nil, is consulted before placing work on a host and
	// told the outcome of every winning attempt. Quarantined hosts drain:
	// running work finishes, new work goes elsewhere. If every host is
	// quarantined the pool falls back to ignoring the gate rather than
	// stalling.
	Gate HostGate
	// HedgeQuantile in (0,1) enables straggler hedging: an attempt
	// running longer than this quantile of recent winning durations gets
	// a duplicate on another worker, first result wins. 0 disables.
	HedgeQuantile float64
	// HedgeMinSamples is how many completed durations must be observed
	// before hedging activates (default 8).
	HedgeMinSamples int
	// HedgeWindow is the size of the rolling duration window the quantile
	// is computed over (default 64).
	HedgeWindow int
	// WallClock switches from the deterministic virtual clock to real
	// goroutines, real timers, and real cancellation.
	WallClock bool
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		if len(o.Hosts) > 0 {
			o.Workers = len(o.Hosts)
		} else {
			o.Workers = 4
		}
	}
	if o.HedgeMinSamples <= 0 {
		o.HedgeMinSamples = 8
	}
	if o.HedgeWindow <= 0 {
		o.HedgeWindow = 64
	}
	if o.HedgeQuantile < 0 || o.HedgeQuantile >= 1 {
		o.HedgeQuantile = 0
	}
	return o
}

// Stats are cumulative pool counters across Run calls.
type Stats struct {
	// Tasks counts delivered completions.
	Tasks int
	// Hedges counts duplicate attempts launched; HedgeWins counts tasks
	// where the hedge beat the primary.
	Hedges    int
	HedgeWins int
	// Panics counts winning attempts whose error wraps ErrPanic.
	Panics int
	// Cancelled counts losing attempts cancelled after their sibling won.
	Cancelled int
	// WasteSeconds sums the time losing attempts burned.
	WasteSeconds float64
}

// Pool schedules task batches over a bounded set of worker slots.
// A Pool is reusable across batches; the hedge-duration window and the
// stats persist between Run calls. Methods on Pool are safe for
// concurrent use, but a single Run call owns the pool's timeline — run
// batches sequentially.
type Pool struct {
	opts Options

	mu     sync.Mutex
	recent []float64 // ring buffer of recent winning durations
	next   int       // ring write position
	filled bool      // ring has wrapped at least once
	stats  Stats
}

// New builds a pool. The zero Options value gives 4 uniform workers with
// hedging disabled on the virtual clock.
func New(opts Options) *Pool {
	return &Pool{opts: opts.withDefaults()}
}

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int { return p.opts.Workers }

// Stats returns a snapshot of the cumulative counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Run executes tasks 0..n-1 via exec and delivers exactly one Completion
// per finished task to deliver (which may be nil). It returns the batch
// elapsed time — virtual seconds on the virtual clock, real seconds on
// the wall clock — and the context error if the run was cut short. On
// cancellation the pool drains gracefully: started attempts are delivered
// (their results may carry the context error), unstarted tasks are
// dropped and reported by the returned error, and nothing is delivered
// twice.
func (p *Pool) Run(ctx context.Context, n int, exec Exec, deliver func(Completion)) (float64, error) {
	if n <= 0 {
		return 0, ctx.Err()
	}
	if p.opts.WallClock {
		return p.runWall(ctx, n, exec, deliver)
	}
	return p.runVirtual(ctx, n, exec, deliver)
}

// host maps a worker slot to its host index.
func (p *Pool) host(worker int) int {
	if len(p.opts.Hosts) == 0 {
		return worker
	}
	return worker % len(p.opts.Hosts)
}

// hostMult is the speed multiplier of a worker's host (≥ 1 means slower).
func (p *Pool) hostMult(worker int) float64 {
	if len(p.opts.Hosts) == 0 {
		return 1
	}
	m := p.opts.Hosts[p.host(worker)].Mult
	if m <= 0 {
		return 1
	}
	return m
}

// allowHost consults the gate (nil gate allows everything).
func (p *Pool) allowHost(worker int) bool {
	if p.opts.Gate == nil {
		return true
	}
	return p.opts.Gate.AllowHost(p.host(worker))
}

// recordHost reports a winning attempt's outcome to the gate.
func (p *Pool) recordHost(worker int, ok bool) {
	if p.opts.Gate != nil {
		p.opts.Gate.RecordHost(p.host(worker), ok)
	}
}

// observeDuration feeds a winning duration into the hedge window.
func (p *Pool) observeDuration(d float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.recent) < p.opts.HedgeWindow {
		p.recent = append(p.recent, d)
		return
	}
	p.recent[p.next] = d
	p.next = (p.next + 1) % len(p.recent)
	p.filled = true
}

// threshold returns the hedge trigger duration, or ok=false while hedging
// is disabled or the window has too few samples.
func (p *Pool) threshold() (float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	q := p.opts.HedgeQuantile
	if q <= 0 || len(p.recent) < p.opts.HedgeMinSamples {
		return 0, false
	}
	sorted := append([]float64(nil), p.recent...)
	sort.Float64s(sorted)
	// Linear-interpolated quantile over the sorted window.
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1], true
	}
	frac := pos - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo]), true
}

// runAttempt invokes exec under Guard so a panicking task surfaces as an
// Attempt error instead of unwinding the scheduler.
func runAttempt(ctx context.Context, exec Exec, task, attempt int) Attempt {
	var at Attempt
	if err := Guard(func() error {
		at = exec(ctx, task, attempt)
		return nil
	}); err != nil {
		at = Attempt{Err: err}
	}
	return at
}

// countWin updates the cumulative stats for a delivered completion.
func (p *Pool) countWin(c Completion, cancelled int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Tasks++
	if c.Attempt > 0 {
		p.stats.HedgeWins++
	}
	if errors.Is(c.Result.Err, ErrPanic) {
		p.stats.Panics++
	}
	p.stats.Cancelled += cancelled
	p.stats.WasteSeconds += c.Waste
}

func (p *Pool) countHedge() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Hedges++
}
